package repro

import (
	"bytes"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/perf"
	"repro/internal/ratio"
	"repro/internal/retime"
	"repro/internal/slack"
	"repro/internal/verify"
)

// TestEndToEndCircuitFlow exercises the whole stack the way a CAD user
// would: generate a circuit, serialize and re-read its netlist, extract the
// latch graph, compute the clock bound with cross-checked algorithms,
// schedule clock skews, analyze slack, and retime — asserting the exact
// algebraic relations between the stages.
func TestEndToEndCircuitFlow(t *testing.T) {
	nl, err := circuit.Generate(circuit.GenConfig{
		FFs: 20, CloudGates: 14, MaxFanin: 3, Feedback: 5, PIs: 4, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Netlist round trip.
	var buf bytes.Buffer
	if err := nl.WriteBench(&buf); err != nil {
		t.Fatal(err)
	}
	nl2, err := circuit.ParseBench(&buf)
	if err != nil {
		t.Fatal(err)
	}

	lg, err := circuit.LatchGraph(nl2)
	if err != nil {
		t.Fatal(err)
	}

	// Latch graph round trip through the text format.
	buf.Reset()
	if err := graph.Write(&buf, lg); err != nil {
		t.Fatal(err)
	}
	lg2, err := graph.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Clock bound with concurrent cross-checking over every algorithm.
	neg := lg2.NegateWeights()
	res, err := core.CrossCheck(neg, core.All(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	period := res.Mean.Neg()
	if err := verify.CheckCycleIsOptimal(neg, res.Mean, res.Cycle); err != nil {
		t.Fatal(err)
	}

	// Clock skew schedule realizes exactly that period.
	cs, err := perf.ScheduleLatchGraph(lg2, core.All()[0])
	if err != nil {
		t.Fatal(err)
	}
	if !cs.Period.Equal(period) {
		t.Fatalf("schedule period %v != cross-checked bound %v", cs.Period, period)
	}
	if err := cs.Validate(lg2); err != nil {
		t.Fatal(err)
	}

	// Slack analysis of the negated graph: its critical arcs witness the
	// same optimum.
	howard, err := core.ByName("howard")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := slack.Analyze(neg, howard)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Lambda.Equal(res.Mean) {
		t.Fatalf("slack λ %v != bound %v", rep.Lambda, res.Mean)
	}
	if len(rep.CriticalArcs) == 0 {
		t.Fatal("no critical arcs")
	}

	// Retiming cannot beat the cycle-ratio bound, and its bound relates to
	// the latch-graph cycle mean through the register-1 structure.
	rg, err := retime.FromNetlist(nl2)
	if err != nil {
		t.Fatal(err)
	}
	howardRatio, err := ratio.ByName("howard")
	if err != nil {
		t.Fatal(err)
	}
	bound, err := rg.LowerBound(howardRatio)
	if err != nil {
		t.Fatal(err)
	}
	min, err := retime.Minimize(rg)
	if err != nil {
		t.Fatal(err)
	}
	if numeric.FromInt(min.Period).Less(bound) {
		t.Fatalf("retimed period %d beats the ratio bound %v", min.Period, bound)
	}
}

// TestEndToEndRandomGraphFlow: SPRAND → file → solve with every algorithm
// and heap/NCD variants → slack → max-plus style duality, all exact.
func TestEndToEndRandomGraphFlow(t *testing.T) {
	g, err := gen.Sprand(gen.SprandConfig{N: 100, M: 300, MinWeight: -50, MaxWeight: 120, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := graph.WriteJSON(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := graph.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}

	res, err := core.CrossCheck(g2, core.All(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Min-max duality through the public drivers.
	howard, _ := core.ByName("howard")
	max, err := core.MaximumCycleMean(g2.NegateWeights(), howard, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !max.Mean.Equal(res.Mean.Neg()) {
		t.Fatalf("duality broken: %v vs %v", max.Mean, res.Mean)
	}
	// Ratio solvers with unit transit agree with the mean.
	for _, name := range []string{"howard", "megiddo", "dinkelbach"} {
		ra, err := ratio.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		rr, err := ratio.MinimumCycleRatio(g2, ra, core.Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !rr.Ratio.Equal(res.Mean) {
			t.Fatalf("%s: ratio %v != mean %v", name, rr.Ratio, res.Mean)
		}
	}
}
