// Package repro's root benchmark suite regenerates every experiment of the
// DAC'99 study as a testing.B family (see DESIGN.md §4 for the experiment
// index). Benchmarks attach the paper's representative operation counts as
// custom metrics (iterations/op, heap-ops/op, arcs/op, λ*), so a single
//
//	go test -bench=. -benchmem
//
// produces both the timing shape of Table 2 and the §4.1–§4.5 observation
// data at laptop scale. cmd/mcmbench runs the full-size grid.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/maxplus"
	"repro/internal/ncd"
	"repro/internal/perf"
	"repro/internal/pq"
	"repro/internal/ratio"
	"repro/internal/retime"
)

// benchSizes is the laptop-scale cut of the Table 2 grid: the full five
// density columns at n = 512, plus the sparse/dense extremes at n = 2048.
var benchSizes = [][2]int{
	{512, 512}, {512, 768}, {512, 1024}, {512, 1280}, {512, 1536},
	{2048, 2048}, {2048, 6144},
}

func sprandGraph(b *testing.B, n, m int, seed uint64) *graph.Graph {
	b.Helper()
	g, err := gen.Sprand(gen.SprandConfig{N: n, M: m, MinWeight: 1, MaxWeight: 10000, Seed: seed})
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func solveLoop(b *testing.B, g *graph.Graph, name string, opt core.Options) core.Result {
	b.Helper()
	algo, err := core.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	var res core.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = algo.Solve(g, opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(res.Counts.Iterations), "iters/op")
	b.ReportMetric(res.Mean.Float64(), "λ*")
	return res
}

// BenchmarkTable2 regenerates experiment E-T2: the running-time comparison
// of the paper's ten algorithms on the SPRAND grid.
func BenchmarkTable2(b *testing.B) {
	for _, name := range bench.Table2Algorithms {
		for _, size := range benchSizes {
			n, m := size[0], size[1]
			if name == "oa1" && n > 512 {
				continue // the paper's N/A region; see cmd/mcmbench -table table2
			}
			g := sprandGraph(b, n, m, 1)
			b.Run(fmt.Sprintf("%s/n=%d,m=%d", name, n, m), func(b *testing.B) {
				solveLoop(b, g, name, core.Options{})
			})
		}
	}
}

// BenchmarkMCMValue regenerates experiment E-41: the λ* value itself as a
// reported metric across the density sweep (§4.1: near-constant in n,
// inversely related to m/n).
func BenchmarkMCMValue(b *testing.B) {
	for _, size := range [][2]int{
		{512, 512}, {512, 1536}, {1024, 1024}, {1024, 3072}, {2048, 2048}, {2048, 6144},
	} {
		g := sprandGraph(b, size[0], size[1], 1)
		b.Run(fmt.Sprintf("n=%d,m=%d", size[0], size[1]), func(b *testing.B) {
			solveLoop(b, g, "howard", core.Options{})
		})
	}
}

// BenchmarkKOvsYTO regenerates experiment E-42: the heap-operation counts
// of the two parametric shortest path algorithms (§4.2: YTO saves inserts,
// more so as density grows). Counts appear as ins/op, dec/op, min/op.
func BenchmarkKOvsYTO(b *testing.B) {
	for _, name := range []string{"ko", "yto"} {
		for _, size := range benchSizes {
			g := sprandGraph(b, size[0], size[1], 1)
			b.Run(fmt.Sprintf("%s/n=%d,m=%d", name, size[0], size[1]), func(b *testing.B) {
				res := solveLoop(b, g, name, core.Options{})
				b.ReportMetric(float64(res.Counts.HeapInserts), "ins/op")
				b.ReportMetric(float64(res.Counts.HeapExtractMins), "min/op")
				b.ReportMetric(float64(res.Counts.HeapDecreaseKeys), "dec/op")
			})
		}
	}
}

// BenchmarkIterations regenerates experiment E-43: iteration counts of the
// iterative algorithms (§4.3), reported as iters/op.
func BenchmarkIterations(b *testing.B) {
	for _, name := range []string{"burns", "ko", "yto", "howard", "ho"} {
		for _, size := range benchSizes {
			g := sprandGraph(b, size[0], size[1], 1)
			b.Run(fmt.Sprintf("%s/n=%d,m=%d", name, size[0], size[1]), func(b *testing.B) {
				solveLoop(b, g, name, core.Options{})
			})
		}
	}
}

// BenchmarkKarpVariants regenerates experiment E-44: Karp versus its DG,
// HO and Karp2 variants (§4.4), with arcs visited as arcs/op.
func BenchmarkKarpVariants(b *testing.B) {
	for _, name := range []string{"karp", "karp2", "dg", "ho"} {
		for _, size := range benchSizes {
			g := sprandGraph(b, size[0], size[1], 1)
			b.Run(fmt.Sprintf("%s/n=%d,m=%d", name, size[0], size[1]), func(b *testing.B) {
				res := solveLoop(b, g, name, core.Options{})
				b.ReportMetric(float64(res.Counts.ArcsVisited), "arcs/op")
			})
		}
	}
}

// BenchmarkCircuits regenerates experiment E-C: the benchmark-circuit
// family (clock-period bound on latch graphs of synthetic sequential
// circuits — the substitution for the paper's MCNC benchmarks).
func BenchmarkCircuits(b *testing.B) {
	for _, ffs := range []int{32, 128, 512} {
		nl, err := circuit.Generate(circuit.GenConfig{
			FFs: ffs, CloudGates: 24, MaxFanin: 3, Feedback: ffs / 4, PIs: 6, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		lg, err := circuit.LatchGraph(nl)
		if err != nil {
			b.Fatal(err)
		}
		neg := lg.NegateWeights()
		for _, name := range []string{"howard", "karp", "dg", "yto", "burns"} {
			b.Run(fmt.Sprintf("%s/ffs=%d", name, ffs), func(b *testing.B) {
				algo, err := core.ByName(name)
				if err != nil {
					b.Fatal(err)
				}
				for i := 0; i < b.N; i++ {
					if _, err := core.MinimumCycleMean(neg, algo, core.Options{}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkHeapKinds is the ablation for the paper's Fibonacci-heap choice
// (LEDA's default): the same YTO run with Fibonacci, binary, and pairing
// heaps.
func BenchmarkHeapKinds(b *testing.B) {
	g := sprandGraph(b, 2048, 6144, 1)
	for _, kind := range []pq.Kind{pq.Fibonacci, pq.Binary, pq.Pairing} {
		b.Run("yto/"+kind.String(), func(b *testing.B) {
			solveLoop(b, g, "yto", core.Options{HeapKind: kind})
		})
	}
}

// BenchmarkLawlerExactVsApprox ablates the exact-snap improvement of
// Lawler's algorithm (the paper's "improved Lawler" future work) against
// the paper's ε-approximate original.
func BenchmarkLawlerExactVsApprox(b *testing.B) {
	g := sprandGraph(b, 1024, 3072, 1)
	b.Run("exact", func(b *testing.B) {
		solveLoop(b, g, "lawler", core.Options{})
	})
	b.Run("eps=1e-3", func(b *testing.B) {
		solveLoop(b, g, "lawler", core.Options{Epsilon: 1e-3})
	})
}

// BenchmarkRatioAlgorithms times the cost-to-time-ratio solvers (the MCRP
// side of the paper) on transit-weighted SPRAND graphs.
func BenchmarkRatioAlgorithms(b *testing.B) {
	base := sprandGraph(b, 512, 1536, 1)
	arcs := make([]graph.Arc, base.NumArcs())
	state := uint64(12345)
	for i, a := range base.Arcs() {
		state = state*6364136223846793005 + 1442695040888963407
		a.Transit = 1 + int64((state>>33)%4)
		arcs[i] = a
	}
	g := graph.FromArcs(base.NumNodes(), arcs)
	for _, name := range []string{"howard", "burns", "lawler"} {
		b.Run(name, func(b *testing.B) {
			algo, err := ratio.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := algo.Solve(g, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLawlerNCD ablates the negative-cycle detector inside Lawler's
// binary search: textbook Bellman–Ford (the paper's cost model),
// early-exit Bellman–Ford, and Tarjan's subtree-disassembly detector.
func BenchmarkLawlerNCD(b *testing.B) {
	g := sprandGraph(b, 1024, 3072, 1)
	for _, method := range []ncd.Method{ncd.Basic, ncd.EarlyExit, ncd.Tarjan} {
		b.Run(method.String(), func(b *testing.B) {
			solveLoop(b, g, "lawler", core.Options{NCD: method})
		})
	}
}

// BenchmarkClockSchedule times optimal clock-skew scheduling (setup-only
// and setup+hold) on generated circuits — the Szymanski application.
func BenchmarkClockSchedule(b *testing.B) {
	nl, err := circuit.Generate(circuit.GenConfig{
		FFs: 256, CloudGates: 20, MaxFanin: 3, Feedback: 64, PIs: 8, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	lg, minDelay, err := circuit.LatchGraphMinMax(nl)
	if err != nil {
		b.Fatal(err)
	}
	howard, _ := core.ByName("howard")
	b.Run("setup-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := perf.ScheduleLatchGraph(lg, howard); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("setup+hold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := perf.ScheduleSetupHold(lg, minDelay, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRetiming times minimum-period retiming on generated circuits.
func BenchmarkRetiming(b *testing.B) {
	for _, ffs := range []int{16, 48} {
		nl, err := circuit.Generate(circuit.GenConfig{
			FFs: ffs, CloudGates: 12, MaxFanin: 3, Feedback: ffs / 4, PIs: 4, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		rg, err := retime.FromNetlist(nl)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("ffs=%d", ffs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := retime.Minimize(rg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMaxplusEigen times the max-plus spectral computation (the [6]
// setting Howard's algorithm came from).
func BenchmarkMaxplusEigen(b *testing.B) {
	g := sprandGraph(b, 512, 1536, 1)
	m := maxplus.FromGraph(g)
	howard, _ := core.ByName("howard")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := m.Eigenvector(howard); err != nil {
			b.Fatal(err)
		}
	}
}
