#!/usr/bin/env sh
# coverage_gate.sh — fail when any package's statement coverage regresses
# below its checked-in floor (scripts/coverage_floor.txt).
#
# Usage: scripts/coverage_gate.sh   (from the repo root; make coverage-gate)
set -eu

floors=scripts/coverage_floor.txt
report=$(mktemp)
trap 'rm -f "$report"' EXIT

go test -cover ./... > "$report"

fail=0
while read -r pkg floor; do
    case "$pkg" in ''|'#'*) continue ;; esac
    line=$(grep -E "[[:space:]]$pkg[[:space:]].*coverage:" "$report" || true)
    if [ -z "$line" ]; then
        echo "coverage-gate: FAIL $pkg: no coverage line (package or tests deleted?)" >&2
        fail=1
        continue
    fi
    pct=$(printf '%s\n' "$line" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
    if [ -z "$pct" ]; then
        echo "coverage-gate: FAIL $pkg: unparsable coverage line: $line" >&2
        fail=1
        continue
    fi
    # Integer-compare the truncated percentage against the floor.
    got=${pct%.*}
    if [ "$got" -lt "$floor" ]; then
        echo "coverage-gate: FAIL $pkg: coverage $pct% < floor $floor%" >&2
        fail=1
    else
        echo "coverage-gate: ok   $pkg: $pct% (floor $floor%)"
    fi
done < "$floors"

# Surface packages that report coverage but have no floor yet, so new
# packages get a floor in the PR that introduces them.
grep -E 'coverage: [0-9.]+% of statements' "$report" | while read -r line; do
    pkg=$(printf '%s\n' "$line" | awk '{for (i=1; i<=NF; i++) if ($i ~ /^repro/) {print $i; exit}}')
    [ -n "$pkg" ] || continue
    if ! grep -q "^$pkg " "$floors"; then
        echo "coverage-gate: note $pkg has coverage but no floor in $floors"
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "coverage-gate: coverage regressed below a floor; see failures above" >&2
    exit 1
fi
echo "coverage-gate: all floors hold"
