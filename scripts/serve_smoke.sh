#!/usr/bin/env sh
# serve_smoke.sh — CI smoke test for `mcmbench -serve`: start a small sweep
# with the metrics endpoint enabled, poll /debug/vars until the published
# solver counters are live, assert they are non-zero, and shut down. Fails
# (exit 1) if the endpoint never comes up or the counters stay zero.
set -eu

ADDR="${SERVE_SMOKE_ADDR:-127.0.0.1:18573}"
OUT="$(mktemp -d)"
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$OUT"' EXIT INT TERM

go build -o "$OUT/mcmbench" ./cmd/mcmbench

"$OUT/mcmbench" -serve "$ADDR" -maxn 512 -seeds 1 -algos howard,karp \
    >"$OUT/sweep.out" 2>"$OUT/sweep.err" &
PID=$!

# Poll until the expvar endpoint reports completed solver runs. The sweep
# above takes well under a second; 30 seconds is a generous ceiling for a
# loaded CI worker.
i=0
while [ "$i" -lt 60 ]; do
    if VARS=$(curl -fs "http://$ADDR/debug/vars" 2>/dev/null); then
        RUNS=$(printf '%s' "$VARS" | grep -o '"solver_runs":[0-9]*' | head -1 | cut -d: -f2)
        RUNS="${RUNS:-0}"
        if [ "$RUNS" -gt 0 ]; then
            echo "serve_smoke: OK — $RUNS solver runs visible at /debug/vars"
            # pprof must be mounted alongside the metrics.
            curl -fs -o /dev/null "http://$ADDR/debug/pprof/" || {
                echo "serve_smoke: FAIL — /debug/pprof/ not served" >&2
                exit 1
            }
            exit 0
        fi
    fi
    i=$((i + 1))
    sleep 0.5
done

echo "serve_smoke: FAIL — no live solver counters at http://$ADDR/debug/vars after 30s" >&2
echo "--- sweep stderr ---" >&2
cat "$OUT/sweep.err" >&2 || true
exit 1
