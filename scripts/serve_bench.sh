#!/usr/bin/env sh
# serve_bench.sh — CI smoke for the content-addressed result cache against a
# real mcmd process: boot one daemon with the cache disabled (-cache 0) and
# one with it on, drive the identical 90%-repeated sustained load at each
# with mcmbench -serve-load -load-addr, and require (a) a minimum cache-on
# throughput speedup and (b) non-zero hit counters on the cache-on daemon's
# /debug/vars. The bound here is deliberately conservative (shared CI boxes
# are noisy); the checked-in BENCH_serve.json records the full-suite numbers
# (`make bench-serve`). Both daemons must still drain clean on SIGTERM.
# docs/SERVING.md documents the workflow.
set -eu

ADDR_OFF="${SERVE_BENCH_ADDR_OFF:-127.0.0.1:18584}"
ADDR_ON="${SERVE_BENCH_ADDR_ON:-127.0.0.1:18585}"
DURATION="${SERVE_BENCH_DURATION:-3s}"
MIN_SPEEDUP="${SERVE_BENCH_MIN_SPEEDUP:-1.5}"
OUT="$(mktemp -d)"
trap 'kill "$PID_OFF" "$PID_ON" 2>/dev/null || true; rm -rf "$OUT"' EXIT INT TERM

go build -o "$OUT/mcmd" ./cmd/mcmd
go build -o "$OUT/mcmbench" ./cmd/mcmbench

# -queue must cover Concurrency×BatchSize of in-flight graphs or the
# all-or-nothing buffered admission answers 429 to every batch.
"$OUT/mcmd" -addr "$ADDR_OFF" -cache 0 -queue 256 -stats=false \
    >"$OUT/off.out" 2>"$OUT/off.err" &
PID_OFF=$!
"$OUT/mcmd" -addr "$ADDR_ON" -queue 256 -stats=false \
    >"$OUT/on.out" 2>"$OUT/on.err" &
PID_ON=$!

wait_healthy() {
    i=0
    until curl -fs "http://$1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -lt 100 ] || { echo "serve_bench: FAIL — daemon at $1 never became healthy" >&2; exit 1; }
        sleep 0.1
    done
}
wait_healthy "$ADDR_OFF"
wait_healthy "$ADDR_ON"

# Identical workload against each daemon (same seed, same mix). The
# cache-off daemon must not report a cache branch at all.
"$OUT/mcmbench" -serve-load -load-addr "$ADDR_OFF" -load-duration "$DURATION" \
    >"$OUT/off.json"
"$OUT/mcmbench" -serve-load -load-addr "$ADDR_ON" -load-duration "$DURATION" \
    >"$OUT/on.json"

throughput() {
    grep -o '"graphs_per_sec": [0-9.]*' "$1" | head -1 | grep -o '[0-9.]*$'
}
errors_of() {
    grep -o '"errors": [0-9]*' "$1" | head -1 | grep -o '[0-9]*$'
}
for leg in off on; do
    ERRS=$(errors_of "$OUT/$leg.json")
    [ "${ERRS:-1}" -eq 0 ] || {
        echo "serve_bench: FAIL — cache-$leg leg reported $ERRS request errors" >&2
        cat "$OUT/$leg.json" >&2
        exit 1
    }
done
TPUT_OFF=$(throughput "$OUT/off.json")
TPUT_ON=$(throughput "$OUT/on.json")
[ -n "$TPUT_OFF" ] && [ -n "$TPUT_ON" ] || {
    echo "serve_bench: FAIL — could not read throughput from the reports" >&2
    cat "$OUT/off.json" "$OUT/on.json" >&2
    exit 1
}

# awk does the float compare; the shell only sees its exit code.
awk -v on="$TPUT_ON" -v off="$TPUT_OFF" -v min="$MIN_SPEEDUP" \
    'BEGIN { exit !(off > 0 && on / off >= min) }' || {
    echo "serve_bench: FAIL — cache-on $TPUT_ON graphs/s vs cache-off $TPUT_OFF (need ${MIN_SPEEDUP}x)" >&2
    exit 1
}

# The cache-on daemon's /debug/vars must show non-zero hit counters in both
# the cache branch and the solver metrics (serve_cache_hits); the cache-off
# daemon must expose neither a cache branch nor any serve-cache traffic.
VARS_ON=$(curl -fs "http://$ADDR_ON/debug/vars")
count() { printf '%s' "$1" | grep -o "\"$2\": [0-9]*" | head -1 | grep -o '[0-9]*$'; }
HITS=$(count "$VARS_ON" hits)
SOLVER_HITS=$(count "$VARS_ON" serve_cache_hits)
[ "${HITS:-0}" -gt 0 ] || { echo "serve_bench: FAIL — cache branch shows no hits" >&2; exit 1; }
[ "${SOLVER_HITS:-0}" -gt 0 ] || { echo "serve_bench: FAIL — serve_cache_hits is zero on /debug/vars" >&2; exit 1; }

VARS_OFF=$(curl -fs "http://$ADDR_OFF/debug/vars")
printf '%s' "$VARS_OFF" | grep -q '"cache":' && {
    echo "serve_bench: FAIL — cache-off daemon advertises a cache branch" >&2
    exit 1
}
OFF_HITS=$(count "$VARS_OFF" serve_cache_hits)
[ "${OFF_HITS:-0}" -eq 0 ] || { echo "serve_bench: FAIL — cache-off daemon counted cache hits" >&2; exit 1; }

# The streaming variant answers NDJSON against a real daemon: one result
# line per graph plus a trailer, flushed as they complete.
STREAM=$(curl -fs -X POST "http://$ADDR_ON/v1/solve?stream=1" \
    -d '{"requests":[{"text":"p mcm 2 2\na 1 2 3\na 2 1 5\n"},{"text":"p mcm 1 1\na 1 1 7\n"}]}')
LINES=$(printf '%s\n' "$STREAM" | grep -c '^{') || LINES=0
[ "$LINES" -eq 3 ] || { echo "serve_bench: FAIL — streaming answered $LINES lines, want 2 results + trailer" >&2; printf '%s\n' "$STREAM" >&2; exit 1; }
printf '%s' "$STREAM" | grep -q '"done":true' || {
    echo "serve_bench: FAIL — streaming response missing the trailer" >&2
    exit 1
}

# Both daemons drain clean on SIGTERM.
kill -TERM "$PID_OFF" "$PID_ON"
wait "$PID_OFF" || { echo "serve_bench: FAIL — cache-off mcmd exited non-zero" >&2; cat "$OUT/off.err" >&2; exit 1; }
wait "$PID_ON" || { echo "serve_bench: FAIL — cache-on mcmd exited non-zero" >&2; cat "$OUT/on.err" >&2; exit 1; }

SPEEDUP=$(awk -v on="$TPUT_ON" -v off="$TPUT_OFF" 'BEGIN { printf "%.2f", on / off }')
echo "serve_bench: OK — cache-on $TPUT_ON vs cache-off $TPUT_OFF graphs/s (${SPEEDUP}x), $HITS cache hits, streaming + drain clean"
