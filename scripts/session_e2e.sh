#!/usr/bin/env sh
# session_e2e.sh — CI end-to-end test for the mcmd /v1/session API: build the
# daemon, create a session, stream NDJSON deltas and check every updated λ*
# and the stable arc IDs, verify the /debug/vars session accounting, then —
# with a second delta stream still held open — deliver SIGTERM and require
# the open stream to receive its terminal "draining" frame and the process
# to exit 0. Fails on any hang, wrong value, or missing trailer.
# docs/SERVING.md documents the session protocol.
set -eu

ADDR="${SESSION_E2E_ADDR:-127.0.0.1:18575}"
OUT="$(mktemp -d)"
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$OUT"' EXIT INT TERM

go build -o "$OUT/mcmd" ./cmd/mcmd

"$OUT/mcmd" -addr "$ADDR" -workers 2 -stats=false -session-ttl 5m \
    >"$OUT/mcmd.out" 2>"$OUT/mcmd.err" &
PID=$!

i=0
until curl -fs "http://$ADDR/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -lt 100 ] || { echo "session_e2e: FAIL — daemon never became healthy" >&2; cat "$OUT/mcmd.err" >&2; exit 1; }
    sleep 0.1
done

# Create a certified session over a 2-cycle: λ* = (3+5)/2 = 4.
CREATE=$(curl -fs -X POST "http://$ADDR/v1/session" \
    -d '{"text": "p mcm 2 2\na 1 2 3\na 2 1 5\n", "certify": true}')
printf '%s\n' "$CREATE" >"$OUT/create.json"
SID=$(printf '%s' "$CREATE" | grep -o '"session_id": "[^"]*"' | head -1 | cut -d'"' -f4)
[ -n "$SID" ] || { echo "session_e2e: FAIL — no session id in create response" >&2; cat "$OUT/create.json" >&2; exit 1; }
printf '%s' "$CREATE" | grep -q '"rat": "4"' || {
    echo "session_e2e: FAIL — initial solve is not 4" >&2; cat "$OUT/create.json" >&2; exit 1; }
printf '%s' "$CREATE" | grep -q '"certified": true' || {
    echo "session_e2e: FAIL — initial solve not certified" >&2; cat "$OUT/create.json" >&2; exit 1; }

# Stream three deltas: a weight edit (λ* = (9+5)/2 = 7), an insertion of a
# cheaper self-loop (fresh arc id 2, λ* = 1), and its deletion (back to 7).
printf '%s\n%s\n%s\n' \
    '{"seq": 1, "op": "set-weight", "arc": 0, "weight": 9}' \
    '{"seq": 2, "op": "insert-arc", "from": 0, "to": 0, "weight": 1}' \
    '{"seq": 3, "op": "delete-arc", "arc": 2}' |
    curl -fsN -X POST --data-binary @- "http://$ADDR/v1/session/$SID/deltas" >"$OUT/stream.json"

grep -q '"seq":1,"op":"set-weight","ok":true,"applied":true,"id":-1,"value":{"num":7' "$OUT/stream.json" || {
    echo "session_e2e: FAIL — weight delta answer wrong" >&2; cat "$OUT/stream.json" >&2; exit 1; }
grep -q '"seq":2,"op":"insert-arc","ok":true,"applied":true,"id":2,"value":{"num":1' "$OUT/stream.json" || {
    echo "session_e2e: FAIL — insert delta answer wrong (stable id or value)" >&2; cat "$OUT/stream.json" >&2; exit 1; }
grep -q '"seq":3,"op":"delete-arc","ok":true,"applied":true,"id":-1,"value":{"num":7' "$OUT/stream.json" || {
    echo "session_e2e: FAIL — delete delta answer wrong" >&2; cat "$OUT/stream.json" >&2; exit 1; }
grep -q '"done":true' "$OUT/stream.json" || {
    echo "session_e2e: FAIL — stream missing terminal frame" >&2; cat "$OUT/stream.json" >&2; exit 1; }

# /debug/vars must account for the session traffic.
VARS=$(curl -fs "http://$ADDR/debug/vars")
count() { printf '%s' "$VARS" | grep -o "\"$1\": [0-9]*" | head -1 | grep -o '[0-9]*$'; }
[ "$(count created)" -eq 1 ] || { echo "session_e2e: FAIL — sessions.created != 1" >&2; exit 1; }
[ "$(count deltas)" -ge 3 ] || { echo "session_e2e: FAIL — sessions.deltas < 3" >&2; exit 1; }
[ "$(count live)" -eq 1 ] || { echo "session_e2e: FAIL — sessions.live != 1" >&2; exit 1; }

# Hold a delta stream open (fifo upload), answer one delta on it, then
# SIGTERM the daemon: the open stream must get a clean terminal frame with
# "draining": true and the process must exit 0 instead of wedging. curl
# does not deliver response bytes while its -T upload is still open, so
# "the server answered" is observed via /debug/vars and the captured body
# is asserted only after the connection ends.
FIFO="$OUT/fifo"
mkfifo "$FIFO"
curl -sN -X POST -T "$FIFO" "http://$ADDR/v1/session/$SID/deltas" >"$OUT/drain.json" &
CURL_PID=$!
exec 9>"$FIFO"
printf '{"seq": 10, "op": "set-weight", "arc": 1, "weight": 5}\n' >&9

# Wait until the daemon has answered that delta (stream is live), then drain.
i=0
while :; do
    VARS=$(curl -fs "http://$ADDR/debug/vars")
    [ "$(count deltas)" -ge 4 ] && break
    i=$((i + 1))
    [ "$i" -lt 100 ] || { echo "session_e2e: FAIL — open stream never answered (deltas=$(count deltas))" >&2; exit 1; }
    sleep 0.1
done
kill -TERM "$PID"
if ! wait "$PID"; then
    echo "session_e2e: FAIL — mcmd exited non-zero on SIGTERM with an open session stream" >&2
    cat "$OUT/mcmd.err" >&2
    exit 1
fi
# The held-open upload makes curl's own exit status transport-dependent;
# the assertions live on the captured body.
exec 9>&-
wait "$CURL_PID" 2>/dev/null || true
grep -q '"seq":10,"op":"set-weight","ok":true' "$OUT/drain.json" || {
    echo "session_e2e: FAIL — open stream's delta answer missing from captured body" >&2; cat "$OUT/drain.json" >&2; exit 1; }
grep -q '"done":true' "$OUT/drain.json" || {
    echo "session_e2e: FAIL — open stream got no terminal frame on drain" >&2; cat "$OUT/drain.json" >&2; exit 1; }
grep -q '"draining":true' "$OUT/drain.json" || {
    echo "session_e2e: FAIL — terminal frame not marked draining" >&2; cat "$OUT/drain.json" >&2; exit 1; }

if curl -fs --max-time 2 "http://$ADDR/healthz" >/dev/null 2>&1; then
    echo "session_e2e: FAIL — daemon still answering after drain" >&2
    exit 1
fi

echo "session_e2e: OK — create, 3 streamed deltas with stable arc IDs, vars accounting, clean drain with terminal frame"
