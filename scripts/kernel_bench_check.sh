#!/usr/bin/env sh
# kernel_bench_check.sh — CI gate for the kernelization win: re-run the
# kernel sweep on the current machine and assert the conservative speedup
# floors (chain-family kernelization and the Session warm-start must both
# keep >= the floor, 1.2x by default). The floors gate "the win still
# exists", not "the machine matches the checked-in BENCH_kernel.json".
# Exit 2 on a violated floor, 1 on harness failure.
set -eu

FLOOR="${KERNEL_BENCH_FLOOR:-1.2}"
OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT INT TERM

go build -o "$OUT/mcmbench" ./cmd/mcmbench

# A fresh quick sweep, piped straight into the checker: the recorded
# BENCH_kernel.json documents a past machine; CI gates the present one.
"$OUT/mcmbench" -table kernel -json 2>"$OUT/sweep.err" >"$OUT/kernel.json" || {
    echo "kernel_bench_check: FAIL — sweep did not complete" >&2
    cat "$OUT/sweep.err" >&2 || true
    exit 1
}

"$OUT/mcmbench" -check-kernel "$OUT/kernel.json" -min-kernel-speedup "$FLOOR"
echo "kernel_bench_check: OK"
