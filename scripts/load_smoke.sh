#!/usr/bin/env sh
# load_smoke.sh — CI end-to-end load smoke for the mcmd batch solve daemon:
# build it, boot it on a private port, fire concurrent mixed batches (means,
# ratios, a certified solve, and one doomed 1ms deadline), assert the
# /debug/vars counters line up with what was sent, then deliver SIGTERM and
# require a clean drain (exit 0). Fails on any hang, miscount, or non-200
# where a 200 was owed. docs/SERVING.md documents the workflow.
set -eu

ADDR="${LOAD_SMOKE_ADDR:-127.0.0.1:18574}"
OUT="$(mktemp -d)"
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$OUT"' EXIT INT TERM

go build -o "$OUT/mcmd" ./cmd/mcmd

"$OUT/mcmd" -addr "$ADDR" -workers 4 -queue 16 -stats=false \
    >"$OUT/mcmd.out" 2>"$OUT/mcmd.err" &
PID=$!

# Wait for readiness.
i=0
until curl -fs "http://$ADDR/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -lt 100 ] || { echo "load_smoke: FAIL — daemon never became healthy" >&2; cat "$OUT/mcmd.err" >&2; exit 1; }
    sleep 0.1
done

# One batch: a certified mean, a ratio, and a deliberately doomed deadline.
# (mean of the 2-cycle is (3+5)/2 = 4; ratio of the transit cycle is 8/4 = 2.)
BATCH='{
  "requests": [
    {"id": "mean", "text": "p mcm 2 2\na 1 2 3\na 2 1 5\n", "certify": true},
    {"id": "ratio", "text": "p mcm 2 2\na 1 2 4 2\na 2 1 4 2\n", "problem": "ratio"},
    {"id": "doomed", "text": "p mcm 2 2\na 1 2 3\na 2 1 5\n", "algorithm": "lawler", "deadline_ms": 1, "certify": true}
  ]
}'

# Fire 8 concurrent copies and wait for each (a failed curl fails the smoke).
REQS=8
n=0
CURL_PIDS=""
while [ "$n" -lt "$REQS" ]; do
    curl -fs -X POST "http://$ADDR/v1/solve" -d "$BATCH" >"$OUT/resp.$n.json" &
    CURL_PIDS="$CURL_PIDS $!"
    n=$((n + 1))
done
for p in $CURL_PIDS; do
    wait "$p" || { echo "load_smoke: FAIL — a solve request failed outright" >&2; exit 1; }
done

# Every response must be a 200 batch with the right answers.
n=0
while [ "$n" -lt "$REQS" ]; do
    RESP="$OUT/resp.$n.json"
    grep -q '"id": "mean"' "$RESP" || { echo "load_smoke: FAIL — response $n incomplete" >&2; cat "$RESP" >&2; exit 1; }
    # λ* = 4 for the mean entry, ρ* = 2 for the ratio entry.
    grep -q '"rat": "4"' "$RESP" || { echo "load_smoke: FAIL — wrong mean in response $n" >&2; cat "$RESP" >&2; exit 1; }
    grep -q '"rat": "2"' "$RESP" || { echo "load_smoke: FAIL — wrong ratio in response $n" >&2; cat "$RESP" >&2; exit 1; }
    grep -q '"certified": true' "$RESP" || { echo "load_smoke: FAIL — certificate missing in response $n" >&2; cat "$RESP" >&2; exit 1; }
    n=$((n + 1))
done

# The /debug/vars counters must account for every graph: 8 requests x 3
# graphs, of which the doomed ones may or may not beat their 1ms budget.
VARS=$(curl -fs "http://$ADDR/debug/vars")
count() { printf '%s' "$VARS" | grep -o "\"$1\": [0-9]*" | head -1 | grep -o '[0-9]*'; }
REQUESTS=$(count requests)
GRAPHS=$(count graphs)
GRAPHS_OK=$(count graphs_ok)
ERRORS=$(count graph_errors)
RUNS=$(count solver_runs)
[ "$REQUESTS" -eq "$REQS" ] || { echo "load_smoke: FAIL — requests=$REQUESTS, want $REQS" >&2; exit 1; }
[ "$GRAPHS" -eq $((REQS * 3)) ] || { echo "load_smoke: FAIL — graphs=$GRAPHS, want $((REQS * 3))" >&2; exit 1; }
[ $((GRAPHS_OK + ERRORS)) -eq "$GRAPHS" ] || { echo "load_smoke: FAIL — $GRAPHS_OK ok + $ERRORS errors != $GRAPHS graphs" >&2; exit 1; }
[ "$GRAPHS_OK" -ge $((REQS * 2)) ] || { echo "load_smoke: FAIL — only $GRAPHS_OK solved graphs" >&2; exit 1; }
[ "${RUNS:-0}" -gt 0 ] || { echo "load_smoke: FAIL — no solver_runs on /debug/vars" >&2; exit 1; }

# pprof rides the same listener.
curl -fs -o /dev/null "http://$ADDR/debug/pprof/" || {
    echo "load_smoke: FAIL — /debug/pprof/ not served" >&2
    exit 1
}

# SIGTERM must drain clean: process exits 0 and the port closes.
kill -TERM "$PID"
if ! wait "$PID"; then
    echo "load_smoke: FAIL — mcmd exited non-zero on SIGTERM" >&2
    cat "$OUT/mcmd.err" >&2
    exit 1
fi
if curl -fs --max-time 2 "http://$ADDR/healthz" >/dev/null 2>&1; then
    echo "load_smoke: FAIL — daemon still answering after drain" >&2
    exit 1
fi

echo "load_smoke: OK — $REQUESTS requests, $GRAPHS_OK/$GRAPHS graphs solved, $RUNS solver runs, clean drain"
