// Comparison example: a laptop-scale rerun of the paper's Table 2 — all
// ten algorithms on SPRAND random graphs, with the cross-check that every
// algorithm returns the same exact λ*. The full-scale reproduction lives in
// cmd/mcmbench; this example keeps n small so it finishes in seconds.
//
//	go run ./examples/comparison
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	cfg := bench.Config{
		Sizes:     [][2]int{{256, 256}, {256, 512}, {256, 768}, {512, 512}, {512, 1024}, {512, 1536}},
		Seeds:     3,
		MinWeight: 1,
		MaxWeight: 10000,
		Timeout:   30 * time.Second,
		Verify:    true,
	}
	start := time.Now()
	rep, err := bench.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	rep.WriteTable2(os.Stdout)
	fmt.Println()
	rep.WriteRanking(os.Stdout)
	fmt.Println()
	rep.WriteIterations(os.Stdout)
	if len(rep.Mismatches) == 0 {
		fmt.Printf("\nall algorithms agreed exactly on every instance (%.1fs total)\n",
			time.Since(start).Seconds())
	} else {
		fmt.Println("\nMISMATCHES:", rep.Mismatches)
		os.Exit(1)
	}
}
