// Quickstart: build a small weighted digraph, compute its minimum cycle
// mean with two different algorithms, inspect the critical cycle and the
// critical subgraph.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
)

func main() {
	// A five-node graph with three cycles:
	//   A→B→C→A   weight 3+2+4 = 9, mean 3
	//   B→C→D→B   weight 2+1+6 = 9, mean 3
	//   C→D→E→C   weight 1+2+3 = 6, mean 2   ← the minimum mean cycle
	b := graph.NewBuilder(5, 7)
	names := []string{"A", "B", "C", "D", "E"}
	b.AddNodes(len(names))
	b.AddArc(0, 1, 3) // A→B
	b.AddArc(1, 2, 2) // B→C
	b.AddArc(2, 0, 4) // C→A
	b.AddArc(2, 3, 1) // C→D
	b.AddArc(3, 1, 6) // D→B
	b.AddArc(3, 4, 2) // D→E
	b.AddArc(4, 2, 3) // E→C
	g := b.Build()

	// Howard's algorithm: the paper's fastest.
	howard, err := core.ByName("howard")
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.MinimumCycleMean(g, howard, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("minimum cycle mean λ* = %v (%.4f), found by %s in %d iterations\n",
		res.Mean, res.Mean.Float64(), howard.Name(), res.Counts.Iterations)

	fmt.Println("critical cycle:")
	for _, id := range res.Cycle {
		a := g.Arc(id)
		fmt.Printf("  %s → %s (weight %d)\n", names[a.From], names[a.To], a.Weight)
	}

	// Cross-check with Karp's classical algorithm — every algorithm in the
	// library returns the same exact rational.
	karp, err := core.ByName("karp")
	if err != nil {
		log.Fatal(err)
	}
	res2, err := core.MinimumCycleMean(g, karp, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("karp agrees: λ* = %v (exact match: %v)\n", res2.Mean, res.Mean.Equal(res2.Mean))

	// The critical subgraph (paper §2) contains every minimum mean cycle.
	critical, _, err := core.CriticalSubgraph(g, res.Mean)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("critical subgraph: %d of %d arcs are critical\n", len(critical), g.NumArcs())

	// The maximum cycle mean comes for free by negation.
	max, err := core.MaximumCycleMean(g, howard, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("maximum cycle mean = %v\n", max.Mean)
}
