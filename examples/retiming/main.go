// Retiming example: minimize the clock period of a sequential circuit by
// relocating its registers (Leiserson–Saxe), and show how the paper's
// cycle-ratio machinery supplies the fundamental lower bound no retiming
// can beat. Uses the classic correlator circuit plus a generated one.
//
//	go run ./examples/retiming
package main

import (
	"fmt"
	"log"

	"repro/internal/circuit"
	"repro/internal/graph"
	"repro/internal/ratio"
	"repro/internal/retime"
)

func main() {
	fmt.Println("== Leiserson–Saxe correlator ==")
	correlator()

	fmt.Println()
	fmt.Println("== generated sequential circuit ==")
	generated()
}

func correlator() {
	// Host (δ=0), three adders (δ=7), four comparators (δ=3); registers on
	// the top row only — the textbook starting point with period 24.
	delays := []int64{0, 7, 7, 7, 3, 3, 3, 3}
	b := graph.NewBuilder(8, 11)
	b.AddNodes(8)
	b.AddArc(0, 4, 1)
	b.AddArc(4, 5, 1)
	b.AddArc(5, 6, 1)
	b.AddArc(6, 7, 1)
	b.AddArc(7, 3, 0)
	b.AddArc(3, 2, 0)
	b.AddArc(2, 1, 0)
	b.AddArc(1, 0, 0)
	b.AddArc(6, 3, 0)
	b.AddArc(5, 2, 0)
	b.AddArc(4, 1, 0)
	rg := &retime.Graph{G: b.Build(), Delay: delays}
	report(rg)
}

func generated() {
	nl, err := circuit.Generate(circuit.GenConfig{
		FFs: 16, CloudGates: 12, MaxFanin: 3, Feedback: 4, PIs: 4, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	rg, err := retime.FromNetlist(nl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("retiming graph: %d vertices, %d edges\n", rg.G.NumNodes(), rg.G.NumArcs())
	report(rg)
}

func report(rg *retime.Graph) {
	before, err := rg.Period()
	if err != nil {
		log.Fatal(err)
	}
	howard, err := ratio.ByName("howard")
	if err != nil {
		log.Fatal(err)
	}
	bound, err := rg.LowerBound(howard)
	if err != nil {
		log.Fatal(err)
	}
	res, err := retime.Minimize(rg)
	if err != nil {
		log.Fatal(err)
	}
	after, err := rg.Apply(res).Period()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("period before retiming: %d\n", before)
	fmt.Printf("cycle-ratio lower bound (max delay/registers over cycles): %v\n", bound)
	fmt.Printf("optimal retimed period: %d (realized: %d)\n", res.Period, after)
	moved := 0
	for id := graph.ArcID(0); int(id) < rg.G.NumArcs(); id++ {
		if rg.G.Arc(id).Weight != res.Registers[id] {
			moved++
		}
	}
	fmt.Printf("registers moved on %d of %d edges\n", moved, rg.G.NumArcs())
}
