// Circuit example: generate a synthetic cyclic sequential circuit (the
// substitution for the paper's 1991 logic-synthesis benchmarks), extract
// its latch-to-latch timing graph, and compute the retiming clock-period
// bound with several of the paper's algorithms — the paper's own CAD use
// case ("optimal clock schedules for circuits").
//
//	go run ./examples/circuit
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/perf"
)

func main() {
	nl, err := circuit.Generate(circuit.GenConfig{
		FFs: 48, CloudGates: 20, MaxFanin: 3, Feedback: 12, PIs: 6, Seed: 2026,
	})
	if err != nil {
		log.Fatal(err)
	}
	pis, pos, ffs, comb := nl.Counts()
	fmt.Printf("generated circuit: %d PIs, %d POs, %d flip-flops, %d gates\n", pis, pos, ffs, comb)

	// Show the first lines of the .bench netlist.
	var sb strings.Builder
	if err := nl.WriteBench(&sb); err != nil {
		log.Fatal(err)
	}
	lines := strings.SplitN(sb.String(), "\n", 9)
	fmt.Println("netlist excerpt (.bench):")
	for _, line := range lines[:8] {
		fmt.Println("  ", line)
	}
	fmt.Println("   ...")

	lg, err := circuit.LatchGraph(nl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("latch graph: %d nodes (host + FFs), %d arcs\n", lg.NumNodes(), lg.NumArcs())

	fmt.Println("clock-period lower bound (max mean cycle of the latch graph):")
	var cycle []graph.ArcID
	for _, name := range []string{"howard", "yto", "karp", "burns"} {
		algo, err := core.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		period, res, err := perf.ClockPeriodBound(nl, algo)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-7s  T >= %v gate delays  (%s)\n", name, period, res.Counts)
		cycle = res.Cycle
	}

	fmt.Printf("critical register-to-register loop (%d latch hops):\n", len(cycle))
	for _, id := range cycle {
		a := lg.Arc(id)
		fmt.Printf("  latch %2d → latch %2d  combinational depth %d\n", a.From, a.To, a.Weight)
	}

	// Write the full netlist next to the binary for inspection.
	f, err := os.CreateTemp("", "synth-*.bench")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := nl.WriteBench(f); err != nil {
		log.Fatal(err)
	}
	fmt.Println("full netlist written to", f.Name())
}
