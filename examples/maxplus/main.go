// Max-plus example: the discrete-event-system view from which Howard's
// algorithm entered the paper (Cochet-Terrasson et al., max-plus spectral
// computation). A small cyclic railway timetable is modeled as
// x(k+1) = A ⊗ x(k): x_i(k) is the k-th departure time at station i and
// A[i][j] the driving+transfer time from j to i. The throughput of the
// whole network is the max-plus eigenvalue of A — the maximum cycle mean
// of its precedence graph — and an eigenvector is an optimal steady-state
// timetable.
//
//	go run ./examples/maxplus
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/maxplus"
)

func main() {
	// Three stations on two interleaved loops:
	//   S0 → S1 (35 min), S1 → S0 (25 min)           — loop mean 30
	//   S1 → S2 (40 min), S2 → S1 (44 min)           — loop mean 42  ← critical
	//   S2 → S0 (36 min), S0 → S2 (30 min)           — loop mean 33
	A := maxplus.NewMatrix(3)
	A.Set(1, 0, 35)
	A.Set(0, 1, 25)
	A.Set(2, 1, 40)
	A.Set(1, 2, 44)
	A.Set(0, 2, 36)
	A.Set(2, 0, 30)

	howard, err := core.ByName("howard")
	if err != nil {
		log.Fatal(err)
	}

	lambda, vec, err := A.Eigenvector(howard)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("max-plus eigenvalue λ = %v minutes between departures\n", lambda)
	fmt.Println("(the S1↔S2 loop with mean (40+44)/2 = 42 is the bottleneck)")
	fmt.Println()
	fmt.Println("steady-state timetable offsets (an eigenvector):")
	for i, v := range vec {
		fmt.Printf("  station S%d departs at t ≡ %v (mod λ)\n", i, v)
	}

	// Operational check: simulate the system and watch the cycle time
	// converge to the eigenvalue.
	x0 := []maxplus.Value{0, 0, 0}
	for _, k := range []int{1, 5, 20, 100} {
		fmt.Printf("simulated cycle time after %3d departures: %.3f\n", k, A.CycleTime(x0, k))
	}
	fmt.Printf("eigenvalue (exact):                          %.3f\n", lambda.Float64())
}
