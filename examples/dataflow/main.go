// Dataflow example: compute the iteration bound of DSP dataflow graphs —
// the application from the paper's introduction ("the iteration bound of a
// dataflow graph [Ito & Parhi]"). Two classic filters are analyzed: a
// second-order IIR biquad and a two-stage lattice filter, using the ratio
// form of Howard's and Burns' algorithms.
//
//	go run ./examples/dataflow
package main

import (
	"fmt"
	"log"

	"repro/internal/perf"
	"repro/internal/ratio"
)

func main() {
	biquad := buildBiquad()
	lattice := buildLattice()

	for _, algoName := range []string{"howard", "burns"} {
		algo, err := ratio.ByName(algoName)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== iteration bounds via %s's ratio algorithm ==\n", algoName)
		for _, c := range []struct {
			name string
			dfg  *perf.Dataflow
		}{{"second-order IIR biquad", biquad}, {"two-stage lattice", lattice}} {
			bound, cycle, err := c.dfg.IterationBound(algo)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-24s T∞ = %v time units  (critical loop: %v)\n", c.name, bound, cycle)
		}
	}
	fmt.Println()
	fmt.Println("The iteration bound is the minimum achievable iteration period of the")
	fmt.Println("filter under unlimited hardware; no retiming or unfolding can beat it.")
}

// buildBiquad models y[n] = x[n] + a·y[n-1] + b·y[n-2] with unit-time
// adders and two-unit multipliers.
func buildBiquad() *perf.Dataflow {
	d := perf.NewDataflow()
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	mustActor := func(name string, w int64) {
		_, err := d.AddActor(name, w)
		must(err)
	}
	mustActor("add1", 1)
	mustActor("add2", 1)
	mustActor("mulA", 2)
	mustActor("mulB", 2)
	// y[n-1] loop: add1 → (z⁻¹) → mulA → add1.
	must(d.AddEdge("add1", "mulA", 1))
	must(d.AddEdge("mulA", "add1", 0))
	// y[n-2] loop: add1 → add2 → (z⁻²) → mulB → add1.
	must(d.AddEdge("add1", "add2", 0))
	must(d.AddEdge("add2", "mulB", 2))
	must(d.AddEdge("mulB", "add1", 0))
	return d
}

// buildLattice models a two-stage normalized lattice filter: each stage has
// two multiplies (2 units) and two adds (1 unit) with a single-delay
// feedback around the stages.
func buildLattice() *perf.Dataflow {
	d := perf.NewDataflow()
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	mustActor := func(name string, w int64) {
		_, err := d.AddActor(name, w)
		must(err)
	}
	for _, stage := range []string{"s1", "s2"} {
		mustActor(stage+"_mulF", 2)
		mustActor(stage+"_mulB", 2)
		mustActor(stage+"_addF", 1)
		mustActor(stage+"_addB", 1)
		must(d.AddEdge(stage+"_mulF", stage+"_addF", 0))
		must(d.AddEdge(stage+"_addF", stage+"_mulB", 0))
		must(d.AddEdge(stage+"_mulB", stage+"_addB", 0))
	}
	// Forward chain s1 → s2 and delayed feedback s2 → s1.
	must(d.AddEdge("s1_addF", "s2_mulF", 0))
	must(d.AddEdge("s2_addB", "s1_mulF", 1))
	// Intra-stage recursions through one delay each.
	must(d.AddEdge("s1_addB", "s1_mulF", 1))
	must(d.AddEdge("s2_addB", "s2_mulF", 1))
	return d
}
