package pq

import "repro/internal/counter"

// BinNode is a handle into a BinHeap.
type BinNode[K any] struct {
	Key   K
	Value int32
	pos   int32 // index in the heap array, -1 when removed
}

// BinHeap is a classic array-backed binary heap with handle-based
// decrease-key (the handle tracks its array position). It exists as an
// ablation alternative to the Fibonacci heap: DecreaseKey costs O(log n)
// instead of O(1) amortized, but constants are small.
type BinHeap[K any] struct {
	less func(a, b K) bool
	a    []*BinNode[K]
	ops  *counter.Counts
}

// NewBinHeap returns an empty binary heap ordered by less, counting
// operations into ops when non-nil.
func NewBinHeap[K any](less func(a, b K) bool, ops *counter.Counts) *BinHeap[K] {
	return &BinHeap[K]{less: less, ops: ops}
}

// Len returns the number of items in the heap.
func (h *BinHeap[K]) Len() int { return len(h.a) }

// Insert adds a new item and returns its handle.
func (h *BinHeap[K]) Insert(key K, value int32) *BinNode[K] {
	if h.ops != nil {
		h.ops.HeapInserts++
	}
	n := &BinNode[K]{Key: key, Value: value, pos: int32(len(h.a))}
	h.a = append(h.a, n)
	h.up(int(n.pos))
	return n
}

// Min returns the minimum item's handle without removing it, or nil.
func (h *BinHeap[K]) Min() *BinNode[K] {
	if len(h.a) == 0 {
		return nil
	}
	return h.a[0]
}

// ExtractMin removes and returns the minimum item, or nil if empty.
func (h *BinHeap[K]) ExtractMin() *BinNode[K] {
	if h.ops != nil {
		h.ops.HeapExtractMins++
	}
	if len(h.a) == 0 {
		return nil
	}
	top := h.a[0]
	h.removeAt(0)
	return top
}

// DecreaseKey lowers the key of node. Panics if the key would increase or
// the node was removed.
func (h *BinHeap[K]) DecreaseKey(node *BinNode[K], key K) {
	if h.ops != nil {
		h.ops.HeapDecreaseKeys++
	}
	if node.pos < 0 {
		panic("pq: DecreaseKey on a removed node")
	}
	if h.less(node.Key, key) {
		panic("pq: DecreaseKey with a larger key")
	}
	node.Key = key
	h.up(int(node.pos))
}

// Delete removes node from the heap. Panics if already removed.
func (h *BinHeap[K]) Delete(node *BinNode[K]) {
	if h.ops != nil {
		h.ops.HeapDeletes++
	}
	if node.pos < 0 {
		panic("pq: Delete on a removed node")
	}
	h.removeAt(int(node.pos))
}

func (h *BinHeap[K]) removeAt(i int) {
	last := len(h.a) - 1
	node := h.a[i]
	h.swap(i, last)
	h.a = h.a[:last]
	node.pos = -1
	if i < last {
		h.down(i)
		h.up(i)
	}
}

func (h *BinHeap[K]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.a[i].Key, h.a[parent].Key) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *BinHeap[K]) down(i int) {
	n := len(h.a)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(h.a[l].Key, h.a[smallest].Key) {
			smallest = l
		}
		if r < n && h.less(h.a[r].Key, h.a[smallest].Key) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

func (h *BinHeap[K]) swap(i, j int) {
	h.a[i], h.a[j] = h.a[j], h.a[i]
	h.a[i].pos = int32(i)
	h.a[j].pos = int32(j)
}
