package pq

import (
	"fmt"

	"repro/internal/counter"
)

// Kind selects a heap implementation; the DAC'99 study used Fibonacci heaps
// (LEDA's default), and the other kinds support the heap ablation bench.
type Kind int

const (
	Fibonacci Kind = iota
	Binary
	Pairing
	// Linear is an unsorted array with O(n) extract-min; inside KO it
	// realizes the heap-free Θ(n³) Karp–Orlin variant (Table 1, row 6).
	Linear
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case Fibonacci:
		return "fibonacci"
	case Binary:
		return "binary"
	case Pairing:
		return "pairing"
	case Linear:
		return "linear"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Node is a heap-implementation-independent handle.
type Node[K any] interface {
	// GetKey returns the node's current key.
	GetKey() K
	// GetValue returns the payload stored at insertion.
	GetValue() int32
}

// Heap is the common interface KO and YTO are written against, so the heap
// implementation can be swapped per run.
type Heap[K any] interface {
	Len() int
	Insert(key K, value int32) Node[K]
	Min() Node[K]
	ExtractMin() Node[K]
	DecreaseKey(n Node[K], key K)
	Delete(n Node[K])
}

// GetKey returns the node's key.
func (n *FibNode[K]) GetKey() K { return n.Key }

// GetValue returns the node's payload.
func (n *FibNode[K]) GetValue() int32 { return n.Value }

// GetKey returns the node's key.
func (n *BinNode[K]) GetKey() K { return n.Key }

// GetValue returns the node's payload.
func (n *BinNode[K]) GetValue() int32 { return n.Value }

// GetKey returns the node's key.
func (n *PairNode[K]) GetKey() K { return n.Key }

// GetValue returns the node's payload.
func (n *PairNode[K]) GetValue() int32 { return n.Value }

type fibAdapter[K any] struct{ h *FibHeap[K] }

func (a fibAdapter[K]) Len() int { return a.h.Len() }
func (a fibAdapter[K]) Insert(key K, value int32) Node[K] {
	return a.h.Insert(key, value)
}
func (a fibAdapter[K]) Min() Node[K] {
	if n := a.h.Min(); n != nil {
		return n
	}
	return nil
}
func (a fibAdapter[K]) ExtractMin() Node[K] {
	if n := a.h.ExtractMin(); n != nil {
		return n
	}
	return nil
}
func (a fibAdapter[K]) DecreaseKey(n Node[K], key K) {
	a.h.DecreaseKey(n.(*FibNode[K]), key)
}
func (a fibAdapter[K]) Delete(n Node[K]) { a.h.Delete(n.(*FibNode[K])) }

type binAdapter[K any] struct{ h *BinHeap[K] }

func (a binAdapter[K]) Len() int { return a.h.Len() }
func (a binAdapter[K]) Insert(key K, value int32) Node[K] {
	return a.h.Insert(key, value)
}
func (a binAdapter[K]) Min() Node[K] {
	if n := a.h.Min(); n != nil {
		return n
	}
	return nil
}
func (a binAdapter[K]) ExtractMin() Node[K] {
	if n := a.h.ExtractMin(); n != nil {
		return n
	}
	return nil
}
func (a binAdapter[K]) DecreaseKey(n Node[K], key K) {
	a.h.DecreaseKey(n.(*BinNode[K]), key)
}
func (a binAdapter[K]) Delete(n Node[K]) { a.h.Delete(n.(*BinNode[K])) }

type pairAdapter[K any] struct{ h *PairHeap[K] }

func (a pairAdapter[K]) Len() int { return a.h.Len() }
func (a pairAdapter[K]) Insert(key K, value int32) Node[K] {
	return a.h.Insert(key, value)
}
func (a pairAdapter[K]) Min() Node[K] {
	if n := a.h.Min(); n != nil {
		return n
	}
	return nil
}
func (a pairAdapter[K]) ExtractMin() Node[K] {
	if n := a.h.ExtractMin(); n != nil {
		return n
	}
	return nil
}
func (a pairAdapter[K]) DecreaseKey(n Node[K], key K) {
	a.h.DecreaseKey(n.(*PairNode[K]), key)
}
func (a pairAdapter[K]) Delete(n Node[K]) { a.h.Delete(n.(*PairNode[K])) }

// New constructs a heap of the requested kind behind the common interface.
func New[K any](kind Kind, less func(a, b K) bool, ops *counter.Counts) Heap[K] {
	switch kind {
	case Fibonacci:
		return fibAdapter[K]{NewFibHeap(less, ops)}
	case Binary:
		return binAdapter[K]{NewBinHeap(less, ops)}
	case Pairing:
		return pairAdapter[K]{NewPairHeap(less, ops)}
	case Linear:
		return linAdapter[K]{NewLinHeap(less, ops)}
	default:
		panic(fmt.Sprintf("pq: unknown heap kind %d", int(kind)))
	}
}
