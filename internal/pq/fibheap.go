// Package pq provides the priority queues used by the parametric shortest
// path algorithms (KO and YTO): a Fibonacci heap — the paper's choice, being
// LEDA's default — plus binary and pairing heaps for ablation experiments.
//
// All heaps share the same handle-based API (Insert returns a handle that
// DecreaseKey and Delete accept) and all can be instrumented with a
// *counter.Counts so the §4.2 heap-operation comparison can be regenerated.
package pq

import "repro/internal/counter"

// FibNode is a handle into a FibHeap.
type FibNode[K any] struct {
	Key   K
	Value int32

	parent, child   *FibNode[K]
	left, right     *FibNode[K]
	degree          int32
	mark            bool
	inHeap          bool
	minimumPossible bool // set transiently by Delete to act as -infinity
}

// FibHeap is a Fibonacci heap with O(1) amortized Insert and DecreaseKey and
// O(log n) amortized ExtractMin. The zero value is not usable; construct
// with NewFibHeap.
type FibHeap[K any] struct {
	less func(a, b K) bool
	min  *FibNode[K]
	n    int
	ops  *counter.Counts
	cons []*FibNode[K] // consolidation scratch
}

// NewFibHeap returns an empty Fibonacci heap ordered by less. If ops is
// non-nil, heap operations are counted into it.
func NewFibHeap[K any](less func(a, b K) bool, ops *counter.Counts) *FibHeap[K] {
	return &FibHeap[K]{less: less, ops: ops}
}

// Len returns the number of items in the heap.
func (h *FibHeap[K]) Len() int { return h.n }

// Insert adds a new item and returns its handle.
func (h *FibHeap[K]) Insert(key K, value int32) *FibNode[K] {
	if h.ops != nil {
		h.ops.HeapInserts++
	}
	node := &FibNode[K]{Key: key, Value: value, inHeap: true}
	node.left, node.right = node, node
	h.meldRoot(node)
	h.n++
	return node
}

// Min returns the handle of the minimum item without removing it, or nil if
// the heap is empty.
func (h *FibHeap[K]) Min() *FibNode[K] { return h.min }

// ExtractMin removes and returns the minimum item, or nil if empty.
func (h *FibHeap[K]) ExtractMin() *FibNode[K] {
	if h.ops != nil {
		h.ops.HeapExtractMins++
	}
	z := h.min
	if z == nil {
		return nil
	}
	// Promote children to the root list.
	if c := z.child; c != nil {
		for {
			next := c.right
			c.parent = nil
			c.left, c.right = c, c
			h.meldRootNoMin(c)
			if next == z.child {
				break
			}
			c = next
		}
		z.child = nil
	}
	// Remove z from the root list.
	if z.right == z {
		h.min = nil
	} else {
		z.left.right = z.right
		z.right.left = z.left
		h.min = z.right // arbitrary root; fixed by consolidate
		h.consolidate()
	}
	z.left, z.right = nil, nil
	z.inHeap = false
	h.n--
	return z
}

// DecreaseKey lowers the key of node to key. It panics if the new key would
// be greater than the current key or if node is not in the heap.
func (h *FibHeap[K]) DecreaseKey(node *FibNode[K], key K) {
	if h.ops != nil {
		h.ops.HeapDecreaseKeys++
	}
	if !node.inHeap {
		panic("pq: DecreaseKey on a node not in the heap")
	}
	if h.less(node.Key, key) {
		panic("pq: DecreaseKey with a larger key")
	}
	node.Key = key
	h.cutIfViolating(node)
}

// Delete removes node from the heap. It panics if node is not in the heap.
func (h *FibHeap[K]) Delete(node *FibNode[K]) {
	if h.ops != nil {
		h.ops.HeapDeletes++
	}
	if !node.inHeap {
		panic("pq: Delete on a node not in the heap")
	}
	// Hoist node to the root as if it had -infinity key, then extract.
	node.minimumPossible = true
	h.cutIfViolating(node)
	h.min = node
	// ExtractMin will count an extract; compensate so Delete counts once.
	if h.ops != nil {
		h.ops.HeapExtractMins--
	}
	h.ExtractMin()
	node.minimumPossible = false
}

// nodeLess orders nodes, treating a node flagged by Delete as minus
// infinity.
func (h *FibHeap[K]) nodeLess(a, b *FibNode[K]) bool {
	if a.minimumPossible {
		return true
	}
	if b.minimumPossible {
		return false
	}
	return h.less(a.Key, b.Key)
}

func (h *FibHeap[K]) meldRoot(node *FibNode[K]) {
	h.meldRootNoMin(node)
	if h.min == nil || h.nodeLess(node, h.min) {
		h.min = node
	}
}

func (h *FibHeap[K]) meldRootNoMin(node *FibNode[K]) {
	if h.min == nil {
		h.min = node
		node.left, node.right = node, node
		return
	}
	// Splice node to the right of h.min.
	node.left = h.min
	node.right = h.min.right
	h.min.right.left = node
	h.min.right = node
}

func (h *FibHeap[K]) consolidate() {
	h.cons = h.cons[:0]
	// Collect roots.
	var roots []*FibNode[K]
	start := h.min
	for r := start; ; {
		roots = append(roots, r)
		r = r.right
		if r == start {
			break
		}
	}
	for _, r := range roots {
		x := r
		d := int(x.degree)
		for {
			for len(h.cons) <= d {
				h.cons = append(h.cons, nil)
			}
			y := h.cons[d]
			if y == nil {
				break
			}
			if h.nodeLess(y, x) {
				x, y = y, x
			}
			h.link(y, x)
			h.cons[d] = nil
			d++
		}
		for len(h.cons) <= d {
			h.cons = append(h.cons, nil)
		}
		h.cons[d] = x
	}
	h.min = nil
	for _, x := range h.cons {
		if x == nil {
			continue
		}
		x.left, x.right = x, x
		h.meldRoot(x)
	}
	for i := range h.cons {
		h.cons[i] = nil
	}
}

// link makes y a child of x (both roots, key(x) <= key(y)).
func (h *FibHeap[K]) link(y, x *FibNode[K]) {
	// Remove y from root list.
	y.left.right = y.right
	y.right.left = y.left
	y.parent = x
	if x.child == nil {
		x.child = y
		y.left, y.right = y, y
	} else {
		y.left = x.child
		y.right = x.child.right
		x.child.right.left = y
		x.child.right = y
	}
	x.degree++
	y.mark = false
}

func (h *FibHeap[K]) cutIfViolating(node *FibNode[K]) {
	p := node.parent
	if p != nil && h.nodeLess(node, p) {
		h.cut(node, p)
		h.cascadingCut(p)
	}
	if h.nodeLess(node, h.min) {
		h.min = node
	}
}

func (h *FibHeap[K]) cut(node, parent *FibNode[K]) {
	// Remove node from parent's child list.
	if node.right == node {
		parent.child = nil
	} else {
		node.left.right = node.right
		node.right.left = node.left
		if parent.child == node {
			parent.child = node.right
		}
	}
	parent.degree--
	node.parent = nil
	node.mark = false
	node.left, node.right = node, node
	h.meldRootNoMin(node)
}

func (h *FibHeap[K]) cascadingCut(node *FibNode[K]) {
	for {
		p := node.parent
		if p == nil {
			return
		}
		if !node.mark {
			node.mark = true
			return
		}
		h.cut(node, p)
		node = p
	}
}
