package pq

import "repro/internal/counter"

// LinNode is a handle into a LinHeap.
type LinNode[K any] struct {
	Key   K
	Value int32
	pos   int32 // index in the array, -1 when removed
}

// LinHeap is the degenerate "heap": an unsorted array with O(1) insert and
// decrease-key but O(n) extract-min. Plugged into the KO algorithm it
// realizes the Θ(n³) variant of Karp & Orlin that the paper's Table 1
// lists as row 6 (the heap-free original), so the heap ablation spans the
// full historical range.
type LinHeap[K any] struct {
	less func(a, b K) bool
	a    []*LinNode[K]
	ops  *counter.Counts
}

// NewLinHeap returns an empty linear-scan heap.
func NewLinHeap[K any](less func(a, b K) bool, ops *counter.Counts) *LinHeap[K] {
	return &LinHeap[K]{less: less, ops: ops}
}

// Len returns the number of items.
func (h *LinHeap[K]) Len() int { return len(h.a) }

// Insert adds an item in O(1).
func (h *LinHeap[K]) Insert(key K, value int32) *LinNode[K] {
	if h.ops != nil {
		h.ops.HeapInserts++
	}
	n := &LinNode[K]{Key: key, Value: value, pos: int32(len(h.a))}
	h.a = append(h.a, n)
	return n
}

// Min scans for the minimum in O(n).
func (h *LinHeap[K]) Min() *LinNode[K] {
	if len(h.a) == 0 {
		return nil
	}
	best := h.a[0]
	for _, n := range h.a[1:] {
		if h.less(n.Key, best.Key) {
			best = n
		}
	}
	return best
}

// ExtractMin removes and returns the minimum in O(n).
func (h *LinHeap[K]) ExtractMin() *LinNode[K] {
	if h.ops != nil {
		h.ops.HeapExtractMins++
	}
	top := h.Min()
	if top == nil {
		return nil
	}
	h.removeAt(int(top.pos))
	return top
}

// DecreaseKey updates the key in O(1).
func (h *LinHeap[K]) DecreaseKey(node *LinNode[K], key K) {
	if h.ops != nil {
		h.ops.HeapDecreaseKeys++
	}
	if node.pos < 0 {
		panic("pq: DecreaseKey on a removed node")
	}
	if h.less(node.Key, key) {
		panic("pq: DecreaseKey with a larger key")
	}
	node.Key = key
}

// Delete removes the node in O(1) (swap with last).
func (h *LinHeap[K]) Delete(node *LinNode[K]) {
	if h.ops != nil {
		h.ops.HeapDeletes++
	}
	if node.pos < 0 {
		panic("pq: Delete on a removed node")
	}
	h.removeAt(int(node.pos))
}

func (h *LinHeap[K]) removeAt(i int) {
	last := len(h.a) - 1
	h.a[i].pos = -1
	if i != last {
		h.a[i] = h.a[last]
		h.a[i].pos = int32(i)
	}
	h.a = h.a[:last]
}

// GetKey returns the node's key.
func (n *LinNode[K]) GetKey() K { return n.Key }

// GetValue returns the node's payload.
func (n *LinNode[K]) GetValue() int32 { return n.Value }

type linAdapter[K any] struct{ h *LinHeap[K] }

func (a linAdapter[K]) Len() int { return a.h.Len() }
func (a linAdapter[K]) Insert(key K, value int32) Node[K] {
	return a.h.Insert(key, value)
}
func (a linAdapter[K]) Min() Node[K] {
	if n := a.h.Min(); n != nil {
		return n
	}
	return nil
}
func (a linAdapter[K]) ExtractMin() Node[K] {
	if n := a.h.ExtractMin(); n != nil {
		return n
	}
	return nil
}
func (a linAdapter[K]) DecreaseKey(n Node[K], key K) {
	a.h.DecreaseKey(n.(*LinNode[K]), key)
}
func (a linAdapter[K]) Delete(n Node[K]) { a.h.Delete(n.(*LinNode[K])) }
