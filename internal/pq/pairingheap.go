package pq

import "repro/internal/counter"

// PairNode is a handle into a PairHeap.
type PairNode[K any] struct {
	Key   K
	Value int32

	child, sibling, prev *PairNode[K] // prev: left sibling, or parent if first child
	inHeap               bool
	minimumPossible      bool
}

// PairHeap is a pairing heap: the same amortized interface as the Fibonacci
// heap with simpler structure and, often, better constants in practice. It
// rounds out the heap ablation for the KO/YTO experiments.
type PairHeap[K any] struct {
	less func(a, b K) bool
	root *PairNode[K]
	n    int
	ops  *counter.Counts
}

// NewPairHeap returns an empty pairing heap ordered by less.
func NewPairHeap[K any](less func(a, b K) bool, ops *counter.Counts) *PairHeap[K] {
	return &PairHeap[K]{less: less, ops: ops}
}

// Len returns the number of items.
func (h *PairHeap[K]) Len() int { return h.n }

func (h *PairHeap[K]) nodeLess(a, b *PairNode[K]) bool {
	if a.minimumPossible {
		return true
	}
	if b.minimumPossible {
		return false
	}
	return h.less(a.Key, b.Key)
}

// Insert adds a new item and returns its handle.
func (h *PairHeap[K]) Insert(key K, value int32) *PairNode[K] {
	if h.ops != nil {
		h.ops.HeapInserts++
	}
	node := &PairNode[K]{Key: key, Value: value, inHeap: true}
	h.root = h.meld(h.root, node)
	h.n++
	return node
}

// Min returns the minimum item's handle, or nil.
func (h *PairHeap[K]) Min() *PairNode[K] { return h.root }

// ExtractMin removes and returns the minimum item, or nil if empty.
func (h *PairHeap[K]) ExtractMin() *PairNode[K] {
	if h.ops != nil {
		h.ops.HeapExtractMins++
	}
	top := h.root
	if top == nil {
		return nil
	}
	h.root = h.mergePairs(top.child)
	if h.root != nil {
		h.root.prev = nil
		h.root.sibling = nil
	}
	top.child, top.sibling, top.prev = nil, nil, nil
	top.inHeap = false
	h.n--
	return top
}

// DecreaseKey lowers node's key. Panics on key increase or a removed node.
func (h *PairHeap[K]) DecreaseKey(node *PairNode[K], key K) {
	if h.ops != nil {
		h.ops.HeapDecreaseKeys++
	}
	if !node.inHeap {
		panic("pq: DecreaseKey on a node not in the heap")
	}
	if h.less(node.Key, key) {
		panic("pq: DecreaseKey with a larger key")
	}
	node.Key = key
	if node == h.root {
		return
	}
	h.detach(node)
	h.root = h.meld(h.root, node)
}

// Delete removes node from the heap.
func (h *PairHeap[K]) Delete(node *PairNode[K]) {
	if h.ops != nil {
		h.ops.HeapDeletes++
	}
	if !node.inHeap {
		panic("pq: Delete on a node not in the heap")
	}
	node.minimumPossible = true
	if node != h.root {
		h.detach(node)
		h.root = h.meld(h.root, node)
	}
	if h.ops != nil {
		h.ops.HeapExtractMins-- // compensate the extract below
	}
	h.ExtractMin()
	node.minimumPossible = false
}

// detach unlinks node (not the root) from its parent/sibling chain.
func (h *PairHeap[K]) detach(node *PairNode[K]) {
	if node.prev.child == node { // node is first child: prev is the parent
		node.prev.child = node.sibling
	} else {
		node.prev.sibling = node.sibling
	}
	if node.sibling != nil {
		node.sibling.prev = node.prev
	}
	node.prev, node.sibling = nil, nil
}

func (h *PairHeap[K]) meld(a, b *PairNode[K]) *PairNode[K] {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if h.nodeLess(b, a) {
		a, b = b, a
	}
	// b becomes a's first child.
	b.prev = a
	b.sibling = a.child
	if a.child != nil {
		a.child.prev = b
	}
	a.child = b
	return a
}

// mergePairs performs the two-pass pairing over a sibling list.
func (h *PairHeap[K]) mergePairs(first *PairNode[K]) *PairNode[K] {
	if first == nil {
		return nil
	}
	// Pass 1: meld adjacent pairs, collecting results.
	var pairs []*PairNode[K]
	for first != nil {
		a := first
		b := first.sibling
		var next *PairNode[K]
		if b != nil {
			next = b.sibling
		}
		a.prev, a.sibling = nil, nil
		if b != nil {
			b.prev, b.sibling = nil, nil
		}
		pairs = append(pairs, h.meld(a, b))
		first = next
	}
	// Pass 2: meld right to left.
	result := pairs[len(pairs)-1]
	for i := len(pairs) - 2; i >= 0; i-- {
		result = h.meld(result, pairs[i])
	}
	return result
}
