package pq

import (
	"math/rand"
	"testing"
)

// benchWorkload produces a deterministic mixed op sequence representative
// of the KO/YTO usage pattern: many inserts, interleaved decrease-keys,
// and extract-mins.
func benchHeap(b *testing.B, kind Kind) {
	rng := rand.New(rand.NewSource(1))
	const live = 4096
	keys := make([]int64, live)
	for i := range keys {
		keys[i] = rng.Int63n(1 << 40)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := New[int64](kind, func(a, b int64) bool { return a < b }, nil)
		handles := make([]Node[int64], live)
		for j := 0; j < live; j++ {
			handles[j] = h.Insert(keys[j], int32(j))
		}
		for j := 0; j < live/2; j++ {
			idx := j * 2
			h.DecreaseKey(handles[idx], handles[idx].GetKey()-1000)
		}
		for h.Len() > 0 {
			h.ExtractMin()
		}
	}
}

func BenchmarkFibHeap(b *testing.B)     { benchHeap(b, Fibonacci) }
func BenchmarkBinaryHeap(b *testing.B)  { benchHeap(b, Binary) }
func BenchmarkPairingHeap(b *testing.B) { benchHeap(b, Pairing) }
