package pq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/counter"
)

func intLess(a, b int64) bool { return a < b }

var kinds = []Kind{Fibonacci, Binary, Pairing, Linear}

func TestHeapSortsRandomInput(t *testing.T) {
	for _, kind := range kinds {
		t.Run(kind.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			h := New[int64](kind, intLess, nil)
			var want []int64
			for i := 0; i < 500; i++ {
				v := rng.Int63n(1000) - 500
				h.Insert(v, int32(i))
				want = append(want, v)
			}
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			var got []int64
			for h.Len() > 0 {
				got = append(got, h.ExtractMin().GetKey())
			}
			if len(got) != len(want) {
				t.Fatalf("extracted %d of %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("position %d: got %d want %d", i, got[i], want[i])
				}
			}
		})
	}
}

func TestDecreaseKey(t *testing.T) {
	for _, kind := range kinds {
		t.Run(kind.String(), func(t *testing.T) {
			h := New[int64](kind, intLess, nil)
			nodes := make([]Node[int64], 10)
			for i := range nodes {
				nodes[i] = h.Insert(int64(100+i), int32(i))
			}
			h.DecreaseKey(nodes[7], 5)
			h.DecreaseKey(nodes[3], 1)
			if top := h.ExtractMin(); top.GetValue() != 3 || top.GetKey() != 1 {
				t.Fatalf("min = %d/%d, want value 3 key 1", top.GetValue(), top.GetKey())
			}
			if top := h.ExtractMin(); top.GetValue() != 7 {
				t.Fatalf("second min value = %d, want 7", top.GetValue())
			}
			if top := h.ExtractMin(); top.GetKey() != 100 {
				t.Fatalf("third min key = %d, want 100", top.GetKey())
			}
		})
	}
}

func TestDelete(t *testing.T) {
	for _, kind := range kinds {
		t.Run(kind.String(), func(t *testing.T) {
			h := New[int64](kind, intLess, nil)
			var nodes []Node[int64]
			for i := 0; i < 20; i++ {
				nodes = append(nodes, h.Insert(int64(i), int32(i)))
			}
			// Delete evens.
			for i := 0; i < 20; i += 2 {
				h.Delete(nodes[i])
			}
			if h.Len() != 10 {
				t.Fatalf("len = %d, want 10", h.Len())
			}
			for want := int64(1); want < 20; want += 2 {
				got := h.ExtractMin().GetKey()
				if got != want {
					t.Fatalf("got %d want %d", got, want)
				}
			}
		})
	}
}

func TestEmptyHeapBehavior(t *testing.T) {
	for _, kind := range kinds {
		h := New[int64](kind, intLess, nil)
		if h.Min() != nil {
			t.Fatalf("%v: Min on empty != nil", kind)
		}
		if h.ExtractMin() != nil {
			t.Fatalf("%v: ExtractMin on empty != nil", kind)
		}
		if h.Len() != 0 {
			t.Fatalf("%v: Len != 0", kind)
		}
	}
}

func TestDecreaseKeyLargerPanics(t *testing.T) {
	for _, kind := range kinds {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%v: expected panic on key increase", kind)
				}
			}()
			h := New[int64](kind, intLess, nil)
			n := h.Insert(5, 0)
			h.DecreaseKey(n, 10)
		}()
	}
}

func TestDoubleDeletePanics(t *testing.T) {
	for _, kind := range kinds {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%v: expected panic on double delete", kind)
				}
			}()
			h := New[int64](kind, intLess, nil)
			n := h.Insert(5, 0)
			h.Delete(n)
			h.Delete(n)
		}()
	}
}

// TestRandomOperationSequences drives all three heaps with the same random
// operation stream and checks they always agree with each other and with a
// sorted-slice model.
func TestRandomOperationSequences(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		heaps := make([]Heap[int64], len(kinds))
		handles := make([][]Node[int64], len(kinds))
		for i, k := range kinds {
			heaps[i] = New[int64](k, intLess, nil)
		}
		type item struct {
			key   int64
			alive bool
		}
		var model []item

		// Keys are made unique (key = base*1000 + id) so every heap must
		// extract the same item and the model stays in lockstep.
		for step := 0; step < 300; step++ {
			op := rng.Intn(10)
			switch {
			case op < 5: // insert
				key := rng.Int63n(10000)*1000 + int64(len(model))
				for i := range heaps {
					handles[i] = append(handles[i], heaps[i].Insert(key, int32(len(model))))
				}
				model = append(model, item{key: key, alive: true})
			case op < 7: // extract min
				if heaps[0].Len() == 0 {
					continue
				}
				want := int64(0)
				wantIdx := -1
				for idx, it := range model {
					if it.alive && (wantIdx < 0 || it.key < want) {
						want, wantIdx = it.key, idx
					}
				}
				for i := range heaps {
					top := heaps[i].ExtractMin()
					if top.GetKey() != want || int(top.GetValue()) != wantIdx {
						return false
					}
					handles[i][wantIdx] = nil
				}
				model[wantIdx].alive = false
			case op < 9: // decrease key (keeps uniqueness: subtract multiples of 1000)
				idx := -1
				for tries := 0; tries < 5; tries++ {
					cand := rng.Intn(len(model) + 1)
					if cand < len(model) && model[cand].alive {
						idx = cand
						break
					}
				}
				if idx < 0 {
					continue
				}
				nk := model[idx].key - rng.Int63n(100)*1000
				model[idx].key = nk
				for i := range heaps {
					heaps[i].DecreaseKey(handles[i][idx], nk)
				}
			default: // delete
				idx := -1
				for tries := 0; tries < 5; tries++ {
					cand := rng.Intn(len(model) + 1)
					if cand < len(model) && model[cand].alive {
						idx = cand
						break
					}
				}
				if idx < 0 {
					continue
				}
				model[idx].alive = false
				for i := range heaps {
					heaps[i].Delete(handles[i][idx])
					handles[i][idx] = nil
				}
			}
			// Check Len agreement.
			alive := 0
			for _, it := range model {
				if it.alive {
					alive++
				}
			}
			for i := range heaps {
				if heaps[i].Len() != alive {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestOperationCounting(t *testing.T) {
	var c counter.Counts
	h := New[int64](Fibonacci, intLess, &c)
	n1 := h.Insert(5, 0)
	n2 := h.Insert(9, 1)
	h.DecreaseKey(n2, 1)
	h.ExtractMin()
	h.Delete(n1)
	if c.HeapInserts != 2 || c.HeapDecreaseKeys != 1 || c.HeapExtractMins != 1 || c.HeapDeletes != 1 {
		t.Fatalf("counts = %+v", c)
	}
	if c.HeapOps() != 5 {
		t.Fatalf("total = %d", c.HeapOps())
	}
}

func TestKindString(t *testing.T) {
	if Fibonacci.String() != "fibonacci" || Binary.String() != "binary" || Pairing.String() != "pairing" || Linear.String() != "linear" {
		t.Fatal("kind names wrong")
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind must still render")
	}
}
