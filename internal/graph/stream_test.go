package graph

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"testing"
)

// sliceSource is a minimal ArcSource over an in-memory arc slice with
// independently controllable dimensions, for exercising Materialize's
// validation paths.
type sliceSource struct {
	n, m int
	arcs []Arc
}

func (s *sliceSource) NumNodes() int { return s.n }
func (s *sliceSource) NumArcs() int  { return s.m }
func (s *sliceSource) Scan(yield func(id ArcID, a Arc) bool) error {
	for i, a := range s.arcs {
		if !yield(ArcID(i), a) {
			return nil
		}
	}
	return nil
}

func buildTestGraph() *Graph {
	b := NewBuilder(4, 6)
	b.AddNodes(4)
	b.AddArc(0, 1, 3)
	b.AddArcTransit(1, 2, -5, 2)
	b.AddArc(2, 3, 7)
	b.AddArc(3, 0, 1)
	b.AddArc(1, 0, 9)
	b.AddArc(2, 2, 0)
	return b.Build()
}

func TestGraphScanOrderAndEarlyStop(t *testing.T) {
	g := buildTestGraph()
	var ids []ArcID
	err := g.Scan(func(id ArcID, a Arc) bool {
		if a != g.Arc(id) {
			t.Fatalf("arc %d: scanned %+v, stored %+v", id, a, g.Arc(id))
		}
		ids = append(ids, id)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != g.NumArcs() {
		t.Fatalf("scanned %d arcs, want %d", len(ids), g.NumArcs())
	}
	for i, id := range ids {
		if id != ArcID(i) {
			t.Fatalf("ids not in stream order: %v", ids)
		}
	}
	// Early stop: yield false after two arcs must end the scan with nil.
	count := 0
	err = g.Scan(func(ArcID, Arc) bool {
		count++
		return count < 2
	})
	if err != nil || count != 2 {
		t.Fatalf("early stop: count=%d err=%v", count, err)
	}
}

func TestMaterializeEquivalence(t *testing.T) {
	g := buildTestGraph()
	got, err := Materialize(g)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != g.NumNodes() || got.NumArcs() != g.NumArcs() {
		t.Fatalf("size %d/%d, want %d/%d", got.NumNodes(), got.NumArcs(), g.NumNodes(), g.NumArcs())
	}
	for i := 0; i < g.NumArcs(); i++ {
		if got.Arc(ArcID(i)) != g.Arc(ArcID(i)) {
			t.Fatalf("arc %d: %+v vs %+v", i, got.Arc(ArcID(i)), g.Arc(ArcID(i)))
		}
	}
	if got.Fingerprint() != g.Fingerprint() {
		t.Fatal("materialized fingerprint differs")
	}
}

func TestMaterializeErrors(t *testing.T) {
	cases := []struct {
		name string
		src  ArcSource
	}{
		{"negative nodes", &sliceSource{n: -1}},
		{"oversized nodes", &sliceSource{n: maxReadDim + 1}},
		{"negative arcs", &sliceSource{n: 2, m: -1}},
		{"oversized arcs", &sliceSource{n: 2, m: maxReadDim + 1}},
		{"endpoint out of range", &sliceSource{n: 2, m: 1, arcs: []Arc{{From: 0, To: 2, Weight: 1, Transit: 1}}}},
		{"negative endpoint", &sliceSource{n: 2, m: 1, arcs: []Arc{{From: -1, To: 0, Weight: 1, Transit: 1}}}},
	}
	for _, c := range cases {
		if _, err := Materialize(c.src); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestStreamStronglyConnectedMatchesExact(t *testing.T) {
	ring := func(n int) *Builder {
		b := NewBuilder(n, n)
		b.AddNodes(n)
		for i := 0; i < n; i++ {
			b.AddArc(NodeID(i), NodeID((i+1)%n), 1)
		}
		return b
	}
	graphs := map[string]*Graph{}
	graphs["ring8"] = ring(8).Build()
	graphs["single"] = func() *Graph { b := NewBuilder(1, 0); b.AddNodes(1); return b.Build() }()
	graphs["selfloop"] = func() *Graph {
		b := NewBuilder(1, 1)
		b.AddNodes(1)
		b.AddArc(0, 0, 1)
		return b.Build()
	}()
	graphs["line"] = func() *Graph {
		b := NewBuilder(4, 3)
		b.AddNodes(4)
		b.AddArc(0, 1, 1)
		b.AddArc(1, 2, 1)
		b.AddArc(2, 3, 1)
		return b.Build()
	}()
	graphs["two rings"] = func() *Graph {
		b := NewBuilder(6, 7)
		b.AddNodes(6)
		b.AddArc(0, 1, 1)
		b.AddArc(1, 2, 1)
		b.AddArc(2, 0, 1)
		b.AddArc(3, 4, 1)
		b.AddArc(4, 5, 1)
		b.AddArc(5, 3, 1)
		b.AddArc(0, 3, 1) // bridge one way only: not strongly connected
		return b.Build()
	}()
	graphs["ring plus chords"] = func() *Graph {
		b := ring(16)
		b.AddArc(3, 11, 2)
		b.AddArc(9, 1, -4)
		return b.Build()
	}()
	graphs["isolated node"] = func() *Graph {
		b := ring(5)
		b.AddNode()
		return b.Build()
	}()
	graphs["no arcs"] = func() *Graph { b := NewBuilder(3, 0); b.AddNodes(3); return b.Build() }()

	for name, g := range graphs {
		want := IsStronglyConnected(g)
		got, err := StreamStronglyConnected(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got != want {
			t.Errorf("%s: streaming says %v, exact says %v", name, got, want)
		}
	}

	// Empty graph: both report false.
	empty := NewBuilder(0, 0).Build()
	if got, err := StreamStronglyConnected(empty); err != nil || got {
		t.Errorf("empty graph: got %v, %v", got, err)
	}
}

func TestReadStreamRoundTrip(t *testing.T) {
	g := buildTestGraph()
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	src, err := ReadStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if src.NumNodes() != g.NumNodes() || src.NumArcs() != g.NumArcs() {
		t.Fatalf("header %d/%d, want %d/%d", src.NumNodes(), src.NumArcs(), g.NumNodes(), g.NumArcs())
	}
	// Two full scans must replay the identical sequence (re-scannable).
	for pass := 0; pass < 2; pass++ {
		i := 0
		err := src.Scan(func(id ArcID, a Arc) bool {
			if id != ArcID(i) || a != g.Arc(id) {
				t.Fatalf("pass %d arc %d: got id=%d %+v", pass, i, id, a)
			}
			i++
			return true
		})
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		if i != g.NumArcs() {
			t.Fatalf("pass %d: scanned %d arcs", pass, i)
		}
	}
	// Early stop then full scan again: the stop must not poison the source.
	if err := src.Scan(func(ArcID, Arc) bool { return false }); err != nil {
		t.Fatal(err)
	}
	mat, err := Materialize(src)
	if err != nil {
		t.Fatal(err)
	}
	if mat.Fingerprint() != g.Fingerprint() {
		t.Fatal("materialized stream differs from original graph")
	}
}

func TestReadStreamErrors(t *testing.T) {
	if _, err := ReadStream(strings.NewReader("c nothing here\n")); err == nil {
		t.Error("missing problem line accepted")
	}
	if _, err := ReadStream(strings.NewReader("p mcm -1 0\n")); err == nil {
		t.Error("negative size accepted")
	}
	// Arc errors are lazy: header parses, the scan reports them.
	src, err := ReadStream(strings.NewReader("p mcm 2 2\na 1 2 5\na 9 1 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Scan(func(ArcID, Arc) bool { return true }); err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("scan err = %v, want line 3 range error", err)
	}
	// Promised-count mismatch is also caught per scan.
	src, err = ReadStream(strings.NewReader("p mcm 2 2\na 1 2 5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Scan(func(ArcID, Arc) bool { return true }); err == nil || !strings.Contains(err.Error(), "promises 2 arcs") {
		t.Errorf("scan err = %v, want arc-count mismatch", err)
	}
}

// TestReadAllocRegression pins the streaming rewrite of Read: parsing a
// large file must cost O(1) buffers plus the retained graph itself — no
// per-line strings, no doubling arc slice. The bound is ~1.5x the retained
// CSR footprint; the pre-streaming parser sat at ~5x (per-line Text() +
// Fields() garbage plus append doubling) and trips it immediately.
func TestReadAllocRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	const n, m = 50_000, 200_000
	var sb strings.Builder
	sb.Grow(m * 16)
	fmt.Fprintf(&sb, "p mcm %d %d\n", n, m)
	for i := 0; i < m; i++ {
		u := i%n + 1
		v := (i*7+3)%n + 1
		if i%5 == 0 {
			fmt.Fprintf(&sb, "a %d %d %d %d\n", u, v, i%1000-500, i%9+1)
		} else {
			fmt.Fprintf(&sb, "a %d %d %d\n", u, v, i%1000-500)
		}
	}
	input := sb.String()

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	g, err := Read(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	if g.NumNodes() != n || g.NumArcs() != m {
		t.Fatalf("parsed %d/%d", g.NumNodes(), g.NumArcs())
	}

	// Retained: arcs (24m) + two CSR indexes (8m + 16n + O(1)). Transient:
	// scanner buffer + capped prealloc (~1.7 MB). Allow 1.5x retained plus a
	// 4 MB fixed allowance for the runtime's own noise.
	retained := uint64(24*m + 8*m + 16*n)
	limit := retained + retained/2 + 4<<20
	delta := after.TotalAlloc - before.TotalAlloc
	if delta > limit {
		t.Fatalf("Read allocated %d bytes for a %d-arc file (limit %d): streaming parser regressed", delta, m, limit)
	}
}
