package graph

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestFingerprintEncodingAgnostic pins the cache-key contract: the same
// graph read from the text format, parsed from JSON, or built directly must
// fingerprint identically, including when transit times are left implicit
// (text/JSON default transit 1 must equal an explicit transit 1).
func TestFingerprintEncodingAgnostic(t *testing.T) {
	built := FromArcs(3, []Arc{
		{From: 0, To: 1, Weight: 3, Transit: 1},
		{From: 1, To: 2, Weight: -5, Transit: 2},
		{From: 2, To: 0, Weight: 7, Transit: 1},
	})

	text := "p mcm 3 3\na 1 2 3\na 2 3 -5 2\na 3 1 7 1\n"
	fromText, err := Read(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}

	data, err := json.Marshal(built)
	if err != nil {
		t.Fatal(err)
	}
	fromJSON := new(Graph)
	if err := json.Unmarshal(data, fromJSON); err != nil {
		t.Fatal(err)
	}

	want := built.Fingerprint()
	if got := fromText.Fingerprint(); got != want {
		t.Errorf("text fingerprint %s != built %s", got, want)
	}
	if got := fromJSON.Fingerprint(); got != want {
		t.Errorf("json fingerprint %s != built %s", got, want)
	}
	// Round-tripping through the text writer must also agree.
	var buf bytes.Buffer
	if err := Write(&buf, built); err != nil {
		t.Fatal(err)
	}
	rt, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := rt.Fingerprint(); got != want {
		t.Errorf("text round-trip fingerprint %s != built %s", got, want)
	}
}

// TestFingerprintSensitivity asserts every solve-relevant mutation moves the
// fingerprint: node count, arc endpoints, weight, transit, arc order, and
// the empty-vs-nonempty boundary.
func TestFingerprintSensitivity(t *testing.T) {
	base := FromArcs(3, []Arc{
		{From: 0, To: 1, Weight: 3, Transit: 1},
		{From: 1, To: 0, Weight: 5, Transit: 1},
	})
	fp := base.Fingerprint()

	variants := map[string]*Graph{
		"extra-node": FromArcs(4, []Arc{
			{From: 0, To: 1, Weight: 3, Transit: 1},
			{From: 1, To: 0, Weight: 5, Transit: 1},
		}),
		"weight": FromArcs(3, []Arc{
			{From: 0, To: 1, Weight: 4, Transit: 1},
			{From: 1, To: 0, Weight: 5, Transit: 1},
		}),
		"transit": FromArcs(3, []Arc{
			{From: 0, To: 1, Weight: 3, Transit: 2},
			{From: 1, To: 0, Weight: 5, Transit: 1},
		}),
		"endpoint": FromArcs(3, []Arc{
			{From: 0, To: 2, Weight: 3, Transit: 1},
			{From: 1, To: 0, Weight: 5, Transit: 1},
		}),
		// Arc IDs are insertion indices and results cite cycles by arc ID,
		// so order matters to the cache key.
		"arc-order": FromArcs(3, []Arc{
			{From: 1, To: 0, Weight: 5, Transit: 1},
			{From: 0, To: 1, Weight: 3, Transit: 1},
		}),
		"empty": FromArcs(3, nil),
	}
	seen := map[Fingerprint]string{fp: "base"}
	for name, g := range variants {
		got := g.Fingerprint()
		if prev, dup := seen[got]; dup {
			t.Errorf("%s collides with %s: %s", name, prev, got)
		}
		seen[got] = name
	}

	// Weight/transit bytes must not alias across fields (3,5) vs (5,3).
	a := FromArcs(2, []Arc{{From: 0, To: 1, Weight: 3, Transit: 5}})
	b := FromArcs(2, []Arc{{From: 0, To: 1, Weight: 5, Transit: 3}})
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("weight/transit swap did not change the fingerprint")
	}
}

func TestFingerprintString(t *testing.T) {
	g := FromArcs(1, []Arc{{From: 0, To: 0, Weight: 1, Transit: 1}})
	fp := g.Fingerprint()
	if len(fp.String()) != 64 {
		t.Errorf("hex length %d, want 64", len(fp.String()))
	}
	if len(fp.Short()) != 12 || !strings.HasPrefix(fp.String(), fp.Short()) {
		t.Errorf("Short %q is not a prefix of %q", fp.Short(), fp.String())
	}
}

func BenchmarkFingerprint(b *testing.B) {
	arcs := make([]Arc, 4096)
	for i := range arcs {
		arcs[i] = Arc{From: int32(i % 64), To: int32((i + 1) % 64), Weight: int64(i), Transit: 1 + int64(i%3)}
	}
	g := FromArcs(64, arcs)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = g.Fingerprint()
	}
}
