// Package graph provides the directed-graph substrate for the cycle-mean and
// cycle-ratio algorithms: a compact immutable CSR (compressed sparse row)
// representation with int64 arc weights and transit times, a mutable Builder,
// strongly-connected-component decomposition, subgraph extraction, and text
// and DOT input/output.
//
// The representation mirrors what the DAC'99 study obtained from LEDA: a
// static digraph over which all ten algorithms iterate uniformly. Nodes are
// dense integers 0..N-1; arcs are dense integers 0..M-1 and keep their
// insertion order. Parallel arcs and self-loops are allowed (SPRAND produces
// parallel arcs, and a self-loop is a legitimate cycle of length one).
package graph

import (
	"fmt"
	"math"
)

// NodeID identifies a node; valid IDs are 0..N-1.
type NodeID = int32

// ArcID identifies an arc; valid IDs are 0..M-1 in insertion order.
type ArcID = int32

// Arc is one weighted arc. Transit is the transit time used by the
// cost-to-time ratio problem; the mean problem is the special case where
// every transit time is 1, and Builder.AddArc defaults it accordingly.
type Arc struct {
	From    NodeID
	To      NodeID
	Weight  int64
	Transit int64
}

// Graph is an immutable directed multigraph in CSR form with both out- and
// in-adjacency. Construct one with a Builder or a generator from
// internal/gen. All exported methods are safe for concurrent readers.
type Graph struct {
	arcs []Arc

	outStart []int32 // len n+1; outArcs[outStart[v]:outStart[v+1]] leave v
	outArcs  []ArcID
	inStart  []int32 // len n+1; inArcs[inStart[v]:inStart[v+1]] enter v
	inArcs   []ArcID
}

// Builder accumulates nodes and arcs and produces an immutable Graph.
// The zero value is ready to use.
type Builder struct {
	n    int
	arcs []Arc
}

// NewBuilder returns an empty Builder with capacity hints for the expected
// node and arc counts. Nodes are added with AddNode or AddNodes.
func NewBuilder(nHint, mHint int) *Builder {
	_ = nHint // nodes are a bare counter; only the arc slice needs capacity
	return &Builder{arcs: make([]Arc, 0, mHint)}
}

// AddNode appends one node and returns its ID.
func (b *Builder) AddNode() NodeID {
	id := NodeID(b.n)
	b.n++
	return id
}

// AddNodes appends k nodes and returns the ID of the first.
func (b *Builder) AddNodes(k int) NodeID {
	id := NodeID(b.n)
	b.n += k
	return id
}

// NumNodes returns the number of nodes added so far.
func (b *Builder) NumNodes() int { return b.n }

// AddArc appends an arc from u to v with the given weight and transit time 1,
// returning its ArcID. It panics if u or v is out of range.
func (b *Builder) AddArc(u, v NodeID, weight int64) ArcID {
	return b.AddArcTransit(u, v, weight, 1)
}

// AddArcTransit appends an arc with an explicit transit time.
func (b *Builder) AddArcTransit(u, v NodeID, weight, transit int64) ArcID {
	if u < 0 || int(u) >= b.n || v < 0 || int(v) >= b.n {
		panic(fmt.Sprintf("graph: arc endpoint out of range: (%d,%d) with n=%d", u, v, b.n))
	}
	id := ArcID(len(b.arcs))
	b.arcs = append(b.arcs, Arc{From: u, To: v, Weight: weight, Transit: transit})
	return id
}

// Build produces the immutable Graph. The Builder may be reused afterwards;
// the arc slice is copied.
func (b *Builder) Build() *Graph {
	arcs := make([]Arc, len(b.arcs))
	copy(arcs, b.arcs)
	return FromArcs(b.n, arcs)
}

// FromArcs builds a Graph over n nodes from an arc slice, which is retained
// (callers must not mutate it afterwards). Arc IDs equal slice indices.
func FromArcs(n int, arcs []Arc) *Graph {
	g := &Graph{arcs: arcs}
	g.outStart, g.outArcs = buildIndex(n, arcs, func(a Arc) NodeID { return a.From })
	g.inStart, g.inArcs = buildIndex(n, arcs, func(a Arc) NodeID { return a.To })
	return g
}

func buildIndex(n int, arcs []Arc, key func(Arc) NodeID) ([]int32, []ArcID) {
	start := make([]int32, n+1)
	for _, a := range arcs {
		start[key(a)+1]++
	}
	for i := 0; i < n; i++ {
		start[i+1] += start[i]
	}
	idx := make([]ArcID, len(arcs))
	fill := make([]int32, n)
	copy(fill, start[:n])
	for i, a := range arcs {
		k := key(a)
		idx[fill[k]] = ArcID(i)
		fill[k]++
	}
	return start, idx
}

// NumNodes returns the number of nodes N.
func (g *Graph) NumNodes() int { return len(g.outStart) - 1 }

// NumArcs returns the number of arcs M.
func (g *Graph) NumArcs() int { return len(g.arcs) }

// Arc returns the arc with the given ID.
func (g *Graph) Arc(id ArcID) Arc { return g.arcs[id] }

// Arcs returns the underlying arc slice; callers must treat it as read-only.
func (g *Graph) Arcs() []Arc { return g.arcs }

// OutArcs returns the IDs of arcs leaving v; read-only.
func (g *Graph) OutArcs(v NodeID) []ArcID {
	return g.outArcs[g.outStart[v]:g.outStart[v+1]]
}

// InArcs returns the IDs of arcs entering v; read-only.
func (g *Graph) InArcs(v NodeID) []ArcID {
	return g.inArcs[g.inStart[v]:g.inStart[v+1]]
}

// OutDegree returns the out-degree of v.
func (g *Graph) OutDegree(v NodeID) int {
	return int(g.outStart[v+1] - g.outStart[v])
}

// InDegree returns the in-degree of v.
func (g *Graph) InDegree(v NodeID) int {
	return int(g.inStart[v+1] - g.inStart[v])
}

// WeightRange returns the minimum and maximum arc weights, or (0, 0) for an
// arcless graph.
func (g *Graph) WeightRange() (min, max int64) {
	if len(g.arcs) == 0 {
		return 0, 0
	}
	min, max = math.MaxInt64, math.MinInt64
	for _, a := range g.arcs {
		if a.Weight < min {
			min = a.Weight
		}
		if a.Weight > max {
			max = a.Weight
		}
	}
	return min, max
}

// TransitRange returns the minimum and maximum arc transit times, or (0, 0)
// for an arcless graph.
func (g *Graph) TransitRange() (min, max int64) {
	if len(g.arcs) == 0 {
		return 0, 0
	}
	min, max = math.MaxInt64, math.MinInt64
	for _, a := range g.arcs {
		if a.Transit < min {
			min = a.Transit
		}
		if a.Transit > max {
			max = a.Transit
		}
	}
	return min, max
}

// TotalTransit returns the sum of all transit times (the quantity T in the
// paper's pseudopolynomial bounds).
func (g *Graph) TotalTransit() int64 {
	var t int64
	for _, a := range g.arcs {
		t += a.Transit
	}
	return t
}

// NegateWeights returns a copy of g with every arc weight negated. The
// maximum cycle mean of g equals the negated minimum cycle mean of the copy;
// this is how the Max* drivers in internal/core are implemented.
func (g *Graph) NegateWeights() *Graph {
	arcs := make([]Arc, len(g.arcs))
	for i, a := range g.arcs {
		a.Weight = -a.Weight
		arcs[i] = a
	}
	return FromArcs(g.NumNodes(), arcs)
}

// Reverse returns the graph with every arc reversed (weights and transit
// times preserved). Arc IDs are preserved.
func (g *Graph) Reverse() *Graph {
	arcs := make([]Arc, len(g.arcs))
	for i, a := range g.arcs {
		a.From, a.To = a.To, a.From
		arcs[i] = a
	}
	return FromArcs(g.NumNodes(), arcs)
}

// CycleWeight sums the weights of the given arcs (typically a cycle).
func (g *Graph) CycleWeight(cycle []ArcID) int64 {
	var w int64
	for _, id := range cycle {
		w += g.arcs[id].Weight
	}
	return w
}

// CycleTransit sums the transit times of the given arcs.
func (g *Graph) CycleTransit(cycle []ArcID) int64 {
	var t int64
	for _, id := range cycle {
		t += g.arcs[id].Transit
	}
	return t
}

// ValidateCycle checks that the arc sequence forms a closed directed walk in
// g (each arc starts where the previous one ends, and the last returns to
// the first's tail). It returns nil for the empty sequence.
func (g *Graph) ValidateCycle(cycle []ArcID) error {
	if len(cycle) == 0 {
		return nil
	}
	for i, id := range cycle {
		if id < 0 || int(id) >= len(g.arcs) {
			return fmt.Errorf("graph: cycle arc %d out of range", id)
		}
		next := g.arcs[cycle[(i+1)%len(cycle)]]
		if g.arcs[id].To != next.From {
			return fmt.Errorf("graph: cycle broken at position %d: arc %d ends at %d but arc %d starts at %d",
				i, id, g.arcs[id].To, cycle[(i+1)%len(cycle)], next.From)
		}
	}
	return nil
}

// InducedSubgraph returns the subgraph induced by the given nodes along with
// the mapping back to the original node and arc IDs. nodes must not contain
// duplicates. The i-th node of the subgraph corresponds to nodes[i]; the
// returned arcMap gives, for each subgraph arc ID, the original ArcID.
func (g *Graph) InducedSubgraph(nodes []NodeID) (sub *Graph, arcMap []ArcID) {
	remap := make(map[NodeID]NodeID, len(nodes))
	for i, v := range nodes {
		remap[v] = NodeID(i)
	}
	var arcs []Arc
	for _, v := range nodes {
		for _, id := range g.OutArcs(v) {
			a := g.arcs[id]
			if w, ok := remap[a.To]; ok {
				arcs = append(arcs, Arc{From: remap[v], To: w, Weight: a.Weight, Transit: a.Transit})
				arcMap = append(arcMap, id)
			}
		}
	}
	return FromArcs(len(nodes), arcs), arcMap
}
