package graph

import (
	"testing"
	"testing/quick"
)

func triangle() *Graph {
	b := NewBuilder(3, 3)
	b.AddNodes(3)
	b.AddArc(0, 1, 10)
	b.AddArc(1, 2, 20)
	b.AddArc(2, 0, 30)
	return b.Build()
}

func TestBuilderAndAccessors(t *testing.T) {
	g := triangle()
	if g.NumNodes() != 3 || g.NumArcs() != 3 {
		t.Fatalf("size = %d/%d", g.NumNodes(), g.NumArcs())
	}
	if a := g.Arc(1); a.From != 1 || a.To != 2 || a.Weight != 20 || a.Transit != 1 {
		t.Fatalf("arc 1 = %+v", a)
	}
	if d := g.OutDegree(0); d != 1 {
		t.Fatalf("outdeg(0) = %d", d)
	}
	if d := g.InDegree(0); d != 1 {
		t.Fatalf("indeg(0) = %d", d)
	}
	if got := g.OutArcs(2); len(got) != 1 || g.Arc(got[0]).To != 0 {
		t.Fatalf("OutArcs(2) = %v", got)
	}
	if got := g.InArcs(2); len(got) != 1 || g.Arc(got[0]).From != 1 {
		t.Fatalf("InArcs(2) = %v", got)
	}
	min, max := g.WeightRange()
	if min != 10 || max != 30 {
		t.Fatalf("weight range = [%d,%d]", min, max)
	}
	if tt := g.TotalTransit(); tt != 3 {
		t.Fatalf("total transit = %d", tt)
	}
}

func TestBuilderPanicsOnBadArc(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b := NewBuilder(2, 1)
	b.AddNodes(2)
	b.AddArc(0, 5, 1)
}

func TestNegateAndReverse(t *testing.T) {
	g := triangle()
	neg := g.NegateWeights()
	for i := 0; i < g.NumArcs(); i++ {
		if neg.Arc(ArcID(i)).Weight != -g.Arc(ArcID(i)).Weight {
			t.Fatal("negation broken")
		}
	}
	rev := g.Reverse()
	for i := 0; i < g.NumArcs(); i++ {
		a, r := g.Arc(ArcID(i)), rev.Arc(ArcID(i))
		if a.From != r.To || a.To != r.From || a.Weight != r.Weight {
			t.Fatal("reversal broken")
		}
	}
	// Reversing twice is the identity.
	rr := rev.Reverse()
	for i := 0; i < g.NumArcs(); i++ {
		if rr.Arc(ArcID(i)) != g.Arc(ArcID(i)) {
			t.Fatal("double reversal not identity")
		}
	}
}

func TestValidateCycle(t *testing.T) {
	g := triangle()
	if err := g.ValidateCycle([]ArcID{0, 1, 2}); err != nil {
		t.Fatalf("valid cycle rejected: %v", err)
	}
	if err := g.ValidateCycle([]ArcID{0, 2}); err == nil {
		t.Fatal("broken cycle accepted")
	}
	if err := g.ValidateCycle(nil); err != nil {
		t.Fatal("empty cycle should validate")
	}
	if err := g.ValidateCycle([]ArcID{99}); err == nil {
		t.Fatal("out-of-range arc accepted")
	}
	if g.CycleWeight([]ArcID{0, 1, 2}) != 60 {
		t.Fatal("cycle weight wrong")
	}
}

func TestInducedSubgraph(t *testing.T) {
	b := NewBuilder(4, 5)
	b.AddNodes(4)
	b.AddArc(0, 1, 1)
	b.AddArc(1, 0, 2)
	b.AddArc(1, 2, 3)
	b.AddArc(2, 3, 4)
	b.AddArc(3, 1, 5)
	g := b.Build()
	sub, arcMap := g.InducedSubgraph([]NodeID{0, 1})
	if sub.NumNodes() != 2 || sub.NumArcs() != 2 {
		t.Fatalf("sub size %d/%d", sub.NumNodes(), sub.NumArcs())
	}
	for i := 0; i < sub.NumArcs(); i++ {
		orig := g.Arc(arcMap[i])
		s := sub.Arc(ArcID(i))
		if orig.Weight != s.Weight {
			t.Fatal("arc map broken")
		}
	}
}

func TestSCCBothImplementationsAgree(t *testing.T) {
	// Property: Tarjan and Kosaraju produce the same partition (same
	// equivalence relation) on random graphs.
	f := func(seed uint32, nRaw, mRaw uint8) bool {
		n := int(nRaw)%12 + 1
		m := int(mRaw) % 40
		state := uint64(seed) + 1
		next := func() uint64 {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			return state
		}
		b := NewBuilder(n, m)
		b.AddNodes(n)
		for i := 0; i < m; i++ {
			b.AddArc(NodeID(next()%uint64(n)), NodeID(next()%uint64(n)), int64(next()%100))
		}
		g := b.Build()
		t1 := StronglyConnectedComponents(g)
		t2 := KosarajuSCC(g)
		if t1.Count != t2.Count {
			return false
		}
		for u := NodeID(0); int(u) < n; u++ {
			for v := NodeID(0); int(v) < n; v++ {
				if (t1.Comp[u] == t1.Comp[v]) != (t2.Comp[u] == t2.Comp[v]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSCCKnownCases(t *testing.T) {
	// Two 2-cycles joined by a one-way arc, plus an isolated node.
	b := NewBuilder(5, 5)
	b.AddNodes(5)
	b.AddArc(0, 1, 1)
	b.AddArc(1, 0, 1)
	b.AddArc(1, 2, 1)
	b.AddArc(2, 3, 1)
	b.AddArc(3, 2, 1)
	g := b.Build()
	scc := StronglyConnectedComponents(g)
	if scc.Count != 3 {
		t.Fatalf("count = %d, want 3", scc.Count)
	}
	if scc.Comp[0] != scc.Comp[1] || scc.Comp[2] != scc.Comp[3] || scc.Comp[0] == scc.Comp[2] {
		t.Fatalf("partition wrong: %v", scc.Comp)
	}
	if IsStronglyConnected(g) {
		t.Fatal("not strongly connected")
	}
	if !IsStronglyConnected(triangle()) {
		t.Fatal("triangle is strongly connected")
	}
}

func TestHasCycle(t *testing.T) {
	if !HasCycle(triangle()) {
		t.Fatal("triangle has a cycle")
	}
	b := NewBuilder(3, 2)
	b.AddNodes(3)
	b.AddArc(0, 1, 1)
	b.AddArc(1, 2, 1)
	dag := b.Build()
	if HasCycle(dag) {
		t.Fatal("DAG has no cycle")
	}
	b2 := NewBuilder(1, 1)
	b2.AddNodes(1)
	b2.AddArc(0, 0, 1)
	if !HasCycle(b2.Build()) {
		t.Fatal("self-loop is a cycle")
	}
}

func TestCyclicComponents(t *testing.T) {
	// Cycle 0-1, bridge to node 2 with self-loop, node 3 acyclic.
	b := NewBuilder(4, 4)
	b.AddNodes(4)
	b.AddArc(0, 1, 1)
	b.AddArc(1, 0, 2)
	b.AddArc(1, 2, 3)
	b.AddArc(2, 2, 4)
	g := b.Build()
	comps := CyclicComponents(g)
	if len(comps) != 2 {
		t.Fatalf("got %d cyclic components, want 2", len(comps))
	}
	total := 0
	for _, c := range comps {
		total += len(c.Nodes)
		if !IsStronglyConnected(c.Graph) {
			t.Fatal("component subgraph not strongly connected")
		}
		for i, id := range c.ArcMap {
			if g.Arc(id).Weight != c.Graph.Arc(ArcID(i)).Weight {
				t.Fatal("arc map broken")
			}
		}
	}
	if total != 3 {
		t.Fatalf("cyclic components cover %d nodes, want 3", total)
	}
}

func TestTopoOrder(t *testing.T) {
	b := NewBuilder(4, 4)
	b.AddNodes(4)
	b.AddArc(0, 1, 1)
	b.AddArc(0, 2, 1)
	b.AddArc(1, 3, 1)
	b.AddArc(2, 3, 1)
	g := b.Build()
	order, ok := TopoOrder(g)
	if !ok || len(order) != 4 {
		t.Fatalf("ok=%v len=%d", ok, len(order))
	}
	pos := make(map[NodeID]int)
	for i, v := range order {
		pos[v] = i
	}
	for _, a := range g.Arcs() {
		if pos[a.From] > pos[a.To] {
			t.Fatalf("order violates arc %d->%d", a.From, a.To)
		}
	}
	if _, ok := TopoOrder(triangle()); ok {
		t.Fatal("cyclic graph topologically ordered")
	}
}

func TestAddNodeAndCycleTransit(t *testing.T) {
	b := NewBuilder(0, 2)
	v0 := b.AddNode()
	v1 := b.AddNode()
	if v0 != 0 || v1 != 1 || b.NumNodes() != 2 {
		t.Fatalf("AddNode ids %d/%d n=%d", v0, v1, b.NumNodes())
	}
	b.AddArcTransit(v0, v1, 5, 3)
	b.AddArcTransit(v1, v0, 7, 4)
	g := b.Build()
	if g.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	if tt := g.CycleTransit([]ArcID{0, 1}); tt != 7 {
		t.Fatalf("CycleTransit = %d, want 7", tt)
	}
}
