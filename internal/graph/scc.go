package graph

import "sync"

// SCC holds a strongly-connected-component decomposition of a Graph.
// Components are numbered 0..Count-1 in reverse topological order of the
// condensation (i.e. a component only has condensation arcs into lower-
// numbered components when produced by Tarjan... Tarjan emits components in
// reverse topological order, so arcs go from higher-numbered to lower-
// numbered components).
type SCC struct {
	// Comp maps each node to its component number.
	Comp []int32
	// Count is the number of components.
	Count int
	// Members lists the nodes of each component.
	Members [][]NodeID
}

// StronglyConnectedComponents computes the SCC decomposition of g with an
// iterative Tarjan algorithm (no recursion, so million-node graphs are safe).
func StronglyConnectedComponents(g *Graph) *SCC {
	n := g.NumNodes()
	const unvisited = -1
	index := make([]int32, n)
	low := make([]int32, n)
	comp := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = -1
	}

	var (
		counter int32
		nComp   int32
		stack   []NodeID // Tarjan stack
	)

	// Explicit DFS stack: frame holds the node and the position within its
	// out-arc list.
	type frame struct {
		v   NodeID
		arc int32
	}
	var dfs []frame

	for root := NodeID(0); int(root) < n; root++ {
		if index[root] != unvisited {
			continue
		}
		dfs = append(dfs[:0], frame{v: root})
		index[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, root)
		onStack[root] = true

		for len(dfs) > 0 {
			f := &dfs[len(dfs)-1]
			v := f.v
			out := g.OutArcs(v)
			if int(f.arc) < len(out) {
				w := g.Arc(out[f.arc]).To
				f.arc++
				if index[w] == unvisited {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					dfs = append(dfs, frame{v: w})
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			// Post-order: pop v.
			dfs = dfs[:len(dfs)-1]
			if len(dfs) > 0 {
				parent := dfs[len(dfs)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = nComp
					if w == v {
						break
					}
				}
				nComp++
			}
		}
	}

	return &SCC{Comp: comp, Count: int(nComp), Members: groupMembers(comp, nComp)}
}

// groupMembers builds the per-component member lists (ascending node order
// within each component) over one shared backing array: count, prefix-sum,
// fill. The obvious per-component append costs one allocation per component,
// which on a mostly-acyclic graph is O(n) tiny slices — slow enough that a
// header-only input declaring tens of millions of isolated nodes could stall
// a single SCC call for multiple seconds.
func groupMembers(comp []int32, nComp int32) [][]NodeID {
	start := make([]int32, nComp+1)
	for _, c := range comp {
		start[c+1]++
	}
	for i := int32(0); i < nComp; i++ {
		start[i+1] += start[i]
	}
	backing := make([]NodeID, len(comp))
	next := make([]int32, nComp)
	copy(next, start[:nComp])
	for v, c := range comp {
		backing[next[c]] = NodeID(v)
		next[c]++
	}
	members := make([][]NodeID, nComp)
	for c := int32(0); c < nComp; c++ {
		members[c] = backing[start[c]:start[c+1]:start[c+1]]
	}
	return members
}

// KosarajuSCC computes the same decomposition with Kosaraju's two-pass
// algorithm. Component numbering may differ from Tarjan's; it exists as an
// independent implementation for cross-checking in tests.
func KosarajuSCC(g *Graph) *SCC {
	n := g.NumNodes()
	visited := make([]bool, n)
	order := make([]NodeID, 0, n)

	// First pass: finish order on g (iterative DFS with explicit post-visit).
	type frame struct {
		v    NodeID
		arc  int32
		post bool
	}
	var dfs []frame
	for root := NodeID(0); int(root) < n; root++ {
		if visited[root] {
			continue
		}
		visited[root] = true
		dfs = append(dfs[:0], frame{v: root})
		for len(dfs) > 0 {
			f := &dfs[len(dfs)-1]
			out := g.OutArcs(f.v)
			advanced := false
			for int(f.arc) < len(out) {
				w := g.Arc(out[f.arc]).To
				f.arc++
				if !visited[w] {
					visited[w] = true
					dfs = append(dfs, frame{v: w})
					advanced = true
					break
				}
			}
			if advanced {
				continue
			}
			order = append(order, f.v)
			dfs = dfs[:len(dfs)-1]
		}
	}

	// Second pass: DFS on the reverse graph in reverse finish order.
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var nComp int32
	var stack []NodeID
	for i := len(order) - 1; i >= 0; i-- {
		root := order[i]
		if comp[root] != -1 {
			continue
		}
		comp[root] = nComp
		stack = append(stack[:0], root)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, id := range g.InArcs(v) {
				w := g.Arc(id).From
				if comp[w] == -1 {
					comp[w] = nComp
					stack = append(stack, w)
				}
			}
		}
		nComp++
	}

	return &SCC{Comp: comp, Count: int(nComp), Members: groupMembers(comp, nComp)}
}

// reachWS is pooled scratch for IsStronglyConnected, which sits on every
// solver's input-validation path and would otherwise allocate per solve.
type reachWS struct {
	seen  []bool
	stack []NodeID
}

var reachPool = sync.Pool{New: func() any { return new(reachWS) }}

// IsStronglyConnected reports whether g has exactly one SCC (and at least
// one node). It uses two pooled reachability sweeps (forward over OutArcs,
// backward over InArcs) rather than a full Tarjan decomposition, so warm
// calls allocate nothing.
func IsStronglyConnected(g *Graph) bool {
	n := g.NumNodes()
	if n == 0 {
		return false
	}
	ws := reachPool.Get().(*reachWS)
	defer reachPool.Put(ws)
	if cap(ws.seen) < n {
		ws.seen = make([]bool, n)
	}
	seen := ws.seen[:n]
	stack := ws.stack[:0]
	defer func() { ws.stack = stack }()

	sweep := func(forward bool) bool {
		for i := range seen {
			seen[i] = false
		}
		seen[0] = true
		stack = append(stack[:0], 0)
		count := 1
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if forward {
				for _, id := range g.OutArcs(v) {
					if w := g.Arc(id).To; !seen[w] {
						seen[w] = true
						count++
						stack = append(stack, w)
					}
				}
			} else {
				for _, id := range g.InArcs(v) {
					if w := g.Arc(id).From; !seen[w] {
						seen[w] = true
						count++
						stack = append(stack, w)
					}
				}
			}
		}
		return count == n
	}
	return sweep(true) && sweep(false)
}

// HasCycle reports whether g contains a directed cycle (an SCC with more
// than one node, or a self-loop).
func HasCycle(g *Graph) bool {
	scc := StronglyConnectedComponents(g)
	for _, members := range scc.Members {
		if len(members) > 1 {
			return true
		}
	}
	for _, a := range g.Arcs() {
		if a.From == a.To {
			return true
		}
	}
	return false
}

// CyclicComponents returns, for each SCC that can contain a cycle (more than
// one node, or a single node with a self-loop), its induced subgraph plus
// the node list and arc mapping back to g. This is the decomposition step
// every algorithm driver performs before assuming strong connectivity.
func CyclicComponents(g *Graph) []Component {
	scc := StronglyConnectedComponents(g)
	var out []Component
	for c := 0; c < scc.Count; c++ {
		members := scc.Members[c]
		if len(members) == 1 {
			v := members[0]
			selfLoop := false
			for _, id := range g.OutArcs(v) {
				if g.Arc(id).To == v {
					selfLoop = true
					break
				}
			}
			if !selfLoop {
				continue
			}
		}
		sub, arcMap := g.InducedSubgraph(members)
		out = append(out, Component{Graph: sub, Nodes: members, ArcMap: arcMap})
	}
	return out
}

// Component is one cyclic SCC extracted by CyclicComponents.
type Component struct {
	// Graph is the induced subgraph over the component's nodes, renumbered
	// 0..len(Nodes)-1.
	Graph *Graph
	// Nodes maps subgraph node i back to the original node Nodes[i].
	Nodes []NodeID
	// ArcMap maps subgraph arc IDs back to original arc IDs.
	ArcMap []ArcID
}

// TopoOrder returns a topological order of an acyclic graph, or ok=false if
// g has a cycle. Used by Burns' algorithm on the (acyclic) critical subgraph.
func TopoOrder(g *Graph) (order []NodeID, ok bool) {
	n := g.NumNodes()
	indeg := make([]int32, n)
	for _, a := range g.Arcs() {
		indeg[a.To]++
	}
	queue := make([]NodeID, 0, n)
	for v := NodeID(0); int(v) < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	order = make([]NodeID, 0, n)
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		order = append(order, v)
		for _, id := range g.OutArcs(v) {
			w := g.Arc(id).To
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	return order, len(order) == n
}
