package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// The text format is a DIMACS-inspired line format:
//
//	c  free-text comment
//	p  mcm <n> <m>
//	a  <from> <to> <weight> [transit]
//
// Nodes are 1-based in the file (DIMACS convention) and 0-based in memory.
// transit defaults to 1 when omitted. Blank lines are ignored.

// Write serializes g in the text format.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "p mcm %d %d\n", g.NumNodes(), g.NumArcs())
	for _, a := range g.Arcs() {
		if a.Transit == 1 {
			fmt.Fprintf(bw, "a %d %d %d\n", a.From+1, a.To+1, a.Weight)
		} else {
			fmt.Fprintf(bw, "a %d %d %d %d\n", a.From+1, a.To+1, a.Weight, a.Transit)
		}
	}
	return bw.Flush()
}

// maxReadDim bounds the node and arc counts Read accepts. NodeID is an
// int32, and a hostile problem line must not be able to drive a multi-GB
// allocation before a single arc is parsed; 2^26 (≈67M) is far beyond any
// instance the solvers can process while keeping the worst-case header
// allocation modest.
const maxReadDim = 1 << 26

// MaxDim is the exported form of the Read size limit, for front ends (the
// batch solve service, decoders of other wire formats) that must reject
// oversized node or arc counts before allocating anything, with the same
// threshold the text reader enforces.
const MaxDim = maxReadDim

// maxArcPrealloc caps the arc-slice capacity reserved on the problem line's
// say-so; beyond it, growth is paid only as arcs actually arrive.
const maxArcPrealloc = 1 << 16

// Read parses a graph in the text format produced by Write. It validates as
// it goes — malformed records, out-of-range or negative node ids, counts
// that disagree with the problem line, duplicate headers, and oversized
// dimensions all produce line-numbered errors, never panics or unbounded
// allocations.
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var (
		n, m    int
		arcs    []Arc
		sawProb bool
		lineNo  int
	)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "p":
			if sawProb {
				return nil, fmt.Errorf("graph: line %d: duplicate problem line", lineNo)
			}
			if len(fields) != 4 || fields[1] != "mcm" {
				return nil, fmt.Errorf("graph: line %d: want %q, got %q", lineNo, "p mcm <n> <m>", line)
			}
			var err error
			if n, err = strconv.Atoi(fields[2]); err != nil {
				return nil, fmt.Errorf("graph: line %d: bad node count: %v", lineNo, err)
			}
			if m, err = strconv.Atoi(fields[3]); err != nil {
				return nil, fmt.Errorf("graph: line %d: bad arc count: %v", lineNo, err)
			}
			if n < 0 || m < 0 {
				return nil, fmt.Errorf("graph: line %d: negative size", lineNo)
			}
			if n > maxReadDim || m > maxReadDim {
				return nil, fmt.Errorf("graph: line %d: size %dx%d exceeds limit %d", lineNo, n, m, maxReadDim)
			}
			sawProb = true
			prealloc := m
			if prealloc > maxArcPrealloc {
				prealloc = maxArcPrealloc
			}
			arcs = make([]Arc, 0, prealloc)
		case "a":
			if !sawProb {
				return nil, fmt.Errorf("graph: line %d: arc before problem line", lineNo)
			}
			if len(fields) != 4 && len(fields) != 5 {
				return nil, fmt.Errorf("graph: line %d: want %q, got %q", lineNo, "a <from> <to> <weight> [transit]", line)
			}
			u, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad from node: %v", lineNo, err)
			}
			v, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad to node: %v", lineNo, err)
			}
			w, err := strconv.ParseInt(fields[3], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight: %v", lineNo, err)
			}
			t := int64(1)
			if len(fields) == 5 {
				if t, err = strconv.ParseInt(fields[4], 10, 64); err != nil {
					return nil, fmt.Errorf("graph: line %d: bad transit: %v", lineNo, err)
				}
			}
			if u < 1 || u > n || v < 1 || v > n {
				return nil, fmt.Errorf("graph: line %d: node out of range [1,%d]", lineNo, n)
			}
			if len(arcs) == m {
				return nil, fmt.Errorf("graph: line %d: more arcs than the %d promised by the problem line", lineNo, m)
			}
			arcs = append(arcs, Arc{From: NodeID(u - 1), To: NodeID(v - 1), Weight: w, Transit: t})
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawProb {
		return nil, fmt.Errorf("graph: missing problem line")
	}
	if len(arcs) != m {
		return nil, fmt.Errorf("graph: problem line promises %d arcs, found %d", m, len(arcs))
	}
	return FromArcs(n, arcs), nil
}

// WriteDOT emits g in Graphviz DOT syntax. highlight, if non-nil, is a set
// of arc IDs (e.g. a critical cycle) drawn in bold red.
func WriteDOT(w io.Writer, g *Graph, name string, highlight map[ArcID]bool) error {
	bw := bufio.NewWriter(w)
	if name == "" {
		name = "G"
	}
	fmt.Fprintf(bw, "digraph %s {\n", sanitizeDOTName(name))
	fmt.Fprintf(bw, "  rankdir=LR;\n  node [shape=circle];\n")
	for id := ArcID(0); int(id) < g.NumArcs(); id++ {
		a := g.Arc(id)
		label := strconv.FormatInt(a.Weight, 10)
		if a.Transit != 1 {
			label += "/" + strconv.FormatInt(a.Transit, 10)
		}
		attrs := fmt.Sprintf("label=%q", label)
		if highlight != nil && highlight[id] {
			attrs += ", color=red, penwidth=2.0"
		}
		fmt.Fprintf(bw, "  n%d -> n%d [%s];\n", a.From, a.To, attrs)
	}
	fmt.Fprintf(bw, "}\n")
	return bw.Flush()
}

func sanitizeDOTName(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9') {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "G"
	}
	return b.String()
}

// Stats summarizes structural properties of a graph; used by the benchmark
// harness's table headers and by cmd/mcmgen -describe.
type Stats struct {
	Nodes, Arcs   int
	MinOutDegree  int
	MaxOutDegree  int
	SelfLoops     int
	ParallelPairs int // arcs sharing (from,to) with an earlier arc
	MinWeight     int64
	MaxWeight     int64
	SCCs          int
	LargestSCC    int
}

// Summarize computes Stats for g.
func Summarize(g *Graph) Stats {
	st := Stats{Nodes: g.NumNodes(), Arcs: g.NumArcs()}
	st.MinWeight, st.MaxWeight = g.WeightRange()
	if st.Nodes > 0 {
		st.MinOutDegree = g.OutDegree(0)
	}
	seen := make(map[[2]NodeID]bool, g.NumArcs())
	for v := NodeID(0); int(v) < st.Nodes; v++ {
		d := g.OutDegree(v)
		if d < st.MinOutDegree {
			st.MinOutDegree = d
		}
		if d > st.MaxOutDegree {
			st.MaxOutDegree = d
		}
	}
	for _, a := range g.Arcs() {
		if a.From == a.To {
			st.SelfLoops++
		}
		key := [2]NodeID{a.From, a.To}
		if seen[key] {
			st.ParallelPairs++
		}
		seen[key] = true
	}
	scc := StronglyConnectedComponents(g)
	st.SCCs = scc.Count
	for _, members := range scc.Members {
		if len(members) > st.LargestSCC {
			st.LargestSCC = len(members)
		}
	}
	return st
}

// String renders the stats on one line.
func (s Stats) String() string {
	return fmt.Sprintf("n=%d m=%d outdeg=[%d,%d] selfloops=%d parallel=%d w=[%d,%d] sccs=%d largest=%d",
		s.Nodes, s.Arcs, s.MinOutDegree, s.MaxOutDegree, s.SelfLoops, s.ParallelPairs,
		s.MinWeight, s.MaxWeight, s.SCCs, s.LargestSCC)
}

// SortedArcIDs returns all arc IDs ordered by (From, To, Weight); useful for
// deterministic test output over multigraphs.
func SortedArcIDs(g *Graph) []ArcID {
	ids := make([]ArcID, g.NumArcs())
	for i := range ids {
		ids[i] = ArcID(i)
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := g.Arc(ids[i]), g.Arc(ids[j])
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Weight < b.Weight
	})
	return ids
}
