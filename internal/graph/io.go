package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// The text format is a DIMACS-inspired line format:
//
//	c  free-text comment
//	p  mcm <n> <m>
//	a  <from> <to> <weight> [transit]
//
// Nodes are 1-based in the file (DIMACS convention) and 0-based in memory.
// transit defaults to 1 when omitted. Blank lines are ignored.

// Write serializes g in the text format.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "p mcm %d %d\n", g.NumNodes(), g.NumArcs())
	for _, a := range g.Arcs() {
		if a.Transit == 1 {
			fmt.Fprintf(bw, "a %d %d %d\n", a.From+1, a.To+1, a.Weight)
		} else {
			fmt.Fprintf(bw, "a %d %d %d %d\n", a.From+1, a.To+1, a.Weight, a.Transit)
		}
	}
	return bw.Flush()
}

// maxReadDim bounds the node and arc counts Read accepts. Every consumer
// pays per-node costs proportional to the declared dimensions (adjacency
// index arrays in FromArcs, the SCC working set), so a hostile problem line
// buys damage by the dimension, not the byte: a one-line header declaring
// 2^26 nodes used to stall the pipeline for several seconds on hundreds of
// MB of index builds. 2^24 (≈16.7M) keeps 4x headroom over the largest
// instance in the repo (the 2^22-arc approximation-tier flagship) while
// capping the worst header-driven allocation near 10^8 bytes.
const maxReadDim = 1 << 24

// MaxDim is the exported form of the Read size limit, for front ends (the
// batch solve service, decoders of other wire formats) that must reject
// oversized node or arc counts before allocating anything, with the same
// threshold the text reader enforces.
const MaxDim = maxReadDim

// maxArcPrealloc caps the arc-slice capacity reserved on the problem line's
// say-so; beyond it, growth is paid only as arcs actually arrive.
const maxArcPrealloc = 1 << 16

// Read parses a graph in the text format produced by Write. It validates as
// it goes — malformed records, out-of-range or negative node ids, counts
// that disagree with the problem line, duplicate headers, and oversized
// dimensions all produce line-numbered errors, never panics or unbounded
// allocations.
//
// Read is a thin collector over the streaming scanText parser that also
// backs ReadStream: parsing works in O(1) buffers, and the only
// size-proportional allocation is the arc slice itself, grown at most once
// (capped prealloc, then a single jump to the promised count) and handed to
// FromArcs without copying.
func Read(r io.Reader) (*Graph, error) {
	var (
		n, m int
		arcs []Arc
	)
	err := scanText(r, func(hn, hm int) bool {
		n, m = hn, hm
		prealloc := m
		if prealloc > maxArcPrealloc {
			prealloc = maxArcPrealloc
		}
		arcs = make([]Arc, 0, prealloc)
		return true
	}, func(id ArcID, a Arc) bool {
		if len(arcs) == cap(arcs) && cap(arcs) < m {
			// The capped prealloc is full and the header promised more:
			// grow straight to the final size instead of letting append
			// double its way there (~2x the final footprint in transient
			// garbage on large files). scanText never yields more than m
			// arcs, so this single growth is also the last.
			grown := make([]Arc, len(arcs), m)
			copy(grown, arcs)
			arcs = grown
		}
		arcs = append(arcs, a)
		return true
	})
	if err != nil {
		return nil, err
	}
	return FromArcs(n, arcs), nil
}

// scanText is the streaming core of the text-format parser, shared by Read,
// ReadStream, and TextSource.Scan. It never retains arcs: each parsed record
// is handed to yield and forgotten, so working memory is O(1) regardless of
// file size. onHeader is called once with the validated problem-line
// dimensions; returning false stops the scan immediately (header-only
// probes). yield returning false (or being nil) likewise stops the scan
// early; both early stops return nil. A complete pass additionally enforces
// that the number of arc records matches the problem line.
func scanText(r io.Reader, onHeader func(n, m int) bool, yield func(id ArcID, a Arc) bool) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var (
		n, m    int
		arcSeen int
		sawProb bool
		lineNo  int
		fields  [][]byte
	)
	for sc.Scan() {
		lineNo++
		line := trimSpaceASCII(sc.Bytes())
		if len(line) == 0 || line[0] == 'c' {
			continue
		}
		fields = splitFieldsASCII(fields[:0], line)
		f0 := fields[0]
		switch {
		case len(f0) == 1 && f0[0] == 'p':
			if sawProb {
				return fmt.Errorf("graph: line %d: duplicate problem line", lineNo)
			}
			if len(fields) != 4 || string(fields[1]) != "mcm" {
				return fmt.Errorf("graph: line %d: want %q, got %q", lineNo, "p mcm <n> <m>", line)
			}
			var err error
			if n, err = atoiField(fields[2]); err != nil {
				return fmt.Errorf("graph: line %d: bad node count: %v", lineNo, err)
			}
			if m, err = atoiField(fields[3]); err != nil {
				return fmt.Errorf("graph: line %d: bad arc count: %v", lineNo, err)
			}
			if n < 0 || m < 0 {
				return fmt.Errorf("graph: line %d: negative size", lineNo)
			}
			if n > maxReadDim || m > maxReadDim {
				return fmt.Errorf("graph: line %d: size %dx%d exceeds limit %d", lineNo, n, m, maxReadDim)
			}
			sawProb = true
			if !onHeader(n, m) {
				return nil
			}
		case len(f0) == 1 && f0[0] == 'a':
			if !sawProb {
				return fmt.Errorf("graph: line %d: arc before problem line", lineNo)
			}
			if len(fields) != 4 && len(fields) != 5 {
				return fmt.Errorf("graph: line %d: want %q, got %q", lineNo, "a <from> <to> <weight> [transit]", line)
			}
			u, err := atoiField(fields[1])
			if err != nil {
				return fmt.Errorf("graph: line %d: bad from node: %v", lineNo, err)
			}
			v, err := atoiField(fields[2])
			if err != nil {
				return fmt.Errorf("graph: line %d: bad to node: %v", lineNo, err)
			}
			w, err := int64Field(fields[3])
			if err != nil {
				return fmt.Errorf("graph: line %d: bad weight: %v", lineNo, err)
			}
			t := int64(1)
			if len(fields) == 5 {
				if t, err = int64Field(fields[4]); err != nil {
					return fmt.Errorf("graph: line %d: bad transit: %v", lineNo, err)
				}
			}
			if u < 1 || u > n || v < 1 || v > n {
				return fmt.Errorf("graph: line %d: node out of range [1,%d]", lineNo, n)
			}
			if arcSeen == m {
				return fmt.Errorf("graph: line %d: more arcs than the %d promised by the problem line", lineNo, m)
			}
			a := Arc{From: NodeID(u - 1), To: NodeID(v - 1), Weight: w, Transit: t}
			id := ArcID(arcSeen)
			arcSeen++
			if yield == nil || !yield(id, a) {
				return nil
			}
		default:
			return fmt.Errorf("graph: line %d: unknown record %q", lineNo, f0)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !sawProb {
		return fmt.Errorf("graph: missing problem line")
	}
	if arcSeen != m {
		return fmt.Errorf("graph: problem line promises %d arcs, found %d", m, arcSeen)
	}
	return nil
}

// isSpaceASCII matches the whitespace the text format uses as a field
// separator. (Exotic Unicode spaces end up inside a field and fail its
// numeric parse with a normal line-numbered error.)
func isSpaceASCII(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' || c == '\r'
}

// trimSpaceASCII returns b without leading/trailing ASCII whitespace; a
// subslice, never a copy.
func trimSpaceASCII(b []byte) []byte {
	for len(b) > 0 && isSpaceASCII(b[0]) {
		b = b[1:]
	}
	for len(b) > 0 && isSpaceASCII(b[len(b)-1]) {
		b = b[:len(b)-1]
	}
	return b
}

// splitFieldsASCII appends the whitespace-separated fields of line to dst
// (subslices of line, no copies) and returns it; reusing dst across lines
// keeps the per-line parse allocation-free.
func splitFieldsASCII(dst [][]byte, line []byte) [][]byte {
	i := 0
	for i < len(line) {
		for i < len(line) && isSpaceASCII(line[i]) {
			i++
		}
		if i == len(line) {
			break
		}
		start := i
		for i < len(line) && !isSpaceASCII(line[i]) {
			i++
		}
		dst = append(dst, line[start:i])
	}
	return dst
}

// parseIntBytes is the allocation-free fast path for base-10 signed
// integers. ok is false on any syntax or range trouble; callers then fall
// back to strconv on a copied string so error values stay byte-identical to
// the pre-streaming parser.
func parseIntBytes(b []byte) (int64, bool) {
	i := 0
	neg := false
	if len(b) > 0 && (b[0] == '+' || b[0] == '-') {
		neg = b[0] == '-'
		i = 1
	}
	if i == len(b) {
		return 0, false
	}
	var v uint64
	for ; i < len(b); i++ {
		c := b[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		if v > (1<<63-9)/10 {
			return 0, false
		}
		v = v*10 + uint64(c-'0')
	}
	if neg {
		if v > 1<<63 {
			return 0, false
		}
		return -int64(v), true
	}
	if v >= 1<<63 {
		return 0, false
	}
	return int64(v), true
}

func atoiField(b []byte) (int, error) {
	if v, ok := parseIntBytes(b); ok {
		return int(v), nil
	}
	return strconv.Atoi(string(b))
}

func int64Field(b []byte) (int64, error) {
	if v, ok := parseIntBytes(b); ok {
		return v, nil
	}
	return strconv.ParseInt(string(b), 10, 64)
}

// WriteDOT emits g in Graphviz DOT syntax. highlight, if non-nil, is a set
// of arc IDs (e.g. a critical cycle) drawn in bold red.
func WriteDOT(w io.Writer, g *Graph, name string, highlight map[ArcID]bool) error {
	bw := bufio.NewWriter(w)
	if name == "" {
		name = "G"
	}
	fmt.Fprintf(bw, "digraph %s {\n", sanitizeDOTName(name))
	fmt.Fprintf(bw, "  rankdir=LR;\n  node [shape=circle];\n")
	for id := ArcID(0); int(id) < g.NumArcs(); id++ {
		a := g.Arc(id)
		label := strconv.FormatInt(a.Weight, 10)
		if a.Transit != 1 {
			label += "/" + strconv.FormatInt(a.Transit, 10)
		}
		attrs := fmt.Sprintf("label=%q", label)
		if highlight != nil && highlight[id] {
			attrs += ", color=red, penwidth=2.0"
		}
		fmt.Fprintf(bw, "  n%d -> n%d [%s];\n", a.From, a.To, attrs)
	}
	fmt.Fprintf(bw, "}\n")
	return bw.Flush()
}

func sanitizeDOTName(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9') {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "G"
	}
	return b.String()
}

// Stats summarizes structural properties of a graph; used by the benchmark
// harness's table headers and by cmd/mcmgen -describe.
type Stats struct {
	Nodes, Arcs   int
	MinOutDegree  int
	MaxOutDegree  int
	SelfLoops     int
	ParallelPairs int // arcs sharing (from,to) with an earlier arc
	MinWeight     int64
	MaxWeight     int64
	SCCs          int
	LargestSCC    int
}

// Summarize computes Stats for g.
func Summarize(g *Graph) Stats {
	st := Stats{Nodes: g.NumNodes(), Arcs: g.NumArcs()}
	st.MinWeight, st.MaxWeight = g.WeightRange()
	if st.Nodes > 0 {
		st.MinOutDegree = g.OutDegree(0)
	}
	seen := make(map[[2]NodeID]bool, g.NumArcs())
	for v := NodeID(0); int(v) < st.Nodes; v++ {
		d := g.OutDegree(v)
		if d < st.MinOutDegree {
			st.MinOutDegree = d
		}
		if d > st.MaxOutDegree {
			st.MaxOutDegree = d
		}
	}
	for _, a := range g.Arcs() {
		if a.From == a.To {
			st.SelfLoops++
		}
		key := [2]NodeID{a.From, a.To}
		if seen[key] {
			st.ParallelPairs++
		}
		seen[key] = true
	}
	scc := StronglyConnectedComponents(g)
	st.SCCs = scc.Count
	for _, members := range scc.Members {
		if len(members) > st.LargestSCC {
			st.LargestSCC = len(members)
		}
	}
	return st
}

// String renders the stats on one line.
func (s Stats) String() string {
	return fmt.Sprintf("n=%d m=%d outdeg=[%d,%d] selfloops=%d parallel=%d w=[%d,%d] sccs=%d largest=%d",
		s.Nodes, s.Arcs, s.MinOutDegree, s.MaxOutDegree, s.SelfLoops, s.ParallelPairs,
		s.MinWeight, s.MaxWeight, s.SCCs, s.LargestSCC)
}

// SortedArcIDs returns all arc IDs ordered by (From, To, Weight); useful for
// deterministic test output over multigraphs.
func SortedArcIDs(g *Graph) []ArcID {
	ids := make([]ArcID, g.NumArcs())
	for i := range ids {
		ids[i] = ArcID(i)
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := g.Arc(ids[i]), g.Arc(ids[j])
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Weight < b.Weight
	})
	return ids
}
