package graph

import (
	"fmt"
	"io"
)

// ArcSource is a sequential, re-scannable stream of arcs: the implicit graph
// representation consumed by the approximation tier (internal/approx), the
// streaming strong-connectivity pass below, and graph.Materialize. It is the
// o(m)-memory counterpart of the materialized CSR *Graph — a source never has
// to hold its arc list; it only has to be able to replay it, in the same
// order, as many times as asked.
//
// Contract:
//
//   - NumNodes and NumArcs report the dimensions of the presented graph.
//     NumArcs is the count Scan will yield on a complete pass.
//   - Scan replays the arc stream from the beginning, calling yield once per
//     arc with its ArcID (0-based, in stream order: the i-th yielded arc has
//     id i) and the arc itself. If yield returns false, Scan stops early and
//     returns nil. A non-nil error means the underlying source failed
//     (I/O error, malformed record) and the pass is incomplete.
//   - Scan must be restartable: after any call returns, a new call replays
//     the identical sequence. Sources need not be safe for concurrent Scans.
//
// *Graph satisfies ArcSource (over its materialized arc slice), as do the
// text-backed TextSource below and the generator-backed sources in
// internal/gen, which emit arcs on the fly and never store them.
type ArcSource interface {
	NumNodes() int
	NumArcs() int
	Scan(yield func(id ArcID, a Arc) bool) error
}

// Scan presents the materialized graph as an ArcSource: arcs are yielded in
// arc-ID order. It never returns an error.
func (g *Graph) Scan(yield func(id ArcID, a Arc) bool) error {
	for i, a := range g.arcs {
		if !yield(ArcID(i), a) {
			return nil
		}
	}
	return nil
}

// Materialize builds a CSR Graph from one complete pass over src. The result
// is identical to building the same arc sequence through a Builder, so
// generator families produce bit-identical graphs whether materialized or
// streamed. Use it when an exact solver (which needs random access) has been
// chosen for a source-backed input and the graph fits in memory.
func Materialize(src ArcSource) (*Graph, error) {
	n := src.NumNodes()
	if n < 0 || n > maxReadDim {
		return nil, fmt.Errorf("graph: source node count %d outside [0,%d]", n, maxReadDim)
	}
	m := src.NumArcs()
	if m < 0 || m > maxReadDim {
		return nil, fmt.Errorf("graph: source arc count %d outside [0,%d]", m, maxReadDim)
	}
	arcs := make([]Arc, 0, m)
	var rangeErr error
	err := src.Scan(func(id ArcID, a Arc) bool {
		if a.From < 0 || int(a.From) >= n || a.To < 0 || int(a.To) >= n {
			rangeErr = fmt.Errorf("graph: source arc %d endpoint (%d,%d) out of range for n=%d", id, a.From, a.To, n)
			return false
		}
		arcs = append(arcs, a)
		return true
	})
	if err != nil {
		return nil, err
	}
	if rangeErr != nil {
		return nil, rangeErr
	}
	return FromArcs(n, arcs), nil
}

// StreamStronglyConnected reports whether the graph presented by src is
// strongly connected, using O(n) working memory and repeated sequential
// scans: forward label propagation from node 0 until a fixed point (at most
// diameter+1 passes), then the same backward. It is the SCC pass of the
// streaming tier — it answers the one question the approximate solvers and
// their benchmarks need ("is this one cyclic component?") without ever
// building CSR adjacency. Graphs with zero nodes report false, single-node
// graphs true (strong connectivity says nothing about cyclicity; a
// self-loop-free single node is strongly connected but acyclic).
func StreamStronglyConnected(src ArcSource) (bool, error) {
	n := src.NumNodes()
	if n == 0 {
		return false, nil
	}
	if n == 1 {
		return true, nil
	}
	reach := make([]bool, n)
	// dir false: forward reachability from node 0 (propagate From -> To);
	// dir true: backward (can node reach 0?), propagating To -> From.
	for _, backward := range []bool{false, true} {
		for i := range reach {
			reach[i] = false
		}
		reach[0] = true
		covered := 1
		for covered < n {
			changed := false
			err := src.Scan(func(id ArcID, a Arc) bool {
				u, v := a.From, a.To
				if backward {
					u, v = v, u
				}
				if int(u) < len(reach) && int(v) < len(reach) && u >= 0 && v >= 0 && reach[u] && !reach[v] {
					reach[v] = true
					covered++
					changed = true
				}
				return true
			})
			if err != nil {
				return false, err
			}
			if !changed {
				break
			}
		}
		if covered < n {
			return false, nil
		}
	}
	return true, nil
}

// TextSource is an ArcSource backed by a seekable reader holding the text
// format of this package (docs/FORMATS.md): the header is parsed once at
// construction, and every Scan seeks back to the start and re-parses the arc
// records with O(1) buffers — the file is the graph, nothing is retained
// between passes. Construct with ReadStream.
type TextSource struct {
	rs   io.ReadSeeker
	n, m int
}

// ReadStream wraps a seekable reader over the text format as a streaming
// ArcSource. Only the problem line is parsed (and validated against the same
// dimension limits as Read) up front; arc records are validated lazily on
// each Scan. The reader must not be mutated between Scans.
func ReadStream(rs io.ReadSeeker) (*TextSource, error) {
	if _, err := rs.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	t := &TextSource{rs: rs, n: -1}
	err := scanText(rs, func(n, m int) bool {
		t.n, t.m = n, m
		return false // header only; stop before any arcs
	}, nil)
	if err != nil {
		return nil, err
	}
	if t.n < 0 {
		return nil, fmt.Errorf("graph: missing problem line")
	}
	return t, nil
}

// NumNodes returns the node count from the problem line.
func (t *TextSource) NumNodes() int { return t.n }

// NumArcs returns the arc count promised by the problem line; a Scan that
// finds a different number of arc records returns an error.
func (t *TextSource) NumArcs() int { return t.m }

// Scan seeks to the start and replays every arc record through yield,
// validating as it goes exactly like Read (same line-numbered errors).
func (t *TextSource) Scan(yield func(id ArcID, a Arc) bool) error {
	if _, err := t.rs.Seek(0, io.SeekStart); err != nil {
		return err
	}
	// The file may have been swapped under us between Scans; the arcs about
	// to be yielded must match the dimensions handed out at ReadStream time
	// or every consumer invariant breaks.
	var gotN, gotM int
	mismatch := false
	err := scanText(t.rs, func(n, m int) bool {
		if n != t.n || m != t.m {
			gotN, gotM, mismatch = n, m, true
			return false
		}
		return true
	}, yield)
	if err != nil {
		return err
	}
	if mismatch {
		return fmt.Errorf("graph: stream header changed underfoot (now %dx%d, was %dx%d)", gotN, gotM, t.n, t.m)
	}
	return nil
}
