package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Fingerprint is a content address for a graph: a SHA-256 digest over a
// canonical binary encoding of the node count and the arc list in insertion
// order. Two graphs carry the same fingerprint exactly when they are
// identical as arc lists — same node count, same arcs in the same order with
// the same weights and transit times — regardless of how they entered the
// process (text format, inline JSON, a Builder, a generator). This is the
// key of the serve-layer result cache (internal/servecache) and the routing
// key for the planned shard-by-fingerprint proxy mode.
//
// Arc order is deliberately significant: arc IDs are insertion indices, and
// every Result references its critical cycle by arc ID, so two graphs that
// differ only in arc order are *not* interchangeable for a cached result.
type Fingerprint [sha256.Size]byte

// String renders the fingerprint as lowercase hex.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// Short renders the first 12 hex digits, enough for logs and metrics labels.
func (f Fingerprint) Short() string { return hex.EncodeToString(f[:6]) }

// fingerprintMagic versions the canonical encoding; bump it if the encoding
// below ever changes so stale external caches can never alias.
const fingerprintMagic = "mcm-graph-v1\x00"

// Fingerprint computes the canonical content address of g. It walks the arc
// slice once and allocates only the hasher's fixed state; safe for
// concurrent use like every Graph reader.
func (g *Graph) Fingerprint() Fingerprint {
	h := sha256.New()
	var buf [32]byte
	copy(buf[:], fingerprintMagic)
	binary.LittleEndian.PutUint64(buf[13:], uint64(g.NumNodes()))
	binary.LittleEndian.PutUint64(buf[21:], uint64(g.NumArcs()))
	h.Write(buf[:29])
	for _, a := range g.arcs {
		binary.LittleEndian.PutUint64(buf[0:], uint64(a.From))
		binary.LittleEndian.PutUint64(buf[8:], uint64(a.To))
		binary.LittleEndian.PutUint64(buf[16:], uint64(a.Weight))
		binary.LittleEndian.PutUint64(buf[24:], uint64(a.Transit))
		h.Write(buf[:])
	}
	var f Fingerprint
	h.Sum(f[:0])
	return f
}
