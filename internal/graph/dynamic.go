package graph

import (
	"errors"
	"fmt"
	"sort"
)

// DynamicGraph is the mutable overlay behind the incremental dynamic-graph
// engine (core.DynSession): a directed multigraph supporting arc insertion,
// arc deletion, and in-place weight/transit updates, whose arc IDs are
// *stable original IDs* — the ID returned by InsertArc (or inherited from the
// seed graph) keeps identifying the same arc for the overlay's whole
// lifetime, no matter how many other arcs are deleted around it. Internal
// storage is compacted on every deletion (swap-remove, so live arcs stay
// dense), which is exactly why the ID layer exists: callers never observe the
// compaction, and critical cycles reported against the overlay keep
// referencing the IDs the caller knows.
//
// Nodes are append-only (AddNode); deleting a node is expressed by deleting
// its arcs, which leaves an isolated — and therefore acyclic — node behind.
//
// A DynamicGraph is NOT safe for concurrent use; callers (core.DynSession,
// the serve-layer session endpoint) serialize access with their own lock.
type DynamicGraph struct {
	n int

	// idx maps an original ArcID to its slot in arcs, or -1 when the arc has
	// been deleted. len(idx) == nextID, growing monotonically with inserts.
	idx  []int32
	arcs []Arc   // live arcs, dense; slot order is NOT meaningful
	ids  []ArcID // slot -> original ArcID

	// out and in hold, per node, the original IDs of the live arcs leaving /
	// entering it, in ascending ID order (IDs are assigned monotonically and
	// deletions preserve relative order, so "ascending" is maintained for
	// free on insert and by an order-preserving remove on delete).
	out [][]ArcID
	in  [][]ArcID
}

// Errors returned by the mutation methods.
var (
	// ErrArcNotLive means the arc ID is unknown or was already deleted.
	ErrArcNotLive = errors.New("graph: arc is not live")
	// ErrNodeRange means an endpoint is outside 0..NumNodes()-1.
	ErrNodeRange = errors.New("graph: node out of range")
	// ErrDimension means an insert would exceed the MaxDim arc-ID space.
	ErrDimension = errors.New("graph: dimension exceeds the supported maximum")
)

// NewDynamic builds an overlay seeded from g: nodes 0..n-1 and arcs 0..m-1
// with their g weights and transits. g is copied, never retained.
func NewDynamic(g *Graph) *DynamicGraph {
	n, m := g.NumNodes(), g.NumArcs()
	d := &DynamicGraph{
		n:    n,
		idx:  make([]int32, m),
		arcs: make([]Arc, m),
		ids:  make([]ArcID, m),
		out:  make([][]ArcID, n),
		in:   make([][]ArcID, n),
	}
	copy(d.arcs, g.Arcs())
	for i := range d.arcs {
		d.idx[i] = int32(i)
		d.ids[i] = ArcID(i)
	}
	// Seed adjacency in ascending-ID order directly from the arc slice.
	for i, a := range d.arcs {
		d.out[a.From] = append(d.out[a.From], ArcID(i))
		d.in[a.To] = append(d.in[a.To], ArcID(i))
	}
	return d
}

// NumNodes returns the node count.
func (d *DynamicGraph) NumNodes() int { return d.n }

// NumLiveArcs returns the number of live (non-deleted) arcs.
func (d *DynamicGraph) NumLiveArcs() int { return len(d.arcs) }

// NextArcID returns the ID the next InsertArc will assign; equivalently, one
// past the largest ID ever assigned. Useful for sizing caller-side tables
// indexed by original ID.
func (d *DynamicGraph) NextArcID() ArcID { return ArcID(len(d.idx)) }

// Live reports whether id identifies a live arc.
func (d *DynamicGraph) Live(id ArcID) bool {
	return id >= 0 && int(id) < len(d.idx) && d.idx[id] >= 0
}

// Arc returns the live arc with the given original ID.
func (d *DynamicGraph) Arc(id ArcID) (Arc, bool) {
	if !d.Live(id) {
		return Arc{}, false
	}
	return d.arcs[d.idx[id]], true
}

// OutLive returns the original IDs of the live arcs leaving v, in ascending
// ID order. The slice is owned by the overlay: read-only, and only valid
// until the next mutation.
func (d *DynamicGraph) OutLive(v NodeID) []ArcID {
	if v < 0 || int(v) >= d.n {
		return nil
	}
	return d.out[v]
}

// InLive returns the original IDs of the live arcs entering v, ascending;
// same ownership rules as OutLive.
func (d *DynamicGraph) InLive(v NodeID) []ArcID {
	if v < 0 || int(v) >= d.n {
		return nil
	}
	return d.in[v]
}

// AddNode appends one (isolated) node and returns its ID.
func (d *DynamicGraph) AddNode() NodeID {
	id := NodeID(d.n)
	d.n++
	d.out = append(d.out, nil)
	d.in = append(d.in, nil)
	return id
}

// InsertArc adds an arc and returns its freshly assigned original ID, which
// stays valid until the arc itself is deleted.
func (d *DynamicGraph) InsertArc(u, v NodeID, weight, transit int64) (ArcID, error) {
	if u < 0 || int(u) >= d.n || v < 0 || int(v) >= d.n {
		return -1, fmt.Errorf("%w: arc (%d,%d) with n=%d", ErrNodeRange, u, v, d.n)
	}
	if len(d.idx) >= MaxDim {
		return -1, fmt.Errorf("%w: arc-ID space exhausted at %d", ErrDimension, MaxDim)
	}
	id := ArcID(len(d.idx))
	d.idx = append(d.idx, int32(len(d.arcs)))
	d.arcs = append(d.arcs, Arc{From: u, To: v, Weight: weight, Transit: transit})
	d.ids = append(d.ids, id)
	d.out[u] = append(d.out[u], id)
	d.in[v] = append(d.in[v], id)
	return id, nil
}

// DeleteArc removes the arc with the given original ID. Internal storage is
// compacted immediately (swap-remove); every other arc keeps its ID.
func (d *DynamicGraph) DeleteArc(id ArcID) error {
	if !d.Live(id) {
		return fmt.Errorf("%w: id %d", ErrArcNotLive, id)
	}
	slot := d.idx[id]
	a := d.arcs[slot]
	last := int32(len(d.arcs) - 1)
	if slot != last {
		d.arcs[slot] = d.arcs[last]
		d.ids[slot] = d.ids[last]
		d.idx[d.ids[slot]] = slot
	}
	d.arcs = d.arcs[:last]
	d.ids = d.ids[:last]
	d.idx[id] = -1
	d.out[a.From] = removeID(d.out[a.From], id)
	d.in[a.To] = removeID(d.in[a.To], id)
	return nil
}

// removeID deletes id from a sorted ID list, preserving order.
func removeID(list []ArcID, id ArcID) []ArcID {
	i := sort.Search(len(list), func(i int) bool { return list[i] >= id })
	if i == len(list) || list[i] != id {
		return list // caller bug, but stay consistent
	}
	return append(list[:i], list[i+1:]...)
}

// SetWeight updates a live arc's weight in place.
func (d *DynamicGraph) SetWeight(id ArcID, weight int64) error {
	if !d.Live(id) {
		return fmt.Errorf("%w: id %d", ErrArcNotLive, id)
	}
	d.arcs[d.idx[id]].Weight = weight
	return nil
}

// SetTransit updates a live arc's transit time in place.
func (d *DynamicGraph) SetTransit(id ArcID, transit int64) error {
	if !d.Live(id) {
		return fmt.Errorf("%w: id %d", ErrArcNotLive, id)
	}
	d.arcs[d.idx[id]].Transit = transit
	return nil
}

// LiveIDs returns the live original IDs in ascending order (freshly
// allocated; the caller owns it).
func (d *DynamicGraph) LiveIDs() []ArcID {
	ids := make([]ArcID, len(d.ids))
	copy(ids, d.ids)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// RefreshInduced re-copies the current weight and transit of every arc in
// arcOrig (original overlay IDs) onto the corresponding arc of sub, an
// induced subgraph previously built over this overlay with sub arc i drawn
// from overlay arc arcOrig[i]. It lets an incremental engine absorb
// weight-only deltas into a cached component subgraph in place — the CSR
// structure is untouched, so policies and arc IDs into sub stay valid — at
// O(len(arcOrig)) instead of rebuilding the subgraph. Every arcOrig entry
// must still be live.
func (d *DynamicGraph) RefreshInduced(sub *Graph, arcOrig []ArcID) error {
	if sub.NumArcs() != len(arcOrig) {
		return fmt.Errorf("graph: RefreshInduced: subgraph has %d arcs, map has %d", sub.NumArcs(), len(arcOrig))
	}
	for i, id := range arcOrig {
		if !d.Live(id) {
			return fmt.Errorf("%w: id %d", ErrArcNotLive, id)
		}
		a := d.arcs[d.idx[id]]
		sub.arcs[i].Weight = a.Weight
		sub.arcs[i].Transit = a.Transit
	}
	return nil
}

// Materialize builds the canonical immutable snapshot of the overlay: a
// Graph over the same nodes whose arcs are the live arcs in ascending
// original-ID order, plus the export map from compact snapshot ArcIDs back
// to original IDs. Two overlays with identical live content (same node
// count, same live arcs in the same relative order) materialize to graphs
// with identical fingerprints, regardless of the mutation history that
// produced them — in particular, inserting and then deleting an arc returns
// the overlay to its prior fingerprint.
func (d *DynamicGraph) Materialize() (*Graph, []ArcID) {
	export := d.LiveIDs()
	arcs := make([]Arc, len(export))
	for i, id := range export {
		arcs[i] = d.arcs[d.idx[id]]
	}
	return FromArcs(d.n, arcs), export
}
