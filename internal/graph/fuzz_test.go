package graph

import (
	"bytes"
	"testing"
)

// FuzzGraphRead throws arbitrary bytes at the text-format reader. Any input
// must either fail with an error or produce a graph that survives the full
// pipeline: summarization, re-serialization, and an exact re-read round
// trip. No input may panic or allocate unboundedly.
func FuzzGraphRead(f *testing.F) {
	f.Add([]byte("p mcm 2 2\na 1 2 5\na 2 1 -3 4\n"))
	f.Add([]byte("c comment\n\np mcm 3 3\na 1 2 2\na 2 3 4\na 3 1 3\n"))
	f.Add([]byte("p mcm 1 1\na 1 1 -9 2\n"))
	f.Add([]byte("p mcm 2 1\na 1 3 5\n"))
	f.Add([]byte("p mcm 99999999999 0\n"))
	f.Add([]byte("a 1 2 3\n"))
	f.Add([]byte("p mcm -1 -1\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		st := Summarize(g)
		if st.Nodes != g.NumNodes() || st.Arcs != g.NumArcs() {
			t.Fatalf("summary disagrees with graph: %+v", st)
		}
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("Write of parsed graph failed: %v", err)
		}
		g2, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-read of written graph failed: %v", err)
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumArcs() != g.NumArcs() {
			t.Fatalf("round trip changed size: %d/%d vs %d/%d",
				g.NumNodes(), g.NumArcs(), g2.NumNodes(), g2.NumArcs())
		}
		for i := 0; i < g.NumArcs(); i++ {
			if g.Arc(ArcID(i)) != g2.Arc(ArcID(i)) {
				t.Fatalf("round trip changed arc %d: %+v vs %+v", i, g.Arc(ArcID(i)), g2.Arc(ArcID(i)))
			}
		}
	})
}
