package graph

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestReadWriteRoundTrip(t *testing.T) {
	b := NewBuilder(3, 4)
	b.AddNodes(3)
	b.AddArc(0, 1, -5)
	b.AddArcTransit(1, 2, 7, 3)
	b.AddArc(2, 0, 10000)
	b.AddArc(0, 0, 0)
	g := b.Build()

	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumArcs() != g.NumArcs() {
		t.Fatalf("size changed: %d/%d", g2.NumNodes(), g2.NumArcs())
	}
	for i := 0; i < g.NumArcs(); i++ {
		if g.Arc(ArcID(i)) != g2.Arc(ArcID(i)) {
			t.Fatalf("arc %d changed: %+v vs %+v", i, g.Arc(ArcID(i)), g2.Arc(ArcID(i)))
		}
	}
}

func TestReadAcceptsCommentsAndBlank(t *testing.T) {
	src := `
c a comment line

p mcm 2 2
c another
a 1 2 5
a 2 1 -3 4
`
	g, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.NumArcs() != 2 {
		t.Fatalf("size %d/%d", g.NumNodes(), g.NumArcs())
	}
	if a := g.Arc(1); a.Weight != -3 || a.Transit != 4 {
		t.Fatalf("arc 1 = %+v", a)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"no problem line", "a 1 2 3\n"},
		{"missing problem", "c only comments\n"},
		{"double problem", "p mcm 1 0\np mcm 1 0\n"},
		{"bad record", "p mcm 1 0\nx 1 2\n"},
		{"node out of range", "p mcm 2 1\na 1 3 5\n"},
		{"node zero", "p mcm 2 1\na 0 1 5\n"},
		{"arc count mismatch", "p mcm 2 2\na 1 2 5\n"},
		{"bad weight", "p mcm 2 1\na 1 2 x\n"},
		{"negative size", "p mcm -1 0\n"},
		{"malformed problem", "p mcm 2\n"},
		{"wrong problem kind", "p sp 2 1\na 1 2 3\n"},
		{"negative node", "p mcm 2 1\na -1 2 5\n"},
		{"too many arcs", "p mcm 2 1\na 1 2 5\na 2 1 3\n"},
		{"huge node count", "p mcm 99999999999 0\n"},
		{"huge arc count", "p mcm 2 99999999999\n"},
		{"overflowing node count", "p mcm 99999999999999999999 0\n"},
		{"bad transit", "p mcm 2 1\na 1 2 5 x\n"},
		{"extra arc fields", "p mcm 2 1\na 1 2 5 1 9\n"},
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c.src)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

// TestReadErrorsCarryLineNumbers pins that diagnostics point at the
// offending line, which is what makes them actionable on large files.
func TestReadErrorsCarryLineNumbers(t *testing.T) {
	src := "c header\np mcm 2 2\na 1 2 5\na 1 9 1\n"
	_, err := Read(strings.NewReader(src))
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Fatalf("err = %v, want a line 4 diagnostic", err)
	}
}

// TestReadSizeLimit pins the allocation guard: a hostile problem line
// promising huge dimensions must be rejected before any proportional
// allocation happens.
func TestReadSizeLimit(t *testing.T) {
	over := strconv.Itoa(maxReadDim + 1)
	for _, src := range []string{
		// Oversized n with no arcs: would allocate O(n) node arrays.
		"p mcm " + over + " 0\n",
		// Oversized m: would reserve O(m) arc capacity.
		"p mcm 2 " + over + "\n",
	} {
		if _, err := Read(strings.NewReader(src)); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
			t.Errorf("Read(%q) err = %v, want size-limit error", src[:20], err)
		}
	}
	// At the limit with a consistent (empty) arc list the header itself is
	// fine; the arc-count check still fires because no arcs follow.
	if _, err := Read(strings.NewReader("p mcm 16 1\n")); err == nil {
		t.Error("promised arcs missing: expected error")
	}
}

func TestWriteDOT(t *testing.T) {
	b := NewBuilder(2, 2)
	b.AddNodes(2)
	e0 := b.AddArc(0, 1, 3)
	b.AddArcTransit(1, 0, 4, 2)
	g := b.Build()
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, "my graph!", map[ArcID]bool{e0: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph my_graph_", "n0 -> n1", `label="3"`, `label="4/2"`, "color=red"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestSummarize(t *testing.T) {
	b := NewBuilder(3, 5)
	b.AddNodes(3)
	b.AddArc(0, 1, 5)
	b.AddArc(0, 1, 9) // parallel
	b.AddArc(1, 1, 2) // self loop
	b.AddArc(1, 2, -4)
	b.AddArc(2, 0, 3)
	g := b.Build()
	st := Summarize(g)
	if st.SelfLoops != 1 || st.ParallelPairs != 1 {
		t.Fatalf("selfloops=%d parallel=%d", st.SelfLoops, st.ParallelPairs)
	}
	if st.MinWeight != -4 || st.MaxWeight != 9 {
		t.Fatalf("weights [%d,%d]", st.MinWeight, st.MaxWeight)
	}
	if st.SCCs != 1 || st.LargestSCC != 3 {
		t.Fatalf("sccs=%d largest=%d", st.SCCs, st.LargestSCC)
	}
	if !strings.Contains(st.String(), "n=3 m=5") {
		t.Fatalf("String() = %q", st.String())
	}
}

func TestSortedArcIDs(t *testing.T) {
	b := NewBuilder(2, 3)
	b.AddNodes(2)
	b.AddArc(1, 0, 7)
	b.AddArc(0, 1, 9)
	b.AddArc(0, 1, 2)
	g := b.Build()
	ids := SortedArcIDs(g)
	want := []ArcID{2, 1, 0} // (0,1,2), (0,1,9), (1,0,7)
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	b := NewBuilder(3, 4)
	b.AddNodes(3)
	b.AddArc(0, 1, -5)
	b.AddArcTransit(1, 2, 7, 3)
	b.AddArcTransit(2, 0, 9, 0) // zero transit must survive the round trip
	b.AddArc(0, 0, 1)
	g := b.Build()

	var buf bytes.Buffer
	if err := WriteJSON(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumArcs() != g.NumArcs() {
		t.Fatalf("size changed")
	}
	for i := 0; i < g.NumArcs(); i++ {
		if g.Arc(ArcID(i)) != g2.Arc(ArcID(i)) {
			t.Fatalf("arc %d changed: %+v vs %+v", i, g.Arc(ArcID(i)), g2.Arc(ArcID(i)))
		}
	}
}

func TestJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`{"nodes":-1,"arcs":[]}`)); err == nil {
		t.Error("negative node count accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"nodes":2,"arcs":[{"from":0,"to":5,"weight":1}]}`)); err == nil {
		t.Error("out-of-range arc accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`not json`)); err == nil {
		t.Error("malformed JSON accepted")
	}
}
