package graph

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonGraph is the JSON wire shape: explicit node count plus an arc list.
type jsonGraph struct {
	Nodes int       `json:"nodes"`
	Arcs  []jsonArc `json:"arcs"`
}

type jsonArc struct {
	From    int32  `json:"from"`
	To      int32  `json:"to"`
	Weight  int64  `json:"weight"`
	Transit *int64 `json:"transit,omitempty"` // nil means 1 (a zero transit is kept explicit)
}

// MarshalJSON implements json.Marshaler.
func (g *Graph) MarshalJSON() ([]byte, error) {
	out := jsonGraph{Nodes: g.NumNodes(), Arcs: make([]jsonArc, g.NumArcs())}
	for i, a := range g.Arcs() {
		ja := jsonArc{From: a.From, To: a.To, Weight: a.Weight}
		if a.Transit != 1 {
			t := a.Transit
			ja.Transit = &t
		}
		out.Arcs[i] = ja
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler; note that a *Graph must be
// allocated first (json.Unmarshal(data, &g) with g *Graph... use
// ReadJSON for streams).
func (g *Graph) UnmarshalJSON(data []byte) error {
	var in jsonGraph
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	if in.Nodes < 0 {
		return fmt.Errorf("graph: negative node count %d", in.Nodes)
	}
	// Same dimension cap as the text reader: a hostile node count must not
	// drive a multi-GB index allocation in FromArcs before validation.
	if in.Nodes > maxReadDim || len(in.Arcs) > maxReadDim {
		return fmt.Errorf("graph: size %dx%d exceeds limit %d", in.Nodes, len(in.Arcs), maxReadDim)
	}
	arcs := make([]Arc, len(in.Arcs))
	for i, ja := range in.Arcs {
		if ja.From < 0 || int(ja.From) >= in.Nodes || ja.To < 0 || int(ja.To) >= in.Nodes {
			return fmt.Errorf("graph: arc %d endpoint out of range", i)
		}
		t := int64(1)
		if ja.Transit != nil {
			t = *ja.Transit
		}
		arcs[i] = Arc{From: ja.From, To: ja.To, Weight: ja.Weight, Transit: t}
	}
	*g = *FromArcs(in.Nodes, arcs)
	return nil
}

// WriteJSON serializes g as JSON to w.
func WriteJSON(w io.Writer, g *Graph) error {
	data, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// ReadJSON parses a JSON graph from r.
func ReadJSON(r io.Reader) (*Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	g := new(Graph)
	if err := json.Unmarshal(data, g); err != nil {
		return nil, err
	}
	return g, nil
}
