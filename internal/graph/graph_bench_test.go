package graph

import (
	"math/rand"
	"testing"
)

func randomGraph(n, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n, m)
	b.AddNodes(n)
	for i := 0; i < n; i++ {
		b.AddArc(NodeID(i), NodeID((i+1)%n), int64(rng.Intn(1000)))
	}
	for i := n; i < m; i++ {
		b.AddArc(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)), int64(rng.Intn(1000)))
	}
	return b.Build()
}

func BenchmarkBuildCSR(b *testing.B) {
	g := randomGraph(4096, 16384, 1)
	arcs := g.Arcs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromArcs(4096, arcs)
	}
}

func BenchmarkTarjanSCC(b *testing.B) {
	g := randomGraph(4096, 16384, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		StronglyConnectedComponents(g)
	}
}

func BenchmarkKosarajuSCC(b *testing.B) {
	g := randomGraph(4096, 16384, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KosarajuSCC(g)
	}
}
