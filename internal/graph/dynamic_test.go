package graph

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
)

func dynSeed(t *testing.T) *Graph {
	t.Helper()
	// 0 -> 1 -> 2 -> 0 cycle plus a 2 -> 3 tail and a 3 -> 3 self-loop.
	return FromArcs(4, []Arc{
		{From: 0, To: 1, Weight: 1, Transit: 1},
		{From: 1, To: 2, Weight: 2, Transit: 1},
		{From: 2, To: 0, Weight: 3, Transit: 1},
		{From: 2, To: 3, Weight: 4, Transit: 1},
		{From: 3, To: 3, Weight: 5, Transit: 1},
	})
}

func TestDynamicSeedMatchesGraph(t *testing.T) {
	g := dynSeed(t)
	d := NewDynamic(g)
	if d.NumNodes() != g.NumNodes() || d.NumLiveArcs() != g.NumArcs() {
		t.Fatalf("seed dims: got (%d,%d), want (%d,%d)",
			d.NumNodes(), d.NumLiveArcs(), g.NumNodes(), g.NumArcs())
	}
	for id := ArcID(0); int(id) < g.NumArcs(); id++ {
		got, ok := d.Arc(id)
		if !ok || got != g.Arc(id) {
			t.Fatalf("arc %d: got %+v ok=%v, want %+v", id, got, ok, g.Arc(id))
		}
	}
	snap, export := d.Materialize()
	if snap.Fingerprint() != g.Fingerprint() {
		t.Fatalf("pristine overlay must materialize to the seed fingerprint")
	}
	for i, id := range export {
		if ArcID(i) != id {
			t.Fatalf("pristine export map must be identity, got export[%d]=%d", i, id)
		}
	}
}

func TestDynamicIDStabilityAcrossDeletes(t *testing.T) {
	d := NewDynamic(dynSeed(t))
	// Delete arc 1 (1->2); every other arc must keep its ID and content,
	// even though the dense storage swap-compacts.
	if err := d.DeleteArc(1); err != nil {
		t.Fatalf("DeleteArc(1): %v", err)
	}
	if d.Live(1) {
		t.Fatalf("arc 1 still live after delete")
	}
	want := map[ArcID]Arc{
		0: {From: 0, To: 1, Weight: 1, Transit: 1},
		2: {From: 2, To: 0, Weight: 3, Transit: 1},
		3: {From: 2, To: 3, Weight: 4, Transit: 1},
		4: {From: 3, To: 3, Weight: 5, Transit: 1},
	}
	for id, w := range want {
		got, ok := d.Arc(id)
		if !ok || got != w {
			t.Fatalf("after delete, arc %d: got %+v ok=%v, want %+v", id, got, ok, w)
		}
	}
	if err := d.DeleteArc(1); !errors.Is(err, ErrArcNotLive) {
		t.Fatalf("double delete: got %v, want ErrArcNotLive", err)
	}
	if err := d.SetWeight(1, 7); !errors.Is(err, ErrArcNotLive) {
		t.Fatalf("SetWeight on dead arc: got %v, want ErrArcNotLive", err)
	}
	// New insert gets a fresh ID (5), never recycling the dead one.
	id, err := d.InsertArc(1, 2, 9, 2)
	if err != nil {
		t.Fatalf("InsertArc: %v", err)
	}
	if id != 5 {
		t.Fatalf("insert after delete: got id %d, want 5", id)
	}
}

func TestDynamicAdjacencyAscendingOrder(t *testing.T) {
	d := NewDynamic(dynSeed(t))
	rng := rand.New(rand.NewSource(7))
	for step := 0; step < 500; step++ {
		if rng.Intn(3) == 0 && d.NumLiveArcs() > 0 {
			live := d.LiveIDs()
			if err := d.DeleteArc(live[rng.Intn(len(live))]); err != nil {
				t.Fatalf("step %d delete: %v", step, err)
			}
		} else {
			u := NodeID(rng.Intn(d.NumNodes()))
			v := NodeID(rng.Intn(d.NumNodes()))
			if _, err := d.InsertArc(u, v, int64(rng.Intn(100)-50), 1); err != nil {
				t.Fatalf("step %d insert: %v", step, err)
			}
		}
		for v := NodeID(0); int(v) < d.NumNodes(); v++ {
			checkAscLive(t, d, d.OutLive(v))
			checkAscLive(t, d, d.InLive(v))
		}
	}
	// Adjacency must exactly cover the live arcs.
	seen := 0
	for v := NodeID(0); int(v) < d.NumNodes(); v++ {
		for _, id := range d.OutLive(v) {
			a, ok := d.Arc(id)
			if !ok || a.From != v {
				t.Fatalf("OutLive(%d) lists %d: arc %+v ok=%v", v, id, a, ok)
			}
			seen++
		}
	}
	if seen != d.NumLiveArcs() {
		t.Fatalf("adjacency covers %d arcs, live count is %d", seen, d.NumLiveArcs())
	}
}

func checkAscLive(t *testing.T, d *DynamicGraph, ids []ArcID) {
	t.Helper()
	for i, id := range ids {
		if !d.Live(id) {
			t.Fatalf("adjacency lists dead arc %d", id)
		}
		if i > 0 && ids[i-1] >= id {
			t.Fatalf("adjacency not strictly ascending: %v", ids)
		}
	}
}

func TestDynamicMaterializeHistoryIndependent(t *testing.T) {
	d := NewDynamic(dynSeed(t))
	base, _ := d.Materialize()
	// Insert then delete the same arc: fingerprint must return to base.
	id, err := d.InsertArc(3, 0, -7, 1)
	if err != nil {
		t.Fatalf("InsertArc: %v", err)
	}
	mid, _ := d.Materialize()
	if mid.Fingerprint() == base.Fingerprint() {
		t.Fatalf("insert must change the fingerprint")
	}
	if err := d.DeleteArc(id); err != nil {
		t.Fatalf("DeleteArc: %v", err)
	}
	back, export := d.Materialize()
	if back.Fingerprint() != base.Fingerprint() {
		t.Fatalf("insert+delete must restore the original fingerprint")
	}
	// Weight mutation changes it too (the result cache keys on content).
	if err := d.SetWeight(0, 42); err != nil {
		t.Fatalf("SetWeight: %v", err)
	}
	mut, _ := d.Materialize()
	if mut.Fingerprint() == base.Fingerprint() {
		t.Fatalf("weight change must change the fingerprint")
	}
	if err := d.SetWeight(0, 1); err != nil {
		t.Fatalf("SetWeight restore: %v", err)
	}
	// Export maps compact snapshot IDs to original IDs, ascending.
	for i := 1; i < len(export); i++ {
		if export[i-1] >= export[i] {
			t.Fatalf("export map not ascending: %v", export)
		}
	}
	for i, orig := range export {
		want, ok := d.Arc(orig)
		if !ok || back.Arc(ArcID(i)) != want {
			t.Fatalf("export[%d]=%d: snapshot arc %+v, overlay arc %+v ok=%v",
				i, orig, back.Arc(ArcID(i)), want, ok)
		}
	}
}

func TestDynamicAddNodeAndRangeChecks(t *testing.T) {
	d := NewDynamic(dynSeed(t))
	v := d.AddNode()
	if v != 4 || d.NumNodes() != 5 {
		t.Fatalf("AddNode: got id %d n=%d, want 4, 5", v, d.NumNodes())
	}
	if len(d.OutLive(v)) != 0 || len(d.InLive(v)) != 0 {
		t.Fatalf("new node must be isolated")
	}
	if _, err := d.InsertArc(v, 0, 1, 1); err != nil {
		t.Fatalf("insert from new node: %v", err)
	}
	if _, err := d.InsertArc(5, 0, 1, 1); !errors.Is(err, ErrNodeRange) {
		t.Fatalf("out-of-range from: got %v, want ErrNodeRange", err)
	}
	if _, err := d.InsertArc(0, -1, 1, 1); !errors.Is(err, ErrNodeRange) {
		t.Fatalf("negative to: got %v, want ErrNodeRange", err)
	}
	if _, ok := d.Arc(-1); ok {
		t.Fatalf("Arc(-1) must not be live")
	}
	if _, ok := d.Arc(99); ok {
		t.Fatalf("Arc(99) must not be live")
	}
}

func TestDynamicRandomizedAgainstRebuild(t *testing.T) {
	// Oracle check: after every mutation, Materialize() must equal a graph
	// rebuilt from scratch out of the tracked live arcs.
	d := NewDynamic(FromArcs(6, []Arc{
		{From: 0, To: 1, Weight: 2, Transit: 1},
		{From: 1, To: 0, Weight: -1, Transit: 1},
	}))
	oracle := map[ArcID]Arc{
		0: {From: 0, To: 1, Weight: 2, Transit: 1},
		1: {From: 1, To: 0, Weight: -1, Transit: 1},
	}
	rng := rand.New(rand.NewSource(11))
	for step := 0; step < 2000; step++ {
		switch op := rng.Intn(10); {
		case op < 4:
			u := NodeID(rng.Intn(d.NumNodes()))
			v := NodeID(rng.Intn(d.NumNodes()))
			w, tr := int64(rng.Intn(41)-20), int64(rng.Intn(3))
			id, err := d.InsertArc(u, v, w, tr)
			if err != nil {
				t.Fatalf("step %d insert: %v", step, err)
			}
			oracle[id] = Arc{From: u, To: v, Weight: w, Transit: tr}
		case op < 7 && len(oracle) > 0:
			id := randomOracleID(rng, oracle)
			if err := d.DeleteArc(id); err != nil {
				t.Fatalf("step %d delete %d: %v", step, id, err)
			}
			delete(oracle, id)
		case op < 9 && len(oracle) > 0:
			id := randomOracleID(rng, oracle)
			w := int64(rng.Intn(41) - 20)
			if err := d.SetWeight(id, w); err != nil {
				t.Fatalf("step %d setweight %d: %v", step, id, err)
			}
			a := oracle[id]
			a.Weight = w
			oracle[id] = a
		case len(oracle) > 0:
			id := randomOracleID(rng, oracle)
			tr := int64(rng.Intn(5))
			if err := d.SetTransit(id, tr); err != nil {
				t.Fatalf("step %d settransit %d: %v", step, id, err)
			}
			a := oracle[id]
			a.Transit = tr
			oracle[id] = a
		}
		if step%97 != 0 {
			continue
		}
		snap, export := d.Materialize()
		if snap.NumArcs() != len(oracle) {
			t.Fatalf("step %d: snapshot has %d arcs, oracle %d", step, snap.NumArcs(), len(oracle))
		}
		for i, orig := range export {
			if snap.Arc(ArcID(i)) != oracle[orig] {
				t.Fatalf("step %d: arc %d (orig %d): got %+v, want %+v",
					step, i, orig, snap.Arc(ArcID(i)), oracle[orig])
			}
		}
	}
}

// randomOracleID picks the k-th smallest live ID so reruns with the same rng
// seed are deterministic despite Go's randomized map iteration order.
func randomOracleID(rng *rand.Rand, oracle map[ArcID]Arc) ArcID {
	ids := make([]ArcID, 0, len(oracle))
	for id := range oracle {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids[rng.Intn(len(ids))]
}
