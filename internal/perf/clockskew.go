package perf

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/numeric"
)

// ClockSchedule is the result of optimal clock skew scheduling: the minimum
// feasible period and one latching time (skew) per latch-graph node
// realizing it.
type ClockSchedule struct {
	// Period is the optimal clock period T* — the maximum cycle mean of
	// the latch graph, exact.
	Period numeric.Rat
	// Skew[v] is the clock arrival time assigned to latch-graph node v
	// (node 0 is the host). Skews satisfy, for every latch-to-latch path
	// with maximum combinational delay d(u→v):
	//     Skew[v] − Skew[u] ≥ d(u,v) − T*   (setup feasibility at T*)
	// exactly, in rational arithmetic.
	Skew []numeric.Rat
	// Critical lists the arcs that are tight under the schedule — the
	// paths with zero slack that forbid any smaller period.
	Critical []graph.ArcID
}

// OptimalClockSchedule computes an optimal clock schedule for a sequential
// circuit (Szymanski, "Computing optimal clock schedules", DAC 1992 — one
// of the paper's motivating CAD applications): intentional clock skews let
// the period shrink until the maximum mean register-to-register cycle
// becomes binding; that bound, and skews achieving it, come directly from
// the cycle-mean machinery — T* is the maximum cycle mean of the latch
// graph and the skews are the shortest-path potentials of G_{T*}.
func OptimalClockSchedule(nl *circuit.Netlist, algo core.Algorithm) (*ClockSchedule, error) {
	lg, err := circuit.LatchGraph(nl)
	if err != nil {
		return nil, err
	}
	return ScheduleLatchGraph(lg, algo)
}

// ScheduleLatchGraph computes the optimal schedule directly from a latch
// graph (node 0 = host, arc weights = max combinational path delays).
func ScheduleLatchGraph(lg *graph.Graph, algo core.Algorithm) (*ClockSchedule, error) {
	res, err := core.MaximumCycleMean(lg, algo, core.Options{})
	if err != nil {
		return nil, fmt.Errorf("perf: clock schedule: %w", err)
	}
	period := res.Mean
	p, q := period.Num(), period.Den()

	// Setup constraint at period T: skew(v) − skew(u) ≥ d(u,v) − T for
	// every latch arc, i.e. skew(u) − skew(v) ≤ T − d(u,v). Shortest-path
	// potentials on the reversed graph with scaled weights p − q·d are
	// such skews; they exist because T = T* leaves no negative cycle.
	n := lg.NumNodes()
	dist := make([]int64, n) // scaled by q
	for pass := 0; pass < n; pass++ {
		changed := false
		for _, a := range lg.Arcs() {
			w := p - q*a.Weight // scaled (T − d)
			// Constraint skew(u) ≤ skew(v) + (T − d) relaxes u from v.
			if nd := dist[a.To] + w; nd < dist[a.From] {
				dist[a.From] = nd
				changed = true
			}
		}
		if !changed {
			break
		}
		if pass == n-1 {
			return nil, fmt.Errorf("perf: period %v infeasible (negative constraint cycle)", period)
		}
	}
	skews := make([]numeric.Rat, n)
	for v := range skews {
		skews[v] = numeric.NewRat(dist[v], q)
	}
	var critical []graph.ArcID
	for id := graph.ArcID(0); int(id) < lg.NumArcs(); id++ {
		a := lg.Arc(id)
		if dist[a.From] == dist[a.To]+p-q*a.Weight {
			critical = append(critical, id)
		}
	}
	return &ClockSchedule{Period: period, Skew: skews, Critical: critical}, nil
}

// Validate checks the schedule's setup constraints exactly against the
// latch graph it was computed from; it returns an error naming the first
// violated arc, or nil.
func (cs *ClockSchedule) Validate(lg *graph.Graph) error {
	for id := graph.ArcID(0); int(id) < lg.NumArcs(); id++ {
		a := lg.Arc(id)
		// skew(v) − skew(u) ≥ d − T  ⟺  skew(u) − skew(v) ≤ T − d.
		lhs := cs.Skew[a.From].Sub(cs.Skew[a.To])
		rhs := cs.Period.Sub(numeric.FromInt(a.Weight))
		if rhs.Less(lhs) {
			return fmt.Errorf("perf: setup violated on arc %d (%d→%d): slack %v",
				id, a.From, a.To, rhs.Sub(lhs))
		}
	}
	return nil
}
