package perf

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/numeric"
)

func TestScheduleLatchGraphHand(t *testing.T) {
	// Two latches: delays 0→1 of 8, 1→0 of 2. Zero-skew period would be 8;
	// with skew the bound is the cycle mean (8+2)/2 = 5.
	b := graph.NewBuilder(2, 2)
	b.AddNodes(2)
	b.AddArc(0, 1, 8)
	b.AddArc(1, 0, 2)
	lg := b.Build()

	algo, _ := core.ByName("howard")
	cs, err := ScheduleLatchGraph(lg, algo)
	if err != nil {
		t.Fatal(err)
	}
	if want := numeric.NewRat(5, 1); !cs.Period.Equal(want) {
		t.Fatalf("period = %v, want 5", cs.Period)
	}
	if err := cs.Validate(lg); err != nil {
		t.Fatal(err)
	}
	// The skew difference must absorb the asymmetry: skew(1) − skew(0) = 3.
	diff := cs.Skew[1].Sub(cs.Skew[0])
	if want := numeric.NewRat(3, 1); !diff.Equal(want) {
		t.Fatalf("skew difference = %v, want 3", diff)
	}
	// Both arcs are critical at the optimum of a single cycle.
	if len(cs.Critical) != 2 {
		t.Fatalf("critical arcs = %v, want both", cs.Critical)
	}
}

func TestOptimalClockScheduleOnGeneratedCircuits(t *testing.T) {
	algo, _ := core.ByName("yto")
	for seed := uint64(1); seed <= 5; seed++ {
		nl, err := circuit.Generate(circuit.GenConfig{
			FFs: 24, CloudGates: 16, MaxFanin: 3, Feedback: 6, PIs: 4, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		lg, err := circuit.LatchGraph(nl)
		if err != nil {
			t.Fatal(err)
		}
		cs, err := OptimalClockSchedule(nl, algo)
		if err != nil {
			t.Fatal(err)
		}
		if err := cs.Validate(lg); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(cs.Critical) == 0 {
			t.Fatalf("seed %d: no critical paths at the optimal period", seed)
		}
		// The optimal period can never exceed the zero-skew period (the
		// largest single-hop delay) and never beat the max cycle mean.
		var maxDelay int64
		for _, a := range lg.Arcs() {
			if a.Weight > maxDelay {
				maxDelay = a.Weight
			}
		}
		if numeric.FromInt(maxDelay).Less(cs.Period) {
			t.Fatalf("seed %d: period %v exceeds zero-skew period %d", seed, cs.Period, maxDelay)
		}
	}
}

// TestScheduleIsTightSomewhere: shrinking the period by any amount makes
// the constraint system infeasible — i.e. the computed period is optimal,
// not merely feasible.
func TestScheduleIsTight(t *testing.T) {
	algo, _ := core.ByName("howard")
	nl, err := circuit.Generate(circuit.GenConfig{
		FFs: 16, CloudGates: 12, MaxFanin: 3, Feedback: 4, PIs: 3, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	lg, err := circuit.LatchGraph(nl)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := ScheduleLatchGraph(lg, algo)
	if err != nil {
		t.Fatal(err)
	}
	// Feasibility of period T ⟺ no cycle of mean > T ⟺ max mean ≤ T.
	res, err := core.MaximumCycleMean(lg, algo, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Mean.Equal(cs.Period) {
		t.Fatalf("period %v != max cycle mean %v", cs.Period, res.Mean)
	}
	// A strictly smaller period puts a positive-mean-excess cycle in the
	// constraint graph: validate must fail for the same skews.
	smaller := cs.Period.Sub(numeric.NewRat(1, 1000))
	bad := &ClockSchedule{Period: smaller, Skew: cs.Skew}
	if err := bad.Validate(lg); err == nil {
		t.Fatal("schedule remained feasible below the cycle-mean bound")
	}
}
