package perf

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/ratio"
)

// biquad builds the classic second-order IIR filter (biquad) dataflow
// graph used in iteration-bound papers: adders (1 time unit), multipliers
// (2 time units), and feedback loops through one and two delays.
func biquad(t *testing.T) *Dataflow {
	t.Helper()
	d := NewDataflow()
	mustActor := func(name string, w int64) {
		if _, err := d.AddActor(name, w); err != nil {
			t.Fatal(err)
		}
	}
	mustEdge := func(from, to string, delays int64) {
		if err := d.AddEdge(from, to, delays); err != nil {
			t.Fatal(err)
		}
	}
	// Adders a1, a2; multipliers m1, m2 in the feedback paths.
	mustActor("a1", 1)
	mustActor("a2", 1)
	mustActor("m1", 2)
	mustActor("m2", 2)
	// Loop 1: a1 → (1 delay) → m1 → a1 : time 3, delays 1.
	mustEdge("a1", "m1", 1)
	mustEdge("m1", "a1", 0)
	// Loop 2: a1 → a2 → (2 delays) → m2 → a1 : time 4, delays 2.
	mustEdge("a1", "a2", 0)
	mustEdge("a2", "m2", 2)
	mustEdge("m2", "a1", 0)
	return d
}

func TestIterationBoundBiquad(t *testing.T) {
	d := biquad(t)
	algo, err := ratio.ByName("howard")
	if err != nil {
		t.Fatal(err)
	}
	bound, cycle, err := d.IterationBound(algo)
	if err != nil {
		t.Fatal(err)
	}
	// Loop 1 dominates: (1+2)/1 = 3 versus (1+1+2)/2 = 2.
	if want := numeric.NewRat(3, 1); !bound.Equal(want) {
		t.Fatalf("iteration bound = %v, want %v (critical loop %v)", bound, want, cycle)
	}
	if len(cycle) != 2 {
		t.Fatalf("critical loop %v, want the 2-actor loop", cycle)
	}
}

func TestIterationBoundAllRatioAlgorithms(t *testing.T) {
	d := biquad(t)
	for _, algo := range ratio.All() {
		bound, _, err := d.IterationBound(algo)
		if strings.HasPrefix(algo.Name(), "expand") {
			// The transit-expansion reduction requires every delay count to
			// be >= 1; the biquad's zero-delay edges are out of its domain.
			if err == nil {
				t.Errorf("%s: expected a transit-domain error on zero-delay edges", algo.Name())
			}
			continue
		}
		if err != nil {
			t.Fatalf("%s: %v", algo.Name(), err)
		}
		if want := numeric.NewRat(3, 1); !bound.Equal(want) {
			t.Errorf("%s: bound %v, want 3", algo.Name(), bound)
		}
	}
}

func TestIterationBoundDeadlock(t *testing.T) {
	d := NewDataflow()
	if _, err := d.AddActor("x", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddActor("y", 1); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge("x", "y", 0); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge("y", "x", 0); err != nil {
		t.Fatal(err)
	}
	algo, _ := ratio.ByName("howard")
	if _, _, err := d.IterationBound(algo); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("got %v, want ErrDeadlock", err)
	}
}

func TestClockPeriodBound(t *testing.T) {
	nl, err := circuit.Generate(circuit.GenConfig{FFs: 10, CloudGates: 14, MaxFanin: 3, Feedback: 3, PIs: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var bounds []numeric.Rat
	for _, name := range []string{"howard", "karp", "yto", "burns"} {
		algo, err := core.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		period, res, err := ClockPeriodBound(nl, algo)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Cycle) == 0 {
			t.Fatalf("%s: no critical cycle", name)
		}
		bounds = append(bounds, period)
	}
	for i := 1; i < len(bounds); i++ {
		if !bounds[i].Equal(bounds[0]) {
			t.Fatalf("algorithms disagree on clock bound: %v vs %v", bounds[i], bounds[0])
		}
	}
	if bounds[0].Float64() < 1 {
		t.Fatalf("clock bound %v below one gate delay", bounds[0])
	}
}

func TestProcessRates(t *testing.T) {
	// Two SCCs: a fast 2-cycle (latencies 1+3 → period 2) and a slow
	// self-loop (latency 10), plus a dangling acyclic process.
	b := graph.NewBuilder(4, 4)
	b.AddNodes(4)
	b.AddArc(0, 1, 1)
	b.AddArc(1, 0, 3)
	b.AddArc(2, 2, 10)
	b.AddArc(1, 3, 5) // 3 is on no cycle
	g := b.Build()

	algo, _ := core.ByName("howard")
	rates, err := ProcessRates(g, algo)
	if err != nil {
		t.Fatal(err)
	}
	if want := numeric.NewRat(2, 1); !rates[0].Period.Equal(want) || !rates[1].Period.Equal(want) {
		t.Errorf("fast SCC period = %v/%v, want 2", rates[0].Period, rates[1].Period)
	}
	if want := numeric.NewRat(10, 1); !rates[2].Period.Equal(want) {
		t.Errorf("slow SCC period = %v, want 10", rates[2].Period)
	}
	if !math.IsInf(rates[3].RatePerSecond, 1) {
		t.Errorf("acyclic process rate = %v, want +Inf", rates[3].RatePerSecond)
	}
	if got := rates[0].RatePerSecond; math.Abs(got-0.5) > 1e-12 {
		t.Errorf("fast SCC rate = %v, want 0.5", got)
	}
}
