package perf

import (
	"errors"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/numeric"
)

// validateSetupHold checks every constraint exactly.
func validateSetupHold(t *testing.T, lg *graph.Graph, minDelay []int64, hold int64, cs *ClockSchedule) {
	t.Helper()
	for id := graph.ArcID(0); int(id) < lg.NumArcs(); id++ {
		a := lg.Arc(id)
		// setup: skew(u) + maxD <= skew(v) + T
		lhs := cs.Skew[a.From].Add(numeric.FromInt(a.Weight))
		rhs := cs.Skew[a.To].Add(cs.Period)
		if rhs.Less(lhs) {
			t.Fatalf("setup violated on arc %d: %v > %v", id, lhs, rhs)
		}
		// hold: skew(v) + hold <= skew(u) + minD
		lhs = cs.Skew[a.To].Add(numeric.FromInt(hold))
		rhs = cs.Skew[a.From].Add(numeric.FromInt(minDelay[id]))
		if rhs.Less(lhs) {
			t.Fatalf("hold violated on arc %d: %v > %v", id, lhs, rhs)
		}
	}
}

func TestSetupHoldWithoutHoldPressureMatchesCycleMean(t *testing.T) {
	// With min delays huge and hold margin 0, hold constraints are slack
	// and the optimal period must equal the plain cycle-mean bound.
	b := graph.NewBuilder(2, 2)
	b.AddNodes(2)
	b.AddArc(0, 1, 8)
	b.AddArc(1, 0, 2)
	lg := b.Build()
	minDelay := []int64{8, 2} // min == max: generous slow paths

	cs, err := ScheduleSetupHold(lg, minDelay, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := numeric.NewRat(5, 1); !cs.Period.Equal(want) {
		t.Fatalf("period = %v, want 5 (the cycle mean)", cs.Period)
	}
	validateSetupHold(t, lg, minDelay, 0, cs)
	if len(cs.Critical) == 0 {
		t.Fatal("no critical setup arcs at the optimum")
	}
}

func TestSetupHoldRaceLimitsSkew(t *testing.T) {
	// Arc 0→1 has a racing fast path (min delay 0) and we demand a hold
	// margin of 2, which forces skew(1) ≤ skew(0) − 2 — the opposite of
	// what setup-only scheduling wants. The optimal period must rise above
	// the cycle-mean bound of (8+4)/2 = 6: the mixed constraint cycle
	// setup(0→1) + hold(0→1) gives (T − 8) + (0 − 2) ≥ 0, i.e. T ≥ 10.
	b := graph.NewBuilder(2, 2)
	b.AddNodes(2)
	b.AddArc(0, 1, 8)
	b.AddArc(1, 0, 4)
	lg := b.Build()
	minDelay := []int64{0, 4}
	hold := int64(2)

	cs, err := ScheduleSetupHold(lg, minDelay, hold)
	if err != nil {
		t.Fatal(err)
	}
	validateSetupHold(t, lg, minDelay, hold, cs)
	if !numeric.NewRat(6, 1).Less(cs.Period) {
		t.Fatalf("period = %v; hold pressure should push it above 6", cs.Period)
	}
	// Mixed constraint cycle: setup(0→1) + hold(0→1 reversed...):
	// skew0−skew1 ≤ T−8 and skew1−skew0 ≤ 0−2 ⇒ 0 ≤ T−10 ⇒ T ≥ 10.
	if want := numeric.NewRat(10, 1); !cs.Period.Equal(want) {
		t.Fatalf("period = %v, want 10", cs.Period)
	}
}

func TestSetupHoldInfeasible(t *testing.T) {
	// A pure hold cycle that no period can fix: two latches with zero min
	// delay both ways and a positive hold margin.
	b := graph.NewBuilder(2, 2)
	b.AddNodes(2)
	b.AddArc(0, 1, 5)
	b.AddArc(1, 0, 5)
	lg := b.Build()
	minDelay := []int64{0, 0}
	if _, err := ScheduleSetupHold(lg, minDelay, 1); !errors.Is(err, ErrHoldInfeasible) {
		t.Fatalf("got %v, want ErrHoldInfeasible", err)
	}
}

func TestSetupHoldOnGeneratedCircuits(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		nl, err := circuit.Generate(circuit.GenConfig{
			FFs: 16, CloudGates: 12, MaxFanin: 3, Feedback: 4, PIs: 3, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		lg, minDelay, err := circuit.LatchGraphMinMax(nl)
		if err != nil {
			t.Fatal(err)
		}
		cs, err := ScheduleSetupHold(lg, minDelay, 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		validateSetupHold(t, lg, minDelay, 0, cs)

		// Sanity against the hold-free optimum: adding constraints can
		// only raise the period.
		algo, _ := core.ByName("howard")
		plain, err := ScheduleLatchGraph(lg, algo)
		if err != nil {
			t.Fatal(err)
		}
		if cs.Period.Less(plain.Period) {
			t.Fatalf("seed %d: setup+hold period %v below setup-only %v", seed, cs.Period, plain.Period)
		}
	}
}

func TestLatchGraphMinMaxConsistent(t *testing.T) {
	nl, err := circuit.Generate(circuit.GenConfig{
		FFs: 10, CloudGates: 14, MaxFanin: 3, Feedback: 3, PIs: 3, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	lgMax, err := circuit.LatchGraph(nl)
	if err != nil {
		t.Fatal(err)
	}
	lg, minDelay, err := circuit.LatchGraphMinMax(nl)
	if err != nil {
		t.Fatal(err)
	}
	if lg.NumArcs() != lgMax.NumArcs() || lg.NumNodes() != lgMax.NumNodes() {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d", lg.NumNodes(), lg.NumArcs(), lgMax.NumNodes(), lgMax.NumArcs())
	}
	for id := graph.ArcID(0); int(id) < lg.NumArcs(); id++ {
		if lg.Arc(id).Weight != lgMax.Arc(id).Weight {
			t.Fatalf("max delays disagree on arc %d", id)
		}
		if minDelay[id] > lg.Arc(id).Weight {
			t.Fatalf("arc %d: min delay %d exceeds max %d", id, minDelay[id], lg.Arc(id).Weight)
		}
		if minDelay[id] < 0 {
			t.Fatalf("arc %d: negative min delay", id)
		}
	}
}
