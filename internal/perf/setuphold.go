package perf

import (
	"errors"
	"fmt"

	"repro/internal/counter"
	"repro/internal/graph"
	"repro/internal/ncd"
	"repro/internal/numeric"
)

// ErrHoldInfeasible means the hold constraints alone contain a negative
// cycle: no clock period, however large, can fix the race (only inserting
// delay buffers or registers can).
var ErrHoldInfeasible = errors.New("perf: hold constraints are infeasible at every period")

// ScheduleSetupHold computes the minimum clock period and skews for a
// latch graph under BOTH timing constraint families:
//
//	setup: skew(u) + maxDelay(u,v) ≤ skew(v) + T
//	hold:  skew(v) + holdMargin   ≤ skew(u) + minDelay(u,v)
//
// maxDelay comes from the latch graph's arc weights and minDelay from
// circuit.LatchGraphMinMax. With hold constraints the optimal period is no
// longer a pure maximum cycle mean but a maximum cost-to-time ratio over
// mixed constraint cycles (setup arcs count toward the period, hold arcs
// do not); the search mirrors Lawler's algorithm — exact bisection on a
// fixed grid with a cycle-refined exact finish.
func ScheduleSetupHold(lg *graph.Graph, minDelay []int64, holdMargin int64) (*ClockSchedule, error) {
	m := lg.NumArcs()
	if len(minDelay) != m {
		return nil, fmt.Errorf("perf: %d min delays for %d arcs", len(minDelay), m)
	}
	n := lg.NumNodes()
	if n == 0 || m == 0 {
		return nil, errors.New("perf: empty latch graph")
	}

	// Constraint graph: for latch arc e = (u, v) with max delay D and min
	// delay d,
	//   setup arc  v → u, weight T − D   (counts one T)
	//   hold  arc  u → v, weight d − holdMargin
	type cArc struct {
		from, to graph.NodeID
		fixed    int64 // weight excluding the T contribution
		setups   int64 // number of T terms (1 for setup arcs)
	}
	arcs := make([]cArc, 0, 2*m)
	for id := graph.ArcID(0); int(id) < m; id++ {
		a := lg.Arc(id)
		arcs = append(arcs,
			cArc{from: a.To, to: a.From, fixed: -a.Weight, setups: 1},
			cArc{from: a.From, to: a.To, fixed: minDelay[id] - holdMargin, setups: 0},
		)
	}
	cg := func() *graph.Graph {
		b := graph.NewBuilder(n, len(arcs))
		b.AddNodes(n)
		for _, a := range arcs {
			b.AddArc(a.from, a.to, 0) // weights supplied per probe
		}
		return b.Build()
	}()

	// Any-period infeasibility: a negative cycle among hold arcs alone.
	holdW := make([]int64, len(arcs))
	for i, a := range arcs {
		if a.setups == 1 {
			holdW[i] = 1 << 40 // setup arcs effectively removed
		} else {
			holdW[i] = a.fixed
		}
	}
	if _, neg := ncd.Detect(cg, holdW, ncd.EarlyExit, nil); neg {
		return nil, ErrHoldInfeasible
	}

	// Bisection on T = x/K. T* is the maximum over constraint cycles of
	// (−Σ fixed)/(Σ setups) with Σ setups ≤ m, so K = m²+1 pins it down
	// exactly once the window closes to one grid cell.
	K := int64(m)*int64(m) + 1
	var counts counter.Counts
	weights := make([]int64, len(arcs))
	probe := func(x int64) ([]graph.ArcID, bool) {
		for i, a := range arcs {
			weights[i] = K*a.fixed + a.setups*x
		}
		return ncd.Detect(cg, weights, ncd.EarlyExit, &counts)
	}

	// Bounds: hi must be feasible and lo infeasible; both grow
	// geometrically from the max-delay scale until the invariant holds.
	// (An infeasible T always exists: each latch arc's setup+hold pair
	// forms a constraint 2-cycle whose weight goes to −∞ as T does.)
	var bestCycle []graph.ArcID
	_, maxW := lg.WeightRange()
	scale := maxW + abs64(holdMargin) + 1
	hi := K * scale
	for tries := 0; ; tries++ {
		if _, neg := probe(hi); !neg {
			break
		}
		hi *= 2
		if tries > 60 {
			return nil, errors.New("perf: period search diverged upward")
		}
	}
	lo := -K * scale
	for tries := 0; ; tries++ {
		cyc, neg := probe(lo)
		if neg {
			bestCycle = cyc
			break
		}
		lo *= 2
		if tries > 60 {
			return nil, errors.New("perf: period search diverged downward")
		}
	}

	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		cyc, neg := probe(mid)
		if neg {
			lo = mid
			bestCycle = cyc
		} else {
			hi = mid
		}
	}

	// Exact period from the last infeasible probe's cycle: it forces
	// T ≥ (−Σ fixed)/(Σ setups), and at the closed window that bound is T*.
	var fixed, setups int64
	for _, id := range bestCycle {
		fixed += arcs[id].fixed
		setups += arcs[id].setups
	}
	if setups == 0 {
		return nil, ErrHoldInfeasible // cannot happen after the pre-check
	}
	period := numeric.NewRat(-fixed, setups)

	// Final exact feasibility at T* and skew extraction.
	p, q := period.Num(), period.Den()
	dist := make([]int64, n)
	for pass := 0; ; pass++ {
		changed := false
		for _, a := range arcs {
			w := q*a.fixed + a.setups*p
			if nd := dist[a.from] + w; nd < dist[a.to] {
				dist[a.to] = nd
				changed = true
			}
		}
		if !changed {
			break
		}
		if pass >= n {
			return nil, fmt.Errorf("perf: recovered period %v not feasible", period)
		}
	}

	skews := make([]numeric.Rat, n)
	for v := range skews {
		skews[v] = numeric.NewRat(dist[v], q)
	}
	// Critical latch arcs: setup constraints that are tight at T*.
	var critical []graph.ArcID
	for id := graph.ArcID(0); int(id) < m; id++ {
		a := arcs[2*id] // the setup arc of latch arc id
		if dist[a.to] == dist[a.from]+q*a.fixed+a.setups*p {
			critical = append(critical, id)
		}
	}
	return &ClockSchedule{Period: period, Skew: skews, Critical: critical}, nil
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
