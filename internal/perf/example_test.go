package perf_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/perf"
	"repro/internal/ratio"
)

func ExampleDataflow_IterationBound() {
	// A one-delay feedback loop: adder (1 unit) + multiplier (2 units).
	d := perf.NewDataflow()
	d.AddActor("add", 1)
	d.AddActor("mul", 2)
	d.AddEdge("add", "mul", 1)
	d.AddEdge("mul", "add", 0)

	algo, _ := ratio.ByName("howard")
	bound, loop, err := d.IterationBound(algo)
	if err != nil {
		panic(err)
	}
	fmt.Printf("T∞ = %v via %v\n", bound, loop)
	// Output: T∞ = 3 via [add mul]
}

func ExampleScheduleLatchGraph() {
	// Two latches with asymmetric path delays: zero-skew period would be
	// 8; skewing reaches the cycle-mean bound (8+2)/2 = 5.
	b := graph.NewBuilder(2, 2)
	b.AddNodes(2)
	b.AddArc(0, 1, 8)
	b.AddArc(1, 0, 2)
	lg := b.Build()

	algo, _ := core.ByName("howard")
	cs, err := perf.ScheduleLatchGraph(lg, algo)
	if err != nil {
		panic(err)
	}
	fmt.Printf("optimal period %v, skew difference %v\n",
		cs.Period, cs.Skew[1].Sub(cs.Skew[0]))
	// Output: optimal period 5, skew difference 3
}
