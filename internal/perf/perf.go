// Package perf implements the CAD applications that motivate the paper's
// Section 1.1: computing the cycle period of cyclic discrete-event systems.
// Three concrete analyses are provided, each a thin, well-typed layer over
// the cycle-mean/cycle-ratio solvers:
//
//   - the iteration bound of a DSP dataflow graph (Ito & Parhi's problem:
//     a maximum cost-to-time ratio over cycles, costs = actor execution
//     times, times = edge delays/tokens);
//   - the minimum clock period bound of a sequential circuit under retiming
//     (a maximum cycle mean of the latch-to-latch timing graph);
//   - rate analysis of embedded process graphs (Mathur, Dasdan & Gupta:
//     per-process execution-rate bounds from the maximum cycle mean of the
//     process's strongly connected component).
package perf

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/ratio"
)

// ErrDeadlock means a dataflow cycle carries no delays (tokens), so the
// graph cannot execute at any rate.
var ErrDeadlock = errors.New("perf: delay-free cycle (deadlocked dataflow graph)")

// Dataflow is a DSP dataflow graph under construction: actors with
// execution times, edges with delay (token) counts. Use AddActor/AddEdge,
// then IterationBound.
type Dataflow struct {
	names []string
	exec  []int64
	byN   map[string]graph.NodeID
	edges []dfEdge
}

type dfEdge struct {
	from, to graph.NodeID
	delays   int64
}

// NewDataflow returns an empty dataflow graph.
func NewDataflow() *Dataflow {
	return &Dataflow{byN: make(map[string]graph.NodeID)}
}

// AddActor declares an actor with the given execution time (>= 0) and
// returns its node. Duplicate names are an error.
func (d *Dataflow) AddActor(name string, execTime int64) (graph.NodeID, error) {
	if _, dup := d.byN[name]; dup {
		return 0, fmt.Errorf("perf: duplicate actor %q", name)
	}
	if execTime < 0 {
		return 0, fmt.Errorf("perf: actor %q has negative execution time", name)
	}
	id := graph.NodeID(len(d.names))
	d.names = append(d.names, name)
	d.exec = append(d.exec, execTime)
	d.byN[name] = id
	return id, nil
}

// AddEdge adds a dataflow edge with the given delay (token) count (>= 0).
func (d *Dataflow) AddEdge(from, to string, delays int64) error {
	u, ok := d.byN[from]
	if !ok {
		return fmt.Errorf("perf: unknown actor %q", from)
	}
	v, ok := d.byN[to]
	if !ok {
		return fmt.Errorf("perf: unknown actor %q", to)
	}
	if delays < 0 {
		return fmt.Errorf("perf: negative delay count on %s→%s", from, to)
	}
	d.edges = append(d.edges, dfEdge{from: u, to: v, delays: delays})
	return nil
}

// Graph lowers the dataflow graph to the ratio form: arc u→v carries weight
// = exec(u) and transit = delays, so a cycle's ratio is its total execution
// time over its delay count — the quantity the iteration bound maximizes.
func (d *Dataflow) Graph() *graph.Graph {
	b := graph.NewBuilder(len(d.names), len(d.edges))
	b.AddNodes(len(d.names))
	for _, e := range d.edges {
		b.AddArcTransit(e.from, e.to, d.exec[e.from], e.delays)
	}
	return b.Build()
}

// IterationBound computes T∞ = max over cycles of (Σ execution time)/(Σ
// delays), the minimum achievable iteration period of the dataflow graph
// [Ito & Parhi 1995]. The returned cycle names the actors of a critical
// loop in order. Returns ErrDeadlock for delay-free cycles and
// ratio.ErrAcyclic when the graph has no cycles (bound 0: fully
// pipelineable).
func (d *Dataflow) IterationBound(algo ratio.Algorithm) (numeric.Rat, []string, error) {
	g := d.Graph()
	res, err := ratio.MaximumCycleRatio(g, algo, core.Options{})
	switch {
	case errors.Is(err, ratio.ErrNonPositiveTransit):
		return numeric.Rat{}, nil, ErrDeadlock
	case err != nil:
		return numeric.Rat{}, nil, err
	}
	names := make([]string, len(res.Cycle))
	for i, id := range res.Cycle {
		names[i] = d.names[g.Arc(id).From]
	}
	return res.Ratio, names, nil
}

// ClockPeriodBound computes the minimum clock period achievable for the
// netlist by retiming: the maximum cycle mean of its latch-to-latch timing
// graph (delay per register crossing). The result is exact; the critical
// cycle is returned in terms of latch-graph arcs.
func ClockPeriodBound(nl *circuit.Netlist, algo core.Algorithm) (numeric.Rat, core.Result, error) {
	lg, err := circuit.LatchGraph(nl)
	if err != nil {
		return numeric.Rat{}, core.Result{}, err
	}
	res, err := core.MaximumCycleMean(lg, algo, core.Options{})
	if err != nil {
		return numeric.Rat{}, core.Result{}, err
	}
	return res.Mean, res, nil
}

// Rate is a per-process execution-rate bound from rate analysis.
type Rate struct {
	// Node is the process.
	Node graph.NodeID
	// Period is the minimum time between successive executions (the
	// maximum cycle mean of the process's SCC); zero period means the
	// process is not on any cycle.
	Period numeric.Rat
	// RatePerSecond is 1/Period as a float convenience (+Inf when
	// unconstrained).
	RatePerSecond float64
}

// ProcessRates performs rate analysis on a cyclic process graph whose arc
// weights are inter-process latencies [Mathur, Dasdan & Gupta 1998]: each
// process's asymptotic execution rate is bounded by the maximum cycle mean
// of its strongly connected component. Processes in acyclic components are
// unconstrained (infinite rate bound).
func ProcessRates(g *graph.Graph, algo core.Algorithm) ([]Rate, error) {
	n := g.NumNodes()
	rates := make([]Rate, n)
	for v := range rates {
		rates[v] = Rate{Node: graph.NodeID(v), RatePerSecond: math.Inf(1)}
	}
	for _, comp := range graph.CyclicComponents(g) {
		res, err := algo.Solve(comp.Graph.NegateWeights(), core.Options{})
		if err != nil {
			return nil, fmt.Errorf("perf: rate analysis on component of %d nodes: %w", comp.Graph.NumNodes(), err)
		}
		period := res.Mean.Neg()
		rate := 0.0
		if period.Float64() > 0 {
			rate = 1 / period.Float64()
		} else {
			rate = math.Inf(1)
		}
		for _, v := range comp.Nodes {
			rates[v].Period = period
			rates[v].RatePerSecond = rate
		}
	}
	return rates, nil
}
