package core

import (
	"fmt"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/verify"
)

// TestAllAlgorithmsAgreeWithOracle is the central invariant of the whole
// study: every algorithm must return the exact minimum cycle mean, verified
// against the brute-force cycle-enumeration oracle, on a spread of small
// random graphs.
func TestAllAlgorithmsAgreeWithOracle(t *testing.T) {
	algos := All()
	for _, size := range []struct{ n, m int }{
		{2, 3}, {3, 5}, {4, 6}, {5, 9}, {6, 12}, {8, 16}, {10, 15}, {12, 30}, {16, 24},
	} {
		for seed := uint64(0); seed < 12; seed++ {
			g, err := gen.Sprand(gen.SprandConfig{
				N: size.n, M: size.m, MinWeight: -20, MaxWeight: 20, Seed: seed,
			})
			if err != nil {
				t.Fatalf("sprand(%d,%d,%d): %v", size.n, size.m, seed, err)
			}
			want, _, err := verify.BruteForceMinMean(g)
			if err != nil {
				t.Fatalf("oracle on n=%d m=%d seed=%d: %v", size.n, size.m, seed, err)
			}
			for _, algo := range algos {
				got, err := algo.Solve(g, Options{})
				if err != nil {
					t.Fatalf("%s on n=%d m=%d seed=%d: %v", algo.Name(), size.n, size.m, seed, err)
				}
				if !got.Mean.Equal(want) {
					t.Errorf("%s on n=%d m=%d seed=%d: got λ*=%v, oracle %v",
						algo.Name(), size.n, size.m, seed, got.Mean, want)
					continue
				}
				if !got.Exact {
					t.Errorf("%s: default options must be exact", algo.Name())
				}
				if err := verify.CheckCycleIsOptimal(g, got.Mean, got.Cycle); err != nil {
					t.Errorf("%s on n=%d m=%d seed=%d: bad cycle: %v",
						algo.Name(), size.n, size.m, seed, err)
				}
			}
		}
	}
}

// TestMediumRandomGraphsCrossCheck runs all algorithms on medium graphs
// (too big for the enumeration oracle) and checks mutual agreement plus the
// optimality certificate.
func TestMediumRandomGraphsCrossCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("medium graphs skipped in -short mode")
	}
	algos := All()
	for _, size := range []struct{ n, m int }{
		{64, 128}, {100, 150}, {128, 384},
	} {
		for seed := uint64(0); seed < 3; seed++ {
			g, err := gen.Sprand(gen.SprandConfig{N: size.n, M: size.m, MinWeight: 1, MaxWeight: 10000, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			var ref numeric.Rat
			for i, algo := range algos {
				got, err := algo.Solve(g, Options{})
				if err != nil {
					t.Fatalf("%s on n=%d m=%d seed=%d: %v", algo.Name(), size.n, size.m, seed, err)
				}
				if i == 0 {
					ref = got.Mean
					if err := verify.CheckCycleIsOptimal(g, got.Mean, got.Cycle); err != nil {
						t.Fatalf("%s: %v", algo.Name(), err)
					}
				} else if !got.Mean.Equal(ref) {
					t.Errorf("%s disagrees on n=%d m=%d seed=%d: %v vs %v",
						algo.Name(), size.n, size.m, seed, got.Mean, ref)
				}
			}
		}
	}
}

func ExampleMinimumCycleMean() {
	// The three-node cycle 0→1→2→0 with weights 2, 3, 4 has mean 3; the
	// shortcut 0→1 of weight 1 creates a second cycle but no shorter one.
	b := graph.NewBuilder(3, 4)
	b.AddNodes(3)
	b.AddArc(0, 1, 2)
	b.AddArc(1, 2, 3)
	b.AddArc(2, 0, 4)
	b.AddArc(0, 2, 10)
	g := b.Build()

	algo, _ := ByName("howard")
	res, _ := MinimumCycleMean(g, algo, Options{})
	fmt.Println(res.Mean)
	// Output: 3
}
