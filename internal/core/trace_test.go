package core

// Integration tests for the obs.Trace hooks: every solve path — sequential,
// parallel, kernelized, portfolio, session — must emit the documented event
// sequence, with component tags and cache/certification outcomes that match
// the work actually performed.

import (
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/obs"
)

// traceRecorder collects every event kind behind one mutex so it is safe for
// the concurrent emission the parallel driver and portfolio produce.
type traceRecorder struct {
	mu      sync.Mutex
	scc     []obs.SCCEvent
	kernels []obs.KernelEvent
	starts  []obs.SolverStartEvent
	dones   []obs.SolverDoneEvent
	races   []obs.RaceEvent
	caches  []obs.CacheEvent
	certs   []obs.CertifyEvent
}

func (r *traceRecorder) trace() *obs.Trace {
	return &obs.Trace{
		OnSCC:         func(ev obs.SCCEvent) { r.mu.Lock(); r.scc = append(r.scc, ev); r.mu.Unlock() },
		OnKernel:      func(ev obs.KernelEvent) { r.mu.Lock(); r.kernels = append(r.kernels, ev); r.mu.Unlock() },
		OnSolverStart: func(ev obs.SolverStartEvent) { r.mu.Lock(); r.starts = append(r.starts, ev); r.mu.Unlock() },
		OnSolverDone:  func(ev obs.SolverDoneEvent) { r.mu.Lock(); r.dones = append(r.dones, ev); r.mu.Unlock() },
		OnRace:        func(ev obs.RaceEvent) { r.mu.Lock(); r.races = append(r.races, ev); r.mu.Unlock() },
		OnCache:       func(ev obs.CacheEvent) { r.mu.Lock(); r.caches = append(r.caches, ev); r.mu.Unlock() },
		OnCertify:     func(ev obs.CertifyEvent) { r.mu.Lock(); r.certs = append(r.certs, ev); r.mu.Unlock() },
	}
}

// componentsSeen returns the set of component tags on SolverDone events.
func (r *traceRecorder) componentsSeen() map[int]int {
	seen := make(map[int]int)
	for _, ev := range r.dones {
		seen[ev.Component]++
	}
	return seen
}

func TestTraceSequentialDriver(t *testing.T) {
	g, err := gen.MultiSCC(4, 15, 40, 21)
	if err != nil {
		t.Fatal(err)
	}
	rec := &traceRecorder{}
	res, err := MinimumCycleMean(g, mustAlgo(t, "howard"), Options{Certify: true, Tracer: rec.trace()})
	if err != nil {
		t.Fatal(err)
	}

	if len(rec.scc) != 1 {
		t.Fatalf("SCC events = %d, want 1", len(rec.scc))
	}
	scc := rec.scc[0]
	if scc.Components < 2 {
		t.Fatalf("MultiSCC(4, ...) reported %d cyclic components", scc.Components)
	}
	if len(scc.Sizes) != scc.Components {
		t.Errorf("len(Sizes) = %d, want %d", len(scc.Sizes), scc.Components)
	}
	// Nodes/Arcs cover the cyclic components only (the acyclic remainder is
	// never handed to a solver), so they are bounded by the full graph.
	if scc.Nodes <= 0 || scc.Nodes > g.NumNodes() || scc.Arcs <= 0 || scc.Arcs > g.NumArcs() {
		t.Errorf("SCC event sizes n=%d m=%d out of range for graph n=%d m=%d", scc.Nodes, scc.Arcs, g.NumNodes(), g.NumArcs())
	}
	var sizeSum int
	for _, sz := range scc.Sizes {
		sizeSum += sz
	}
	if sizeSum != scc.Nodes {
		t.Errorf("sum(Sizes) = %d, want Nodes = %d", sizeSum, scc.Nodes)
	}

	if len(rec.starts) != scc.Components || len(rec.dones) != scc.Components {
		t.Fatalf("solver events start=%d done=%d, want %d each", len(rec.starts), len(rec.dones), scc.Components)
	}
	seen := rec.componentsSeen()
	for ci := 0; ci < scc.Components; ci++ {
		if seen[ci] != 1 {
			t.Errorf("component %d solved %d times in the event stream, want 1", ci, seen[ci])
		}
	}
	for _, ev := range rec.dones {
		if ev.Algorithm != "howard" {
			t.Errorf("SolverDone.Algorithm = %q, want howard", ev.Algorithm)
		}
		if ev.Err != nil {
			t.Errorf("component %d reported error %v", ev.Component, ev.Err)
		}
		if ev.Duration <= 0 {
			t.Errorf("component %d has non-positive duration %v", ev.Component, ev.Duration)
		}
	}

	if len(rec.certs) != 1 {
		t.Fatalf("certify events = %d, want 1", len(rec.certs))
	}
	cert := rec.certs[0]
	if !cert.OK || cert.Err != nil {
		t.Fatalf("certification event reports failure: %+v", cert)
	}
	if cert.Value != res.Mean.Float64() {
		t.Errorf("certify event value %g, want %g", cert.Value, res.Mean.Float64())
	}
	if cert.MaxDen < 1 {
		t.Errorf("certify event MaxDen = %d, want >= 1", cert.MaxDen)
	}
}

func TestTraceParallelDriver(t *testing.T) {
	g, err := gen.MultiSCC(6, 12, 30, 33)
	if err != nil {
		t.Fatal(err)
	}
	rec := &traceRecorder{}
	if _, err := MinimumCycleMean(g, mustAlgo(t, "howard"), Options{Parallelism: 4, Tracer: rec.trace()}); err != nil {
		t.Fatal(err)
	}
	if len(rec.scc) != 1 {
		t.Fatalf("SCC events = %d, want 1", len(rec.scc))
	}
	comps := rec.scc[0].Components
	if len(rec.dones) != comps {
		t.Fatalf("SolverDone events = %d, want %d", len(rec.dones), comps)
	}
	seen := rec.componentsSeen()
	for ci := 0; ci < comps; ci++ {
		if seen[ci] != 1 {
			t.Errorf("component %d solved %d times, want 1", ci, seen[ci])
		}
	}
}

func TestTraceKernelizedDriver(t *testing.T) {
	g, err := gen.MultiSCC(4, 10, 25, 9)
	if err != nil {
		t.Fatal(err)
	}
	rec := &traceRecorder{}
	if _, err := MinimumCycleMean(g, mustAlgo(t, "howard"), Options{Kernelize: true, Tracer: rec.trace()}); err != nil {
		t.Fatal(err)
	}
	comps := rec.scc[0].Components
	if len(rec.kernels) != comps {
		t.Fatalf("kernel events = %d, want one per component (%d)", len(rec.kernels), comps)
	}
	compSeen := make(map[int]bool)
	for _, ev := range rec.kernels {
		compSeen[ev.Component] = true
		if ev.OrigNodes <= 0 || ev.OrigArcs <= 0 {
			t.Errorf("kernel event has empty original sizes: %+v", ev)
		}
	}
	if len(compSeen) != comps {
		t.Errorf("kernel events cover %d components, want %d", len(compSeen), comps)
	}
}

func TestTraceDirectSolveUntaggedComponent(t *testing.T) {
	// A direct Algorithm.Solve call (no driver) carries no component tag:
	// the event must report Component == -1.
	g := gen.Cycle(8, 3)
	rec := &traceRecorder{}
	if _, err := mustAlgo(t, "karp").Solve(g, Options{Tracer: rec.trace()}); err != nil {
		t.Fatal(err)
	}
	if len(rec.dones) != 1 {
		t.Fatalf("SolverDone events = %d, want 1", len(rec.dones))
	}
	if ev := rec.dones[0]; ev.Component != -1 || ev.Algorithm != "karp" {
		t.Errorf("direct solve event = %+v, want Component -1, Algorithm karp", ev)
	}
}

func TestTracePortfolioRace(t *testing.T) {
	g := gen.Complete(12, -100, 100, 4)
	rec := &traceRecorder{}
	p := NewPortfolio()
	if _, err := p.Solve(g, Options{Tracer: rec.trace()}); err != nil {
		t.Fatal(err)
	}
	if len(rec.races) != 1 {
		t.Fatalf("race events = %d, want 1", len(rec.races))
	}
	ev := rec.races[0]
	if len(ev.Racers) != len(p.Algorithms()) {
		t.Fatalf("racer outcomes = %d, want %d", len(ev.Racers), len(p.Algorithms()))
	}
	if ev.Winner == "" {
		t.Fatal("race event has no winner")
	}
	won := 0
	for _, r := range ev.Racers {
		if r.Won {
			won++
			if r.Algorithm != ev.Winner {
				t.Errorf("winning racer %q != event winner %q", r.Algorithm, ev.Winner)
			}
		}
	}
	if won != 1 {
		t.Errorf("%d racers marked Won, want exactly 1", won)
	}
	if ev.Duration <= 0 {
		t.Errorf("race duration %v, want > 0", ev.Duration)
	}
}

func TestTraceSessionCacheEvents(t *testing.T) {
	g, err := gen.Sprand(gen.SprandConfig{N: 40, M: 120, MinWeight: -100, MaxWeight: 100, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	rec := &traceRecorder{}
	s := NewSession(Options{Tracer: rec.trace()})
	if _, err := s.Solve(g); err != nil {
		t.Fatal(err)
	}
	var hits, misses int
	for _, ev := range rec.caches {
		switch ev.Op {
		case obs.CacheHit:
			hits++
		case obs.CacheMiss:
			misses++
		}
	}
	if misses == 0 || hits != 0 {
		t.Fatalf("cold solve: hits=%d misses=%d, want 0 hits and >0 misses", hits, misses)
	}
	for _, ev := range rec.starts {
		if ev.WarmStart {
			t.Errorf("cold solve emitted WarmStart event: %+v", ev)
		}
	}

	// Weight-only perturbation: same structure, so every component must hit
	// the cache and its solver event must carry WarmStart.
	rec2 := &traceRecorder{}
	s2 := NewSession(Options{Tracer: rec2.trace()})
	if _, err := s2.Solve(g); err != nil {
		t.Fatal(err)
	}
	pg := reweight(g, func(i int) int64 { return int64(i%5 - 2) })
	if _, err := s2.Solve(pg); err != nil {
		t.Fatal(err)
	}
	var warmStarts int
	for _, ev := range rec2.starts {
		if ev.WarmStart {
			warmStarts++
		}
	}
	if warmStarts == 0 {
		t.Error("repeat solve emitted no WarmStart solver events")
	}
	var hit bool
	for _, ev := range rec2.caches {
		if ev.Op == obs.CacheHit {
			hit = true
			if ev.Entries <= 0 {
				t.Errorf("cache hit with %d entries", ev.Entries)
			}
		}
	}
	if !hit {
		t.Error("repeat solve emitted no CacheHit event")
	}
}

func TestTraceMultiFanOut(t *testing.T) {
	// obs.Multi must deliver driver events to both member traces.
	g := gen.Cycle(6, 2)
	a, b := &traceRecorder{}, &traceRecorder{}
	tr := obs.Multi(a.trace(), b.trace())
	if _, err := MinimumCycleMean(g, mustAlgo(t, "howard"), Options{Tracer: tr}); err != nil {
		t.Fatal(err)
	}
	if len(a.dones) != 1 || len(b.dones) != 1 {
		t.Errorf("fan-out solver events a=%d b=%d, want 1 each", len(a.dones), len(b.dones))
	}
	if len(a.scc) != 1 || len(b.scc) != 1 {
		t.Errorf("fan-out SCC events a=%d b=%d, want 1 each", len(a.scc), len(b.scc))
	}
}
