package core

import (
	"testing"
	"time"

	"repro/internal/gen"
)

// TestSpeedProbe prints a quick per-algorithm timing snapshot at three
// Table 2 sizes — a development aid for eyeballing performance shape
// without the full harness. Run with -v to see the table; skipped in
// -short mode.
func TestSpeedProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("speed probe skipped in -short mode")
	}
	for _, sz := range []struct{ n, m int }{{512, 512}, {512, 1536}, {2048, 4096}} {
		g, err := gen.Sprand(gen.SprandConfig{N: sz.n, M: sz.m, MinWeight: 1, MaxWeight: 10000, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range Names() {
			algo, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			start := time.Now()
			res, err := algo.Solve(g, Options{})
			elapsed := time.Since(start)
			if err != nil {
				t.Errorf("n=%d m=%d %s: %v (%.3fs)", sz.n, sz.m, name, err, elapsed.Seconds())
				continue
			}
			t.Logf("n=%d m=%d %-7s λ*=%-12v %8.3fms iters=%d",
				sz.n, sz.m, name, res.Mean, float64(elapsed.Microseconds())/1000, res.Counts.Iterations)
		}
	}
}
