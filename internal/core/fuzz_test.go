package core

import (
	"testing"

	"repro/internal/graph"
)

// decodeFuzzGraph derives a small graph from fuzz bytes: byte 0 picks the
// node count in [2, maxN], then each 3-byte chunk becomes an arc
// (from, to, int8 weight). Self-loops and parallel arcs are deliberately
// reachable; the graph need not be strongly connected or even cyclic.
func decodeFuzzGraph(data []byte, maxN, maxArcs int) *graph.Graph {
	if len(data) < 4 {
		return nil
	}
	n := 2 + int(data[0])%(maxN-1)
	data = data[1:]
	var arcs []graph.Arc
	for len(data) >= 3 && len(arcs) < maxArcs {
		arcs = append(arcs, graph.Arc{
			From:    graph.NodeID(int(data[0]) % n),
			To:      graph.NodeID(int(data[1]) % n),
			Weight:  int64(int8(data[2])),
			Transit: 1,
		})
		data = data[3:]
	}
	if len(arcs) == 0 {
		return nil
	}
	return graph.FromArcs(n, arcs)
}

// FuzzSolveDifferential lives in fuzz_differential_test.go (package
// core_test) so it can report failures through the shared shrinking
// reporter in internal/testutil.

// FuzzApproxDifferential cross-checks the approximation tier against the
// exact Howard solve: the sharpened path must be bit-identical, and every
// unsharpened ε run's certified interval [Mean−ErrorBound, Mean] must
// contain the true λ*. The trailing fuzz bytes steer ε and the scheme so
// both modes and a spread of tolerances get explored.
func FuzzApproxDifferential(f *testing.F) {
	f.Add([]byte{3, 0, 1, 5, 1, 2, 250, 2, 0, 3}, byte(0), byte(0))
	f.Add([]byte{0, 0, 0, 200, 1, 1, 10}, byte(3), byte(1))
	f.Add([]byte{5, 0, 1, 1, 1, 0, 255}, byte(9), byte(0))
	f.Add([]byte{2, 0, 1, 7, 1, 2, 7, 2, 3, 7, 3, 0, 7}, byte(1), byte(1))
	f.Add([]byte{4, 1, 1, 128, 2, 2, 127, 1, 2, 0, 2, 1, 0}, byte(7), byte(0))
	f.Fuzz(func(t *testing.T, data []byte, epsSel, modeSel byte) {
		g := decodeFuzzGraph(data, 6, 14)
		if g == nil {
			return
		}
		approx, err := ByName("approx")
		if err != nil {
			t.Fatal(err)
		}
		howard, err := ByName("howard")
		if err != nil {
			t.Fatal(err)
		}
		exact, exactErr := MinimumCycleMean(g, howard, Options{})

		mode := "chkl"
		if modeSel%2 == 1 {
			mode = "ap"
		}
		// ε in {0.001, 0.01, ..., 0.5}: coarse enough to exercise the
		// interval logic, fine enough to hit exact convergence sometimes.
		epsTable := []float64{0.001, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5}
		eps := epsTable[int(epsSel)%len(epsTable)]

		res, err := MinimumCycleMean(g, approx, Options{Approx: ApproxOptions{Epsilon: eps, Mode: mode}})
		if (exactErr == nil) != (err == nil) {
			t.Fatalf("eps=%g mode=%s: error disagreement: exact=%v approx=%v", eps, mode, exactErr, err)
		}
		if exactErr == nil {
			lam := exact.Mean.Float64()
			if res.Mean.Float64() < lam-1e-9 {
				t.Fatalf("eps=%g mode=%s: mean %v below λ* %v", eps, mode, res.Mean, exact.Mean)
			}
			if res.Mean.Float64()-res.ErrorBound > lam+1e-9 {
				t.Fatalf("eps=%g mode=%s: interval [%v, %v] misses λ* %v",
					eps, mode, res.Mean.Float64()-res.ErrorBound, res.Mean.Float64(), exact.Mean)
			}
			if err := g.ValidateCycle(res.Cycle); err != nil {
				t.Fatalf("eps=%g mode=%s: witness invalid: %v", eps, mode, err)
			}
		}

		sharp, err := MinimumCycleMean(g, approx, Options{Approx: ApproxOptions{Mode: mode}, ApproxSharpen: true})
		if (exactErr == nil) != (err == nil) {
			t.Fatalf("sharpened mode=%s: error disagreement: exact=%v approx=%v", mode, exactErr, err)
		}
		if exactErr == nil {
			if !sharp.Mean.Equal(exact.Mean) {
				t.Fatalf("sharpened mode=%s: λ* = %v, exact %v", mode, sharp.Mean, exact.Mean)
			}
			if !sharp.Exact || sharp.ErrorBound != 0 {
				t.Fatalf("sharpened mode=%s: exact=%v bound=%v", mode, sharp.Exact, sharp.ErrorBound)
			}
		}
	})
}

// FuzzKernelEquivalence pins the kernelization pipeline against raw solves
// on slightly larger graphs than the differential target (kernels only get
// interesting with chains and self-loops to contract).
func FuzzKernelEquivalence(f *testing.F) {
	f.Add([]byte{8, 0, 1, 5, 1, 2, 250, 2, 3, 3, 3, 4, 9, 4, 0, 1})
	f.Add([]byte{9, 0, 0, 1, 1, 1, 255, 0, 1, 3, 1, 0, 4})
	f.Add([]byte{1, 0, 1, 100, 1, 0, 156})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := decodeFuzzGraph(data, 10, 24)
		if g == nil {
			return
		}
		howard, err := ByName("howard")
		if err != nil {
			t.Fatal(err)
		}
		raw, rawErr := MinimumCycleMean(g, howard, Options{})
		kr, krErr := MinimumCycleMean(g, howard, Options{Kernelize: true})
		if (rawErr == nil) != (krErr == nil) {
			t.Fatalf("error disagreement: raw=%v kernelized=%v", rawErr, krErr)
		}
		if rawErr != nil {
			return
		}
		if !kr.Mean.Equal(raw.Mean) {
			t.Fatalf("kernelized λ* = %v, raw = %v", kr.Mean, raw.Mean)
		}
		if err := g.ValidateCycle(kr.Cycle); err != nil {
			t.Fatalf("kernelized cycle invalid on original graph: %v", err)
		}
	})
}
