package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/counter"
	"repro/internal/graph"
	"repro/internal/prep"
)

// minimumCycleMeanParallel is the concurrent SCC driver behind
// MinimumCycleMean when Options.Parallelism asks for more than one worker.
// Components are distributed to a bounded pool via an atomic work index;
// every outcome is stored at its component's slot and the merge runs
// sequentially in decomposition order afterwards, so the returned mean,
// cycle, and error do not depend on goroutine scheduling. Operation counts
// are aggregated into one private counter.Counts per worker (no shared
// mutable state between goroutines) and folded once after the join; integer
// addition commutes, so the totals equal the sequential driver's.
func minimumCycleMeanParallel(algo Algorithm, opt Options, comps []graph.Component, workers int) (Result, error) {
	if workers > len(comps) {
		workers = len(comps)
	}
	type compOut struct {
		res Result
		err error
	}
	outs := make([]compOut, len(comps))
	partial := make([]counter.Counts, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(comps) {
					return
				}
				var (
					r   Result
					err error
				)
				// A panic inside a worker goroutine would kill the whole
				// process regardless of any recover in the caller, so the
				// numeric boundary must live here: capture the overflow as
				// this component's error and keep draining the queue.
				func() {
					defer RecoverNumericRange(&err, ErrNumericRange)
					// Tag solver events with the component index; tracer
					// hooks see concurrent emissions from the pool, which
					// the obs contract requires them to tolerate.
					sub := opt
					sub.traceComponent = i + 1
					if opt.Kernelize {
						// Kernelize per component. No cross-SCC pruning here:
						// the incumbent would depend on completion order and
						// the driver's merge must stay deterministic.
						kern := prep.Kernelize(comps[i].Graph, prep.Mean)
						opt.Tracer.Kernel(kern.TraceEvent(i))
						r, err = solveComponentKernelized(algo, sub, comps[i].Graph, kern)
					} else {
						r, err = algo.Solve(comps[i].Graph, sub)
					}
				}()
				if err != nil {
					outs[i] = compOut{err: err}
					continue
				}
				partial[w].Add(r.Counts)
				r.Counts = counter.Counts{}
				cycle := make([]graph.ArcID, len(r.Cycle))
				for j, id := range r.Cycle {
					cycle[j] = comps[i].ArcMap[id]
				}
				r.Cycle = cycle
				outs[i] = compOut{res: r}
			}
		}(w)
	}
	wg.Wait()

	var total counter.Counts
	for w := range partial {
		total.Add(partial[w])
	}
	var (
		best     Result
		found    bool
		minLower float64
		anyBound bool
	)
	for i := range outs {
		if err := outs[i].err; err != nil {
			// Same error the sequential driver would report: the failure of
			// the earliest component in decomposition order.
			return Result{}, fmt.Errorf("core: %s on component of %d nodes: %w", algo.Name(), comps[i].Graph.NumNodes(), err)
		}
		// Same interval widening as the sequential driver: the global λ*
		// can lie below the winner when another component's certified lower
		// bound is smaller.
		lower := outs[i].res.Mean.Float64() - outs[i].res.ErrorBound
		if outs[i].res.ErrorBound > 0 {
			anyBound = true
		}
		if !found || lower < minLower {
			minLower = lower
		}
		if !found || outs[i].res.Mean.Less(best.Mean) {
			best = outs[i].res
			found = true
		}
	}
	best.Counts = total
	mergeErrorBound(&best, minLower, anyBound)
	return best, nil
}
