package core

import (
	"repro/internal/counter"
	"repro/internal/graph"
	"repro/internal/numeric"
)

func init() {
	register("dg2", func() Algorithm { return dg2Alg{} })
	register("ho2", func() Algorithm { return ho2Alg{} })
}

// dg2Alg is the Θ(n)-space version of the DG algorithm. The paper's §4.4
// observes that Karp2's two-pass technique "is also applicable to the DG
// and HO algorithms"; this realizes it for DG: pass one runs the
// breadth-first unfolding keeping only two rows and records D_n, pass two
// re-runs it folding Karp's maximization row by row. Like Karp2 versus
// Karp, it trades a second pass for Θ(n²) → Θ(n) space.
type dg2Alg struct{}

func (dg2Alg) Name() string { return "dg2" }

func (dg2Alg) Solve(g *graph.Graph, opt Options) (Result, error) {
	if err := checkSolveInput(g); err != nil {
		return Result{}, err
	}
	n := g.NumNodes()
	var counts counter.Counts

	prev := make([]int64, n)
	cur := make([]int64, n)
	reached := make([]graph.NodeID, 0, n)
	next := make([]graph.NodeID, 0, n)
	inNext := make([]bool, n)

	reset := func() {
		for i := range prev {
			prev[i] = infD
		}
		prev[0] = 0
		reached = append(reached[:0], 0)
	}
	step := func() {
		for i := range cur {
			cur[i] = infD
		}
		next = next[:0]
		for _, u := range reached {
			du := prev[u]
			for _, id := range g.OutArcs(u) {
				counts.ArcsVisited++
				counts.Relaxations++
				a := g.Arc(id)
				if nd := du + a.Weight; nd < cur[a.To] {
					cur[a.To] = nd
					if !inNext[a.To] {
						inNext[a.To] = true
						next = append(next, a.To)
					}
				}
			}
		}
		for _, v := range next {
			inNext[v] = false
		}
		prev, cur = cur, prev
		reached, next = next, reached
	}

	// Pass 1: D_n.
	reset()
	for k := 1; k <= n; k++ {
		if err := opt.checkpoint(); err != nil {
			return Result{}, err
		}
		step()
	}
	dn := make([]int64, n)
	copy(dn, prev)

	// Pass 2: fold the maximization.
	maxNum := make([]int64, n)
	maxDen := make([]int64, n)
	haveMax := make([]bool, n)
	fold := func(k int) {
		for v := 0; v < n; v++ {
			if dn[v] >= infD || prev[v] >= infD {
				continue
			}
			num, den := dn[v]-prev[v], int64(n-k)
			if !haveMax[v] || numeric.CmpFrac(num, den, maxNum[v], maxDen[v]) > 0 {
				maxNum[v], maxDen[v] = num, den
				haveMax[v] = true
			}
		}
	}
	reset()
	fold(0)
	for k := 1; k < n; k++ {
		if err := opt.checkpoint(); err != nil {
			return Result{}, err
		}
		step()
		fold(k)
	}
	counts.Iterations = 2 * n

	var (
		bestNum, bestDen int64
		haveBest         bool
	)
	for v := 0; v < n; v++ {
		if !haveMax[v] {
			continue
		}
		if !haveBest || numeric.CmpFrac(maxNum[v], maxDen[v], bestNum, bestDen) < 0 {
			bestNum, bestDen = maxNum[v], maxDen[v]
			haveBest = true
		}
	}
	if !haveBest {
		return Result{}, ErrAcyclic
	}
	return finishExact(g, numeric.NewRat(bestNum, bestDen), nil, counts)
}

// ho2Alg is the Θ(n)-space version of the HO algorithm (the paper
// extrapolates: "the space efficient version of the HO algorithm will
// double its running time, which still maintains its superiority to most
// of the other algorithms"). It keeps HO's structure — candidate cycles
// from the level parent graph, certified by the Equation 1 potentials —
// but stores only rolling D rows. Potentials are maintained incrementally
// while the best candidate is unchanged; when a better candidate appears,
// they are rebuilt by re-running the recurrence from level 0 (the Karp2
// trick), which is what doubles the constant. If no certificate succeeds
// by level n the algorithm falls back to a Karp2-style two-pass evaluation
// of Karp's theorem, so the result is always exact.
type ho2Alg struct{}

func (ho2Alg) Name() string { return "ho2" }

func (ho2Alg) Solve(g *graph.Graph, opt Options) (Result, error) {
	if err := checkSolveInput(g); err != nil {
		return Result{}, err
	}
	n := g.NumNodes()
	var counts counter.Counts

	prev := make([]int64, n)
	cur := make([]int64, n)
	parent := make([]graph.ArcID, n)

	reset := func() {
		for i := range prev {
			prev[i] = infD
		}
		prev[0] = 0
	}
	// step advances one level, recording parents; counts arcs.
	step := func() {
		for i := range cur {
			cur[i] = infD
		}
		for i := range parent {
			parent[i] = -1
		}
		for id, a := range g.Arcs() {
			counts.ArcsVisited++
			counts.Relaxations++
			if prev[a.From] >= infD {
				continue
			}
			if nd := prev[a.From] + a.Weight; nd < cur[a.To] {
				cur[a.To] = nd
				parent[a.To] = graph.ArcID(id)
			}
		}
		prev, cur = cur, prev
	}

	var (
		best      numeric.Rat
		bestCycle []graph.ArcID
		haveBest  bool
	)
	pot := make([]int64, n)
	potInfinite := n

	// rebuildPotentials re-runs the recurrence from level 0 through level k
	// in O(nk) time and O(n) space for the candidate p/q.
	rebuildPotentials := func(k int, p, q int64) {
		rp := make([]int64, n)
		rc := make([]int64, n)
		for i := range rp {
			rp[i] = infD
		}
		rp[0] = 0
		potInfinite = n
		for v := range pot {
			pot[v] = infD
		}
		if 0 < n {
			pot[0] = 0
			potInfinite--
		}
		for j := 1; j <= k; j++ {
			for i := range rc {
				rc[i] = infD
			}
			for _, a := range g.Arcs() {
				if rp[a.From] >= infD {
					continue
				}
				if nd := rp[a.From] + a.Weight; nd < rc[a.To] {
					rc[a.To] = nd
				}
			}
			rp, rc = rc, rp
			for v := 0; v < n; v++ {
				if rp[v] >= infD {
					continue
				}
				if val := q*rp[v] - int64(j)*p; val < pot[v] {
					if pot[v] >= infD {
						potInfinite--
					}
					pot[v] = val
				}
			}
		}
	}

	reset()
	for k := 1; k <= n; k++ {
		if err := opt.checkpoint(); err != nil {
			return Result{}, err
		}
		step()

		improved := false
		hoParentCycles(g, parent, func(cycle []graph.ArcID) {
			counts.CyclesExamined++
			mean := numeric.NewRat(g.CycleWeight(cycle), int64(len(cycle)))
			if !haveBest || mean.Less(best) {
				best = mean
				bestCycle = append(bestCycle[:0], cycle...)
				haveBest = true
				improved = true
			}
		})
		if !haveBest {
			continue
		}
		p, q := best.Num(), best.Den()
		if improved {
			rebuildPotentials(k, p, q)
		} else {
			for v := 0; v < n; v++ {
				if dv := prev[v]; dv < infD {
					if val := q*dv - int64(k)*p; val < pot[v] {
						if pot[v] >= infD {
							potInfinite--
						}
						pot[v] = val
					}
				}
			}
		}
		if potInfinite == 0 {
			counts.NegativeCycleChecks++
			feasible := true
			for _, a := range g.Arcs() {
				if pot[a.To] > pot[a.From]+q*a.Weight-p {
					feasible = false
					break
				}
			}
			if feasible {
				counts.Iterations = k
				return Result{Mean: best, Cycle: bestCycle, Exact: true, Counts: counts}, nil
			}
		}
	}
	counts.Iterations = n

	// Karp2-style fallback: prev currently holds D_n.
	dn := make([]int64, n)
	copy(dn, prev)
	maxNum := make([]int64, n)
	maxDen := make([]int64, n)
	haveMax := make([]bool, n)
	fold := func(k int) {
		for v := 0; v < n; v++ {
			if dn[v] >= infD || prev[v] >= infD {
				continue
			}
			num, den := dn[v]-prev[v], int64(n-k)
			if !haveMax[v] || numeric.CmpFrac(num, den, maxNum[v], maxDen[v]) > 0 {
				maxNum[v], maxDen[v] = num, den
				haveMax[v] = true
			}
		}
	}
	reset()
	fold(0)
	for k := 1; k < n; k++ {
		if err := opt.checkpoint(); err != nil {
			return Result{}, err
		}
		step()
		fold(k)
	}
	var (
		bestNum, bestDen int64
		haveAny          bool
	)
	for v := 0; v < n; v++ {
		if !haveMax[v] {
			continue
		}
		if !haveAny || numeric.CmpFrac(maxNum[v], maxDen[v], bestNum, bestDen) < 0 {
			bestNum, bestDen = maxNum[v], maxDen[v]
			haveAny = true
		}
	}
	if !haveAny {
		return Result{}, ErrAcyclic
	}
	return finishExact(g, numeric.NewRat(bestNum, bestDen), nil, counts)
}
