package core_test

// External test package: the differential fuzz target reports failures
// through the shared shrinking reporter (internal/testutil), which imports
// core and therefore cannot be used from internal test files. The fuzz
// corpus under testdata/fuzz/FuzzSolveDifferential is keyed by target name,
// not package name, so the accumulated seeds keep working.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/testutil"
	"repro/internal/verify"
)

// FuzzSolveDifferential cross-checks every registered mean algorithm — plus
// the portfolio, the parallel driver, and the session — against the
// brute-force cycle-enumeration oracle, with certification on. Any
// disagreement, missing certificate, or panic is a finding; λ* mismatches
// are minimized and persisted to testdata/crashers/ before failing.
func FuzzSolveDifferential(f *testing.F) {
	f.Add([]byte{3, 0, 1, 5, 1, 2, 250, 2, 0, 3})
	f.Add([]byte{0, 0, 0, 200, 1, 1, 10})
	f.Add([]byte{5, 0, 1, 1, 1, 0, 255})
	f.Add([]byte{2, 0, 1, 7, 1, 2, 7, 2, 3, 7, 3, 0, 7})
	f.Add([]byte{4, 1, 1, 128, 2, 2, 127, 1, 2, 0, 2, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := testutil.DecodeMeanGraph(data, 6, 14)
		if g == nil {
			return
		}
		want, _, oracleErr := verify.BruteForceMinMean(g)
		const repro = "go test -run FuzzSolveDifferential ./internal/core/ (graph below in internal/graph text format)"

		algos := core.All()
		if p, err := core.ByName("portfolio"); err == nil {
			algos = append(algos, p)
		}
		for _, algo := range algos {
			res, err := core.MinimumCycleMean(g, algo, core.Options{Certify: true})
			if oracleErr != nil {
				if err == nil {
					t.Fatalf("%s: oracle failed (%v) but solver returned %v", algo.Name(), oracleErr, res.Mean)
				}
				continue
			}
			if err != nil {
				t.Fatalf("%s: %v", algo.Name(), err)
			}
			if !res.Mean.Equal(want) {
				small, path := testutil.SaveShrunkCrasher(t, "FuzzSolveDifferential-"+algo.Name(), g,
					func(g *graph.Graph) bool {
						w, _, err1 := verify.BruteForceMinMean(g)
						r, err2 := core.MinimumCycleMean(g, algo, core.Options{})
						return err1 == nil && err2 == nil && !r.Mean.Equal(w)
					}, repro)
				t.Fatalf("%s: λ* = %v, oracle %v (minimized to %d arcs, saved at %q)",
					algo.Name(), res.Mean, want, small.NumArcs(), path)
			}
			if res.Certificate == nil || !res.Certificate.Value.Equal(want) {
				t.Fatalf("%s: bad certificate %+v", algo.Name(), res.Certificate)
			}
			if err := verify.CheckCycleIsOptimal(g, res.Certificate.Value, res.Certificate.Witness); err != nil {
				t.Fatalf("%s: certificate fails independent check: %v", algo.Name(), err)
			}
		}

		// Driver variants over Howard.
		howard, err := core.ByName("howard")
		if err != nil {
			t.Fatal(err)
		}
		for name, opt := range map[string]core.Options{
			"parallel":   {Certify: true, Parallelism: 2},
			"kernelized": {Certify: true, Kernelize: true},
		} {
			res, err := core.MinimumCycleMean(g, howard, opt)
			if oracleErr != nil {
				if err == nil {
					t.Fatalf("%s: oracle failed (%v) but solver returned %v", name, oracleErr, res.Mean)
				}
				continue
			}
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !res.Mean.Equal(want) {
				opt := opt
				small, path := testutil.SaveShrunkCrasher(t, "FuzzSolveDifferential-"+name, g,
					func(g *graph.Graph) bool {
						w, _, err1 := verify.BruteForceMinMean(g)
						r, err2 := core.MinimumCycleMean(g, howard, opt)
						return err1 == nil && err2 == nil && !r.Mean.Equal(w)
					}, repro)
				t.Fatalf("%s: λ* = %v, oracle %v (minimized to %d arcs, saved at %q)",
					name, res.Mean, want, small.NumArcs(), path)
			}
		}
		sess := core.NewSession(core.Options{Certify: true})
		for i := 0; i < 2; i++ {
			res, err := sess.Solve(g)
			if oracleErr != nil {
				if err == nil {
					t.Fatalf("session: oracle failed (%v) but solver returned %v", oracleErr, res.Mean)
				}
				continue
			}
			if err != nil {
				t.Fatalf("session: %v", err)
			}
			if !res.Mean.Equal(want) {
				t.Fatalf("session: λ* = %v, oracle %v", res.Mean, want)
			}
		}
	})
}
