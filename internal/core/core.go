// Package core implements the ten minimum mean cycle algorithms of the
// DAC'99 study — Burns, KO, YTO, Howard, HO, Karp, DG, Lawler, Karp2, OA1
// (plus OA2) — behind one uniform interface, together with the
// strongly-connected-component driver, critical-cycle extraction, and the
// critical-subgraph computation from the paper's Section 2.
//
// Every algorithm reports the exact minimum cycle mean λ* as a rational
// (cycle means of integer-weighted graphs are rationals with denominator at
// most n), the critical cycle achieving it, and the representative operation
// counts used by the paper's experimental comparison.
//
// The Solve method of an Algorithm requires its input to be strongly
// connected and cyclic, exactly as the paper assumes ("We assume that the
// input graph G to the algorithm in context is cyclic and strongly
// connected"). The package-level MinimumCycleMean / MaximumCycleMean
// functions accept arbitrary graphs and perform the SCC decomposition the
// paper describes: solve each cyclic component, return the best.
package core

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"

	"repro/internal/counter"
	"repro/internal/graph"
	"repro/internal/ncd"
	"repro/internal/numeric"
	"repro/internal/obs"
	"repro/internal/pq"
	"repro/internal/prep"
)

// Errors returned by the solvers and drivers.
var (
	// ErrAcyclic means the graph (or every component) has no cycle, so no
	// cycle mean exists.
	ErrAcyclic = errors.New("core: graph has no cycles")
	// ErrNotStronglyConnected is returned by Algorithm.Solve when its
	// precondition is violated; use MinimumCycleMean for general graphs.
	ErrNotStronglyConnected = errors.New("core: graph is not strongly connected")
	// ErrIterationLimit means a safety iteration cap was hit; it indicates
	// either numerical trouble or a bug and should never occur on sane
	// integer-weighted inputs.
	ErrIterationLimit = errors.New("core: iteration limit exceeded")
	// ErrWeightRange means arc weights are too large for the exact integer
	// arithmetic (|w| must fit 32 bits for the scaled computations).
	ErrWeightRange = errors.New("core: arc weights exceed the supported ±(2^31−1) range")
	// ErrCanceled is returned by Solve when the run was canceled (by a
	// Portfolio race that another solver won, or by a caller-installed
	// cancellation); see Options.Canceled.
	ErrCanceled = errors.New("core: solve canceled")
	// ErrApproxMode is returned by the "approx" algorithm (and by front ends
	// validating requests) for an unrecognized Options.Approx.Mode.
	ErrApproxMode = errors.New("core: unknown approximation mode")
)

// MaxWeightMagnitude is the largest |weight| the exact scaled arithmetic
// supports (the largest magnitude that fits 32 bits); see ErrWeightRange.
const MaxWeightMagnitude = 1<<31 - 1

// Options carries the tunables shared by all algorithms. The zero value
// selects the defaults used throughout the paper's experiments.
type Options struct {
	// Epsilon is the precision of the approximate algorithms (Lawler, OA1,
	// OA2) and the improvement threshold of Howard's algorithm. Zero means
	// "exact": the approximate algorithms tighten their search until the
	// answer can be snapped to the unique rational with denominator <= n,
	// and Howard verifies its fixed point with an exact feasibility check.
	Epsilon float64

	// HeapKind selects the priority queue for KO and YTO. The default
	// (Fibonacci) is what the paper used via LEDA.
	HeapKind pq.Kind

	// NCD selects the negative-cycle detector for Lawler's binary-search
	// probes (the default, early-exit Bellman–Ford, matches an efficient
	// uniform implementation; ncd.Basic reproduces the textbook cost model;
	// ncd.Tarjan is the subtree-disassembly detector).
	NCD ncd.Method

	// MaxIterations caps main-loop iterations as a safety valve; zero
	// selects a generous per-algorithm default.
	MaxIterations int

	// Parallelism bounds the number of concurrently solved strongly
	// connected components in MinimumCycleMean. 0 and 1 select the
	// sequential driver (the zero value keeps the classic behavior);
	// negative means runtime.NumCPU(). The parallel driver returns
	// bit-identical results to the sequential one: components are merged
	// in decomposition order, so the winning mean, cycle, and operation
	// counts do not depend on goroutine scheduling.
	Parallelism int

	// Kernelize runs the internal/prep reduction pipeline on every
	// strongly connected component before dispatching a solver: self-loops
	// become closed-form candidates, degree-(1,1) chains are contracted,
	// two-node kernels are solved by enumeration, and per-kernel λ* bounds
	// prune components that cannot beat the incumbent. The reported mean is
	// identical to an unkernelized run and the critical cycle is expanded
	// back to original-graph arc IDs, but operation counts reflect the
	// (smaller) kernel actually solved, so counts are not comparable
	// between kernelized and raw runs.
	Kernelize bool

	// Certify makes the drivers (MinimumCycleMean, MaximumCycleMean,
	// Session.Solve) prove every answer before returning it: the value is
	// snapped to the unique rational with denominator ≤ n (continued-
	// fraction recovery, a no-op for the exact solvers), the critical
	// cycle's value is recomputed in exact arithmetic, and optimality is
	// verified with an exact Bellman–Ford no-negative-cycle check on the
	// reweighted graph. The proof is attached as Result.Certificate; a
	// failed proof returns ErrCertification instead of an unverified
	// answer. Costs one O(nm) integer Bellman–Ford pass per solve.
	Certify bool

	// Approx parameterizes the "approx" algorithm (the streaming
	// approximation tier in internal/approx): the requested tolerance and
	// scheme. Ignored by the exact algorithms. The zero value (Epsilon 0)
	// makes "approx" run its ε-interval bracketing and then sharpen to an
	// exact certified answer via Lawler, exactly as ApproxSharpen would.
	Approx ApproxOptions

	// ApproxSharpen makes the "approx" algorithm follow its ε-interval with
	// an exact Lawler pass seeded from the certified bounds (LambdaLower/
	// LambdaUpper clamping), buying back a bit-identical exact answer when
	// the graph is materialized and fits. No effect on other algorithms.
	ApproxSharpen bool

	// LambdaLower and LambdaUpper, when non-nil, narrow the initial
	// bracket of bound-driven algorithms (currently Lawler's binary
	// search). They must satisfy LambdaLower ≤ λ* ≤ LambdaUpper for the
	// graph being solved; the kernelization driver derives them from
	// per-kernel arc-value bounds. Invalid bounds yield undefined results.
	LambdaLower, LambdaUpper *numeric.Rat

	// Tracer, when non-nil, receives typed observability events from every
	// solve path: SCC decomposition, kernelization outcomes, per-component
	// solver start/finish with durations and operation counts, portfolio
	// race outcomes, Session cache traffic, and certification results. A nil
	// Tracer costs one pointer comparison per emission site and zero
	// allocations (see internal/obs). Hooks may be invoked concurrently by
	// the parallel SCC driver and portfolio races, so they must be safe for
	// concurrent use.
	Tracer *obs.Trace

	// cancel, when non-nil, makes the solvers return ErrCanceled soon
	// after the flag is set; the main loops poll it once per iteration.
	// Installed by Portfolio to stop losing solvers promptly.
	cancel *cancelFlag

	// traceComponent carries the 1-based index of the component being
	// solved, set by the drivers so solver events can report it; zero means
	// a direct Algorithm.Solve call (reported as component -1).
	traceComponent int
}

func (o Options) maxIter(def int) int {
	if o.MaxIterations > 0 {
		return o.MaxIterations
	}
	return def
}

// WithTraceComponent returns a copy of o tagged with the 0-based index of
// the component about to be solved, so solver events emitted under the
// returned Options report it. The core drivers tag internally; this exported
// form exists for sibling drivers (internal/ratio) that run the SCC
// decomposition outside this package.
func (o Options) WithTraceComponent(i int) Options {
	o.traceComponent = i + 1
	return o
}

// TraceComponent returns the component index tagged by WithTraceComponent,
// or -1 for a direct (driver-less) solve.
func (o Options) TraceComponent() int { return o.traceComponent - 1 }

// workers resolves Options.Parallelism to a worker count (>= 1).
func (o Options) workers() int {
	switch {
	case o.Parallelism < 0:
		return runtime.NumCPU()
	case o.Parallelism <= 1:
		return 1
	default:
		return o.Parallelism
	}
}

// Result is the outcome of one solver run.
type Result struct {
	// Mean is λ*, exact whenever Exact is true.
	Mean numeric.Rat
	// Cycle is a critical cycle (arc IDs into the solved graph) whose mean
	// equals Mean. Always non-empty when Exact.
	Cycle []graph.ArcID
	// Exact records whether Mean is exact; only epsilon-mode runs of the
	// approximate algorithms report false.
	Exact bool
	// ErrorBound, when Exact is false and the run came from the "approx"
	// tier, certifies |Mean − λ*| ≤ ErrorBound (λ* lies in
	// [Mean−ErrorBound, Mean]: the reported value is a real cycle's mean,
	// hence an upper bound). Zero for exact runs and for the legacy
	// epsilon-mode solvers, which declare no bound.
	ErrorBound float64
	// Counts holds the representative operation counts of the run.
	Counts counter.Counts
	// Certificate is the exact optimality proof, present if and only if the
	// run was driven with Options.Certify and the proof succeeded.
	Certificate *Certificate
}

// Lambda returns λ* as a float64 convenience.
func (r Result) Lambda() float64 { return r.Mean.Float64() }

// Algorithm is the uniform interface all ten solvers implement.
type Algorithm interface {
	// Name returns the lower-case name used in the paper's tables
	// ("howard", "karp", "yto", ...).
	Name() string
	// Solve computes the minimum cycle mean of a strongly connected cyclic
	// graph.
	Solve(g *graph.Graph, opt Options) (Result, error)
}

// checkSolveInput enforces the shared Solve precondition and weight range.
func checkSolveInput(g *graph.Graph) error {
	if g.NumNodes() == 0 {
		return ErrAcyclic
	}
	if g.NumArcs() == 0 {
		return ErrAcyclic
	}
	if min, max := g.WeightRange(); min < -MaxWeightMagnitude || max > MaxWeightMagnitude {
		return ErrWeightRange
	}
	if !graph.IsStronglyConnected(g) {
		return ErrNotStronglyConnected
	}
	if g.NumNodes() == 1 {
		// Strongly connected single node: cyclic only with a self-loop.
		hasLoop := false
		for _, a := range g.Arcs() {
			if a.From == a.To {
				hasLoop = true
				break
			}
		}
		if !hasLoop {
			return ErrAcyclic
		}
	}
	return nil
}

// registry of algorithm constructors by name.
var registry = map[string]func() Algorithm{}

func register(name string, ctor func() Algorithm) {
	if _, dup := registry[name]; dup {
		panic("core: duplicate algorithm name " + name)
	}
	// Every instance handed out is wrapped in the panic-free boundary:
	// numeric overflow panics surface as ErrNumericRange, never as a crash.
	registry[name] = func() Algorithm { return guardedAlg{ctor()} }
}

// ByName returns a fresh instance of the named algorithm. Valid names are
// the ones in Names, plus the meta-algorithm "portfolio" (optionally with
// an explicit roster, e.g. "portfolio:howard+karp"), which races several
// solvers and returns the first exact answer; see NewPortfolio.
func ByName(name string) (Algorithm, error) {
	if name == portfolioName || strings.HasPrefix(name, portfolioName+":") {
		return portfolioByName(name)
	}
	ctor, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown algorithm %q (known: %v, plus %q)", name, Names(), portfolioName)
	}
	return ctor(), nil
}

// Names returns all registered algorithm names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// All returns one instance of every registered algorithm, ordered by name.
func All() []Algorithm {
	names := Names()
	out := make([]Algorithm, len(names))
	for i, name := range names {
		out[i], _ = ByName(name)
	}
	return out
}

// MinimumCycleMean computes λ* of an arbitrary graph with the given
// algorithm, using the paper's decomposition: partition into strongly
// connected components, solve each cyclic component, take the minimum.
// Cycle arc IDs in the result refer to g. Returns ErrAcyclic when g has no
// cycle.
//
// With Options.Parallelism > 1 the cyclic components are fanned out to a
// bounded worker pool; the result (mean, cycle, and operation counts) is
// bit-identical to the sequential driver's. The Algorithm must then be safe
// for concurrent Solve calls — every built-in solver is, as all per-run
// state lives in private workspaces.
func MinimumCycleMean(g *graph.Graph, algo Algorithm, opt Options) (res Result, err error) {
	// The driver itself runs exact rational arithmetic (kernel bounds,
	// incumbent comparisons), so the panic-free boundary sits here too.
	defer RecoverNumericRange(&err, ErrNumericRange)
	res, err = minimumCycleMeanAny(g, algo, opt)
	if err == nil && opt.Certify {
		if cerr := certifyMean(g, &res, opt.Tracer); cerr != nil {
			return Result{}, cerr
		}
	}
	return res, err
}

// emitSCC reports a finished decomposition to the tracer; a no-op (and
// alloc-free) when tracing is disabled.
func emitSCC(tr *obs.Trace, comps []graph.Component) {
	if !tr.Enabled() {
		return
	}
	ev := obs.SCCEvent{Components: len(comps), Sizes: make([]int, len(comps))}
	for i, c := range comps {
		ev.Sizes[i] = c.Graph.NumNodes()
		ev.Nodes += c.Graph.NumNodes()
		ev.Arcs += c.Graph.NumArcs()
	}
	tr.SCC(ev)
}

// minimumCycleMeanAny is MinimumCycleMean without the certification and
// recovery wrapper: SCC decomposition, per-component solve (sequential or
// parallel), merge.
func minimumCycleMeanAny(g *graph.Graph, algo Algorithm, opt Options) (Result, error) {
	comps := graph.CyclicComponents(g)
	if len(comps) == 0 {
		return Result{}, ErrAcyclic
	}
	emitSCC(opt.Tracer, comps)
	if workers := opt.workers(); workers > 1 && len(comps) > 1 {
		return minimumCycleMeanParallel(algo, opt, comps, workers)
	}
	var (
		best     Result
		total    counter.Counts
		found    bool
		minLower float64
		anyBound bool
	)
	for ci, comp := range comps {
		var (
			r   Result
			err error
		)
		sub := opt
		sub.traceComponent = ci + 1
		if opt.Kernelize {
			kern := prep.Kernelize(comp.Graph, prep.Mean)
			opt.Tracer.Kernel(kern.TraceEvent(ci))
			if found && kern.Err == nil && kern.HasBounds && !kern.Lower.Less(best.Mean) {
				// Cross-SCC pruning: every cycle of this component has mean
				// at least kern.Lower ≥ the incumbent, so it cannot win —
				// unless its weights are out of range, in which case the
				// solver must still run to report ErrWeightRange exactly as
				// an unkernelized pass would.
				if min, max := comp.Graph.WeightRange(); min >= -MaxWeightMagnitude && max <= MaxWeightMagnitude {
					continue
				}
			}
			r, err = solveComponentKernelized(algo, sub, comp.Graph, kern)
		} else {
			r, err = algo.Solve(comp.Graph, sub)
		}
		if err != nil {
			return Result{}, fmt.Errorf("core: %s on component of %d nodes: %w", algo.Name(), comp.Graph.NumNodes(), err)
		}
		total.Add(r.Counts)
		// Translate cycle arcs back to g.
		cycle := make([]graph.ArcID, len(r.Cycle))
		for i, id := range r.Cycle {
			cycle[i] = comp.ArcMap[id]
		}
		r.Cycle = cycle
		// The winner is chosen by smallest reported mean (an upper bound for
		// inexact components), but the global λ* can sit below the winner's
		// own interval when another component's certified lower bound is
		// smaller — track the weakest lower bound across all components.
		lower := r.Mean.Float64() - r.ErrorBound
		if r.ErrorBound > 0 {
			anyBound = true
		}
		if !found || lower < minLower {
			minLower = lower
		}
		if !found || r.Mean.Less(best.Mean) {
			best = r
			found = true
		}
	}
	best.Counts = total
	mergeErrorBound(&best, minLower, anyBound)
	return best, nil
}

// mergeErrorBound widens the winning component's certified interval to
// cover every component's lower bound: λ* = min over components can lie
// anywhere in [minLower, best.Mean]. No-op unless some component declared a
// bound (legacy epsilon-mode results declare none and keep their historical
// semantics).
func mergeErrorBound(best *Result, minLower float64, anyBound bool) {
	if !anyBound {
		return
	}
	eb := best.Mean.Float64() - minLower
	if eb < best.ErrorBound {
		// Float cancellation (Mean − (Mean − bound)) can round a tiny bound
		// away; the winner's own certified bound is always a valid floor.
		eb = best.ErrorBound
	}
	if eb < 0 {
		eb = 0
	}
	best.ErrorBound = eb
	if eb > 0 {
		best.Exact = false
	}
}

// MaximumCycleMean computes the maximum cycle mean by negation
// (max_C w(C)/|C| = −min_C (−w)(C)/|C|), the standard reduction the paper
// relies on for the maximum problem variants.
func MaximumCycleMean(g *graph.Graph, algo Algorithm, opt Options) (Result, error) {
	r, err := MinimumCycleMean(g.NegateWeights(), algo, opt)
	if err != nil {
		return Result{}, err
	}
	r.Mean = r.Mean.Neg()
	if r.Certificate != nil {
		// The proof ran on the negated instance; report it in the caller's
		// orientation (arc IDs are shared between g and its negation).
		r.Certificate.Value = r.Certificate.Value.Neg()
		r.Certificate.Maximize = true
	}
	return r, nil
}

// CriticalSubgraph computes the critical subgraph of G_λ* as defined in the
// paper's Section 2: after fixing optimal potentials d (shortest distances
// in G_λ*), an arc is critical when d(v) − d(u) = w(u,v) − λ*, a node when
// incident to a critical arc. It returns the set of critical arc IDs of g
// (in increasing order) and the induced critical subgraph. λ must be
// feasible (λ ≤ λ*), or an error is returned; with λ = λ* the subgraph
// contains all minimum mean cycles.
func CriticalSubgraph(g *graph.Graph, lambda numeric.Rat) (critical []graph.ArcID, sub *graph.Graph, err error) {
	dist, neg := bellmanFordScaled(g, lambda.Num(), lambda.Den(), nil)
	if neg != nil {
		return nil, nil, fmt.Errorf("core: λ = %v is infeasible (a cycle of smaller mean exists)", lambda)
	}
	p, q := lambda.Num(), lambda.Den()
	nodes := make([]bool, g.NumNodes())
	for id := graph.ArcID(0); int(id) < g.NumArcs(); id++ {
		a := g.Arc(id)
		if dist[a.From]+q*a.Weight-p == dist[a.To] {
			critical = append(critical, id)
			nodes[a.From] = true
			nodes[a.To] = true
		}
	}
	var members []graph.NodeID
	for v, in := range nodes {
		if in {
			members = append(members, graph.NodeID(v))
		}
	}
	sub, _ = g.InducedSubgraph(members)
	return critical, sub, nil
}
