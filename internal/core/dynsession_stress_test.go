package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// TestDynSessionConcurrentStress hammers one shared DynSession from 16
// goroutines, each streaming its own mix of weight edits, insertions, and
// deletions through Update. Every answer is taken together with an atomic
// snapshot of the graph it was computed for (updateAndExport holds the
// session lock across apply+solve+materialize), and verified bit-identical
// in λ* against a fresh certified solve of exactly that snapshot. Run under
// -race in CI next to TestSessionConcurrentStress, this is the proof that
// concurrent delta streams never observe a torn decomposition or a stale
// component result.
func TestDynSessionConcurrentStress(t *testing.T) {
	howard, err := ByName("howard")
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.Sprand(gen.SprandConfig{N: 60, M: 240, MinWeight: -400, MaxWeight: 400, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Certify: true}
	ds := NewDynSession(g, opt)
	if _, err := ds.Solve(); err != nil {
		t.Fatal(err)
	}

	const (
		workers = 16
		rounds  = 25
	)
	type sample struct {
		res    Result
		snap   *graph.Graph
		export []graph.ArcID
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		samples []sample
		fail    error
	)
	report := func(err error) {
		mu.Lock()
		if fail == nil {
			fail = err
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			// Each worker edits only arcs it inserted itself plus weight
			// edits on the seed arcs, so a concurrent sibling can never
			// delete an ID out from under a pending delta.
			var mine []graph.ArcID
			for r := 0; r < rounds; r++ {
				var dl Delta
				switch p := rng.Intn(10); {
				case p < 5:
					dl = Delta{Op: DeltaSetWeight, Arc: graph.ArcID(rng.Intn(g.NumArcs())),
						Weight: int64(rng.Intn(801) - 400)}
				case p < 8 || len(mine) == 0:
					dl = Delta{Op: DeltaInsertArc,
						From:   graph.NodeID(rng.Intn(g.NumNodes())),
						To:     graph.NodeID(rng.Intn(g.NumNodes())),
						Weight: int64(rng.Intn(801) - 400), Transit: 1}
				default:
					i := rng.Intn(len(mine))
					dl = Delta{Op: DeltaDeleteArc, Arc: mine[i]}
					mine = append(mine[:i], mine[i+1:]...)
				}
				ids, res, snap, export, err := ds.updateAndExport(context.Background(), []Delta{dl})
				if err != nil {
					report(fmt.Errorf("worker %d round %d (%s): %w", w, r, dl.Op, err))
					return
				}
				if dl.Op == DeltaInsertArc {
					mine = append(mine, graph.ArcID(ids[0]))
				}
				mu.Lock()
				samples = append(samples, sample{res: res, snap: snap, export: export})
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if fail != nil {
		t.Fatal(fail)
	}

	if len(samples) != workers*rounds {
		t.Fatalf("collected %d samples, want %d", len(samples), workers*rounds)
	}
	for i, s := range samples {
		want, err := MinimumCycleMean(s.snap, howard, opt)
		if err != nil {
			if errors.Is(err, ErrAcyclic) {
				t.Fatalf("sample %d: snapshot went acyclic but session solved λ*=%s", i, s.res.Mean)
			}
			t.Fatalf("sample %d: fresh solve: %v", i, err)
		}
		if s.res.Mean.Num() != want.Mean.Num() || s.res.Mean.Den() != want.Mean.Den() {
			t.Fatalf("sample %d: λ* = %s, fresh solve of the same snapshot says %s",
				i, s.res.Mean, want.Mean)
		}
		// The witness must be a real attaining cycle of that snapshot,
		// translated from original IDs back onto compact snapshot IDs.
		o2c := make(map[graph.ArcID]graph.ArcID, len(s.export))
		for ci, orig := range s.export {
			o2c[orig] = graph.ArcID(ci)
		}
		cyc := make([]graph.ArcID, len(s.res.Cycle))
		for j, orig := range s.res.Cycle {
			c, ok := o2c[orig]
			if !ok {
				t.Fatalf("sample %d: cycle references arc %d absent from its own snapshot", i, orig)
			}
			cyc[j] = c
		}
		if err := s.snap.ValidateCycle(cyc); err != nil {
			t.Fatalf("sample %d: invalid witness: %v", i, err)
		}
		if s.snap.CycleWeight(cyc)*s.res.Mean.Den() != s.res.Mean.Num()*int64(len(cyc)) {
			t.Fatalf("sample %d: witness does not attain λ*", i)
		}
	}

	st := ds.Stats()
	if st.Deltas != workers*rounds {
		t.Fatalf("Deltas = %d, want %d", st.Deltas, workers*rounds)
	}
	if st.Solves != workers*rounds+1 {
		t.Fatalf("Solves = %d, want %d", st.Solves, workers*rounds+1)
	}
	if st.WarmHits == 0 {
		t.Fatalf("no warm hits under stress: %+v", st)
	}
}
