package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
)

// Build a small graph once for all examples: two nested cycles with
// minimum mean 2 (the triangle) and a worse self-loop.
func exampleGraph() *graph.Graph {
	b := graph.NewBuilder(3, 4)
	b.AddNodes(3)
	b.AddArc(0, 1, 1)
	b.AddArc(1, 2, 2)
	b.AddArc(2, 0, 3)
	b.AddArc(2, 2, 9)
	return b.Build()
}

func ExampleByName() {
	algo, err := core.ByName("yto")
	if err != nil {
		panic(err)
	}
	res, err := core.MinimumCycleMean(exampleGraph(), algo, core.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("λ* = %v via %s\n", res.Mean, algo.Name())
	// Output: λ* = 2 via yto
}

func ExampleMaximumCycleMean() {
	algo, _ := core.ByName("howard")
	res, err := core.MaximumCycleMean(exampleGraph(), algo, core.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Mean) // the self-loop of weight 9
	// Output: 9
}

func ExampleCriticalSubgraph() {
	algo, _ := core.ByName("karp")
	g := exampleGraph()
	res, err := core.MinimumCycleMean(g, algo, core.Options{})
	if err != nil {
		panic(err)
	}
	critical, _, err := core.CriticalSubgraph(g, res.Mean)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d of %d arcs are critical\n", len(critical), g.NumArcs())
	// Output: 3 of 4 arcs are critical
}

func ExampleCrossCheck() {
	res, err := core.CrossCheck(exampleGraph(), core.All(), core.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("consensus λ* = %v across %d algorithms\n", res.Mean, len(res.Elapsed))
	// Output: consensus λ* = 2 across 15 algorithms
}
