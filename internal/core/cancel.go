package core

import (
	"context"
	"sync/atomic"
)

// cancelFlag is a lock-free cancellation token polled by the solvers' main
// loops. Flags chain through parent so a Portfolio race nested inside an
// already-cancellable run observes both its own loss and the outer
// cancellation.
type cancelFlag struct {
	flag   atomic.Bool
	parent *cancelFlag
}

func (c *cancelFlag) set() { c.flag.Store(true) }

func (c *cancelFlag) canceled() bool {
	for ; c != nil; c = c.parent {
		if c.flag.Load() {
			return true
		}
	}
	return false
}

// Canceled reports whether this run has been canceled (for example because
// another solver of a Portfolio race already produced an exact answer).
// Long-running custom Algorithm implementations should poll it once per
// main-loop iteration and return ErrCanceled when it fires, exactly as the
// built-in solvers do; runs not started by a cancellable context always
// report false.
func (o Options) Canceled() bool { return o.cancel.canceled() }

// checkpoint returns ErrCanceled when the run has been canceled, else nil.
// The built-in solvers call it at the top of every main-loop iteration.
func (o Options) checkpoint() error {
	if o.cancel.canceled() {
		return ErrCanceled
	}
	return nil
}

// WithCancelContext returns a copy of o whose solvers observe ctx: once ctx
// is done (deadline expired or canceled), every solver running under the
// returned Options unwinds with ErrCanceled at its next main-loop
// checkpoint. The bridge chains onto any cancellation already installed in
// o, so a Portfolio race nested under a deadline observes both.
//
// The returned stop function releases the context watcher; callers must
// invoke it when the solve completes (a deferred call is fine). This is the
// building block of the serving layer's per-request deadlines — see
// internal/serve.
func (o Options) WithCancelContext(ctx context.Context) (Options, func()) {
	flag := &cancelFlag{parent: o.cancel}
	o.cancel = flag
	// An already-dead context cancels synchronously: AfterFunc fires its
	// callback on a separate goroutine, and a fast solve could otherwise
	// finish before the flag lands.
	if ctx.Err() != nil {
		flag.set()
		return o, func() {}
	}
	stop := context.AfterFunc(ctx, flag.set)
	return o, func() { stop() }
}
