package core

import (
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/numeric"
)

func TestCrossCheckAgreement(t *testing.T) {
	g, err := gen.Sprand(gen.SprandConfig{N: 80, M: 240, MinWeight: 1, MaxWeight: 10000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	res, err := CrossCheck(g, All(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Fatal("consensus result not exact")
	}
	if len(res.Elapsed) != len(All()) {
		t.Fatalf("timings for %d algorithms, want %d", len(res.Elapsed), len(All()))
	}
	if res.Winner == "" {
		t.Fatal("no winner recorded")
	}
	// Consensus must match a direct solve.
	direct, err := MinimumCycleMean(g, mustAlgo(t, "howard"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Mean.Equal(direct.Mean) {
		t.Fatalf("consensus %v != direct %v", res.Mean, direct.Mean)
	}
}

// disagreeingAlgo wraps an algorithm and corrupts its answer, to prove
// CrossCheck catches disagreement.
type disagreeingAlgo struct{ inner Algorithm }

func (d disagreeingAlgo) Name() string { return "corrupt-" + d.inner.Name() }
func (d disagreeingAlgo) Solve(g *graph.Graph, opt Options) (Result, error) {
	res, err := d.inner.Solve(g, opt)
	if err != nil {
		return res, err
	}
	res.Mean = res.Mean.Add(numeric.NewRat(1, 2))
	return res, nil
}

func TestCrossCheckDetectsDisagreement(t *testing.T) {
	g, err := gen.Sprand(gen.SprandConfig{N: 12, M: 36, MinWeight: 1, MaxWeight: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	howard := mustAlgo(t, "howard")
	_, err = CrossCheck(g, []Algorithm{howard, disagreeingAlgo{mustAlgo(t, "karp")}}, Options{})
	if err == nil || !strings.Contains(err.Error(), "disagree") {
		t.Fatalf("disagreement not detected: %v", err)
	}
}

func TestCrossCheckEmpty(t *testing.T) {
	if _, err := CrossCheck(nil, nil, Options{}); err == nil {
		t.Fatal("empty algorithm list accepted")
	}
}
