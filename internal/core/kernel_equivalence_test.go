package core

import (
	"errors"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/numeric"
)

// The corpus-wide kernel equivalence gate (TestKernelEquivalenceMean) lives
// in corpus_equivalence_test.go (package core_test) on the shared
// testutil.MeanCorpus; the tests here cover driver paths that need nothing
// beyond the exported API but predate the shared harness.

// TestKernelEquivalenceParallel checks the parallel driver's kernelized
// path: same λ* and a valid original-ID cycle, for multi-SCC inputs where
// components actually fan out.
func TestKernelEquivalenceParallel(t *testing.T) {
	howard := mustAlgo(t, "howard")
	for seed := uint64(0); seed < 8; seed++ {
		g, err := gen.MultiSCC(6, 20, 50, seed)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := MinimumCycleMean(g, howard, Options{})
		if err != nil {
			t.Fatal(err)
		}
		kr, err := MinimumCycleMean(g, howard, Options{Kernelize: true, Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !kr.Mean.Equal(raw.Mean) {
			t.Errorf("seed %d: parallel kernelized λ* = %v, raw = %v", seed, kr.Mean, raw.Mean)
		}
		if err := g.ValidateCycle(kr.Cycle); err != nil {
			t.Errorf("seed %d: cycle invalid: %v", seed, err)
		}
		if mean := numeric.NewRat(g.CycleWeight(kr.Cycle), int64(len(kr.Cycle))); !mean.Equal(kr.Mean) {
			t.Errorf("seed %d: cycle mean %v != λ* %v", seed, mean, kr.Mean)
		}
	}
}

// TestKernelEquivalenceMaximum covers the negation path (MaximumCycleMean
// kernelizes the negated graph).
func TestKernelEquivalenceMaximum(t *testing.T) {
	howard := mustAlgo(t, "howard")
	for seed := uint64(0); seed < 5; seed++ {
		g, err := gen.Chain(gen.ChainConfig{CoreN: 6, Chains: 4, ChainLen: 20, MinWeight: -30, MaxWeight: 30, SelfLoops: 1, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		raw, err := MaximumCycleMean(g, howard, Options{})
		if err != nil {
			t.Fatal(err)
		}
		kr, err := MaximumCycleMean(g, howard, Options{Kernelize: true})
		if err != nil {
			t.Fatal(err)
		}
		if !kr.Mean.Equal(raw.Mean) {
			t.Errorf("seed %d: kernelized max mean %v, raw %v", seed, kr.Mean, raw.Mean)
		}
	}
}

// TestKernelBoundsFeedLawler pins the bound-sharpening integration: a
// kernelized Lawler solve must not probe more than the raw solve on
// chain-heavy graphs (the kernel bounds can only shrink its bracket) and
// must agree exactly.
func TestKernelBoundsFeedLawler(t *testing.T) {
	lawler := mustAlgo(t, "lawler")
	for seed := uint64(0); seed < 5; seed++ {
		g, err := gen.Chain(gen.ChainConfig{CoreN: 10, Chains: 5, ChainLen: 15, MinWeight: -100, MaxWeight: 100, SelfLoops: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		raw, err := MinimumCycleMean(g, lawler, Options{})
		if err != nil {
			t.Fatal(err)
		}
		kr, err := MinimumCycleMean(g, lawler, Options{Kernelize: true})
		if err != nil {
			t.Fatal(err)
		}
		if !kr.Mean.Equal(raw.Mean) {
			t.Fatalf("seed %d: λ* mismatch: %v vs %v", seed, kr.Mean, raw.Mean)
		}
		if kr.Counts.Iterations > raw.Counts.Iterations {
			t.Errorf("seed %d: kernelized Lawler probed %d times, raw %d — bounds made it worse",
				seed, kr.Counts.Iterations, raw.Counts.Iterations)
		}
	}
}

// TestLawlerExplicitBounds drives Options.LambdaLower/LambdaUpper directly,
// including the λ* == Upper edge case the +2 grid slack exists for.
func TestLawlerExplicitBounds(t *testing.T) {
	lawler := mustAlgo(t, "lawler")
	for seed := uint64(0); seed < 10; seed++ {
		g, err := gen.Sprand(gen.SprandConfig{N: 20, M: 60, MinWeight: -50, MaxWeight: 50, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := lawler.Solve(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		cases := []struct {
			name   string
			lo, hi numeric.Rat
		}{
			{"tight", ref.Mean, ref.Mean}, // λ* == Lower == Upper exactly
			{"loose", numeric.NewRat(ref.Mean.Num()-ref.Mean.Den()*10, ref.Mean.Den()), numeric.NewRat(ref.Mean.Num()+ref.Mean.Den()*10, ref.Mean.Den())},
			{"upper-only", numeric.FromInt(-50), ref.Mean},
		}
		for _, tc := range cases {
			lo, hi := tc.lo, tc.hi
			got, err := lawler.Solve(g, Options{LambdaLower: &lo, LambdaUpper: &hi})
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, tc.name, err)
			}
			if !got.Mean.Equal(ref.Mean) {
				t.Errorf("seed %d %s: bounded Lawler = %v, want %v", seed, tc.name, got.Mean, ref.Mean)
			}
			if err := g.ValidateCycle(got.Cycle); err != nil {
				t.Errorf("seed %d %s: %v", seed, tc.name, err)
			}
		}
	}
}

// TestKernelEquivalenceWeightRange pins that kernelization does not widen
// the input contract: weights beyond ±(2^31−1) must yield ErrWeightRange
// exactly as a raw solve does, even when the closed-form candidate or the
// cross-SCC pruning bound could have answered without running a solver.
func TestKernelEquivalenceWeightRange(t *testing.T) {
	howard := mustAlgo(t, "howard")
	over := int64(MaxWeightMagnitude) + 1

	// Single component collapsing entirely to a closed-form candidate.
	single := graph.FromArcs(2, []graph.Arc{
		{From: 0, To: 1, Weight: over, Transit: 1},
		{From: 1, To: 0, Weight: 0, Transit: 1},
	})
	// Multi-SCC: a small in-range component first, so the out-of-range one
	// is a pruning target (its bound cannot beat the incumbent mean 1).
	multi := graph.FromArcs(4, []graph.Arc{
		{From: 0, To: 1, Weight: 1, Transit: 1},
		{From: 1, To: 0, Weight: 1, Transit: 1},
		{From: 2, To: 3, Weight: over, Transit: 1},
		{From: 3, To: 2, Weight: over, Transit: 1},
	})
	for name, g := range map[string]*graph.Graph{"single": single, "multi": multi} {
		if _, err := MinimumCycleMean(g, howard, Options{}); !errors.Is(err, ErrWeightRange) {
			t.Errorf("%s raw: err = %v, want ErrWeightRange", name, err)
		}
		if _, err := MinimumCycleMean(g, howard, Options{Kernelize: true}); !errors.Is(err, ErrWeightRange) {
			t.Errorf("%s kernelized: err = %v, want ErrWeightRange", name, err)
		}
		if _, err := MinimumCycleMean(g, howard, Options{Kernelize: true, Parallelism: 4}); !errors.Is(err, ErrWeightRange) {
			t.Errorf("%s kernelized parallel: err = %v, want ErrWeightRange", name, err)
		}
	}
}
