package core

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/numeric"
)

// equivalenceCorpus builds the kernelization test corpus: ≥120 graphs
// spanning every generator family, weighted toward the chain-heavy circuits
// the pipeline targets. Each entry is named so failures are reproducible.
func equivalenceCorpus(t testing.TB) map[string]*graph.Graph {
	t.Helper()
	corpus := make(map[string]*graph.Graph)
	add := func(name string, g *graph.Graph, err error) {
		if err != nil {
			t.Fatalf("corpus %s: %v", name, err)
		}
		corpus[name] = g
	}

	// SPRAND spread: 50 graphs.
	for _, size := range []struct{ n, m int }{{4, 8}, {10, 25}, {30, 90}, {60, 120}, {100, 300}} {
		for seed := uint64(0); seed < 10; seed++ {
			g, err := gen.Sprand(gen.SprandConfig{N: size.n, M: size.m, MinWeight: -500, MaxWeight: 500, Seed: seed})
			add(fmt.Sprintf("sprand-%d-%d-%d", size.n, size.m, seed), g, err)
		}
	}
	// Chain-heavy circuits: 40 graphs, the kernelization target family.
	for i, cfg := range []gen.ChainConfig{
		{CoreN: 4, Chains: 3, ChainLen: 10, MinWeight: -50, MaxWeight: 50},
		{CoreN: 8, Chains: 6, ChainLen: 30, MinWeight: -50, MaxWeight: 50, SelfLoops: 2},
		{CoreN: 12, Chains: 10, ChainLen: 50, MinWeight: 1, MaxWeight: 1000, SelfLoops: 4},
		{CoreN: 2, Chains: 2, ChainLen: 100, MinWeight: -9, MaxWeight: 9},
	} {
		for seed := uint64(0); seed < 10; seed++ {
			cfg.Seed = seed
			g, err := gen.Chain(cfg)
			add(fmt.Sprintf("chain-%d-%d", i, seed), g, err)
		}
	}
	// Structured and multi-SCC shapes: 30 graphs.
	for seed := uint64(0); seed < 5; seed++ {
		add(fmt.Sprintf("torus-%d", seed), gen.Torus(6, 7, -100, 100, seed), nil)
		add(fmt.Sprintf("complete-%d", seed), gen.Complete(10, -50, 50, seed), nil)
		g, err := gen.MultiSCC(5, 12, 30, seed)
		add(fmt.Sprintf("multiscc-%d", seed), g, err)
		add(fmt.Sprintf("cycle-%d", seed), gen.Cycle(int(20+seed*13), int64(seed)-2), nil)
		g, _, err = gen.PlantedMinMean(40, 120, 6, -7, 100, seed)
		add(fmt.Sprintf("planted-%d", seed), g, err)
		// Single node with self-loops, the smallest cyclic graph.
		add(fmt.Sprintf("loops-%d", seed), graph.FromArcs(1, []graph.Arc{
			{From: 0, To: 0, Weight: int64(seed) + 1, Transit: 1},
			{From: 0, To: 0, Weight: 5, Transit: 1},
		}), nil)
	}
	if len(corpus) < 120 {
		t.Fatalf("corpus has only %d graphs, want >= 120", len(corpus))
	}
	return corpus
}

// TestKernelEquivalenceMean is the tentpole guarantee: for every corpus
// graph and every bound-sensitive algorithm, a kernelized solve returns the
// same λ* as a raw solve, and its cycle — expanded to original-graph arc
// IDs — is a valid cycle of the original graph whose exact rational mean
// equals λ* (no float drift anywhere).
func TestKernelEquivalenceMean(t *testing.T) {
	corpus := equivalenceCorpus(t)
	algos := []Algorithm{mustAlgo(t, "howard"), mustAlgo(t, "karp"), mustAlgo(t, "lawler")}
	for name, g := range corpus {
		raw, err := MinimumCycleMean(g, algos[0], Options{Certify: true})
		if err != nil {
			t.Fatalf("%s: raw solve: %v", name, err)
		}
		if raw.Certificate == nil {
			t.Fatalf("%s: certified solve returned no certificate", name)
		}
		for _, algo := range algos {
			kr, err := MinimumCycleMean(g, algo, Options{Kernelize: true, Certify: true})
			if err != nil {
				t.Fatalf("%s/%s: kernelized solve: %v", name, algo.Name(), err)
			}
			if !kr.Mean.Equal(raw.Mean) {
				t.Errorf("%s/%s: kernelized λ* = %v, raw = %v", name, algo.Name(), kr.Mean, raw.Mean)
				continue
			}
			if !kr.Exact {
				t.Errorf("%s/%s: kernelized result must be exact", name, algo.Name())
			}
			if kr.Certificate == nil || !kr.Certificate.Value.Equal(kr.Mean) {
				t.Errorf("%s/%s: missing or mismatched certificate: %+v", name, algo.Name(), kr.Certificate)
			}
			if err := g.ValidateCycle(kr.Cycle); err != nil {
				t.Errorf("%s/%s: expanded cycle invalid on original graph: %v", name, algo.Name(), err)
				continue
			}
			// Satellite property: recompute the expanded cycle's value on the
			// original graph in exact rational arithmetic.
			mean := numeric.NewRat(g.CycleWeight(kr.Cycle), int64(len(kr.Cycle)))
			if !mean.Equal(kr.Mean) {
				t.Errorf("%s/%s: expanded cycle mean %v != reported λ* %v", name, algo.Name(), mean, kr.Mean)
			}
		}
	}
}

// TestKernelEquivalenceParallel checks the parallel driver's kernelized
// path: same λ* and a valid original-ID cycle, for multi-SCC inputs where
// components actually fan out.
func TestKernelEquivalenceParallel(t *testing.T) {
	howard := mustAlgo(t, "howard")
	for seed := uint64(0); seed < 8; seed++ {
		g, err := gen.MultiSCC(6, 20, 50, seed)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := MinimumCycleMean(g, howard, Options{})
		if err != nil {
			t.Fatal(err)
		}
		kr, err := MinimumCycleMean(g, howard, Options{Kernelize: true, Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !kr.Mean.Equal(raw.Mean) {
			t.Errorf("seed %d: parallel kernelized λ* = %v, raw = %v", seed, kr.Mean, raw.Mean)
		}
		if err := g.ValidateCycle(kr.Cycle); err != nil {
			t.Errorf("seed %d: cycle invalid: %v", seed, err)
		}
		if mean := numeric.NewRat(g.CycleWeight(kr.Cycle), int64(len(kr.Cycle))); !mean.Equal(kr.Mean) {
			t.Errorf("seed %d: cycle mean %v != λ* %v", seed, mean, kr.Mean)
		}
	}
}

// TestKernelEquivalenceMaximum covers the negation path (MaximumCycleMean
// kernelizes the negated graph).
func TestKernelEquivalenceMaximum(t *testing.T) {
	howard := mustAlgo(t, "howard")
	for seed := uint64(0); seed < 5; seed++ {
		g, err := gen.Chain(gen.ChainConfig{CoreN: 6, Chains: 4, ChainLen: 20, MinWeight: -30, MaxWeight: 30, SelfLoops: 1, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		raw, err := MaximumCycleMean(g, howard, Options{})
		if err != nil {
			t.Fatal(err)
		}
		kr, err := MaximumCycleMean(g, howard, Options{Kernelize: true})
		if err != nil {
			t.Fatal(err)
		}
		if !kr.Mean.Equal(raw.Mean) {
			t.Errorf("seed %d: kernelized max mean %v, raw %v", seed, kr.Mean, raw.Mean)
		}
	}
}

// TestKernelBoundsFeedLawler pins the bound-sharpening integration: a
// kernelized Lawler solve must not probe more than the raw solve on
// chain-heavy graphs (the kernel bounds can only shrink its bracket) and
// must agree exactly.
func TestKernelBoundsFeedLawler(t *testing.T) {
	lawler := mustAlgo(t, "lawler")
	for seed := uint64(0); seed < 5; seed++ {
		g, err := gen.Chain(gen.ChainConfig{CoreN: 10, Chains: 5, ChainLen: 15, MinWeight: -100, MaxWeight: 100, SelfLoops: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		raw, err := MinimumCycleMean(g, lawler, Options{})
		if err != nil {
			t.Fatal(err)
		}
		kr, err := MinimumCycleMean(g, lawler, Options{Kernelize: true})
		if err != nil {
			t.Fatal(err)
		}
		if !kr.Mean.Equal(raw.Mean) {
			t.Fatalf("seed %d: λ* mismatch: %v vs %v", seed, kr.Mean, raw.Mean)
		}
		if kr.Counts.Iterations > raw.Counts.Iterations {
			t.Errorf("seed %d: kernelized Lawler probed %d times, raw %d — bounds made it worse",
				seed, kr.Counts.Iterations, raw.Counts.Iterations)
		}
	}
}

// TestLawlerExplicitBounds drives Options.LambdaLower/LambdaUpper directly,
// including the λ* == Upper edge case the +2 grid slack exists for.
func TestLawlerExplicitBounds(t *testing.T) {
	lawler := mustAlgo(t, "lawler")
	for seed := uint64(0); seed < 10; seed++ {
		g, err := gen.Sprand(gen.SprandConfig{N: 20, M: 60, MinWeight: -50, MaxWeight: 50, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := lawler.Solve(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		cases := []struct {
			name   string
			lo, hi numeric.Rat
		}{
			{"tight", ref.Mean, ref.Mean}, // λ* == Lower == Upper exactly
			{"loose", numeric.NewRat(ref.Mean.Num()-ref.Mean.Den()*10, ref.Mean.Den()), numeric.NewRat(ref.Mean.Num()+ref.Mean.Den()*10, ref.Mean.Den())},
			{"upper-only", numeric.FromInt(-50), ref.Mean},
		}
		for _, tc := range cases {
			lo, hi := tc.lo, tc.hi
			got, err := lawler.Solve(g, Options{LambdaLower: &lo, LambdaUpper: &hi})
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, tc.name, err)
			}
			if !got.Mean.Equal(ref.Mean) {
				t.Errorf("seed %d %s: bounded Lawler = %v, want %v", seed, tc.name, got.Mean, ref.Mean)
			}
			if err := g.ValidateCycle(got.Cycle); err != nil {
				t.Errorf("seed %d %s: %v", seed, tc.name, err)
			}
		}
	}
}

// TestKernelEquivalenceWeightRange pins that kernelization does not widen
// the input contract: weights beyond ±(2^31−1) must yield ErrWeightRange
// exactly as a raw solve does, even when the closed-form candidate or the
// cross-SCC pruning bound could have answered without running a solver.
func TestKernelEquivalenceWeightRange(t *testing.T) {
	howard := mustAlgo(t, "howard")
	over := int64(MaxWeightMagnitude) + 1

	// Single component collapsing entirely to a closed-form candidate.
	single := graph.FromArcs(2, []graph.Arc{
		{From: 0, To: 1, Weight: over, Transit: 1},
		{From: 1, To: 0, Weight: 0, Transit: 1},
	})
	// Multi-SCC: a small in-range component first, so the out-of-range one
	// is a pruning target (its bound cannot beat the incumbent mean 1).
	multi := graph.FromArcs(4, []graph.Arc{
		{From: 0, To: 1, Weight: 1, Transit: 1},
		{From: 1, To: 0, Weight: 1, Transit: 1},
		{From: 2, To: 3, Weight: over, Transit: 1},
		{From: 3, To: 2, Weight: over, Transit: 1},
	})
	for name, g := range map[string]*graph.Graph{"single": single, "multi": multi} {
		if _, err := MinimumCycleMean(g, howard, Options{}); !errors.Is(err, ErrWeightRange) {
			t.Errorf("%s raw: err = %v, want ErrWeightRange", name, err)
		}
		if _, err := MinimumCycleMean(g, howard, Options{Kernelize: true}); !errors.Is(err, ErrWeightRange) {
			t.Errorf("%s kernelized: err = %v, want ErrWeightRange", name, err)
		}
		if _, err := MinimumCycleMean(g, howard, Options{Kernelize: true, Parallelism: 4}); !errors.Is(err, ErrWeightRange) {
			t.Errorf("%s kernelized parallel: err = %v, want ErrWeightRange", name, err)
		}
	}
}
