package core

import (
	"math"

	"repro/internal/counter"
	"repro/internal/graph"
	"repro/internal/numeric"
)

func init() {
	register("howard", func() Algorithm { return howardAlg{} })
}

// howardAlg is Howard's policy-iteration algorithm [Cochet-Terrasson et al.
// 1997] — the paper's headline finding is that this algorithm, known from
// the stochastic control community, is by far the fastest MCM algorithm in
// practice even though its only proven bounds (including the paper's two
// new ones, O(nmα) and O(n²m(w_max−w_min)/ε)) are not polynomial.
//
// The paper's Figure 1 presents a simplified value-determination step that
// recomputes distances only toward the single smallest policy cycle. That
// simplification can let λ oscillate between the cycles of successive
// policies on multichain policy graphs (our differential fuzzer found such
// inputs for the ratio variant); this implementation therefore performs the
// original multichain value determination. Each iteration:
//
//  1. Every node of the out-degree-one policy graph reaches exactly one
//     policy cycle; that cycle's exact rational mean becomes the node's
//     *gain* and a reverse BFS toward its cycle assigns the node's *bias*
//     d (float64), exactly Figure 1's lines 7–12 applied per basin.
//  2. Policy improvement is lexicographic: an arc into a basin with a
//     strictly smaller gain always wins (gains are exact rationals, so the
//     gain vector is non-increasing and cannot oscillate); at equal gain, a
//     strictly smaller bias wins, flagged as progress only above ε
//     (Figure 1's lines 13–18).
//
// On convergence the smallest gain comes from an actual cycle, so it is an
// exact rational; it is certified with one exact Bellman–Ford feasibility
// pass, and a certificate failure (possible only through float round-off
// in the bias) halves ε and resumes. Every returned λ* is exact.
type howardAlg struct{}

func (howardAlg) Name() string { return "howard" }

func (howardAlg) Solve(g *graph.Graph, opt Options) (Result, error) {
	r, _, err := howardRun(g, opt, nil, false)
	return r, err
}

// validWarmPolicy reports whether warm is a structurally valid policy for g:
// one out-arc per node. Policy iteration converges to the exact optimum from
// ANY such policy (the exact certificate gates every return), so a stale warm
// start can cost iterations but can never change the answer.
func validWarmPolicy(g *graph.Graph, warm []graph.ArcID) bool {
	if len(warm) != g.NumNodes() {
		return false
	}
	m := graph.ArcID(g.NumArcs())
	for v, id := range warm {
		if id < 0 || id >= m || g.Arc(id).From != graph.NodeID(v) {
			return false
		}
	}
	return true
}

// howardRun is the full Howard iteration behind howardAlg.Solve and
// Session's warm-started solves. A non-nil warm policy (one out-arc per
// node) replaces the cheapest-arc initial policy when structurally valid for
// g, and is silently ignored otherwise. When wantPolicy is set the converged
// optimal policy is returned in a freshly allocated slice (the internal one
// is pooled), for callers that cache policies across solves.
func howardRun(g *graph.Graph, opt Options, warm []graph.ArcID, wantPolicy bool) (Result, []graph.ArcID, error) {
	if err := checkSolveInput(g); err != nil {
		return Result{}, nil, err
	}
	n := g.NumNodes()
	var counts counter.Counts

	eps := opt.Epsilon
	if eps <= 0 {
		minW, maxW := g.WeightRange()
		scale := math.Max(1, math.Max(math.Abs(float64(minW)), math.Abs(float64(maxW))))
		eps = 1e-10 * scale
	}

	ws := getHowardWS(n)
	defer ws.release()

	// Initial policy: a valid warm start wins, else cheapest out-arc
	// (Figure 1 lines 1–4).
	policy := ws.policy
	if warm != nil && validWarmPolicy(g, warm) {
		copy(policy, warm)
	} else {
		for v := graph.NodeID(0); int(v) < n; v++ {
			policy[v] = -1
			best := int64(0)
			for _, id := range g.OutArcs(v) {
				if w := g.Arc(id).Weight; policy[v] < 0 || w < best {
					best = w
					policy[v] = id
				}
			}
			if policy[v] < 0 {
				return Result{}, nil, ErrNotStronglyConnected
			}
		}
	}

	gain := ws.gain
	gainRank := ws.gainRank // rank of gain[v] among this iteration's distinct gains
	gainSet := ws.gainSet
	cycleGains := ws.cycleGains[:0]
	cycleSeq := ws.cycleSeq // v -> index into cycleGains
	d := ws.d               // zeroed by getHowardWS
	childHead := ws.childHead
	childNext := ws.childNext
	queue := ws.queue[:0]
	bestCycBuf := ws.bestCyc[:0]
	defer func() { ws.cycleGains, ws.queue, ws.bestCyc = cycleGains, queue, bestCycBuf }()

	maxIter := opt.maxIter(100*n + 1000)
	for iter := 0; iter < maxIter; iter++ {
		if err := opt.checkpoint(); err != nil {
			return Result{}, nil, err
		}
		counts.Iterations++

		// Value determination per basin.
		cycleGains = cycleGains[:0]
		for i := range childHead {
			childHead[i] = -1
			gainSet[i] = false
		}
		for v := 0; v < n; v++ {
			u := g.Arc(policy[v]).To
			childNext[v] = childHead[u]
			childHead[u] = int32(v)
		}
		var (
			bestGain numeric.Rat
			haveBest bool
		)
		ws.pc.policyCycles(g, policy, func(cycle []graph.ArcID) {
			counts.CyclesExamined++
			r := numeric.NewRat(g.CycleWeight(cycle), int64(len(cycle)))
			if !haveBest || r.Less(bestGain) {
				bestGain = r
				bestCycBuf = append(bestCycBuf[:0], cycle...)
				haveBest = true
			}
			rf := r.Float64()
			// Normalization node: the smallest node on the cycle (stable
			// across policy changes), keeping its previous bias — the
			// continuity condition that makes the value sequence monotone
			// and prevents bias oscillation between equal-gain basins.
			s := g.Arc(cycle[0]).From
			for _, id := range cycle {
				if from := g.Arc(id).From; from < s {
					s = from
				}
			}
			seq := int32(len(cycleGains))
			cycleGains = append(cycleGains, r)
			gain[s] = r
			cycleSeq[s] = seq
			gainSet[s] = true
			queue = append(queue[:0], s)
			for qi := 0; qi < len(queue); qi++ {
				u := queue[qi]
				for c := childHead[u]; c >= 0; c = childNext[c] {
					v := graph.NodeID(c)
					if gainSet[v] {
						continue
					}
					gainSet[v] = true
					gain[v] = r
					cycleSeq[v] = seq
					a := g.Arc(policy[v])
					d[v] = d[a.To] + float64(a.Weight) - rf
					queue = append(queue, v)
				}
			}
		})
		if !haveBest {
			return Result{}, nil, ErrIterationLimit // impossible: out-degree 1 everywhere
		}
		ws.rankIdx = grow(ws.rankIdx, len(cycleGains))
		ws.ranks = grow(ws.ranks, len(cycleGains))
		numeric.RanksInto(cycleGains, ws.rankIdx, ws.ranks)
		ranks := ws.ranks
		for v := 0; v < n; v++ {
			gainRank[v] = ranks[cycleSeq[v]]
		}

		// Lexicographic policy improvement.
		improved := false
		for u := graph.NodeID(0); int(u) < n; u++ {
			curArc := g.Arc(policy[u])
			curRank := gainRank[curArc.To]
			curGain := gain[curArc.To]
			curVal := d[curArc.To] + float64(curArc.Weight) - curGain.Float64()
			bestArc := policy[u]
			bestRank := curRank
			bestVal := curVal
			for _, id := range g.OutArcs(u) {
				counts.Relaxations++
				a := g.Arc(id)
				switch rv := gainRank[a.To]; {
				case rv < bestRank:
					bestRank = rv
					bestVal = d[a.To] + float64(a.Weight) - gain[a.To].Float64()
					bestArc = id
				case rv == bestRank:
					if val := d[a.To] + float64(a.Weight) - gain[a.To].Float64(); val < bestVal {
						bestVal = val
						bestArc = id
					}
				}
			}
			if bestArc == policy[u] {
				continue
			}
			if bestRank < curRank {
				policy[u] = bestArc
				improved = true
			} else if bestVal < curVal {
				policy[u] = bestArc
				if curVal-bestVal > eps {
					improved = true
				}
			}
		}

		// Hardened Figure 1 line 19: certify λ exactly before returning;
		// resume with a tighter threshold on (float-induced) failure.
		if !improved {
			if neg, _ := hasNegativeCycleScaledInto(g, bestGain.Num(), bestGain.Den(), &counts, ws.bfDist, ws.bfParent); !neg {
				cycle := make([]graph.ArcID, len(bestCycBuf))
				copy(cycle, bestCycBuf)
				var outPolicy []graph.ArcID
				if wantPolicy {
					outPolicy = make([]graph.ArcID, n)
					copy(outPolicy, policy)
				}
				return Result{Mean: bestGain, Cycle: cycle, Exact: true, Counts: counts}, outPolicy, nil
			}
			eps /= 2
		}
	}
	return Result{}, nil, ErrIterationLimit
}
