package core

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/numeric"
)

// shiftWeights returns a copy of g with c added to every arc weight.
func shiftWeights(g *graph.Graph, c int64) *graph.Graph {
	arcs := make([]graph.Arc, g.NumArcs())
	for i, a := range g.Arcs() {
		a.Weight += c
		arcs[i] = a
	}
	return graph.FromArcs(g.NumNodes(), arcs)
}

// scaleWeights returns a copy of g with every arc weight multiplied by k.
func scaleWeights(g *graph.Graph, k int64) *graph.Graph {
	arcs := make([]graph.Arc, g.NumArcs())
	for i, a := range g.Arcs() {
		a.Weight *= k
		arcs[i] = a
	}
	return graph.FromArcs(g.NumNodes(), arcs)
}

// TestShiftInvariance: adding c to every weight adds exactly c to the
// minimum cycle mean (every cycle mean shifts by c). Checked for every
// algorithm.
func TestShiftInvariance(t *testing.T) {
	algos := All()
	f := func(seed uint64, shiftRaw int16) bool {
		c := int64(shiftRaw) % 500
		g, err := gen.Sprand(gen.SprandConfig{N: 7, M: 16, MinWeight: -10, MaxWeight: 10, Seed: seed})
		if err != nil {
			return false
		}
		shifted := shiftWeights(g, c)
		for _, algo := range algos {
			base, err1 := algo.Solve(g, Options{})
			moved, err2 := algo.Solve(shifted, Options{})
			if err1 != nil || err2 != nil {
				return false
			}
			if !moved.Mean.Equal(base.Mean.Add(numeric.FromInt(c))) {
				t.Logf("%s: shift by %d: %v -> %v", algo.Name(), c, base.Mean, moved.Mean)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestScaleInvariance: multiplying every weight by k > 0 multiplies λ* by
// k exactly.
func TestScaleInvariance(t *testing.T) {
	algos := All()
	f := func(seed uint64, kRaw uint8) bool {
		k := int64(kRaw)%7 + 1
		g, err := gen.Sprand(gen.SprandConfig{N: 6, M: 14, MinWeight: -9, MaxWeight: 9, Seed: seed})
		if err != nil {
			return false
		}
		scaled := scaleWeights(g, k)
		for _, algo := range algos {
			base, err1 := algo.Solve(g, Options{})
			mul, err2 := algo.Solve(scaled, Options{})
			if err1 != nil || err2 != nil {
				return false
			}
			if !mul.Mean.Equal(base.Mean.Mul(numeric.FromInt(k))) {
				t.Logf("%s: scale by %d: %v -> %v", algo.Name(), k, base.Mean, mul.Mean)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestReversalInvariance: reversing every arc preserves all cycle means,
// hence λ*.
func TestReversalInvariance(t *testing.T) {
	howard, _ := ByName("howard")
	f := func(seed uint64) bool {
		g, err := gen.Sprand(gen.SprandConfig{N: 9, M: 24, MinWeight: -20, MaxWeight: 20, Seed: seed})
		if err != nil {
			return false
		}
		a, err1 := howard.Solve(g, Options{})
		b, err2 := howard.Solve(g.Reverse(), Options{})
		if err1 != nil || err2 != nil {
			return false
		}
		return a.Mean.Equal(b.Mean)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestMinMaxDuality: maxMean(g) == -minMean(-g), via the public drivers.
func TestMinMaxDuality(t *testing.T) {
	howard, _ := ByName("howard")
	f := func(seed uint64) bool {
		g, err := gen.Sprand(gen.SprandConfig{N: 8, M: 20, MinWeight: -15, MaxWeight: 15, Seed: seed})
		if err != nil {
			return false
		}
		max, err1 := MaximumCycleMean(g, howard, Options{})
		min, err2 := MinimumCycleMean(g.NegateWeights(), howard, Options{})
		if err1 != nil || err2 != nil {
			return false
		}
		return max.Mean.Equal(min.Mean.Neg())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestAddingHeavyArcNeverLowersOptimum: adding one arc can only add cycles,
// so λ* can only decrease or stay; adding an arc heavier than every cycle
// mean bound keeps λ* unchanged... the general monotonicity: λ*(g+arc) <=
// λ*(g) is false (new arc adds cycles, means can only shrink the MIN):
// adding cycles can only lower or keep the minimum. Verify that direction.
func TestAddingArcNeverRaisesMinimum(t *testing.T) {
	howard, _ := ByName("howard")
	f := func(seed uint64, uRaw, vRaw uint8, w int8) bool {
		g, err := gen.Sprand(gen.SprandConfig{N: 8, M: 18, MinWeight: -10, MaxWeight: 10, Seed: seed})
		if err != nil {
			return false
		}
		before, err := howard.Solve(g, Options{})
		if err != nil {
			return false
		}
		arcs := append(append([]graph.Arc{}, g.Arcs()...), graph.Arc{
			From:    graph.NodeID(int(uRaw) % g.NumNodes()),
			To:      graph.NodeID(int(vRaw) % g.NumNodes()),
			Weight:  int64(w),
			Transit: 1,
		})
		bigger := graph.FromArcs(g.NumNodes(), arcs)
		after, err := howard.Solve(bigger, Options{})
		if err != nil {
			return false
		}
		return !before.Mean.Less(after.Mean) // after <= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
