package core

import (
	"repro/internal/counter"
	"repro/internal/graph"
	"repro/internal/numeric"
)

func init() {
	register("ho", func() Algorithm { return hoAlg{} })
}

// hoAlg is the Hartmann–Orlin early-termination variant of Karp's algorithm
// [Networks 1993]. It runs Karp's recurrence unchanged but, after each level
// k, inspects the cycles formed by the level-k shortest-walk parent pointers
// (a functional graph, so all its cycles are found in O(n)). Every such
// cycle is a real cycle of G and its mean is a candidate value λ̂ ≥ λ*.
// Whenever the best candidate improves, the algorithm attempts to certify it
// with the paper's Equation 1: the potentials
//
//	d(v) = min_{0≤j≤k} (D_j(v) − j·λ̂)
//
// are feasible (d(v) ≤ d(u) + w(u,v) − λ̂ on every arc) iff G_λ̂ has no
// negative cycle, i.e. iff λ̂ ≤ λ*; combined with λ̂ ≥ λ* the certificate
// proves λ̂ = λ* and the algorithm stops early. All certification arithmetic
// is exact (scaled by λ̂'s denominator). If no certificate succeeds by level
// n, Karp's theorem concludes as usual, so the result is always exact.
//
// The paper reports the terminating level k as the algorithm's "number of
// iterations" (§4.3); counts.Iterations records exactly that.
type hoAlg struct{}

func (hoAlg) Name() string { return "ho" }

func (hoAlg) Solve(g *graph.Graph, opt Options) (Result, error) {
	if err := checkSolveInput(g); err != nil {
		return Result{}, err
	}
	n := g.NumNodes()
	var counts counter.Counts

	D := make([]int64, (n+1)*n)
	row := func(k int) []int64 { return D[k*n : (k+1)*n] }
	r0 := row(0)
	for i := range r0 {
		r0[i] = infD
	}
	r0[0] = 0

	// parent[v] is the arc that produced the current level's D value of v,
	// or -1 when v is unreached at this level.
	parent := make([]graph.ArcID, n)

	var (
		best      numeric.Rat
		bestCycle []graph.ArcID
		haveBest  bool
	)
	// pot[v] = min_{0≤j≤k} (q·D_j(v) − j·p) for the current candidate
	// λ̂ = p/q, maintained incrementally level by level (O(n) per level)
	// and rebuilt from scratch (O(nk)) whenever the candidate improves.
	pot := make([]int64, n)
	potInfinite := n

	for k := 1; k <= n; k++ {
		if err := opt.checkpoint(); err != nil {
			return Result{}, err
		}
		prev, cur := row(k-1), row(k)
		for i := range cur {
			cur[i] = infD
		}
		for i := range parent {
			parent[i] = -1
		}
		for id, a := range g.Arcs() {
			counts.ArcsVisited++
			counts.Relaxations++
			if prev[a.From] >= infD {
				continue
			}
			if nd := prev[a.From] + a.Weight; nd < cur[a.To] {
				cur[a.To] = nd
				parent[a.To] = graph.ArcID(id)
			}
		}

		// Collect candidate cycles from the parent functional graph.
		improved := false
		hoParentCycles(g, parent, func(cycle []graph.ArcID) {
			counts.CyclesExamined++
			mean := numeric.NewRat(g.CycleWeight(cycle), int64(len(cycle)))
			if !haveBest || mean.Less(best) {
				best = mean
				bestCycle = append(bestCycle[:0], cycle...)
				haveBest = true
				improved = true
			}
		})
		if !haveBest {
			continue
		}

		p, q := best.Num(), best.Den()
		if improved {
			// New candidate: rebuild the potentials over levels 0..k.
			potInfinite = 0
			for v := 0; v < n; v++ {
				pot[v] = infD
				for j := 0; j <= k; j++ {
					if dj := D[j*n+v]; dj < infD {
						if val := q*dj - int64(j)*p; val < pot[v] {
							pot[v] = val
						}
					}
				}
				if pot[v] >= infD {
					potInfinite++
				}
			}
		} else {
			// Same candidate: fold in level k only.
			for v := 0; v < n; v++ {
				if dv := cur[v]; dv < infD {
					if val := q*dv - int64(k)*p; val < pot[v] {
						if pot[v] >= infD {
							potInfinite--
						}
						pot[v] = val
					}
				}
			}
		}

		// Equation 1 certificate: if the potentials are feasible for λ̂,
		// then λ̂ ≤ λ*; the candidate cycle proves λ̂ ≥ λ*, so λ* = λ̂.
		if potInfinite == 0 {
			counts.NegativeCycleChecks++
			feasible := true
			for _, a := range g.Arcs() {
				if pot[a.To] > pot[a.From]+q*a.Weight-p {
					feasible = false
					break
				}
			}
			if feasible {
				counts.Iterations = k
				return Result{Mean: best, Cycle: bestCycle, Exact: true, Counts: counts}, nil
			}
		}
	}
	counts.Iterations = n

	lambda, ok := karpTheorem(row(n), func(k int) []int64 { return row(k) }, n)
	if !ok {
		return Result{}, ErrAcyclic
	}
	return finishExact(g, lambda, nil, counts)
}

// hoParentCycles enumerates the cycles of the parent functional graph,
// following parent arcs backwards (each reached node has exactly one parent
// arc entering it). Cycles are emitted in forward arc order.
func hoParentCycles(g *graph.Graph, parent []graph.ArcID, fn func(cycle []graph.ArcID)) {
	n := len(parent)
	state := make([]int32, n) // 0 unvisited, 1 on current walk, 2 done
	pos := make([]int32, n)
	var walk []graph.NodeID
	for root := 0; root < n; root++ {
		if state[root] != 0 || parent[root] < 0 {
			continue
		}
		walk = walk[:0]
		v := graph.NodeID(root)
		for state[v] == 0 && parent[v] >= 0 {
			state[v] = 1
			pos[v] = int32(len(walk))
			walk = append(walk, v)
			v = g.Arc(parent[v]).From
		}
		if parent[v] >= 0 && state[v] == 1 {
			// walk[pos[v]:] is a cycle traversed backwards: each node's
			// parent arc goes from the next node to it. Reverse for forward
			// order.
			seg := walk[pos[v]:]
			cycle := make([]graph.ArcID, len(seg))
			for i, node := range seg {
				cycle[len(seg)-1-i] = parent[node]
			}
			fn(cycle)
		}
		for _, u := range walk {
			state[u] = 2
		}
	}
}
