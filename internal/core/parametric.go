package core

import (
	"repro/internal/counter"
	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/pq"
)

func init() {
	register("ko", func() Algorithm { return koAlg{} })
	register("yto", func() Algorithm { return ytoAlg{} })
}

// Frac is the exact breakpoint key λ = Num/Den (Den > 0) used by the
// parametric heaps; comparisons go through 128-bit cross multiplication so
// no breakpoint is ever misordered by rounding.
type Frac struct {
	Num, Den int64
}

func fracLess(a, b Frac) bool { return numeric.CmpFrac(a.Num, a.Den, b.Num, b.Den) < 0 }

// paramTree is the shortest-path-tree state shared by KO and YTO. The tree
// is rooted at node 0; for every node, a(v) and b(v) are the weight and arc
// count of its tree path, so its distance in G_λ is a(v) − λ·b(v). The
// minimum cycle mean is the first λ at which a pivot closes a cycle.
type paramTree struct {
	g       *graph.Graph
	a       []int64
	b       []int64
	treeArc []graph.ArcID // arc whose head is v; -1 at the root

	// children intrusive doubly-linked lists for subtree traversal.
	childHead, childNext, childPrev []int32

	inSub   []bool
	subtree []graph.NodeID
}

func newParamTree(g *graph.Graph) *paramTree {
	n := g.NumNodes()
	t := &paramTree{
		g:         g,
		a:         make([]int64, n),
		b:         make([]int64, n),
		treeArc:   make([]graph.ArcID, n),
		childHead: make([]int32, n),
		childNext: make([]int32, n),
		childPrev: make([]int32, n),
		inSub:     make([]bool, n),
	}
	for i := 0; i < n; i++ {
		t.treeArc[i] = -1
		t.childHead[i] = -1
		t.childNext[i] = -1
		t.childPrev[i] = -1
	}
	return t
}

// initShortestTree builds the shortest path tree at λ0 = w_min − 1 (all
// reduced weights positive) with a lexicographic Dijkstra: primary key the
// reduced path weight, secondary key the negated arc count, because for λ
// slightly above λ0 the longer of two equal-weight paths is the shorter one
// in G_λ. Runs in O(m log n); all arithmetic exact.
func (t *paramTree) initShortestTree(lambda0 int64) {
	g := t.g
	n := g.NumNodes()
	type key struct {
		cost int64
		negB int64
	}
	dist := make([]key, n)
	done := make([]bool, n)
	const unreach = int64(1) << 62
	for i := range dist {
		dist[i] = key{unreach, 0}
	}
	dist[0] = key{0, 0}
	less := func(x, y key) bool {
		if x.cost != y.cost {
			return x.cost < y.cost
		}
		return x.negB < y.negB
	}
	h := pq.NewBinHeap(less, nil)
	h.Insert(dist[0], 0)
	for h.Len() > 0 {
		top := h.ExtractMin()
		v := graph.NodeID(top.Value)
		if done[v] {
			continue // stale duplicate entry
		}
		done[v] = true
		for _, id := range g.OutArcs(v) {
			arc := g.Arc(id)
			w := arc.Weight - lambda0
			nd := key{dist[v].cost + w, dist[v].negB - 1}
			if done[arc.To] || !less(nd, dist[arc.To]) {
				continue
			}
			dist[arc.To] = nd
			t.treeArc[arc.To] = id
			h.Insert(nd, int32(arc.To)) // lazy: duplicates skipped via done[]
		}
	}
	// Fill a, b and children lists from the tree arcs.
	for v := graph.NodeID(0); int(v) < n; v++ {
		if t.treeArc[v] < 0 {
			continue
		}
		t.linkChild(v)
	}
	// Compute a, b top-down (BFS from root over children lists).
	order := make([]graph.NodeID, 0, n)
	order = append(order, 0)
	for qi := 0; qi < len(order); qi++ {
		u := order[qi]
		for c := t.childHead[u]; c >= 0; c = t.childNext[c] {
			v := graph.NodeID(c)
			arc := g.Arc(t.treeArc[v])
			t.a[v] = t.a[u] + arc.Weight
			t.b[v] = t.b[u] + 1
			order = append(order, v)
		}
	}
}

// linkChild inserts v into its parent's child list (treeArc[v] must be set).
func (t *paramTree) linkChild(v graph.NodeID) {
	u := t.g.Arc(t.treeArc[v]).From
	t.childNext[v] = t.childHead[u]
	t.childPrev[v] = -1
	if t.childHead[u] >= 0 {
		t.childPrev[t.childHead[u]] = int32(v)
	}
	t.childHead[u] = int32(v)
}

// unlinkChild removes v from its current parent's child list.
func (t *paramTree) unlinkChild(v graph.NodeID) {
	u := t.g.Arc(t.treeArc[v]).From
	if t.childPrev[v] >= 0 {
		t.childNext[t.childPrev[v]] = t.childNext[v]
	} else {
		t.childHead[u] = t.childNext[v]
	}
	if t.childNext[v] >= 0 {
		t.childPrev[t.childNext[v]] = t.childPrev[v]
	}
	t.childNext[v], t.childPrev[v] = -1, -1
}

// collectSubtree gathers the subtree rooted at v into t.subtree and marks
// t.inSub. Call releaseSubtree afterwards.
func (t *paramTree) collectSubtree(v graph.NodeID) {
	t.subtree = t.subtree[:0]
	t.subtree = append(t.subtree, v)
	t.inSub[v] = true
	for qi := 0; qi < len(t.subtree); qi++ {
		u := t.subtree[qi]
		for c := t.childHead[u]; c >= 0; c = t.childNext[c] {
			t.inSub[c] = true
			t.subtree = append(t.subtree, graph.NodeID(c))
		}
	}
}

func (t *paramTree) releaseSubtree() {
	for _, v := range t.subtree {
		t.inSub[v] = false
	}
}

// breakpoint returns the λ at which non-tree arc id becomes tight, as a
// fraction, and whether it is a forward breakpoint (positive denominator;
// arcs with non-positive denominator never become binding as λ increases).
func (t *paramTree) breakpoint(id graph.ArcID) (Frac, bool) {
	arc := t.g.Arc(id)
	den := t.b[arc.From] + 1 - t.b[arc.To]
	if den <= 0 {
		return Frac{}, false
	}
	return Frac{Num: t.a[arc.From] + arc.Weight - t.a[arc.To], Den: den}, true
}

// pivot re-parents v through arc e = (u, v), updating a and b for the whole
// subtree of v, and returns that subtree (valid until the next collect).
// The caller must already have verified that u is not in the subtree of v.
func (t *paramTree) pivot(e graph.ArcID) []graph.NodeID {
	arc := t.g.Arc(e)
	u, v := arc.From, arc.To
	deltaA := t.a[u] + arc.Weight - t.a[v]
	deltaB := t.b[u] + 1 - t.b[v]
	t.unlinkChild(v)
	t.treeArc[v] = e
	t.linkChild(v)
	t.collectSubtree(v)
	for _, x := range t.subtree {
		t.a[x] += deltaA
		t.b[x] += deltaB
	}
	return t.subtree
}

// cycleThrough returns the cycle formed by the tree path v ⤳ u plus the
// arc e = (u, v), in forward order. u must be in the subtree of v (or equal
// to v, for a self-loop).
func (t *paramTree) cycleThrough(e graph.ArcID) []graph.ArcID {
	arc := t.g.Arc(e)
	u, v := arc.From, arc.To
	var rev []graph.ArcID
	for x := u; x != v; {
		id := t.treeArc[x]
		rev = append(rev, id)
		x = t.g.Arc(id).From
	}
	cycle := make([]graph.ArcID, 0, len(rev)+1)
	for i := len(rev) - 1; i >= 0; i-- {
		cycle = append(cycle, rev[i])
	}
	cycle = append(cycle, e)
	return cycle
}

// koAlg is the Karp–Orlin parametric shortest path algorithm [Discrete
// Applied Math 1981]: start with λ below every cycle mean and a shortest
// path tree of G_λ; repeatedly advance λ to the smallest breakpoint at which
// a non-tree arc becomes tight and pivot it into the tree; stop when a pivot
// would create a cycle — that cycle's mean is λ*. The heap holds one entry
// per candidate arc, which is precisely the granularity difference to YTO
// that the paper's §4.2 heap-operation counts expose. O(nm log n) with the
// Fibonacci heap the paper (and our default) uses.
type koAlg struct{}

func (koAlg) Name() string { return "ko" }

func (koAlg) Solve(g *graph.Graph, opt Options) (Result, error) {
	if err := checkSolveInput(g); err != nil {
		return Result{}, err
	}
	var counts counter.Counts
	minW, _ := g.WeightRange()
	t := newParamTree(g)
	t.initShortestTree(minW - 1)

	h := pq.New[Frac](opt.HeapKind, fracLess, &counts)
	arcNode := make([]pq.Node[Frac], g.NumArcs())

	isTreeArc := func(id graph.ArcID) bool {
		return t.treeArc[g.Arc(id).To] == id
	}
	// refresh recomputes arc id's heap entry from the current tree.
	refresh := func(id graph.ArcID) {
		if isTreeArc(id) {
			if arcNode[id] != nil {
				h.Delete(arcNode[id])
				arcNode[id] = nil
			}
			return
		}
		key, ok := t.breakpoint(id)
		switch {
		case !ok:
			if arcNode[id] != nil {
				h.Delete(arcNode[id])
				arcNode[id] = nil
			}
		case arcNode[id] == nil:
			arcNode[id] = h.Insert(key, int32(id))
		default:
			old := arcNode[id].GetKey()
			if fracLess(key, old) {
				h.DecreaseKey(arcNode[id], key)
			} else if fracLess(old, key) {
				h.Delete(arcNode[id])
				arcNode[id] = h.Insert(key, int32(id))
			}
		}
	}

	for id := graph.ArcID(0); int(id) < g.NumArcs(); id++ {
		refresh(id)
	}

	maxIter := opt.maxIter(g.NumNodes()*g.NumNodes() + 16)
	for iter := 0; iter < maxIter; iter++ {
		if err := opt.checkpoint(); err != nil {
			return Result{}, err
		}
		top := h.ExtractMin()
		if top == nil {
			return Result{}, ErrAcyclic
		}
		counts.Iterations++
		e := graph.ArcID(top.GetValue())
		arcNode[e] = nil
		key := top.GetKey()
		arc := g.Arc(e)

		// Does the pivot close a cycle? (u inside the subtree of v.)
		t.collectSubtree(arc.To)
		closes := t.inSub[arc.From]
		t.releaseSubtree()
		if closes {
			cycle := t.cycleThrough(e)
			return Result{
				Mean:   numeric.NewRat(key.Num, key.Den),
				Cycle:  cycle,
				Exact:  true,
				Counts: counts,
			}, nil
		}

		oldTree := t.treeArc[arc.To]
		sub := t.pivot(e)
		// Recompute keys of every arc with exactly one endpoint in the
		// moved subtree, plus the two arcs that swapped tree status.
		refresh(oldTree)
		for _, x := range sub {
			for _, id := range g.OutArcs(x) {
				if !t.inSub[g.Arc(id).To] {
					refresh(id)
				}
			}
			for _, id := range g.InArcs(x) {
				if !t.inSub[g.Arc(id).From] {
					refresh(id)
				}
			}
		}
		t.releaseSubtree()
	}
	return Result{}, ErrIterationLimit
}

// ytoAlg is the Young–Tarjan–Orlin refinement of KO [Networks 1991]: the
// heap holds one entry per *node*, keyed by the best breakpoint among the
// arcs entering it, so a pivot triggers one heap update per affected node
// instead of one per affected arc. Same pivots, same λ trajectory, fewer
// heap operations — the effect the paper measures in §4.2. O(nm + n² log n).
type ytoAlg struct{}

func (ytoAlg) Name() string { return "yto" }

func (ytoAlg) Solve(g *graph.Graph, opt Options) (Result, error) {
	if err := checkSolveInput(g); err != nil {
		return Result{}, err
	}
	var counts counter.Counts
	minW, _ := g.WeightRange()
	t := newParamTree(g)
	t.initShortestTree(minW - 1)

	h := pq.New[Frac](opt.HeapKind, fracLess, &counts)
	n := g.NumNodes()
	nodeEntry := make([]pq.Node[Frac], n)
	bestArc := make([]graph.ArcID, n)

	// nodeKey recomputes node v's best incoming breakpoint.
	nodeKey := func(v graph.NodeID) (Frac, graph.ArcID, bool) {
		var (
			best    Frac
			bestID  graph.ArcID = -1
			haveKey bool
		)
		for _, id := range g.InArcs(v) {
			if t.treeArc[v] == id {
				continue
			}
			key, ok := t.breakpoint(id)
			if !ok {
				continue
			}
			if !haveKey || fracLess(key, best) {
				best, bestID, haveKey = key, id, true
			}
		}
		return best, bestID, haveKey
	}
	refreshNode := func(v graph.NodeID) {
		key, id, ok := nodeKey(v)
		bestArc[v] = id
		switch {
		case !ok:
			if nodeEntry[v] != nil {
				h.Delete(nodeEntry[v])
				nodeEntry[v] = nil
			}
		case nodeEntry[v] == nil:
			nodeEntry[v] = h.Insert(key, int32(v))
		default:
			old := nodeEntry[v].GetKey()
			if fracLess(key, old) {
				h.DecreaseKey(nodeEntry[v], key)
			} else if fracLess(old, key) {
				h.Delete(nodeEntry[v])
				nodeEntry[v] = h.Insert(key, int32(v))
			}
		}
	}

	for v := graph.NodeID(0); int(v) < n; v++ {
		refreshNode(v)
	}

	dirty := make([]bool, n)
	var dirtyList []graph.NodeID
	markDirty := func(v graph.NodeID) {
		if !dirty[v] {
			dirty[v] = true
			dirtyList = append(dirtyList, v)
		}
	}

	maxIter := opt.maxIter(n*n + 16)
	for iter := 0; iter < maxIter; iter++ {
		if err := opt.checkpoint(); err != nil {
			return Result{}, err
		}
		top := h.ExtractMin()
		if top == nil {
			return Result{}, ErrAcyclic
		}
		counts.Iterations++
		v := graph.NodeID(top.GetValue())
		nodeEntry[v] = nil
		key := top.GetKey()
		e := bestArc[v]
		arc := g.Arc(e)

		t.collectSubtree(arc.To)
		closes := t.inSub[arc.From]
		t.releaseSubtree()
		if closes {
			cycle := t.cycleThrough(e)
			return Result{
				Mean:   numeric.NewRat(key.Num, key.Den),
				Cycle:  cycle,
				Exact:  true,
				Counts: counts,
			}, nil
		}

		sub := t.pivot(e)
		// Affected nodes: every node in the subtree (all its incoming
		// breakpoints moved) and every head of an arc leaving the subtree.
		dirtyList = dirtyList[:0]
		for _, x := range sub {
			markDirty(x)
			for _, id := range g.OutArcs(x) {
				to := g.Arc(id).To
				if !t.inSub[to] {
					markDirty(to)
				}
			}
		}
		t.releaseSubtree()
		for _, x := range dirtyList {
			dirty[x] = false
			refreshNode(x)
		}
	}
	return Result{}, ErrIterationLimit
}
