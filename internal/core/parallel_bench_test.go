package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// benchMultiSCC builds the 8-component graph shared by the driver benchmarks.
func benchMultiSCC(b *testing.B) *graph.Graph {
	b.Helper()
	g, err := gen.MultiSCC(8, 300, 900, 42)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func benchDriver(b *testing.B, parallelism int) {
	g := benchMultiSCC(b)
	opt := Options{Parallelism: parallelism}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MinimumCycleMean(g, howardAlg{}, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveSequentialSCC is the baseline for the parallel-driver
// speedup claim: Howard over 8 strongly connected components, one at a time.
func BenchmarkSolveSequentialSCC(b *testing.B) { benchDriver(b, 1) }

// BenchmarkSolveParallelSCC runs the same workload through the concurrent
// component driver with four workers. On a multi-core machine this should be
// >1.5× faster than BenchmarkSolveSequentialSCC; on a single-core machine the
// two are expected to tie (the pool adds only scheduling overhead).
func BenchmarkSolveParallelSCC(b *testing.B) { benchDriver(b, 4) }

func benchHoward(b *testing.B, pooled bool) {
	g, err := gen.Sprand(gen.SprandConfig{N: 512, M: 2048, MinWeight: -100, MaxWeight: 100, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	if !pooled {
		disableWorkspacePools.Store(true)
		defer disableWorkspacePools.Store(false)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (howardAlg{}).Solve(g, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHowardFresh solves with workspace pooling disabled, so every
// iteration re-allocates all solver scratch — the pre-pooling behaviour.
func BenchmarkHowardFresh(b *testing.B) { benchHoward(b, false) }

// BenchmarkHowardReuse solves with the sync.Pool workspaces active; repeated
// solves should allocate close to nothing beyond the returned cycle.
func BenchmarkHowardReuse(b *testing.B) { benchHoward(b, true) }

func benchKarp(b *testing.B, pooled bool) {
	g, err := gen.Sprand(gen.SprandConfig{N: 256, M: 1024, MinWeight: -100, MaxWeight: 100, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	if !pooled {
		disableWorkspacePools.Store(true)
		defer disableWorkspacePools.Store(false)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (karp2Alg{}).Solve(g, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKarp2Fresh / BenchmarkKarp2Reuse mirror the Howard pair for the
// space-efficient Karp variant.
func BenchmarkKarp2Fresh(b *testing.B) { benchKarp(b, false) }
func BenchmarkKarp2Reuse(b *testing.B) { benchKarp(b, true) }
