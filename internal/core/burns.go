package core

import (
	"math"

	"repro/internal/counter"
	"repro/internal/graph"
	"repro/internal/numeric"
)

func init() {
	register("burns", func() Algorithm { return burnsAlg{} })
}

// burnsAlg is (the minimum-mean-cycle version of) Burns' primal-dual
// algorithm [Burns 1991]; the paper notes the algorithm of Cuninghame-Green
// & Yixun [1996] is identical. It solves the paper's Equation 1 LP
//
//	max λ  s.t.  d(v) − d(u) ≤ w(u,v) − λ  for every arc
//
// directly: starting from the feasible point (d ≡ 0, λ = w_min), each
// iteration rebuilds the critical subgraph (arcs with zero slack) from
// scratch, and — while that subgraph is acyclic — computes longest-path
// levels h(v) inside it and takes the largest step θ that keeps every
// constraint satisfied under the reassignment d(v) ← d(v) − θ·h(v),
// λ ← λ + θ. The levels guarantee critical arcs stay critical, so the
// critical subgraph only gains binding structure until it acquires a cycle,
// at which point λ has reached λ* and the cycle is a minimum mean cycle.
//
// The from-scratch rebuild each iteration is exactly why the paper finds
// Burns slower than KO/YTO despite fewer iterations and no heap operations
// (§4.5). Slack arithmetic uses float64 with an adaptive tolerance; the
// terminating cycle is certified with an exact feasibility check, so the
// returned λ* is exact.
type burnsAlg struct{}

func (burnsAlg) Name() string { return "burns" }

func (burnsAlg) Solve(g *graph.Graph, opt Options) (Result, error) {
	if err := checkSolveInput(g); err != nil {
		return Result{}, err
	}
	n := g.NumNodes()
	m := g.NumArcs()
	var counts counter.Counts

	minW, maxW := g.WeightRange()
	scale := math.Max(1, math.Max(math.Abs(float64(minW)), math.Abs(float64(maxW))))
	tol := 1e-7 * scale
	minTol := 1e-13 * scale

	d := make([]float64, n)
	lambda := float64(minW)

	slack := make([]float64, m)
	critical := make([]bool, m)
	indeg := make([]int32, n)
	h := make([]int64, n)
	order := make([]graph.NodeID, 0, n)

	maxIter := opt.maxIter(4*n*n + 100)
	for iter := 0; iter < maxIter; iter++ {
		if err := opt.checkpoint(); err != nil {
			return Result{}, err
		}
		counts.Iterations++

		// Rebuild the critical subgraph from scratch (the non-incremental
		// step that dominates Burns' running time).
		for id := 0; id < m; id++ {
			counts.Relaxations++
			a := g.Arc(graph.ArcID(id))
			slack[id] = float64(a.Weight) - lambda - (d[a.To] - d[a.From])
			critical[id] = slack[id] <= tol
		}

		// Kahn's algorithm over the critical arcs: topological levels, or a
		// cycle if the order is incomplete.
		for v := range indeg {
			indeg[v] = 0
			h[v] = 0
		}
		for id := 0; id < m; id++ {
			if critical[id] {
				indeg[g.Arc(graph.ArcID(id)).To]++
			}
		}
		order = order[:0]
		for v := graph.NodeID(0); int(v) < n; v++ {
			if indeg[v] == 0 {
				order = append(order, v)
			}
		}
		for qi := 0; qi < len(order); qi++ {
			u := order[qi]
			for _, id := range g.OutArcs(u) {
				if !critical[id] {
					continue
				}
				v := g.Arc(id).To
				if nh := h[u] + 1; nh > h[v] {
					h[v] = nh
				}
				indeg[v]--
				if indeg[v] == 0 {
					order = append(order, v)
				}
			}
		}

		if len(order) < n {
			// The critical subgraph is cyclic: extract a critical cycle and
			// certify it exactly.
			cycle, ok := criticalCycleFrom(g, critical, order, n)
			if !ok {
				// Kahn's invariant guarantees a critical predecessor for
				// every unremoved node, so extraction can only fail through
				// float inconsistency in the slack classification; tighten
				// the tolerance and rebuild rather than crash.
				tol /= 10
				if tol < minTol {
					return Result{}, ErrIterationLimit
				}
				continue
			}
			counts.CyclesExamined++
			mean := numeric.NewRat(g.CycleWeight(cycle), int64(len(cycle)))
			if neg, _ := hasNegativeCycleScaled(g, mean.Num(), mean.Den(), &counts); !neg {
				return Result{Mean: mean, Cycle: cycle, Exact: true, Counts: counts}, nil
			}
			// Float tolerance produced a spurious cycle; tighten and retry.
			tol /= 10
			if tol < minTol {
				return Result{}, ErrIterationLimit
			}
			continue
		}

		// Dual step: θ = min slack(e)/c(e) over arcs with
		// c(e) = 1 + h(u) − h(v) > 0. Critical arcs have h(v) ≥ h(u)+1,
		// hence c ≤ 0: they stay critical.
		theta := math.Inf(1)
		for id := 0; id < m; id++ {
			a := g.Arc(graph.ArcID(id))
			c := 1 + h[a.From] - h[a.To]
			if c <= 0 {
				continue
			}
			if step := slack[id] / float64(c); step < theta {
				theta = step
			}
		}
		if math.IsInf(theta, 1) {
			// No binding constraint would ever be hit: impossible for a
			// cyclic strongly connected graph.
			return Result{}, ErrIterationLimit
		}
		if theta < 0 {
			theta = 0 // guard against float drift
		}
		lambda += theta
		for v := 0; v < n; v++ {
			d[v] -= theta * float64(h[v])
		}
	}
	return Result{}, ErrIterationLimit
}

// criticalCycleFrom extracts a cycle among the critical arcs, given the
// (incomplete) Kahn order: nodes not in the order lie on or downstream of a
// cycle; following critical arcs among them must revisit a node. The false
// return (no remaining critical predecessor for some node) is impossible
// under Kahn's invariant — every unremoved node kept a positive critical
// in-degree from unremoved nodes — and is reported instead of panicking so
// the solver can recover from any float-drift inconsistency.
func criticalCycleFrom(g *graph.Graph, critical []bool, order []graph.NodeID, n int) ([]graph.ArcID, bool) {
	inOrder := make([]bool, n)
	for _, v := range order {
		inOrder[v] = true
	}
	// Every remaining node kept a positive critical in-degree from remaining
	// nodes (that is why Kahn never removed it), so walking critical
	// predecessors within the remaining set must revisit a node — a cycle.
	pred := func(v graph.NodeID) graph.ArcID {
		for _, id := range g.InArcs(v) {
			if critical[id] && !inOrder[g.Arc(id).From] {
				return id
			}
		}
		return -1
	}
	var start graph.NodeID
	for v := graph.NodeID(0); int(v) < n; v++ {
		if !inOrder[v] {
			start = v
			break
		}
	}
	pos := make(map[graph.NodeID]int, 16)
	var rev []graph.ArcID // arcs walked backwards: rev[i] enters the walk's i-th node
	v := start
	for {
		if at, seen := pos[v]; seen {
			// rev[at:] is the cycle, backwards; reverse into forward order.
			seg := rev[at:]
			cycle := make([]graph.ArcID, len(seg))
			for i, id := range seg {
				cycle[len(seg)-1-i] = id
			}
			return cycle, true
		}
		pos[v] = len(rev)
		id := pred(v)
		if id < 0 {
			return nil, false
		}
		rev = append(rev, id)
		v = g.Arc(id).From
	}
}
