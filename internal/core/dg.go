package core

import (
	"repro/internal/counter"
	"repro/internal/graph"
)

func init() {
	register("dg", func() Algorithm { return dgAlg{} })
}

// dgAlg is the Dasdan–Gupta improvement of Karp's algorithm [TCAD 1998]:
// instead of evaluating the recurrence over the predecessors of every node
// at every level, it works breadth-first from the source, visiting only the
// successors of nodes actually reached at the previous level. The work per
// level equals the arcs leaving the reached set — the size of the "unfolded"
// graph — so the running time ranges from Θ(m) to O(nm) depending on how
// quickly the unfolding saturates. On sparse shallow graphs (circuits) the
// savings are large; on SPRAND random graphs the reached set saturates after
// a few levels and the savings are small, exactly as the paper observes in
// §4.4.
type dgAlg struct{}

func (dgAlg) Name() string { return "dg" }

func (dgAlg) Solve(g *graph.Graph, opt Options) (Result, error) {
	if err := checkSolveInput(g); err != nil {
		return Result{}, err
	}
	n := g.NumNodes()
	var counts counter.Counts

	D := make([]int64, (n+1)*n)
	row := func(k int) []int64 { return D[k*n : (k+1)*n] }
	r0 := row(0)
	for i := range r0 {
		r0[i] = infD
	}
	r0[0] = 0

	// reached holds the nodes with a finite D value at the previous level.
	reached := make([]graph.NodeID, 0, n)
	reached = append(reached, 0)
	inNext := make([]bool, n)
	next := make([]graph.NodeID, 0, n)

	for k := 1; k <= n; k++ {
		if err := opt.checkpoint(); err != nil {
			return Result{}, err
		}
		prev, cur := row(k-1), row(k)
		for i := range cur {
			cur[i] = infD
		}
		next = next[:0]
		for _, u := range reached {
			du := prev[u]
			for _, id := range g.OutArcs(u) {
				counts.ArcsVisited++
				counts.Relaxations++
				a := g.Arc(id)
				if nd := du + a.Weight; nd < cur[a.To] {
					cur[a.To] = nd
					if !inNext[a.To] {
						inNext[a.To] = true
						next = append(next, a.To)
					}
				}
			}
		}
		for _, v := range next {
			inNext[v] = false
		}
		reached, next = next, reached
	}
	counts.Iterations = n

	lambda, ok := karpTheorem(row(n), func(k int) []int64 { return row(k) }, n)
	if !ok {
		return Result{}, ErrAcyclic
	}
	return finishExact(g, lambda, nil, counts)
}
