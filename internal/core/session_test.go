package core

import (
	"errors"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// reweight returns a copy of g with every arc weight shifted by delta(id) —
// the structure (endpoints, transit, arc order) is untouched, so a Session
// must treat the result as the same fingerprint.
func reweight(g *graph.Graph, delta func(int) int64) *graph.Graph {
	arcs := append([]graph.Arc(nil), g.Arcs()...)
	for i := range arcs {
		arcs[i].Weight += delta(i)
	}
	return graph.FromArcs(g.NumNodes(), arcs)
}

func TestSessionMatchesMinimumCycleMean(t *testing.T) {
	howard := mustAlgo(t, "howard")
	graphs := []*graph.Graph{
		gen.Cycle(10, 7),
		gen.Torus(5, 6, -50, 50, 3),
		gen.Complete(12, -100, 100, 4),
	}
	if g, err := gen.Sprand(gen.SprandConfig{N: 60, M: 180, MinWeight: -1000, MaxWeight: 1000, Seed: 11}); err == nil {
		graphs = append(graphs, g)
	}
	if g, err := gen.MultiSCC(4, 15, 40, 21); err == nil {
		graphs = append(graphs, g)
	}
	if g, err := gen.Chain(gen.ChainConfig{CoreN: 8, Chains: 4, ChainLen: 25, MinWeight: -20, MaxWeight: 20, SelfLoops: 2, Seed: 5}); err == nil {
		graphs = append(graphs, g)
	}

	s := NewSession(Options{})
	for i, g := range graphs {
		want, err := MinimumCycleMean(g, howard, Options{})
		if err != nil {
			t.Fatalf("graph %d: reference solve: %v", i, err)
		}
		got, err := s.Solve(g)
		if err != nil {
			t.Fatalf("graph %d: session solve: %v", i, err)
		}
		if !got.Mean.Equal(want.Mean) {
			t.Errorf("graph %d: session mean %v, want %v", i, got.Mean, want.Mean)
		}
		if err := g.ValidateCycle(got.Cycle); err != nil {
			t.Errorf("graph %d: session cycle invalid: %v", i, err)
		}
	}
}

func TestSessionWarmStartAfterWeightUpdates(t *testing.T) {
	howard := mustAlgo(t, "howard")
	g, err := gen.Sprand(gen.SprandConfig{N: 100, M: 400, MinWeight: -500, MaxWeight: 500, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(Options{})
	if _, err := s.Solve(g); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.WarmHits != 0 || st.WarmMisses == 0 {
		t.Fatalf("first solve must be cold: %+v", st)
	}

	// A sequence of weight perturbations on the same structure: every
	// subsequent component solve must hit the cache, and every result must
	// match a cold reference solve exactly.
	for round := 1; round <= 5; round++ {
		pg := reweight(g, func(i int) int64 { return int64((i*round)%21 - 10) })
		want, err := MinimumCycleMean(pg, howard, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Solve(pg)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Mean.Equal(want.Mean) {
			t.Fatalf("round %d: warm mean %v, want %v", round, got.Mean, want.Mean)
		}
		if err := pg.ValidateCycle(got.Cycle); err != nil {
			t.Fatalf("round %d: warm cycle invalid: %v", round, err)
		}
	}
	st = s.Stats()
	if st.WarmHits == 0 {
		t.Errorf("weight-only updates never hit the policy cache: %+v", st)
	}
	if st.Solves != 6 {
		t.Errorf("Solves = %d, want 6", st.Solves)
	}
}

func TestSessionInvalidationOnStructuralChange(t *testing.T) {
	howard := mustAlgo(t, "howard")
	g, err := gen.Sprand(gen.SprandConfig{N: 50, M: 150, MinWeight: 1, MaxWeight: 100, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(Options{})
	if _, err := s.Solve(g); err != nil {
		t.Fatal(err)
	}
	misses := s.Stats().WarmMisses

	// Structural changes of every kind: added arc, removed arc, rewired
	// endpoint, changed transit. Each must change the fingerprint, so the
	// solve runs cold (stale policies are never consulted), and each result
	// must match the reference.
	arcs := g.Arcs()
	variants := []*graph.Graph{
		// Arc added.
		graph.FromArcs(g.NumNodes(), append(append([]graph.Arc(nil), arcs...), graph.Arc{From: 0, To: graph.NodeID(g.NumNodes() / 2), Weight: 5, Transit: 1})),
		// Arc removed.
		graph.FromArcs(g.NumNodes(), append([]graph.Arc(nil), arcs[:len(arcs)-1]...)),
	}
	// Endpoint rewired.
	rw := append([]graph.Arc(nil), arcs...)
	rw[len(rw)-1].To = (rw[len(rw)-1].To + 1) % graph.NodeID(g.NumNodes())
	if rw[len(rw)-1].To == rw[len(rw)-1].From {
		rw[len(rw)-1].To = (rw[len(rw)-1].To + 1) % graph.NodeID(g.NumNodes())
	}
	variants = append(variants, graph.FromArcs(g.NumNodes(), rw))
	// Transit changed (structural for the ratio view of the graph).
	tr := append([]graph.Arc(nil), arcs...)
	tr[0].Transit = 3
	variants = append(variants, graph.FromArcs(g.NumNodes(), tr))

	for i, vg := range variants {
		before := s.Stats()
		got, err := s.Solve(vg)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		after := s.Stats()
		if after.WarmHits != before.WarmHits {
			t.Errorf("variant %d: structural change hit the cache (hits %d -> %d)", i, before.WarmHits, after.WarmHits)
		}
		if after.WarmMisses <= misses {
			t.Errorf("variant %d: expected a cold component solve", i)
		}
		want, err := MinimumCycleMean(vg, howard, Options{})
		if err != nil {
			t.Fatalf("variant %d: reference: %v", i, err)
		}
		if !got.Mean.Equal(want.Mean) {
			t.Errorf("variant %d: mean %v, want %v", i, got.Mean, want.Mean)
		}
		misses = after.WarmMisses
	}
}

func TestSessionReset(t *testing.T) {
	g := gen.Cycle(20, 3)
	s := NewSession(Options{})
	if _, err := s.Solve(g); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(g); err != nil {
		t.Fatal(err)
	}
	if s.Stats().WarmHits == 0 {
		t.Fatal("repeat solve must warm-start")
	}
	s.Reset()
	if _, err := s.Solve(g); err != nil {
		t.Fatal(err)
	}
	if hits := s.Stats().WarmHits; hits != 1 {
		t.Errorf("post-Reset solve must be cold (hits = %d, want 1)", hits)
	}
}

func TestSessionStatsCountFailedSolves(t *testing.T) {
	// Regression: Solves used to be incremented only on the success path, so
	// a failed call (acyclic input, certification failure, numeric overflow)
	// left Solves < number of Solve invocations and there was no way to tell
	// how many calls errored. Every call must count, and failures must be
	// tallied in Errors.
	b := graph.NewBuilder(3, 2)
	b.AddNodes(3)
	b.AddArc(0, 1, 1)
	b.AddArc(1, 2, 1)
	dag := b.Build()

	s := NewSession(Options{})
	if _, err := s.Solve(dag); !errors.Is(err, ErrAcyclic) {
		t.Fatalf("Solve(dag) = %v, want ErrAcyclic", err)
	}
	st := s.Stats()
	if st.Solves != 1 {
		t.Errorf("after one failed call, Solves = %d, want 1", st.Solves)
	}
	if st.Errors != 1 {
		t.Errorf("after one failed call, Errors = %d, want 1", st.Errors)
	}

	// A successful call after the failure: Solves counts both, Errors only
	// the failure, and their difference is the success count.
	if _, err := s.Solve(gen.Cycle(5, 2)); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if st.Solves != 2 || st.Errors != 1 {
		t.Errorf("stats = {Solves: %d, Errors: %d}, want {2, 1}", st.Solves, st.Errors)
	}
}

func TestValidWarmPolicy(t *testing.T) {
	g := gen.Cycle(4, 1)
	// The only valid policy of a 4-cycle: arc i leaves node i.
	good := []graph.ArcID{0, 1, 2, 3}
	if !validWarmPolicy(g, good) {
		t.Error("valid policy rejected")
	}
	cases := [][]graph.ArcID{
		{0, 1, 2},     // wrong length
		{1, 1, 2, 3},  // arc 1 does not leave node 0
		{0, 1, 2, 99}, // out of range
		{0, 1, 2, -1}, // negative
		{3, 0, 1, 2},  // every arc leaves the wrong node
	}
	for i, warm := range cases {
		if validWarmPolicy(g, warm) {
			t.Errorf("case %d: invalid policy accepted", i)
		}
	}
}

func TestSessionWarmStartReducesIterations(t *testing.T) {
	g, err := gen.Sprand(gen.SprandConfig{N: 300, M: 1200, MinWeight: -10000, MaxWeight: 10000, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(Options{})
	cold, err := s.Solve(g)
	if err != nil {
		t.Fatal(err)
	}
	// Tiny perturbation: the old optimal policy should be optimal or nearly
	// optimal, so the warm solve must not take more iterations than cold.
	pg := reweight(g, func(i int) int64 { return int64(i % 3) })
	warm, err := s.Solve(pg)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Counts.Iterations > cold.Counts.Iterations {
		t.Errorf("warm solve took %d iterations, cold took %d", warm.Counts.Iterations, cold.Counts.Iterations)
	}
}
