package core

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/verify"
)

// TestPortfolioMatchesOracle checks the portfolio against the brute-force
// cycle-enumeration oracle on small random graphs: the racing winner may be
// any roster member, but the mean must be the exact optimum and the cycle
// must attain it.
func TestPortfolioMatchesOracle(t *testing.T) {
	p := NewPortfolio()
	for seed := uint64(1); seed <= 40; seed++ {
		n := 3 + int(seed%8)
		g, err := gen.Sprand(gen.SprandConfig{N: n, M: 3 * n, MinWeight: -50, MaxWeight: 50, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := verify.BruteForceMinMean(g)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Solve(g, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Exact || !res.Mean.Equal(want) {
			t.Fatalf("seed %d: portfolio mean %v (exact=%v), oracle %v", seed, res.Mean, res.Exact, want)
		}
		if err := verify.CheckCycleIsOptimal(g, res.Mean, res.Cycle); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	if live := portfolioLive.Load(); live != 0 {
		t.Fatalf("%d portfolio goroutines still live after solves", live)
	}
}

// TestPortfolioUnderParallelDriver races the portfolio inside the
// concurrent SCC driver (nested concurrency) and cross-checks against the
// plain sequential Howard run.
func TestPortfolioUnderParallelDriver(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		g, err := gen.MultiSCC(4, 8, 24, seed)
		if err != nil {
			t.Fatal(err)
		}
		want, err := MinimumCycleMean(g, howardAlg{}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := MinimumCycleMean(g, NewPortfolio(), Options{Parallelism: 3})
		if err != nil {
			t.Fatal(err)
		}
		if !got.Mean.Equal(want.Mean) {
			t.Fatalf("seed %d: portfolio driver mean %v, howard %v", seed, got.Mean, want.Mean)
		}
		if err := verify.CheckCycleIsOptimal(g, got.Mean, got.Cycle); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	if live := portfolioLive.Load(); live != 0 {
		t.Fatalf("%d portfolio goroutines still live after solves", live)
	}
}

// spinAlg runs forever until canceled, instrumenting every lifecycle stage
// so the tests can prove losers are stopped promptly and joined.
type spinAlg struct {
	started  *atomic.Int64
	canceled *atomic.Int64
	exited   *atomic.Int64
}

func (s spinAlg) Name() string { return "spin-stub" }

func (s spinAlg) Solve(g *graph.Graph, opt Options) (Result, error) {
	s.started.Add(1)
	defer s.exited.Add(1)
	for {
		if err := opt.checkpoint(); err != nil {
			s.canceled.Add(1)
			return Result{}, err
		}
		time.Sleep(20 * time.Microsecond)
	}
}

// TestPortfolioCancelsLosers races Howard against a never-terminating stub:
// the stub must observe cancellation and exit before Solve returns, and the
// live-goroutine counter must drop back to zero — no leaks.
func TestPortfolioCancelsLosers(t *testing.T) {
	g := gen.Cycle(16, 3)
	var started, canceled, exited atomic.Int64
	p := NewPortfolio(howardAlg{}, spinAlg{&started, &canceled, &exited})
	for i := 0; i < 10; i++ {
		res, err := p.Solve(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Exact || res.Mean.Float64() != 3 {
			t.Fatalf("res = %+v, want exact mean 3", res)
		}
	}
	if started.Load() != 10 || canceled.Load() != 10 || exited.Load() != 10 {
		t.Fatalf("stub lifecycle: started=%d canceled=%d exited=%d, want 10/10/10",
			started.Load(), canceled.Load(), exited.Load())
	}
	if live := portfolioLive.Load(); live != 0 {
		t.Fatalf("%d portfolio goroutines still live after solves", live)
	}
}

// TestPortfolioContextCancellation cancels the caller's context while only
// non-terminating solvers are racing; SolveContext must unwind with
// ErrCanceled and join every racer.
func TestPortfolioContextCancellation(t *testing.T) {
	g := gen.Cycle(8, 1)
	var started, canceled, exited atomic.Int64
	stub := spinAlg{&started, &canceled, &exited}
	p := NewPortfolio(stub, stub)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	_, err := p.SolveContext(ctx, g, Options{})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if started.Load() != 2 || canceled.Load() != 2 || exited.Load() != 2 {
		t.Fatalf("stub lifecycle: started=%d canceled=%d exited=%d, want 2/2/2",
			started.Load(), canceled.Load(), exited.Load())
	}
	if live := portfolioLive.Load(); live != 0 {
		t.Fatalf("%d portfolio goroutines still live", live)
	}
}

// errAlg always fails.
type errAlg struct{ err error }

func (e errAlg) Name() string { return "err-stub" }
func (e errAlg) Solve(g *graph.Graph, opt Options) (Result, error) {
	return Result{}, e.err
}

// TestPortfolioAllFail propagates a roster-wide failure instead of hanging.
func TestPortfolioAllFail(t *testing.T) {
	g := gen.Cycle(4, 1)
	boom := errors.New("boom")
	p := NewPortfolio(errAlg{boom}, errAlg{boom})
	_, err := p.Solve(g, Options{})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

// TestPortfolioAllFailReportsEveryError is a regression for the masked-error
// bug: when every racer failed, SolveContext used to return only the
// lowest-index racer's error, hiding the others. The failures are now joined,
// so errors.Is works on every member's sentinel and each failure is
// attributed to its member by name.
func TestPortfolioAllFailReportsEveryError(t *testing.T) {
	g := gen.Cycle(4, 1)
	errA := errors.New("first racer exploded")
	errB := errors.New("second racer exploded")
	p := NewPortfolio(errAlg{errA}, errAlg{errB})
	_, err := p.Solve(g, Options{})
	if err == nil {
		t.Fatal("roster-wide failure returned nil error")
	}
	if !errors.Is(err, errA) {
		t.Errorf("joined error does not match the first racer's sentinel: %v", err)
	}
	if !errors.Is(err, errB) {
		t.Errorf("joined error masks the second racer's sentinel: %v", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, errA.Error()) || !strings.Contains(msg, errB.Error()) {
		t.Errorf("message omits a member failure: %q", msg)
	}
}

// TestPortfolioByName covers the ByName spellings.
func TestPortfolioByName(t *testing.T) {
	a, err := ByName("portfolio")
	if err != nil {
		t.Fatal(err)
	}
	p, ok := a.(*Portfolio)
	if !ok || len(p.Algorithms()) != len(defaultPortfolioRoster) {
		t.Fatalf("ByName(portfolio) = %T with %d members", a, len(p.Algorithms()))
	}
	if p.Name() != "portfolio" {
		t.Fatalf("Name() = %q", p.Name())
	}
	a, err = ByName("portfolio:howard+karp")
	if err != nil {
		t.Fatal(err)
	}
	if p := a.(*Portfolio); len(p.Algorithms()) != 2 {
		t.Fatalf("portfolio:howard+karp has %d members", len(p.Algorithms()))
	}
	if _, err := ByName("portfolio:nope"); err == nil {
		t.Fatal("unknown portfolio member accepted")
	}
	if _, err := ByName("portfolio:"); err == nil {
		t.Fatal("empty roster accepted")
	}
	// A portfolio result must agree with a plain solver through ByName.
	g := gen.Cycle(5, 7)
	res, err := MinimumCycleMean(g, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean.Float64() != 7 {
		t.Fatalf("mean = %v, want 7", res.Mean)
	}
}

// TestOptionsCanceledDefault: a zero Options never reports cancellation.
func TestOptionsCanceledDefault(t *testing.T) {
	if (Options{}).Canceled() {
		t.Fatal("zero Options reports canceled")
	}
}
