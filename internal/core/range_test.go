package core

import (
	"errors"
	"testing"

	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/prep"
)

// nearLimitGraphs builds instances whose weights sit exactly at the
// ±(2^31−1) contract boundary — the largest magnitudes checkSolveInput
// admits — in shapes that stress different solver internals: Lawler's grid
// products, the parametric trees' breakpoint fractions, Karp's DP table, and
// the kernelization pipeline's contraction sums.
func nearLimitGraphs() map[string]*graph.Graph {
	lim := int64(MaxWeightMagnitude)
	return map[string]*graph.Graph{
		// Two-cycle swinging between the extremes: λ* = 0.
		"swing": graph.FromArcs(2, []graph.Arc{
			{From: 0, To: 1, Weight: lim, Transit: 1},
			{From: 1, To: 0, Weight: -lim, Transit: 1},
		}),
		// All-max triangle: λ* = lim.
		"allmax": graph.FromArcs(3, []graph.Arc{
			{From: 0, To: 1, Weight: lim, Transit: 1},
			{From: 1, To: 2, Weight: lim, Transit: 1},
			{From: 2, To: 0, Weight: lim, Transit: 1},
		}),
		// All-min triangle: λ* = −lim.
		"allmin": graph.FromArcs(3, []graph.Arc{
			{From: 0, To: 1, Weight: -lim, Transit: 1},
			{From: 1, To: 2, Weight: -lim, Transit: 1},
			{From: 2, To: 0, Weight: -lim, Transit: 1},
		}),
		// Non-trivial choice between a near-limit self-loop and a mixed
		// cycle: λ* = −1 via the 4-cycle of mean (−lim + lim−2 − 2 − 0)/4.
		"choice": graph.FromArcs(4, []graph.Arc{
			{From: 0, To: 1, Weight: -lim, Transit: 1},
			{From: 1, To: 2, Weight: lim - 2, Transit: 1},
			{From: 2, To: 3, Weight: -2, Transit: 1},
			{From: 3, To: 0, Weight: 0, Transit: 1},
			{From: 1, To: 1, Weight: lim, Transit: 1},
		}),
		// Chain-heavy shape so kernelization's contraction actually sums
		// near-limit weights (sums stay within int64 but far outside the
		// per-arc contract).
		"chain": graph.FromArcs(6, []graph.Arc{
			{From: 0, To: 1, Weight: lim, Transit: 1},
			{From: 1, To: 2, Weight: lim, Transit: 1},
			{From: 2, To: 3, Weight: lim, Transit: 1},
			{From: 3, To: 4, Weight: -lim, Transit: 1},
			{From: 4, To: 5, Weight: -lim, Transit: 1},
			{From: 5, To: 0, Weight: -lim + 6, Transit: 1},
		}),
	}
}

// nearLimitWant gives the exact λ* for each nearLimitGraphs entry.
func nearLimitWant() map[string]numeric.Rat {
	lim := int64(MaxWeightMagnitude)
	return map[string]numeric.Rat{
		"swing":  numeric.FromInt(0),
		"allmax": numeric.FromInt(lim),
		"allmin": numeric.FromInt(-lim),
		"choice": numeric.FromInt(-1),
		"chain":  numeric.FromInt(1),
	}
}

// TestNearLimitAllAlgorithms drives every registered algorithm (and the
// portfolio) at the weight-contract boundary: each must either return the
// exact λ* or a typed range error — never panic, never a wrong answer.
func TestNearLimitAllAlgorithms(t *testing.T) {
	graphs := nearLimitGraphs()
	want := nearLimitWant()
	algos := All()
	portfolio, err := ByName("portfolio")
	if err != nil {
		t.Fatal(err)
	}
	algos = append(algos, portfolio)
	for name, g := range graphs {
		for _, algo := range algos {
			res, err := MinimumCycleMean(g, algo, Options{Certify: true})
			if err != nil {
				if !errors.Is(err, ErrNumericRange) && !errors.Is(err, ErrWeightRange) && !errors.Is(err, ErrIterationLimit) {
					t.Errorf("%s/%s: err = %v, want a typed range error", name, algo.Name(), err)
				}
				continue
			}
			if !res.Mean.Equal(want[name]) {
				t.Errorf("%s/%s: λ* = %v, want %v", name, algo.Name(), res.Mean, want[name])
			}
			if res.Certificate == nil {
				t.Errorf("%s/%s: certified solve carries no certificate", name, algo.Name())
			}
		}
	}
}

// TestNearLimitLawlerGrid pins Lawler's binary search specifically: its grid
// denominator multiplies near-limit weights, the scenario the
// scaledOverflows guard exists for.
func TestNearLimitLawlerGrid(t *testing.T) {
	lawler := mustAlgo(t, "lawler")
	want := nearLimitWant()
	for name, g := range nearLimitGraphs() {
		res, err := lawler.Solve(g, Options{})
		if err != nil {
			if !errors.Is(err, ErrNumericRange) && !errors.Is(err, ErrWeightRange) {
				t.Errorf("%s: err = %v, want typed range error", name, err)
			}
			continue
		}
		if !res.Mean.Equal(want[name]) {
			t.Errorf("%s: λ* = %v, want %v", name, res.Mean, want[name])
		}
	}
}

// TestNearLimitParametricBreakpoints pins the parametric tree algorithms
// (ko, yto and variants), whose breakpoint fractions subtract near-limit
// path weights.
func TestNearLimitParametricBreakpoints(t *testing.T) {
	want := nearLimitWant()
	for _, algoName := range []string{"ko", "yto", "karp", "karp2", "dg", "dg2"} {
		algo := mustAlgo(t, algoName)
		for name, g := range nearLimitGraphs() {
			res, err := MinimumCycleMean(g, algo, Options{})
			if err != nil {
				if !errors.Is(err, ErrNumericRange) && !errors.Is(err, ErrWeightRange) && !errors.Is(err, ErrIterationLimit) {
					t.Errorf("%s/%s: err = %v, want typed range error", name, algoName, err)
				}
				continue
			}
			if !res.Mean.Equal(want[name]) {
				t.Errorf("%s/%s: λ* = %v, want %v", name, algoName, res.Mean, want[name])
			}
		}
	}
}

// TestNearLimitKernelContraction runs the prep pipeline on the chain-heavy
// boundary instance: contraction sums leave the per-arc contract range, and
// the kernelized solve must still agree with the raw one (or fail typed).
func TestNearLimitKernelContraction(t *testing.T) {
	howard := mustAlgo(t, "howard")
	want := nearLimitWant()
	for name, g := range nearLimitGraphs() {
		kern := prep.Kernelize(g, prep.Mean)
		if kern == nil {
			continue
		}
		res, err := MinimumCycleMean(g, howard, Options{Kernelize: true, Certify: true})
		if err != nil {
			if !errors.Is(err, ErrNumericRange) && !errors.Is(err, ErrWeightRange) {
				t.Errorf("%s: kernelized err = %v, want typed range error", name, err)
			}
			continue
		}
		if !res.Mean.Equal(want[name]) {
			t.Errorf("%s: kernelized λ* = %v, want %v", name, res.Mean, want[name])
		}
	}
}

// TestNearLimitSession drives the warm-start path at the boundary twice, so
// the second solve exercises a warm policy over near-limit weights.
func TestNearLimitSession(t *testing.T) {
	want := nearLimitWant()
	sess := NewSession(Options{Certify: true})
	for round := 0; round < 2; round++ {
		for name, g := range nearLimitGraphs() {
			res, err := sess.Solve(g)
			if err != nil {
				if !errors.Is(err, ErrNumericRange) && !errors.Is(err, ErrWeightRange) {
					t.Errorf("round %d %s: err = %v, want typed range error", round, name, err)
				}
				continue
			}
			if !res.Mean.Equal(want[name]) {
				t.Errorf("round %d %s: λ* = %v, want %v", round, name, res.Mean, want[name])
			}
		}
	}
}
