package core

import (
	"fmt"

	"repro/internal/counter"
	"repro/internal/graph"
	"repro/internal/numeric"
)

// scaledBound reports whether Bellman–Ford distance arithmetic on weights
// q·w − p can overflow int64 for this graph, i.e. whether
// n · max|q·w − p| stays comfortably inside the int64 range.
func scaledOverflows(g *graph.Graph, p, q int64) bool {
	minW, maxW := g.WeightRange()
	absW := maxW
	if -minW > absW {
		absW = -minW
	}
	perArc := q*absW + abs64(p)
	if perArc < 0 {
		return true
	}
	n := int64(g.NumNodes()) + 1
	const safe = int64(1) << 62
	return perArc > safe/n
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// bellmanFordScaled runs Bellman–Ford on the reduced weights q·w(e) − p
// (the graph G_λ with λ = p/q, scaled to exact integers) from a virtual
// source connected to every node with weight 0. It returns the distance
// vector when no negative cycle exists, or a negative cycle (as arc IDs)
// otherwise. counts, if non-nil, accumulates relaxation counts.
func bellmanFordScaled(g *graph.Graph, p, q int64, counts *counter.Counts) (dist []int64, negCycle []graph.ArcID) {
	n := g.NumNodes()
	return bellmanFordScaledInto(g, p, q, counts, make([]int64, n), make([]graph.ArcID, n))
}

// bellmanFordScaledInto is bellmanFordScaled with caller-provided scratch
// (both slices must have length g.NumNodes()); the returned dist aliases
// the provided slice. Hot paths pass pooled workspace slices so repeated
// feasibility checks allocate nothing.
func bellmanFordScaledInto(g *graph.Graph, p, q int64, counts *counter.Counts, dist []int64, parent []graph.ArcID) ([]int64, []graph.ArcID) {
	n := g.NumNodes()
	for i := range dist {
		dist[i] = 0
	}
	for i := range parent {
		parent[i] = -1
	}
	arcs := g.Arcs()
	lastChanged := graph.NodeID(-1)
	for pass := 0; pass < n; pass++ {
		lastChanged = -1
		for id, a := range arcs {
			if counts != nil {
				counts.Relaxations++
			}
			w := q*a.Weight - p
			if nd := dist[a.From] + w; nd < dist[a.To] {
				dist[a.To] = nd
				parent[a.To] = graph.ArcID(id)
				lastChanged = a.To
			}
		}
		if lastChanged == -1 {
			return dist, nil
		}
	}
	// A node changed on the n-th pass: a negative cycle exists. Walk the
	// parent chain n steps to land inside the cycle, then collect it.
	v := lastChanged
	for i := 0; i < n; i++ {
		v = g.Arc(parent[v]).From
	}
	start := v
	var rev []graph.ArcID
	for {
		id := parent[v]
		rev = append(rev, id)
		v = g.Arc(id).From
		if v == start {
			break
		}
	}
	// rev lists arcs backwards (ending at start); reverse to get a forward
	// closed walk.
	negCycle := make([]graph.ArcID, len(rev))
	for i, id := range rev {
		negCycle[len(rev)-1-i] = id
	}
	return nil, negCycle
}

// hasNegativeCycleScaled reports whether G_{p/q} has a negative cycle,
// returning one if so.
func hasNegativeCycleScaled(g *graph.Graph, p, q int64, counts *counter.Counts) (bool, []graph.ArcID) {
	n := g.NumNodes()
	return hasNegativeCycleScaledInto(g, p, q, counts, make([]int64, n), make([]graph.ArcID, n))
}

// hasNegativeCycleScaledInto is hasNegativeCycleScaled with caller-provided
// scratch; see bellmanFordScaledInto.
func hasNegativeCycleScaledInto(g *graph.Graph, p, q int64, counts *counter.Counts, dist []int64, parent []graph.ArcID) (bool, []graph.ArcID) {
	if counts != nil {
		counts.NegativeCycleChecks++
	}
	_, neg := bellmanFordScaledInto(g, p, q, counts, dist, parent)
	return neg != nil, neg
}

// extractCriticalCycle returns a cycle of g whose mean is exactly lambda,
// given that lambda equals the minimum cycle mean λ*. It computes shortest
// distances in the scaled G_λ*, keeps the tight arcs (zero reduced slack —
// the paper's criticality criterion), and returns any cycle of the tight
// subgraph; every such cycle telescopes to reduced weight zero, i.e. mean
// exactly λ*.
func extractCriticalCycle(g *graph.Graph, lambda numeric.Rat) ([]graph.ArcID, error) {
	p, q := lambda.Num(), lambda.Den()
	if scaledOverflows(g, p, q) {
		return nil, ErrWeightRange
	}
	n := g.NumNodes()
	ws := getExtractWS(n)
	defer ws.release()
	dist, neg := bellmanFordScaledInto(g, p, q, nil, ws.dist, ws.parent)
	if neg != nil {
		return nil, fmt.Errorf("core: λ = %v is below the minimum cycle mean", lambda)
	}
	// Find a cycle among tight arcs with an iterative DFS (white/gray/black).
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := ws.color
	onPath := ws.onPath // arc taken to reach each gray node
	stack := ws.stack
	defer func() { ws.onPath, ws.stack = onPath, stack }()
	for root := graph.NodeID(0); int(root) < n; root++ {
		if color[root] != white {
			continue
		}
		color[root] = gray
		stack = append(stack[:0], ecFrame{v: root})
		onPath = onPath[:0]
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			out := g.OutArcs(f.v)
			advanced := false
			for int(f.arc) < len(out) {
				id := out[f.arc]
				f.arc++
				a := g.Arc(id)
				if dist[a.From]+q*a.Weight-p != dist[a.To] {
					continue // not tight
				}
				w := a.To
				switch color[w] {
				case gray:
					// Found a tight cycle: the path arcs from w onward, plus id.
					var cycle []graph.ArcID
					// Locate w on the current stack.
					idx := -1
					for i := range stack {
						if stack[i].v == w {
							idx = i
							break
						}
					}
					for i := idx; i < len(stack)-1; i++ {
						cycle = append(cycle, onPath[i])
					}
					cycle = append(cycle, id)
					return cycle, nil
				case white:
					color[w] = gray
					onPath = append(onPath, id)
					stack = append(stack, ecFrame{v: w})
					advanced = true
				}
				if advanced {
					break
				}
			}
			if advanced {
				continue
			}
			color[f.v] = black
			stack = stack[:len(stack)-1]
			if len(onPath) > 0 {
				onPath = onPath[:len(onPath)-1]
			}
		}
	}
	return nil, fmt.Errorf("core: no cycle of mean %v exists (λ* is smaller than claimed)", lambda)
}

// finishExact packages an exact λ* into a Result, extracting a critical
// cycle unless the algorithm already produced one.
func finishExact(g *graph.Graph, lambda numeric.Rat, cycle []graph.ArcID, counts counter.Counts) (Result, error) {
	if len(cycle) == 0 {
		var err error
		cycle, err = extractCriticalCycle(g, lambda)
		if err != nil {
			return Result{}, err
		}
	}
	return Result{Mean: lambda, Cycle: cycle, Exact: true, Counts: counts}, nil
}

// policyCycles finds all cycles of a functional graph given by one chosen
// out-arc per node (arc IDs into g; policy[v] must leave v). fn is called
// once per cycle with the arc sequence; the slice is reused across calls.
func policyCycles(g *graph.Graph, policy []graph.ArcID, fn func(cycle []graph.ArcID)) {
	var s pcScratch
	s.policyCycles(g, policy, fn)
}

// policyCycles is the scratch-reusing form of the free function: Howard's
// algorithm calls it once per policy iteration, so the traversal buffers
// live in the solver's pooled workspace instead of being reallocated.
func (s *pcScratch) policyCycles(g *graph.Graph, policy []graph.ArcID, fn func(cycle []graph.ArcID)) {
	n := len(policy)
	s.state = grow(s.state, n) // 0 unvisited, 1 in current walk, 2 done
	for i := range s.state {
		s.state[i] = 0
	}
	s.walkPos = grow(s.walkPos, n)
	state, walkPos := s.state, s.walkPos
	walk := s.walk[:0]
	cycle := s.cycle[:0]
	defer func() { s.walk, s.cycle = walk, cycle }()
	for root := 0; root < n; root++ {
		if state[root] != 0 {
			continue
		}
		walk = walk[:0]
		v := graph.NodeID(root)
		for state[v] == 0 {
			state[v] = 1
			walkPos[v] = int32(len(walk))
			walk = append(walk, v)
			v = g.Arc(policy[v]).To
		}
		if state[v] == 1 {
			// Nodes from walkPos[v] onward form a cycle.
			start := walkPos[v]
			cycle = cycle[:0]
			for i := start; i < int32(len(walk)); i++ {
				cycle = append(cycle, policy[walk[i]])
			}
			fn(cycle)
		}
		for _, u := range walk {
			state[u] = 2
		}
	}
}
