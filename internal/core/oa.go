package core

import (
	"fmt"
	"sort"

	"repro/internal/counter"
	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/pq"
)

func init() {
	register("oa1", func() Algorithm { return oaAlg{name: "oa1", oracle: (*assignInstance).solveAuction} })
	register("oa2", func() Algorithm { return oaAlg{name: "oa2", oracle: (*assignInstance).solveSSP} })
}

// oaAlg realizes the Orlin–Ahuja scaling algorithms [Math. Programming
// 1992] through their central reduction: G_λ contains a negative cycle iff
// the assignment problem over the bipartite graph with arc costs w(u,v) − λ
// and zero-cost diagonal "skip" arcs has a negative optimum (the optimal
// assignment is a minimum-weight cycle cover).
//
// The λ search mirrors their approximate binary search: λ is bisected over
// a fixed-denominator grid, each probe answered by solving the assignment
// instance; when the grid is exhausted the answer is known only to the grid
// resolution, and an exact endgame re-probes at the exact mean of the best
// negative cycle recorded (each such probe either certifies optimality or
// produces a strictly better cycle, so it terminates).
//
// OA1 solves each assignment probe with the ε-scaling *auction* algorithm
// (costs scaled by n+1 so the final ε < 1 phase is exact); OA2 uses the
// successive-shortest-path component of the hybrid (Dijkstra with
// potentials). As in the paper, the asymptotically attractive scaling
// machinery is not competitive in practice and degrades dramatically on the
// m = n Hamiltonian-cycle family (Table 2's 300-second OA1 outliers).
type oaAlg struct {
	name   string
	oracle func(inst *assignInstance, p, q int64, counts *counter.Counts) (int64, []int32)
}

func (a oaAlg) Name() string { return a.name }

// gridDenominator picks the power-of-two probe denominator: fine enough to
// localize λ* well, coarse enough that the auction's (n+1)-scaled prices
// provably fit in int64.
func gridDenominator(g *graph.Graph) int64 {
	minW, maxW := g.WeightRange()
	absW := maxW
	if -minW > absW {
		absW = -minW
	}
	if absW < 1 {
		absW = 1
	}
	n := int64(g.NumNodes())
	// Price bound ≈ 4·n·(n+1)·S·absW must stay below 2^61.
	limit := (int64(1) << 61) / (4 * n * (n + 1) * absW)
	s := int64(1 << 16)
	for s > limit && s > 2 {
		s >>= 1
	}
	return s
}

func (a oaAlg) Solve(g *graph.Graph, opt Options) (Result, error) {
	if err := checkSolveInput(g); err != nil {
		return Result{}, err
	}
	var counts counter.Counts
	inst := newAssignInstance(g)

	var (
		bestMean  numeric.Rat
		bestCycle []graph.ArcID
		haveBest  bool
	)
	record := func(cycle []graph.ArcID) {
		mean := numeric.NewRat(g.CycleWeight(cycle), int64(len(cycle)))
		if !haveBest || mean.Less(bestMean) {
			bestMean, bestCycle, haveBest = mean, cycle, true
		}
	}

	// Phase 1: binary search over the grid λ = x/S.
	S := gridDenominator(g)
	if opt.Epsilon > 0 {
		for S > 2 && 1/float64(S) < opt.Epsilon {
			S >>= 1
		}
	}
	minW, maxW := g.WeightRange()
	lo, hi := S*minW, S*maxW+1
	for hi-lo > 1 {
		counts.Iterations++
		counts.NegativeCycleChecks++
		mid := lo + (hi-lo)/2
		total, match := a.oracle(inst, mid, S, &counts)
		if total >= 0 {
			lo = mid
			continue
		}
		hi = mid
		cycle := inst.negativeCycle(match, mid, S)
		if cycle == nil {
			return Result{}, fmt.Errorf("core: %s: negative assignment without negative cycle", a.name)
		}
		counts.CyclesExamined++
		record(cycle)
	}
	if opt.Epsilon > 0 {
		// Approximate mode, as in the paper: report the best cycle found
		// (its mean is within the grid resolution of λ*).
		if !haveBest {
			return Result{Mean: numeric.NewRat(lo, S), Exact: false, Counts: counts}, nil
		}
		return Result{Mean: bestMean, Cycle: bestCycle, Exact: false, Counts: counts}, nil
	}

	// Phase 2: exact endgame by cycle refinement from the best cycle known
	// (or, if every probe was feasible, from an arbitrary policy cycle).
	if !haveBest {
		policy := make([]graph.ArcID, g.NumNodes())
		for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
			policy[v] = g.OutArcs(v)[0]
		}
		policyCycles(g, policy, func(cycle []graph.ArcID) {
			c := make([]graph.ArcID, len(cycle))
			copy(c, cycle)
			record(c)
		})
		if !haveBest {
			return Result{}, ErrAcyclic
		}
	}
	maxIter := opt.maxIter(g.NumNodes()*g.NumArcs() + 64)
	for iter := 0; iter < maxIter; iter++ {
		if err := opt.checkpoint(); err != nil {
			return Result{}, err
		}
		counts.Iterations++
		counts.NegativeCycleChecks++
		p, q := bestMean.Num(), bestMean.Den()
		total, match := a.oracle(inst, p, q, &counts)
		if total >= 0 {
			// No cycle with mean below bestMean, and bestCycle attains it.
			return Result{Mean: bestMean, Cycle: bestCycle, Exact: true, Counts: counts}, nil
		}
		cycle := inst.negativeCycle(match, p, q)
		if cycle == nil {
			return Result{}, fmt.Errorf("core: %s: negative assignment without negative cycle", a.name)
		}
		mean := numeric.NewRat(g.CycleWeight(cycle), int64(len(cycle)))
		if !mean.Less(bestMean) {
			return Result{}, fmt.Errorf("core: %s: cycle refinement did not decrease λ", a.name)
		}
		bestMean, bestCycle = mean, cycle
		counts.CyclesExamined++
	}
	return Result{}, ErrIterationLimit
}

// assignEdge is one bipartite edge: person (the graph node) to object
// (edge.obj, also a graph node). arcID < 0 marks the zero-cost diagonal
// skip edge.
type assignEdge struct {
	obj   int32
	arcID graph.ArcID
	w     int64
}

// assignInstance is the cycle-cover assignment instance of a graph: for
// each ordered node pair the cheapest parallel arc, plus one diagonal skip
// per node. Probe costs are q·w − p for arc edges and 0 for skips.
type assignInstance struct {
	g   *graph.Graph
	n   int
	adj [][]assignEdge
}

func newAssignInstance(g *graph.Graph) *assignInstance {
	n := g.NumNodes()
	inst := &assignInstance{g: g, n: n, adj: make([][]assignEdge, n)}
	bestTo := make(map[int32]graph.ArcID, 8)
	for u := graph.NodeID(0); int(u) < n; u++ {
		clear(bestTo)
		for _, id := range g.OutArcs(u) {
			a := g.Arc(id)
			if prev, ok := bestTo[int32(a.To)]; !ok || a.Weight < g.Arc(prev).Weight {
				bestTo[int32(a.To)] = id
			}
		}
		edges := make([]assignEdge, 0, len(bestTo)+1)
		edges = append(edges, assignEdge{obj: int32(u), arcID: -1}) // skip
		for to, id := range bestTo {
			edges = append(edges, assignEdge{obj: to, arcID: id, w: g.Arc(id).Weight})
		}
		// Map iteration order is randomized; sort so the oracle's edge scan
		// order — and with it the operation counts — is deterministic.
		sort.Slice(edges[1:], func(i, j int) bool { return edges[1+i].obj < edges[1+j].obj })
		inst.adj[u] = edges
	}
	return inst
}

func (inst *assignInstance) cost(e assignEdge, p, q int64) int64 {
	if e.arcID < 0 {
		return 0
	}
	return q*e.w - p
}

// negativeCycle decomposes the matching (a permutation given as the chosen
// edge index per person) into cycles and returns the arc IDs of one with
// negative probe cost, or nil if none exists.
func (inst *assignInstance) negativeCycle(match []int32, p, q int64) []graph.ArcID {
	visited := make([]bool, inst.n)
	for start := 0; start < inst.n; start++ {
		if visited[start] {
			continue
		}
		var (
			cycle []graph.ArcID
			total int64
			real  bool
		)
		u := int32(start)
		for !visited[u] {
			visited[u] = true
			e := inst.adj[u][match[u]]
			if e.arcID >= 0 {
				cycle = append(cycle, e.arcID)
				total += inst.cost(e, p, q)
				real = true
			}
			u = e.obj
		}
		if real && total < 0 {
			return cycle
		}
	}
	return nil
}

// solveAuction solves the assignment instance exactly with the ε-scaling
// auction algorithm of Bertsekas (the engine inside OA1): benefits are
// costs negated and scaled by n+1, ε starts at half the benefit range and
// halves each phase down to 1, at which point ε-complementary slackness
// forces the true optimum. Returns the optimal (unscaled) total cost and
// the matching as the chosen edge index per person.
func (inst *assignInstance) solveAuction(p, q int64, counts *counter.Counts) (int64, []int32) {
	n := inst.n
	scale := int64(n + 1)
	// benefit(u, k) = -cost * scale
	benefit := func(u int32, k int32) int64 {
		return -inst.cost(inst.adj[u][k], p, q) * scale
	}
	var maxAbs int64 = 1
	for u := 0; u < n; u++ {
		for k := range inst.adj[u] {
			if b := benefit(int32(u), int32(k)); abs64(b) > maxAbs {
				maxAbs = abs64(b)
			}
		}
	}

	price := make([]int64, n)
	owner := make([]int32, n)   // object -> person
	matched := make([]int32, n) // person -> edge index
	queue := make([]int32, 0, n)

	eps := maxAbs / 2
	if eps < 1 {
		eps = 1
	}
	for {
		// Start of phase: unassign everyone, keep prices.
		for j := range owner {
			owner[j] = -1
		}
		queue = queue[:0]
		for u := 0; u < n; u++ {
			matched[u] = -1
			queue = append(queue, int32(u))
		}
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			// Best and second-best values among u's edges.
			var (
				bestK      int32 = -1
				bestV      int64
				secondV    int64
				haveSecond bool
			)
			for k := range inst.adj[u] {
				if counts != nil {
					counts.Relaxations++
				}
				v := benefit(u, int32(k)) - price[inst.adj[u][k].obj]
				switch {
				case bestK < 0:
					bestK, bestV = int32(k), v
				case v > bestV:
					secondV, haveSecond = bestV, true
					bestK, bestV = int32(k), v
				case !haveSecond || v > secondV:
					secondV, haveSecond = v, true
				}
			}
			if !haveSecond {
				// A person with a single edge bids enough to hold the
				// object for the rest of the phase.
				secondV = bestV - (2*maxAbs + eps + 1)
			}
			// The bid raises the price so u is indifferent to its second
			// choice, plus ε.
			j := inst.adj[u][bestK].obj
			price[j] += bestV - secondV + eps
			if prev := owner[j]; prev >= 0 {
				matched[prev] = -1
				queue = append(queue, prev)
			}
			owner[j] = u
			matched[u] = bestK
		}
		if eps == 1 {
			break
		}
		eps /= 2
		if eps < 1 {
			eps = 1
		}
	}

	var total int64
	for u := 0; u < n; u++ {
		total += inst.cost(inst.adj[u][matched[u]], p, q)
	}
	return total, matched
}

// solveSSP solves the assignment instance exactly with successive shortest
// paths (Dijkstra over reduced costs with dual potentials — the successive-
// shortest-path half of the Orlin–Ahuja hybrid, used as OA2's engine).
func (inst *assignInstance) solveSSP(p, q int64, counts *counter.Counts) (int64, []int32) {
	n := inst.n
	// Shift all edge costs to be non-negative; every perfect matching
	// shifts by exactly n·shift, so the argmin is unchanged.
	var shift int64
	for u := 0; u < n; u++ {
		for _, e := range inst.adj[u] {
			if c := inst.cost(e, p, q); c < shift {
				shift = c
			}
		}
	}
	cost := func(u int32, k int32) int64 {
		return inst.cost(inst.adj[u][k], p, q) - shift
	}

	const inf = int64(1) << 62
	pip := make([]int64, n)     // person potentials
	pio := make([]int64, n)     // object potentials
	owner := make([]int32, n)   // object -> person
	matched := make([]int32, n) // person -> edge index
	for j := range owner {
		owner[j] = -1
	}
	for u := range matched {
		matched[u] = -1
	}

	distP := make([]int64, n)
	distO := make([]int64, n)
	prevP := make([]int32, n) // object -> person that reached it
	prevK := make([]int32, n) // object -> edge index at that person
	doneO := make([]bool, n)

	type qkey = int64
	for s := int32(0); s < int32(n); s++ {
		for i := range distP {
			distP[i] = inf
			distO[i] = inf
			doneO[i] = false
			prevP[i] = -1
		}
		h := pq.NewBinHeap(func(a, b qkey) bool { return a < b }, nil)
		expand := func(i int32) {
			for k := range inst.adj[i] {
				if counts != nil {
					counts.Relaxations++
				}
				e := inst.adj[i][k]
				rc := cost(i, int32(k)) + pip[i] - pio[e.obj]
				if nd := distP[i] + rc; nd < distO[e.obj] {
					distO[e.obj] = nd
					prevP[e.obj] = i
					prevK[e.obj] = int32(k)
					h.Insert(nd, e.obj)
				}
			}
		}
		distP[s] = 0
		expand(s)
		target := int32(-1)
		for h.Len() > 0 {
			top := h.ExtractMin()
			j := top.Value
			if doneO[j] || top.Key != distO[j] {
				continue
			}
			doneO[j] = true
			if owner[j] < 0 {
				target = j
				break
			}
			i := owner[j]
			distP[i] = distO[j] // matched reverse edge has reduced cost 0
			expand(i)
		}
		if target < 0 {
			panic("core: assignment instance infeasible (missing diagonal?)")
		}
		d := distO[target]
		for i := 0; i < n; i++ {
			if distP[i] < d {
				pip[i] += distP[i] - d
			}
			if distO[i] < d {
				pio[i] += distO[i] - d
			}
		}
		// Augment along the alternating path back to s.
		j := target
		for {
			i := prevP[j]
			k := prevK[j]
			jPrev := int32(-1)
			if matched[i] >= 0 {
				jPrev = inst.adj[i][matched[i]].obj
			}
			matched[i] = k
			owner[j] = i
			if i == s {
				break
			}
			j = jPrev
		}
	}

	var total int64
	for u := 0; u < n; u++ {
		total += inst.cost(inst.adj[u][matched[u]], p, q)
	}
	return total, matched
}
