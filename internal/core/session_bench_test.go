package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// benchPerturbations builds the repeated-solve workload: one base graph and
// a ring of weight-perturbed copies with identical structure.
func benchPerturbations(b *testing.B, rounds int) []*graph.Graph {
	b.Helper()
	g, err := gen.Sprand(gen.SprandConfig{N: 2000, M: 8000, MinWeight: -10000, MaxWeight: 10000, Seed: 1234})
	if err != nil {
		b.Fatal(err)
	}
	out := make([]*graph.Graph, rounds)
	out[0] = g
	for r := 1; r < rounds; r++ {
		out[r] = reweight(g, func(i int) int64 { return int64((i*r)%11 - 5) })
	}
	return out
}

// BenchmarkSessionWarm measures the steady-state cost of solving a stream of
// weight-perturbed graphs through one Session (policy cache hot after the
// first solve).
func BenchmarkSessionWarm(b *testing.B) {
	graphs := benchPerturbations(b, 8)
	s := NewSession(Options{})
	if _, err := s.Solve(graphs[0]); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Solve(graphs[i%len(graphs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionCold solves the same stream with a cache reset before
// every solve — the baseline the warm path is measured against.
func BenchmarkSessionCold(b *testing.B) {
	graphs := benchPerturbations(b, 8)
	s := NewSession(Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reset()
		if _, err := s.Solve(graphs[i%len(graphs)]); err != nil {
			b.Fatal(err)
		}
	}
}
