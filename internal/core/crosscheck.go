package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/graph"
)

// CheckedResult is the outcome of CrossCheck: the consensus answer plus
// per-algorithm wall times.
type CheckedResult struct {
	Result
	// Elapsed maps algorithm name to its wall time.
	Elapsed map[string]time.Duration
	// Winner is the name of the fastest algorithm.
	Winner string
}

// CrossCheck solves the same graph with several algorithms concurrently
// (one goroutine each; the solvers share nothing but the read-only graph)
// and verifies they agree exactly, returning the first-listed algorithm's
// result enriched with timings. It is the belt-and-braces entry point for
// users who want the speed of Howard's algorithm with an independent
// classical algorithm double-checking every answer — the same discipline
// the paper's experimental study applied to all ten implementations.
//
// An error is returned if any solver fails or any two disagree.
func CrossCheck(g *graph.Graph, algos []Algorithm, opt Options) (CheckedResult, error) {
	if len(algos) == 0 {
		return CheckedResult{}, fmt.Errorf("core: CrossCheck needs at least one algorithm")
	}
	type outcome struct {
		res     Result
		err     error
		elapsed time.Duration
	}
	outs := make([]outcome, len(algos))
	var wg sync.WaitGroup
	for i, algo := range algos {
		wg.Add(1)
		go func(i int, algo Algorithm) {
			defer wg.Done()
			start := time.Now()
			res, err := MinimumCycleMean(g, algo, opt)
			outs[i] = outcome{res: res, err: err, elapsed: time.Since(start)}
		}(i, algo)
	}
	wg.Wait()

	for i, o := range outs {
		if o.err != nil {
			return CheckedResult{}, fmt.Errorf("core: %s failed: %w", algos[i].Name(), o.err)
		}
	}
	for i := 1; i < len(outs); i++ {
		if !outs[i].res.Mean.Equal(outs[0].res.Mean) {
			return CheckedResult{}, fmt.Errorf("core: %s and %s disagree: %v vs %v",
				algos[0].Name(), algos[i].Name(), outs[0].res.Mean, outs[i].res.Mean)
		}
	}

	cr := CheckedResult{
		Result:  outs[0].res,
		Elapsed: make(map[string]time.Duration, len(algos)),
	}
	best := time.Duration(-1)
	for i, algo := range algos {
		cr.Elapsed[algo.Name()] = outs[i].elapsed
		if best < 0 || outs[i].elapsed < best {
			best = outs[i].elapsed
			cr.Winner = algo.Name()
		}
	}
	return cr, nil
}
