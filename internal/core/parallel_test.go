package core

import (
	"errors"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// TestParallelDriverMatchesSequential is the tentpole equivalence test: on
// well over 100 random multi-SCC graphs, the parallel driver must return a
// bit-identical mean, the identical critical cycle, and identical operation
// counts to the sequential driver — parallelism is an implementation detail
// that must never leak into results.
func TestParallelDriverMatchesSequential(t *testing.T) {
	algos := []Algorithm{howardAlg{}, karpAlg{}, ytoAlg{}}
	cases := 0
	for _, k := range []int{2, 3, 5, 8} {
		for _, nPer := range []int{3, 6, 12} {
			for seed := uint64(1); seed <= 10; seed++ {
				g, err := gen.MultiSCC(k, nPer, 3*nPer, seed)
				if err != nil {
					t.Fatal(err)
				}
				cases++
				algo := algos[int(seed)%len(algos)]
				seq, err := MinimumCycleMean(g, algo, Options{})
				if err != nil {
					t.Fatalf("k=%d nPer=%d seed=%d %s sequential: %v", k, nPer, seed, algo.Name(), err)
				}
				for _, par := range []int{2, 4, -1} {
					got, err := MinimumCycleMean(g, algo, Options{Parallelism: par})
					if err != nil {
						t.Fatalf("k=%d nPer=%d seed=%d %s parallel=%d: %v", k, nPer, seed, algo.Name(), par, err)
					}
					if got.Mean != seq.Mean {
						t.Fatalf("k=%d nPer=%d seed=%d %s parallel=%d: mean %v != sequential %v",
							k, nPer, seed, algo.Name(), par, got.Mean, seq.Mean)
					}
					if len(got.Cycle) != len(seq.Cycle) {
						t.Fatalf("k=%d nPer=%d seed=%d %s parallel=%d: cycle %v != sequential %v",
							k, nPer, seed, algo.Name(), par, got.Cycle, seq.Cycle)
					}
					for i := range got.Cycle {
						if got.Cycle[i] != seq.Cycle[i] {
							t.Fatalf("k=%d nPer=%d seed=%d %s parallel=%d: cycle %v != sequential %v",
								k, nPer, seed, algo.Name(), par, got.Cycle, seq.Cycle)
						}
					}
					if got.Counts != seq.Counts {
						t.Fatalf("k=%d nPer=%d seed=%d %s parallel=%d: counts %+v != sequential %+v",
							k, nPer, seed, algo.Name(), par, got.Counts, seq.Counts)
					}
					if got.Exact != seq.Exact {
						t.Fatalf("exactness mismatch")
					}
				}
			}
		}
	}
	if cases < 100 {
		t.Fatalf("only %d multi-SCC graphs exercised, want >= 100", cases)
	}
}

// TestParallelDriverErrors checks that per-component failures surface
// deterministically: the reported error is the earliest failing component's
// in decomposition order, matching the sequential driver.
func TestParallelDriverErrors(t *testing.T) {
	// Two separate SCCs; the second one has an out-of-range weight.
	b := graph.NewBuilder(4, 5)
	b.AddNodes(4)
	b.AddArc(0, 1, 1)
	b.AddArc(1, 0, 1)
	b.AddArc(2, 3, 1<<31)
	b.AddArc(3, 2, 0)
	b.AddArc(1, 2, 1) // condensation arc, keeps the SCCs separate
	g := b.Build()

	seqRes, seqErr := MinimumCycleMean(g, howardAlg{}, Options{})
	parRes, parErr := MinimumCycleMean(g, howardAlg{}, Options{Parallelism: 4})
	if seqErr == nil || parErr == nil {
		t.Fatalf("expected errors, got seq=(%v,%v) par=(%v,%v)", seqRes, seqErr, parRes, parErr)
	}
	if !errors.Is(seqErr, ErrWeightRange) || !errors.Is(parErr, ErrWeightRange) {
		t.Fatalf("want ErrWeightRange from both drivers, got seq=%v par=%v", seqErr, parErr)
	}
	if seqErr.Error() != parErr.Error() {
		t.Fatalf("driver error messages differ:\n  seq: %v\n  par: %v", seqErr, parErr)
	}

	// Acyclic graph: both drivers agree on ErrAcyclic.
	b2 := graph.NewBuilder(3, 2)
	b2.AddNodes(3)
	b2.AddArc(0, 1, 1)
	b2.AddArc(1, 2, 1)
	dag := b2.Build()
	if _, err := MinimumCycleMean(dag, howardAlg{}, Options{Parallelism: 4}); !errors.Is(err, ErrAcyclic) {
		t.Fatalf("want ErrAcyclic, got %v", err)
	}
}

// TestParallelDriverSingleComponent makes sure a strongly connected input
// (one component) never pays the worker-pool overhead path and still
// matches the sequential result.
func TestParallelDriverSingleComponent(t *testing.T) {
	g, err := gen.Sprand(gen.SprandConfig{N: 64, M: 192, MinWeight: 1, MaxWeight: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := MinimumCycleMean(g, howardAlg{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := MinimumCycleMean(g, howardAlg{}, Options{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if par.Mean != seq.Mean || par.Counts != seq.Counts {
		t.Fatalf("single-component parallel mismatch: %v vs %v", par, seq)
	}
}

// TestOptionsWorkers pins the Parallelism resolution contract: 0 and 1 are
// sequential, negatives mean NumCPU, anything else is taken literally.
func TestOptionsWorkers(t *testing.T) {
	if w := (Options{}).workers(); w != 1 {
		t.Fatalf("zero value workers = %d, want 1", w)
	}
	if w := (Options{Parallelism: 1}).workers(); w != 1 {
		t.Fatalf("parallelism 1 workers = %d, want 1", w)
	}
	if w := (Options{Parallelism: 6}).workers(); w != 6 {
		t.Fatalf("parallelism 6 workers = %d, want 6", w)
	}
	if w := (Options{Parallelism: -1}).workers(); w < 1 {
		t.Fatalf("parallelism -1 workers = %d, want >= 1", w)
	}
}
