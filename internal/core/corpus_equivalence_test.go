package core_test

// External test package: these corpus-wide gates run on the shared harness
// corpus (internal/testutil), which imports core and therefore cannot be
// used from internal test files. They replace the hand-copied
// equivalenceCorpus the kernel and approx gates used to duplicate.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/numeric"
	"repro/internal/testutil"
)

func mustByName(t *testing.T, name string) core.Algorithm {
	t.Helper()
	a, err := core.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestKernelEquivalenceMean is the tentpole guarantee: for every corpus
// graph and every bound-sensitive algorithm, a kernelized solve returns the
// same λ* as a raw solve, and its cycle — expanded to original-graph arc
// IDs — is a valid cycle of the original graph whose exact rational mean
// equals λ* (no float drift anywhere).
func TestKernelEquivalenceMean(t *testing.T) {
	corpus := testutil.MeanCorpus(t)
	algos := []core.Algorithm{mustByName(t, "howard"), mustByName(t, "karp"), mustByName(t, "lawler")}
	for name, g := range corpus {
		raw, err := core.MinimumCycleMean(g, algos[0], core.Options{Certify: true})
		if err != nil {
			t.Fatalf("%s: raw solve: %v", name, err)
		}
		if raw.Certificate == nil {
			t.Fatalf("%s: certified solve returned no certificate", name)
		}
		for _, algo := range algos {
			kr, err := core.MinimumCycleMean(g, algo, core.Options{Kernelize: true, Certify: true})
			if err != nil {
				t.Fatalf("%s/%s: kernelized solve: %v", name, algo.Name(), err)
			}
			if !kr.Mean.Equal(raw.Mean) {
				t.Errorf("%s/%s: kernelized λ* = %v, raw = %v", name, algo.Name(), kr.Mean, raw.Mean)
				continue
			}
			if !kr.Exact {
				t.Errorf("%s/%s: kernelized result must be exact", name, algo.Name())
			}
			if kr.Certificate == nil || !kr.Certificate.Value.Equal(kr.Mean) {
				t.Errorf("%s/%s: missing or mismatched certificate: %+v", name, algo.Name(), kr.Certificate)
			}
			if err := g.ValidateCycle(kr.Cycle); err != nil {
				t.Errorf("%s/%s: expanded cycle invalid on original graph: %v", name, algo.Name(), err)
				continue
			}
			// Satellite property: recompute the expanded cycle's value on the
			// original graph in exact rational arithmetic.
			mean := numeric.NewRat(g.CycleWeight(kr.Cycle), int64(len(kr.Cycle)))
			if !mean.Equal(kr.Mean) {
				t.Errorf("%s/%s: expanded cycle mean %v != reported λ* %v", name, algo.Name(), mean, kr.Mean)
			}
		}
	}
}

// TestApproxEquivalence is the approximation-tier guarantee, run over the
// full equivalence corpus: the sharpened approx path is bit-identical to an
// exact certified solve, and every unsharpened ε run stays within its own
// declared error bound of the true λ*.
func TestApproxEquivalence(t *testing.T) {
	corpus := testutil.MeanCorpus(t)
	approx := mustByName(t, "approx")
	exactAlgo := mustByName(t, "howard")
	for name, g := range corpus {
		exact, err := core.MinimumCycleMean(g, exactAlgo, core.Options{Certify: true})
		if err != nil {
			t.Fatalf("%s: exact solve: %v", name, err)
		}

		// Sharpened: default options request an exact answer.
		sharp, err := core.MinimumCycleMean(g, approx, core.Options{Certify: true})
		if err != nil {
			t.Fatalf("%s: sharpened approx solve: %v", name, err)
		}
		if !sharp.Mean.Equal(exact.Mean) {
			t.Errorf("%s: sharpened λ* = %v, exact = %v", name, sharp.Mean, exact.Mean)
			continue
		}
		if !sharp.Exact || sharp.ErrorBound != 0 {
			t.Errorf("%s: sharpened result must be exact with zero bound, got exact=%v bound=%v",
				name, sharp.Exact, sharp.ErrorBound)
		}
		if sharp.Certificate == nil || !sharp.Certificate.Value.Equal(sharp.Mean) {
			t.Errorf("%s: missing or mismatched certificate: %+v", name, sharp.Certificate)
		}
		if err := g.ValidateCycle(sharp.Cycle); err != nil {
			t.Errorf("%s: sharpened cycle invalid: %v", name, err)
		}

		// Unsharpened ε run: λ* must lie in [Mean−ErrorBound, Mean], and the
		// witness must be a real cycle of the original graph whose exact
		// rational mean is the reported Mean.
		for _, mode := range []string{"chkl", "ap"} {
			res, err := core.MinimumCycleMean(g, approx, core.Options{Approx: core.ApproxOptions{Epsilon: 0.05, Mode: mode}})
			if err != nil {
				t.Fatalf("%s/%s: approx solve: %v", name, mode, err)
			}
			lam := exact.Mean.Float64()
			if res.Mean.Float64() < lam-1e-9 {
				t.Errorf("%s/%s: reported mean %v below true λ* %v", name, mode, res.Mean, lam)
			}
			if res.Mean.Float64()-res.ErrorBound > lam+1e-9 {
				t.Errorf("%s/%s: certified interval [%v, %v] misses λ* = %v",
					name, mode, res.Mean.Float64()-res.ErrorBound, res.Mean.Float64(), lam)
			}
			if res.Exact != (res.ErrorBound == 0) {
				t.Errorf("%s/%s: Exact=%v inconsistent with ErrorBound=%v", name, mode, res.Exact, res.ErrorBound)
			}
			if err := g.ValidateCycle(res.Cycle); err != nil {
				t.Errorf("%s/%s: witness cycle invalid: %v", name, mode, err)
				continue
			}
			mean := numeric.NewRat(g.CycleWeight(res.Cycle), int64(len(res.Cycle)))
			if !mean.Equal(res.Mean) {
				t.Errorf("%s/%s: witness mean %v != reported %v", name, mode, mean, res.Mean)
			}
		}
	}
}
