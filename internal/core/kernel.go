package core

// This file connects the internal/prep kernelization pipeline to the
// MinimumCycleMean driver. Each strongly connected component is reduced
// before any solver runs:
//
//   - A fully solved kernel (everything collapsed into closed-form
//     candidates) skips the solver entirely.
//   - An uncontracted kernel (self-loops stripped, nothing spliced) goes to
//     the caller's algorithm unchanged — kernel arc IDs map 1:1 onto paths
//     of length one — with sharpened λ* bounds for Lawler's binary search.
//   - A contracted kernel is a cost-to-time ratio instance (t = original
//     arc count), solved exactly by prep.SolveKernel; any solver failure
//     (e.g. exact-arithmetic range) falls back to an unkernelized solve of
//     the original component, so kernelization never changes feasibility.
//
// In every case the critical cycle is expanded back to original arc IDs
// before the driver sees it, so callers observe the same mean and a valid
// critical cycle whether or not kernelization ran.

import (
	"time"

	"repro/internal/counter"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/prep"
)

// solveComponentKernelized solves one strongly connected cyclic component g
// through its precomputed kernel. The returned cycle uses g's arc IDs.
func solveComponentKernelized(algo Algorithm, opt Options, g *graph.Graph, kern *prep.Kernel) (Result, error) {
	if kern.Err != nil || (kern.Solved && !kern.HasCandidate) {
		// Unsupported input or a degenerate kernel: solve the original
		// component so the proper solver diagnostics apply.
		return algo.Solve(g, opt)
	}
	if min, max := g.WeightRange(); min < -MaxWeightMagnitude || max > MaxWeightMagnitude {
		// Closed-form candidates and prep.SolveKernel tolerate weights the
		// mean solvers reject, but kernelization must not widen the input
		// contract: defer to the raw solve's ErrWeightRange.
		return algo.Solve(g, opt)
	}

	var best Result
	have := false
	if kern.HasCandidate {
		best = Result{Mean: kern.CandidateValue, Cycle: kern.CandidateCycle(), Exact: true}
		have = true
	}
	if !kern.Solved {
		var (
			r   Result
			err error
		)
		if kern.Contracted {
			// The kernel's cycle values are Σw/Σt with t = original arc
			// count — a ratio instance the mean solvers cannot express.
			// The closed-form ratio solver reports as algorithm "kernel".
			var counts counter.Counts
			tr := opt.Tracer
			var start time.Time
			if tr.Enabled() {
				tr.SolverStart(obs.SolverStartEvent{Algorithm: "kernel",
					Component: opt.traceComponent - 1, Nodes: kern.G.NumNodes(), Arcs: kern.G.NumArcs()})
				start = time.Now()
			}
			mean, kcyc, serr := prep.SolveKernel(kern.G, &counts)
			if tr.Enabled() {
				tr.SolverDone(obs.SolverDoneEvent{Algorithm: "kernel",
					Component: opt.traceComponent - 1, Nodes: kern.G.NumNodes(), Arcs: kern.G.NumArcs(),
					Duration: time.Since(start), Counts: counts, Value: mean.Float64(), Err: serr})
			}
			if serr != nil {
				return algo.Solve(g, opt)
			}
			r = Result{Mean: mean, Cycle: kern.ExpandCycle(kcyc), Exact: true, Counts: counts}
		} else {
			sub := opt
			if kern.HasBounds {
				lo, hi := kern.Lower, kern.Upper
				sub.LambdaLower, sub.LambdaUpper = &lo, &hi
			}
			r, err = algo.Solve(kern.G, sub)
			if err != nil {
				return Result{}, err
			}
			r.Cycle = kern.ExpandCycle(r.Cycle)
		}
		cts := r.Counts
		if !have || r.Mean.Less(best.Mean) {
			best = r
		}
		best.Counts = cts
	}
	return best, nil
}
