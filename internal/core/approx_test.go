package core

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/graph"
	"repro/internal/numeric"
)

// TestApproxEquivalence — the corpus-wide approx guarantee — lives in
// corpus_equivalence_test.go (package core_test) on the shared
// testutil.MeanCorpus.

func TestApproxModeValidation(t *testing.T) {
	g := graph.FromArcs(2, []graph.Arc{{From: 0, To: 1, Weight: 1}, {From: 1, To: 0, Weight: 1}})
	algo := mustAlgo(t, "approx")
	if _, err := algo.Solve(g, Options{Approx: ApproxOptions{Mode: "bogus"}}); !errors.Is(err, ErrApproxMode) {
		t.Errorf("Solve: err = %v, want ErrApproxMode", err)
	}
	if _, err := MinimumCycleMeanStream(g, Options{Approx: ApproxOptions{Epsilon: 0.1, Mode: "bogus"}}); !errors.Is(err, ErrApproxMode) {
		t.Errorf("Stream: err = %v, want ErrApproxMode", err)
	}
}

func TestApproxSharpenFlag(t *testing.T) {
	// ApproxSharpen with a loose ε must still return the exact answer.
	g := graph.FromArcs(3, []graph.Arc{
		{From: 0, To: 1, Weight: 7},
		{From: 1, To: 2, Weight: -2},
		{From: 2, To: 0, Weight: 4},
		{From: 1, To: 0, Weight: 9},
	})
	algo := mustAlgo(t, "approx")
	res, err := algo.Solve(g, Options{Approx: ApproxOptions{Epsilon: 0.5}, ApproxSharpen: true})
	if err != nil {
		t.Fatal(err)
	}
	want := numeric.NewRat(3, 1) // cycle 0→1→2→0: (7−2+4)/3 = 3; 0→1→0: 8
	if !res.Mean.Equal(want) || !res.Exact || res.ErrorBound != 0 {
		t.Fatalf("sharpened = (%v, exact=%v, bound=%v), want (3, true, 0)", res.Mean, res.Exact, res.ErrorBound)
	}
	if res.Counts.Iterations == 0 || res.Counts.ArcsVisited == 0 {
		t.Errorf("engine work not folded into counts: %+v", res.Counts)
	}
}

func TestApproxStream(t *testing.T) {
	g := graph.FromArcs(4, []graph.Arc{
		{From: 0, To: 1, Weight: 2},
		{From: 1, To: 2, Weight: -3},
		{From: 2, To: 0, Weight: 4},
		{From: 2, To: 3, Weight: 1},
		{From: 3, To: 2, Weight: 1},
	})
	var buf bytes.Buffer
	if err := graph.Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	src, err := graph.ReadStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := MinimumCycleMeanStream(src, Options{Approx: ApproxOptions{Epsilon: 0.01}})
	if err != nil {
		t.Fatal(err)
	}
	const lam = 1.0 // min(1 via 0→1→2→0, 1 via 2↔3)
	if res.Mean.Float64() < lam-1e-9 || res.Mean.Float64()-res.ErrorBound > lam+1e-9 {
		t.Fatalf("streamed interval [%v, %v] misses λ* = %v",
			res.Mean.Float64()-res.ErrorBound, res.Mean.Float64(), lam)
	}

	// The streaming driver is approximate-only.
	if _, err := MinimumCycleMeanStream(src, Options{}); err == nil {
		t.Error("epsilon 0 accepted on the streaming path")
	}
	if _, err := MinimumCycleMeanStream(src, Options{Approx: ApproxOptions{Epsilon: 0.1}, ApproxSharpen: true}); err == nil {
		t.Error("sharpening accepted on the streaming path")
	}
	if _, err := MinimumCycleMeanStream(src, Options{Approx: ApproxOptions{Epsilon: 0.1}, Certify: true}); err == nil {
		t.Error("certification accepted on the streaming path")
	}

	// Acyclic stream.
	dag := graph.FromArcs(2, []graph.Arc{{From: 0, To: 1, Weight: 1}})
	if _, err := MinimumCycleMeanStream(dag, Options{Approx: ApproxOptions{Epsilon: 0.1}}); !errors.Is(err, ErrAcyclic) {
		t.Errorf("acyclic stream: err = %v, want ErrAcyclic", err)
	}
}

// TestApproxMultiSCCBoundMerge pins the driver's interval widening: when the
// winning component carries an error bound, the merged bound must still
// bracket the global λ* even though other components' lower bounds differ.
func TestApproxMultiSCCBoundMerge(t *testing.T) {
	// Two components with close means (10/3 vs 7/2) so a loose ε makes the
	// winner ambiguous; the merged interval must contain min(10/3, 7/2).
	g := graph.FromArcs(5, []graph.Arc{
		{From: 0, To: 1, Weight: 3},
		{From: 1, To: 2, Weight: 3},
		{From: 2, To: 0, Weight: 4},
		{From: 3, To: 4, Weight: 3},
		{From: 4, To: 3, Weight: 4},
	})
	algo := mustAlgo(t, "approx")
	lam := 10.0 / 3.0
	for _, par := range []int{1, 4} {
		res, err := MinimumCycleMean(g, algo, Options{Approx: ApproxOptions{Epsilon: 0.4}, Parallelism: par})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if res.Mean.Float64() < lam-1e-9 {
			t.Errorf("parallelism %d: mean %v below λ* %v", par, res.Mean, lam)
		}
		if res.Mean.Float64()-res.ErrorBound > lam+1e-9 {
			t.Errorf("parallelism %d: interval [%v, %v] misses λ* = %v",
				par, res.Mean.Float64()-res.ErrorBound, res.Mean.Float64(), lam)
		}
		if res.ErrorBound > 0 && res.Exact {
			t.Errorf("parallelism %d: Exact with nonzero bound %v", par, res.ErrorBound)
		}
	}
}

// TestApproxIterationLimit maps the engine's pass-budget exhaustion onto the
// shared ErrIterationLimit sentinel on the unsharpened path.
func TestApproxIterationLimit(t *testing.T) {
	const n = 64
	arcs := make([]graph.Arc, n)
	for i := range arcs {
		arcs[i] = graph.Arc{From: graph.NodeID(i), To: graph.NodeID((i + 1) % n), Weight: int64(i%7) - 3}
	}
	g := graph.FromArcs(n, arcs)
	algo := mustAlgo(t, "approx")
	_, err := algo.Solve(g, Options{Approx: ApproxOptions{Epsilon: 1e-9}, MaxIterations: 2})
	if !errors.Is(err, ErrIterationLimit) {
		t.Fatalf("err = %v, want ErrIterationLimit", err)
	}
}
