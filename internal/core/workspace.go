package core

// This file implements workspace pooling for the hot solvers. A solver run
// needs a dozen O(n) scratch slices (plus Karp's Θ(n²) D table); allocating
// them afresh on every Solve makes repeated solves — the bench harness's
// inner loop, a server answering queries, the parallel SCC driver —
// GC-bound. Each hot solver therefore draws a typed workspace from a
// sync.Pool on entry and returns it on exit, so the steady state allocates
// near-zero. Workspaces are never shared: a Solve call owns its workspace
// for the whole run, which is what makes every solver safe for concurrent
// use.

import (
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/numeric"
)

// disableWorkspacePools switches every solver back to fresh allocations.
// It exists so benchmarks can measure the pooled steady state against the
// historical fresh-allocation path; it is not part of the public API.
var disableWorkspacePools atomic.Bool

// grow returns s with length n, reusing the backing array when capacity
// allows. Contents are unspecified; callers must initialize what they read.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// howardWS is the per-run scratch state of Howard's algorithm.
type howardWS struct {
	policy     []graph.ArcID
	gain       []numeric.Rat
	gainRank   []int32
	gainSet    []bool
	cycleSeq   []int32
	d          []float64
	childHead  []int32
	childNext  []int32
	queue      []graph.NodeID
	cycleGains []numeric.Rat
	rankIdx    []int32
	ranks      []int32
	bestCyc    []graph.ArcID
	pc         pcScratch
	bfDist     []int64
	bfParent   []graph.ArcID
}

var howardPool = sync.Pool{New: func() any { return new(howardWS) }}

func getHowardWS(n int) *howardWS {
	var ws *howardWS
	if disableWorkspacePools.Load() {
		ws = new(howardWS)
	} else {
		ws = howardPool.Get().(*howardWS)
	}
	ws.policy = grow(ws.policy, n)
	ws.gain = grow(ws.gain, n)
	ws.gainRank = grow(ws.gainRank, n)
	ws.gainSet = grow(ws.gainSet, n)
	ws.cycleSeq = grow(ws.cycleSeq, n)
	ws.childHead = grow(ws.childHead, n)
	ws.childNext = grow(ws.childNext, n)
	ws.bfDist = grow(ws.bfDist, n)
	ws.bfParent = grow(ws.bfParent, n)
	// Biases must start at zero: the value-determination step keeps each
	// cycle's normalization node at its previous bias, so stale values from
	// an earlier run would change the iteration trajectory.
	ws.d = grow(ws.d, n)
	for i := range ws.d {
		ws.d[i] = 0
	}
	ws.queue = ws.queue[:0]
	ws.cycleGains = ws.cycleGains[:0]
	ws.bestCyc = ws.bestCyc[:0]
	return ws
}

func (ws *howardWS) release() {
	if ws != nil && !disableWorkspacePools.Load() {
		howardPool.Put(ws)
	}
}

// karpWS is the scratch state shared by the Karp variants: the flattened
// (n+1)×n D table for karp, and the rolling rows plus fold state for karp2.
type karpWS struct {
	D       []int64
	prev    []int64
	cur     []int64
	dn      []int64
	maxNum  []int64
	maxDen  []int64
	haveMax []bool
}

var karpPool = sync.Pool{New: func() any { return new(karpWS) }}

func getKarpWS() *karpWS {
	if disableWorkspacePools.Load() {
		return new(karpWS)
	}
	return karpPool.Get().(*karpWS)
}

func (ws *karpWS) release() {
	if ws != nil && !disableWorkspacePools.Load() {
		karpPool.Put(ws)
	}
}

// madaniWS is the per-run scratch state of Madani's value iteration: the
// seed policy, the integer value vector with its parent arcs, and the
// functional-graph walk buffers of the per-pass parent-cycle scan.
type madaniWS struct {
	policy  []graph.ArcID
	d       []int64
	parent  []graph.ArcID
	state   []int32
	walkPos []int32
	walk    []graph.NodeID
	cycle   []graph.ArcID
	bestCyc []graph.ArcID
	pc      pcScratch
}

var madaniPool = sync.Pool{New: func() any { return new(madaniWS) }}

func getMadaniWS(n int) *madaniWS {
	var ws *madaniWS
	if disableWorkspacePools.Load() {
		ws = new(madaniWS)
	} else {
		ws = madaniPool.Get().(*madaniWS)
	}
	ws.policy = grow(ws.policy, n)
	ws.d = grow(ws.d, n)
	ws.parent = grow(ws.parent, n)
	ws.state = grow(ws.state, n)
	ws.walkPos = grow(ws.walkPos, n)
	ws.walk = ws.walk[:0]
	ws.cycle = ws.cycle[:0]
	ws.bestCyc = ws.bestCyc[:0]
	return ws
}

func (ws *madaniWS) release() {
	if ws != nil && !disableWorkspacePools.Load() {
		madaniPool.Put(ws)
	}
}

// scanParentCycles finds every cycle of the parent graph (ws.parent: at most
// one in-arc per node, -1 for none) in O(n) and calls fn once per cycle with
// the arcs in forward order; the slice is reused across calls. During value
// iteration on reduced costs any such cycle is negative — the contraction
// candidates of Madani's acceleration.
func (ws *madaniWS) scanParentCycles(g *graph.Graph, fn func(cycle []graph.ArcID)) {
	n := len(ws.parent)
	state, walkPos := ws.state, ws.walkPos
	for i := range state {
		state[i] = 0
	}
	walk := ws.walk[:0]
	cycle := ws.cycle[:0]
	defer func() { ws.walk, ws.cycle = walk, cycle }()
	for root := 0; root < n; root++ {
		if state[root] != 0 || ws.parent[root] < 0 {
			continue
		}
		walk = walk[:0]
		v := graph.NodeID(root)
		for state[v] == 0 && ws.parent[v] >= 0 {
			state[v] = 1
			walkPos[v] = int32(len(walk))
			walk = append(walk, v)
			v = g.Arc(ws.parent[v]).From
		}
		if state[v] == 1 {
			// walk[walkPos[v]:] closes a cycle in parent (reverse)
			// orientation: parent[walk[i]] runs walk[i+1] → walk[i], with the
			// last element's parent leaving walk[walkPos[v]]. Emitting the
			// segment's parent arcs in reverse walk order yields the forward
			// cycle.
			start := walkPos[v]
			cycle = cycle[:0]
			for i := int32(len(walk)) - 1; i >= start; i-- {
				cycle = append(cycle, ws.parent[walk[i]])
			}
			fn(cycle)
		}
		for _, u := range walk {
			state[u] = 2
		}
	}
}

// pcScratch holds the functional-graph traversal state of policyCycles so
// Howard's per-iteration cycle sweep reuses one set of buffers.
type pcScratch struct {
	state   []int32
	walkPos []int32
	walk    []graph.NodeID
	cycle   []graph.ArcID
}

// extractWS is the scratch state of extractCriticalCycle (Bellman–Ford
// distances plus the tight-subgraph DFS), pooled because finishExact runs
// once per Karp/DG/Lawler-family solve.
type extractWS struct {
	dist   []int64
	parent []graph.ArcID
	color  []byte
	onPath []graph.ArcID
	stack  []ecFrame
}

type ecFrame struct {
	v   graph.NodeID
	arc int32
}

var extractPool = sync.Pool{New: func() any { return new(extractWS) }}

func getExtractWS(n int) *extractWS {
	var ws *extractWS
	if disableWorkspacePools.Load() {
		ws = new(extractWS)
	} else {
		ws = extractPool.Get().(*extractWS)
	}
	ws.dist = grow(ws.dist, n)
	ws.parent = grow(ws.parent, n)
	ws.color = grow(ws.color, n)
	for i := range ws.color {
		ws.color[i] = 0
	}
	ws.onPath = ws.onPath[:0]
	ws.stack = ws.stack[:0]
	return ws
}

func (ws *extractWS) release() {
	if ws != nil && !disableWorkspacePools.Load() {
		extractPool.Put(ws)
	}
}
