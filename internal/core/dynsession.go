package core

// DynSession is the incremental dynamic-graph engine (ROADMAP item 4): where
// Session warm-starts repeated solves of structurally identical graphs,
// DynSession owns a mutable graph and absorbs arbitrary edits — arc
// insertion and deletion, weight and transit changes, node addition — while
// keeping the strongly-connected-component decomposition, the per-component
// optimal policies, AND the per-component answers alive across edits. A
// delta invalidates only the components it touches:
//
//   - A weight or transit change on an intra-component arc patches the
//     cached component subgraph in place and marks just that component for a
//     warm re-solve from its own converged policy; on a cross-component arc
//     it costs nothing at all, because such an arc lies on no cycle.
//   - Inserting an arc u→v merges components only when v already reaches u;
//     the merged node set {x : v ⇝ x ∧ x ⇝ u} is found with two BFS passes
//     and only the components inside it are rebuilt. A cross-component
//     insertion that closes no cycle is free.
//   - Deleting an intra-component arc re-decomposes that one component's
//     node set (it can only split, never affect its neighbors); deleting a
//     cross-component arc is free.
//
// At the next Solve, only dirty components run Howard — warm-started from
// the component's previous policy when the structure is unchanged, or from
// the per-node policy memory carried across rebuilds — and every clean
// component contributes its cached exact λ. The reported λ* is therefore
// always bit-identical to a fresh MinimumCycleMean of the current graph
// (exact rationals admit no drift), and with Options.Certify each answer
// carries the same exact Bellman–Ford optimality certificate a cold solve
// would produce, proven against a canonical snapshot of the current graph.
//
// Arc identity follows the PR 2 expansion-map contract: the IDs returned by
// Apply for insertions (and inherited from the seed graph) are stable
// original IDs that survive any number of deletions, and Result.Cycle —
// including Certificate.Witness — always references those original IDs, even
// though the overlay compacts its internal storage on every delete.

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/counter"
	"repro/internal/graph"
	"repro/internal/obs"
)

// DeltaOp enumerates the dynamic-graph edit operations.
type DeltaOp uint8

const (
	// DeltaInsertArc adds an arc From→To with Weight and Transit; Apply
	// reports the fresh original arc ID assigned to it.
	DeltaInsertArc DeltaOp = iota
	// DeltaDeleteArc removes the live arc identified by Arc.
	DeltaDeleteArc
	// DeltaSetWeight sets the weight of the live arc identified by Arc.
	DeltaSetWeight
	// DeltaSetTransit sets the transit time of the live arc Arc.
	DeltaSetTransit
	// DeltaAddNode appends one isolated node; Apply reports its node ID.
	DeltaAddNode
)

// String names the operation the way the serve protocol and tracer spell it.
func (op DeltaOp) String() string {
	switch op {
	case DeltaInsertArc:
		return "insert-arc"
	case DeltaDeleteArc:
		return "delete-arc"
	case DeltaSetWeight:
		return "set-weight"
	case DeltaSetTransit:
		return "set-transit"
	case DeltaAddNode:
		return "add-node"
	}
	return "unknown"
}

// ErrBadDelta wraps every delta rejection (unknown op, dead arc, node out of
// range); the failing delta's position and operation are in the message.
var ErrBadDelta = fmt.Errorf("core: invalid delta")

// Delta is one edit. Which fields matter depends on Op: insertion reads
// From, To, Weight, Transit; deletion reads Arc; the set operations read Arc
// and Weight or Transit; add-node reads nothing.
type Delta struct {
	Op      DeltaOp
	Arc     graph.ArcID
	From    graph.NodeID
	To      graph.NodeID
	Weight  int64
	Transit int64
}

// DynStats counts engine behavior over a DynSession's lifetime.
type DynStats struct {
	// Solves and Errors mirror SessionStats: every Solve/Update solve call
	// counts, and error returns are tallied separately.
	Solves int
	Errors int
	// Deltas is the number of deltas successfully applied.
	Deltas int
	// Components counts component re-solves actually performed; a Solve
	// with nothing dirty performs zero.
	Components int
	// WarmHits counts component re-solves that started from a cached or
	// transferred policy; WarmMisses counts cold starts.
	WarmHits   int
	WarmMisses int
	// Invalidated counts clean cached component results destroyed or
	// marked dirty by deltas.
	Invalidated int
	// Merges counts insertions that fused ≥2 components into one; Splits
	// counts deletions that decomposed one component into ≥2.
	Merges int
	Splits int
	// LiveComponents is the current number of cyclic components.
	LiveComponents int
}

// dynComp is one cyclic SCC tracked by the engine.
type dynComp struct {
	nodes      []graph.NodeID // member nodes, ascending
	g          *graph.Graph   // induced subgraph, nodes renumbered 0..len-1
	arcOrig    []graph.ArcID  // subgraph arc -> original overlay arc ID
	policy     []graph.ArcID  // converged policy (subgraph arc per node), nil before first solve
	res        Result         // last solve's result; Cycle holds subgraph arc IDs
	hasRes     bool
	dirty      bool // needs a re-solve
	weightOnly bool // dirty only through weight/transit changes: structure intact
}

// DynSession owns a mutable graph and answers minimum-cycle-mean queries
// across edits, re-solving only invalidated components. Safe for concurrent
// use; every method takes the session lock, and Update gives the serving
// layer an atomic apply+solve.
//
// Like Session, DynSession always solves with Howard's algorithm and ignores
// Options.Parallelism and Options.Kernelize; Options.Certify is honored on
// every Solve.
type DynSession struct {
	opt Options

	mu         sync.Mutex
	dg         *graph.DynamicGraph
	comps      []*dynComp
	compOf     []int32       // node -> index into comps, -1 when on no cycle
	nodePolicy []graph.ArcID // node -> original arc ID of its last converged policy arc, -1 unknown
	stats      DynStats

	// Lazily materialized canonical snapshot of the current graph, used for
	// certification; invalidated by every successful mutation.
	snap   *graph.Graph
	export []graph.ArcID // snapshot arc -> original ID, ascending
	origTo []graph.ArcID // original ID -> snapshot arc, -1 dead
	snapOK bool
}

// NewDynSession seeds the engine with g (copied, never retained). The seed
// graph's arcs keep their IDs 0..m-1 as original IDs. The first Solve runs
// cold and is bit-identical — cycle included — to MinimumCycleMean(g,
// howard, opt).
func NewDynSession(g *graph.Graph, opt Options) *DynSession {
	d := &DynSession{opt: opt, dg: graph.NewDynamic(g)}
	n := g.NumNodes()
	d.compOf = make([]int32, n)
	d.nodePolicy = make([]graph.ArcID, n)
	for i := 0; i < n; i++ {
		d.compOf[i] = -1
		d.nodePolicy[i] = -1
	}
	for _, comp := range graph.CyclicComponents(g) {
		d.addComp(&dynComp{nodes: comp.Nodes, g: comp.Graph, arcOrig: comp.ArcMap, dirty: true})
	}
	return d
}

// addComp appends c and points its members' compOf entries at it.
func (d *DynSession) addComp(c *dynComp) {
	idx := int32(len(d.comps))
	d.comps = append(d.comps, c)
	for _, v := range c.nodes {
		d.compOf[v] = idx
	}
}

// removeComp swap-deletes comps[i], fixing compOf for the moved component.
// The removed component's members are left pointing at -1.
func (d *DynSession) removeComp(i int32) *dynComp {
	c := d.comps[i]
	for _, v := range c.nodes {
		d.compOf[v] = -1
	}
	last := int32(len(d.comps) - 1)
	if i != last {
		d.comps[i] = d.comps[last]
		for _, v := range d.comps[i].nodes {
			d.compOf[v] = i
		}
	}
	d.comps = d.comps[:last]
	return c
}

// Apply applies deltas in order and returns, aligned with them, the ID each
// one assigned: the fresh original arc ID for DeltaInsertArc, the new node
// ID for DeltaAddNode, and -1 otherwise. Deltas are atomic individually, not
// as a batch: on error the earlier deltas of the slice remain applied (the
// error names the failing index). No solving happens; invalidated components
// are re-solved by the next Solve.
func (d *DynSession) Apply(deltas ...Delta) ([]int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.applyLocked(deltas)
}

func (d *DynSession) applyLocked(deltas []Delta) ([]int64, error) {
	ids := make([]int64, 0, len(deltas))
	for i, dl := range deltas {
		id, err := d.applyOne(dl)
		if err != nil {
			return ids, fmt.Errorf("%w: delta %d (%s): %v", ErrBadDelta, i, dl.Op, err)
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// applyOne applies a single delta and emits its DeltaEvent.
func (d *DynSession) applyOne(dl Delta) (int64, error) {
	ev := obs.DeltaEvent{Op: dl.Op.String(), Arc: -1, From: -1, To: -1}
	ret := int64(-1)
	switch dl.Op {
	case DeltaAddNode:
		v := d.dg.AddNode()
		d.compOf = append(d.compOf, -1)
		d.nodePolicy = append(d.nodePolicy, -1)
		ev.From = int(v)
		ret = int64(v)

	case DeltaSetWeight, DeltaSetTransit:
		a, ok := d.dg.Arc(dl.Arc)
		if !ok {
			return -1, fmt.Errorf("%w: id %d", graph.ErrArcNotLive, dl.Arc)
		}
		var err error
		if dl.Op == DeltaSetWeight {
			err = d.dg.SetWeight(dl.Arc, dl.Weight)
		} else {
			err = d.dg.SetTransit(dl.Arc, dl.Transit)
		}
		if err != nil {
			return -1, err
		}
		ev.Arc, ev.From, ev.To = int(dl.Arc), int(a.From), int(a.To)
		ev.Invalidated = d.touchValue(a)

	case DeltaInsertArc:
		id, err := d.dg.InsertArc(dl.From, dl.To, dl.Weight, dl.Transit)
		if err != nil {
			return -1, err
		}
		ev.Arc, ev.From, ev.To = int(id), int(dl.From), int(dl.To)
		ev.Invalidated, ev.Merged = d.insertIncremental(dl.From, dl.To)
		if ev.Merged > 1 {
			d.stats.Merges++
		}
		ret = int64(id)

	case DeltaDeleteArc:
		a, ok := d.dg.Arc(dl.Arc)
		if !ok {
			return -1, fmt.Errorf("%w: id %d", graph.ErrArcNotLive, dl.Arc)
		}
		if err := d.dg.DeleteArc(dl.Arc); err != nil {
			return -1, err
		}
		ev.Arc, ev.From, ev.To = int(dl.Arc), int(a.From), int(a.To)
		ev.Invalidated, ev.Split = d.deleteIncremental(a)
		if ev.Split > 1 {
			d.stats.Splits++
		}

	default:
		return -1, fmt.Errorf("unknown op %d", dl.Op)
	}
	d.snapOK = false
	d.stats.Deltas++
	d.stats.Invalidated += ev.Invalidated
	ev.Components = len(d.comps)
	d.opt.Tracer.Delta(ev)
	return ret, nil
}

// touchValue absorbs a weight/transit change on arc a. Only an
// intra-component arc can lie on a cycle, so only then is anything
// invalidated — and even then the component's subgraph structure and policy
// stay valid: the subgraph values are refreshed in place at the next solve.
func (d *DynSession) touchValue(a graph.Arc) (invalidated int) {
	ci := d.compOf[a.From]
	if ci < 0 || ci != d.compOf[a.To] {
		return 0
	}
	c := d.comps[ci]
	if c.dirty {
		return 0
	}
	c.dirty = true
	c.weightOnly = true
	if c.hasRes {
		return 1
	}
	return 0
}

// insertIncremental updates the decomposition after inserting u→v. The new
// arc creates a cycle iff v already reaches u; in that case the new merged
// SCC is exactly S = {x : v ⇝ x ∧ x ⇝ u} (computed by a forward BFS from v
// intersected with a backward BFS from u), every existing component
// intersecting S is swallowed whole, and S is rebuilt as one component. A
// same-component insertion rebuilds just that component; an insertion that
// closes no cycle costs two BFS passes and invalidates nothing.
func (d *DynSession) insertIncremental(u, v graph.NodeID) (invalidated, merged int) {
	cu, cv := d.compOf[u], d.compOf[v]
	if u == v {
		if cu >= 0 {
			return d.rebuildComps([]int32{cu}), 0
		}
		d.rebuildNodes([]graph.NodeID{u})
		return 0, 0
	}
	if cu >= 0 && cu == cv {
		return d.rebuildComps([]int32{cu}), 0
	}
	fwd := d.reach(v, false)
	if !fwd[u] {
		return 0, 0
	}
	back := d.reach(u, true)
	var nodes []graph.NodeID
	for x := range fwd {
		if fwd[x] && back[x] {
			nodes = append(nodes, graph.NodeID(x))
		}
	}
	seen := map[int32]bool{}
	for _, x := range nodes {
		if ci := d.compOf[x]; ci >= 0 {
			seen[ci] = true
		}
	}
	merged = len(seen)
	cis := make([]int32, 0, len(seen))
	for ci := range seen {
		cis = append(cis, ci)
	}
	invalidated = d.dropComps(cis)
	d.rebuildNodes(nodes)
	return invalidated, merged
}

// deleteIncremental updates the decomposition after deleting arc a. Only an
// intra-component deletion can change anything, and it can only affect that
// one component: its node set is re-decomposed in isolation, yielding the
// surviving cyclic components (possibly none, one, or several).
func (d *DynSession) deleteIncremental(a graph.Arc) (invalidated, split int) {
	ci := d.compOf[a.From]
	if ci < 0 || ci != d.compOf[a.To] {
		return 0, 0
	}
	c := d.comps[ci]
	clean := 0
	if c.hasRes && !c.dirty {
		clean = 1
	}
	nodes := c.nodes
	d.removeComp(ci)
	before := len(d.comps)
	d.rebuildNodes(nodes)
	return clean, len(d.comps) - before
}

// dropComps removes the given components, returning how many carried a
// clean cached result.
func (d *DynSession) dropComps(cis []int32) (clean int) {
	// Remove largest index first: removeComp swap-deletes, which would
	// otherwise reshuffle the indices still pending removal.
	sort.Slice(cis, func(i, j int) bool { return cis[i] > cis[j] })
	for _, ci := range cis {
		c := d.removeComp(ci)
		if c.hasRes && !c.dirty {
			clean++
		}
	}
	return clean
}

// rebuildComps re-decomposes the node sets of the given components (their
// structure changed in place — e.g. an intra-component insertion), returning
// how many clean cached results were invalidated.
func (d *DynSession) rebuildComps(cis []int32) (invalidated int) {
	var nodes []graph.NodeID
	for _, ci := range cis {
		nodes = append(nodes, d.comps[ci].nodes...)
	}
	invalidated = d.dropComps(cis)
	d.rebuildNodes(nodes)
	return invalidated
}

// rebuildNodes decomposes the induced subgraph over nodes into cyclic
// components and registers each, dirty. nodes must currently belong to no
// component.
func (d *DynSession) rebuildNodes(nodes []graph.NodeID) {
	if len(nodes) == 0 {
		return
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	local := make(map[graph.NodeID]graph.NodeID, len(nodes))
	for li, gn := range nodes {
		local[gn] = graph.NodeID(li)
	}
	var (
		arcs    []graph.Arc
		arcOrig []graph.ArcID
	)
	for _, gn := range nodes {
		li := local[gn]
		for _, id := range d.dg.OutLive(gn) {
			a, _ := d.dg.Arc(id)
			lj, in := local[a.To]
			if !in {
				continue
			}
			arcs = append(arcs, graph.Arc{From: li, To: lj, Weight: a.Weight, Transit: a.Transit})
			arcOrig = append(arcOrig, id)
		}
	}
	lg := graph.FromArcs(len(nodes), arcs)
	for _, comp := range graph.CyclicComponents(lg) {
		gNodes := make([]graph.NodeID, len(comp.Nodes))
		for i, ln := range comp.Nodes {
			gNodes[i] = nodes[ln]
		}
		gArcs := make([]graph.ArcID, len(comp.ArcMap))
		for i, la := range comp.ArcMap {
			gArcs[i] = arcOrig[la]
		}
		d.addComp(&dynComp{nodes: gNodes, g: comp.Graph, arcOrig: gArcs, dirty: true})
	}
}

// reach runs a BFS over the live overlay from start, forward or backward,
// and returns the visited set.
func (d *DynSession) reach(start graph.NodeID, backward bool) []bool {
	n := d.dg.NumNodes()
	seen := make([]bool, n)
	queue := make([]graph.NodeID, 0, 16)
	seen[start] = true
	queue = append(queue, start)
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		var ids []graph.ArcID
		if backward {
			ids = d.dg.InLive(x)
		} else {
			ids = d.dg.OutLive(x)
		}
		for _, id := range ids {
			a, _ := d.dg.Arc(id)
			next := a.To
			if backward {
				next = a.From
			}
			if !seen[next] {
				seen[next] = true
				queue = append(queue, next)
			}
		}
	}
	return seen
}

// Solve computes the minimum cycle mean of the current graph, re-solving
// only components invalidated since the previous call. λ* is bit-identical
// to a fresh MinimumCycleMean(Materialize(), howard, opt); Result.Cycle (and
// Certificate.Witness) reference original arc IDs. Result.Counts covers only
// the work done by THIS call — a fully warm call reports zero counts.
// Returns ErrAcyclic when the graph currently has no cycle.
func (d *DynSession) Solve() (Result, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.solveLocked(d.opt)
}

// SolveContext is Solve under a context, unwinding with ErrCanceled at the
// next solver checkpoint when ctx is done. A canceled or failed component
// solve leaves that component dirty, so a later call resumes exactly the
// remaining work — interruption never poisons cached state.
func (d *DynSession) SolveContext(ctx context.Context) (Result, error) {
	opt, stop := d.opt.WithCancelContext(ctx)
	defer stop()
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.solveLocked(opt)
}

// Update atomically applies deltas and re-solves, under one lock hold — the
// serving layer's per-delta hot path. The returned IDs are Apply's. When
// apply fails nothing is solved; the error reports the failing delta.
func (d *DynSession) Update(ctx context.Context, deltas []Delta) ([]int64, Result, error) {
	opt, stop := d.opt.WithCancelContext(ctx)
	defer stop()
	d.mu.Lock()
	defer d.mu.Unlock()
	ids, err := d.applyLocked(deltas)
	if err != nil {
		return ids, Result{}, err
	}
	res, err := d.solveLocked(opt)
	return ids, res, err
}

// updateAndExport is Update plus an atomic canonical snapshot of the graph
// the result answers for, taken under the same lock hold. The concurrency
// stress tests verify each returned result against a fresh solve of exactly
// this snapshot, which no concurrent updater can have edited.
func (d *DynSession) updateAndExport(ctx context.Context, deltas []Delta) ([]int64, Result, *graph.Graph, []graph.ArcID, error) {
	opt, stop := d.opt.WithCancelContext(ctx)
	defer stop()
	d.mu.Lock()
	defer d.mu.Unlock()
	ids, err := d.applyLocked(deltas)
	if err != nil {
		return ids, Result{}, nil, nil, err
	}
	res, err := d.solveLocked(opt)
	if err != nil {
		return ids, Result{}, nil, nil, err
	}
	d.refreshSnapshot()
	return ids, res, d.snap, d.export, nil
}

func (d *DynSession) solveLocked(opt Options) (res Result, err error) {
	d.stats.Solves++
	defer func() {
		if err != nil {
			d.stats.Errors++
		}
	}()
	defer RecoverNumericRange(&err, ErrNumericRange)
	if len(d.comps) == 0 {
		return Result{}, ErrAcyclic
	}
	tr := opt.Tracer
	if tr.Enabled() {
		ev := obs.SCCEvent{Components: len(d.comps), Sizes: make([]int, len(d.comps))}
		for i, c := range d.comps {
			ev.Sizes[i] = c.g.NumNodes()
			ev.Nodes += c.g.NumNodes()
			ev.Arcs += c.g.NumArcs()
		}
		tr.SCC(ev)
	}
	var total counter.Counts
	for ci, c := range d.comps {
		if !c.dirty {
			continue
		}
		if err := d.solveComp(ci, c, opt, tr); err != nil {
			return Result{}, err
		}
		total.Add(c.res.Counts)
	}
	var (
		best     Result
		bestComp *dynComp
	)
	for _, c := range d.comps {
		if bestComp == nil || c.res.Mean.Less(best.Mean) {
			best = c.res
			bestComp = c
		}
	}
	cycle := make([]graph.ArcID, len(best.Cycle))
	for i, la := range best.Cycle {
		cycle[i] = bestComp.arcOrig[la]
	}
	best.Cycle = cycle
	best.Counts = total
	best.Certificate = nil
	if opt.Certify {
		d.refreshSnapshot()
		// Certify against the canonical snapshot: map the witness onto
		// compact snapshot IDs, prove, then map back in place — the
		// certificate's Witness aliases the same backing array, so both end
		// up in original-ID space together.
		for i, id := range cycle {
			cycle[i] = d.origTo[id]
		}
		if cerr := certifyMean(d.snap, &best, tr); cerr != nil {
			return Result{}, cerr
		}
		for i, id := range best.Cycle {
			best.Cycle[i] = d.export[id]
		}
	}
	return best, nil
}

// solveComp re-solves one dirty component, warm-starting when possible.
func (d *DynSession) solveComp(ci int, c *dynComp, opt Options, tr *obs.Trace) error {
	// Always refresh weights/transits from the overlay before solving: a
	// value delta landing on a component that was ALREADY dirty (structural
	// rebuild pending, or never solved) leaves the cached subgraph stale
	// without flipping weightOnly, and the refresh is O(arcs) — noise next
	// to the solve it precedes. (Found by FuzzSessionDeltas seed corpus.)
	if err := d.dg.RefreshInduced(c.g, c.arcOrig); err != nil {
		return err
	}
	var warm []graph.ArcID
	warmed := false
	if c.weightOnly && c.policy != nil {
		warm, warmed = c.policy, true
	} else {
		warm, warmed = d.transferPolicy(c)
	}
	if warmed {
		tr.Cache(obs.CacheEvent{Op: obs.CacheHit, Entries: len(d.comps)})
	} else {
		tr.Cache(obs.CacheEvent{Op: obs.CacheMiss, Entries: len(d.comps)})
	}
	var start time.Time
	if tr.Enabled() {
		tr.SolverStart(obs.SolverStartEvent{Algorithm: "howard", Component: ci,
			Nodes: c.g.NumNodes(), Arcs: c.g.NumArcs(), WarmStart: warmed})
		start = time.Now()
	}
	r, policy, err := howardRun(c.g, opt, warm, true)
	if tr.Enabled() {
		tr.SolverDone(obs.SolverDoneEvent{Algorithm: "howard", Component: ci,
			Nodes: c.g.NumNodes(), Arcs: c.g.NumArcs(),
			Duration: time.Since(start), Counts: r.Counts, Value: r.Mean.Float64(), Err: err})
	}
	if err != nil {
		return err
	}
	if warmed {
		d.stats.WarmHits++
	} else {
		d.stats.WarmMisses++
	}
	d.stats.Components++
	c.res = r
	c.policy = policy
	c.hasRes = true
	c.dirty = false
	c.weightOnly = false
	for li, la := range policy {
		d.nodePolicy[c.nodes[li]] = c.arcOrig[la]
	}
	return nil
}

// transferPolicy builds a warm policy for a freshly rebuilt component from
// the per-node policy memory: nodes whose remembered arc is still an
// intra-component arc keep it, the rest fall back to their cheapest out-arc
// (Howard's cold initialization). When no node transfers anything the
// component solves cold.
func (d *DynSession) transferPolicy(c *dynComp) ([]graph.ArcID, bool) {
	n := c.g.NumNodes()
	warm := make([]graph.ArcID, n)
	transferred := false
	for li := 0; li < n; li++ {
		want := d.nodePolicy[c.nodes[li]]
		chosen := graph.ArcID(-1)
		if want >= 0 {
			for _, la := range c.g.OutArcs(graph.NodeID(li)) {
				if c.arcOrig[la] == want {
					chosen = la
					transferred = true
					break
				}
			}
		}
		if chosen < 0 {
			for _, la := range c.g.OutArcs(graph.NodeID(li)) {
				if chosen < 0 || c.g.Arc(la).Weight < c.g.Arc(chosen).Weight {
					chosen = la
				}
			}
			if chosen < 0 {
				return nil, false // no out-arc: not a cyclic component
			}
		}
		warm[li] = chosen
	}
	if !transferred {
		return nil, false
	}
	return warm, true
}

// refreshSnapshot (re)materializes the canonical snapshot lazily.
func (d *DynSession) refreshSnapshot() {
	if d.snapOK {
		return
	}
	d.snap, d.export = d.dg.Materialize()
	next := int(d.dg.NextArcID())
	if cap(d.origTo) < next {
		d.origTo = make([]graph.ArcID, next)
	}
	d.origTo = d.origTo[:next]
	for i := range d.origTo {
		d.origTo[i] = -1
	}
	for ci, orig := range d.export {
		d.origTo[orig] = graph.ArcID(ci)
	}
	d.snapOK = true
}

// Materialize returns the canonical immutable snapshot of the current graph
// — live arcs in ascending original-ID order — plus the export map from
// snapshot arc IDs back to original IDs. Both are shared with the session:
// treat them as read-only. Two sessions whose graphs have identical live
// content materialize to identical fingerprints regardless of edit history,
// which is what keys the serve layer's content-addressed result cache.
func (d *DynSession) Materialize() (*graph.Graph, []graph.ArcID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.refreshSnapshot()
	return d.snap, d.export
}

// Arc returns the current live arc with the given original ID.
func (d *DynSession) Arc(id graph.ArcID) (graph.Arc, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dg.Arc(id)
}

// Dims returns the current node count and live arc count.
func (d *DynSession) Dims() (nodes, arcs int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dg.NumNodes(), d.dg.NumLiveArcs()
}

// Stats returns a snapshot of the engine's counters.
func (d *DynSession) Stats() DynStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.stats
	s.LiveComponents = len(d.comps)
	return s
}
