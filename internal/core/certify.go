package core

// Result certification: every float-converged solver answer is snapped to
// the rational λ* it must equal (cycle means of integer-weighted graphs are
// rationals with denominator at most n), the reported critical cycle's value
// is recomputed in exact arithmetic, and optimality is proven by checking —
// entirely in scaled int64 arithmetic — that the graph reweighted by
// q·w(e) − p admits no negative cycle (the paper's Equation 1 feasibility
// certificate for λ = p/q). A Result that carries a Certificate is therefore
// exact unconditionally: its value does not rest on any solver's float
// epsilon, only on two Bellman–Ford facts checkable in O(nm) integer steps.
//
// This file also hosts the panic-free error boundary: the int64 rational
// helpers in internal/numeric panic on overflow (they are leaf arithmetic,
// with no error channel), and the boundary converts those panics into the
// typed ErrNumericRange at every public entry point so no input — however
// extreme — can crash a caller.

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/obs"
)

var (
	// ErrNumericRange means the exact int64 arithmetic behind a solve or a
	// certification overflowed for this input's magnitudes. It is the typed,
	// returnable form of internal/numeric's overflow panics.
	ErrNumericRange = errors.New("core: input magnitudes exceed the exact int64 arithmetic range")
	// ErrCertification means Options.Certify was set and the exact
	// optimality proof failed: either no bounded-denominator rational could
	// be recovered from the solver's value, or the feasibility check found a
	// better cycle. On exact solver runs this indicates a bug; on
	// epsilon-mode runs it means the approximate answer genuinely is not λ*.
	ErrCertification = errors.New("core: result certification failed")
)

// Certificate is the exact optimality proof attached to a Result by
// Options.Certify. It records what was verified: Witness is a cycle of the
// solved graph whose exact rational value equals Value, and the solved
// graph reweighted by Value admits no negative cycle, so no cycle with a
// smaller value exists. Together the two facts prove Value is the optimum.
type Certificate struct {
	// Value is the certified optimum (λ* for means, ρ* for ratios; the
	// maximum when Maximize is set).
	Value numeric.Rat
	// Witness is the certified cycle attaining Value exactly (it aliases
	// the Result's Cycle field).
	Witness []graph.ArcID
	// MaxDen is the denominator bound used for rational recovery: n for
	// means, the total transit time for ratios.
	MaxDen int64
	// Snapped records that the solver's value was approximate and was
	// recovered by continued-fraction snapping before verification.
	Snapped bool
	// Maximize records that the optimum was proven on the weight-negated
	// instance (MaximumCycleMean / MaximumCycleRatio).
	Maximize bool
}

// certifyMean verifies and, if needed, exactifies a minimization result in
// place: res.Mean becomes the certified rational λ*, res.Exact is set, and
// res.Certificate records the proof. Any failure leaves res untouched and
// returns an error wrapping ErrCertification or ErrNumericRange. The outcome
// (pass/fail, snap denominator, proof duration) is reported to tr.
func certifyMean(g *graph.Graph, res *Result, tr *obs.Trace) error {
	if !tr.Enabled() {
		return certifyMeanProof(g, res)
	}
	start := time.Now()
	err := certifyMeanProof(g, res)
	tr.Certify(certifyEvent(err, time.Since(start), res.Certificate))
	return err
}

// certifyEvent shapes a certification outcome for the tracer.
func certifyEvent(err error, d time.Duration, cert *Certificate) obs.CertifyEvent {
	ev := obs.CertifyEvent{OK: err == nil, Duration: d, Err: err}
	if err == nil && cert != nil {
		ev.Value = cert.Value.Float64()
		ev.MaxDen = cert.MaxDen
		ev.Snapped = cert.Snapped
	}
	return ev
}

// certifyMeanProof is the proof itself, tracer-free.
func certifyMeanProof(g *graph.Graph, res *Result) error {
	maxDen := int64(g.NumNodes())
	if maxDen < 1 {
		maxDen = 1
	}
	value := res.Mean
	snapped := false
	if !res.Exact {
		snapped = true
		if len(res.Cycle) > 0 {
			// The reported cycle is concrete evidence; its exact mean is the
			// best recovery candidate.
			value = numeric.NewRat(g.CycleWeight(res.Cycle), int64(len(res.Cycle)))
		} else if v, ok := numeric.SnapNearest(res.Mean.Float64(), maxDen); ok {
			value = v
		} else {
			return fmt.Errorf("%w: no rational with denominator <= %d near %v", ErrCertification, maxDen, res.Mean)
		}
	}
	cycle := res.Cycle
	if len(cycle) == 0 {
		c, err := extractCriticalCycle(g, value)
		if err != nil {
			return fmt.Errorf("%w: no witness cycle of mean %v: %v", ErrCertification, value, err)
		}
		cycle = c
	}
	cycVal := numeric.NewRat(g.CycleWeight(cycle), int64(len(cycle)))
	if !cycVal.Equal(value) {
		return fmt.Errorf("%w: witness cycle mean %v does not equal claimed λ* = %v", ErrCertification, cycVal, value)
	}
	p, q := value.Num(), value.Den()
	if scaledOverflows(g, p, q) {
		return fmt.Errorf("%w: feasibility check at λ = %v would overflow", ErrNumericRange, value)
	}
	if neg, _ := hasNegativeCycleScaled(g, p, q, &res.Counts); neg {
		return fmt.Errorf("%w: a cycle with mean below %v exists", ErrCertification, value)
	}
	res.Mean = value
	res.Cycle = cycle
	res.Exact = true
	res.Certificate = &Certificate{Value: value, Witness: cycle, MaxDen: maxDen, Snapped: snapped}
	return nil
}

// RecoverNumericRange is the deferred half of the panic-free boundary: it
// converts internal/numeric's overflow panics (all carry a "numeric:"
// string) into sentinel, re-raising anything else. Use as
// `defer RecoverNumericRange(&err, ErrNumericRange)` on any path that runs
// rational arithmetic on caller-controlled magnitudes.
func RecoverNumericRange(err *error, sentinel error) {
	r := recover()
	if r == nil {
		return
	}
	if s, ok := r.(string); ok && strings.HasPrefix(s, "numeric:") {
		*err = fmt.Errorf("%w (%s)", sentinel, s)
		return
	}
	panic(r)
}

// guardedAlg wraps a registered Algorithm so its Solve never lets a numeric
// overflow panic escape to the caller; every instance handed out by ByName
// or All is wrapped, making the whole registry panic-free by construction.
// The wrapper is also the universal solver-event emission point: since every
// path — drivers, portfolio racers, bench harness, direct callers — goes
// through a registry instance, instrumenting Solve here observes them all.
type guardedAlg struct {
	Algorithm
}

func (a guardedAlg) Solve(g *graph.Graph, opt Options) (Result, error) {
	tr := opt.Tracer
	if !tr.Enabled() {
		return a.solveGuarded(g, opt)
	}
	name := a.Algorithm.Name()
	comp := opt.traceComponent - 1
	n, m := g.NumNodes(), g.NumArcs()
	tr.SolverStart(obs.SolverStartEvent{Algorithm: name, Component: comp, Nodes: n, Arcs: m})
	start := time.Now()
	res, err := a.solveGuarded(g, opt)
	tr.SolverDone(obs.SolverDoneEvent{Algorithm: name, Component: comp, Nodes: n, Arcs: m,
		Duration: time.Since(start), Counts: res.Counts, Value: res.Mean.Float64(), Err: err})
	return res, err
}

// solveGuarded runs the wrapped solver inside the panic-free boundary; split
// out so the tracing wrapper above observes the recovered error, not the
// panic.
func (a guardedAlg) solveGuarded(g *graph.Graph, opt Options) (res Result, err error) {
	defer RecoverNumericRange(&err, ErrNumericRange)
	return a.Algorithm.Solve(g, opt)
}
