package core

import (
	"repro/internal/counter"
	"repro/internal/graph"
	"repro/internal/numeric"
)

func init() {
	register("madani", func() Algorithm { return madaniAlg{} })
}

// madaniAlg is value iteration with loop contraction and index resetting for
// deterministic MDPs [Madani, arXiv:1301.0583] — the post-1999 Howard
// competitor from ROADMAP item 2. Plain value iteration for the average
// reward criterion need not converge on deterministic chains (values
// oscillate with the period of the optimal cycle); Madani's observation is
// that the greedy update structure itself exposes the offending loops, and
// contracting them — adopting the loop's exact mean as the new candidate and
// resetting the value indices — yields a polynomial algorithm.
//
// This implementation runs the scheme in exact integer arithmetic on the
// reduced costs q·w − p for the current candidate λ = p/q (always an actual
// cycle's mean, so an exact rational with denominator ≤ n):
//
//  1. The candidate starts as the best cycle mean of the cheapest-out-arc
//     policy (the same seed Howard uses).
//  2. Each value-iteration pass performs one monotone Bellman–Ford sweep
//     d(v) ← min(d(v), d(u) + q·w(u→v) − p), recording the improving arc as
//     each node's parent.
//  3. After every pass the parent graph (≤ 1 in-arc per node) is scanned in
//     O(n) for cycles. A classical relaxation invariant says any cycle among
//     parent arcs has negative reduced weight, i.e. mean strictly below the
//     candidate: the loop is *contracted* — its exact mean becomes the new
//     candidate — and the indices are *reset* (d ← 0, parents cleared).
//  4. A pass with no change is an exact fixed point: d is an integer
//     feasibility certificate for G_λ (every arc satisfies d(u) + q·w − p ≥
//     d(v), so every cycle's mean is ≥ λ), and since λ is a real cycle's
//     mean, λ = λ* exactly.
//
// Each contraction strictly decreases the candidate through actual cycle
// means, and Bellman–Ford theory guarantees a parent cycle within n passes
// whenever one mean is still below the candidate, so the scheme terminates
// with no floating point anywhere on the answer path.
type madaniAlg struct{}

func (madaniAlg) Name() string { return "madani" }

func (madaniAlg) Solve(g *graph.Graph, opt Options) (Result, error) {
	if err := checkSolveInput(g); err != nil {
		return Result{}, err
	}
	n := g.NumNodes()
	var counts counter.Counts

	ws := getMadaniWS(n)
	defer ws.release()

	// Seed candidate: cheapest out-arc policy, best cycle mean among its
	// policy cycles (out-degree 1 everywhere guarantees at least one).
	policy := ws.policy
	for v := graph.NodeID(0); int(v) < n; v++ {
		policy[v] = -1
		best := int64(0)
		for _, id := range g.OutArcs(v) {
			if w := g.Arc(id).Weight; policy[v] < 0 || w < best {
				best = w
				policy[v] = id
			}
		}
		if policy[v] < 0 {
			return Result{}, ErrNotStronglyConnected
		}
	}
	var (
		cand     numeric.Rat
		haveCand bool
	)
	bestCyc := ws.bestCyc[:0]
	defer func() { ws.bestCyc = bestCyc }()
	ws.pc.policyCycles(g, policy, func(cycle []graph.ArcID) {
		counts.CyclesExamined++
		r := numeric.NewRat(g.CycleWeight(cycle), int64(len(cycle)))
		if !haveCand || r.Less(cand) {
			cand = r
			bestCyc = append(bestCyc[:0], cycle...)
			haveCand = true
		}
	})
	if !haveCand {
		return Result{}, ErrIterationLimit // impossible: out-degree 1 everywhere
	}

	p, q := cand.Num(), cand.Den()
	if scaledOverflows(g, p, q) {
		return Result{}, ErrWeightRange
	}

	// Index reset (step 3): zeroed values, cleared parents. Runs once per
	// contraction epoch; each epoch is one negative-cycle detection.
	d, parent := ws.d, ws.parent
	reset := func() {
		counts.NegativeCycleChecks++
		for i := range d {
			d[i] = 0
		}
		for i := range parent {
			parent[i] = -1
		}
	}
	reset()

	arcs := g.Arcs()
	maxIter := opt.maxIter(100*n + 1000)
	for iter := 0; iter < maxIter; iter++ {
		if err := opt.checkpoint(); err != nil {
			return Result{}, err
		}
		counts.Iterations++

		// One monotone value-iteration pass on the reduced costs.
		changed := false
		for id, a := range arcs {
			counts.Relaxations++
			if nd := d[a.From] + q*a.Weight - p; nd < d[a.To] {
				d[a.To] = nd
				parent[a.To] = graph.ArcID(id)
				changed = true
			}
		}
		if !changed {
			// Exact fixed point: d certifies feasibility of λ = cand, and
			// bestCyc achieves it.
			cycle := make([]graph.ArcID, len(bestCyc))
			copy(cycle, bestCyc)
			return Result{Mean: cand, Cycle: cycle, Exact: true, Counts: counts}, nil
		}

		// Loop contraction: scan the parent graph for cycles; every one found
		// has mean strictly below the candidate. Contract with the best.
		improved := false
		ws.scanParentCycles(g, func(cycle []graph.ArcID) {
			counts.CyclesExamined++
			// cand tracks the scan's running minimum, so the comparison keeps
			// only strict improvements (the invariant promises one, but the
			// guard makes a violation stall at ErrIterationLimit, not loop).
			if r := numeric.NewRat(g.CycleWeight(cycle), int64(len(cycle))); r.Less(cand) {
				cand = r
				bestCyc = append(bestCyc[:0], cycle...)
				improved = true
			}
		})
		if improved {
			p, q = cand.Num(), cand.Den()
			if scaledOverflows(g, p, q) {
				return Result{}, ErrWeightRange
			}
			reset()
		}
	}
	return Result{}, ErrIterationLimit
}
