package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/ncd"
	"repro/internal/numeric"
	"repro/internal/pq"
	"repro/internal/verify"
)

func mustAlgo(t *testing.T, name string) Algorithm {
	t.Helper()
	algo, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return algo
}

func TestRegistry(t *testing.T) {
	names := Names()
	want := []string{"approx", "burns", "dg", "dg2", "ho", "ho2", "howard", "karp", "karp2", "ko", "lawler", "madani", "oa1", "oa2", "yto"}
	if len(names) != len(want) {
		t.Fatalf("names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
	for _, a := range All() {
		fresh, err := ByName(a.Name())
		if err != nil || fresh.Name() != a.Name() {
			t.Fatalf("registry roundtrip broken for %s", a.Name())
		}
	}
}

func TestSolvePreconditions(t *testing.T) {
	// Not strongly connected.
	b := graph.NewBuilder(3, 2)
	b.AddNodes(3)
	b.AddArc(0, 1, 1)
	b.AddArc(1, 2, 1)
	dag := b.Build()
	// Single node, no self-loop.
	b2 := graph.NewBuilder(1, 0)
	b2.AddNodes(1)
	lone := b2.Build()
	// Empty graph.
	empty := graph.NewBuilder(0, 0).Build()

	for _, algo := range All() {
		if _, err := algo.Solve(dag, Options{}); !errors.Is(err, ErrNotStronglyConnected) {
			t.Errorf("%s on DAG: %v, want ErrNotStronglyConnected", algo.Name(), err)
		}
		if _, err := algo.Solve(lone, Options{}); !errors.Is(err, ErrAcyclic) {
			t.Errorf("%s on lone node: %v, want ErrAcyclic", algo.Name(), err)
		}
		if _, err := algo.Solve(empty, Options{}); !errors.Is(err, ErrAcyclic) {
			t.Errorf("%s on empty graph: %v, want ErrAcyclic", algo.Name(), err)
		}
	}
}

func TestSingleSelfLoop(t *testing.T) {
	b := graph.NewBuilder(1, 1)
	b.AddNodes(1)
	b.AddArc(0, 0, -7)
	g := b.Build()
	for _, algo := range All() {
		res, err := algo.Solve(g, Options{})
		if err != nil {
			t.Fatalf("%s: %v", algo.Name(), err)
		}
		if !res.Mean.Equal(numeric.FromInt(-7)) {
			t.Errorf("%s: λ* = %v, want -7", algo.Name(), res.Mean)
		}
		if len(res.Cycle) != 1 {
			t.Errorf("%s: cycle %v, want the self-loop", algo.Name(), res.Cycle)
		}
	}
}

func TestTwoCycleTie(t *testing.T) {
	// Parallel arcs in both directions: the optimum mixes the two cheap
	// arcs, (4+4)/2 = 4, and several distinct cycles tie at higher means.
	b := graph.NewBuilder(2, 4)
	b.AddNodes(2)
	b.AddArc(0, 1, 4)
	b.AddArc(1, 0, 6)
	b.AddArc(0, 1, 6)
	b.AddArc(1, 0, 4)
	g := b.Build()
	for _, algo := range All() {
		res, err := algo.Solve(g, Options{})
		if err != nil {
			t.Fatalf("%s: %v", algo.Name(), err)
		}
		if !res.Mean.Equal(numeric.FromInt(4)) {
			t.Errorf("%s: λ* = %v, want 4", algo.Name(), res.Mean)
		}
		if err := verify.CheckCycleIsOptimal(g, res.Mean, res.Cycle); err != nil {
			t.Errorf("%s: %v", algo.Name(), err)
		}
	}
}

func TestUniformWeights(t *testing.T) {
	// All weights equal: λ* equals that weight; exercises Lawler's
	// minW == maxW short-circuit and degenerate breakpoints elsewhere.
	g := gen.Cycle(9, 13)
	for _, algo := range All() {
		res, err := algo.Solve(g, Options{})
		if err != nil {
			t.Fatalf("%s: %v", algo.Name(), err)
		}
		if !res.Mean.Equal(numeric.FromInt(13)) {
			t.Errorf("%s: λ* = %v, want 13", algo.Name(), res.Mean)
		}
	}
}

func TestNegativeAndZeroWeights(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		g, err := gen.Sprand(gen.SprandConfig{N: 9, M: 22, MinWeight: -50, MaxWeight: 0, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := verify.BruteForceMinMean(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, algo := range All() {
			res, err := algo.Solve(g, Options{})
			if err != nil {
				t.Fatalf("%s seed=%d: %v", algo.Name(), seed, err)
			}
			if !res.Mean.Equal(want) {
				t.Errorf("%s seed=%d: %v want %v", algo.Name(), seed, res.Mean, want)
			}
		}
	}
}

func TestWeightRangeGuard(t *testing.T) {
	b := graph.NewBuilder(2, 2)
	b.AddNodes(2)
	b.AddArc(0, 1, math.MaxInt64/2)
	b.AddArc(1, 0, 1)
	g := b.Build()
	for _, algo := range All() {
		if _, err := algo.Solve(g, Options{}); !errors.Is(err, ErrWeightRange) {
			t.Errorf("%s: %v, want ErrWeightRange", algo.Name(), err)
		}
	}
}

func TestWeightRangeBoundary(t *testing.T) {
	// ±(2^31−1) is the documented limit and must be admitted exactly;
	// one past it must be rejected. Exercises both sides of the guard.
	mk := func(w int64) *graph.Graph {
		b := graph.NewBuilder(2, 2)
		b.AddNodes(2)
		b.AddArc(0, 1, w)
		b.AddArc(1, 0, -w)
		return b.Build()
	}
	for _, w := range []int64{MaxWeightMagnitude, -MaxWeightMagnitude} {
		g := mk(w)
		if err := checkSolveInput(g); err != nil {
			t.Fatalf("weight %d rejected: %v", w, err)
		}
		res, err := howardAlg{}.Solve(g, Options{})
		if err != nil {
			t.Fatalf("howard at weight %d: %v", w, err)
		}
		if !res.Exact || !res.Mean.IsZero() {
			t.Fatalf("howard at weight %d: mean %v, want exact 0", w, res.Mean)
		}
	}
	for _, w := range []int64{MaxWeightMagnitude + 1, -(MaxWeightMagnitude + 1)} {
		if err := checkSolveInput(mk(w)); !errors.Is(err, ErrWeightRange) {
			t.Fatalf("weight %d: %v, want ErrWeightRange", w, err)
		}
	}
}

func TestMinimumCycleMeanDriver(t *testing.T) {
	// MultiSCC: minimum over blocks. Howard on the full graph via driver
	// must match brute force over the whole graph.
	g, err := gen.MultiSCC(3, 6, 14, 11)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := verify.BruteForceMinMean(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range All() {
		res, err := MinimumCycleMean(g, algo, Options{})
		if err != nil {
			t.Fatalf("%s: %v", algo.Name(), err)
		}
		if !res.Mean.Equal(want) {
			t.Errorf("%s: %v want %v", algo.Name(), res.Mean, want)
		}
		if err := verify.CheckCycleIsOptimal(g, res.Mean, res.Cycle); err != nil {
			t.Errorf("%s: cycle maps badly across SCC extraction: %v", algo.Name(), err)
		}
	}
	// Acyclic input.
	b := graph.NewBuilder(2, 1)
	b.AddNodes(2)
	b.AddArc(0, 1, 5)
	if _, err := MinimumCycleMean(b.Build(), mustAlgo(t, "howard"), Options{}); !errors.Is(err, ErrAcyclic) {
		t.Fatalf("driver on DAG: %v, want ErrAcyclic", err)
	}
}

func TestMaximumCycleMean(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		g, err := gen.Sprand(gen.SprandConfig{N: 8, M: 20, MinWeight: -30, MaxWeight: 30, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := verify.BruteForceMaxMean(g)
		if err != nil {
			t.Fatal(err)
		}
		res, err := MaximumCycleMean(g, mustAlgo(t, "yto"), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Mean.Equal(want) {
			t.Errorf("seed %d: max mean %v, want %v", seed, res.Mean, want)
		}
	}
}

func TestCriticalSubgraph(t *testing.T) {
	// Triangle mean 2 plus a worse 2-cycle: critical subgraph must contain
	// the triangle's arcs and no arc of the worse cycle that is not tight.
	b := graph.NewBuilder(3, 5)
	b.AddNodes(3)
	b.AddArc(0, 1, 1)
	b.AddArc(1, 2, 2)
	b.AddArc(2, 0, 3)
	b.AddArc(1, 0, 99)
	b.AddArc(0, 0, 50)
	g := b.Build()

	res, err := mustAlgo(t, "howard").Solve(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	critical, sub, err := CriticalSubgraph(g, res.Mean)
	if err != nil {
		t.Fatal(err)
	}
	inCrit := make(map[graph.ArcID]bool)
	for _, id := range critical {
		inCrit[id] = true
	}
	for _, id := range []graph.ArcID{0, 1, 2} {
		if !inCrit[id] {
			t.Errorf("triangle arc %d not critical", id)
		}
	}
	if inCrit[3] || inCrit[4] {
		t.Errorf("non-tight arcs marked critical: %v", critical)
	}
	if !graph.HasCycle(sub) {
		t.Error("critical subgraph must contain the critical cycle")
	}
	// Infeasible λ must error.
	if _, _, err := CriticalSubgraph(g, res.Mean.Add(numeric.NewRat(1, 1))); err == nil {
		t.Error("infeasible λ accepted")
	}
}

func TestHeapKindsGiveSameAnswer(t *testing.T) {
	g, err := gen.Sprand(gen.SprandConfig{N: 60, M: 180, MinWeight: 1, MaxWeight: 10000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"ko", "yto"} {
		var ref numeric.Rat
		for i, kind := range []pq.Kind{pq.Fibonacci, pq.Binary, pq.Pairing, pq.Linear} {
			res, err := mustAlgo(t, name).Solve(g, Options{HeapKind: kind})
			if err != nil {
				t.Fatalf("%s/%v: %v", name, kind, err)
			}
			if i == 0 {
				ref = res.Mean
			} else if !res.Mean.Equal(ref) {
				t.Errorf("%s/%v: %v != %v", name, kind, res.Mean, ref)
			}
		}
	}
}

func TestEpsilonModeApproximation(t *testing.T) {
	g, err := gen.Sprand(gen.SprandConfig{N: 40, M: 120, MinWeight: 1, MaxWeight: 10000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := mustAlgo(t, "howard").Solve(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"lawler", "oa1", "oa2"} {
		res, err := mustAlgo(t, name).Solve(g, Options{Epsilon: 0.25})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Exact {
			t.Errorf("%s: epsilon mode must report Exact=false", name)
		}
		if diff := math.Abs(res.Mean.Float64() - exact.Mean.Float64()); diff > 0.5 {
			t.Errorf("%s: approximate λ %v is %v away from exact %v", name, res.Mean, diff, exact.Mean)
		}
	}
}

func TestParallelArcsAndSelfLoops(t *testing.T) {
	// Parallel arcs where the cheaper one matters, plus a competing
	// self-loop that is optimal.
	b := graph.NewBuilder(2, 5)
	b.AddNodes(2)
	b.AddArc(0, 1, 10)
	b.AddArc(0, 1, 2)
	b.AddArc(1, 0, 4)
	b.AddArc(1, 1, 2) // λ* = 2
	b.AddArc(0, 0, 9)
	g := b.Build()
	for _, algo := range All() {
		res, err := algo.Solve(g, Options{})
		if err != nil {
			t.Fatalf("%s: %v", algo.Name(), err)
		}
		if !res.Mean.Equal(numeric.FromInt(2)) {
			t.Errorf("%s: λ* = %v, want 2", algo.Name(), res.Mean)
		}
	}
}

// TestPropertyAllAlgorithmsAgree is the quick-check version of the central
// invariant, with negative weights and multigraph features enabled.
func TestPropertyAllAlgorithmsAgree(t *testing.T) {
	algos := All()
	f := func(seed uint64, nRaw, extra uint8) bool {
		n := int(nRaw)%8 + 2
		m := n + int(extra)%20
		g, err := gen.Sprand(gen.SprandConfig{N: n, M: m, MinWeight: -12, MaxWeight: 12, Seed: seed})
		if err != nil {
			return false
		}
		want, _, err := verify.BruteForceMinMean(g)
		if err != nil {
			return false
		}
		for _, algo := range algos {
			res, err := algo.Solve(g, Options{})
			if err != nil || !res.Mean.Equal(want) {
				t.Logf("%s on seed=%d n=%d m=%d: res=%v err=%v want=%v", algo.Name(), seed, n, m, res.Mean, err, want)
				return false
			}
			if verify.CheckCycleIsOptimal(g, res.Mean, res.Cycle) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestStructuredFamilies runs all algorithms on non-SPRAND textures.
func TestStructuredFamilies(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"complete": gen.Complete(10, -5, 20, 2),
		"torus":    gen.Torus(4, 4, 1, 50, 3),
		"cycle":    gen.Cycle(17, 100),
	}
	for name, g := range graphs {
		want, _, err := verify.BruteForceMinMean(g)
		if err != nil {
			t.Fatalf("%s oracle: %v", name, err)
		}
		for _, algo := range All() {
			res, err := algo.Solve(g, Options{})
			if err != nil {
				t.Fatalf("%s on %s: %v", algo.Name(), name, err)
			}
			if !res.Mean.Equal(want) {
				t.Errorf("%s on %s: %v want %v", algo.Name(), name, res.Mean, want)
			}
		}
	}
}

func TestResultLambdaHelper(t *testing.T) {
	r := Result{Mean: numeric.NewRat(7, 2)}
	if r.Lambda() != 3.5 {
		t.Fatalf("Lambda() = %v", r.Lambda())
	}
}

func TestCountersPopulated(t *testing.T) {
	g, err := gen.Sprand(gen.SprandConfig{N: 32, M: 96, MinWeight: 1, MaxWeight: 100, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	type check struct {
		name string
		ok   func(Result) bool
	}
	for _, c := range []check{
		{"howard", func(r Result) bool { return r.Counts.Iterations > 0 && r.Counts.CyclesExamined > 0 }},
		{"ko", func(r Result) bool { return r.Counts.Iterations > 0 && r.Counts.HeapOps() > 0 }},
		{"yto", func(r Result) bool { return r.Counts.Iterations > 0 && r.Counts.HeapOps() > 0 }},
		{"karp", func(r Result) bool { return r.Counts.ArcsVisited > 0 }},
		{"dg", func(r Result) bool { return r.Counts.ArcsVisited > 0 }},
		{"lawler", func(r Result) bool { return r.Counts.NegativeCycleChecks > 0 }},
		{"burns", func(r Result) bool { return r.Counts.Iterations > 0 }},
		{"madani", func(r Result) bool { return r.Counts.Iterations > 0 && r.Counts.CyclesExamined > 0 }},
		{"ho", func(r Result) bool { return r.Counts.Iterations > 0 }},
	} {
		res, err := mustAlgo(t, c.name).Solve(g, Options{})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !c.ok(res) {
			t.Errorf("%s: counters not populated: %+v", c.name, res.Counts)
		}
	}
}

func TestHOTerminatesEarlyOnDenseGraphs(t *testing.T) {
	g, err := gen.Sprand(gen.SprandConfig{N: 256, M: 768, MinWeight: 1, MaxWeight: 10000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := mustAlgo(t, "ho").Solve(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts.Iterations >= 256 {
		t.Errorf("HO did not terminate early: k = %d", res.Counts.Iterations)
	}
}

func TestKODetectsHamiltonianCycleImmediately(t *testing.T) {
	// On the pure cycle, the single cycle is found after few pivots and
	// Howard converges in one iteration (paper's m = n column behavior).
	g := gen.Cycle(200, 7)
	for _, name := range []string{"ko", "yto", "howard"} {
		res, err := mustAlgo(t, name).Solve(g, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Mean.Equal(numeric.FromInt(7)) {
			t.Fatalf("%s: λ* = %v", name, res.Mean)
		}
		if res.Counts.Iterations > 5 {
			t.Errorf("%s: %d iterations on the pure cycle", name, res.Counts.Iterations)
		}
	}
}

// TestLawlerNCDMethods: Lawler must return identical exact answers with
// every negative-cycle detector.
func TestLawlerNCDMethods(t *testing.T) {
	g, err := gen.Sprand(gen.SprandConfig{N: 48, M: 144, MinWeight: 1, MaxWeight: 10000, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	var ref numeric.Rat
	for i, method := range []ncd.Method{ncd.EarlyExit, ncd.Basic, ncd.Tarjan} {
		res, err := mustAlgo(t, "lawler").Solve(g, Options{NCD: method})
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if !res.Exact {
			t.Fatalf("%v: not exact", method)
		}
		if i == 0 {
			ref = res.Mean
		} else if !res.Mean.Equal(ref) {
			t.Fatalf("%v: %v != %v", method, res.Mean, ref)
		}
		if err := verify.CheckCycleIsOptimal(g, res.Mean, res.Cycle); err != nil {
			t.Fatalf("%v: %v", method, err)
		}
	}
}

// TestLargeScaleCrossCheck is a heavier cross-check at Table 2's smallest
// production size; skipped in -short mode.
func TestLargeScaleCrossCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("large graphs skipped in -short mode")
	}
	g, err := gen.Sprand(gen.SprandConfig{N: 512, M: 1536, MinWeight: 1, MaxWeight: 10000, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	var ref numeric.Rat
	for i, algo := range All() {
		res, err := algo.Solve(g, Options{})
		if err != nil {
			t.Fatalf("%s: %v", algo.Name(), err)
		}
		if i == 0 {
			ref = res.Mean
			if err := verify.CheckCycleIsOptimal(g, res.Mean, res.Cycle); err != nil {
				t.Fatal(err)
			}
		} else if !res.Mean.Equal(ref) {
			t.Errorf("%s: %v != %v", algo.Name(), res.Mean, ref)
		}
	}
}

// TestHowardIterationsWithinAlphaBound checks the paper's new bound
// empirically: Howard's iteration count is at most n·α (α = number of
// simple cycles) and in practice drastically below it (§4.3's "drastically
// small" observation).
func TestHowardIterationsWithinAlphaBound(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		g, err := gen.Sprand(gen.SprandConfig{N: 10, M: 25, MinWeight: 1, MaxWeight: 100, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		alpha, err := verify.CountCycles(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		res, err := mustAlgo(t, "howard").Solve(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		iters := res.Counts.Iterations
		if iters > g.NumNodes()*alpha {
			t.Errorf("seed %d: %d iterations exceeds n·α = %d", seed, iters, g.NumNodes()*alpha)
		}
		if iters > alpha && alpha > 3 {
			t.Logf("seed %d: iterations %d vs α %d (within the bound but unusually high)", seed, iters, alpha)
		}
	}
}

// TestExhaustiveThreeNodeGraphs enumerates every directed graph on three
// nodes (all 2^9 adjacency patterns, including self-loops, with varied
// deterministic weights), keeps the ones with at least one cycle, and
// checks every algorithm against the brute-force oracle on each — a small
// universe covered completely rather than sampled.
func TestExhaustiveThreeNodeGraphs(t *testing.T) {
	weights := []int64{-7, 3, 11, -2, 5, 0, 9, -4, 6}
	cyclic := 0
	for mask := 1; mask < 1<<9; mask++ {
		arcs := make([]graph.Arc, 0, 9)
		for bit := 0; bit < 9; bit++ {
			if mask&(1<<bit) == 0 {
				continue
			}
			arcs = append(arcs, graph.Arc{
				From:    graph.NodeID(bit / 3),
				To:      graph.NodeID(bit % 3),
				Weight:  weights[bit],
				Transit: 1,
			})
		}
		g := graph.FromArcs(3, arcs)
		if !graph.HasCycle(g) {
			continue
		}
		cyclic++
		want, _, err := verify.BruteForceMinMean(g)
		if err != nil {
			t.Fatalf("mask %03o: oracle: %v", mask, err)
		}
		for _, algo := range All() {
			res, err := MinimumCycleMean(g, algo, Options{})
			if err != nil {
				t.Fatalf("mask %03o: %s: %v", mask, algo.Name(), err)
			}
			if !res.Mean.Equal(want) {
				t.Errorf("mask %03o: %s: %v want %v", mask, algo.Name(), res.Mean, want)
			}
			if err := verify.CheckCycleIsOptimal(g, res.Mean, res.Cycle); err != nil {
				t.Errorf("mask %03o: %s: %v", mask, algo.Name(), err)
			}
		}
	}
	if cyclic < 300 {
		t.Fatalf("only %d cyclic graphs enumerated; expected hundreds", cyclic)
	}
}

// TestKOAndYTOPivotParity asserts the §4.2/§4.3 structural claims as unit
// facts: KO and YTO perform the same pivots (equal iteration and
// extract-min counts) while YTO never does more inserts.
func TestKOAndYTOPivotParity(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		g, err := gen.Sprand(gen.SprandConfig{N: 120, M: 360, MinWeight: 1, MaxWeight: 10000, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		ko, err := mustAlgo(t, "ko").Solve(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		yto, err := mustAlgo(t, "yto").Solve(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if ko.Counts.Iterations != yto.Counts.Iterations {
			t.Errorf("seed %d: pivots differ: %d vs %d", seed, ko.Counts.Iterations, yto.Counts.Iterations)
		}
		if ko.Counts.HeapExtractMins != yto.Counts.HeapExtractMins {
			t.Errorf("seed %d: extract-mins differ: %d vs %d", seed, ko.Counts.HeapExtractMins, yto.Counts.HeapExtractMins)
		}
		if yto.Counts.HeapInserts > ko.Counts.HeapInserts {
			t.Errorf("seed %d: YTO did more inserts (%d) than KO (%d)", seed, yto.Counts.HeapInserts, ko.Counts.HeapInserts)
		}
	}
}

// TestPlantedOptimumAtScale solves graphs with a construction-guaranteed
// optimum at sizes far beyond the enumeration oracle's reach.
func TestPlantedOptimumAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("large planted graphs skipped in -short mode")
	}
	for seed := uint64(1); seed <= 3; seed++ {
		g, mu, err := gen.PlantedMinMean(2048, 6144, 17, 5, 1000, seed)
		if err != nil {
			t.Fatal(err)
		}
		want := numeric.FromInt(mu)
		for _, name := range []string{"howard", "yto", "ko", "burns", "lawler", "karp2", "ho2", "dg2"} {
			res, err := mustAlgo(t, name).Solve(g, Options{})
			if err != nil {
				t.Fatalf("%s seed=%d: %v", name, seed, err)
			}
			if !res.Mean.Equal(want) {
				t.Errorf("%s seed=%d: λ* = %v, want planted %v", name, seed, res.Mean, want)
			}
			if int64(len(res.Cycle)) != 17 {
				t.Errorf("%s seed=%d: cycle length %d, want the planted 17", name, seed, len(res.Cycle))
			}
		}
	}
}
