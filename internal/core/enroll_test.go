package core_test

// External test package: the enrollment harness (internal/testutil) imports
// core, so internal test files cannot use it. Every new mean engine adds its
// one-line Enroll here — the checklist item ALGORITHMS.md requires.

import (
	"testing"

	"repro/internal/testutil"
)

func TestEnrollMadani(t *testing.T) { testutil.Enroll(t, "madani") }
