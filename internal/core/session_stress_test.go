package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
)

// stressVariant builds the round-th weight perturbation of base: same
// topology (so the session fingerprints collide and warm starts engage),
// deterministic weight shifts keyed off arc index and round.
func stressVariant(base *graph.Graph, round int) *graph.Graph {
	arcs := append([]graph.Arc(nil), base.Arcs()...)
	for i := range arcs {
		arcs[i].Weight += int64((round*7+i)%11) - 5
	}
	return graph.FromArcs(base.NumNodes(), arcs)
}

// TestSessionConcurrentStress hammers one shared Session from many
// goroutines with a mix of structural fingerprints and weight
// perturbations, and asserts every concurrent answer is bit-identical
// (num/den) to a fresh sequential solve of the same graph. Run under -race
// in CI, this is the proof that the warm-start cache never leaks a policy
// slice into a concurrent solve.
func TestSessionConcurrentStress(t *testing.T) {
	howard, err := ByName("howard")
	if err != nil {
		t.Fatal(err)
	}

	// Three distinct topologies → three cache entries under concurrent
	// insert/hit traffic; rounds perturb weights within each topology.
	bases := make([]*graph.Graph, 0, 3)
	sp, err := gen.Sprand(gen.SprandConfig{N: 40, M: 160, MinWeight: -200, MaxWeight: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	bases = append(bases, sp)
	ms, err := gen.MultiSCC(3, 12, 30, 2)
	if err != nil {
		t.Fatal(err)
	}
	bases = append(bases, ms)
	ch, err := gen.Chain(gen.ChainConfig{CoreN: 8, Chains: 5, ChainLen: 6, MinWeight: -80, MaxWeight: 80, SelfLoops: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	bases = append(bases, ch)

	const rounds = 8
	// Sequential ground truth: a cold solver run per (base, round).
	type key struct{ base, round int }
	want := make(map[key]Result)
	for b, base := range bases {
		for r := 0; r < rounds; r++ {
			g := stressVariant(base, r)
			res, err := MinimumCycleMean(g, howard, Options{})
			if err != nil {
				t.Fatalf("sequential base %d round %d: %v", b, r, err)
			}
			want[key{b, r}] = res
		}
	}

	sess := NewSession(Options{})
	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 3*rounds; iter++ {
				b := (w + iter) % len(bases)
				r := (w * iter) % rounds
				g := stressVariant(bases[b], r)
				res, err := sess.Solve(g)
				if err != nil {
					errs <- fmt.Errorf("worker %d base %d round %d: %v", w, b, r, err)
					return
				}
				exp := want[key{b, r}]
				if !res.Mean.Equal(exp.Mean) || res.Mean.Num() != exp.Mean.Num() || res.Mean.Den() != exp.Mean.Den() {
					errs <- fmt.Errorf("worker %d base %d round %d: session %v, sequential %v", w, b, r, res.Mean, exp.Mean)
					return
				}
				// The critical cycle may differ between warm and cold runs
				// (several cycles can attain λ*), but it must be a real cycle
				// of g attaining exactly the reported mean.
				if err := g.ValidateCycle(res.Cycle); err != nil {
					errs <- fmt.Errorf("worker %d base %d round %d: bad cycle: %v", w, b, r, err)
					return
				}
				wSum := g.CycleWeight(res.Cycle)
				if int64(len(res.Cycle))*res.Mean.Num() != wSum*res.Mean.Den() {
					errs <- fmt.Errorf("worker %d base %d round %d: cycle mean %d/%d != reported %v", w, b, r, wSum, len(res.Cycle), res.Mean)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	stats := sess.Stats()
	wantSolves := goroutines * 3 * rounds
	if stats.Solves != wantSolves {
		t.Fatalf("stats.Solves = %d, want %d", stats.Solves, wantSolves)
	}
	if stats.Errors != 0 {
		t.Fatalf("stats.Errors = %d, want 0", stats.Errors)
	}
	if stats.WarmHits == 0 {
		t.Fatal("no warm hits across repeat topologies — cache never engaged")
	}
}

// TestSessionSolveContextCancel pins SolveContext's bridge: an expired
// context fails immediately with ErrCanceled, a live one solves normally,
// and a cancellation mid-stream never corrupts the cache for later solves.
func TestSessionSolveContextCancel(t *testing.T) {
	g, err := gen.Sprand(gen.SprandConfig{N: 30, M: 120, MinWeight: -100, MaxWeight: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(Options{})

	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.SolveContext(dead, g); !errors.Is(err, ErrCanceled) {
		t.Fatalf("expired context: got %v, want ErrCanceled", err)
	}

	ctx, cancel2 := context.WithTimeout(context.Background(), time.Minute)
	defer cancel2()
	res, err := sess.SolveContext(ctx, g)
	if err != nil {
		t.Fatalf("live context: %v", err)
	}
	howard, err := ByName("howard")
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := MinimumCycleMean(g, howard, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Mean.Equal(fresh.Mean) {
		t.Fatalf("post-cancel solve %v, fresh %v", res.Mean, fresh.Mean)
	}
}
