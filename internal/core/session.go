package core

// Session is the repeated-solve engine behind the ROADMAP's "serve heavy
// repeated traffic" goal: a server answering minimum-cycle-mean queries over
// a slowly changing design sees the same graph structure solve after solve,
// with only arc weights perturbed between solves (timing updates, what-if
// edits). Howard's policy iteration converges to the exact optimum from ANY
// structurally valid starting policy — every return is gated by an exact
// Bellman–Ford certificate — so the previous solve's optimal policy is a
// correct warm start for the next one, and when weights moved only a little
// the warm-started run typically converges in one or two iterations instead
// of rebuilding the policy from the cheapest-arc guess.
//
// The cache key is a structural fingerprint of each strongly connected
// component: node count, arc count, and every arc's (From, To, Transit)
// triple — deliberately NOT the weights, so weight-only updates hit the
// cache. Any structural change (node or arc added/removed, endpoints
// rewired) changes the fingerprint and the stale policy is never consulted;
// validWarmPolicy re-checks the policy against the concrete graph anyway, so
// even a fingerprint collision cannot smuggle an out-of-range or wrong-node
// arc into the solver.

import (
	"context"
	"sync"
	"time"

	"repro/internal/counter"
	"repro/internal/graph"
	"repro/internal/obs"
)

// sessionMaxEntries bounds the policy cache. When a session has seen more
// distinct component structures than this, the cache is cleared wholesale
// (the workload Session targets has a small, stable set of structures, so
// wholesale clearing is simpler than LRU and just as effective).
const sessionMaxEntries = 1024

// SessionStats counts cache behavior over a Session's lifetime.
type SessionStats struct {
	// Solves is the number of Session.Solve calls, successful or not: error
	// returns (ErrAcyclic, certification failures, numeric-range failures)
	// count too, so Solves always equals the number of times Solve was
	// invoked.
	Solves int
	// Errors is the number of Session.Solve calls that returned a non-nil
	// error; Solves − Errors is the number of successful solves.
	Errors int
	// Components is the number of cyclic SCCs solved across all calls.
	Components int
	// WarmHits counts component solves that started from a cached policy.
	WarmHits int
	// WarmMisses counts component solves that started cold.
	WarmMisses int
	// Evictions counts wholesale cache clears (see sessionMaxEntries).
	Evictions int
}

// Session runs Howard's algorithm over a sequence of related graphs,
// caching the optimal policy of every strongly connected component by
// structural fingerprint and warm-starting subsequent solves. Safe for
// concurrent use.
//
// Session always solves with Howard's algorithm: it is the study's fastest
// solver and the only one whose iteration state (the policy) is meaningful
// across solves. Options.Parallelism and Options.Kernelize are ignored —
// components are solved sequentially on the raw graph, since a kernel solved
// by closed forms leaves no policy to cache. Options.Certify is honored:
// every warm-started answer then carries the same exact optimality
// certificate a cold MinimumCycleMean solve would produce.
type Session struct {
	opt Options

	mu    sync.Mutex
	cache map[uint64][]graph.ArcID
	stats SessionStats
}

// NewSession returns an empty session; opt applies to every solve.
func NewSession(opt Options) *Session {
	return &Session{opt: opt, cache: make(map[uint64][]graph.ArcID)}
}

// Solve computes the minimum cycle mean of g exactly like
// MinimumCycleMean(g, howard, opt), warm-starting each component from the
// session's policy cache and caching the converged policies for the next
// call. Returns ErrAcyclic when g has no cycle.
func (s *Session) Solve(g *graph.Graph) (Result, error) {
	return s.solve(g, s.opt)
}

// SolveContext is Solve under a context: when ctx is done (deadline expired
// or canceled) the run unwinds with ErrCanceled at Howard's next main-loop
// checkpoint instead of running to convergence. A canceled component solve
// caches nothing, so an interrupted request never poisons the policy cache.
// This is the serving layer's hot path (see internal/serve).
func (s *Session) SolveContext(ctx context.Context, g *graph.Graph) (Result, error) {
	opt, stop := s.opt.WithCancelContext(ctx)
	defer stop()
	return s.solve(g, opt)
}

// solve is the shared implementation behind Solve and SolveContext.
func (s *Session) solve(g *graph.Graph, opt Options) (res Result, err error) {
	// Every call counts, successful or not (SessionStats.Solves documents
	// exactly that); failures are tallied separately. The error-counting
	// defer is installed before the recovery boundary so it observes the
	// error a recovered numeric panic was converted into.
	s.mu.Lock()
	s.stats.Solves++
	s.mu.Unlock()
	defer func() {
		if err != nil {
			s.mu.Lock()
			s.stats.Errors++
			s.mu.Unlock()
		}
	}()
	defer RecoverNumericRange(&err, ErrNumericRange)
	comps := graph.CyclicComponents(g)
	if len(comps) == 0 {
		return Result{}, ErrAcyclic
	}
	tr := opt.Tracer
	emitSCC(tr, comps)
	var (
		best  Result
		total counter.Counts
		found bool
	)
	for ci, comp := range comps {
		fp := structuralFingerprint(comp.Graph)
		s.mu.Lock()
		warm := s.cache[fp]
		entries := len(s.cache)
		s.mu.Unlock()

		if warm != nil {
			tr.Cache(obs.CacheEvent{Op: obs.CacheHit, Entries: entries})
		} else {
			tr.Cache(obs.CacheEvent{Op: obs.CacheMiss, Entries: entries})
		}
		var start time.Time
		if tr.Enabled() {
			tr.SolverStart(obs.SolverStartEvent{Algorithm: "howard", Component: ci,
				Nodes: comp.Graph.NumNodes(), Arcs: comp.Graph.NumArcs(), WarmStart: warm != nil})
			start = time.Now()
		}
		r, policy, err := howardRun(comp.Graph, opt, warm, true)
		if tr.Enabled() {
			tr.SolverDone(obs.SolverDoneEvent{Algorithm: "howard", Component: ci,
				Nodes: comp.Graph.NumNodes(), Arcs: comp.Graph.NumArcs(),
				Duration: time.Since(start), Counts: r.Counts, Value: r.Mean.Float64(), Err: err})
		}
		if err != nil {
			return Result{}, err
		}

		s.mu.Lock()
		if warm != nil {
			s.stats.WarmHits++
		} else {
			s.stats.WarmMisses++
		}
		s.stats.Components++
		evicted := false
		if len(s.cache) >= sessionMaxEntries {
			if _, present := s.cache[fp]; !present {
				s.cache = make(map[uint64][]graph.ArcID)
				s.stats.Evictions++
				evicted = true
			}
		}
		s.cache[fp] = policy
		entries = len(s.cache)
		s.mu.Unlock()
		if evicted {
			tr.Cache(obs.CacheEvent{Op: obs.CacheEvict, Entries: entries})
		}

		total.Add(r.Counts)
		cycle := make([]graph.ArcID, len(r.Cycle))
		for i, id := range r.Cycle {
			cycle[i] = comp.ArcMap[id]
		}
		r.Cycle = cycle
		if !found || r.Mean.Less(best.Mean) {
			best = r
			found = true
		}
	}
	best.Counts = total
	if opt.Certify {
		if cerr := certifyMean(g, &best, tr); cerr != nil {
			return Result{}, cerr
		}
	}
	return best, nil
}

// Stats returns a snapshot of the session's cache counters.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Reset drops every cached policy (counters are kept). Subsequent solves
// start cold until the cache refills.
func (s *Session) Reset() {
	s.mu.Lock()
	s.cache = make(map[uint64][]graph.ArcID)
	s.mu.Unlock()
}

// structuralFingerprint hashes a graph's structure — node count, arc count,
// and each arc's (From, To, Transit) — with FNV-1a. Weights are deliberately
// excluded so weight-only updates map to the same fingerprint.
func structuralFingerprint(g *graph.Graph) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime64
			x >>= 8
		}
	}
	mix(uint64(g.NumNodes()))
	mix(uint64(g.NumArcs()))
	for _, a := range g.Arcs() {
		mix(uint64(a.From))
		mix(uint64(a.To))
		mix(uint64(a.Transit))
	}
	return h
}
