package core

import (
	"math"

	"repro/internal/counter"
	"repro/internal/graph"
	"repro/internal/numeric"
)

// infD is the +infinity sentinel for D-values; large enough to be never
// reachable, small enough that sums never overflow.
const infD = math.MaxInt64 / 4

func init() {
	register("karp", func() Algorithm { return karpAlg{} })
	register("karp2", func() Algorithm { return karp2Alg{} })
}

// karpAlg is Karp's Θ(nm) algorithm [Karp 1978]: compute D_k(v), the weight
// of the shortest walk of exactly k arcs from the source to v, for
// k = 0..n, then apply Karp's theorem
//
//	λ* = min_v max_{0≤k≤n−1} (D_n(v) − D_k(v)) / (n − k).
//
// The recurrence touches every arc at every level, which is why the best
// and worst cases coincide (the paper's §2.2). Θ(n²) space for the D table.
type karpAlg struct{}

func (karpAlg) Name() string { return "karp" }

func (karpAlg) Solve(g *graph.Graph, opt Options) (Result, error) {
	if err := checkSolveInput(g); err != nil {
		return Result{}, err
	}
	n := g.NumNodes()
	var counts counter.Counts

	ws := getKarpWS()
	defer ws.release()

	// D is (n+1) rows of n values, flattened.
	ws.D = grow(ws.D, (n+1)*n)
	D := ws.D
	row := func(k int) []int64 { return D[k*n : (k+1)*n] }
	r0 := row(0)
	for i := range r0 {
		r0[i] = infD
	}
	r0[0] = 0 // source s = node 0

	for k := 1; k <= n; k++ {
		if err := opt.checkpoint(); err != nil {
			return Result{}, err
		}
		prev, cur := row(k-1), row(k)
		for i := range cur {
			cur[i] = infD
		}
		// Karp's recurrence iterates over the predecessors of every node;
		// equivalently, over every arc.
		for _, a := range g.Arcs() {
			counts.ArcsVisited++
			counts.Relaxations++
			if prev[a.From] >= infD {
				continue
			}
			if nd := prev[a.From] + a.Weight; nd < cur[a.To] {
				cur[a.To] = nd
			}
		}
	}
	counts.Iterations = n

	lambda, ok := karpTheorem(row(n), func(k int) []int64 { return row(k) }, n)
	if !ok {
		return Result{}, ErrAcyclic
	}
	return finishExact(g, lambda, nil, counts)
}

// karpTheorem evaluates Karp's min-max formula with exact rational
// comparisons. rows(k) must return the D_k vector for 0 <= k < n; dn is D_n.
func karpTheorem(dn []int64, rows func(k int) []int64, n int) (numeric.Rat, bool) {
	var (
		bestNum, bestDen int64
		haveBest         bool
	)
	for v := 0; v < n; v++ {
		if dn[v] >= infD {
			continue // max over k is +inf; v cannot attain the outer min
		}
		var (
			maxNum, maxDen int64
			haveMax        bool
		)
		for k := 0; k < n; k++ {
			dk := rows(k)[v]
			if dk >= infD {
				continue
			}
			num, den := dn[v]-dk, int64(n-k)
			if !haveMax || numeric.CmpFrac(num, den, maxNum, maxDen) > 0 {
				maxNum, maxDen = num, den
				haveMax = true
			}
		}
		if !haveMax {
			continue
		}
		if !haveBest || numeric.CmpFrac(maxNum, maxDen, bestNum, bestDen) < 0 {
			bestNum, bestDen = maxNum, maxDen
			haveBest = true
		}
	}
	if !haveBest {
		return numeric.Rat{}, false
	}
	return numeric.NewRat(bestNum, bestDen), true
}

// karp2Alg is the Θ(n)-space variant of Karp's algorithm (suggested to the
// authors by S. Gaubert): pass one rolls the recurrence forward keeping only
// the current row and records D_n; pass two recomputes every row, folding
// the (D_n(v) − D_k(v))/(n−k) maximization into the sweep. It trades a
// second pass — roughly doubling the running time, as the paper measures —
// for Θ(n²) → Θ(n) space.
type karp2Alg struct{}

func (karp2Alg) Name() string { return "karp2" }

func (karp2Alg) Solve(g *graph.Graph, opt Options) (Result, error) {
	if err := checkSolveInput(g); err != nil {
		return Result{}, err
	}
	n := g.NumNodes()
	var counts counter.Counts

	ws := getKarpWS()
	defer ws.release()

	ws.prev = grow(ws.prev, n)
	ws.cur = grow(ws.cur, n)
	prev := ws.prev
	cur := ws.cur
	step := func() {
		for i := range cur {
			cur[i] = infD
		}
		for _, a := range g.Arcs() {
			counts.ArcsVisited++
			counts.Relaxations++
			if prev[a.From] >= infD {
				continue
			}
			if nd := prev[a.From] + a.Weight; nd < cur[a.To] {
				cur[a.To] = nd
			}
		}
		prev, cur = cur, prev
	}
	reset := func() {
		for i := range prev {
			prev[i] = infD
		}
		prev[0] = 0
	}

	// Pass 1: compute D_n.
	reset()
	for k := 1; k <= n; k++ {
		if err := opt.checkpoint(); err != nil {
			return Result{}, err
		}
		step()
	}
	ws.dn = grow(ws.dn, n)
	dn := ws.dn
	copy(dn, prev)

	// Pass 2: recompute D_k for k = 0..n−1, folding the maximization.
	ws.maxNum = grow(ws.maxNum, n)
	ws.maxDen = grow(ws.maxDen, n)
	ws.haveMax = grow(ws.haveMax, n)
	maxNum := ws.maxNum
	maxDen := ws.maxDen
	haveMax := ws.haveMax
	for i := range haveMax {
		haveMax[i] = false
	}
	fold := func(k int) {
		for v := 0; v < n; v++ {
			if dn[v] >= infD || prev[v] >= infD {
				continue
			}
			num, den := dn[v]-prev[v], int64(n-k)
			if !haveMax[v] || numeric.CmpFrac(num, den, maxNum[v], maxDen[v]) > 0 {
				maxNum[v], maxDen[v] = num, den
				haveMax[v] = true
			}
		}
	}
	reset()
	fold(0)
	for k := 1; k < n; k++ {
		if err := opt.checkpoint(); err != nil {
			return Result{}, err
		}
		step()
		fold(k)
	}
	counts.Iterations = 2 * n

	var (
		bestNum, bestDen int64
		haveBest         bool
	)
	for v := 0; v < n; v++ {
		if !haveMax[v] {
			continue
		}
		if !haveBest || numeric.CmpFrac(maxNum[v], maxDen[v], bestNum, bestDen) < 0 {
			bestNum, bestDen = maxNum[v], maxDen[v]
			haveBest = true
		}
	}
	if !haveBest {
		return Result{}, ErrAcyclic
	}
	return finishExact(g, numeric.NewRat(bestNum, bestDen), nil, counts)
}
