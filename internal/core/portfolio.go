package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
)

// portfolioName is the ByName spelling of the meta-algorithm.
const portfolioName = "portfolio"

// defaultPortfolioRoster is the race run by ByName("portfolio"): Howard (the
// paper's practical winner), Karp (worst-case O(nm), immune to Howard's
// pathological inputs), YTO (the best parametric bound), and Madani
// (contraction-accelerated value iteration, integer-exact throughout). The
// members have disjoint worst cases, which is the point of racing them.
var defaultPortfolioRoster = []string{"howard", "karp", "yto", "madani"}

// portfolioLive counts currently-running portfolio solver goroutines; it is
// a test hook proving that races never leak goroutines (Solve joins every
// racer before returning, so the counter always returns to zero).
var portfolioLive atomic.Int64

// Portfolio is a meta-algorithm that runs several exact solvers
// concurrently on the same strongly connected graph and returns the first
// exact result, canceling the losers promptly (each built-in solver polls a
// cancellation flag once per main-loop iteration). Since every exact solver
// returns the same λ*, racing never changes the answer — only which
// algorithm's wall-clock the caller pays, which is min over the roster.
// This is the algorithmic analogue of the paper's observation that no
// single algorithm dominates on every input family.
type Portfolio struct {
	algos []Algorithm
}

// NewPortfolio builds a portfolio over the given solvers; with no arguments
// it uses the default howard+karp+yto+madani roster. The solvers must be safe for
// concurrent use with distinct Options values (all built-ins are).
func NewPortfolio(algos ...Algorithm) *Portfolio {
	if len(algos) == 0 {
		for _, name := range defaultPortfolioRoster {
			algo, err := ByName(name)
			if err != nil {
				panic("core: default portfolio roster member missing: " + name)
			}
			algos = append(algos, algo)
		}
	}
	return &Portfolio{algos: algos}
}

// portfolioByName parses "portfolio" or "portfolio:a+b+c" (members may be
// separated by '+' or ',') into a Portfolio over registered solvers.
func portfolioByName(name string) (Algorithm, error) {
	if name == portfolioName {
		return NewPortfolio(), nil
	}
	spec := strings.TrimPrefix(name, portfolioName+":")
	members := strings.FieldsFunc(spec, func(r rune) bool { return r == '+' || r == ',' })
	if len(members) == 0 {
		return nil, fmt.Errorf("core: empty portfolio roster in %q", name)
	}
	var algos []Algorithm
	for _, m := range members {
		ctor, ok := registry[m]
		if !ok {
			return nil, fmt.Errorf("core: unknown portfolio member %q (known: %v)", m, Names())
		}
		algos = append(algos, ctor())
	}
	return NewPortfolio(algos...), nil
}

// Name implements Algorithm.
func (p *Portfolio) Name() string { return portfolioName }

// Algorithms returns the roster, in race order.
func (p *Portfolio) Algorithms() []Algorithm { return p.algos }

// Solve implements Algorithm by racing the roster; see SolveContext.
func (p *Portfolio) Solve(g *graph.Graph, opt Options) (Result, error) {
	return p.SolveContext(context.Background(), g, opt)
}

// SolveContext races every roster member on g and returns the first exact
// result, canceling the rest through ctx-derived cancellation flags. The
// returned Counts are the winner's alone — the losers' partial work is
// canceled and discarded, so counts are not comparable across runs the way
// a single algorithm's are.
//
// All racer goroutines are joined before SolveContext returns: a canceled
// loser unwinds at its next checkpoint (once per main-loop iteration), so
// the join is prompt and no goroutine outlives the call.
func (p *Portfolio) SolveContext(ctx context.Context, g *graph.Graph, opt Options) (Result, error) {
	if err := checkSolveInput(g); err != nil {
		return Result{}, err
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type outcome struct {
		idx int
		res Result
		err error
	}
	results := make(chan outcome, len(p.algos))
	flags := make([]*cancelFlag, len(p.algos))
	var wg sync.WaitGroup
	for i, a := range p.algos {
		// Each racer gets its own flag chained to the caller's, so both a
		// lost race and an outer cancellation stop it.
		sub := opt
		sub.cancel = &cancelFlag{parent: opt.cancel}
		flags[i] = sub.cancel
		wg.Add(1)
		portfolioLive.Add(1)
		go func(i int, a Algorithm, sub Options) {
			defer wg.Done()
			defer portfolioLive.Add(-1)
			var (
				res Result
				err error
			)
			// Racer goroutines need their own numeric boundary: registry
			// members are individually guarded, but a caller-supplied
			// Algorithm is not, and a panic here would kill the process.
			func() {
				defer RecoverNumericRange(&err, ErrNumericRange)
				res, err = a.Solve(g, sub)
			}()
			results <- outcome{idx: i, res: res, err: err}
		}(i, a, sub)
	}
	// Bridge context cancellation onto the racer flags.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-ctx.Done()
		for _, f := range flags {
			f.set()
		}
	}()

	// Race bookkeeping for the tracer: per-racer wall clock and, for racers
	// that unwound after the race was decided, the cancellation latency.
	// Gathered only when tracing is on so the fast path stays time.Now-free.
	tracing := opt.Tracer.Enabled()
	var (
		raceStart time.Time
		decidedAt time.Time
		finish    []time.Duration
		latency   []time.Duration
	)
	if tracing {
		raceStart = time.Now()
		finish = make([]time.Duration, len(p.algos))
		latency = make([]time.Duration, len(p.algos))
	}

	var (
		winner  *outcome
		inexact *outcome
		errs    = make([]error, len(p.algos))
	)
	for remaining := len(p.algos); remaining > 0; remaining-- {
		o := <-results
		if tracing {
			now := time.Now()
			finish[o.idx] = now.Sub(raceStart)
			if !decidedAt.IsZero() {
				latency[o.idx] = now.Sub(decidedAt)
			}
		}
		switch {
		case o.err != nil:
			errs[o.idx] = o.err
		case o.res.Exact && winner == nil:
			o := o
			winner = &o
			if tracing {
				decidedAt = time.Now()
			}
			cancel() // first exact answer wins; stop the losers
		case !o.res.Exact && inexact == nil:
			o := o
			inexact = &o
		}
	}
	cancel()
	wg.Wait()

	if tracing {
		returned := winner
		if returned == nil {
			returned = inexact
		}
		ev := obs.RaceEvent{Duration: time.Since(raceStart), Racers: make([]obs.RacerOutcome, len(p.algos))}
		for i, a := range p.algos {
			ev.Racers[i] = obs.RacerOutcome{
				Algorithm:     a.Name(),
				Elapsed:       finish[i],
				CancelLatency: latency[i],
				Won:           returned != nil && returned.idx == i,
				Err:           errs[i],
			}
		}
		if returned != nil {
			ev.Winner = p.algos[returned.idx].Name()
		}
		opt.Tracer.Race(ev)
	}

	if winner != nil {
		return winner.res, nil
	}
	if inexact != nil {
		// Epsilon-mode roster: no exact result exists; hand back an
		// approximate one rather than failing.
		return inexact.res, nil
	}
	if err := ctx.Err(); err != nil && opt.cancel.canceled() {
		return Result{}, ErrCanceled
	}
	// Every racer failed: report them all. Each member error is wrapped with
	// the member's name and the joined error preserves errors.Is/As on every
	// one of them, so distinct failures are no longer masked by the
	// lowest-index racer's.
	var fails []error
	for i, err := range errs {
		if err != nil && !errors.Is(err, ErrCanceled) {
			fails = append(fails, fmt.Errorf("core: portfolio member %s: %w", p.algos[i].Name(), err))
		}
	}
	if len(fails) > 0 {
		return Result{}, errors.Join(fails...)
	}
	return Result{}, ErrCanceled
}
