package core

import (
	"testing"

	"repro/internal/gen"
)

// These tests pin the pooled-workspace allocation wins so later changes
// cannot silently regress them: in the steady state (pool warm) a Howard
// solve allocates at most 1 object per op (the returned critical cycle) and
// a Karp2 solve at most 5. The pins are ceilings on testing.AllocsPerRun,
// which is unreliable under the race detector — hence the raceEnabled skip.

func TestHowardAllocsPerOpPinned(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is unreliable under -race")
	}
	howard := mustAlgo(t, "howard")
	g, err := gen.Sprand(gen.SprandConfig{N: 200, M: 800, MinWeight: -1000, MaxWeight: 1000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Warm the workspace pool so the measurement sees the steady state.
	if _, err := howard.Solve(g, Options{}); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(20, func() {
		if _, err := howard.Solve(g, Options{}); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 1 {
		t.Errorf("howard allocates %.1f objects/op in steady state, pinned at <= 1", avg)
	}
}

func TestMadaniAllocsPerOpPinned(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is unreliable under -race")
	}
	madani := mustAlgo(t, "madani")
	g, err := gen.Sprand(gen.SprandConfig{N: 200, M: 800, MinWeight: -1000, MaxWeight: 1000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := madani.Solve(g, Options{}); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(20, func() {
		if _, err := madani.Solve(g, Options{}); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 1 {
		t.Errorf("madani allocates %.1f objects/op in steady state, pinned at <= 1", avg)
	}
}

func TestKarp2AllocsPerOpPinned(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is unreliable under -race")
	}
	karp2 := mustAlgo(t, "karp2")
	g, err := gen.Sprand(gen.SprandConfig{N: 200, M: 800, MinWeight: -1000, MaxWeight: 1000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := karp2.Solve(g, Options{}); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(20, func() {
		if _, err := karp2.Solve(g, Options{}); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 5 {
		t.Errorf("karp2 allocates %.1f objects/op in steady state, pinned at <= 5", avg)
	}
}
