package core

import (
	"errors"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/verify"
)

// TestCertifyMatchesBruteForce proves the certificate's claim independently:
// on small graphs the certified λ* must equal the enumerated optimum and the
// witness must pass the oracle's end-to-end optimality check.
func TestCertifyMatchesBruteForce(t *testing.T) {
	howard := mustAlgo(t, "howard")
	for seed := uint64(0); seed < 10; seed++ {
		g, err := gen.Sprand(gen.SprandConfig{N: 8, M: 20, MinWeight: -50, MaxWeight: 50, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		res, err := MinimumCycleMean(g, howard, Options{Certify: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Certificate == nil {
			t.Fatalf("seed %d: no certificate", seed)
		}
		want, _, err := verify.BruteForceMinMean(g)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Mean.Equal(want) {
			t.Errorf("seed %d: certified λ* = %v, brute force = %v", seed, res.Mean, want)
		}
		if err := verify.CheckCycleIsOptimal(g, res.Certificate.Value, res.Certificate.Witness); err != nil {
			t.Errorf("seed %d: certificate fails independent check: %v", seed, err)
		}
	}
}

// TestCertifyEpsilonModeSnaps is the tentpole scenario: an approximate
// (epsilon-mode) solver answer is snapped to the exact rational and verified,
// so the caller gets a proven-exact λ* out of an inexact run.
func TestCertifyEpsilonModeSnaps(t *testing.T) {
	oa1 := mustAlgo(t, "oa1")
	howard := mustAlgo(t, "howard")
	for seed := uint64(0); seed < 10; seed++ {
		g, err := gen.Sprand(gen.SprandConfig{N: 12, M: 36, MinWeight: -40, MaxWeight: 40, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		exact, err := MinimumCycleMean(g, howard, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Epsilon below the grid resolution: the approximate run still finds
		// the optimal cycle but reports Exact=false; certification must
		// recover and prove the exact value.
		res, err := MinimumCycleMean(g, oa1, Options{Epsilon: 1e-12, Certify: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Exact {
			t.Errorf("seed %d: certified result not marked exact", seed)
		}
		if res.Certificate == nil || !res.Certificate.Snapped {
			t.Errorf("seed %d: expected a snapped certificate, got %+v", seed, res.Certificate)
		}
		if !res.Mean.Equal(exact.Mean) {
			t.Errorf("seed %d: certified λ* = %v, exact = %v", seed, res.Mean, exact.Mean)
		}
	}
}

// TestCertifyMaximum pins the negation path: the certificate of a
// MaximumCycleMean solve reports the maximization orientation and the
// maximizing value.
func TestCertifyMaximum(t *testing.T) {
	howard := mustAlgo(t, "howard")
	for seed := uint64(0); seed < 5; seed++ {
		g, err := gen.Sprand(gen.SprandConfig{N: 8, M: 20, MinWeight: -50, MaxWeight: 50, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		res, err := MaximumCycleMean(g, howard, Options{Certify: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Certificate == nil || !res.Certificate.Maximize {
			t.Fatalf("seed %d: want a maximization certificate, got %+v", seed, res.Certificate)
		}
		if !res.Certificate.Value.Equal(res.Mean) {
			t.Errorf("seed %d: certificate value %v != mean %v", seed, res.Certificate.Value, res.Mean)
		}
		want, _, err := verify.BruteForceMaxMean(g)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Mean.Equal(want) {
			t.Errorf("seed %d: certified max mean %v, brute force %v", seed, res.Mean, want)
		}
	}
}

// TestCertifyDriverPaths runs certification through every driver variant —
// parallel, kernelized, portfolio, session — and demands the same proof from
// each.
func TestCertifyDriverPaths(t *testing.T) {
	howard := mustAlgo(t, "howard")
	g, err := gen.MultiSCC(5, 12, 30, 3)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := MinimumCycleMean(g, howard, Options{})
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, res Result, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Certificate == nil {
			t.Fatalf("%s: no certificate", name)
		}
		if !res.Mean.Equal(ref.Mean) {
			t.Errorf("%s: λ* = %v, want %v", name, res.Mean, ref.Mean)
		}
		if err := verify.CheckCycleIsOptimal(g, res.Certificate.Value, res.Certificate.Witness); err != nil {
			t.Errorf("%s: certificate fails independent check: %v", name, err)
		}
	}

	res, err := MinimumCycleMean(g, howard, Options{Certify: true, Parallelism: 4})
	check("parallel", res, err)
	res, err = MinimumCycleMean(g, howard, Options{Certify: true, Kernelize: true})
	check("kernelized", res, err)
	portfolio, err := ByName("portfolio")
	if err != nil {
		t.Fatal(err)
	}
	res, err = MinimumCycleMean(g, portfolio, Options{Certify: true})
	check("portfolio", res, err)

	sess := NewSession(Options{Certify: true})
	for i := 0; i < 3; i++ {
		res, err = sess.Solve(g)
		check("session", res, err)
	}
}

// TestRecoverNumericRange exercises the panic-free boundary helper directly.
func TestRecoverNumericRange(t *testing.T) {
	run := func(p any) (err error) {
		defer RecoverNumericRange(&err, ErrNumericRange)
		if p != nil {
			panic(p)
		}
		return nil
	}
	if err := run(nil); err != nil {
		t.Errorf("no panic: err = %v", err)
	}
	if err := run("numeric: int64 overflow in rational arithmetic"); !errors.Is(err, ErrNumericRange) {
		t.Errorf("numeric panic: err = %v, want ErrNumericRange", err)
	}
	// Foreign panics must not be swallowed.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("foreign panic was swallowed")
			}
		}()
		_ = run(errors.New("unrelated"))
	}()
}

// TestGuardedRegistry pins that every registry instance carries the numeric
// boundary: a graph constructed to overflow the scaled arithmetic must come
// back as a typed error from every algorithm, never a panic.
func TestGuardedRegistry(t *testing.T) {
	// Weights at the contract boundary: accepted by checkSolveInput, but big
	// enough that certification-scale arithmetic stays in range while solver
	// internals exercise large magnitudes.
	big := int64(MaxWeightMagnitude)
	g := graph.FromArcs(2, []graph.Arc{
		{From: 0, To: 1, Weight: big, Transit: 1},
		{From: 1, To: 0, Weight: -big, Transit: 1},
		{From: 0, To: 0, Weight: big - 1, Transit: 1},
	})
	for _, algo := range All() {
		res, err := MinimumCycleMean(g, algo, Options{})
		if err != nil {
			if !errors.Is(err, ErrNumericRange) && !errors.Is(err, ErrWeightRange) {
				t.Errorf("%s: err = %v, want typed range error or success", algo.Name(), err)
			}
			continue
		}
		if res.Mean.Den() == 0 {
			t.Errorf("%s: zero-denominator mean", algo.Name())
		}
	}
}
