package core

import (
	"math"

	"repro/internal/counter"
	"repro/internal/graph"
	"repro/internal/ncd"
	"repro/internal/numeric"
)

func init() {
	register("lawler", func() Algorithm { return lawlerAlg{} })
}

// lawlerAlg is Lawler's binary search [Lawler 1976]: λ* lies in
// [w_min, w_max]; probe the midpoint λ and ask whether G_λ has a negative
// cycle (Bellman–Ford). A negative cycle means λ > λ*, so move the upper
// bound down (to the exact mean of the detected cycle — always a valid
// upper bound); otherwise move the lower bound up. The paper's version
// stops when the interval is smaller than a precision ε and is therefore
// approximate; it is also the slowest algorithm in the study because every
// probe costs a full O(nm) Bellman–Ford.
//
// This implementation searches on the integer grid λ = x/K with
// K = n² + 1, entirely in exact arithmetic. Because λ* is a rational with
// denominator at most n and two distinct such rationals differ by more than
// 1/K, once the interval narrows to one grid cell the best negative cycle
// recorded along the way has mean exactly λ* — this is the "improved
// Lawler" the paper mentions as future work. Setting Options.Epsilon > 0
// instead reproduces the paper's approximate variant (grid K = ⌈1/ε⌉; the
// result is exact anyway whenever 1/K < 1/n²).
type lawlerAlg struct{}

func (lawlerAlg) Name() string { return "lawler" }

func (lawlerAlg) Solve(g *graph.Graph, opt Options) (Result, error) {
	if err := checkSolveInput(g); err != nil {
		return Result{}, err
	}
	n := int64(g.NumNodes())
	var counts counter.Counts

	// Grid resolution.
	K := n*n + 1
	if opt.Epsilon > 0 {
		K = int64(math.Ceil(1 / opt.Epsilon))
		if K < 2 {
			K = 2
		}
	}
	if scaledOverflows(g, 0, K) {
		return Result{}, ErrWeightRange
	}
	exact := K > n*n

	minW, maxW := g.WeightRange()
	lo := K * minW    // λ = lo/K is feasible: λ* >= w_min
	hi := K*maxW + 1  // λ = hi/K is infeasible: λ* <= w_max < hi/K
	if minW == maxW { // uniform weights: every cycle mean equals w
		lambda := numeric.FromInt(minW)
		return finishExact(g, lambda, nil, counts)
	}

	// Caller-supplied λ* bounds (e.g. from kernelization) shrink the initial
	// bracket. lo/K must stay feasible: ⌊K·L⌋/K ≤ L ≤ λ*. hi/K must stay
	// strictly infeasible AND the last probeable grid point (hi−1)/K must
	// exceed λ* strictly so a negative cycle is always recorded:
	// (⌊K·U⌋+1)/K > U ≥ λ* in all cases, hence the +2.
	if opt.LambdaLower != nil {
		if v, ok := scaleFloor(K, opt.LambdaLower.Num(), opt.LambdaLower.Den()); ok && v > lo {
			lo = v
		}
	}
	if opt.LambdaUpper != nil {
		if v, ok := scaleFloor(K, opt.LambdaUpper.Num(), opt.LambdaUpper.Den()); ok && v+2 < hi {
			hi = v + 2
		}
	}

	var bestCycle []graph.ArcID
	weights := make([]int64, g.NumArcs())
	probe := func(p int64) ([]graph.ArcID, bool) {
		for i, a := range g.Arcs() {
			weights[i] = K*a.Weight - p
		}
		return ncd.Detect(g, weights, opt.NCD, &counts)
	}
	for hi-lo > 1 {
		if err := opt.checkpoint(); err != nil {
			return Result{}, err
		}
		counts.Iterations++
		mid := lo + (hi-lo)/2
		cyc, neg := probe(mid)
		if !neg {
			lo = mid
			continue
		}
		hi = mid
		// Record the best negative cycle seen; when the interval closes to
		// one grid cell its exact mean is λ* (both are rationals with
		// denominator <= n inside a window narrower than 1/n²).
		mean := numeric.NewRat(g.CycleWeight(cyc), int64(len(cyc)))
		if bestCycle == nil || mean.Less(numeric.NewRat(g.CycleWeight(bestCycle), int64(len(bestCycle)))) {
			bestCycle = append(bestCycle[:0], cyc...)
		}
	}

	if bestCycle == nil {
		// Unreachable: with minW < maxW (the uniform case returned above)
		// every arc lies on some cycle of a strongly connected graph, so
		// λ* < w_max strictly and at least one probe above λ* must have
		// produced a negative cycle before the window closed.
		return Result{}, ErrIterationLimit
	}
	mean := numeric.NewRat(g.CycleWeight(bestCycle), int64(len(bestCycle)))
	return Result{Mean: mean, Cycle: bestCycle, Exact: exact, Counts: counts}, nil
}

// scaleFloor returns ⌊K·p/q⌋ for q > 0, reporting ok=false when K·p would
// overflow int64 (the caller then skips the optional bound clamp).
func scaleFloor(K, p, q int64) (int64, bool) {
	ap := p
	if ap < 0 {
		ap = -ap
	}
	if ap != 0 && K > math.MaxInt64/ap {
		return 0, false
	}
	kp := K * p
	v := kp / q
	if kp%q != 0 && kp < 0 {
		v--
	}
	return v, true
}
