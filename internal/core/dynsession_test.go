package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// dynOracle fresh-solves the session's materialized snapshot and returns the
// result with its cycle mapped onto original overlay arc IDs.
func dynOracle(t *testing.T, ds *DynSession, opt Options) (Result, error) {
	t.Helper()
	howard, err := ByName("howard")
	if err != nil {
		t.Fatal(err)
	}
	snap, export := ds.Materialize()
	res, err := MinimumCycleMean(snap, howard, opt)
	if err != nil {
		return Result{}, err
	}
	cycle := make([]graph.ArcID, len(res.Cycle))
	for i, id := range res.Cycle {
		cycle[i] = export[id]
	}
	res.Cycle = cycle
	return res, nil
}

// assertSameMean demands bit-identical rationals, the invariant every
// DynSession answer is held to.
func assertSameMean(t *testing.T, tag string, got, want Result) {
	t.Helper()
	if got.Mean.Num() != want.Mean.Num() || got.Mean.Den() != want.Mean.Den() {
		t.Fatalf("%s: λ* = %s, fresh solve says %s", tag, got.Mean, want.Mean)
	}
	if !got.Exact || !want.Exact {
		t.Fatalf("%s: exactness lost (got %v, want %v)", tag, got.Exact, want.Exact)
	}
}

// assertCycleAttains validates got.Cycle as a real cycle of the session's
// current graph (original arc IDs, consecutive arcs chained) attaining
// got.Mean exactly.
func assertCycleAttains(t *testing.T, tag string, ds *DynSession, got Result) {
	t.Helper()
	if len(got.Cycle) == 0 {
		t.Fatalf("%s: empty cycle", tag)
	}
	var sum int64
	for i, id := range got.Cycle {
		a, ok := ds.Arc(id)
		if !ok {
			t.Fatalf("%s: cycle references dead arc %d", tag, id)
		}
		next, ok := ds.Arc(got.Cycle[(i+1)%len(got.Cycle)])
		if !ok || a.To != next.From {
			t.Fatalf("%s: cycle breaks at position %d (%d -> %d vs %d)", tag, i, a.From, a.To, next.From)
		}
		sum += a.Weight
	}
	if mean := got.Mean; mean.Num()*int64(len(got.Cycle)) != sum*mean.Den() {
		t.Fatalf("%s: cycle mean %d/%d does not equal λ* %s", tag, sum, len(got.Cycle), mean)
	}
}

// TestDynSessionColdMatchesFresh: the first Solve of a pristine DynSession
// must be bit-identical — cycle included — to a fresh sequential
// MinimumCycleMean of the seed graph, certified and not.
func TestDynSessionColdMatchesFresh(t *testing.T) {
	howard, err := ByName("howard")
	if err != nil {
		t.Fatal(err)
	}
	sp, err := gen.Sprand(gen.SprandConfig{N: 80, M: 320, MinWeight: -500, MaxWeight: 500, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := gen.MultiSCC(4, 10, 25, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, certify := range []bool{false, true} {
		for gi, g := range []*graph.Graph{sp, ms} {
			opt := Options{Certify: certify}
			want, err := MinimumCycleMean(g, howard, opt)
			if err != nil {
				t.Fatal(err)
			}
			ds := NewDynSession(g, opt)
			got, err := ds.Solve()
			if err != nil {
				t.Fatalf("graph %d certify=%v: %v", gi, certify, err)
			}
			assertSameMean(t, "cold", got, want)
			if len(got.Cycle) != len(want.Cycle) {
				t.Fatalf("graph %d certify=%v: cycle lengths differ: %v vs %v", gi, certify, got.Cycle, want.Cycle)
			}
			for i := range got.Cycle {
				if got.Cycle[i] != want.Cycle[i] {
					t.Fatalf("graph %d certify=%v: cold cycle not bit-identical: %v vs %v",
						gi, certify, got.Cycle, want.Cycle)
				}
			}
			if certify && got.Certificate == nil {
				t.Fatalf("graph %d: certified solve returned no certificate", gi)
			}
		}
	}
}

// TestDynSessionDeltaEquivalence drives a mixed random delta stream —
// weight changes, insertions, deletions, transit edits, node additions —
// and after every Update checks λ* bit-identical to a fresh certified solve
// of the materialized snapshot, plus a valid attaining witness cycle in
// original-ID space.
func TestDynSessionDeltaEquivalence(t *testing.T) {
	g, err := gen.Sprand(gen.SprandConfig{N: 50, M: 180, MinWeight: -300, MaxWeight: 300, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Certify: true}
	ds := NewDynSession(g, opt)
	if _, err := ds.Solve(); err != nil {
		t.Fatal(err)
	}

	live := make([]graph.ArcID, g.NumArcs())
	for i := range live {
		live[i] = graph.ArcID(i)
	}
	nodes := g.NumNodes()
	rng := rand.New(rand.NewSource(99))
	for step := 0; step < 250; step++ {
		var dl Delta
		switch p := rng.Intn(100); {
		case p < 45 && len(live) > 0:
			dl = Delta{Op: DeltaSetWeight, Arc: live[rng.Intn(len(live))], Weight: int64(rng.Intn(601) - 300)}
		case p < 65:
			dl = Delta{Op: DeltaInsertArc, From: graph.NodeID(rng.Intn(nodes)), To: graph.NodeID(rng.Intn(nodes)),
				Weight: int64(rng.Intn(601) - 300), Transit: 1}
		case p < 85 && len(live) > 0:
			i := rng.Intn(len(live))
			dl = Delta{Op: DeltaDeleteArc, Arc: live[i]}
		case p < 95 && len(live) > 0:
			dl = Delta{Op: DeltaSetTransit, Arc: live[rng.Intn(len(live))], Transit: int64(rng.Intn(4))}
		default:
			dl = Delta{Op: DeltaAddNode}
		}

		ids, got, err := ds.Update(context.Background(), []Delta{dl})
		switch dl.Op {
		case DeltaInsertArc:
			live = append(live, graph.ArcID(ids[0]))
		case DeltaDeleteArc:
			for i, id := range live {
				if id == dl.Arc {
					live = append(live[:i], live[i+1:]...)
					break
				}
			}
		case DeltaAddNode:
			nodes++
		}

		want, werr := dynOracle(t, ds, opt)
		if werr != nil {
			if !errors.Is(err, ErrAcyclic) || !errors.Is(werr, ErrAcyclic) {
				t.Fatalf("step %d (%s): error mismatch: session %v, fresh %v", step, dl.Op, err, werr)
			}
			continue
		}
		if err != nil {
			t.Fatalf("step %d (%s): session failed %v but fresh solve works (λ*=%s)", step, dl.Op, err, want.Mean)
		}
		assertSameMean(t, dl.Op.String(), got, want)
		assertCycleAttains(t, dl.Op.String(), ds, got)
		if got.Certificate == nil {
			t.Fatalf("step %d: no certificate", step)
		}
		if got.Certificate.Witness[0] != got.Cycle[0] || len(got.Certificate.Witness) != len(got.Cycle) {
			t.Fatalf("step %d: certificate witness diverged from the reported cycle", step)
		}
	}
	st := ds.Stats()
	if st.Deltas != 250 {
		t.Fatalf("Deltas = %d, want 250", st.Deltas)
	}
	if st.WarmHits == 0 {
		t.Fatalf("no warm hits across a 250-delta stream: %+v", st)
	}
}

// TestDynSessionWitnessOriginalIDsAfterDeletions is the arc-ID remapping
// regression (PR 8 satellite): after insertions and deletions compact the
// overlay's internal storage, Result.Cycle must still reference the stable
// original arc IDs, bit-identically to what a fresh solve of the same
// content reports through the export map. The graph is built so the
// critical cycle is unique; cycles are compared after rotation
// canonicalization (a cycle's starting arc is representational freedom).
func TestDynSessionWitnessOriginalIDsAfterDeletions(t *testing.T) {
	// Two disjoint cycles: 0->1->2->0 (mean 10) and 3->4->3 (mean 2, the
	// unique optimum), plus chaff arcs that will be deleted to force
	// compaction below the surviving IDs.
	g := graph.FromArcs(6, []graph.Arc{
		{From: 0, To: 1, Weight: 10, Transit: 1}, // 0
		{From: 5, To: 5, Weight: 50, Transit: 1}, // 1: chaff self-loop
		{From: 1, To: 2, Weight: 10, Transit: 1}, // 2
		{From: 5, To: 0, Weight: 9, Transit: 1},  // 3: chaff
		{From: 2, To: 0, Weight: 10, Transit: 1}, // 4
		{From: 3, To: 4, Weight: 1, Transit: 1},  // 5
		{From: 4, To: 3, Weight: 3, Transit: 1},  // 6
	})
	opt := Options{Certify: true}
	ds := NewDynSession(g, opt)
	if _, err := ds.Solve(); err != nil {
		t.Fatal(err)
	}

	// Delete the chaff (IDs 1 and 3): every arc above slot 1 moves in the
	// compacted store, but IDs must not. Then insert a new arc and delete it
	// again, twice, so freshly assigned IDs also see compaction.
	if _, err := ds.Apply(Delta{Op: DeltaDeleteArc, Arc: 1}, Delta{Op: DeltaDeleteArc, Arc: 3}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		ids, err := ds.Apply(Delta{Op: DeltaInsertArc, From: 2, To: 1, Weight: 100, Transit: 1})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ds.Apply(Delta{Op: DeltaDeleteArc, Arc: graph.ArcID(ids[0])}); err != nil {
			t.Fatal(err)
		}
	}

	got, err := ds.Solve()
	if err != nil {
		t.Fatal(err)
	}
	want, err := dynOracle(t, ds, opt)
	if err != nil {
		t.Fatal(err)
	}
	assertSameMean(t, "after-compaction", got, want)

	gc := canonicalRotation(got.Cycle)
	wc := canonicalRotation(want.Cycle)
	if len(gc) != len(wc) {
		t.Fatalf("cycle lengths differ: %v vs %v", gc, wc)
	}
	for i := range gc {
		if gc[i] != wc[i] {
			t.Fatalf("witness cycle not bit-identical in original-ID space: %v vs %v", gc, wc)
		}
	}
	// The unique optimum is the 3->4->3 cycle: original IDs 5 and 6.
	if len(gc) != 2 || gc[0] != 5 || gc[1] != 6 {
		t.Fatalf("witness cycle = %v, want the original-ID cycle [5 6]", gc)
	}
	assertCycleAttains(t, "after-compaction", ds, got)
}

// canonicalRotation rotates cycle so its smallest arc ID leads.
func canonicalRotation(cycle []graph.ArcID) []graph.ArcID {
	if len(cycle) == 0 {
		return cycle
	}
	min := 0
	for i := 1; i < len(cycle); i++ {
		if cycle[i] < cycle[min] {
			min = i
		}
	}
	out := make([]graph.ArcID, 0, len(cycle))
	out = append(out, cycle[min:]...)
	out = append(out, cycle[:min]...)
	return out
}

// TestDynSessionMergeAndSplit walks a multi-component graph through a
// component merge (insertion closing a cross-component cycle) and back
// (deleting the bridge), checking answers and the merge/split counters.
func TestDynSessionMergeAndSplit(t *testing.T) {
	// Components {0,1} (mean 5) and {2,3} (mean 3); node 4 acyclic between.
	g := graph.FromArcs(5, []graph.Arc{
		{From: 0, To: 1, Weight: 4, Transit: 1}, // 0
		{From: 1, To: 0, Weight: 6, Transit: 1}, // 1
		{From: 2, To: 3, Weight: 2, Transit: 1}, // 2
		{From: 3, To: 2, Weight: 4, Transit: 1}, // 3
		{From: 1, To: 4, Weight: 0, Transit: 1}, // 4: into the acyclic middle
		{From: 4, To: 2, Weight: 0, Transit: 1}, // 5
	})
	opt := Options{Certify: true}
	ds := NewDynSession(g, opt)
	res, err := ds.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(3); res.Mean.Num() != want || res.Mean.Den() != 1 {
		t.Fatalf("initial λ* = %s, want 3", res.Mean)
	}
	if st := ds.Stats(); st.LiveComponents != 2 {
		t.Fatalf("LiveComponents = %d, want 2", st.LiveComponents)
	}

	// 3 -> 0 closes a big cycle through all five nodes: components merge.
	ids, res, err := ds.Update(context.Background(), []Delta{
		{Op: DeltaInsertArc, From: 3, To: 0, Weight: -20, Transit: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := dynOracle(t, ds, opt)
	if err != nil {
		t.Fatal(err)
	}
	assertSameMean(t, "merge", res, want)
	st := ds.Stats()
	if st.LiveComponents != 1 || st.Merges != 1 {
		t.Fatalf("after merge: %+v", st)
	}

	// Deleting the bridge splits it back apart.
	_, res, err = ds.Update(context.Background(), []Delta{
		{Op: DeltaDeleteArc, Arc: graph.ArcID(ids[0])},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean.Num() != 3 || res.Mean.Den() != 1 {
		t.Fatalf("after split λ* = %s, want 3", res.Mean)
	}
	st = ds.Stats()
	if st.LiveComponents != 2 || st.Splits != 1 {
		t.Fatalf("after split: %+v", st)
	}

	// A cross-component insertion that closes no cycle must invalidate
	// nothing: the next Solve does zero component work.
	before := ds.Stats().Components
	if _, _, err := ds.Update(context.Background(), []Delta{
		{Op: DeltaInsertArc, From: 0, To: 2, Weight: 1, Transit: 1},
	}); err != nil {
		t.Fatal(err)
	}
	if after := ds.Stats().Components; after != before {
		t.Fatalf("free insertion still re-solved %d components", after-before)
	}
}

// TestDynSessionErrorsAndRecovery: bad deltas are typed ErrBadDelta and
// leave the engine consistent; a weight pushing past the numeric range
// fails the solve but stays dirty, so fixing the weight recovers.
func TestDynSessionErrorsAndRecovery(t *testing.T) {
	g := graph.FromArcs(2, []graph.Arc{
		{From: 0, To: 1, Weight: 1, Transit: 1},
		{From: 1, To: 0, Weight: 1, Transit: 1},
	})
	ds := NewDynSession(g, Options{Certify: true})
	if _, err := ds.Solve(); err != nil {
		t.Fatal(err)
	}

	if _, err := ds.Apply(Delta{Op: DeltaDeleteArc, Arc: 99}); !errors.Is(err, ErrBadDelta) {
		t.Fatalf("dead-arc delete: got %v, want ErrBadDelta", err)
	}
	if _, err := ds.Apply(Delta{Op: DeltaInsertArc, From: 0, To: 7}); !errors.Is(err, ErrBadDelta) {
		t.Fatalf("out-of-range insert: got %v, want ErrBadDelta", err)
	}
	if _, err := ds.Apply(Delta{Op: DeltaOp(200)}); !errors.Is(err, ErrBadDelta) {
		t.Fatalf("unknown op: got %v, want ErrBadDelta", err)
	}

	// Weight out of the solver's numeric range: solve fails typed, then a
	// corrective delta restores service without rebuilding the session.
	if _, _, err := ds.Update(context.Background(), []Delta{
		{Op: DeltaSetWeight, Arc: 0, Weight: MaxWeightMagnitude + 1},
	}); err == nil {
		t.Fatal("out-of-range weight solved successfully")
	}
	_, res, err := ds.Update(context.Background(), []Delta{
		{Op: DeltaSetWeight, Arc: 0, Weight: 3},
	})
	if err != nil {
		t.Fatalf("recovery solve: %v", err)
	}
	if res.Mean.Num() != 2 || res.Mean.Den() != 1 {
		t.Fatalf("recovered λ* = %s, want 2", res.Mean)
	}

	// Deleting every arc leaves an acyclic graph: typed ErrAcyclic, and a
	// reinsertion brings it back.
	if _, _, err := ds.Update(context.Background(), []Delta{
		{Op: DeltaDeleteArc, Arc: 0},
	}); !errors.Is(err, ErrAcyclic) {
		t.Fatalf("after breaking the cycle: got %v, want ErrAcyclic", err)
	}
	_, res, err = ds.Update(context.Background(), []Delta{
		{Op: DeltaInsertArc, From: 0, To: 1, Weight: 5, Transit: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean.Num() != 3 || res.Mean.Den() != 1 {
		t.Fatalf("after reinsertion λ* = %s, want 3", res.Mean)
	}
}

// TestDynSessionSolveContextCancel: a canceled solve returns ErrCanceled,
// leaves the touched component dirty, and the next call completes the work.
func TestDynSessionSolveContextCancel(t *testing.T) {
	g, err := gen.Sprand(gen.SprandConfig{N: 200, M: 800, MinWeight: -1000, MaxWeight: 1000, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	ds := NewDynSession(g, Options{Certify: true})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ds.SolveContext(ctx); !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-canceled solve: got %v, want ErrCanceled", err)
	}
	res, err := ds.Solve()
	if err != nil {
		t.Fatalf("follow-up solve: %v", err)
	}
	want, err := dynOracle(t, ds, Options{Certify: true})
	if err != nil {
		t.Fatal(err)
	}
	assertSameMean(t, "post-cancel", res, want)
}
