package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/approx"
	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/obs"
)

func init() {
	register("approx", func() Algorithm { return approxAlg{} })
}

// ApproxOptions parameterizes the "approx" algorithm (internal/approx): the
// streaming ε-approximation tier layered under the same Algorithm interface
// as the exact solvers.
type ApproxOptions struct {
	// Epsilon is the requested tolerance. Under ModeCHKL ("chkl", the
	// default) the certified interval width is at most ε·max(1, |λ̂|), a
	// relative guarantee in the style of Chatterjee–Henzinger–Krinninger–
	// Loitzenbauer; under ModeAP ("ap") it is at most ε·max(1, W) with W the
	// largest weight magnitude, the additive guarantee of the Altschuler–
	// Parrilo entropic scheme. Epsilon <= 0 requests an exact answer: the
	// engine brackets λ* coarsely and an exact Lawler pass seeded from the
	// interval finishes the job (same path ApproxSharpen takes).
	Epsilon float64
	// Mode selects the scheme: "" or "chkl" for the relative-error hard
	// bisection, "ap" for the additive entropic (softmin) variant. Any other
	// value fails with ErrApproxMode.
	Mode string
}

// bracketEpsilon is the engine tolerance used when the caller asked for an
// exact answer (Epsilon <= 0, ApproxSharpen, or Certify): tight enough that
// the Lawler pass seeded from the interval probes only a handful of grid
// points, loose enough that the engine converges in few rounds.
const bracketEpsilon = 0.01

// CanonicalApproxMode resolves an ApproxOptions.Mode spelling to its
// canonical form ("" defaults to the CHKL relative-error scheme) or returns
// ErrApproxMode. Callers that key caches on the mode should store the
// canonical spelling so the default and the explicit form coincide.
func CanonicalApproxMode(mode string) (string, error) { return approxMode(mode) }

func approxMode(mode string) (string, error) {
	switch mode {
	case "", approx.ModeCHKL:
		return approx.ModeCHKL, nil
	case approx.ModeAP:
		return approx.ModeAP, nil
	}
	return "", fmt.Errorf("%w: %q", ErrApproxMode, mode)
}

// approxConfig translates driver Options into an engine Config.
func approxConfig(opt Options, mode string, eps float64) approx.Config {
	cfg := approx.Config{
		Epsilon:    eps,
		Mode:       mode,
		Checkpoint: opt.checkpoint,
	}
	if opt.MaxIterations > 0 {
		cfg.MaxPasses = opt.MaxIterations
	}
	return cfg
}

// approxCounts maps the engine's work measures onto the shared counter
// vocabulary: rounds are main-loop iterations, improvements are relaxations,
// and every pass touches all m arcs.
func approxCounts(res approx.Result, arcs int) (c struct {
	iters, relax, visited int
}) {
	c.iters = res.Rounds
	c.relax = res.Improvements
	c.visited = res.Passes * arcs
	return c
}

// emitApprox reports one engine run through the tracer; nil-safe.
func emitApprox(t *obs.Trace, mode string, eps float64, nodes, arcs int, res approx.Result, sharpened bool, err error) {
	if !t.Enabled() {
		return
	}
	upper := math.NaN()
	if len(res.Cycle) > 0 {
		upper = res.Mean.Float64()
	}
	t.Approx(obs.ApproxEvent{
		Mode:      mode,
		Epsilon:   eps,
		Nodes:     nodes,
		Arcs:      arcs,
		Passes:    res.Passes,
		Rounds:    res.Rounds,
		Lower:     res.Lower,
		Upper:     upper,
		Sharpened: sharpened,
		Err:       err,
	})
}

// approxAlg adapts internal/approx to the Algorithm interface under the name
// "approx". With Epsilon > 0 it returns an ε-certified interval (Exact false,
// ErrorBound set); with Epsilon <= 0, ApproxSharpen, or Certify it follows
// the interval with an exact Lawler pass whose bisection is seeded from the
// certified bounds, so the default configuration is bit-identical to the
// exact solvers.
type approxAlg struct{}

func (approxAlg) Name() string { return "approx" }

func (approxAlg) Solve(g *graph.Graph, opt Options) (Result, error) {
	mode, err := approxMode(opt.Approx.Mode)
	if err != nil {
		return Result{}, err
	}
	if err := checkSolveInput(g); err != nil {
		return Result{}, err
	}
	eps := opt.Approx.Epsilon
	sharpen := opt.ApproxSharpen || opt.Certify || eps <= 0
	runEps := eps
	if runEps <= 0 {
		runEps = bracketEpsilon
	}
	res, engErr := approx.MinCycleMean(g, approxConfig(opt, mode, runEps))
	if engErr != nil {
		switch {
		case errors.Is(engErr, approx.ErrAcyclic):
			// checkSolveInput admitted the graph, so it has a cycle; an
			// acyclic verdict here would be an engine bug, but map it to the
			// shared sentinel rather than leak the internal one.
			emitApprox(opt.Tracer, mode, runEps, g.NumNodes(), g.NumArcs(), res, false, engErr)
			return Result{}, ErrAcyclic
		case errors.Is(engErr, approx.ErrWeightRange):
			emitApprox(opt.Tracer, mode, runEps, g.NumNodes(), g.NumArcs(), res, false, engErr)
			return Result{}, ErrWeightRange
		case errors.Is(engErr, approx.ErrPassLimit):
			if !sharpen {
				emitApprox(opt.Tracer, mode, runEps, g.NumNodes(), g.NumArcs(), res, false, engErr)
				return Result{}, fmt.Errorf("%w: approximation stalled at [%g, %g]", ErrIterationLimit, res.Lower, res.Mean.Float64())
			}
			// The partial interval is still certified; Lawler below can
			// absorb whatever narrowing was achieved.
		default:
			// Checkpoint/cancellation errors propagate verbatim.
			emitApprox(opt.Tracer, mode, runEps, g.NumNodes(), g.NumArcs(), res, false, engErr)
			return Result{}, engErr
		}
	}

	if !sharpen {
		emitApprox(opt.Tracer, mode, runEps, g.NumNodes(), g.NumArcs(), res, false, nil)
		c := approxCounts(res, g.NumArcs())
		out := Result{
			Mean:       res.Mean,
			Cycle:      res.Cycle,
			Exact:      res.ErrorBound == 0,
			ErrorBound: res.ErrorBound,
		}
		out.Counts.Iterations = c.iters
		out.Counts.Relaxations = c.relax
		out.Counts.ArcsVisited = c.visited
		return out, nil
	}

	out, err := sharpenWithLawler(g, opt, res)
	emitApprox(opt.Tracer, mode, runEps, g.NumNodes(), g.NumArcs(), res, err == nil, engErr)
	if err != nil {
		return Result{}, err
	}
	c := approxCounts(res, g.NumArcs())
	out.Counts.Iterations += c.iters
	out.Counts.Relaxations += c.relax
	out.Counts.ArcsVisited += c.visited
	return out, nil
}

// sharpenWithLawler runs the exact Lawler bisection with its λ bracket
// narrowed to the engine's certified interval. res.Lower ≤ λ* always; the
// witness cycle's exact mean, when one was harvested, is an upper bound.
func sharpenWithLawler(g *graph.Graph, opt Options, res approx.Result) (Result, error) {
	sub := opt
	sub.Epsilon = 0 // exact grid; opt.Epsilon belongs to the legacy solvers
	sub.Approx = ApproxOptions{}
	sub.ApproxSharpen = false
	// Round the float lower bound down onto a dyadic grid so the rational
	// stays small: floor(Lower·2^20)/2^20 ≤ Lower ≤ λ*.
	if !math.IsInf(res.Lower, -1) {
		lo := numeric.NewRat(int64(math.Floor(res.Lower*(1<<20))), 1<<20)
		sub.LambdaLower = &lo
	}
	if len(res.Cycle) > 0 {
		up := res.Mean // exact rational mean of a real cycle
		sub.LambdaUpper = &up
	} else {
		sub.LambdaUpper = nil
	}
	return lawlerAlg{}.Solve(g, sub)
}

// MinimumCycleMeanStream computes an ε-certified λ* over a streaming arc
// source using the "approx" engine, without ever materializing the graph:
// working memory is O(n) regardless of the arc count. The source must be
// re-scannable (each pass re-reads the stream).
//
// The streaming path is approximate-only: Approx.Epsilon must be positive,
// and ApproxSharpen/Certify are rejected because the exact Lawler pass needs
// a materialized graph. Unlike MinimumCycleMean it does not decompose into
// strongly connected components — the engine's value iteration is sound on
// arbitrary graphs — so it accepts any source, returning ErrAcyclic when no
// cycle exists.
func MinimumCycleMeanStream(src graph.ArcSource, opt Options) (Result, error) {
	mode, err := approxMode(opt.Approx.Mode)
	if err != nil {
		return Result{}, err
	}
	if opt.ApproxSharpen || opt.Certify {
		return Result{}, errors.New("core: streaming solve is approximate-only; sharpening and certification require a materialized graph")
	}
	if opt.Approx.Epsilon <= 0 {
		return Result{}, errors.New("core: streaming solve requires Approx.Epsilon > 0")
	}
	res, engErr := approx.MinCycleMean(src, approxConfig(opt, mode, opt.Approx.Epsilon))
	emitApprox(opt.Tracer, mode, opt.Approx.Epsilon, src.NumNodes(), src.NumArcs(), res, false, engErr)
	if engErr != nil {
		switch {
		case errors.Is(engErr, approx.ErrAcyclic):
			return Result{}, ErrAcyclic
		case errors.Is(engErr, approx.ErrWeightRange):
			return Result{}, ErrWeightRange
		case errors.Is(engErr, approx.ErrPassLimit):
			return Result{}, fmt.Errorf("%w: approximation stalled at [%g, %g]", ErrIterationLimit, res.Lower, res.Mean.Float64())
		}
		return Result{}, engErr
	}
	c := approxCounts(res, src.NumArcs())
	out := Result{
		Mean:       res.Mean,
		Cycle:      res.Cycle,
		Exact:      res.ErrorBound == 0,
		ErrorBound: res.ErrorBound,
	}
	out.Counts.Iterations = c.iters
	out.Counts.Relaxations = c.relax
	out.Counts.ArcsVisited = c.visited
	return out, nil
}
