package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/graph"
	"repro/internal/verify"
)

// decodeFuzzDeltas splits fuzz bytes into an initial graph and a delta
// stream. Byte 0 picks the node count in [2, maxN]; byte 1 the number of
// seed arcs; then 3-byte arc chunks; every remaining 4-byte chunk is one
// delta (op selector + operands). Deltas deliberately reach dead arc IDs
// and out-of-range nodes, so the typed-rejection path is fuzzed too.
func decodeFuzzDeltas(data []byte, maxN, maxSeedArcs, maxDeltas int) (*graph.Graph, []Delta) {
	if len(data) < 2 {
		return nil, nil
	}
	n := 2 + int(data[0])%(maxN-1)
	m := int(data[1]) % (maxSeedArcs + 1)
	data = data[2:]
	var arcs []graph.Arc
	for len(data) >= 3 && len(arcs) < m {
		arcs = append(arcs, graph.Arc{
			From:    graph.NodeID(int(data[0]) % n),
			To:      graph.NodeID(int(data[1]) % n),
			Weight:  int64(int8(data[2])),
			Transit: 1,
		})
		data = data[3:]
	}
	var deltas []Delta
	for len(data) >= 4 && len(deltas) < maxDeltas {
		op, a, b, c := data[0], data[1], data[2], data[3]
		data = data[4:]
		switch op % 5 {
		case 0:
			deltas = append(deltas, Delta{Op: DeltaInsertArc,
				From: graph.NodeID(a), To: graph.NodeID(b), Weight: int64(int8(c)), Transit: 1})
		case 1:
			deltas = append(deltas, Delta{Op: DeltaDeleteArc, Arc: graph.ArcID(int(a) | int(b)<<8)})
		case 2:
			deltas = append(deltas, Delta{Op: DeltaSetWeight, Arc: graph.ArcID(a), Weight: int64(int8(c))})
		case 3:
			deltas = append(deltas, Delta{Op: DeltaSetTransit, Arc: graph.ArcID(a), Transit: int64(c % 4)})
		case 4:
			deltas = append(deltas, Delta{Op: DeltaAddNode})
		}
	}
	return graph.FromArcs(n, arcs), deltas
}

// FuzzSessionDeltas drives DynSession with arbitrary delta streams and
// cross-checks every post-delta answer against a fresh certified Howard
// solve of the materialized snapshot (itself fuzzed against the brute-force
// oracle by FuzzSolveDifferential): λ* must be bit-identical, the witness
// must be a valid attaining cycle in original-ID space, and the attached
// certificate must pass the independent optimality check. Rejected deltas
// must be typed ErrBadDelta and leave the engine consistent.
func FuzzSessionDeltas(f *testing.F) {
	// Seeds: a weight edit on a 2-cycle; a merge then split; inserts onto a
	// self-loop graph; a dead-arc delete; add-node plus wiring into it.
	f.Add([]byte{2, 2, 0, 1, 5, 1, 0, 7, 2, 0, 0, 200, 2, 1, 0, 9})
	f.Add([]byte{4, 4, 0, 1, 1, 1, 0, 1, 2, 3, 2, 3, 2, 4, 0, 2, 3, 100, 1, 4, 0, 0})
	f.Add([]byte{3, 1, 1, 1, 50, 0, 0, 2, 250, 0, 2, 0, 3, 1, 0, 0, 60})
	f.Add([]byte{2, 1, 0, 1, 1, 1, 9, 0, 0, 1, 5, 0, 0})
	f.Add([]byte{2, 2, 0, 1, 2, 1, 0, 2, 4, 0, 0, 0, 0, 2, 0, 30, 0, 1, 2, 10})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, deltas := decodeFuzzDeltas(data, 8, 10, 24)
		if g == nil || len(deltas) == 0 {
			return
		}
		howard, err := ByName("howard")
		if err != nil {
			t.Fatal(err)
		}
		opt := Options{Certify: true}
		ds := NewDynSession(g, opt)
		nodes := g.NumNodes()
		for i, dl := range deltas {
			// Normalize insertion endpoints onto the *current* node count so
			// insertions mostly succeed while still probing the range check.
			if dl.Op == DeltaInsertArc && int(dl.From) >= nodes {
				dl.From = graph.NodeID(int(dl.From) % nodes)
			}
			if dl.Op == DeltaInsertArc && int(dl.To) >= nodes {
				dl.To = graph.NodeID(int(dl.To) % nodes)
			}
			_, res, err := ds.Update(context.Background(), []Delta{dl})
			if errors.Is(err, ErrBadDelta) {
				continue // rejected cleanly; state must be unchanged, which
				// the next iteration's oracle comparison establishes
			}
			if dl.Op == DeltaAddNode {
				nodes++
			}
			snap, export := ds.Materialize()
			want, werr := MinimumCycleMean(snap, howard, opt)
			if werr != nil {
				if err == nil {
					t.Fatalf("delta %d (%s): fresh solve failed (%v) but session returned λ*=%s",
						i, dl.Op, werr, res.Mean)
				}
				if errors.Is(werr, ErrAcyclic) != errors.Is(err, ErrAcyclic) {
					t.Fatalf("delta %d (%s): error class mismatch: session %v, fresh %v", i, dl.Op, err, werr)
				}
				continue
			}
			if err != nil {
				t.Fatalf("delta %d (%s): session failed (%v) but fresh solve gives %s", i, dl.Op, err, want.Mean)
			}
			if res.Mean.Num() != want.Mean.Num() || res.Mean.Den() != want.Mean.Den() {
				t.Fatalf("delta %d (%s): λ* = %s, fresh solve of same content says %s",
					i, dl.Op, res.Mean, want.Mean)
			}
			// Witness: original IDs → compact snapshot IDs, then validate.
			o2c := make(map[graph.ArcID]graph.ArcID, len(export))
			for ci, orig := range export {
				o2c[orig] = graph.ArcID(ci)
			}
			cyc := make([]graph.ArcID, len(res.Cycle))
			for j, orig := range res.Cycle {
				cid, ok := o2c[orig]
				if !ok {
					t.Fatalf("delta %d: witness references dead/unknown arc %d", i, orig)
				}
				cyc[j] = cid
			}
			if verr := snap.ValidateCycle(cyc); verr != nil {
				t.Fatalf("delta %d: invalid witness %v: %v", i, res.Cycle, verr)
			}
			if res.Certificate == nil {
				t.Fatalf("delta %d: certified solve returned no certificate", i)
			}
			if cerr := verify.CheckCycleIsOptimal(snap, res.Certificate.Value, cyc); cerr != nil {
				t.Fatalf("delta %d: certificate fails independent check: %v", i, cerr)
			}
		}
	})
}
