package gen

import (
	"fmt"

	"repro/internal/graph"
)

// This file hosts the streaming face of the generator families: each Source
// satisfies graph.ArcSource by re-deriving its rng from the seed on every
// Scan, so a pass over billions of arcs costs O(1) memory and the stream is
// bit-identical to the materialized graph (the Build functions are thin
// graph.Materialize wrappers over the same emitters, so there is exactly one
// arc-generation code path and the rng draw order can never diverge).

// SprandSource streams a SPRAND instance without materializing it.
type SprandSource struct{ cfg SprandConfig }

// NewSprandSource validates cfg and returns the streaming source.
func NewSprandSource(cfg SprandConfig) (*SprandSource, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("gen: SPRAND needs n >= 1, got %d", cfg.N)
	}
	if cfg.M < cfg.N {
		return nil, fmt.Errorf("gen: SPRAND needs m >= n (got n=%d m=%d); the Hamiltonian cycle alone has n arcs", cfg.N, cfg.M)
	}
	if cfg.MaxWeight < cfg.MinWeight {
		return nil, fmt.Errorf("gen: empty weight interval [%d,%d]", cfg.MinWeight, cfg.MaxWeight)
	}
	return &SprandSource{cfg: cfg}, nil
}

// NumNodes returns n.
func (s *SprandSource) NumNodes() int { return s.cfg.N }

// NumArcs returns m.
func (s *SprandSource) NumArcs() int { return s.cfg.M }

// Scan emits the instance's arcs in generation order: the Hamiltonian cycle
// first, then the m−n random arcs. Draw order matches the historical Sprand
// builder exactly, so seeds keep producing the same graphs.
func (s *SprandSource) Scan(yield func(graph.ArcID, graph.Arc) bool) error {
	cfg := s.cfg
	r := newRNG(cfg.Seed)
	id := graph.ArcID(0)
	emit := func(u, v graph.NodeID, w int64) bool {
		ok := yield(id, graph.Arc{From: u, To: v, Weight: w, Transit: 1})
		id++
		return ok
	}
	for i := 0; i < cfg.N; i++ {
		if !emit(graph.NodeID(i), graph.NodeID((i+1)%cfg.N), r.rangeInt(cfg.MinWeight, cfg.MaxWeight)) {
			return nil
		}
	}
	for i := cfg.N; i < cfg.M; i++ {
		u := graph.NodeID(r.intn(int64(cfg.N)))
		v := graph.NodeID(r.intn(int64(cfg.N)))
		for cfg.N > 1 && v == u {
			v = graph.NodeID(r.intn(int64(cfg.N)))
		}
		if !emit(u, v, r.rangeInt(cfg.MinWeight, cfg.MaxWeight)) {
			return nil
		}
	}
	return nil
}

// ChainSource streams a chain-heavy circuit instance without materializing it.
type ChainSource struct{ cfg ChainConfig }

// NewChainSource validates cfg and returns the streaming source.
func NewChainSource(cfg ChainConfig) (*ChainSource, error) {
	if cfg.CoreN < 2 {
		return nil, fmt.Errorf("gen: Chain needs CoreN >= 2, got %d", cfg.CoreN)
	}
	if cfg.Chains < 0 || cfg.ChainLen < 0 || cfg.SelfLoops < 0 {
		return nil, fmt.Errorf("gen: Chain counts must be non-negative")
	}
	if cfg.MaxWeight < cfg.MinWeight {
		return nil, fmt.Errorf("gen: empty weight interval [%d,%d]", cfg.MinWeight, cfg.MaxWeight)
	}
	return &ChainSource{cfg: cfg}, nil
}

// NumNodes returns CoreN + Chains·ChainLen.
func (s *ChainSource) NumNodes() int { return s.cfg.CoreN + s.cfg.Chains*s.cfg.ChainLen }

// NumArcs returns CoreN + CoreN/2 + Chains·(ChainLen+1) + SelfLoops.
func (s *ChainSource) NumArcs() int {
	return s.cfg.CoreN + s.cfg.CoreN/2 + s.cfg.Chains*(s.cfg.ChainLen+1) + s.cfg.SelfLoops
}

// Scan emits core ring, chords, chains, then self-loops — the historical
// Chain builder's generation order, bit-identical per seed.
func (s *ChainSource) Scan(yield func(graph.ArcID, graph.Arc) bool) error {
	cfg := s.cfg
	r := newRNG(cfg.Seed ^ 0x9e3779b97f4a7c15)
	w := func() int64 { return r.rangeInt(cfg.MinWeight, cfg.MaxWeight) }
	id := graph.ArcID(0)
	emit := func(u, v graph.NodeID, wt int64) bool {
		ok := yield(id, graph.Arc{From: u, To: v, Weight: wt, Transit: 1})
		id++
		return ok
	}

	for i := 0; i < cfg.CoreN; i++ {
		if !emit(graph.NodeID(i), graph.NodeID((i+1)%cfg.CoreN), w()) {
			return nil
		}
	}
	for i := 0; i < cfg.CoreN/2; i++ {
		u := graph.NodeID(r.intn(int64(cfg.CoreN)))
		v := graph.NodeID(r.intn(int64(cfg.CoreN)))
		for v == u {
			v = graph.NodeID(r.intn(int64(cfg.CoreN)))
		}
		if !emit(u, v, w()) {
			return nil
		}
	}
	next := graph.NodeID(cfg.CoreN)
	for c := 0; c < cfg.Chains; c++ {
		u := graph.NodeID(r.intn(int64(cfg.CoreN)))
		v := graph.NodeID(r.intn(int64(cfg.CoreN)))
		prev := u
		for i := 0; i < cfg.ChainLen; i++ {
			if !emit(prev, next, w()) {
				return nil
			}
			prev = next
			next++
		}
		if !emit(prev, v, w()) {
			return nil
		}
	}
	for i := 0; i < cfg.SelfLoops; i++ {
		v := graph.NodeID(r.intn(int64(cfg.CoreN)))
		if !emit(v, v, w()) {
			return nil
		}
	}
	return nil
}

// TorusSource streams a rows×cols directed torus without materializing it.
type TorusSource struct {
	rows, cols int
	minW, maxW int64
	seed       uint64
}

// NewTorusSource returns the streaming source for Torus(rows, cols, ...).
func NewTorusSource(rows, cols int, minW, maxW int64, seed uint64) (*TorusSource, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("gen: torus needs positive dimensions, got %dx%d", rows, cols)
	}
	if maxW < minW {
		return nil, fmt.Errorf("gen: empty weight interval [%d,%d]", minW, maxW)
	}
	return &TorusSource{rows: rows, cols: cols, minW: minW, maxW: maxW, seed: seed}, nil
}

// NumNodes returns rows·cols.
func (s *TorusSource) NumNodes() int { return s.rows * s.cols }

// NumArcs returns 2·rows·cols.
func (s *TorusSource) NumArcs() int { return 2 * s.rows * s.cols }

// Scan emits right then down per cell, row-major — the historical Torus
// builder's order.
func (s *TorusSource) Scan(yield func(graph.ArcID, graph.Arc) bool) error {
	r := newRNG(s.seed)
	id := graph.ArcID(0)
	cell := func(i, j int) graph.NodeID { return graph.NodeID(i*s.cols + j) }
	emit := func(u, v graph.NodeID, w int64) bool {
		ok := yield(id, graph.Arc{From: u, To: v, Weight: w, Transit: 1})
		id++
		return ok
	}
	for i := 0; i < s.rows; i++ {
		for j := 0; j < s.cols; j++ {
			if !emit(cell(i, j), cell(i, (j+1)%s.cols), r.rangeInt(s.minW, s.maxW)) {
				return nil
			}
			if !emit(cell(i, j), cell((i+1)%s.rows, j), r.rangeInt(s.minW, s.maxW)) {
				return nil
			}
		}
	}
	return nil
}
