package gen

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestSprandStructure(t *testing.T) {
	cfg := SprandConfig{N: 100, M: 300, Seed: 5}.DefaultWeights()
	g, err := Sprand(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 100 || g.NumArcs() != 300 {
		t.Fatalf("size %d/%d", g.NumNodes(), g.NumArcs())
	}
	if !graph.IsStronglyConnected(g) {
		t.Fatal("SPRAND graphs must be strongly connected (Hamiltonian cycle)")
	}
	min, max := g.WeightRange()
	if min < 1 || max > 10000 {
		t.Fatalf("weights [%d,%d] outside [1,10000]", min, max)
	}
	// The first n arcs are the Hamiltonian cycle.
	for i := 0; i < 100; i++ {
		a := g.Arc(graph.ArcID(i))
		if int(a.From) != i || int(a.To) != (i+1)%100 {
			t.Fatalf("arc %d = %d->%d, want Hamiltonian cycle", i, a.From, a.To)
		}
	}
	// Random arcs avoid self-loops.
	for i := 100; i < 300; i++ {
		if a := g.Arc(graph.ArcID(i)); a.From == a.To {
			t.Fatalf("random arc %d is a self-loop", i)
		}
	}
}

func TestSprandDeterminism(t *testing.T) {
	cfg := SprandConfig{N: 64, M: 200, MinWeight: 1, MaxWeight: 100, Seed: 99}
	g1, err := Sprand(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Sprand(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g1.NumArcs(); i++ {
		if g1.Arc(graph.ArcID(i)) != g2.Arc(graph.ArcID(i)) {
			t.Fatal("same seed produced different graphs")
		}
	}
	g3, err := Sprand(SprandConfig{N: 64, M: 200, MinWeight: 1, MaxWeight: 100, Seed: 100})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < g1.NumArcs(); i++ {
		if g1.Arc(graph.ArcID(i)) != g3.Arc(graph.ArcID(i)) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestSprandErrors(t *testing.T) {
	if _, err := Sprand(SprandConfig{N: 0, M: 5, MinWeight: 1, MaxWeight: 2}); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Sprand(SprandConfig{N: 10, M: 5, MinWeight: 1, MaxWeight: 2}); err == nil {
		t.Error("m<n accepted")
	}
	if _, err := Sprand(SprandConfig{N: 5, M: 10, MinWeight: 3, MaxWeight: 2}); err == nil {
		t.Error("empty weight interval accepted")
	}
}

func TestSprandAlwaysStronglyConnected(t *testing.T) {
	f := func(seed uint64, nRaw, extraRaw uint8) bool {
		n := int(nRaw)%50 + 1
		m := n + int(extraRaw)%100
		g, err := Sprand(SprandConfig{N: n, M: m, MinWeight: 1, MaxWeight: 10, Seed: seed})
		if err != nil {
			return false
		}
		return graph.IsStronglyConnected(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightDistributionInRange(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := Sprand(SprandConfig{N: 20, M: 60, MinWeight: -7, MaxWeight: 13, Seed: seed})
		if err != nil {
			return false
		}
		min, max := g.WeightRange()
		return min >= -7 && max <= 13
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCycleGraph(t *testing.T) {
	g := Cycle(7, 42)
	if g.NumNodes() != 7 || g.NumArcs() != 7 {
		t.Fatalf("size %d/%d", g.NumNodes(), g.NumArcs())
	}
	if !graph.IsStronglyConnected(g) {
		t.Fatal("cycle not strongly connected")
	}
	for _, a := range g.Arcs() {
		if a.Weight != 42 {
			t.Fatal("weights wrong")
		}
	}
}

func TestComplete(t *testing.T) {
	g := Complete(6, 1, 9, 3)
	if g.NumArcs() != 30 {
		t.Fatalf("arcs = %d, want 30", g.NumArcs())
	}
	for _, a := range g.Arcs() {
		if a.From == a.To {
			t.Fatal("self-loop in complete graph")
		}
		if a.Weight < 1 || a.Weight > 9 {
			t.Fatal("weight out of range")
		}
	}
	if !graph.IsStronglyConnected(g) {
		t.Fatal("complete graph must be strongly connected")
	}
}

func TestTorus(t *testing.T) {
	g := Torus(4, 5, 1, 10, 1)
	if g.NumNodes() != 20 || g.NumArcs() != 40 {
		t.Fatalf("size %d/%d", g.NumNodes(), g.NumArcs())
	}
	if !graph.IsStronglyConnected(g) {
		t.Fatal("torus must be strongly connected")
	}
	for v := graph.NodeID(0); int(v) < 20; v++ {
		if g.OutDegree(v) != 2 {
			t.Fatalf("outdeg(%d) = %d, want 2", v, g.OutDegree(v))
		}
	}
}

func TestMultiSCC(t *testing.T) {
	g, err := MultiSCC(4, 10, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	scc := graph.StronglyConnectedComponents(g)
	if scc.Count != 4 {
		t.Fatalf("SCC count = %d, want 4", scc.Count)
	}
	for _, members := range scc.Members {
		if len(members) != 10 {
			t.Fatalf("block size = %d, want 10", len(members))
		}
	}
}

func TestTable2Sizes(t *testing.T) {
	sizes := Table2Sizes()
	if len(sizes) != 25 {
		t.Fatalf("got %d sizes, want 25", len(sizes))
	}
	if sizes[0] != [2]int{512, 512} {
		t.Fatalf("first size %v", sizes[0])
	}
	if sizes[24] != [2]int{8192, 24576} {
		t.Fatalf("last size %v", sizes[24])
	}
	// m/n ratios 1, 1.5, 2, 2.5, 3 per n.
	for i := 0; i < 25; i += 5 {
		n := sizes[i][0]
		want := []int{n, n * 3 / 2, 2 * n, n * 5 / 2, 3 * n}
		for j, w := range want {
			if sizes[i+j][1] != w {
				t.Fatalf("n=%d ratios wrong: %v", n, sizes[i:i+5])
			}
		}
	}
}

func TestRNGUniformity(t *testing.T) {
	// Crude sanity: intn(10) hits every residue over enough draws.
	r := newRNG(123)
	seen := make(map[int64]int)
	for i := 0; i < 10000; i++ {
		seen[r.intn(10)]++
	}
	for v := int64(0); v < 10; v++ {
		if seen[v] < 700 {
			t.Fatalf("value %d seen only %d times", v, seen[v])
		}
	}
	if got := r.rangeInt(5, 5); got != 5 {
		t.Fatalf("rangeInt(5,5) = %d", got)
	}
}

func TestPerm(t *testing.T) {
	r := newRNG(7)
	p := r.perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if seen[v] {
			t.Fatal("duplicate in permutation")
		}
		seen[v] = true
	}
}
