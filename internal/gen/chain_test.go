package gen

import (
	"testing"

	"repro/internal/graph"
)

func TestChainShape(t *testing.T) {
	cfg := ChainConfig{
		CoreN: 8, Chains: 5, ChainLen: 20,
		MinWeight: -50, MaxWeight: 50,
		SelfLoops: 3, Seed: 42,
	}
	g, err := Chain(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantN := cfg.CoreN + cfg.Chains*cfg.ChainLen
	wantM := cfg.CoreN + cfg.CoreN/2 + cfg.Chains*(cfg.ChainLen+1) + cfg.SelfLoops
	if g.NumNodes() != wantN {
		t.Errorf("nodes = %d, want %d", g.NumNodes(), wantN)
	}
	if g.NumArcs() != wantM {
		t.Errorf("arcs = %d, want %d", g.NumArcs(), wantM)
	}
	if !graph.IsStronglyConnected(g) {
		t.Error("chain graph must be strongly connected")
	}
	loops := 0
	for _, a := range g.Arcs() {
		if a.From == a.To {
			loops++
			if int(a.From) >= cfg.CoreN {
				t.Errorf("self-loop on interior node %d", a.From)
			}
		}
		if a.Weight < cfg.MinWeight || a.Weight > cfg.MaxWeight {
			t.Errorf("weight %d outside [%d,%d]", a.Weight, cfg.MinWeight, cfg.MaxWeight)
		}
	}
	if loops != cfg.SelfLoops {
		t.Errorf("self-loops = %d, want %d", loops, cfg.SelfLoops)
	}
}

func TestChainInteriorDegrees(t *testing.T) {
	cfg := ChainConfig{CoreN: 4, Chains: 7, ChainLen: 13, MinWeight: 1, MaxWeight: 9, Seed: 7}
	g, err := Chain(cfg)
	if err != nil {
		t.Fatal(err)
	}
	indeg := make([]int, g.NumNodes())
	outdeg := make([]int, g.NumNodes())
	for _, a := range g.Arcs() {
		outdeg[a.From]++
		indeg[a.To]++
	}
	for v := cfg.CoreN; v < g.NumNodes(); v++ {
		if indeg[v] != 1 || outdeg[v] != 1 {
			t.Errorf("interior node %d has in=%d out=%d, want 1/1", v, indeg[v], outdeg[v])
		}
	}
}

func TestChainDeterministic(t *testing.T) {
	cfg := ChainConfig{CoreN: 6, Chains: 3, ChainLen: 10, MinWeight: -5, MaxWeight: 5, SelfLoops: 2, Seed: 99}
	g1, err := Chain(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := Chain(cfg)
	a1, a2 := g1.Arcs(), g2.Arcs()
	if len(a1) != len(a2) {
		t.Fatalf("arc counts differ: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("arc %d differs: %+v vs %+v", i, a1[i], a2[i])
		}
	}
}

func TestChainRejectsBadConfig(t *testing.T) {
	bad := []ChainConfig{
		{CoreN: 1, MinWeight: 0, MaxWeight: 1},
		{CoreN: 4, Chains: -1, MinWeight: 0, MaxWeight: 1},
		{CoreN: 4, MinWeight: 5, MaxWeight: 1},
	}
	for i, cfg := range bad {
		if _, err := Chain(cfg); err == nil {
			t.Errorf("config %d: expected error, got nil", i)
		}
	}
}

func TestChainZeroLengthChains(t *testing.T) {
	g, err := Chain(ChainConfig{CoreN: 5, Chains: 4, ChainLen: 0, MinWeight: 1, MaxWeight: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 5 {
		t.Errorf("nodes = %d, want 5", g.NumNodes())
	}
	if !graph.IsStronglyConnected(g) {
		t.Error("must stay strongly connected")
	}
}
