package gen

import (
	"testing"

	"repro/internal/graph"
)

// TestSourcesMatchBuilders pins the single-code-path guarantee: every
// streaming source materializes to exactly the graph the historical builder
// returns, and two scans of one source are identical (re-scannable).
func TestSourcesMatchBuilders(t *testing.T) {
	sprandCfg := SprandConfig{N: 50, M: 200, MinWeight: -100, MaxWeight: 100, Seed: 7}
	chainCfg := ChainConfig{CoreN: 8, Chains: 5, ChainLen: 12, MinWeight: -9, MaxWeight: 9, SelfLoops: 2, Seed: 3}

	sprandSrc, err := NewSprandSource(sprandCfg)
	if err != nil {
		t.Fatal(err)
	}
	chainSrc, err := NewChainSource(chainCfg)
	if err != nil {
		t.Fatal(err)
	}
	torusSrc, err := NewTorusSource(6, 9, -50, 50, 11)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		src   graph.ArcSource
		build func() (*graph.Graph, error)
	}{
		{"sprand", sprandSrc, func() (*graph.Graph, error) { return Sprand(sprandCfg) }},
		{"chain", chainSrc, func() (*graph.Graph, error) { return Chain(chainCfg) }},
		{"torus", torusSrc, func() (*graph.Graph, error) { return Torus(6, 9, -50, 50, 11), nil }},
	}
	for _, tc := range cases {
		want, err := tc.build()
		if err != nil {
			t.Fatalf("%s: build: %v", tc.name, err)
		}
		got, err := graph.Materialize(tc.src)
		if err != nil {
			t.Fatalf("%s: materialize: %v", tc.name, err)
		}
		if got.Fingerprint() != want.Fingerprint() {
			t.Errorf("%s: materialized source differs from builder output", tc.name)
		}
		again, err := graph.Materialize(tc.src)
		if err != nil {
			t.Fatalf("%s: second scan: %v", tc.name, err)
		}
		if again.Fingerprint() != want.Fingerprint() {
			t.Errorf("%s: second scan differs (source not re-scannable)", tc.name)
		}
		if tc.src.NumNodes() != want.NumNodes() || tc.src.NumArcs() != want.NumArcs() {
			t.Errorf("%s: source dims %dx%d, graph %dx%d",
				tc.name, tc.src.NumNodes(), tc.src.NumArcs(), want.NumNodes(), want.NumArcs())
		}
	}
}

func TestSourceValidation(t *testing.T) {
	if _, err := NewSprandSource(SprandConfig{N: 5, M: 3}); err == nil {
		t.Error("m < n accepted")
	}
	if _, err := NewChainSource(ChainConfig{CoreN: 1}); err == nil {
		t.Error("CoreN 1 accepted")
	}
	if _, err := NewTorusSource(0, 5, 0, 1, 0); err == nil {
		t.Error("zero rows accepted")
	}
	if _, err := NewTorusSource(2, 2, 5, 1, 0); err == nil {
		t.Error("empty weight interval accepted")
	}
}
