package gen

import (
	"repro/internal/graph"
)

// ChainConfig parameterizes the chain-heavy circuit family mirroring the
// DAC'99 study's Table 4 workloads: circuit timing graphs are dominated by
// long combinational chains (in-degree = out-degree = 1 paths) hanging
// between a small strongly cyclic core of registers. The family is the
// stress test for the kernelization pipeline — almost every node is a chain
// interior that contraction removes.
type ChainConfig struct {
	// CoreN is the number of core nodes, joined in a ring (guaranteeing
	// strong connectivity) plus CoreN/2 random chord arcs.
	CoreN int
	// Chains is the number of long chains; each runs from a random core node
	// through ChainLen fresh interior nodes back to a random core node.
	Chains int
	// ChainLen is the number of interior nodes per chain (each contributes
	// ChainLen+1 arcs). Zero-length chains degenerate to single core arcs.
	ChainLen int
	// MinWeight and MaxWeight bound the uniform arc weights.
	MinWeight, MaxWeight int64
	// SelfLoops adds this many self-loops on random core nodes (weights from
	// the same interval) — exercising the self-loop extraction reduction.
	SelfLoops int
	// Seed drives the deterministic generator.
	Seed uint64
}

// Chain builds a chain-heavy strongly connected graph per cfg. The total
// node count is CoreN + Chains·ChainLen and the arc count is
// CoreN + CoreN/2 + Chains·(ChainLen+1) + SelfLoops.
func Chain(cfg ChainConfig) (*graph.Graph, error) {
	src, err := NewChainSource(cfg)
	if err != nil {
		return nil, err
	}
	return graph.Materialize(src)
}
