package gen

import (
	"fmt"

	"repro/internal/graph"
)

// ChainConfig parameterizes the chain-heavy circuit family mirroring the
// DAC'99 study's Table 4 workloads: circuit timing graphs are dominated by
// long combinational chains (in-degree = out-degree = 1 paths) hanging
// between a small strongly cyclic core of registers. The family is the
// stress test for the kernelization pipeline — almost every node is a chain
// interior that contraction removes.
type ChainConfig struct {
	// CoreN is the number of core nodes, joined in a ring (guaranteeing
	// strong connectivity) plus CoreN/2 random chord arcs.
	CoreN int
	// Chains is the number of long chains; each runs from a random core node
	// through ChainLen fresh interior nodes back to a random core node.
	Chains int
	// ChainLen is the number of interior nodes per chain (each contributes
	// ChainLen+1 arcs). Zero-length chains degenerate to single core arcs.
	ChainLen int
	// MinWeight and MaxWeight bound the uniform arc weights.
	MinWeight, MaxWeight int64
	// SelfLoops adds this many self-loops on random core nodes (weights from
	// the same interval) — exercising the self-loop extraction reduction.
	SelfLoops int
	// Seed drives the deterministic generator.
	Seed uint64
}

// Chain builds a chain-heavy strongly connected graph per cfg. The total
// node count is CoreN + Chains·ChainLen and the arc count is
// CoreN + CoreN/2 + Chains·(ChainLen+1) + SelfLoops.
func Chain(cfg ChainConfig) (*graph.Graph, error) {
	if cfg.CoreN < 2 {
		return nil, fmt.Errorf("gen: Chain needs CoreN >= 2, got %d", cfg.CoreN)
	}
	if cfg.Chains < 0 || cfg.ChainLen < 0 || cfg.SelfLoops < 0 {
		return nil, fmt.Errorf("gen: Chain counts must be non-negative")
	}
	if cfg.MaxWeight < cfg.MinWeight {
		return nil, fmt.Errorf("gen: empty weight interval [%d,%d]", cfg.MinWeight, cfg.MaxWeight)
	}
	r := newRNG(cfg.Seed ^ 0x9e3779b97f4a7c15)
	n := cfg.CoreN + cfg.Chains*cfg.ChainLen
	m := cfg.CoreN + cfg.CoreN/2 + cfg.Chains*(cfg.ChainLen+1) + cfg.SelfLoops
	b := graph.NewBuilder(n, m)
	b.AddNodes(n)
	w := func() int64 { return r.rangeInt(cfg.MinWeight, cfg.MaxWeight) }

	// Core ring plus chords.
	for i := 0; i < cfg.CoreN; i++ {
		b.AddArc(graph.NodeID(i), graph.NodeID((i+1)%cfg.CoreN), w())
	}
	for i := 0; i < cfg.CoreN/2; i++ {
		u := graph.NodeID(r.intn(int64(cfg.CoreN)))
		v := graph.NodeID(r.intn(int64(cfg.CoreN)))
		for v == u {
			v = graph.NodeID(r.intn(int64(cfg.CoreN)))
		}
		b.AddArc(u, v, w())
	}

	// Chains: core -> interior -> ... -> interior -> core. Every interior
	// node has in-degree = out-degree = 1, so chain contraction removes all
	// of them.
	next := graph.NodeID(cfg.CoreN)
	for c := 0; c < cfg.Chains; c++ {
		u := graph.NodeID(r.intn(int64(cfg.CoreN)))
		v := graph.NodeID(r.intn(int64(cfg.CoreN)))
		prev := u
		for i := 0; i < cfg.ChainLen; i++ {
			b.AddArc(prev, next, w())
			prev = next
			next++
		}
		b.AddArc(prev, v, w())
	}

	// Self-loops on core nodes.
	for i := 0; i < cfg.SelfLoops; i++ {
		v := graph.NodeID(r.intn(int64(cfg.CoreN)))
		b.AddArc(v, v, w())
	}
	return b.Build(), nil
}
