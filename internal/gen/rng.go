// Package gen generates the workloads of the DAC'99 study: SPRAND random
// graphs (the generator of Cherkassky, Goldberg & Radzik used by the paper)
// and auxiliary structured families (cycles, complete graphs, grids) used by
// tests and ablation benches. All generators are driven by an explicit seed
// and are fully deterministic, so every table in EXPERIMENTS.md regenerates
// bit-identical workloads.
package gen

// rng is a small deterministic generator (splitmix64 core) so generated
// workloads do not depend on the Go version's math/rand stream.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng {
	return &rng{state: seed + 0x9e3779b97f4a7c15}
}

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform value in [0, n). n must be positive.
func (r *rng) intn(n int64) int64 {
	if n <= 0 {
		panic("gen: intn on non-positive bound")
	}
	// Rejection sampling to avoid modulo bias.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.next()
		if v >= threshold {
			return int64(v % bound)
		}
	}
}

// rangeInt returns a uniform value in [lo, hi] inclusive.
func (r *rng) rangeInt(lo, hi int64) int64 {
	if hi < lo {
		panic("gen: empty range")
	}
	return lo + r.intn(hi-lo+1)
}

// perm returns a random permutation of 0..n-1 (Fisher–Yates).
func (r *rng) perm(n int) []int32 {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	for i := n - 1; i > 0; i-- {
		j := r.intn(int64(i + 1))
		p[i], p[j] = p[j], p[i]
	}
	return p
}
