package gen

import (
	"fmt"

	"repro/internal/graph"
)

// SprandConfig parameterizes the SPRAND family exactly as the paper used it:
// n nodes, m arcs, weights uniform in [MinWeight, MaxWeight] (the paper kept
// SPRAND's default interval [1, 10000]), 10 seeded instances per (n, m).
type SprandConfig struct {
	N         int
	M         int
	MinWeight int64
	MaxWeight int64
	Seed      uint64
}

// DefaultWeights applies SPRAND's default weight interval [1, 10000].
func (c SprandConfig) DefaultWeights() SprandConfig {
	c.MinWeight, c.MaxWeight = 1, 10000
	return c
}

// Sprand builds a SPRAND graph: a Hamiltonian cycle over the n nodes (which
// guarantees strong connectivity) plus m−n arcs whose endpoints are chosen
// uniformly at random. Self-loops are avoided for the random arcs (matching
// SPRAND); parallel arcs may occur, as in the original generator. All arc
// weights, including the cycle's, are uniform in the configured interval.
func Sprand(cfg SprandConfig) (*graph.Graph, error) {
	src, err := NewSprandSource(cfg)
	if err != nil {
		return nil, err
	}
	return graph.Materialize(src)
}

// Cycle builds the n-cycle with the given uniform arc weight. The minimum
// (and only) cycle mean is exactly weight; used as a golden test case.
func Cycle(n int, weight int64) *graph.Graph {
	b := graph.NewBuilder(n, n)
	b.AddNodes(n)
	for i := 0; i < n; i++ {
		b.AddArc(graph.NodeID(i), graph.NodeID((i+1)%n), weight)
	}
	return b.Build()
}

// Complete builds the complete digraph on n nodes (no self-loops) with
// weights uniform in [minW, maxW]. Dense counterpoint to SPRAND sparsity.
func Complete(n int, minW, maxW int64, seed uint64) *graph.Graph {
	r := newRNG(seed)
	b := graph.NewBuilder(n, n*(n-1))
	b.AddNodes(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			b.AddArc(graph.NodeID(u), graph.NodeID(v), r.rangeInt(minW, maxW))
		}
	}
	return b.Build()
}

// Torus builds a rows×cols directed torus (arcs right and down, wrapping)
// with random weights; strongly connected, sparse and highly structured —
// the opposite texture of SPRAND for robustness tests.
func Torus(rows, cols int, minW, maxW int64, seed uint64) *graph.Graph {
	src, err := NewTorusSource(rows, cols, minW, maxW, seed)
	if err != nil {
		panic(err) // historical signature has no error; inputs are literals in practice
	}
	g, err := graph.Materialize(src)
	if err != nil {
		panic(err)
	}
	return g
}

// MultiSCC builds a graph with k strongly connected blocks (each a SPRAND
// graph) joined by forward arcs only, so the blocks are exactly the SCCs.
// Exercises the SCC-decomposition driver. The returned graph's minimum
// cycle mean is the minimum over the blocks'.
func MultiSCC(k, nPerBlock, mPerBlock int, seed uint64) (*graph.Graph, error) {
	if k < 1 {
		return nil, fmt.Errorf("gen: MultiSCC needs k >= 1")
	}
	r := newRNG(seed ^ 0xabcdef)
	b := graph.NewBuilder(k*nPerBlock, k*mPerBlock+k)
	b.AddNodes(k * nPerBlock)
	for blk := 0; blk < k; blk++ {
		sub, err := Sprand(SprandConfig{N: nPerBlock, M: mPerBlock, MinWeight: 1, MaxWeight: 10000, Seed: seed + uint64(blk)*1315423911})
		if err != nil {
			return nil, err
		}
		base := graph.NodeID(blk * nPerBlock)
		for _, a := range sub.Arcs() {
			b.AddArc(base+a.From, base+a.To, a.Weight)
		}
		if blk > 0 {
			// One forward arc from the previous block; never backward, so
			// blocks stay separate SCCs.
			u := graph.NodeID((blk-1)*nPerBlock) + graph.NodeID(r.intn(int64(nPerBlock)))
			v := base + graph.NodeID(r.intn(int64(nPerBlock)))
			b.AddArc(u, v, r.rangeInt(1, 10000))
		}
	}
	return b.Build(), nil
}

// Table2Sizes returns the exact (n, m) grid of the paper's Table 2:
// n ∈ {512, 1024, 2048, 4096, 8192} and m ∈ {n, 1.5n, 2n, 2.5n, 3n}.
func Table2Sizes() [][2]int {
	var out [][2]int
	for _, n := range []int{512, 1024, 2048, 4096, 8192} {
		for _, num := range []int{2, 3, 4, 5, 6} { // m = n*num/2
			out = append(out, [2]int{n, n * num / 2})
		}
	}
	return out
}

// PlantedMinMean builds a graph whose exact minimum cycle mean is known by
// construction, enabling large-scale correctness tests without the
// exponential enumeration oracle. The bulk is a SPRAND graph with weights
// in [heavyMin, 2·heavyMin]; a planted cycle over `cycleLen` randomly
// chosen nodes carries weight `mu` per arc with mu < heavyMin. Every cycle
// that uses any heavy arc has mean strictly above mu (each heavy arc
// contributes at least heavyMin > mu), so the planted cycle is the unique
// optimum and λ* = mu exactly.
func PlantedMinMean(n, m, cycleLen int, mu, heavyMin int64, seed uint64) (*graph.Graph, int64, error) {
	if cycleLen < 2 || cycleLen > n {
		return nil, 0, fmt.Errorf("gen: planted cycle length %d out of range [2,%d]", cycleLen, n)
	}
	if mu >= heavyMin {
		return nil, 0, fmt.Errorf("gen: planted mean %d must be below the heavy minimum %d", mu, heavyMin)
	}
	base, err := Sprand(SprandConfig{N: n, M: m, MinWeight: heavyMin, MaxWeight: 2 * heavyMin, Seed: seed})
	if err != nil {
		return nil, 0, err
	}
	r := newRNG(seed ^ 0xfeedface)
	perm := r.perm(n)
	arcs := append([]graph.Arc(nil), base.Arcs()...)
	for i := 0; i < cycleLen; i++ {
		arcs = append(arcs, graph.Arc{
			From:    graph.NodeID(perm[i]),
			To:      graph.NodeID(perm[(i+1)%cycleLen]),
			Weight:  mu,
			Transit: 1,
		})
	}
	return graph.FromArcs(n, arcs), mu, nil
}
