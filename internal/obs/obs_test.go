package obs

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/counter"
)

// TestNilTraceZeroAllocs pins the disabled-tracer fast path at exactly zero
// allocations: emitting every event kind through a nil *Trace must not touch
// the heap. This is the contract that lets the solve drivers leave their
// emission calls unconditionally in place.
func TestNilTraceZeroAllocs(t *testing.T) {
	var tr *Trace
	sizes := []int{3, 5}
	avg := testing.AllocsPerRun(200, func() {
		tr.SCC(SCCEvent{Components: 2, Nodes: 8, Arcs: 16, Sizes: sizes})
		tr.Kernel(KernelEvent{Component: 0, OrigNodes: 8, OrigArcs: 16})
		tr.SolverStart(SolverStartEvent{Algorithm: "howard", Component: 0, Nodes: 3, Arcs: 6})
		tr.SolverDone(SolverDoneEvent{Algorithm: "howard", Component: 0, Duration: time.Millisecond})
		tr.Race(RaceEvent{Winner: "howard"})
		tr.Cache(CacheEvent{Op: CacheHit, Entries: 1})
		tr.Certify(CertifyEvent{OK: true, MaxDen: 8})
	})
	if avg != 0 {
		t.Errorf("nil tracer allocates %.1f objects per emission round, pinned at 0", avg)
	}
}

// A Trace with nil hooks must be as cheap as a nil Trace.
func TestEmptyTraceZeroAllocs(t *testing.T) {
	tr := &Trace{}
	avg := testing.AllocsPerRun(200, func() {
		tr.SCC(SCCEvent{})
		tr.SolverDone(SolverDoneEvent{})
		tr.Certify(CertifyEvent{})
	})
	if avg != 0 {
		t.Errorf("hook-less tracer allocates %.1f objects per round, pinned at 0", avg)
	}
}

func TestEnabled(t *testing.T) {
	var nilTrace *Trace
	if nilTrace.Enabled() {
		t.Error("nil trace reports Enabled")
	}
	if !(&Trace{}).Enabled() {
		t.Error("non-nil trace reports disabled")
	}
}

func TestMultiFansOut(t *testing.T) {
	var got []string
	mk := func(tag string) *Trace {
		return &Trace{
			OnSCC:        func(SCCEvent) { got = append(got, tag+":scc") },
			OnSolverDone: func(SolverDoneEvent) { got = append(got, tag+":done") },
		}
	}
	m := Multi(mk("a"), nil, mk("b"))
	m.SCC(SCCEvent{})
	m.SolverDone(SolverDoneEvent{})
	want := []string{"a:scc", "b:scc", "a:done", "b:done"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestMultiDegenerate(t *testing.T) {
	if Multi() != nil {
		t.Error("Multi() != nil")
	}
	if Multi(nil, nil) != nil {
		t.Error("Multi(nil, nil) != nil")
	}
	single := &Trace{}
	if Multi(nil, single) != single {
		t.Error("Multi with one live member should return it unchanged")
	}
}

func TestLogTracerRendersEvents(t *testing.T) {
	var sb strings.Builder
	mu := &syncWriter{w: &sb}
	tr := NewLogTracer(mu)
	tr.SCC(SCCEvent{Components: 2, Nodes: 7, Arcs: 12, Sizes: []int{4, 3}})
	tr.Kernel(KernelEvent{Component: 1, OrigNodes: 4, OrigArcs: 6, Nodes: 2, Arcs: 3, Contracted: true})
	tr.SolverStart(SolverStartEvent{Algorithm: "howard", Component: 1, Nodes: 2, Arcs: 3})
	tr.SolverDone(SolverDoneEvent{Algorithm: "howard", Component: 1, Duration: 42 * time.Microsecond,
		Value: 1.5, Counts: counter.Counts{Iterations: 3}})
	tr.SolverDone(SolverDoneEvent{Algorithm: "karp", Component: -1, Err: errors.New("boom")})
	tr.Race(RaceEvent{Winner: "howard", Duration: time.Millisecond, Racers: []RacerOutcome{
		{Algorithm: "howard", Won: true, Elapsed: time.Millisecond},
		{Algorithm: "karp", Err: errors.New("canceled"), CancelLatency: 10 * time.Microsecond},
	}})
	tr.Cache(CacheEvent{Op: CacheMiss, Entries: 1})
	tr.Certify(CertifyEvent{OK: true, Value: 1.5, MaxDen: 7, Snapped: true})
	tr.Certify(CertifyEvent{OK: false, Err: errors.New("bad proof")})

	out := sb.String()
	for _, want := range []string{
		"scc: 2 cyclic components (n=7 m=12, sizes 4,3)",
		"kernel: comp 1 n=4->2 m=6->3 contracted=true",
		"solver howard: comp 1 start (n=2 m=3)",
		"solver howard: comp 1 done in 42µs, value=1.5, iters=3",
		"solver karp: comp - FAILED",
		"race: winner=howard",
		"howard won in 1ms",
		"karp lost (cancel latency 10µs)",
		"cache: miss (1 entries)",
		"certify: pass",
		"snapped from float",
		"certify: FAIL",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("log output missing %q:\n%s", want, out)
		}
	}
}

// syncWriter makes a strings.Builder safe for the tracer's concurrent use
// contract (not exercised concurrently here, but keeps vet happy elsewhere).
type syncWriter struct {
	mu sync.Mutex
	w  *strings.Builder
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

func TestCacheOpString(t *testing.T) {
	cases := map[CacheOp]string{CacheHit: "hit", CacheMiss: "miss", CacheEvict: "evict", CacheOp(99): "unknown"}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("CacheOp(%d).String() = %q, want %q", op, got, want)
		}
	}
}
