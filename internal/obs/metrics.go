package obs

import (
	"encoding/json"
	"expvar"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// histBuckets is the number of power-of-two duration buckets: bucket i counts
// observations with d < 1µs·2^i, the last bucket is unbounded. 1µs·2^29 ≈ 9
// minutes, far beyond any per-component solve this repo times.
const histBuckets = 30

// Histogram is a lock-free duration histogram with power-of-two buckets
// anchored at 1µs. The zero value is ready to use; all methods are safe for
// concurrent use.
type Histogram struct {
	count   atomic.Int64
	sumNs   atomic.Int64
	maxNs   atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sumNs.Add(ns)
	for {
		cur := h.maxNs.Load()
		if ns <= cur || h.maxNs.CompareAndSwap(cur, ns) {
			break
		}
	}
	h.buckets[bucketFor(ns)].Add(1)
}

// bucketFor maps a nanosecond duration onto its bucket index.
func bucketFor(ns int64) int {
	us := ns / 1000
	for i := 0; i < histBuckets-1; i++ {
		if us < 1<<i {
			return i
		}
	}
	return histBuckets - 1
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNs.Load()) }

// Max returns the largest observed duration.
func (h *Histogram) Max() time.Duration { return time.Duration(h.maxNs.Load()) }

// Mean returns the average observed duration (0 when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumNs.Load() / n)
}

// Snapshot renders the histogram as a flat JSON-marshalable map (count,
// sum/max/mean in milliseconds, and the non-empty buckets), the same shape
// Metrics.Snapshot embeds. Exported so sibling collectors (e.g. the serve
// layer's request metrics) can publish histograms in a consistent format.
func (h *Histogram) Snapshot() map[string]any { return h.snapshot() }

// snapshot renders the histogram as a flat JSON-friendly map. Bucket keys
// name their upper bound ("le_128us"); empty buckets are omitted.
func (h *Histogram) snapshot() map[string]any {
	return map[string]any{
		"count":   h.count.Load(),
		"sum_ms":  float64(h.sumNs.Load()) / 1e6,
		"max_ms":  float64(h.maxNs.Load()) / 1e6,
		"mean_ms": float64(h.Mean()) / 1e6,
		"buckets": h.bucketMap(),
	}
}

func (h *Histogram) bucketMap() map[string]int64 {
	out := map[string]int64{}
	for i := 0; i < histBuckets; i++ {
		v := h.buckets[i].Load()
		if v == 0 {
			continue
		}
		if i == histBuckets-1 {
			out["inf"] = v
		} else {
			out[bucketName(i)] = v
		}
	}
	return out
}

func bucketName(i int) string {
	us := int64(1) << i
	switch {
	case us >= 1_000_000:
		return "le_" + itoa(us/1_000_000) + "s"
	case us >= 1000:
		return "le_" + itoa(us/1000) + "ms"
	default:
		return "le_" + itoa(us) + "us"
	}
}

// itoa avoids strconv just to keep this file's imports tiny.
func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// algMetrics aggregates one algorithm's solver runs.
type algMetrics struct {
	solves   atomic.Int64
	errors   atomic.Int64
	duration Histogram
}

// Metrics aggregates Trace events into monotonic counters and duration
// histograms. All updates are atomic, so one Metrics can absorb events from
// the parallel SCC driver and portfolio racers concurrently. Publish exposes
// a snapshot through expvar (and thence /debug/vars when an HTTP server with
// the expvar handler is running — see cmd/mcmbench -serve).
type Metrics struct {
	// Driver-level counters.
	solves      atomic.Int64 // driver solves observed (SCC events)
	components  atomic.Int64 // cyclic components handed to solvers
	solverRuns  atomic.Int64 // individual solver runs finished
	solverErrs  atomic.Int64 // solver runs that returned an error
	kernelRuns  atomic.Int64 // components kernelized
	kernelDone  atomic.Int64 // components fully solved by reductions
	races       atomic.Int64 // portfolio races completed
	cacheHits   atomic.Int64 // Session warm starts
	cacheMisses atomic.Int64 // Session cold starts
	cacheEvicts atomic.Int64 // Session wholesale cache clears

	// Serve-layer result cache (internal/servecache); distinct from the
	// Session policy cache above.
	serveCacheHits   atomic.Int64 // stored results served without a solve
	serveCacheMisses atomic.Int64 // lookups that fell through to a solve
	serveCacheEvicts atomic.Int64 // LRU evictions
	serveCacheMerges atomic.Int64 // singleflight duplicate-request merges
	certifyOK        atomic.Int64 // certification proofs passed
	certifyFail      atomic.Int64 // certification proofs failed

	// Incremental dynamic-graph engine (core.DynSession).
	deltas           atomic.Int64 // deltas applied
	deltaInvalidated atomic.Int64 // cached component results marked dirty
	deltaMerges      atomic.Int64 // component merges from arc insertions
	deltaSplits      atomic.Int64 // component splits from arc deletions

	// Approximation tier (internal/approx via the "approx" algorithm).
	approxSolves    atomic.Int64 // engine runs observed
	approxSharpened atomic.Int64 // runs followed by an exact Lawler pass
	approxErrs      atomic.Int64 // engine runs that returned an error
	approxPasses    atomic.Int64 // total arc-stream sweeps across all runs

	// Shared parametric negative-cycle oracle (internal/ratio).
	probes         atomic.Int64 // feasibility probes run
	probesNegative atomic.Int64 // probes that found a negative cycle
	probePasses    atomic.Int64 // total Bellman–Ford passes across probes

	solveDuration   Histogram // per-solver-run wall clock
	certifyDuration Histogram // per-proof wall clock
	raceDuration    Histogram // per-race wall clock

	mu       sync.Mutex
	byAlg    map[string]*algMetrics // per-algorithm solver runs
	raceWins map[string]int64       // portfolio wins by algorithm
}

// NewMetrics returns an empty collector.
func NewMetrics() *Metrics {
	return &Metrics{
		byAlg:    make(map[string]*algMetrics),
		raceWins: make(map[string]int64),
	}
}

// alg returns (creating if needed) the per-algorithm bucket.
func (m *Metrics) alg(name string) *algMetrics {
	m.mu.Lock()
	a := m.byAlg[name]
	if a == nil {
		a = &algMetrics{}
		m.byAlg[name] = a
	}
	m.mu.Unlock()
	return a
}

// Tracer returns a Trace that feeds this collector. The same Metrics may back
// several tracers (e.g. combined with a LogTracer through Multi).
func (m *Metrics) Tracer() *Trace {
	return &Trace{
		OnSCC: func(ev SCCEvent) {
			m.solves.Add(1)
			m.components.Add(int64(ev.Components))
		},
		OnKernel: func(ev KernelEvent) {
			m.kernelRuns.Add(1)
			if ev.Solved {
				m.kernelDone.Add(1)
			}
		},
		OnSolverDone: func(ev SolverDoneEvent) {
			m.solverRuns.Add(1)
			a := m.alg(ev.Algorithm)
			a.solves.Add(1)
			a.duration.Observe(ev.Duration)
			m.solveDuration.Observe(ev.Duration)
			if ev.Err != nil {
				m.solverErrs.Add(1)
				a.errors.Add(1)
			}
		},
		OnRace: func(ev RaceEvent) {
			m.races.Add(1)
			m.raceDuration.Observe(ev.Duration)
			if ev.Winner != "" {
				m.mu.Lock()
				m.raceWins[ev.Winner]++
				m.mu.Unlock()
			}
		},
		OnCache: func(ev CacheEvent) {
			switch ev.Op {
			case CacheHit:
				m.cacheHits.Add(1)
			case CacheMiss:
				m.cacheMisses.Add(1)
			case CacheEvict:
				m.cacheEvicts.Add(1)
			}
		},
		OnServeCache: func(ev ServeCacheEvent) {
			switch ev.Op {
			case CacheHit:
				m.serveCacheHits.Add(1)
			case CacheMiss:
				m.serveCacheMisses.Add(1)
			case CacheEvict:
				m.serveCacheEvicts.Add(1)
			case CacheMerge:
				m.serveCacheMerges.Add(1)
			}
		},
		OnApprox: func(ev ApproxEvent) {
			m.approxSolves.Add(1)
			m.approxPasses.Add(int64(ev.Passes))
			if ev.Sharpened {
				m.approxSharpened.Add(1)
			}
			if ev.Err != nil {
				m.approxErrs.Add(1)
			}
		},
		OnProbe: func(ev ProbeEvent) {
			m.probes.Add(1)
			m.probePasses.Add(int64(ev.Passes))
			if ev.Negative {
				m.probesNegative.Add(1)
			}
		},
		OnDelta: func(ev DeltaEvent) {
			m.deltas.Add(1)
			m.deltaInvalidated.Add(int64(ev.Invalidated))
			if ev.Merged > 1 {
				m.deltaMerges.Add(1)
			}
			if ev.Split > 1 {
				m.deltaSplits.Add(1)
			}
		},
		OnCertify: func(ev CertifyEvent) {
			m.certifyDuration.Observe(ev.Duration)
			if ev.OK {
				m.certifyOK.Add(1)
			} else {
				m.certifyFail.Add(1)
			}
		},
	}
}

// SolverRuns returns the number of individual solver runs observed so far
// (the counter the CI serve-smoke asserts is non-zero).
func (m *Metrics) SolverRuns() int64 { return m.solverRuns.Load() }

// Snapshot renders every counter and histogram as a JSON-marshalable tree.
func (m *Metrics) Snapshot() map[string]any {
	out := map[string]any{
		"solves":                   m.solves.Load(),
		"components":               m.components.Load(),
		"solver_runs":              m.solverRuns.Load(),
		"solver_errors":            m.solverErrs.Load(),
		"kernelized":               m.kernelRuns.Load(),
		"kernel_solved":            m.kernelDone.Load(),
		"races":                    m.races.Load(),
		"cache_hits":               m.cacheHits.Load(),
		"cache_misses":             m.cacheMisses.Load(),
		"cache_evictions":          m.cacheEvicts.Load(),
		"serve_cache_hits":         m.serveCacheHits.Load(),
		"serve_cache_misses":       m.serveCacheMisses.Load(),
		"serve_cache_evictions":    m.serveCacheEvicts.Load(),
		"serve_cache_singleflight": m.serveCacheMerges.Load(),
		"certify_pass":             m.certifyOK.Load(),
		"certify_fail":             m.certifyFail.Load(),
		"deltas":                   m.deltas.Load(),
		"delta_invalidations":      m.deltaInvalidated.Load(),
		"delta_merges":             m.deltaMerges.Load(),
		"delta_splits":             m.deltaSplits.Load(),
		"approx_solves":            m.approxSolves.Load(),
		"approx_sharpened":         m.approxSharpened.Load(),
		"approx_errors":            m.approxErrs.Load(),
		"approx_passes":            m.approxPasses.Load(),
		"probes":                   m.probes.Load(),
		"probes_negative":          m.probesNegative.Load(),
		"probe_passes":             m.probePasses.Load(),
		"solve_duration":           m.solveDuration.snapshot(),
		"certify_duration":         m.certifyDuration.snapshot(),
		"race_duration":            m.raceDuration.snapshot(),
	}
	algs := map[string]any{}
	wins := map[string]int64{}
	m.mu.Lock()
	names := make([]string, 0, len(m.byAlg))
	for name := range m.byAlg {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a := m.byAlg[name]
		algs[name] = map[string]any{
			"solves":   a.solves.Load(),
			"errors":   a.errors.Load(),
			"duration": a.duration.snapshot(),
		}
	}
	for name, n := range m.raceWins {
		wins[name] = n
	}
	m.mu.Unlock()
	out["algorithms"] = algs
	if len(wins) > 0 {
		out["race_wins"] = wins
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON.
func (m *Metrics) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(m.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// Publish registers the collector under name in the process-wide expvar
// registry, making it visible at /debug/vars on any server that mounts
// expvar.Handler (cmd/mcmbench -serve does). expvar forbids duplicate names,
// so Publish must be called at most once per name per process.
func (m *Metrics) Publish(name string) {
	expvar.Publish(name, expvar.Func(func() any { return m.Snapshot() }))
}
