// Package obs is the solve-path observability layer: a zero-overhead-when-
// disabled tracing hook threaded through every driver in internal/core and
// internal/ratio, plus an aggregating metrics collector (metrics.go) and a
// human-readable event logger (log.go) built on top of it.
//
// The design follows net/http/httptrace: Trace is a struct of nil-able hook
// functions, one per event kind, and the drivers emit through nil-tolerant
// methods (t.SolverDone(ev) is safe on a nil *Trace). With a nil tracer the
// entire layer costs one pointer comparison per emission site and zero
// allocations — pinned by TestNilTraceZeroAllocs — so production solves pay
// nothing unless observability is switched on. With a tracer installed, the
// drivers additionally gather the event payloads (timestamps, component
// sizes, operation counts), so enabling tracing is where the cost lives.
//
// Hooks must be safe for concurrent use: the parallel SCC driver and the
// portfolio racer emit solver events from multiple goroutines. Metrics uses
// atomics throughout; LogTracer serializes writes with a mutex.
package obs

import (
	"time"

	"repro/internal/counter"
)

// SCCEvent reports a completed strongly-connected-component decomposition at
// the start of a driver solve (core.MinimumCycleMean, ratio.MinimumCycleRatio,
// Session.Solve).
type SCCEvent struct {
	// Components is the number of cyclic components that will be solved.
	Components int
	// Nodes and Arcs total the cyclic components' sizes (acyclic remainder
	// excluded — it cannot carry a cycle and is never handed to a solver).
	Nodes, Arcs int
	// Sizes holds the node count of each cyclic component, in decomposition
	// order. The slice is only valid during the hook call; copy to retain.
	Sizes []int
}

// KernelEvent reports one component's kernelization outcome (the
// internal/prep reduction pipeline), emitted before the component is solved.
type KernelEvent struct {
	// Component is the component's index in decomposition order.
	Component int
	// OrigNodes/OrigArcs and Nodes/Arcs are the component's size before and
	// after reduction.
	OrigNodes, OrigArcs int
	Nodes, Arcs         int
	// Contracted reports that chain contraction replaced some arcs.
	Contracted bool
	// Solved reports that the reductions solved the component outright (no
	// solver run needed).
	Solved bool
	// HasCandidate reports that a closed-form candidate cycle was found.
	HasCandidate bool
	// HasBounds reports that per-kernel λ*/ρ* bounds were derived.
	HasBounds bool
	// Unsupported reports that the input fell outside the exact reductions
	// (Kernel.Err != nil) and the raw component will be solved instead.
	Unsupported bool
}

// SolverStartEvent reports one solver run starting on one (component) graph.
type SolverStartEvent struct {
	// Algorithm is the solver's registered name ("howard", "karp", ...; the
	// contracted-kernel closed-form solver reports "kernel").
	Algorithm string
	// Component is the component index in decomposition order, or -1 when
	// the solver was invoked directly rather than through a driver.
	Component int
	// Nodes and Arcs are the size of the graph actually handed to the solver
	// (the kernel's size when kernelization ran).
	Nodes, Arcs int
	// WarmStart reports that the run was warm-started from a Session's
	// cached policy.
	WarmStart bool
}

// SolverDoneEvent reports one solver run finishing.
type SolverDoneEvent struct {
	// Algorithm, Component, Nodes, Arcs mirror the SolverStartEvent.
	Algorithm   string
	Component   int
	Nodes, Arcs int
	// Duration is the run's wall-clock time.
	Duration time.Duration
	// Counts holds the run's representative operation counts.
	Counts counter.Counts
	// Value is the component's λ*/ρ* as a float64 (the exact rational stays
	// on the driver's Result); meaningless when Err != nil.
	Value float64
	// Err is the run's error, nil on success.
	Err error
}

// RacerOutcome is one roster member's result within a portfolio race.
type RacerOutcome struct {
	// Algorithm is the racer's name.
	Algorithm string
	// Elapsed is the racer's wall-clock time from race start to its return.
	Elapsed time.Duration
	// CancelLatency is how long after the race was decided this racer took
	// to unwind (zero for the winner and for racers that returned before the
	// decision) — the cooperative-cancellation lag, one checkpoint interval.
	CancelLatency time.Duration
	// Won marks the racer whose result the portfolio returned.
	Won bool
	// Err is the racer's error; canceled losers report core.ErrCanceled.
	Err error
}

// RaceEvent reports a completed portfolio race.
type RaceEvent struct {
	// Winner is the winning algorithm's name, or "" when every racer failed.
	Winner string
	// Duration is the whole race's wall-clock time (first start to last join).
	Duration time.Duration
	// Racers holds one outcome per roster member, in roster order. The slice
	// is only valid during the hook call; copy to retain.
	Racers []RacerOutcome
}

// CacheOp enumerates Session policy-cache events.
type CacheOp int

const (
	// CacheHit: a component solve warm-started from a cached policy.
	CacheHit CacheOp = iota
	// CacheMiss: a component solve started cold.
	CacheMiss
	// CacheEvict: the cache was cleared wholesale (capacity bound).
	CacheEvict
	// CacheMerge: a request was deduplicated onto another in-flight solve of
	// the same key (singleflight) instead of solving itself. Emitted only by
	// the serve-layer result cache.
	CacheMerge
)

// String returns "hit", "miss", "evict", or "merge".
func (op CacheOp) String() string {
	switch op {
	case CacheHit:
		return "hit"
	case CacheMiss:
		return "miss"
	case CacheEvict:
		return "evict"
	case CacheMerge:
		return "merge"
	}
	return "unknown"
}

// CacheEvent reports one Session policy-cache operation.
type CacheEvent struct {
	Op CacheOp
	// Entries is the number of cached policies after the operation.
	Entries int
}

// ServeCacheEvent reports one operation of the serve-layer content-addressed
// result cache (internal/servecache): a stored-result hit, a miss that will
// run a solve, an LRU eviction, or a singleflight merge of a duplicate
// request onto an in-flight solve. Kept distinct from CacheEvent so the
// Session policy cache and the result cache never share counters.
type ServeCacheEvent struct {
	Op CacheOp
	// Entries is the number of cached results after the operation.
	Entries int
}

// ApproxEvent reports one run of the streaming approximation tier
// (internal/approx via the "approx" algorithm): the requested scheme, the
// certified interval reached, and whether an exact Lawler sharpening pass
// followed.
type ApproxEvent struct {
	// Mode is the scheme actually run ("chkl" or "ap").
	Mode string
	// Epsilon is the requested tolerance (the engine's bracketing epsilon
	// when the run was a sharpening prelude to an exact answer).
	Epsilon float64
	// Nodes and Arcs are the presented graph's dimensions.
	Nodes, Arcs int
	// Passes counts full arc-stream sweeps; Rounds bisection probes.
	Passes, Rounds int
	// Lower and Upper are the certified interval bracketing λ*; Upper is
	// NaN when no witness cycle was harvested before an error.
	Lower, Upper float64
	// Sharpened reports that an exact Lawler pass seeded from the interval
	// followed (and its answer is what the caller received).
	Sharpened bool
	// Err is the engine's error, nil on success.
	Err error
}

// ProbeEvent reports one run of the shared parametric negative-cycle oracle
// (internal/ratio's Bellman–Ford feasibility probe): the probed rational
// λ = Num/Den, whether a cycle with ratio below λ exists, and the work done.
// Every Lawler-style ratio search (lawler, dinkelbach, sternbrocot, megiddo,
// plus certification) reduces to a sequence of these probes, so a probe
// stream is the per-iteration view of a ratio solve.
type ProbeEvent struct {
	// Num and Den are the probed rational λ = Num/Den (Den > 0).
	Num, Den int64
	// Negative reports that some cycle C has Den·w(C) − Num·t(C) < 0,
	// i.e. ρ(C) < λ.
	Negative bool
	// Passes is the number of Bellman–Ford passes the probe ran before
	// converging or confirming a negative cycle.
	Passes int
	// Duration is the probe's wall-clock time.
	Duration time.Duration
}

// CertifyEvent reports an exact-certification attempt (Options.Certify).
type CertifyEvent struct {
	// OK reports that the optimality proof succeeded.
	OK bool
	// Value is the certified optimum as a float64 (λ* or ρ*).
	Value float64
	// MaxDen is the denominator bound used for rational recovery (n for
	// means, total transit for ratios).
	MaxDen int64
	// Snapped reports that the solver's float value had to be recovered by
	// continued-fraction snapping before verification.
	Snapped bool
	// Duration is the proof's wall-clock time.
	Duration time.Duration
	// Err is the proof failure, nil when OK.
	Err error
}

// DeltaEvent reports one applied dynamic-graph delta (core.DynSession): the
// operation, the arc/node it touched, and how far its invalidation reached —
// how many cached components were marked for re-solve, how many were merged
// into one (arc insertion closing a cycle between components), and how many
// a deletion split one component into. Components counts the live cyclic
// components after the delta, so a metrics stream shows the decomposition
// evolving.
type DeltaEvent struct {
	// Op names the delta operation: "insert-arc", "delete-arc",
	// "set-weight", "set-transit", or "add-node".
	Op string
	// Arc is the original arc ID the delta targeted (the inserted arc's
	// fresh ID for insert-arc); -1 for add-node.
	Arc int
	// From and To are the arc endpoints (the new node's ID in From for
	// add-node; -1 when not applicable).
	From, To int
	// Invalidated counts cached component results this delta marked dirty.
	Invalidated int
	// Merged counts previously separate components fused by an insertion
	// (0 or ≥2); Split counts components one deletion decomposed into.
	Merged, Split int
	// Components is the number of live cyclic components after the delta.
	Components int
}

// Trace is a set of hooks invoked by the solve drivers as typed events occur.
// Any hook may be nil; a nil *Trace disables the layer entirely (the emission
// methods below tolerate nil receivers, so callers never branch themselves).
//
// Hooks are called synchronously on the solving goroutine and — under the
// parallel SCC driver or a portfolio race — concurrently from several
// goroutines, so they must be safe for concurrent use and should return
// quickly.
type Trace struct {
	OnSCC         func(SCCEvent)
	OnKernel      func(KernelEvent)
	OnSolverStart func(SolverStartEvent)
	OnSolverDone  func(SolverDoneEvent)
	OnRace        func(RaceEvent)
	OnCache       func(CacheEvent)
	OnServeCache  func(ServeCacheEvent)
	OnApprox      func(ApproxEvent)
	OnProbe       func(ProbeEvent)
	OnCertify     func(CertifyEvent)
	OnDelta       func(DeltaEvent)
}

// Enabled reports whether any events can possibly be observed; drivers gate
// payload gathering (time.Now, size slices) behind it.
func (t *Trace) Enabled() bool { return t != nil }

// SCC emits an SCCEvent; safe on a nil receiver.
func (t *Trace) SCC(ev SCCEvent) {
	if t != nil && t.OnSCC != nil {
		t.OnSCC(ev)
	}
}

// Kernel emits a KernelEvent; safe on a nil receiver.
func (t *Trace) Kernel(ev KernelEvent) {
	if t != nil && t.OnKernel != nil {
		t.OnKernel(ev)
	}
}

// SolverStart emits a SolverStartEvent; safe on a nil receiver.
func (t *Trace) SolverStart(ev SolverStartEvent) {
	if t != nil && t.OnSolverStart != nil {
		t.OnSolverStart(ev)
	}
}

// SolverDone emits a SolverDoneEvent; safe on a nil receiver.
func (t *Trace) SolverDone(ev SolverDoneEvent) {
	if t != nil && t.OnSolverDone != nil {
		t.OnSolverDone(ev)
	}
}

// Race emits a RaceEvent; safe on a nil receiver.
func (t *Trace) Race(ev RaceEvent) {
	if t != nil && t.OnRace != nil {
		t.OnRace(ev)
	}
}

// Cache emits a CacheEvent; safe on a nil receiver.
func (t *Trace) Cache(ev CacheEvent) {
	if t != nil && t.OnCache != nil {
		t.OnCache(ev)
	}
}

// ServeCache emits a ServeCacheEvent; safe on a nil receiver.
func (t *Trace) ServeCache(ev ServeCacheEvent) {
	if t != nil && t.OnServeCache != nil {
		t.OnServeCache(ev)
	}
}

// Approx emits an ApproxEvent; safe on a nil receiver.
func (t *Trace) Approx(ev ApproxEvent) {
	if t != nil && t.OnApprox != nil {
		t.OnApprox(ev)
	}
}

// Probe emits a ProbeEvent; safe on a nil receiver.
func (t *Trace) Probe(ev ProbeEvent) {
	if t != nil && t.OnProbe != nil {
		t.OnProbe(ev)
	}
}

// Certify emits a CertifyEvent; safe on a nil receiver.
func (t *Trace) Certify(ev CertifyEvent) {
	if t != nil && t.OnCertify != nil {
		t.OnCertify(ev)
	}
}

// Delta emits a DeltaEvent; safe on a nil receiver.
func (t *Trace) Delta(ev DeltaEvent) {
	if t != nil && t.OnDelta != nil {
		t.OnDelta(ev)
	}
}

// Multi fans every event out to each non-nil trace in order, so a log tracer
// and a metrics collector can observe the same solve. Nil members are
// skipped; Multi() and Multi(nil, nil) return nil (the disabled tracer).
func Multi(traces ...*Trace) *Trace {
	live := make([]*Trace, 0, len(traces))
	for _, t := range traces {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	out := &Trace{}
	out.OnSCC = func(ev SCCEvent) {
		for _, t := range live {
			t.SCC(ev)
		}
	}
	out.OnKernel = func(ev KernelEvent) {
		for _, t := range live {
			t.Kernel(ev)
		}
	}
	out.OnSolverStart = func(ev SolverStartEvent) {
		for _, t := range live {
			t.SolverStart(ev)
		}
	}
	out.OnSolverDone = func(ev SolverDoneEvent) {
		for _, t := range live {
			t.SolverDone(ev)
		}
	}
	out.OnRace = func(ev RaceEvent) {
		for _, t := range live {
			t.Race(ev)
		}
	}
	out.OnCache = func(ev CacheEvent) {
		for _, t := range live {
			t.Cache(ev)
		}
	}
	out.OnServeCache = func(ev ServeCacheEvent) {
		for _, t := range live {
			t.ServeCache(ev)
		}
	}
	out.OnApprox = func(ev ApproxEvent) {
		for _, t := range live {
			t.Approx(ev)
		}
	}
	out.OnProbe = func(ev ProbeEvent) {
		for _, t := range live {
			t.Probe(ev)
		}
	}
	out.OnCertify = func(ev CertifyEvent) {
		for _, t := range live {
			t.Certify(ev)
		}
	}
	out.OnDelta = func(ev DeltaEvent) {
		for _, t := range live {
			t.Delta(ev)
		}
	}
	return out
}
