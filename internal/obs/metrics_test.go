package obs

import (
	"encoding/json"
	"errors"
	"expvar"
	"strings"
	"sync"
	"testing"
	"time"
)

// expvarString fetches a published var's JSON rendering.
func expvarString(t *testing.T, name string) string {
	t.Helper()
	v := expvar.Get(name)
	if v == nil {
		t.Fatalf("expvar %q not published", name)
	}
	return v.String()
}

func TestMetricsAggregatesEvents(t *testing.T) {
	m := NewMetrics()
	tr := m.Tracer()

	tr.SCC(SCCEvent{Components: 3, Nodes: 30, Arcs: 60, Sizes: []int{10, 10, 10}})
	tr.Kernel(KernelEvent{Component: 0, Solved: true})
	tr.Kernel(KernelEvent{Component: 1})
	for i := 0; i < 3; i++ {
		tr.SolverDone(SolverDoneEvent{Algorithm: "howard", Component: i,
			Duration: time.Duration(i+1) * time.Millisecond, Value: 1.5})
	}
	tr.SolverDone(SolverDoneEvent{Algorithm: "karp", Component: 0,
		Duration: 100 * time.Microsecond, Err: errors.New("boom")})
	tr.Race(RaceEvent{Winner: "howard", Duration: 2 * time.Millisecond})
	tr.Cache(CacheEvent{Op: CacheMiss, Entries: 1})
	tr.Cache(CacheEvent{Op: CacheHit, Entries: 1})
	tr.Cache(CacheEvent{Op: CacheEvict, Entries: 0})
	tr.Certify(CertifyEvent{OK: true, Duration: time.Millisecond})
	tr.Certify(CertifyEvent{OK: false, Duration: time.Millisecond, Err: errors.New("bad")})

	snap := m.Snapshot()
	wantInts := map[string]int64{
		"solves": 1, "components": 3, "solver_runs": 4, "solver_errors": 1,
		"kernelized": 2, "kernel_solved": 1, "races": 1,
		"cache_hits": 1, "cache_misses": 1, "cache_evictions": 1,
		"certify_pass": 1, "certify_fail": 1,
	}
	for key, want := range wantInts {
		if got := snap[key].(int64); got != want {
			t.Errorf("snapshot[%q] = %d, want %d", key, got, want)
		}
	}
	if m.SolverRuns() != 4 {
		t.Errorf("SolverRuns() = %d, want 4", m.SolverRuns())
	}

	algs := snap["algorithms"].(map[string]any)
	howard := algs["howard"].(map[string]any)
	if got := howard["solves"].(int64); got != 3 {
		t.Errorf("howard solves = %d, want 3", got)
	}
	karp := algs["karp"].(map[string]any)
	if got := karp["errors"].(int64); got != 1 {
		t.Errorf("karp errors = %d, want 1", got)
	}
	wins := snap["race_wins"].(map[string]int64)
	if wins["howard"] != 1 {
		t.Errorf("race_wins[howard] = %d, want 1", wins["howard"])
	}
}

func TestMetricsWriteJSONRoundTrips(t *testing.T) {
	m := NewMetrics()
	tr := m.Tracer()
	tr.SolverDone(SolverDoneEvent{Algorithm: "howard", Duration: 3 * time.Millisecond})
	var sb strings.Builder
	if err := m.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v\n%s", err, sb.String())
	}
	if decoded["solver_runs"].(float64) != 1 {
		t.Errorf("decoded solver_runs = %v, want 1", decoded["solver_runs"])
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	h.Observe(500 * time.Nanosecond) // < 1µs bucket
	h.Observe(3 * time.Microsecond)  // le_4us
	h.Observe(3 * time.Millisecond)  // le_4ms (2^12 µs = ~4.1ms)
	h.Observe(2 * time.Hour)         // unbounded tail
	h.Observe(-time.Second)          // clamped to zero, not a crash

	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
	if h.Max() != 2*time.Hour {
		t.Errorf("Max = %v, want 2h", h.Max())
	}
	if h.Mean() <= 0 {
		t.Errorf("Mean = %v, want > 0", h.Mean())
	}
	buckets := h.bucketMap()
	var total int64
	for _, v := range buckets {
		total += v
	}
	if total != 5 {
		t.Errorf("bucket totals %d, want 5 (%v)", total, buckets)
	}
	if buckets["inf"] != 1 {
		t.Errorf("unbounded bucket = %d, want 1 (%v)", buckets["inf"], buckets)
	}
}

func TestHistogramBucketNames(t *testing.T) {
	for _, tc := range []struct {
		i    int
		want string
	}{{0, "le_1us"}, {10, "le_1ms"}, {12, "le_4ms"}, {20, "le_1s"}} {
		if got := bucketName(tc.i); got != tc.want {
			t.Errorf("bucketName(%d) = %q, want %q", tc.i, got, tc.want)
		}
	}
}

// Concurrent emission must be race-clean (run under -race in CI).
func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	tr := m.Tracer()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.SolverDone(SolverDoneEvent{Algorithm: "howard", Duration: time.Microsecond})
				tr.Cache(CacheEvent{Op: CacheHit})
				tr.Race(RaceEvent{Winner: "karp"})
			}
		}(w)
	}
	wg.Wait()
	if m.SolverRuns() != 800 {
		t.Errorf("SolverRuns = %d, want 800", m.SolverRuns())
	}
	snap := m.Snapshot()
	if snap["cache_hits"].(int64) != 800 {
		t.Errorf("cache_hits = %v, want 800", snap["cache_hits"])
	}
	if snap["race_wins"].(map[string]int64)["karp"] != 800 {
		t.Errorf("race_wins = %v, want karp:800", snap["race_wins"])
	}
}

func TestMetricsPublish(t *testing.T) {
	m := NewMetrics()
	m.Tracer().SolverDone(SolverDoneEvent{Algorithm: "howard", Duration: time.Microsecond})
	// expvar forbids duplicate names process-wide; use a test-unique name.
	m.Publish("obs_test_metrics")
	// The published Func must render valid JSON (expvar serves it verbatim).
	var decoded map[string]any
	data := expvarString(t, "obs_test_metrics")
	if err := json.Unmarshal([]byte(data), &decoded); err != nil {
		t.Fatalf("published var is not valid JSON: %v\n%s", err, data)
	}
	if decoded["solver_runs"].(float64) != 1 {
		t.Errorf("published solver_runs = %v, want 1", decoded["solver_runs"])
	}
}
