package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// NewLogTracer returns a Trace that renders every event as one human-readable
// line on w, prefixed with the elapsed time since the tracer was created
// (cmd/mcm -trace wires it to stderr). Writes are serialized with a mutex so
// events from the parallel driver and portfolio racers interleave whole
// lines, never bytes.
func NewLogTracer(w io.Writer) *Trace {
	l := &logTracer{w: w, start: time.Now()}
	return &Trace{
		OnSCC:         l.scc,
		OnKernel:      l.kernel,
		OnSolverStart: l.solverStart,
		OnSolverDone:  l.solverDone,
		OnRace:        l.race,
		OnCache:       l.cache,
		OnServeCache:  l.serveCache,
		OnApprox:      l.approx,
		OnProbe:       l.probe,
		OnCertify:     l.certify,
		OnDelta:       l.delta,
	}
}

type logTracer struct {
	mu    sync.Mutex
	w     io.Writer
	start time.Time
}

func (l *logTracer) printf(format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	fmt.Fprintf(l.w, "[%10s] %s\n", time.Since(l.start).Round(time.Microsecond), fmt.Sprintf(format, args...))
}

// component renders a component index, tolerating the -1 "direct call" mark.
func component(idx int) string {
	if idx < 0 {
		return "-"
	}
	return fmt.Sprintf("%d", idx)
}

func (l *logTracer) scc(ev SCCEvent) {
	sizes := make([]string, 0, len(ev.Sizes))
	for _, s := range ev.Sizes {
		sizes = append(sizes, fmt.Sprintf("%d", s))
	}
	l.printf("scc: %d cyclic components (n=%d m=%d, sizes %s)",
		ev.Components, ev.Nodes, ev.Arcs, strings.Join(sizes, ","))
}

func (l *logTracer) kernel(ev KernelEvent) {
	switch {
	case ev.Unsupported:
		l.printf("kernel: comp %d unsupported input, solving raw (n=%d m=%d)",
			ev.Component, ev.OrigNodes, ev.OrigArcs)
	case ev.Solved:
		l.printf("kernel: comp %d solved in closed form (n=%d m=%d reduced away)",
			ev.Component, ev.OrigNodes, ev.OrigArcs)
	default:
		l.printf("kernel: comp %d n=%d->%d m=%d->%d contracted=%v candidate=%v bounds=%v",
			ev.Component, ev.OrigNodes, ev.Nodes, ev.OrigArcs, ev.Arcs,
			ev.Contracted, ev.HasCandidate, ev.HasBounds)
	}
}

func (l *logTracer) solverStart(ev SolverStartEvent) {
	warm := ""
	if ev.WarmStart {
		warm = " warm-start"
	}
	l.printf("solver %s: comp %s start (n=%d m=%d)%s",
		ev.Algorithm, component(ev.Component), ev.Nodes, ev.Arcs, warm)
}

func (l *logTracer) solverDone(ev SolverDoneEvent) {
	if ev.Err != nil {
		l.printf("solver %s: comp %s FAILED after %v: %v",
			ev.Algorithm, component(ev.Component), ev.Duration.Round(time.Microsecond), ev.Err)
		return
	}
	l.printf("solver %s: comp %s done in %v, value=%g, %s",
		ev.Algorithm, component(ev.Component), ev.Duration.Round(time.Microsecond), ev.Value, ev.Counts)
}

func (l *logTracer) race(ev RaceEvent) {
	var b strings.Builder
	for i, r := range ev.Racers {
		if i > 0 {
			b.WriteString(", ")
		}
		switch {
		case r.Won:
			fmt.Fprintf(&b, "%s won in %v", r.Algorithm, r.Elapsed.Round(time.Microsecond))
		case r.Err != nil:
			fmt.Fprintf(&b, "%s lost (cancel latency %v)", r.Algorithm, r.CancelLatency.Round(time.Microsecond))
		default:
			fmt.Fprintf(&b, "%s finished in %v", r.Algorithm, r.Elapsed.Round(time.Microsecond))
		}
	}
	winner := ev.Winner
	if winner == "" {
		winner = "(none)"
	}
	l.printf("race: winner=%s in %v [%s]", winner, ev.Duration.Round(time.Microsecond), b.String())
}

func (l *logTracer) cache(ev CacheEvent) {
	l.printf("cache: %s (%d entries)", ev.Op, ev.Entries)
}

func (l *logTracer) serveCache(ev ServeCacheEvent) {
	l.printf("result-cache: %s (%d entries)", ev.Op, ev.Entries)
}

func (l *logTracer) approx(ev ApproxEvent) {
	if ev.Err != nil {
		l.printf("approx %s: eps=%g (n=%d m=%d) FAILED after %d passes/%d rounds at [%g, %g]: %v",
			ev.Mode, ev.Epsilon, ev.Nodes, ev.Arcs, ev.Passes, ev.Rounds, ev.Lower, ev.Upper, ev.Err)
		return
	}
	sharpened := ""
	if ev.Sharpened {
		sharpened = ", sharpened exact"
	}
	l.printf("approx %s: eps=%g (n=%d m=%d) certified [%g, %g] in %d passes/%d rounds%s",
		ev.Mode, ev.Epsilon, ev.Nodes, ev.Arcs, ev.Lower, ev.Upper, ev.Passes, ev.Rounds, sharpened)
}

func (l *logTracer) delta(ev DeltaEvent) {
	extra := ""
	if ev.Merged > 1 {
		extra = fmt.Sprintf(" merged=%d", ev.Merged)
	}
	if ev.Split > 1 {
		extra += fmt.Sprintf(" split=%d", ev.Split)
	}
	l.printf("delta: %s arc=%d (%d->%d) invalidated=%d%s, %d live components",
		ev.Op, ev.Arc, ev.From, ev.To, ev.Invalidated, extra, ev.Components)
}

func (l *logTracer) probe(ev ProbeEvent) {
	verdict := "feasible"
	if ev.Negative {
		verdict = "negative cycle"
	}
	l.printf("probe: λ=%d/%d %s (%d passes, %v)",
		ev.Num, ev.Den, verdict, ev.Passes, ev.Duration.Round(time.Microsecond))
}

func (l *logTracer) certify(ev CertifyEvent) {
	if ev.OK {
		snapped := ""
		if ev.Snapped {
			snapped = ", snapped from float"
		}
		l.printf("certify: pass in %v, value=%g den<=%d%s",
			ev.Duration.Round(time.Microsecond), ev.Value, ev.MaxDen, snapped)
		return
	}
	l.printf("certify: FAIL after %v: %v", ev.Duration.Round(time.Microsecond), ev.Err)
}
