package prep

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/numeric"
)

// buildGraph assembles a graph from (from, to, weight, transit) rows.
func buildGraph(n int, rows [][4]int64) *graph.Graph {
	arcs := make([]graph.Arc, len(rows))
	for i, r := range rows {
		arcs[i] = graph.Arc{From: graph.NodeID(r[0]), To: graph.NodeID(r[1]), Weight: r[2], Transit: r[3]}
	}
	return graph.FromArcs(n, arcs)
}

// bruteMinRatio enumerates every simple cycle by DFS (feasible for the tiny
// graphs used here) and returns the exact minimum of Σw/Σt.
func bruteMinRatio(g *graph.Graph, meanMode bool) (numeric.Rat, bool) {
	n := g.NumNodes()
	var (
		best numeric.Rat
		have bool
	)
	onPath := make([]bool, n)
	var path []graph.ArcID
	var dfs func(start, v graph.NodeID)
	dfs = func(start, v graph.NodeID) {
		for _, id := range g.OutArcs(v) {
			a := g.Arc(id)
			if a.To == start {
				w, t := int64(0), int64(0)
				for _, pid := range append(path, id) {
					pa := g.Arc(pid)
					w += pa.Weight
					if meanMode {
						t++
					} else {
						t += pa.Transit
					}
				}
				if t > 0 {
					r := numeric.NewRat(w, t)
					if !have || r.Less(best) {
						best = r
						have = true
					}
				}
				continue
			}
			if a.To < start || onPath[a.To] {
				continue
			}
			onPath[a.To] = true
			path = append(path, id)
			dfs(start, a.To)
			path = path[:len(path)-1]
			onPath[a.To] = false
		}
	}
	for s := graph.NodeID(0); int(s) < n; s++ {
		onPath[s] = true
		path = path[:0]
		dfs(s, s)
		onPath[s] = false
	}
	return best, have
}

// checkExpansion verifies a kernel's expansion map invariants against the
// original graph: each kernel arc's path is a contiguous walk between the
// mapped endpoints whose accumulated weight (and denominator) matches.
func checkExpansion(t *testing.T, g *graph.Graph, k *Kernel, mode Mode) {
	t.Helper()
	if k.identity || k.ArcPaths == nil {
		return
	}
	for id := graph.ArcID(0); int(id) < k.G.NumArcs(); id++ {
		a := k.G.Arc(id)
		path := k.ArcPaths[id]
		if len(path) == 0 {
			t.Fatalf("kernel arc %d: empty expansion path", id)
		}
		var w, tr int64
		for i, oid := range path {
			oa := g.Arc(oid)
			w += oa.Weight
			if mode == Mean {
				tr++
			} else {
				tr += oa.Transit
			}
			if i > 0 && g.Arc(path[i-1]).To != oa.From {
				t.Fatalf("kernel arc %d: path not contiguous at step %d", id, i)
			}
		}
		if g.Arc(path[0]).From != k.NodeMap[a.From] {
			t.Errorf("kernel arc %d: path starts at %d, want %d", id, g.Arc(path[0]).From, k.NodeMap[a.From])
		}
		if g.Arc(path[len(path)-1]).To != k.NodeMap[a.To] {
			t.Errorf("kernel arc %d: path ends at %d, want %d", id, g.Arc(path[len(path)-1]).To, k.NodeMap[a.To])
		}
		if w != a.Weight || tr != a.Transit {
			t.Errorf("kernel arc %d: accumulated (w=%d,t=%d), arc says (w=%d,t=%d)", id, w, tr, a.Weight, a.Transit)
		}
	}
}

func TestSelfLoopExtraction(t *testing.T) {
	// Ring of 3 with two self-loops; the lighter loop (weight 2) is the
	// minimum mean cycle (ring mean is 10).
	g := buildGraph(3, [][4]int64{
		{0, 1, 10, 1}, {1, 2, 10, 1}, {2, 0, 10, 1},
		{1, 1, 5, 1}, {2, 2, 2, 1},
	})
	k := Kernelize(g, Mean)
	if k.Err != nil {
		t.Fatal(k.Err)
	}
	if !k.HasCandidate || !k.CandidateValue.Equal(numeric.FromInt(2)) {
		t.Fatalf("candidate = %v (has=%v), want 2", k.CandidateValue, k.HasCandidate)
	}
	for _, a := range k.G.Arcs() {
		if a.From == a.To {
			t.Error("kernel must not contain self-loops")
		}
	}
	cyc := k.CandidateCycle()
	if len(cyc) != 1 || g.Arc(cyc[0]).Weight != 2 {
		t.Errorf("candidate cycle = %v, want the weight-2 self-loop", cyc)
	}
	if err := g.ValidateCycle(cyc); err != nil {
		t.Error(err)
	}
}

func TestPureCycleCollapses(t *testing.T) {
	// An n-cycle is one long chain: contraction must collapse it entirely
	// into a closed-form candidate with no kernel left to solve.
	g := gen.Cycle(50, 3)
	k := Kernelize(g, Mean)
	if k.Err != nil {
		t.Fatal(k.Err)
	}
	if !k.Solved || !k.HasCandidate {
		t.Fatalf("pure cycle should solve in closed form: solved=%v hasCand=%v", k.Solved, k.HasCandidate)
	}
	if !k.CandidateValue.Equal(numeric.FromInt(3)) {
		t.Errorf("candidate = %v, want 3", k.CandidateValue)
	}
	cyc := k.CandidateCycle()
	if len(cyc) != 50 {
		t.Errorf("candidate cycle length = %d, want 50", len(cyc))
	}
	if err := g.ValidateCycle(cyc); err != nil {
		t.Error(err)
	}
}

func TestChainContractionReduction(t *testing.T) {
	g, err := gen.Chain(gen.ChainConfig{CoreN: 6, Chains: 8, ChainLen: 40, MinWeight: -9, MaxWeight: 9, SelfLoops: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	k := Kernelize(g, Mean)
	if k.Err != nil {
		t.Fatal(k.Err)
	}
	if !k.Contracted {
		t.Fatal("chain-heavy graph must contract")
	}
	if k.G.NumNodes() > 6 {
		t.Errorf("kernel has %d nodes; all %d interiors should be gone", k.G.NumNodes(), 8*40)
	}
	if k.NodeReduction() < 0.9 {
		t.Errorf("node reduction = %.2f, want > 0.9", k.NodeReduction())
	}
	checkExpansion(t, g, k, Mean)
}

func TestTwoNodeClosedForm(t *testing.T) {
	// Two core nodes joined by parallel arcs both ways; cycles are the four
	// fwd×bwd pairs; minimum pair mean = (1 + (-3))/2 = -1.
	g := buildGraph(2, [][4]int64{
		{0, 1, 1, 1}, {0, 1, 4, 1},
		{1, 0, -3, 1}, {1, 0, 2, 1},
	})
	k := Kernelize(g, Mean)
	if k.Err != nil {
		t.Fatal(k.Err)
	}
	if !k.Solved {
		t.Fatal("two-node kernel must be solved in closed form")
	}
	if want := numeric.NewRat(-2, 2); !k.CandidateValue.Equal(want) {
		t.Errorf("candidate = %v, want %v", k.CandidateValue, want)
	}
	cyc := k.CandidateCycle()
	if err := g.ValidateCycle(cyc); err != nil {
		t.Error(err)
	}
	if w := g.CycleWeight(cyc); w != -2 {
		t.Errorf("candidate cycle weight = %d, want -2", w)
	}
}

func TestIdentityKernel(t *testing.T) {
	// Complete digraph on 4 nodes: no self-loops, no degree-(1,1) nodes —
	// nothing reduces, so the kernel must alias the input.
	g := gen.Complete(4, -10, 10, 1)
	k := Kernelize(g, Mean)
	if k.Err != nil {
		t.Fatal(k.Err)
	}
	if k.G != g {
		t.Error("identity kernel must alias the input graph")
	}
	if k.Contracted || k.Solved || k.HasCandidate {
		t.Errorf("identity kernel flags wrong: %+v", k)
	}
	cyc := []graph.ArcID{0, 3} // 0->1, 1->0 in the complete graph's arc order
	exp := k.ExpandCycle(cyc)
	if len(exp) != 2 || exp[0] != cyc[0] || exp[1] != cyc[1] {
		t.Errorf("identity expansion changed the cycle: %v -> %v", cyc, exp)
	}
}

func TestBoundsBracketOptimum(t *testing.T) {
	cfgs := []gen.ChainConfig{
		{CoreN: 5, Chains: 3, ChainLen: 6, MinWeight: -20, MaxWeight: 20, Seed: 1},
		{CoreN: 7, Chains: 2, ChainLen: 3, MinWeight: 1, MaxWeight: 50, SelfLoops: 1, Seed: 2},
	}
	for i, cfg := range cfgs {
		g, err := gen.Chain(cfg)
		if err != nil {
			t.Fatal(err)
		}
		k := Kernelize(g, Mean)
		if k.Err != nil {
			t.Fatal(k.Err)
		}
		opt, ok := bruteMinRatio(g, true)
		if !ok {
			t.Fatalf("cfg %d: no cycle found by brute force", i)
		}
		if !k.HasBounds {
			continue
		}
		if opt.Less(k.Lower) {
			t.Errorf("cfg %d: λ* = %v below Lower = %v", i, opt, k.Lower)
		}
		if k.Upper.Less(opt) {
			t.Errorf("cfg %d: λ* = %v above Upper = %v", i, opt, k.Upper)
		}
		if k.HasCandidate && k.CandidateValue.Less(k.Upper) {
			t.Errorf("cfg %d: Upper = %v not capped by candidate %v", i, k.Upper, k.CandidateValue)
		}
	}
}

func TestRatioModeUnsupported(t *testing.T) {
	// Negative transit time.
	g := buildGraph(2, [][4]int64{{0, 1, 1, -1}, {1, 0, 1, 1}})
	if k := Kernelize(g, Ratio); k.Err == nil {
		t.Error("negative transit must set Err")
	}
	// Zero-transit self-loop: its ratio is undefined.
	g = buildGraph(2, [][4]int64{{0, 1, 1, 1}, {1, 0, 1, 1}, {0, 0, 1, 0}})
	if k := Kernelize(g, Ratio); k.Err == nil {
		t.Error("zero-transit self-loop must set Err")
	}
	// Mean mode ignores transit entirely.
	if k := Kernelize(g, Mean); k.Err != nil {
		t.Errorf("mean mode must not fail on transit values: %v", k.Err)
	}
}

func TestRatioModeAccumulatesTransit(t *testing.T) {
	// 0 -> 1 -> 2 -> 0 with distinct transits; node 1 and 2 are interior, so
	// the ring collapses to a candidate with Σw/Σt = (3+4+5)/(2+3+4) = 12/9.
	g := buildGraph(3, [][4]int64{{0, 1, 3, 2}, {1, 2, 4, 3}, {2, 0, 5, 4}})
	k := Kernelize(g, Ratio)
	if k.Err != nil {
		t.Fatal(k.Err)
	}
	if !k.Solved || !k.HasCandidate {
		t.Fatal("pure ring must collapse in ratio mode too")
	}
	if want := numeric.NewRat(12, 9); !k.CandidateValue.Equal(want) {
		t.Errorf("candidate = %v, want %v", k.CandidateValue, want)
	}
}

func TestSolveKernelMatchesBruteForce(t *testing.T) {
	// Random small strongly connected graphs with transit 1..3 (ratio form,
	// as contracted Mean kernels carry); SolveKernel must match exhaustive
	// enumeration exactly.
	for seed := uint64(0); seed < 30; seed++ {
		g, err := gen.Sprand(gen.SprandConfig{N: 7, M: 18, MinWeight: -30, MaxWeight: 30, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		// Assign transits 1..3 deterministically; drop self-loops (SolveKernel
		// input is a kernel, which never has them).
		var arcs []graph.Arc
		for i, a := range g.Arcs() {
			if a.From == a.To {
				continue
			}
			a.Transit = int64(i%3 + 1)
			arcs = append(arcs, a)
		}
		kg := graph.FromArcs(g.NumNodes(), arcs)
		if !graph.IsStronglyConnected(kg) {
			continue
		}
		want, ok := bruteMinRatio(kg, false)
		if !ok {
			continue
		}
		got, cyc, err := SolveKernel(kg, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !got.Equal(want) {
			t.Errorf("seed %d: SolveKernel = %v, brute force = %v", seed, got, want)
		}
		if err := kg.ValidateCycle(cyc); err != nil {
			t.Errorf("seed %d: returned cycle invalid: %v", seed, err)
		}
		w, tr := kg.CycleWeight(cyc), kg.CycleTransit(cyc)
		if !numeric.NewRat(w, tr).Equal(want) {
			t.Errorf("seed %d: cycle value %d/%d != %v", seed, w, tr, want)
		}
	}
}

func TestKernelizeEndToEndMean(t *testing.T) {
	// Full pipeline on chain-heavy graphs: min(candidate, SolveKernel over
	// the kernel) must equal the brute-force optimum, and the expanded cycle
	// must achieve it on the original graph.
	for seed := uint64(0); seed < 10; seed++ {
		g, err := gen.Chain(gen.ChainConfig{CoreN: 5, Chains: 3, ChainLen: 5, MinWeight: -15, MaxWeight: 15, SelfLoops: 1, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		want, ok := bruteMinRatio(g, true)
		if !ok {
			t.Fatal("no cycle")
		}
		k := Kernelize(g, Mean)
		if k.Err != nil {
			t.Fatal(k.Err)
		}
		checkExpansion(t, g, k, Mean)

		best := k.CandidateValue
		bestCyc := k.CandidateCycle()
		have := k.HasCandidate
		if !k.Solved {
			r, cyc, err := SolveKernel(k.G, nil)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if !have || r.Less(best) {
				best = r
				bestCyc = k.ExpandCycle(cyc)
				have = true
			}
		}
		if !have || !best.Equal(want) {
			t.Errorf("seed %d: kernel pipeline = %v (have=%v), want %v", seed, best, have, want)
			continue
		}
		if err := g.ValidateCycle(bestCyc); err != nil {
			t.Errorf("seed %d: expanded cycle invalid: %v", seed, err)
			continue
		}
		w := g.CycleWeight(bestCyc)
		if !numeric.NewRat(w, int64(len(bestCyc))).Equal(want) {
			t.Errorf("seed %d: expanded cycle mean %d/%d != %v", seed, w, len(bestCyc), want)
		}
	}
}
