package prep_test

// External test package: the generation-based differential harness
// (internal/testutil) supplies the instance families and the minimizing
// shrinker; prep's internal tests keep their hand-built fixtures for the
// reduction-by-reduction unit coverage.

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/prep"
	"repro/internal/testutil"
	"repro/internal/verify"
)

// kernelPipeline runs the full Kernelize + SolveKernel pipeline for one
// strongly connected graph and returns the optimum it proves together with
// an expanded witness cycle on the original graph.
func kernelPipeline(g *graph.Graph, mode prep.Mode) (numeric.Rat, []graph.ArcID, error) {
	k := prep.Kernelize(g, mode)
	if k.Err != nil {
		return numeric.Rat{}, nil, k.Err
	}
	best, cyc, have := k.CandidateValue, k.CandidateCycle(), k.HasCandidate
	if !k.Solved {
		r, kcyc, err := prep.SolveKernel(k.G, nil)
		if err != nil {
			return numeric.Rat{}, nil, err
		}
		if !have || r.Less(best) {
			best, cyc, have = r, k.ExpandCycle(kcyc), true
		}
	}
	if !have {
		return numeric.Rat{}, nil, errors.New("pipeline produced no optimum")
	}
	return best, cyc, nil
}

// TestKernelPipelineDifferential is the prep enrollment in the shared
// differential harness: on every exhaustively checkable instance, the
// kernelization pipeline's optimum is bit-identical to brute-force cycle
// enumeration and its expanded witness achieves that value on the original
// graph. Failures are minimized with testutil.Shrink before reporting.
func TestKernelPipelineDifferential(t *testing.T) {
	modes := []struct {
		name   string
		mode   prep.Mode
		gen    func(testing.TB, func(string, *graph.Graph))
		oracle func(*graph.Graph) (numeric.Rat, []graph.ArcID, error)
		value  func(*graph.Graph, []graph.ArcID) (numeric.Rat, bool)
	}{
		{
			"mean", prep.Mean, testutil.SmallMeanGraphs, verify.BruteForceMinMean,
			func(g *graph.Graph, cyc []graph.ArcID) (numeric.Rat, bool) {
				return numeric.NewRat(g.CycleWeight(cyc), int64(len(cyc))), true
			},
		},
		{
			"ratio", prep.Ratio, testutil.SmallRatioGraphs, verify.BruteForceMinRatio,
			func(g *graph.Graph, cyc []graph.ArcID) (numeric.Rat, bool) {
				tr := g.CycleTransit(cyc)
				if tr <= 0 {
					return numeric.Rat{}, false
				}
				return numeric.NewRat(g.CycleWeight(cyc), tr), true
			},
		},
	}
	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			disagrees := func(g *graph.Graph) bool {
				if !graph.IsStronglyConnected(g) {
					return false
				}
				want, _, err1 := m.oracle(g)
				got, _, err2 := kernelPipeline(g, m.mode)
				return err1 == nil && err2 == nil && !got.Equal(want)
			}
			m.gen(t, func(name string, g *graph.Graph) {
				want, _, err := m.oracle(g)
				if err != nil {
					t.Fatalf("%s: oracle: %v", name, err)
				}
				got, cyc, err := kernelPipeline(g, m.mode)
				if err != nil {
					t.Errorf("%s: pipeline: %v", name, err)
					return
				}
				if !got.Equal(want) {
					small := testutil.Shrink(g, disagrees)
					t.Errorf("%s: pipeline = %v, brute force = %v; minimized:\n%s",
						name, got, want,
						testutil.FormatCrasher(small, fmt.Sprintf("go test -run 'KernelPipelineDifferential/%s' ./internal/prep/", m.name)))
					return
				}
				if err := g.ValidateCycle(cyc); err != nil {
					t.Errorf("%s: expanded cycle invalid: %v", name, err)
					return
				}
				if v, ok := m.value(g, cyc); !ok || !v.Equal(want) {
					t.Errorf("%s: expanded cycle value %v != optimum %v", name, v, want)
				}
			})
		})
	}
}
