// Package prep implements the graph kernelization pipeline that runs ahead
// of every cycle-mean / cycle-ratio solver: a sequence of exact, invertible
// reductions that shrink a strongly connected component before any solver
// iterates over it. Circuit-style workloads (the DAC'99 study's Table 4
// family) are dominated by trivially reducible structure — long
// combinational chains, self-loops, tiny components — so contracting them
// first is almost always cheaper than making the solver walk them.
//
// The reductions, each preserving λ*/ρ* exactly:
//
//  1. Self-loop extraction: a self-loop is a cycle of length one; its exact
//     mean (or ratio) is recorded as a closed-form candidate and the loop is
//     removed from the working graph.
//  2. Chain contraction: an interior node with in-degree = out-degree = 1
//     lies on every cycle through either of its arcs, so the two arcs are
//     spliced into one, accumulating weight and denominator (arc count for
//     the mean problem, transit time for the ratio problem). A splice that
//     closes on itself is a cycle and becomes a candidate instead of a
//     kernel self-loop.
//  3. Tiny-component closed forms: a kernel of ≤ 2 nodes is solved by direct
//     enumeration (after reductions 1–2 its only cycles are two-arc pairs).
//  4. Bound sharpening: every cycle's value is a weighted mediant of its
//     arcs' per-arc values w/t, so min and max arc value bound λ*; the
//     driver feeds the bounds into Lawler's binary search and uses the lower
//     bound for cross-SCC pruning.
//
// Every reduction carries an expansion map (Kernel.ArcPaths) so critical
// cycles are reported in original-graph arc IDs; Kernel.ExpandCycle inverts
// the pipeline exactly, with no float involved anywhere (all candidate
// values are exact rationals from internal/numeric).
//
// The mean problem contracts onto ratio machinery: a contracted kernel arc
// carries t = number of original arcs it replaces, and a kernel cycle's
// value Σw/Σt equals the original cycle's mean exactly. SolveKernel solves
// such kernels with a self-contained Howard-style ratio iteration.
package prep

import (
	"errors"

	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/obs"
)

// Mode selects which objective the kernel must preserve.
type Mode int

const (
	// Mean preserves the minimum cycle mean w(C)/|C|: kernel arc
	// denominators count the original arcs a kernel arc replaces.
	Mean Mode = iota
	// Ratio preserves the minimum cost-to-time ratio w(C)/t(C): kernel arc
	// denominators accumulate transit times.
	Ratio
)

// ErrUnsupported is reported through Kernel.Err when the input falls outside
// what the reductions can handle exactly (negative transit times, or a
// non-positive-denominator cycle in Ratio mode); callers must fall back to
// an unkernelized solve, which will diagnose the input properly.
var ErrUnsupported = errors.New("prep: input unsupported by kernelization")

// Kernel is the reduced form of one strongly connected cyclic graph together
// with everything needed to map results back to the input.
type Kernel struct {
	// G is the kernel graph. Arc weights are accumulated original weights
	// and arc transit times hold the accumulated denominator (arc count in
	// Mean mode, transit in Ratio mode). G has no self-loops. When Solved
	// is true G is empty and no solver run is needed.
	G *graph.Graph

	// NodeMap maps kernel node i to its original node ID.
	NodeMap []graph.NodeID

	// Contracted reports whether any chain contraction occurred, i.e.
	// whether some kernel arc replaces more than one original arc. A
	// contracted Mean-mode kernel must be solved as a ratio instance
	// (SolveKernel); an uncontracted one can go to any mean solver.
	Contracted bool

	// Solved reports that the reductions solved the component outright
	// (everything collapsed into closed-form candidates); Candidate* hold
	// the answer.
	Solved bool

	// HasCandidate reports whether a closed-form candidate cycle was found
	// (self-loop, contraction-closed cycle, or tiny-component enumeration).
	// The final answer is the minimum of CandidateValue and the kernel
	// solver's result.
	HasCandidate   bool
	CandidateValue numeric.Rat

	// Lower and Upper bound the component's λ*/ρ* (min/max over kernel arc
	// values w/t and the candidate value). Valid only when HasBounds is
	// true; Ratio-mode kernels with zero-transit arcs have no arc-local
	// bound and report HasBounds false.
	Lower, Upper numeric.Rat
	HasBounds    bool

	// OrigNodes and OrigArcs record the input size for reduction-ratio
	// reporting.
	OrigNodes, OrigArcs int

	// Err is non-nil when kernelization could not be applied exactly
	// (ErrUnsupported); all other fields except Orig* are then meaningless
	// and the caller must solve the original graph directly.
	Err error

	// ArcPaths maps each kernel arc ID to the original arcs it replaces, in
	// path order. nil when identity (kernel arc IDs equal original IDs).
	ArcPaths [][]graph.ArcID

	// identity is set when no reduction changed the graph, in which case G
	// aliases the input and expansion is the identity.
	identity bool

	candidate []graph.ArcID // best closed-form cycle, in original arc IDs
}

// CandidateCycle returns the closed-form candidate cycle in original arc
// IDs, or nil when HasCandidate is false.
func (k *Kernel) CandidateCycle() []graph.ArcID {
	if !k.HasCandidate {
		return nil
	}
	out := make([]graph.ArcID, len(k.candidate))
	copy(out, k.candidate)
	return out
}

// ExpandCycle maps a cycle of kernel arc IDs back to original arc IDs by
// concatenating each kernel arc's expansion path. The result is a valid
// closed walk of the original graph whose value (mean or ratio, per Mode)
// equals the kernel cycle's value exactly.
func (k *Kernel) ExpandCycle(cycle []graph.ArcID) []graph.ArcID {
	if k.identity || k.ArcPaths == nil {
		out := make([]graph.ArcID, len(cycle))
		copy(out, cycle)
		return out
	}
	total := 0
	for _, id := range cycle {
		total += len(k.ArcPaths[id])
	}
	out := make([]graph.ArcID, 0, total)
	for _, id := range cycle {
		out = append(out, k.ArcPaths[id]...)
	}
	return out
}

// Stats is a flat, copyable summary of one kernelization outcome, shaped for
// observability reporting (internal/obs KernelEvent) and for tests that
// assert on reduction behavior without poking at Kernel internals.
type Stats struct {
	// OrigNodes/OrigArcs and Nodes/Arcs are the component's size before and
	// after reduction; Nodes and Arcs are zero when Solved or Unsupported.
	OrigNodes, OrigArcs int
	Nodes, Arcs         int
	// Contracted, Solved, HasCandidate, HasBounds mirror the Kernel fields.
	Contracted, Solved, HasCandidate, HasBounds bool
	// Unsupported reports Kernel.Err != nil (the caller solves the raw
	// component instead).
	Unsupported bool
}

// TraceEvent shapes the kernelization outcome as an observability event for
// the given component index; the mean and ratio drivers emit it through
// Options.Tracer right after Kernelize.
func (k *Kernel) TraceEvent(comp int) obs.KernelEvent {
	st := k.Stats()
	return obs.KernelEvent{
		Component: comp,
		OrigNodes: st.OrigNodes, OrigArcs: st.OrigArcs,
		Nodes: st.Nodes, Arcs: st.Arcs,
		Contracted: st.Contracted, Solved: st.Solved,
		HasCandidate: st.HasCandidate, HasBounds: st.HasBounds,
		Unsupported: st.Unsupported,
	}
}

// Stats summarizes the kernelization outcome.
func (k *Kernel) Stats() Stats {
	st := Stats{
		OrigNodes:    k.OrigNodes,
		OrigArcs:     k.OrigArcs,
		Contracted:   k.Contracted,
		Solved:       k.Solved,
		HasCandidate: k.HasCandidate,
		HasBounds:    k.HasBounds,
		Unsupported:  k.Err != nil,
	}
	if k.G != nil && k.Err == nil {
		st.Nodes = k.G.NumNodes()
		st.Arcs = k.G.NumArcs()
	}
	return st
}

// NodeReduction returns the fraction of nodes removed by kernelization
// (0 = nothing removed, 1 = everything).
func (k *Kernel) NodeReduction() float64 {
	if k.OrigNodes == 0 {
		return 0
	}
	kn := 0
	if k.G != nil {
		kn = k.G.NumNodes()
	}
	return 1 - float64(kn)/float64(k.OrigNodes)
}

// ArcReduction returns the fraction of arcs removed by kernelization.
func (k *Kernel) ArcReduction() float64 {
	if k.OrigArcs == 0 {
		return 0
	}
	km := 0
	if k.G != nil {
		km = k.G.NumArcs()
	}
	return 1 - float64(km)/float64(k.OrigArcs)
}

// tinyPairLimit caps the two-node closed-form enumeration: beyond this many
// arc pairs the kernel is left to the solver instead (parallel-arc blowup).
const tinyPairLimit = 4096

// Kernelize reduces a strongly connected cyclic graph g. It never fails on
// Mean-mode input; Ratio-mode input with negative transit times or a
// detected non-positive-denominator cycle sets Kernel.Err (the caller then
// solves the original graph, which reports the proper error).
//
// Kernelize does not verify strong connectivity; feeding it a general graph
// yields a kernel whose cycles still correspond exactly to g's cycles, but
// the tiny-component closed forms and bounds assume every kernel arc lies on
// some cycle, which only strong connectivity guarantees.
func Kernelize(g *graph.Graph, mode Mode) *Kernel {
	n, m := g.NumNodes(), g.NumArcs()
	k := &Kernel{OrigNodes: n, OrigArcs: m}
	arcs := g.Arcs()

	// Working arc set. A warc is a node of the contraction DAG held inline in
	// the warcs slice itself: a leaf (r < 0) stands for the single original
	// arc l, a merge node concatenates children l then r. Keeping the DAG in
	// the slice — instead of a heap-allocated path tree per arc — makes
	// kernelization O(1) allocations, which matters because it runs ahead of
	// every solve. denom (t) is the value denominator per Mode.
	type warc struct {
		from, to graph.NodeID
		w, t     int64
		l, r     int32 // children; r < 0 marks a leaf and l is the original arc ID
		plen     int32 // original arcs under this node
		dead     bool
	}
	// Capacity covers every original arc plus one merge per contracted node
	// plus dead candidate markers, so the slice never regrows mid-reduction.
	warcs := make([]warc, 0, m+n)
	candIdx := int32(-1) // warc index of the best closed-form cycle

	// flatten appends the original arcs under root to dst in path order,
	// iteratively so deep chains cannot overflow the goroutine stack.
	var fstack []int32
	flatten := func(root int32, dst []graph.ArcID) []graph.ArcID {
		fstack = append(fstack[:0], root)
		for len(fstack) > 0 {
			i := fstack[len(fstack)-1]
			fstack = fstack[:len(fstack)-1]
			for warcs[i].r >= 0 {
				fstack = append(fstack, warcs[i].r)
				i = warcs[i].l
			}
			dst = append(dst, graph.ArcID(warcs[i].l))
		}
		return dst
	}

	// Incidence lists in one backing array each: per-node capacity equals the
	// initial degree, which contraction never exceeds (each splice removes
	// one incident arc before adding one).
	ins := make([][]int32, n)
	outs := make([][]int32, n)
	indeg := make([]int32, n)
	outdeg := make([]int32, n)
	for _, a := range arcs {
		if a.From == a.To {
			continue
		}
		outdeg[a.From]++
		indeg[a.To]++
	}
	{
		inTot, outTot := 0, 0
		for v := 0; v < n; v++ {
			inTot += int(indeg[v])
			outTot += int(outdeg[v])
		}
		inBack := make([]int32, inTot)
		outBack := make([]int32, outTot)
		inOff, outOff := 0, 0
		for v := 0; v < n; v++ {
			ins[v] = inBack[inOff : inOff : inOff+int(indeg[v])]
			outs[v] = outBack[outOff : outOff : outOff+int(outdeg[v])]
			inOff += int(indeg[v])
			outOff += int(outdeg[v])
		}
	}

	reduced := false // any reduction applied?
	addCandidate := func(w, t int64) (improved, ok bool) {
		if t <= 0 {
			// Only reachable in Ratio mode: a cycle with non-positive total
			// transit has no defined ratio. Let the raw solver diagnose it.
			k.Err = ErrUnsupported
			return false, false
		}
		val := numeric.NewRat(w, t)
		if !k.HasCandidate || val.Less(k.CandidateValue) {
			k.CandidateValue = val
			k.HasCandidate = true
			return true, true
		}
		return false, true
	}

	// Reduction 1: self-loop extraction.
	for id, a := range arcs {
		t := int64(1)
		if mode == Ratio {
			if a.Transit < 0 {
				k.Err = ErrUnsupported
				return k
			}
			t = a.Transit
		}
		if a.From == a.To {
			reduced = true
			imp, ok := addCandidate(a.Weight, t)
			if !ok {
				return k
			}
			if imp {
				candIdx = int32(len(warcs))
				warcs = append(warcs, warc{l: int32(id), r: -1, plen: 1, dead: true})
			}
			continue
		}
		wi := int32(len(warcs))
		warcs = append(warcs, warc{from: a.From, to: a.To, w: a.Weight, t: t, l: int32(id), r: -1, plen: 1})
		outs[a.From] = append(outs[a.From], wi)
		ins[a.To] = append(ins[a.To], wi)
	}

	// Reduction 2: chain contraction. removeFrom is a swap-delete on the
	// small per-node incidence lists.
	removeFrom := func(list []int32, id int32) []int32 {
		for i, v := range list {
			if v == id {
				list[i] = list[len(list)-1]
				return list[:len(list)-1]
			}
		}
		return list
	}
	removed := make([]bool, n)
	queue := make([]graph.NodeID, 0, n)
	for v := 0; v < n; v++ {
		if len(ins[v]) == 1 && len(outs[v]) == 1 {
			queue = append(queue, graph.NodeID(v))
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if removed[v] || len(ins[v]) != 1 || len(outs[v]) != 1 {
			continue
		}
		ain, aout := ins[v][0], outs[v][0]
		// No self-loops exist in the working set, so ain ≠ aout and the
		// spliced arc's endpoints differ from v.
		u, w := warcs[ain].from, warcs[aout].to
		merged := warc{
			from: u, to: w,
			w: warcs[ain].w + warcs[aout].w,
			t: warcs[ain].t + warcs[aout].t,
			l: ain, r: aout,
			plen: warcs[ain].plen + warcs[aout].plen,
		}
		warcs[ain].dead = true
		warcs[aout].dead = true
		ins[v], outs[v] = nil, nil
		removed[v] = true
		reduced = true
		outs[u] = removeFrom(outs[u], ain)
		ins[w] = removeFrom(ins[w], aout)
		if u == w {
			// The splice closed a cycle: record it, don't re-add a loop.
			imp, ok := addCandidate(merged.w, merged.t)
			if !ok {
				return k
			}
			if imp {
				merged.dead = true
				candIdx = int32(len(warcs))
				warcs = append(warcs, merged)
			}
			if !removed[u] && len(ins[u]) == 1 && len(outs[u]) == 1 {
				queue = append(queue, u)
			}
			continue
		}
		wi := int32(len(warcs))
		warcs = append(warcs, merged)
		outs[u] = append(outs[u], wi)
		ins[w] = append(ins[w], wi)
	}

	if !reduced {
		// Identity: nothing to map, reuse the input graph as the kernel.
		// The tiny-component closed form still applies (a two-node graph
		// with parallel arcs both ways reduces nothing yet is enumerable).
		k.G = g
		k.identity = true
		if n == 2 && m > 0 {
			k.solveTwoNode(mode)
		}
		k.computeBounds(mode)
		return k
	}

	// Assemble the kernel graph over the surviving nodes.
	nodeOf := make([]graph.NodeID, n) // original -> kernel, -1 if dropped
	for i := range nodeOf {
		nodeOf[i] = -1
	}
	var kNodes []graph.NodeID
	alive, pathTot := 0, 0
	for i := range warcs {
		if !warcs[i].dead {
			alive++
			pathTot += int(warcs[i].plen)
		}
	}
	kArcs := make([]graph.Arc, 0, alive)
	kPaths := make([][]graph.ArcID, 0, alive)
	// All expansion paths share one exactly-sized backing array; each kernel
	// arc's path is a full-capacity subslice of it.
	backing := make([]graph.ArcID, 0, pathTot)
	for i := range warcs {
		a := &warcs[i]
		if a.dead {
			continue
		}
		for _, end := range [2]graph.NodeID{a.from, a.to} {
			if nodeOf[end] < 0 {
				nodeOf[end] = graph.NodeID(len(kNodes))
				kNodes = append(kNodes, end)
			}
		}
		kArcs = append(kArcs, graph.Arc{
			From: nodeOf[a.from], To: nodeOf[a.to],
			Weight: a.w, Transit: a.t,
		})
		start := len(backing)
		backing = flatten(int32(i), backing)
		kPaths = append(kPaths, backing[start:len(backing):len(backing)])
		if a.plen > 1 {
			k.Contracted = true
		}
	}
	k.G = graph.FromArcs(len(kNodes), kArcs)
	k.NodeMap = kNodes
	k.ArcPaths = kPaths
	if candIdx >= 0 {
		k.candidate = flatten(candIdx, make([]graph.ArcID, 0, warcs[candIdx].plen))
	}

	// Reduction 3: tiny-component closed forms.
	switch {
	case len(kNodes) == 0:
		k.Solved = true
	case len(kNodes) == 2 && len(kArcs) > 0:
		k.solveTwoNode(mode)
	}
	k.computeBounds(mode)
	return k
}

// solveTwoNode enumerates all two-arc cycles of a two-node kernel. After
// self-loop extraction and chain contraction every cycle of such a kernel is
// a forward arc plus a backward arc, so the minimum over all pairs is exact.
func (k *Kernel) solveTwoNode(mode Mode) {
	var fwd, bwd []graph.ArcID
	for id := graph.ArcID(0); int(id) < k.G.NumArcs(); id++ {
		if k.G.Arc(id).From == 0 {
			fwd = append(fwd, id)
		} else {
			bwd = append(bwd, id)
		}
	}
	if len(fwd) == 0 || len(bwd) == 0 {
		// No cycle through the pair (cannot happen for a strongly connected
		// component, but stay safe): leave Solved unset.
		return
	}
	if len(fwd)*len(bwd) > tinyPairLimit {
		return // leave the multigraph blowup to the solver
	}
	// Identity kernels alias the input: each arc maps to itself and, in Mean
	// mode, the denominator is the arc count (1), not the Transit field.
	pathOf := func(id graph.ArcID) []graph.ArcID {
		if k.ArcPaths == nil {
			return []graph.ArcID{id}
		}
		return k.ArcPaths[id]
	}
	denom := func(a graph.Arc) int64 {
		if k.identity && mode == Mean {
			return 1
		}
		return a.Transit
	}
	for _, f := range fwd {
		af := k.G.Arc(f)
		for _, b := range bwd {
			ab := k.G.Arc(b)
			t := denom(af) + denom(ab)
			if t <= 0 {
				k.Err = ErrUnsupported
				return
			}
			val := numeric.NewRat(af.Weight+ab.Weight, t)
			if !k.HasCandidate || val.Less(k.CandidateValue) {
				k.CandidateValue = val
				pf, pb := pathOf(f), pathOf(b)
				k.candidate = append(append(make([]graph.ArcID, 0, len(pf)+len(pb)), pf...), pb...)
				k.HasCandidate = true
			}
		}
	}
	k.Solved = true
}

// computeBounds derives Lower/Upper from kernel arc values and the
// candidate: every cycle value Σw/Σt is a weighted mediant of its arcs'
// w/t, so it lies between the extreme arc values; and the candidate is an
// achieved cycle value, so λ* ≤ candidate — it caps Upper, never raises it.
func (k *Kernel) computeBounds(mode Mode) {
	if k.Err != nil {
		return
	}
	have := false
	if k.G != nil && !k.Solved {
		for _, a := range k.G.Arcs() {
			t := a.Transit
			if k.identity && mode == Mean {
				t = 1 // identity kernels alias the input; mean denominators are arc counts
			}
			if t <= 0 {
				// A zero-transit arc contributes weight but no denominator;
				// its presence can push a cycle's ratio arbitrarily far, so
				// no arc-local bound holds. Disable bounds conservatively.
				have = false
				break
			}
			val := numeric.NewRat(a.Weight, t)
			if !have {
				k.Lower, k.Upper = val, val
				have = true
				continue
			}
			if val.Less(k.Lower) {
				k.Lower = val
			}
			if k.Upper.Less(val) {
				k.Upper = val
			}
		}
	} else if k.Solved && k.HasCandidate {
		k.Lower, k.Upper = k.CandidateValue, k.CandidateValue
		have = true
	}
	if have && k.HasCandidate {
		c := k.CandidateValue
		if c.Less(k.Lower) {
			k.Lower = c
		}
		if c.Less(k.Upper) {
			k.Upper = c
		}
	}
	if !have {
		k.Lower, k.Upper = numeric.Rat{}, numeric.Rat{}
		k.HasBounds = false
		return
	}
	k.HasBounds = true
}
