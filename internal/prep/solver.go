package prep

import (
	"errors"
	"math"

	"repro/internal/counter"
	"repro/internal/graph"
	"repro/internal/numeric"
)

// Solver errors. The kernelized drivers treat any SolveKernel failure as a
// signal to fall back to an unkernelized solve of the original component, so
// these are safety valves, not user-facing diagnostics.
var (
	// ErrSolverLimit means policy iteration hit its iteration cap.
	ErrSolverLimit = errors.New("prep: kernel solver iteration limit exceeded")
	// ErrSolverRange means the exact certification arithmetic would
	// overflow int64 for this kernel's weight/denominator magnitudes.
	ErrSolverRange = errors.New("prep: kernel values exceed the exact arithmetic range")
	// ErrSolverInput means the kernel is not strongly connected (some node
	// has no out-arc) — possible only through driver misuse.
	ErrSolverInput = errors.New("prep: kernel is not strongly connected")
)

// SolveKernel computes the exact minimum cycle ratio Σw(C)/Σt(C) of a
// strongly connected kernel graph whose arcs carry positive denominators in
// their Transit field — the form Kernelize produces for contracted Mean-mode
// kernels (t = original arc count). It is Howard's policy iteration in ratio
// form, identical in structure to internal/ratio's solver but self-contained
// so the core driver can use it without an import cycle.
//
// The returned cycle is in kernel arc IDs (expand with Kernel.ExpandCycle);
// the returned ratio is always exact: convergence is certified with an exact
// integer Bellman–Ford feasibility pass before returning.
func SolveKernel(g *graph.Graph, counts *counter.Counts) (numeric.Rat, []graph.ArcID, error) {
	n := g.NumNodes()
	if n == 0 || g.NumArcs() == 0 {
		return numeric.Rat{}, nil, ErrSolverInput
	}

	// The bias threshold must scale with the full magnitude of the bias
	// terms w − ρ·t, which is bounded by the weight scale times the transit
	// (denominator) range — a weight-only eps is drowned by float round-off
	// when kernel denominators are large (see ratio's ratioBiasEpsilon).
	minW, maxW := g.WeightRange()
	scale := math.Max(1, math.Max(math.Abs(float64(minW)), math.Abs(float64(maxW))))
	_, maxT := g.TransitRange()
	eps := 1e-10 * scale * math.Max(1, float64(maxT))

	// Initial policy: cheapest out-arc by weight.
	policy := make([]graph.ArcID, n)
	for v := graph.NodeID(0); int(v) < n; v++ {
		policy[v] = -1
		best := int64(0)
		for _, id := range g.OutArcs(v) {
			if w := g.Arc(id).Weight; policy[v] < 0 || w < best {
				best = w
				policy[v] = id
			}
		}
		if policy[v] < 0 {
			return numeric.Rat{}, nil, ErrSolverInput
		}
	}

	gain := make([]numeric.Rat, n)
	gainRank := make([]int32, n)
	gainSet := make([]bool, n)
	cycleGains := make([]numeric.Rat, 0, 8)
	cycleSeq := make([]int32, n)
	d := make([]float64, n)
	childHead := make([]int32, n)
	childNext := make([]int32, n)
	queue := make([]graph.NodeID, 0, n)
	var bestCyc []graph.ArcID

	maxIter := 100*n + 1000
	for iter := 0; iter < maxIter; iter++ {
		if counts != nil {
			counts.Iterations++
		}

		// Value determination: per-basin gain and bias.
		cycleGains = cycleGains[:0]
		for i := range childHead {
			childHead[i] = -1
			gainSet[i] = false
		}
		for v := 0; v < n; v++ {
			u := g.Arc(policy[v]).To
			childNext[v] = childHead[u]
			childHead[u] = int32(v)
		}
		var (
			bestGain numeric.Rat
			haveBest bool
		)
		kernelPolicyCycles(g, policy, func(cycle []graph.ArcID) {
			if counts != nil {
				counts.CyclesExamined++
			}
			t := g.CycleTransit(cycle)
			if t <= 0 {
				return // impossible for Mean-mode kernels (t >= 1 per arc)
			}
			r := numeric.NewRat(g.CycleWeight(cycle), t)
			if !haveBest || r.Less(bestGain) {
				bestGain = r
				bestCyc = append(bestCyc[:0], cycle...)
				haveBest = true
			}
			rf := r.Float64()
			// Normalization node: smallest node on the cycle keeps its
			// previous bias (continuity; prevents bias oscillation).
			s := g.Arc(cycle[0]).From
			for _, id := range cycle {
				if from := g.Arc(id).From; from < s {
					s = from
				}
			}
			seq := int32(len(cycleGains))
			cycleGains = append(cycleGains, r)
			gain[s] = r
			cycleSeq[s] = seq
			gainSet[s] = true
			queue = append(queue[:0], s)
			for qi := 0; qi < len(queue); qi++ {
				u := queue[qi]
				for c := childHead[u]; c >= 0; c = childNext[c] {
					v := graph.NodeID(c)
					if gainSet[v] {
						continue
					}
					gainSet[v] = true
					gain[v] = r
					cycleSeq[v] = seq
					a := g.Arc(policy[v])
					d[v] = d[a.To] + float64(a.Weight) - rf*float64(a.Transit)
					queue = append(queue, v)
				}
			}
		})
		if !haveBest {
			return numeric.Rat{}, nil, ErrSolverLimit
		}
		ranks := numeric.Ranks(cycleGains)
		for v := 0; v < n; v++ {
			gainRank[v] = ranks[cycleSeq[v]]
		}

		// Policy improvement: lexicographic (exact gain, then float bias).
		improved := false
		for u := graph.NodeID(0); int(u) < n; u++ {
			curArc := g.Arc(policy[u])
			curRank := gainRank[curArc.To]
			curVal := d[curArc.To] + float64(curArc.Weight) - gain[curArc.To].Float64()*float64(curArc.Transit)
			bestArc := policy[u]
			bestRank := curRank
			bestVal := curVal
			for _, id := range g.OutArcs(u) {
				if counts != nil {
					counts.Relaxations++
				}
				a := g.Arc(id)
				switch rv := gainRank[a.To]; {
				case rv < bestRank:
					bestRank = rv
					bestVal = d[a.To] + float64(a.Weight) - gain[a.To].Float64()*float64(a.Transit)
					bestArc = id
				case rv == bestRank:
					if val := d[a.To] + float64(a.Weight) - gain[a.To].Float64()*float64(a.Transit); val < bestVal {
						bestVal = val
						bestArc = id
					}
				}
			}
			if bestArc == policy[u] {
				continue
			}
			if bestRank < curRank {
				policy[u] = bestArc
				improved = true
			} else if bestVal < curVal {
				policy[u] = bestArc
				if curVal-bestVal > eps {
					improved = true
				}
			}
		}

		if !improved {
			neg, err := kernelHasNegativeCycle(g, bestGain.Num(), bestGain.Den(), counts)
			if err != nil {
				return numeric.Rat{}, nil, err
			}
			if !neg {
				cycle := make([]graph.ArcID, len(bestCyc))
				copy(cycle, bestCyc)
				return bestGain, cycle, nil
			}
			eps /= 2
		}
	}
	return numeric.Rat{}, nil, ErrSolverLimit
}

// kernelHasNegativeCycle reports whether some cycle C has
// q·w(C) − p·t(C) < 0, i.e. value(C) < p/q — the exact Bellman–Ford
// certificate for the converged policy gain. It fails with ErrSolverRange
// when the scaled arithmetic could overflow int64.
func kernelHasNegativeCycle(g *graph.Graph, p, q int64, counts *counter.Counts) (bool, error) {
	n := g.NumNodes()
	// Overflow guard: distances are sums of at most n reduced weights.
	var perArc int64
	for _, a := range g.Arcs() {
		m1, ok1 := mulAbs(q, a.Weight)
		m2, ok2 := mulAbs(p, a.Transit)
		if !ok1 || !ok2 || m1 > math.MaxInt64-m2 {
			return false, ErrSolverRange
		}
		if s := m1 + m2; s > perArc {
			perArc = s
		}
	}
	const safe = int64(1) << 62
	if perArc > 0 && int64(n+1) > safe/perArc {
		return false, ErrSolverRange
	}

	if counts != nil {
		counts.NegativeCycleChecks++
	}
	dist := make([]int64, n)
	arcs := g.Arcs()
	for pass := 0; pass < n; pass++ {
		changed := false
		for _, a := range arcs {
			if counts != nil {
				counts.Relaxations++
			}
			w := q*a.Weight - p*a.Transit
			if nd := dist[a.From] + w; nd < dist[a.To] {
				dist[a.To] = nd
				changed = true
			}
		}
		if !changed {
			return false, nil
		}
	}
	return true, nil
}

// mulAbs returns |a·b| with an overflow flag.
func mulAbs(a, b int64) (int64, bool) {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	if a == 0 || b == 0 {
		return 0, true
	}
	if a > math.MaxInt64/b {
		return 0, false
	}
	return a * b, true
}

// kernelPolicyCycles finds the cycles of an out-degree-one policy graph;
// fn receives each cycle's arcs in forward order (the slice is reused).
func kernelPolicyCycles(g *graph.Graph, policy []graph.ArcID, fn func(cycle []graph.ArcID)) {
	n := len(policy)
	state := make([]int32, n)
	walkPos := make([]int32, n)
	var walk []graph.NodeID
	var cycle []graph.ArcID
	for root := 0; root < n; root++ {
		if state[root] != 0 {
			continue
		}
		walk = walk[:0]
		v := graph.NodeID(root)
		for state[v] == 0 {
			state[v] = 1
			walkPos[v] = int32(len(walk))
			walk = append(walk, v)
			v = g.Arc(policy[v]).To
		}
		if state[v] == 1 {
			start := walkPos[v]
			cycle = cycle[:0]
			for i := start; i < int32(len(walk)); i++ {
				cycle = append(cycle, policy[walk[i]])
			}
			fn(cycle)
		}
		for _, u := range walk {
			state[u] = 2
		}
	}
}
