package circuit

import (
	"fmt"
)

// GenConfig parameterizes the synthetic sequential-circuit generator. The
// generator produces cyclic control/datapath-like circuits: a ring of
// flip-flops ensures sequential feedback (so the latch graph is cyclic, as
// the paper's benchmark selection required — "cyclic sequential multi-level
// logic benchmark circuits"), and random combinational clouds of bounded
// depth connect them, giving the sparse shallow structure typical of the
// MCNC benchmarks.
type GenConfig struct {
	// FFs is the number of flip-flops (>= 1).
	FFs int
	// CloudGates is the number of combinational gates per cloud (>= 1).
	CloudGates int
	// MaxFanin bounds gate fan-in (>= 2).
	MaxFanin int
	// Feedback adds this many extra random FF-output → cloud connections
	// beyond the ring, creating shorter feedback cycles.
	Feedback int
	// PIs is the number of primary inputs (>= 1).
	PIs int
	// Seed drives the deterministic generator.
	Seed uint64
}

// splitmix64 is the same deterministic RNG core used by internal/gen.
type splitmix struct{ state uint64 }

func (r *splitmix) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *splitmix) intn(n int) int {
	if n <= 0 {
		panic("circuit: intn on non-positive bound")
	}
	return int(r.next() % uint64(n))
}

// Generate builds a synthetic cyclic sequential circuit. The i-th cloud
// reads FF i (plus random PIs and extra feedback FFs) and drives FF i+1
// (mod FFs), so the latch graph always contains the full FF ring plus the
// extra feedback arcs.
func Generate(cfg GenConfig) (*Netlist, error) {
	if cfg.FFs < 1 || cfg.CloudGates < 1 || cfg.PIs < 1 {
		return nil, fmt.Errorf("circuit: GenConfig needs FFs, CloudGates, PIs >= 1, got %+v", cfg)
	}
	if cfg.MaxFanin < 2 {
		cfg.MaxFanin = 2
	}
	r := &splitmix{state: cfg.Seed + 0x5bf03635}
	nl := &Netlist{byName: make(map[string]int32)}
	add := func(name string, t GateType, fanin ...int32) int32 {
		id := int32(len(nl.Gates))
		nl.Gates = append(nl.Gates, Gate{Name: name, Type: t, Fanin: fanin, Delay: 1})
		nl.byName[name] = id
		return id
	}

	pis := make([]int32, cfg.PIs)
	for i := range pis {
		pis[i] = add(fmt.Sprintf("PI%d", i), Input)
	}
	// Flip-flops are declared first with empty fan-in; clouds fill them in.
	ffs := make([]int32, cfg.FFs)
	for i := range ffs {
		ffs[i] = add(fmt.Sprintf("FF%d", i), DFF)
	}

	combTypes := []GateType{And, Nand, Or, Nor, Xor, Not, Buf}
	for i := 0; i < cfg.FFs; i++ {
		// Source signals available to cloud i: FF i, one or two random PIs,
		// plus possible extra feedback FFs.
		sources := []int32{ffs[i], pis[r.intn(cfg.PIs)]}
		if r.intn(2) == 0 {
			sources = append(sources, pis[r.intn(cfg.PIs)])
		}
		var cloud []int32
		for gi := 0; gi < cfg.CloudGates; gi++ {
			t := combTypes[r.intn(len(combTypes))]
			nIn := 1
			if t != Not && t != Buf {
				nIn = 2 + r.intn(cfg.MaxFanin-1)
			}
			pool := append(append([]int32{}, sources...), cloud...)
			fanin := make([]int32, 0, nIn)
			for len(fanin) < nIn {
				fanin = append(fanin, pool[r.intn(len(pool))])
			}
			cloud = append(cloud, add(fmt.Sprintf("C%d_%d", i, gi), t, fanin...))
		}
		// The cloud's last gate drives the next FF in the ring.
		next := ffs[(i+1)%cfg.FFs]
		nl.Gates[next].Fanin = []int32{cloud[len(cloud)-1]}
	}

	// Extra feedback: rewire a random cloud gate to also read a random FF,
	// creating shortcut cycles in the latch graph.
	for f := 0; f < cfg.Feedback; f++ {
		// Pick a random combinational gate and substitute one of its inputs.
		var combIdx []int32
		for i, g := range nl.Gates {
			if g.Type.IsCombinational() && len(g.Fanin) >= 2 {
				combIdx = append(combIdx, int32(i))
			}
		}
		if len(combIdx) == 0 {
			break
		}
		g := combIdx[r.intn(len(combIdx))]
		nl.Gates[g].Fanin[r.intn(len(nl.Gates[g].Fanin))] = ffs[r.intn(cfg.FFs)]
	}

	// Primary outputs: observe a few FFs.
	nOut := 1 + cfg.FFs/8
	for i := 0; i < nOut; i++ {
		ff := ffs[(i*7)%cfg.FFs]
		sig := nl.Gates[ff].Name
		out := add(sig+".out", Output, ff)
		_ = out
	}
	return nl, nil
}

// GeneratePipeline builds a deep linear pipeline with a single feedback
// loop: `stages` register stages, each separated by a chain of `depth`
// combinational gates, with the last stage feeding back to the first. The
// latch graph is (close to) one long cycle — exactly the shallow, chain-
// like structure of the deep MCNC circuits on which the paper found the
// DG algorithm to beat Karp's so clearly (its breadth-first unfolding
// stays one node wide).
func GeneratePipeline(stages, depth int, seed uint64) (*Netlist, error) {
	if stages < 2 || depth < 1 {
		return nil, fmt.Errorf("circuit: pipeline needs stages >= 2 and depth >= 1, got %d/%d", stages, depth)
	}
	r := &splitmix{state: seed + 0x1f3d5b79}
	nl := &Netlist{byName: make(map[string]int32)}
	add := func(name string, t GateType, fanin ...int32) int32 {
		id := int32(len(nl.Gates))
		nl.Gates = append(nl.Gates, Gate{Name: name, Type: t, Fanin: fanin, Delay: 1})
		nl.byName[name] = id
		return id
	}
	pi := add("PI0", Input)
	ffs := make([]int32, stages)
	for i := range ffs {
		ffs[i] = add(fmt.Sprintf("FF%d", i), DFF)
	}
	unary := []GateType{Not, Buf}
	for i := 0; i < stages; i++ {
		prev := ffs[i]
		for d := 0; d < depth; d++ {
			if d == 0 && i == 0 {
				// Only the first stage sees the primary input, through a
				// two-input gate.
				prev = add(fmt.Sprintf("P%d_%d", i, d), And, prev, pi)
				continue
			}
			prev = add(fmt.Sprintf("P%d_%d", i, d), unary[r.intn(len(unary))], prev)
		}
		nl.Gates[ffs[(i+1)%stages]].Fanin = []int32{prev}
	}
	add("FF0.out", Output, ffs[0])
	return nl, nil
}
