package circuit

import (
	"fmt"

	"repro/internal/graph"
)

// LatchGraphMinMax extracts the latch-to-latch timing graph with both
// delay extremes per register pair: the returned graph's arc weights are
// the maximum combinational delays (as in LatchGraph) and minDelay[arcID]
// is the minimum combinational delay over the same paths. Hold-time
// analysis needs the minimum (a too-fast path can race through before the
// capturing clock edge), setup analysis the maximum; perf.ScheduleSetupHold
// consumes both.
func LatchGraphMinMax(nl *Netlist) (g *graph.Graph, minDelay []int64, err error) {
	n := len(nl.Gates)
	ffs := nl.ByType(DFF)

	fanout := make([][]int32, n)
	indeg := make([]int32, n)
	for gi, gate := range nl.Gates {
		if !gate.Type.IsCombinational() {
			continue
		}
		for _, f := range gate.Fanin {
			fanout[f] = append(fanout[f], int32(gi))
			if nl.Gates[f].Type.IsCombinational() {
				indeg[gi]++
			}
		}
	}
	topo := make([]int32, 0, n)
	combCount := 0
	for gi, gate := range nl.Gates {
		if gate.Type.IsCombinational() {
			combCount++
			if indeg[gi] == 0 {
				topo = append(topo, int32(gi))
			}
		}
	}
	for qi := 0; qi < len(topo); qi++ {
		for _, succ := range fanout[topo[qi]] {
			if !nl.Gates[succ].Type.IsCombinational() {
				continue
			}
			indeg[succ]--
			if indeg[succ] == 0 {
				topo = append(topo, succ)
			}
		}
	}
	if len(topo) != combCount {
		return nil, nil, fmt.Errorf("circuit: combinational loop detected")
	}

	nLatch := len(ffs) + 1
	b := graph.NewBuilder(nLatch, nLatch*4)
	b.AddNodes(nLatch)

	const unreached = int64(-1)
	maxDist := make([]int64, n)
	minDist := make([]int64, n)
	sweep := func(sources []int32, fromNode graph.NodeID) {
		for i := range maxDist {
			maxDist[i] = unreached
			minDist[i] = unreached
		}
		for _, s := range sources {
			maxDist[s] = 0
			minDist[s] = 0
		}
		for _, gi := range topo {
			gate := nl.Gates[gi]
			bestMax, bestMin := unreached, unreached
			for _, f := range gate.Fanin {
				if maxDist[f] == unreached {
					continue
				}
				if maxDist[f] > bestMax {
					bestMax = maxDist[f]
				}
				if bestMin == unreached || minDist[f] < bestMin {
					bestMin = minDist[f]
				}
			}
			if bestMax == unreached {
				continue
			}
			maxDist[gi] = bestMax + gate.Delay
			minDist[gi] = bestMin + gate.Delay
		}
		var hostMax, hostMin int64 = unreached, unreached
		for _, gi := range nl.ByType(Output) {
			for _, f := range nl.Gates[gi].Fanin {
				if maxDist[f] == unreached {
					continue
				}
				if maxDist[f] > hostMax {
					hostMax = maxDist[f]
				}
				if hostMin == unreached || minDist[f] < hostMin {
					hostMin = minDist[f]
				}
			}
		}
		for i, ff := range ffs {
			for _, f := range nl.Gates[ff].Fanin {
				if maxDist[f] == unreached {
					continue
				}
				b.AddArc(fromNode, graph.NodeID(i+1), maxDist[f])
				minDelay = append(minDelay, minDist[f])
			}
		}
		if hostMax != unreached && fromNode != HostNode {
			b.AddArc(fromNode, HostNode, hostMax)
			minDelay = append(minDelay, hostMin)
		}
	}

	for i, ff := range ffs {
		sweep([]int32{ff}, graph.NodeID(i+1))
	}
	sweep(nl.ByType(Input), HostNode)
	return b.Build(), minDelay, nil
}
