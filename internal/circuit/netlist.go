// Package circuit is the sequential-circuit substrate standing in for the
// 1991 MCNC logic synthesis benchmarks the paper used (see DESIGN.md §5):
// an ISCAS'89-style ".bench" netlist representation with parser and writer
// (so real benchmark files drop in unchanged), a synthetic generator of
// cyclic sequential circuits, and the extraction of the latch-to-latch
// timing graph on which the cycle-mean algorithms run.
//
// The timing graph is the standard performance-analysis model: one node per
// D flip-flop plus one host node for the primary inputs/outputs, and an arc
// i → j weighted with the maximum combinational delay from register i's
// output to register j's input. The maximum cycle mean of this graph is the
// retiming lower bound on the clock period; the paper's algorithms compute
// it (as a minimum mean on negated weights).
package circuit

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// GateType enumerates the cell types of the .bench format.
type GateType int

// Gate types. Input and Output are the primary I/O pseudo-gates; DFF is the
// only sequential element, as in ISCAS'89.
const (
	Input GateType = iota
	Output
	DFF
	And
	Nand
	Or
	Nor
	Xor
	Xnor
	Not
	Buf
)

var typeNames = map[GateType]string{
	Input: "INPUT", Output: "OUTPUT", DFF: "DFF",
	And: "AND", Nand: "NAND", Or: "OR", Nor: "NOR",
	Xor: "XOR", Xnor: "XNOR", Not: "NOT", Buf: "BUFF",
}

var nameTypes = func() map[string]GateType {
	m := make(map[string]GateType, len(typeNames))
	for k, v := range typeNames {
		m[v] = k
	}
	m["BUF"] = Buf // accept both spellings
	return m
}()

// String returns the .bench spelling of the gate type.
func (t GateType) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("GateType(%d)", int(t))
}

// IsCombinational reports whether the type is a combinational gate (not an
// I/O pseudo-gate and not a flip-flop).
func (t GateType) IsCombinational() bool {
	switch t {
	case Input, Output, DFF:
		return false
	}
	return true
}

// Gate is one cell of a netlist. Fanin lists driver gate indices; Delay is
// the gate's propagation delay (unit by default — path weight is then the
// gate count, the usual abstraction in the benchmarks).
type Gate struct {
	Name  string
	Type  GateType
	Fanin []int32
	Delay int64
}

// Netlist is a gate-level sequential circuit.
type Netlist struct {
	Gates  []Gate
	byName map[string]int32
}

// NumGates returns the number of gates (including I/O pseudo-gates).
func (nl *Netlist) NumGates() int { return len(nl.Gates) }

// GateID returns the index of the named gate, or -1.
func (nl *Netlist) GateID(name string) int32 {
	if id, ok := nl.byName[name]; ok {
		return id
	}
	return -1
}

// ByType returns the indices of all gates of the given type, in index order.
func (nl *Netlist) ByType(t GateType) []int32 {
	var out []int32
	for i, g := range nl.Gates {
		if g.Type == t {
			out = append(out, int32(i))
		}
	}
	return out
}

// Counts summarizes the netlist: primary inputs, outputs, flip-flops and
// combinational gates.
func (nl *Netlist) Counts() (pis, pos, ffs, comb int) {
	for _, g := range nl.Gates {
		switch {
		case g.Type == Input:
			pis++
		case g.Type == Output:
			pos++
		case g.Type == DFF:
			ffs++
		default:
			comb++
		}
	}
	return
}

// ParseBench reads an ISCAS'89-style .bench netlist:
//
//	# comment
//	INPUT(G0)
//	OUTPUT(G17)
//	G10 = DFF(G14)
//	G11 = NAND(G0, G10)
//
// Signals referenced before definition are resolved in a second pass. Every
// gate gets unit delay; adjust Gate.Delay afterwards for non-unit models.
func ParseBench(r io.Reader) (*Netlist, error) {
	nl := &Netlist{byName: make(map[string]int32)}
	type pending struct {
		gate   int32
		inputs []string
		line   int
	}
	var pendings []pending

	ensure := func(name string, t GateType, define bool) int32 {
		if id, ok := nl.byName[name]; ok {
			if define && nl.Gates[id].Type == Buf && t != Buf {
				// A forward reference was materialized as a placeholder
				// buffer; specialize it now.
				nl.Gates[id].Type = t
			}
			return id
		}
		id := int32(len(nl.Gates))
		nl.Gates = append(nl.Gates, Gate{Name: name, Type: t, Delay: 1})
		nl.byName[name] = id
		return id
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		upper := strings.ToUpper(line)
		switch {
		case strings.HasPrefix(upper, "INPUT(") || strings.HasPrefix(upper, "OUTPUT("):
			open := strings.IndexByte(line, '(')
			close_ := strings.LastIndexByte(line, ')')
			if open < 0 || close_ < open {
				return nil, fmt.Errorf("circuit: line %d: malformed I/O declaration %q", lineNo, line)
			}
			name := strings.TrimSpace(line[open+1 : close_])
			if strings.HasPrefix(upper, "INPUT(") {
				ensure(name, Input, true)
			} else {
				// OUTPUT(x) declares a port reading signal x: model it as an
				// Output pseudo-gate named x.out driven by x.
				sig := ensure(name, Buf, false)
				out := ensure(name+".out", Output, true)
				nl.Gates[out].Fanin = []int32{sig}
			}
		default:
			eq := strings.IndexByte(line, '=')
			if eq < 0 {
				return nil, fmt.Errorf("circuit: line %d: expected assignment, got %q", lineNo, line)
			}
			name := strings.TrimSpace(line[:eq])
			rhs := strings.TrimSpace(line[eq+1:])
			open := strings.IndexByte(rhs, '(')
			close_ := strings.LastIndexByte(rhs, ')')
			if open < 0 || close_ < open {
				return nil, fmt.Errorf("circuit: line %d: malformed gate %q", lineNo, line)
			}
			tname := strings.ToUpper(strings.TrimSpace(rhs[:open]))
			t, ok := nameTypes[tname]
			if !ok {
				return nil, fmt.Errorf("circuit: line %d: unknown gate type %q", lineNo, tname)
			}
			id := ensure(name, t, true)
			nl.Gates[id].Type = t
			var inputs []string
			for _, tok := range strings.Split(rhs[open+1:close_], ",") {
				tok = strings.TrimSpace(tok)
				if tok != "" {
					inputs = append(inputs, tok)
				}
			}
			if len(inputs) == 0 {
				return nil, fmt.Errorf("circuit: line %d: gate %s has no inputs", lineNo, name)
			}
			pendings = append(pendings, pending{gate: id, inputs: inputs, line: lineNo})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, p := range pendings {
		fanin := make([]int32, len(p.inputs))
		for i, in := range p.inputs {
			id, ok := nl.byName[in]
			if !ok {
				return nil, fmt.Errorf("circuit: line %d: undefined signal %q", p.line, in)
			}
			fanin[i] = id
		}
		nl.Gates[p.gate].Fanin = fanin
	}
	return nl, nil
}

// WriteBench serializes the netlist in .bench syntax. Output pseudo-gates
// named "<sig>.out" are emitted as OUTPUT(<sig>) declarations.
func (nl *Netlist) WriteBench(w io.Writer) error {
	bw := bufio.NewWriter(w)
	pis, pos, ffs, comb := nl.Counts()
	fmt.Fprintf(bw, "# %d inputs, %d outputs, %d flip-flops, %d gates\n", pis, pos, ffs, comb)
	for _, g := range nl.Gates {
		if g.Type == Input {
			fmt.Fprintf(bw, "INPUT(%s)\n", g.Name)
		}
	}
	for _, g := range nl.Gates {
		if g.Type == Output {
			fmt.Fprintf(bw, "OUTPUT(%s)\n", strings.TrimSuffix(g.Name, ".out"))
		}
	}
	for _, g := range nl.Gates {
		if g.Type == Input || g.Type == Output {
			continue
		}
		names := make([]string, len(g.Fanin))
		for i, f := range g.Fanin {
			names[i] = nl.Gates[f].Name
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", g.Name, g.Type, strings.Join(names, ", "))
	}
	return bw.Flush()
}

// sortedNames returns all gate names sorted (testing helper; deterministic
// iteration over the name map).
func (nl *Netlist) sortedNames() []string {
	out := make([]string, 0, len(nl.byName))
	for name := range nl.byName {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// DelayModel maps gate types to propagation delays; see ApplyDelayModel.
type DelayModel map[GateType]int64

// TypicalDelays is a simple technology-like model: inverters and buffers
// are fast, two-input gates moderate, XOR-class gates slow. Units are
// arbitrary (tenths of a gate delay).
var TypicalDelays = DelayModel{
	Not: 6, Buf: 4,
	And: 12, Nand: 10, Or: 12, Nor: 10,
	Xor: 18, Xnor: 18,
}

// ApplyDelayModel sets every combinational gate's Delay from the model
// (types missing from the model keep their current delay). I/O pseudo-
// gates and flip-flops are untouched. Returns the netlist for chaining.
func (nl *Netlist) ApplyDelayModel(m DelayModel) *Netlist {
	for i := range nl.Gates {
		g := &nl.Gates[i]
		if !g.Type.IsCombinational() {
			continue
		}
		if d, ok := m[g.Type]; ok {
			g.Delay = d
		}
	}
	return nl
}
