package circuit

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

const sampleBench = `
# tiny sequential example
INPUT(a)
INPUT(b)
OUTPUT(q1)
q0 = DFF(g2)
q1 = DFF(g3)
g1 = NAND(a, q0)
g2 = OR(g1, b)
g3 = NOT(q1)
`

func TestParseBench(t *testing.T) {
	nl, err := ParseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	pis, pos, ffs, comb := nl.Counts()
	if pis != 2 || pos != 1 || ffs != 2 || comb != 3 {
		t.Fatalf("counts = %d %d %d %d, want 2 1 2 3", pis, pos, ffs, comb)
	}
	if nl.GateID("g2") < 0 || nl.GateID("q0") < 0 {
		t.Fatal("missing gates")
	}
	if got := nl.Gates[nl.GateID("g1")].Type; got != Nand {
		t.Fatalf("g1 type = %v, want NAND", got)
	}
}

func TestBenchRoundTrip(t *testing.T) {
	nl, err := ParseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := nl.WriteBench(&buf); err != nil {
		t.Fatal(err)
	}
	nl2, err := ParseBench(&buf)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	if len(nl2.Gates) != len(nl.Gates) {
		t.Fatalf("round trip gate count %d != %d", len(nl2.Gates), len(nl.Gates))
	}
	for _, name := range nl.sortedNames() {
		a, b := nl.Gates[nl.GateID(name)], nl2.Gates[nl2.GateID(name)]
		if b.Name == "" {
			t.Fatalf("gate %q lost in round trip", name)
		}
		if a.Type != b.Type || len(a.Fanin) != len(b.Fanin) {
			t.Fatalf("gate %q changed: %v/%d vs %v/%d", name, a.Type, len(a.Fanin), b.Type, len(b.Fanin))
		}
	}
}

func TestLatchGraphSample(t *testing.T) {
	nl, err := ParseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	g, err := LatchGraph(nl)
	if err != nil {
		t.Fatal(err)
	}
	// Nodes: host + q0 + q1.
	if g.NumNodes() != 3 {
		t.Fatalf("latch graph nodes = %d, want 3", g.NumNodes())
	}
	// q1 = DFF(g3 = NOT(q1)) is a self-loop with one gate: weight 1.
	// q0 = DFF(g2 = OR(g1 = NAND(a, q0), b)): q0 self-loop of weight 2, and
	// host → q0 paths (a through 2 gates, b through 1).
	var q0Self, q1Self bool
	for _, a := range g.Arcs() {
		if a.From == a.To && a.From != HostNode {
			switch {
			case a.Weight == 2:
				q0Self = true
			case a.Weight == 1:
				q1Self = true
			}
		}
	}
	if !q0Self || !q1Self {
		t.Fatalf("expected self-loops of weight 2 (q0) and 1 (q1); arcs: %v", g.Arcs())
	}
}

func TestGeneratedCircuitIsCyclicAndAnalyzable(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		nl, err := Generate(GenConfig{FFs: 12, CloudGates: 18, MaxFanin: 3, Feedback: 4, PIs: 4, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		lg, err := LatchGraph(nl)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !graph.HasCycle(lg) {
			t.Fatalf("seed %d: latch graph is acyclic", seed)
		}
		// Clock-period bound = maximum cycle mean must be computable and
		// positive (every cloud has at least one gate).
		algo, _ := core.ByName("howard")
		res, err := core.MaximumCycleMean(lg, algo, core.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Mean.Float64() <= 0 {
			t.Fatalf("seed %d: clock bound %v not positive", seed, res.Mean)
		}
	}
}

func TestGeneratedBenchRoundTrip(t *testing.T) {
	nl, err := Generate(GenConfig{FFs: 8, CloudGates: 10, MaxFanin: 3, Feedback: 2, PIs: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := nl.WriteBench(&buf); err != nil {
		t.Fatal(err)
	}
	nl2, err := ParseBench(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	g1, err := LatchGraph(nl)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := LatchGraph(nl2)
	if err != nil {
		t.Fatal(err)
	}
	algo, _ := core.ByName("howard")
	r1, err := core.MaximumCycleMean(g1, algo, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := core.MaximumCycleMean(g2, algo, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Mean.Equal(r2.Mean) {
		t.Fatalf("clock bound changed across round trip: %v vs %v", r1.Mean, r2.Mean)
	}
}

func TestCombinationalLoopRejected(t *testing.T) {
	src := `
INPUT(a)
g1 = AND(a, g2)
g2 = OR(g1, a)
q = DFF(g2)
OUTPUT(q)
`
	nl, err := ParseBench(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LatchGraph(nl); err == nil {
		t.Fatal("expected combinational loop error")
	}
}

func TestGeneratePipeline(t *testing.T) {
	nl, err := GeneratePipeline(20, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	pis, pos, ffs, comb := nl.Counts()
	if pis != 1 || pos != 1 || ffs != 20 || comb != 120 {
		t.Fatalf("counts %d/%d/%d/%d", pis, pos, ffs, comb)
	}
	lg, err := LatchGraph(nl)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.HasCycle(lg) {
		t.Fatal("pipeline latch graph must be cyclic")
	}
	// The ring: every FF has exactly one FF successor with combinational
	// depth 6, so the maximum cycle mean is exactly 6.
	algo, _ := core.ByName("howard")
	res, err := core.MaximumCycleMean(lg, algo, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean.Float64() != 6 {
		t.Fatalf("pipeline clock bound %v, want 6", res.Mean)
	}
	if _, err := GeneratePipeline(1, 1, 0); err == nil {
		t.Fatal("degenerate pipeline accepted")
	}
}

// TestPipelineShowsDGAdvantage regenerates the paper's circuit finding
// that eluded the dense synthetic family: on deep chain-like latch graphs
// the DG algorithm visits a tiny fraction of the arcs Karp does.
func TestPipelineShowsDGAdvantage(t *testing.T) {
	nl, err := GeneratePipeline(300, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	lg, err := LatchGraph(nl)
	if err != nil {
		t.Fatal(err)
	}
	neg := lg.NegateWeights()
	karp, _ := core.ByName("karp")
	dg, _ := core.ByName("dg")
	rk, err := core.MinimumCycleMean(neg, karp, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rd, err := core.MinimumCycleMean(neg, dg, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rk.Mean.Equal(rd.Mean) {
		t.Fatalf("karp %v != dg %v", rk.Mean, rd.Mean)
	}
	if rd.Counts.ArcsVisited*10 > rk.Counts.ArcsVisited {
		t.Fatalf("DG visited %d arcs vs Karp %d: expected >10x savings on the pipeline",
			rd.Counts.ArcsVisited, rk.Counts.ArcsVisited)
	}
}

func TestApplyDelayModel(t *testing.T) {
	nl, err := ParseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	lgUnit, err := LatchGraph(nl)
	if err != nil {
		t.Fatal(err)
	}
	nl.ApplyDelayModel(TypicalDelays)
	if got := nl.Gates[nl.GateID("g1")].Delay; got != 10 { // NAND
		t.Fatalf("NAND delay = %d, want 10", got)
	}
	if got := nl.Gates[nl.GateID("q0")].Delay; got != 1 {
		t.Fatalf("DFF delay changed to %d", got)
	}
	lgTyp, err := LatchGraph(nl)
	if err != nil {
		t.Fatal(err)
	}
	// q0's self-loop path NAND+OR = 10+12 = 22 under the model (was 2).
	var found bool
	for _, a := range lgTyp.Arcs() {
		if a.From == a.To && a.Weight == 22 {
			found = true
		}
	}
	if !found {
		t.Fatalf("typical-delay latch graph arcs: %v (unit version: %v)", lgTyp.Arcs(), lgUnit.Arcs())
	}
}

func TestLatchGraphMinMaxSample(t *testing.T) {
	nl, err := ParseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	lg, minDelay, err := LatchGraphMinMax(nl)
	if err != nil {
		t.Fatal(err)
	}
	if len(minDelay) != lg.NumArcs() {
		t.Fatalf("%d min delays for %d arcs", len(minDelay), lg.NumArcs())
	}
	// host → q0 has two paths: a (NAND,OR: 2 gates) and b (OR only: 1);
	// max must be 2 and min 1 on that arc.
	found := false
	for id := graph.ArcID(0); int(id) < lg.NumArcs(); id++ {
		a := lg.Arc(id)
		if a.From == HostNode && a.Weight == 2 && minDelay[id] == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("host→q0 min/max delays wrong; arcs=%v minDelay=%v", lg.Arcs(), minDelay)
	}
	// Combinational loop rejection mirrors LatchGraph.
	loop := `
INPUT(a)
g1 = AND(a, g2)
g2 = OR(g1, a)
q = DFF(g2)
OUTPUT(q)
`
	nl2, err := ParseBench(strings.NewReader(loop))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := LatchGraphMinMax(nl2); err == nil {
		t.Fatal("combinational loop accepted")
	}
}
