package circuit

import (
	"fmt"

	"repro/internal/graph"
)

// HostNode is the latch-graph node index representing the primary I/O
// environment; flip-flop i of the netlist (in ByType(DFF) order) is node
// i+1.
const HostNode graph.NodeID = 0

// LatchGraph extracts the latch-to-latch timing graph: node 0 is the host
// (primary inputs and outputs), node i+1 is the i-th flip-flop. For every
// register/host pair with a purely combinational path between them there is
// one arc weighted with the *maximum* combinational delay over such paths
// (sum of Gate.Delay, unit by default) and transit time 1. The maximum
// cycle mean of this graph is the classic retiming bound on the clock
// period.
//
// The combinational part of the netlist must be acyclic (combinational
// loops are rejected), and DFF/host boundaries cut all paths, exactly as in
// static timing analysis.
func LatchGraph(nl *Netlist) (*graph.Graph, error) {
	n := len(nl.Gates)
	ffs := nl.ByType(DFF)
	ffIndex := make(map[int32]int32, len(ffs)) // gate id -> latch node - 1
	for i, id := range ffs {
		ffIndex[id] = int32(i)
	}

	// Build combinational fan-out adjacency and check acyclicity with
	// Kahn's algorithm over combinational gates only.
	fanout := make([][]int32, n)
	indeg := make([]int32, n)
	for gi, g := range nl.Gates {
		if !g.Type.IsCombinational() {
			continue
		}
		for _, f := range g.Fanin {
			fanout[f] = append(fanout[f], int32(gi))
			if nl.Gates[f].Type.IsCombinational() {
				indeg[gi]++
			}
		}
	}
	topo := make([]int32, 0, n)
	for gi, g := range nl.Gates {
		if g.Type.IsCombinational() && indeg[gi] == 0 {
			topo = append(topo, int32(gi))
		}
	}
	combCount := 0
	for _, g := range nl.Gates {
		if g.Type.IsCombinational() {
			combCount++
		}
	}
	for qi := 0; qi < len(topo); qi++ {
		for _, succ := range fanout[topo[qi]] {
			if !nl.Gates[succ].Type.IsCombinational() {
				continue
			}
			indeg[succ]--
			if indeg[succ] == 0 {
				topo = append(topo, succ)
			}
		}
	}
	if len(topo) != combCount {
		return nil, fmt.Errorf("circuit: combinational loop detected (%d of %d gates ordered)", len(topo), combCount)
	}

	// Also wire non-combinational sinks (DFF data inputs, outputs): they
	// consume the longest path of their fan-in cone.
	nLatch := len(ffs) + 1
	b := graph.NewBuilder(nLatch, nLatch*4)
	b.AddNodes(nLatch)

	// One longest-path sweep per source (each FF, plus the host = all PIs).
	const unreached = int64(-1)
	dist := make([]int64, n)
	sweep := func(sourceGates []int32, fromNode graph.NodeID) {
		for i := range dist {
			dist[i] = unreached
		}
		for _, s := range sourceGates {
			dist[s] = 0 // register/PI output contributes no combinational delay
		}
		for _, gi := range topo {
			g := nl.Gates[gi]
			best := unreached
			for _, f := range g.Fanin {
				if dist[f] > best {
					best = dist[f]
				}
			}
			if best == unreached {
				continue
			}
			dist[gi] = best + g.Delay
		}
		// Arc weights: max delay into each FF's data input and into the
		// host (via primary outputs).
		hostBest := unreached
		for _, gi := range nl.ByType(Output) {
			for _, f := range nl.Gates[gi].Fanin {
				if dist[f] > hostBest {
					hostBest = dist[f]
				}
			}
		}
		for i, ff := range ffs {
			for _, f := range nl.Gates[ff].Fanin {
				if dist[f] != unreached {
					b.AddArc(fromNode, graph.NodeID(i+1), dist[f])
				}
			}
		}
		if hostBest != unreached && fromNode != HostNode {
			b.AddArc(fromNode, HostNode, hostBest)
		}
	}

	for i, ff := range ffs {
		sweep([]int32{ff}, graph.NodeID(i+1))
	}
	sweep(nl.ByType(Input), HostNode)
	return b.Build(), nil
}
