package circuit

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

func TestS27LikeBenchmark(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "s27like.bench"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	nl, err := ParseBench(f)
	if err != nil {
		t.Fatal(err)
	}
	pis, pos, ffs, comb := nl.Counts()
	if pis != 4 || pos != 1 || ffs != 3 || comb != 10 {
		t.Fatalf("counts = %d/%d/%d/%d, want 4/1/3/10", pis, pos, ffs, comb)
	}

	lg, err := LatchGraph(nl)
	if err != nil {
		t.Fatal(err)
	}
	if lg.NumNodes() != 4 { // host + 3 FFs
		t.Fatalf("latch nodes = %d, want 4", lg.NumNodes())
	}
	if !graph.HasCycle(lg) {
		t.Fatal("s27-like latch graph must be cyclic (it is a controller)")
	}

	// Clock-period bound must be computable and identical across solvers.
	howard, _ := core.ByName("howard")
	karp, _ := core.ByName("karp")
	a, err := core.MaximumCycleMean(lg, howard, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.MaximumCycleMean(lg, karp, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Mean.Equal(b.Mean) {
		t.Fatalf("howard %v != karp %v", a.Mean, b.Mean)
	}
	if a.Mean.Float64() < 1 {
		t.Fatalf("period bound %v below one gate delay", a.Mean)
	}
}
