// Package numeric provides exact rational arithmetic for cycle means and
// cost-to-time ratios.
//
// A cycle mean is w(C)/|C| and a cycle ratio is w(C)/t(C); with int64 arc
// weights both are ratios of int64 values. Comparisons are performed with
// 128-bit cross multiplication (math/bits), so they are exact for the whole
// int64 range and never overflow. This exactness is what lets the algorithms
// in internal/core terminate on equality tests instead of epsilon guesses.
package numeric

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strconv"
	"strings"
)

// Rat is an exact rational number p/q with int64 numerator and positive
// int64 denominator. The zero value is 0/1, i.e. the number zero.
type Rat struct {
	p int64 // numerator
	q int64 // denominator, always > 0 for valid values
}

// NewRat returns the rational p/q reduced to lowest terms with a positive
// denominator. It panics if q == 0.
func NewRat(p, q int64) Rat {
	if q == 0 {
		panic("numeric: zero denominator")
	}
	if q < 0 {
		p, q = -p, -q
	}
	if g := gcd64(abs64(p), q); g > 1 {
		p /= g
		q /= g
	}
	return Rat{p, q}
}

// FromInt returns the rational n/1.
func FromInt(n int64) Rat { return Rat{n, 1} }

// Num returns the numerator of r in lowest terms.
func (r Rat) Num() int64 { return r.p }

// Den returns the denominator of r in lowest terms (always positive for
// values constructed through NewRat or FromInt; 1 for the zero value... the
// zero value's denominator is reported as 1).
func (r Rat) Den() int64 {
	if r.q == 0 {
		return 1
	}
	return r.q
}

// Float64 returns the nearest float64 to r.
func (r Rat) Float64() float64 { return float64(r.p) / float64(r.Den()) }

// IsZero reports whether r equals zero.
func (r Rat) IsZero() bool { return r.p == 0 }

// Neg returns -r.
func (r Rat) Neg() Rat { return Rat{-r.p, r.Den()} }

// Cmp compares r and s exactly, returning -1, 0, or +1.
func (r Rat) Cmp(s Rat) int {
	return cmpCross(r.p, r.Den(), s.p, s.Den())
}

// Less reports whether r < s.
func (r Rat) Less(s Rat) bool { return r.Cmp(s) < 0 }

// Equal reports whether r == s.
func (r Rat) Equal(s Rat) bool { return r.Cmp(s) == 0 }

// Add returns r + s. It panics on int64 overflow of the exact result, which
// cannot occur for the cycle means of graphs with weights bounded by 2^31.
func (r Rat) Add(s Rat) Rat {
	rq, sq := r.Den(), s.Den()
	g := gcd64(rq, sq)
	l := rq / g * sq // lcm
	p := mulCheck(r.p, l/rq) + mulCheck(s.p, l/sq)
	return NewRat(p, l)
}

// Sub returns r - s.
func (r Rat) Sub(s Rat) Rat { return r.Add(s.Neg()) }

// Mul returns r * s, panicking on int64 overflow of the reduced result.
func (r Rat) Mul(s Rat) Rat {
	// Reduce cross factors first to keep intermediates small.
	a, b := r.p, r.Den()
	c, d := s.p, s.Den()
	if g := gcd64(abs64(a), d); g > 1 {
		a, d = a/g, d/g
	}
	if g := gcd64(abs64(c), b); g > 1 {
		c, b = c/g, b/g
	}
	return NewRat(mulCheck(a, c), mulCheck(b, d))
}

// String formats r as "p/q", or "p" when q == 1.
func (r Rat) String() string {
	if r.Den() == 1 {
		return fmt.Sprintf("%d", r.p)
	}
	return fmt.Sprintf("%d/%d", r.p, r.Den())
}

// cmpCross compares a/b with c/d for b, d > 0 using 128-bit products.
func cmpCross(a, b, c, d int64) int {
	// a/b < c/d  <=>  a*d < c*b  (b, d > 0)
	lhsHi, lhsLo := mul128(a, d)
	rhsHi, rhsLo := mul128(c, b)
	if lhsHi != rhsHi {
		if lhsHi < rhsHi {
			return -1
		}
		return 1
	}
	if lhsLo != rhsLo {
		if lhsLo < rhsLo {
			return -1
		}
		return 1
	}
	return 0
}

// mul128 returns the signed 128-bit product of x and y as (hi, lo) where hi
// is the signed high word and lo the unsigned low word.
func mul128(x, y int64) (int64, uint64) {
	hi, lo := bits.Mul64(uint64(x), uint64(y))
	// Convert unsigned product to signed: subtract correction terms.
	if x < 0 {
		hi -= uint64(y)
	}
	if y < 0 {
		hi -= uint64(x)
	}
	return int64(hi), lo
}

// CmpFrac compares a/b with c/d exactly for b, d > 0 without constructing
// Rats (hot path for parametric shortest path breakpoints). It panics if
// b <= 0 or d <= 0.
func CmpFrac(a, b, c, d int64) int {
	if b <= 0 || d <= 0 {
		panic("numeric: CmpFrac requires positive denominators")
	}
	return cmpCross(a, b, c, d)
}

// gcd64 returns the greatest common divisor of non-negative a and positive-
// or-zero b (binary-free Euclid; inputs are expected to be non-negative).
func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// CheckedMul returns a*b and true when the product fits in int64, or 0 and
// false when it overflows. It is the non-panicking sibling of mulCheck, used
// by callers (the Lawler grid sizing, Stern–Brocot node arithmetic) that want
// to shrink their operands or return a typed error instead of unwinding.
func CheckedMul(a, b int64) (int64, bool) {
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	if a < 0 {
		hi -= uint64(b)
	}
	if b < 0 {
		hi -= uint64(a)
	}
	s := int64(lo)
	if (s < 0 && int64(hi) != -1) || (s >= 0 && hi != 0) {
		return 0, false
	}
	return s, true
}

func mulCheck(a, b int64) int64 {
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	if a < 0 {
		hi -= uint64(b)
	}
	if b < 0 {
		hi -= uint64(a)
	}
	s := int64(lo)
	if (s < 0 && int64(hi) != -1) || (s >= 0 && hi != 0) {
		panic("numeric: int64 overflow in rational arithmetic")
	}
	return s
}

// SnapToDenominator returns the unique rational p/q with 1 <= q <= maxDen
// inside the open interval (lo, hi), if the interval is known to contain
// exactly one such rational (interval width < 1/maxDen² suffices). It walks
// the Stern–Brocot tree and is used by the exact variant of Lawler's
// algorithm to recover λ* from a float interval.
//
// The boolean result is false if no rational with denominator <= maxDen lies
// in [lo, hi].
func SnapToDenominator(lo, hi float64, maxDen int64) (Rat, bool) {
	if math.IsNaN(lo) || math.IsNaN(hi) || lo > hi || maxDen < 1 {
		return Rat{}, false
	}
	// Shift to non-negative range: find integer k with lo+k >= 0.
	shift := int64(0)
	if lo < 0 {
		shift = int64(math.Ceil(-lo)) + 1
	}
	l, h := lo+float64(shift), hi+float64(shift)
	p, q, ok := sternBrocot(l, h, maxDen)
	if !ok {
		return Rat{}, false
	}
	return NewRat(p-shift*q, q), true
}

// sternBrocot finds the rational with the smallest denominator (<= maxDen)
// in [lo, hi], lo >= 0, by descending the Stern–Brocot tree with run-length
// jumps so it terminates in O(log maxDen) steps.
func sternBrocot(lo, hi float64, maxDen int64) (int64, int64, bool) {
	// Continued-fraction style search for the simplest fraction in [lo, hi].
	var recurse func(lo, hi float64, depth int) (int64, int64, bool)
	recurse = func(lo, hi float64, depth int) (int64, int64, bool) {
		if depth > 128 {
			return 0, 0, false
		}
		fl := math.Floor(lo)
		if fl+1 <= hi || fl == lo {
			// An integer lies in [lo, hi].
			n := int64(math.Ceil(lo))
			return n, 1, true
		}
		// All candidates are fl + 1/x for x in [1/(hi-fl), 1/(lo-fl)].
		p, q, ok := recurse(1/(hi-fl), 1/(lo-fl), depth+1)
		if !ok {
			return 0, 0, false
		}
		// Result is fl + q/p = (fl*p + q)/p.
		num := int64(fl)*p + q
		if p > maxDen {
			return 0, 0, false
		}
		return num, p, true
	}
	return recurse(lo, hi, 0)
}

// SnapNearest returns the rational p/q with 1 <= q <= maxDen closest to x,
// preferring the smaller denominator on ties. It walks x's continued
// fraction, taking convergents while their denominators fit the bound and
// finishing with the best semiconvergent once they do not — the standard
// best-rational-approximation construction, so the result is exactly the
// nearest representable rational even when the admissible window around x is
// far below one float64 ulp (where the interval-based SnapToDenominator
// cannot work). It is the recovery step of result certification: a solver's
// float-converged λ is snapped to the bounded-denominator rational that the
// exact feasibility check then certifies.
//
// The boolean result is false for NaN, ±Inf, maxDen < 1, or |x| beyond the
// int64 range.
func SnapNearest(x float64, maxDen int64) (Rat, bool) {
	if maxDen < 1 || math.IsNaN(x) || math.IsInf(x, 0) {
		return Rat{}, false
	}
	neg := x < 0
	if neg {
		x = -x
	}
	if x >= float64(math.MaxInt64)/2 {
		return Rat{}, false
	}
	x0 := x
	// Convergents h_k/k_k with h_k = a_k·h_{k−1} + h_{k−2}; seeds are the
	// conventional h_{−2}/k_{−2} = 0/1 and h_{−1}/k_{−1} = 1/0.
	var p0, q0, p1, q1 int64 = 0, 1, 1, 0
	var best Rat
	have := false
	for iter := 0; iter < 64; iter++ {
		a := math.Floor(x)
		ai := int64(a)
		p2, ok1 := mulAddNonNeg(ai, p1, p0)
		q2, ok2 := mulAddNonNeg(ai, q1, q0)
		if !ok1 || !ok2 || q2 > maxDen {
			// The next convergent is out of range: the best approximation
			// with denominator <= maxDen is either the previous convergent
			// (already in best) or the largest semiconvergent that fits.
			if q1 > 0 {
				if t := (maxDen - q0) / q1; t > 0 {
					sp, sq := t*p1+p0, t*q1+q0
					cand := NewRat(sp, sq)
					if !have || ratDist(cand, x0) < ratDist(best, x0) {
						best, have = cand, true
					}
				}
			}
			break
		}
		p0, q0, p1, q1 = p1, q1, p2, q2
		best, have = NewRat(p1, q1), true
		frac := x - a
		if frac <= 0 {
			break // exact
		}
		// Float noise in late terms is harmless: spurious continuations
		// produce denominators beyond maxDen and fall into the
		// semiconvergent comparison, which keeps whichever candidate is
		// actually closest to the original x.
		x = 1 / frac
	}
	if !have {
		return Rat{}, false
	}
	if neg {
		best = best.Neg()
	}
	return best, true
}

// ratDist returns |r − x| in float64, the tie-break metric for SnapNearest.
func ratDist(r Rat, x float64) float64 {
	return math.Abs(r.Float64() - x)
}

// mulAddNonNeg returns a*b + c for non-negative inputs, reporting overflow.
func mulAddNonNeg(a, b, c int64) (int64, bool) {
	if b != 0 && a > (math.MaxInt64-c)/b {
		return 0, false
	}
	return a*b + c, true
}

// Div returns r / s, panicking if s is zero or on int64 overflow of the
// reduced result.
func (r Rat) Div(s Rat) Rat {
	if s.IsZero() {
		panic("numeric: division by zero")
	}
	// 1/s, with the sign moved to the numerator.
	num, den := s.Den(), s.p
	if den < 0 {
		num, den = -num, -den
	}
	return r.Mul(Rat{num, den})
}

// MarshalText implements encoding.TextMarshaler ("p/q" or "p").
func (r Rat) MarshalText() ([]byte, error) {
	return []byte(r.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (r *Rat) UnmarshalText(text []byte) error {
	s := string(text)
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		p, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return fmt.Errorf("numeric: bad rational %q: %v", s, err)
		}
		*r = FromInt(p)
		return nil
	}
	p, err := strconv.ParseInt(s[:slash], 10, 64)
	if err != nil {
		return fmt.Errorf("numeric: bad numerator in %q: %v", s, err)
	}
	q, err := strconv.ParseInt(s[slash+1:], 10, 64)
	if err != nil {
		return fmt.Errorf("numeric: bad denominator in %q: %v", s, err)
	}
	if q == 0 {
		return fmt.Errorf("numeric: zero denominator in %q", s)
	}
	*r = NewRat(p, q)
	return nil
}

// Ranks assigns each value its dense rank among the distinct values of the
// slice (0 = smallest), with exact comparisons; equal values share a rank.
// Used to rank-compress per-basin gains so hot loops compare ints instead
// of cross-multiplying rationals.
func Ranks(values []Rat) []int32 {
	n := len(values)
	ranks := make([]int32, n)
	RanksInto(values, make([]int32, n), ranks)
	return ranks
}

// RanksInto is the allocation-free form of Ranks: idx is scratch storage
// and dst receives the ranks; both must have length len(values). Small
// inputs (the common case for Howard's per-iteration gain ranking) are
// sorted with an insertion sort so steady-state callers allocate nothing;
// larger inputs fall back to sort.Slice.
func RanksInto(values []Rat, idx, dst []int32) {
	n := len(values)
	idx, dst = idx[:n], dst[:n]
	for i := range idx {
		idx[i] = int32(i)
	}
	if n <= 64 {
		for i := 1; i < n; i++ {
			for j := i; j > 0 && values[idx[j]].Less(values[idx[j-1]]); j-- {
				idx[j], idx[j-1] = idx[j-1], idx[j]
			}
		}
	} else {
		sort.Slice(idx, func(a, b int) bool {
			return values[idx[a]].Less(values[idx[b]])
		})
	}
	rank := int32(0)
	for i, id := range idx {
		if i > 0 && values[idx[i-1]].Less(values[id]) {
			rank++
		}
		dst[id] = rank
	}
}
