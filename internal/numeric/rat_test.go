package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRatNormalizes(t *testing.T) {
	cases := []struct {
		p, q         int64
		wantP, wantQ int64
	}{
		{1, 2, 1, 2},
		{2, 4, 1, 2},
		{-2, 4, -1, 2},
		{2, -4, -1, 2},
		{-2, -4, 1, 2},
		{0, 5, 0, 1},
		{0, -5, 0, 1},
		{7, 1, 7, 1},
		{-9, 3, -3, 1},
		{6, 9, 2, 3},
	}
	for _, c := range cases {
		r := NewRat(c.p, c.q)
		if r.Num() != c.wantP || r.Den() != c.wantQ {
			t.Errorf("NewRat(%d,%d) = %d/%d, want %d/%d", c.p, c.q, r.Num(), r.Den(), c.wantP, c.wantQ)
		}
	}
}

func TestNewRatPanicsOnZeroDen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRat(1, 0)
}

func TestZeroValue(t *testing.T) {
	var r Rat
	if !r.IsZero() || r.Den() != 1 || r.Float64() != 0 {
		t.Fatalf("zero value misbehaves: %v den=%d f=%v", r, r.Den(), r.Float64())
	}
	if r.Cmp(FromInt(0)) != 0 {
		t.Fatal("zero value != FromInt(0)")
	}
}

func TestCmpExtremes(t *testing.T) {
	// Values chosen so that cross products overflow int64: the 128-bit
	// comparison must still get them right.
	big := int64(1) << 62
	a := NewRat(big, 3)
	b := NewRat(big-1, 3)
	if a.Cmp(b) != 1 || b.Cmp(a) != -1 || a.Cmp(a) != 0 {
		t.Fatal("overflow-scale comparison wrong")
	}
	neg := NewRat(-big, 5)
	if neg.Cmp(a) != -1 {
		t.Fatal("negative vs positive comparison wrong")
	}
	if CmpFrac(big, 7, big, 7) != 0 {
		t.Fatal("CmpFrac equal case wrong")
	}
}

func TestCmpMatchesFloat(t *testing.T) {
	f := func(a, c int32, b, d uint16) bool {
		bb, dd := int64(b)+1, int64(d)+1
		r1 := NewRat(int64(a), bb)
		r2 := NewRat(int64(c), dd)
		got := r1.Cmp(r2)
		lhs := float64(a) / float64(bb)
		rhs := float64(c) / float64(dd)
		if lhs == rhs {
			// Float equality at this scale implies exact equality only when
			// the cross products agree; trust the exact comparison.
			return true
		}
		want := -1
		if lhs > rhs {
			want = 1
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestArithmetic(t *testing.T) {
	half := NewRat(1, 2)
	third := NewRat(1, 3)
	if got := half.Add(third); !got.Equal(NewRat(5, 6)) {
		t.Errorf("1/2+1/3 = %v", got)
	}
	if got := half.Sub(third); !got.Equal(NewRat(1, 6)) {
		t.Errorf("1/2-1/3 = %v", got)
	}
	if got := half.Mul(third); !got.Equal(NewRat(1, 6)) {
		t.Errorf("1/2*1/3 = %v", got)
	}
	if got := half.Neg(); !got.Equal(NewRat(-1, 2)) {
		t.Errorf("-1/2 = %v", got)
	}
}

func TestArithmeticProperties(t *testing.T) {
	gen := func(a int16, b uint8) Rat { return NewRat(int64(a), int64(b)+1) }
	// Commutativity and x - x == 0.
	f := func(a1 int16, b1 uint8, a2 int16, b2 uint8) bool {
		x, y := gen(a1, b1), gen(a2, b2)
		if !x.Add(y).Equal(y.Add(x)) {
			return false
		}
		if !x.Mul(y).Equal(y.Mul(x)) {
			return false
		}
		if !x.Sub(x).IsZero() {
			return false
		}
		// (x+y)-y == x
		return x.Add(y).Sub(y).Equal(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	if s := NewRat(7, 1).String(); s != "7" {
		t.Errorf("got %q", s)
	}
	if s := NewRat(-3, 9).String(); s != "-1/3" {
		t.Errorf("got %q", s)
	}
}

func TestSnapToDenominator(t *testing.T) {
	cases := []struct {
		lo, hi float64
		maxDen int64
		want   Rat
		ok     bool
	}{
		{0.49, 0.51, 10, NewRat(1, 2), true},
		{0.3330, 0.3336, 10, NewRat(1, 3), true},
		{2.9999, 3.0001, 5, NewRat(3, 1), true},
		{-0.5001, -0.4999, 4, NewRat(-1, 2), true},
		{0.412, 0.413, 2, Rat{}, false}, // no den<=2 rational in window
		{5.25, 5.25, 4, NewRat(21, 4), true},
	}
	for _, c := range cases {
		got, ok := SnapToDenominator(c.lo, c.hi, c.maxDen)
		if ok != c.ok {
			t.Errorf("Snap(%v,%v,%d) ok=%v want %v", c.lo, c.hi, c.maxDen, ok, c.ok)
			continue
		}
		if ok && !got.Equal(c.want) {
			t.Errorf("Snap(%v,%v,%d) = %v, want %v", c.lo, c.hi, c.maxDen, got, c.want)
		}
	}
}

func TestSnapRecoversRandomRationals(t *testing.T) {
	f := func(p int16, qRaw uint8) bool {
		q := int64(qRaw)%64 + 1
		target := NewRat(int64(p), q)
		x := target.Float64()
		w := 1 / float64(2*64*64+1) // narrower than 1/(2·maxDen²)
		got, ok := SnapToDenominator(x-w, x+w, 64)
		return ok && got.Equal(target)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64(t *testing.T) {
	if got := NewRat(1, 3).Float64(); math.Abs(got-1.0/3.0) > 1e-15 {
		t.Errorf("Float64(1/3) = %v", got)
	}
}

func TestMulOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected overflow panic")
		}
	}()
	big := NewRat((1<<62)+1, 1)
	big.Mul(NewRat(3, 1))
}

func TestDiv(t *testing.T) {
	cases := []struct{ a, b, want Rat }{
		{NewRat(1, 2), NewRat(1, 3), NewRat(3, 2)},
		{NewRat(-6, 4), NewRat(3, 1), NewRat(-1, 2)},
		{NewRat(5, 7), NewRat(-5, 7), NewRat(-1, 1)},
		{FromInt(0), NewRat(9, 4), FromInt(0)},
	}
	for _, c := range cases {
		if got := c.a.Div(c.b); !got.Equal(c.want) {
			t.Errorf("%v / %v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("division by zero did not panic")
		}
	}()
	FromInt(1).Div(FromInt(0))
}

func TestDivMulInverseProperty(t *testing.T) {
	f := func(a int16, b uint8, c int16, d uint8) bool {
		x := NewRat(int64(a), int64(b)+1)
		y := NewRat(int64(c), int64(d)+1)
		if y.IsZero() {
			return true
		}
		return x.Div(y).Mul(y).Equal(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestTextMarshaling(t *testing.T) {
	for _, r := range []Rat{NewRat(3, 7), FromInt(-12), NewRat(-5, 9), FromInt(0)} {
		data, err := r.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back Rat
		if err := back.UnmarshalText(data); err != nil {
			t.Fatal(err)
		}
		if !back.Equal(r) {
			t.Errorf("round trip %v -> %s -> %v", r, data, back)
		}
	}
	var r Rat
	for _, bad := range []string{"", "x", "1/", "/2", "1/0", "a/b"} {
		if err := r.UnmarshalText([]byte(bad)); err == nil {
			t.Errorf("bad input %q accepted", bad)
		}
	}
}

func TestRanks(t *testing.T) {
	vals := []Rat{NewRat(1, 2), NewRat(3, 1), NewRat(2, 4), NewRat(-1, 3), NewRat(3, 1)}
	got := Ranks(vals)
	want := []int32{1, 2, 1, 0, 2} // -1/3 < 1/2 == 2/4 < 3 == 3
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
	if len(Ranks(nil)) != 0 {
		t.Fatal("Ranks(nil) not empty")
	}
}
