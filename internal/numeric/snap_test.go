package numeric

import (
	"math"
	"testing"
)

func TestSnapNearestExact(t *testing.T) {
	cases := []struct {
		x      float64
		maxDen int64
		want   Rat
	}{
		{0, 1, FromInt(0)},
		{3, 10, FromInt(3)},
		{-3, 10, FromInt(-3)},
		{2.5, 2, NewRat(5, 2)},
		{-2.5, 2, NewRat(-5, 2)},
		{1.0 / 3.0, 3, NewRat(1, 3)},
		{-1.0 / 3.0, 3, NewRat(-1, 3)},
		{22.0 / 7.0, 7, NewRat(22, 7)},
		{355.0 / 113.0, 113, NewRat(355, 113)},
		{7.0 / 5.0, 100, NewRat(7, 5)},
	}
	for _, tc := range cases {
		got, ok := SnapNearest(tc.x, tc.maxDen)
		if !ok {
			t.Errorf("SnapNearest(%v, %d): not ok", tc.x, tc.maxDen)
			continue
		}
		if !got.Equal(tc.want) {
			t.Errorf("SnapNearest(%v, %d) = %v, want %v", tc.x, tc.maxDen, got, tc.want)
		}
	}
}

// TestSnapNearestRecoversSolverNoise is the use case certification depends
// on: a rational perturbed by float round-off of solver magnitude must snap
// back to itself when the denominator bound admits it.
func TestSnapNearestRecoversSolverNoise(t *testing.T) {
	for _, r := range []Rat{
		NewRat(7, 3), NewRat(-22, 7), NewRat(999, 1000), NewRat(-1, 997),
		NewRat(123456, 789), NewRat(1, 1000000),
	} {
		for _, noise := range []float64{0, 1e-12, -1e-12, 3e-11} {
			x := r.Float64() * (1 + noise)
			got, ok := SnapNearest(x, r.Den())
			if !ok || !got.Equal(r) {
				t.Errorf("SnapNearest(%v±noise, %d) = %v, ok=%v, want %v", x, r.Den(), got, ok, r)
			}
		}
	}
}

// TestSnapNearestBestUnderBound pins that the result is the closest rational
// with denominator within the bound, not merely a close one.
func TestSnapNearestBestUnderBound(t *testing.T) {
	cases := []struct {
		x      float64
		maxDen int64
		want   Rat
	}{
		{math.Pi, 1, FromInt(3)},
		{math.Pi, 10, NewRat(22, 7)},
		{math.Pi, 200, NewRat(355, 113)},
		{0.49, 1, FromInt(0)},
		{0.51, 1, FromInt(1)},
	}
	for _, tc := range cases {
		got, ok := SnapNearest(tc.x, tc.maxDen)
		if !ok || !got.Equal(tc.want) {
			t.Errorf("SnapNearest(%v, %d) = %v, ok=%v, want %v", tc.x, tc.maxDen, got, ok, tc.want)
		}
	}
}

func TestSnapNearestRejects(t *testing.T) {
	for _, x := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 1e300} {
		if r, ok := SnapNearest(x, 100); ok {
			t.Errorf("SnapNearest(%v, 100) = %v, want not ok", x, r)
		}
	}
	if r, ok := SnapNearest(0.5, 0); ok {
		t.Errorf("SnapNearest(0.5, 0) = %v, want not ok", r)
	}
}

func TestSnapNearestDenominatorBound(t *testing.T) {
	for _, maxDen := range []int64{1, 2, 3, 7, 50, 1000} {
		for _, x := range []float64{math.Pi, -math.E, 0.1234567, 1e-9, 123.456} {
			r, ok := SnapNearest(x, maxDen)
			if !ok {
				t.Fatalf("SnapNearest(%v, %d): not ok", x, maxDen)
			}
			if r.Den() < 1 || r.Den() > maxDen {
				t.Errorf("SnapNearest(%v, %d): denominator %d out of range", x, maxDen, r.Den())
			}
		}
	}
}
