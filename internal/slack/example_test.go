package slack_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/slack"
)

func ExampleAnalyze() {
	// Triangle of mean 2 plus a heavy chord.
	b := graph.NewBuilder(3, 4)
	b.AddNodes(3)
	b.AddArc(0, 1, 1)
	b.AddArc(1, 2, 2)
	b.AddArc(2, 0, 3)
	b.AddArc(1, 0, 10)
	g := b.Build()

	howard, _ := core.ByName("howard")
	rep, err := slack.Analyze(g, howard)
	if err != nil {
		panic(err)
	}
	fmt.Printf("λ* = %v; %d critical arcs; chord slack = %v\n",
		rep.Lambda, len(rep.CriticalArcs), rep.Arcs[3].Slack)
	// Output: λ* = 2; 3 critical arcs; chord slack = 7
}

func ExampleReport_Bottlenecks() {
	// The designer's ranking: critical arcs first (slack 0), then the
	// chord, whose weight can drop by its slack before it binds.
	b := graph.NewBuilder(3, 4)
	b.AddNodes(3)
	b.AddArc(0, 1, 1)
	b.AddArc(1, 2, 2)
	b.AddArc(2, 0, 3)
	b.AddArc(1, 0, 10)
	g := b.Build()

	howard, _ := core.ByName("howard")
	rep, err := slack.Analyze(g, howard)
	if err != nil {
		panic(err)
	}
	for _, a := range rep.Bottlenecks() {
		fmt.Printf("arc %d: slack %v critical=%v\n", a.Arc, a.Slack, a.Critical)
	}
	// Output:
	// arc 0: slack 0 critical=true
	// arc 1: slack 0 critical=true
	// arc 2: slack 0 critical=true
	// arc 3: slack 7 critical=false
}
