package slack_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/slack"
)

func ExampleAnalyze() {
	// Triangle of mean 2 plus a heavy chord.
	b := graph.NewBuilder(3, 4)
	b.AddNodes(3)
	b.AddArc(0, 1, 1)
	b.AddArc(1, 2, 2)
	b.AddArc(2, 0, 3)
	b.AddArc(1, 0, 10)
	g := b.Build()

	howard, _ := core.ByName("howard")
	rep, err := slack.Analyze(g, howard)
	if err != nil {
		panic(err)
	}
	fmt.Printf("λ* = %v; %d critical arcs; chord slack = %v\n",
		rep.Lambda, len(rep.CriticalArcs), rep.Arcs[3].Slack)
	// Output: λ* = 2; 3 critical arcs; chord slack = 7
}
