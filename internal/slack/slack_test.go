package slack

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/numeric"
)

func howard(t *testing.T) core.Algorithm {
	t.Helper()
	a, err := core.ByName("howard")
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAnalyzeTriangleWithChord(t *testing.T) {
	// Triangle 0→1→2→0 of mean 2 plus a heavy chord 1→0.
	b := graph.NewBuilder(3, 4)
	b.AddNodes(3)
	b.AddArc(0, 1, 1)
	b.AddArc(1, 2, 2)
	b.AddArc(2, 0, 3)
	b.AddArc(1, 0, 10)
	g := b.Build()

	rep, err := Analyze(g, howard(t))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Lambda.Equal(numeric.FromInt(2)) {
		t.Fatalf("λ* = %v", rep.Lambda)
	}
	for _, id := range []graph.ArcID{0, 1, 2} {
		if !rep.Arcs[id].Critical || !rep.Arcs[id].Slack.IsZero() {
			t.Errorf("triangle arc %d: %+v, want critical zero slack", id, rep.Arcs[id])
		}
	}
	// Chord 1→0: on the 2-cycle 0→1→0 of mean 11/2; slack is
	// (w − λ) − (d(0) − d(1)) = (10 − 2) − (0 − (−1)) = 7.
	if rep.Arcs[3].Critical {
		t.Error("chord marked critical")
	}
	if want := numeric.FromInt(7); !rep.Arcs[3].Slack.Equal(want) {
		t.Errorf("chord slack = %v, want %v", rep.Arcs[3].Slack, want)
	}
	if len(rep.CriticalNodes) != 3 {
		t.Errorf("critical nodes = %v", rep.CriticalNodes)
	}

	// Bottleneck order: zero-slack arcs first.
	order := rep.Bottlenecks()
	for i := 0; i < 3; i++ {
		if !order[i].Slack.IsZero() {
			t.Fatalf("bottleneck %d has slack %v", i, order[i].Slack)
		}
	}
	if order[3].Arc != 3 {
		t.Fatalf("last bottleneck = %v", order[3])
	}
}

func TestSlackNonNegativeEverywhere(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		g, err := gen.Sprand(gen.SprandConfig{N: 30, M: 90, MinWeight: -20, MaxWeight: 40, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Analyze(g, howard(t))
		if err != nil {
			t.Fatal(err)
		}
		zero := numeric.FromInt(0)
		nCrit := 0
		for _, as := range rep.Arcs {
			if as.Slack.Less(zero) {
				t.Fatalf("seed %d: negative slack %v on arc %d", seed, as.Slack, as.Arc)
			}
			if as.Critical != as.Slack.IsZero() {
				t.Fatalf("seed %d: criticality flag inconsistent on arc %d (slack %v)", seed, as.Arc, as.Slack)
			}
			if as.Critical {
				nCrit++
			}
		}
		if nCrit == 0 {
			t.Fatalf("seed %d: no critical arcs", seed)
		}
	}
}

func TestSensitivity(t *testing.T) {
	// Two disjoint 2-cycles sharing node 0: means 2 and 5.
	b := graph.NewBuilder(3, 4)
	b.AddNodes(3)
	b.AddArc(0, 1, 1)
	b.AddArc(1, 0, 3) // cycle mean 2 (critical)
	b.AddArc(0, 2, 4)
	b.AddArc(2, 0, 6) // cycle mean 5
	g := b.Build()

	rep, err := Analyze(g, howard(t))
	if err != nil {
		t.Fatal(err)
	}
	// Critical arc: zero margin.
	s0, err := rep.Sensitivity(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !s0.IsZero() {
		t.Errorf("critical arc margin = %v, want 0", s0)
	}
	// Arc 2 (0→2): the best cycle through it has mean 5; decreasing its
	// weight by the cycle's total reduced weight (4−2)+(6−2) = 6 makes that
	// cycle the new optimum boundary.
	s2, err := rep.Sensitivity(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if want := numeric.FromInt(6); !s2.Equal(want) {
		t.Errorf("margin = %v, want %v", s2, want)
	}
	// Decreasing by exactly the margin must keep λ* (cycle ties at 2);
	// decreasing by more must lower it.
	check := func(dec int64, wantLambda numeric.Rat) {
		arcs := append([]graph.Arc(nil), g.Arcs()...)
		arcs[2].Weight -= dec
		g2 := graph.FromArcs(3, arcs)
		res, err := core.MinimumCycleMean(g2, howard(t), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Mean.Equal(wantLambda) {
			t.Errorf("after decreasing arc 2 by %d: λ* = %v, want %v", dec, res.Mean, wantLambda)
		}
	}
	check(6, numeric.FromInt(2))    // ties: λ* unchanged
	check(8, numeric.NewRat(1, 1))  // (4−8+6)/2 = 1 < 2
	_, err = rep.Sensitivity(g, 99) // out of range
	if err == nil {
		t.Error("out-of-range arc accepted")
	}
}

func TestAnalyzeAcyclic(t *testing.T) {
	b := graph.NewBuilder(2, 1)
	b.AddNodes(2)
	b.AddArc(0, 1, 5)
	if _, err := Analyze(b.Build(), howard(t)); err == nil {
		t.Fatal("acyclic graph accepted")
	}
}
