// Package slack computes per-arc criticality information on top of the
// cycle-mean machinery: exact arc slacks with respect to λ* (the paper's
// criticality criterion d(v) − d(u) = w(u,v) − λ, Section 2, turned into a
// quantitative report) and bottleneck sensitivities — how much an arc's
// weight can decrease before the optimum changes, the question a designer
// asks right after "what is the critical cycle?".
package slack

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/numeric"
)

// ArcSlack is the criticality report for one arc.
type ArcSlack struct {
	Arc graph.ArcID
	// Slack is w(u,v) − λ* − (d(v) − d(u)) ≥ 0, exact; zero means the arc
	// is critical (lies on a shortest path of the reduced graph and
	// possibly on a minimum mean cycle).
	Slack numeric.Rat
	// Critical is Slack == 0.
	Critical bool
}

// Report is the whole-graph criticality analysis.
type Report struct {
	// Lambda is the exact minimum cycle mean the report is relative to.
	Lambda numeric.Rat
	// Arcs holds one entry per arc, indexed by ArcID.
	Arcs []ArcSlack
	// CriticalArcs lists the critical arc IDs in increasing order.
	CriticalArcs []graph.ArcID
	// CriticalNodes lists nodes incident to a critical arc.
	CriticalNodes []graph.NodeID
}

// ErrNotCyclic mirrors core.ErrAcyclic for the analysis entry points.
var ErrNotCyclic = errors.New("slack: graph has no cycles")

// Analyze computes the slack report of a graph using the given algorithm
// for λ* (the graph may have several SCCs; slacks are relative to the
// global λ*, so arcs in components with larger cycle means simply carry
// positive slack). Potentials come from one exact Bellman–Ford pass on the
// scaled reduced graph.
func Analyze(g *graph.Graph, algo core.Algorithm) (*Report, error) {
	res, err := core.MinimumCycleMean(g, algo, core.Options{})
	if err != nil {
		if errors.Is(err, core.ErrAcyclic) {
			return nil, ErrNotCyclic
		}
		return nil, err
	}
	lambda := res.Mean
	critical, _, err := core.CriticalSubgraph(g, lambda)
	if err != nil {
		return nil, err
	}
	inCrit := make(map[graph.ArcID]bool, len(critical))
	for _, id := range critical {
		inCrit[id] = true
	}

	// Potentials for the quantitative slack: shortest distances in the
	// scaled reduced graph (same computation CriticalSubgraph performs;
	// recomputed here to expose the exact values).
	p, q := lambda.Num(), lambda.Den()
	n := g.NumNodes()
	dist := make([]int64, n)
	for pass := 0; pass < n; pass++ {
		changed := false
		for _, a := range g.Arcs() {
			w := q*a.Weight - p
			if nd := dist[a.From] + w; nd < dist[a.To] {
				dist[a.To] = nd
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	rep := &Report{Lambda: lambda, Arcs: make([]ArcSlack, g.NumArcs())}
	nodes := make([]bool, n)
	for id := graph.ArcID(0); int(id) < g.NumArcs(); id++ {
		a := g.Arc(id)
		// slack = (w − λ) − (d(v) − d(u)), all over the common scale q.
		s := numeric.NewRat(q*a.Weight-p-(dist[a.To]-dist[a.From]), q)
		entry := ArcSlack{Arc: id, Slack: s, Critical: inCrit[id]}
		rep.Arcs[id] = entry
		if entry.Critical {
			rep.CriticalArcs = append(rep.CriticalArcs, id)
			nodes[a.From] = true
			nodes[a.To] = true
		}
	}
	for v, in := range nodes {
		if in {
			rep.CriticalNodes = append(rep.CriticalNodes, graph.NodeID(v))
		}
	}
	return rep, nil
}

// Bottlenecks returns the arcs sorted by increasing slack — the ranking a
// designer optimizes first. Ties are broken by arc ID for determinism.
func (r *Report) Bottlenecks() []ArcSlack {
	out := make([]ArcSlack, len(r.Arcs))
	copy(out, r.Arcs)
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Slack.Less(out[j].Slack)
	})
	return out
}

// Sensitivity computes how much arc id's weight can decrease before λ*
// strictly decreases (the arc becomes the binding bottleneck). For an arc
// already on a minimum mean cycle the answer is zero: any decrease lowers
// λ*. For other arcs the margin is the smallest total decrease that
// creates a cycle through the arc with mean below λ*; it equals
// |C_e| · (λ* − mean-margin) along the best cycle through e... computed
// here directly: the best cycle through e has reduced weight
// slack-like quantity minCycleThrough(e), and the margin is exactly that
// reduced weight (scaled back), because decreasing w(e) by more than it
// creates a negative reduced cycle.
func (r *Report) Sensitivity(g *graph.Graph, id graph.ArcID) (numeric.Rat, error) {
	if int(id) >= g.NumArcs() {
		return numeric.Rat{}, fmt.Errorf("slack: arc %d out of range", id)
	}
	p, q := r.Lambda.Num(), r.Lambda.Den()
	a := g.Arc(id)
	// Shortest reduced path from a.To back to a.From (Bellman–Ford from
	// a.To; no negative cycles in the reduced graph).
	n := g.NumNodes()
	const inf = int64(1) << 61
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = inf
	}
	dist[a.To] = 0
	for pass := 0; pass < n; pass++ {
		changed := false
		for _, arc := range g.Arcs() {
			if dist[arc.From] >= inf {
				continue
			}
			w := q*arc.Weight - p
			if nd := dist[arc.From] + w; nd < dist[arc.To] {
				dist[arc.To] = nd
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	if dist[a.From] >= inf {
		// No cycle through this arc at all: λ* is insensitive to it.
		return numeric.Rat{}, fmt.Errorf("slack: no cycle passes through arc %d", id)
	}
	// Best reduced cycle through e: red(e) + dist(a.To → a.From) ≥ 0.
	margin := (q*a.Weight - p) + dist[a.From]
	return numeric.NewRat(margin, q), nil
}
