package maxplus

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/numeric"
)

// Separations computes eigen-separations between events of an irreducible
// max-plus system — the steady-state view of the "time separation of
// events" analysis the paper cites as a CAD application (Hulgaard, Burns,
// Amon & Borriello): along the invariant trajectory x(k) = λk ⊗ v, event i
// fires exactly v_i − v_j time units after event j in every iteration. The
// returned matrix S has S[i][j] = v_i − v_j (exact rationals).
//
// For systems of cyclicity one, every start converges to these
// separations; for higher cyclicity the transient regime oscillates around
// them (see the tests). They are unique when the critical graph has a
// single strongly connected component; otherwise they correspond to
// Eigenvector's choice.
func (m *Matrix) Separations(algo core.Algorithm) ([][]numeric.Rat, error) {
	_, vec, err := m.Eigenvector(algo)
	if err != nil {
		return nil, err
	}
	n := m.Dim()
	out := make([][]numeric.Rat, n)
	for i := 0; i < n; i++ {
		out[i] = make([]numeric.Rat, n)
		for j := 0; j < n; j++ {
			out[i][j] = vec[i].Sub(vec[j])
		}
	}
	return out, nil
}

// SimulatedSeparation measures x_i(k) − x_j(k) after k steps from the
// all-zero start; tests compare it against Separations in the periodic
// regime.
func (m *Matrix) SimulatedSeparation(i, j, k int) (int64, error) {
	if i < 0 || i >= m.n || j < 0 || j >= m.n {
		return 0, fmt.Errorf("maxplus: separation indices out of range")
	}
	x := make([]Value, m.n)
	for step := 0; step < k; step++ {
		x = m.VecMul(x)
	}
	if x[i] == Epsilon || x[j] == Epsilon {
		return 0, fmt.Errorf("maxplus: component never fired")
	}
	return x[i] - x[j], nil
}
