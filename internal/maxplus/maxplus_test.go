package maxplus

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/numeric"
	"repro/internal/verify"
)

func howard(t *testing.T) core.Algorithm {
	t.Helper()
	a, err := core.ByName("howard")
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestSemiringLaws(t *testing.T) {
	f := func(aRaw, bRaw, cRaw int32) bool {
		a, b, c := Value(aRaw), Value(bRaw), Value(cRaw)
		// ⊕ commutative, associative, idempotent; ⊗ distributes over ⊕.
		if oplus(a, b) != oplus(b, a) {
			return false
		}
		if oplus(oplus(a, b), c) != oplus(a, oplus(b, c)) {
			return false
		}
		if oplus(a, a) != a {
			return false
		}
		if otimes(a, oplus(b, c)) != oplus(otimes(a, b), otimes(a, c)) {
			return false
		}
		// Epsilon is absorbing for ⊗ and neutral for ⊕.
		if otimes(a, Epsilon) != Epsilon || oplus(a, Epsilon) != a {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixIdentity(t *testing.T) {
	m := NewMatrix(3)
	m.Set(0, 1, 5)
	m.Set(1, 2, 7)
	m.Set(2, 0, 1)
	id := Identity(3)
	left := id.Mul(m)
	right := m.Mul(id)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if left.At(i, j) != m.At(i, j) || right.At(i, j) != m.At(i, j) {
				t.Fatalf("identity law broken at (%d,%d)", i, j)
			}
		}
	}
}

func TestMatrixMulAssociative(t *testing.T) {
	f := func(seed uint64) bool {
		mk := func(s uint64) *Matrix {
			m := NewMatrix(4)
			state := s
			for i := 0; i < 4; i++ {
				for j := 0; j < 4; j++ {
					state = state*6364136223846793005 + 1442695040888963407
					switch state >> 62 {
					case 0: // leave Epsilon
					default:
						m.Set(i, j, Value(int64(state>>40)%100-50))
					}
				}
			}
			return m
		}
		a, b, c := mk(seed), mk(seed+1), mk(seed+2)
		l := a.Mul(b).Mul(c)
		r := a.Mul(b.Mul(c))
		for i := range l.a {
			if l.a[i] != r.a[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGraphRoundTrip(t *testing.T) {
	g, err := gen.Sprand(gen.SprandConfig{N: 10, M: 30, MinWeight: -20, MaxWeight: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	m := FromGraph(g)
	g2 := m.Graph()
	// Round trip dedupes parallel arcs to the max weight; eigenvalues must
	// agree because ⊕ keeps exactly the arcs that matter for max means.
	r1, _, err := verify.BruteForceMaxMean(g)
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := verify.BruteForceMaxMean(g2)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Equal(r2) {
		t.Fatalf("round trip changed max mean: %v vs %v", r1, r2)
	}
}

func TestEigenvalueMatchesBruteForce(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		g, err := gen.Sprand(gen.SprandConfig{N: 8, M: 20, MinWeight: -10, MaxWeight: 30, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		m := FromGraph(g)
		lambda, err := m.Eigenvalue(howard(t))
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := verify.BruteForceMaxMean(g)
		if err != nil {
			t.Fatal(err)
		}
		if !lambda.Equal(want) {
			t.Errorf("seed %d: eigenvalue %v, want %v", seed, lambda, want)
		}
	}
}

func TestEigenvectorEquation(t *testing.T) {
	// A ⊗ v = λ ⊗ v must hold exactly. Verify in the q-scaled integer
	// domain: for each i, max_j (q·A[i][j] + V[j]) == p + V[i], where
	// V[i] = q·v_i.
	for seed := uint64(0); seed < 10; seed++ {
		g, err := gen.Sprand(gen.SprandConfig{N: 7, M: 18, MinWeight: 1, MaxWeight: 20, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		m := FromGraph(g)
		lambda, vec, err := m.Eigenvector(howard(t))
		if err != nil {
			t.Fatal(err)
		}
		p, q := lambda.Num(), lambda.Den()
		// Common denominator for the vector entries.
		for i := 0; i < m.Dim(); i++ {
			// lhs_i = max_j (A[i][j] + v_j), as exact rationals.
			var (
				best numeric.Rat
				have bool
			)
			for j := 0; j < m.Dim(); j++ {
				if m.At(i, j) == Epsilon {
					continue
				}
				cand := numeric.FromInt(m.At(i, j)).Add(vec[j])
				if !have || best.Less(cand) {
					best, have = cand, true
				}
			}
			if !have {
				t.Fatalf("seed %d: row %d has no entries", seed, i)
			}
			want := vec[i].Add(numeric.NewRat(p, q))
			if !best.Equal(want) {
				t.Errorf("seed %d: (A⊗v)_%d = %v, want λ+v_%d = %v", seed, i, best, i, want)
			}
		}
	}
}

func TestEigenvalueRequiresIrreducible(t *testing.T) {
	m := NewMatrix(2)
	m.Set(0, 1, 3) // 1 → 0 only: not strongly connected
	if _, err := m.Eigenvalue(howard(t)); !errors.Is(err, ErrNotIrreducible) {
		t.Fatalf("got %v, want ErrNotIrreducible", err)
	}
}

func TestCycleTimeConvergesToEigenvalue(t *testing.T) {
	g, err := gen.Sprand(gen.SprandConfig{N: 12, M: 36, MinWeight: 1, MaxWeight: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	m := FromGraph(g)
	lambda, err := m.Eigenvalue(howard(t))
	if err != nil {
		t.Fatal(err)
	}
	x0 := make([]Value, m.Dim())
	got := m.CycleTime(x0, 400)
	if math.Abs(got-lambda.Float64()) > 0.5 {
		t.Fatalf("cycle time %v far from eigenvalue %v", got, lambda.Float64())
	}
}

func TestSimulateFromEigenvectorIsLinear(t *testing.T) {
	// Starting from an eigenvector, every step advances every component by
	// exactly λ (up to the common scaling q).
	g, err := gen.Sprand(gen.SprandConfig{N: 6, M: 15, MinWeight: 1, MaxWeight: 9, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	m := FromGraph(g)
	lambda, vec, err := m.Eigenvector(howard(t))
	if err != nil {
		t.Fatal(err)
	}
	q := lambda.Den()
	// Scale the system by q: weights q·A, start vector q·v (both integral).
	sm := NewMatrix(m.Dim())
	for i := 0; i < m.Dim(); i++ {
		for j := 0; j < m.Dim(); j++ {
			if v := m.At(i, j); v != Epsilon {
				sm.Set(i, j, v*q)
			}
		}
	}
	x0 := make([]Value, m.Dim())
	for i := range x0 {
		// vec[i] = V_i / q_i with q_i | q ... bring to denominator q.
		x0[i] = vec[i].Num() * (q / vec[i].Den())
	}
	traj := sm.Simulate(x0, 5)
	step := lambda.Num() * (q / lambda.Den()) // = p when den==q
	for k := 1; k < len(traj); k++ {
		for i := range x0 {
			if traj[k][i] != traj[k-1][i]+step {
				t.Fatalf("step %d component %d: %d -> %d, want +%d",
					k, i, traj[k-1][i], traj[k][i], step)
			}
		}
	}
}

func TestSeparationsAntisymmetric(t *testing.T) {
	g, err := gen.Sprand(gen.SprandConfig{N: 7, M: 20, MinWeight: 1, MaxWeight: 30, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	m := FromGraph(g)
	sep, err := m.Separations(howard(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.Dim(); i++ {
		if !sep[i][i].IsZero() {
			t.Fatalf("S[%d][%d] = %v, want 0", i, i, sep[i][i])
		}
		for j := 0; j < m.Dim(); j++ {
			if !sep[i][j].Equal(sep[j][i].Neg()) {
				t.Fatalf("separations not antisymmetric at (%d,%d)", i, j)
			}
			// Triangle identity: S[i][j] + S[j][k] = S[i][k].
			for k := 0; k < m.Dim(); k++ {
				if !sep[i][j].Add(sep[j][k]).Equal(sep[i][k]) {
					t.Fatalf("separation triangle identity broken at (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
}

func TestSeparationsMatchEigenvectorTrajectory(t *testing.T) {
	// Starting from the eigenvector, every later state keeps exactly the
	// eigen-separations (a cycle of length 3 has cyclicity 3, so the
	// zero start would oscillate instead — hence the eigenvector start).
	m := NewMatrix(3)
	m.Set(1, 0, 4)
	m.Set(2, 1, 6)
	m.Set(0, 2, 5)
	lambda, vec, err := m.Eigenvector(howard(t))
	if err != nil {
		t.Fatal(err)
	}
	if lambda.Den() != 1 {
		t.Fatalf("3-cycle of weight 15 must have integer λ, got %v", lambda)
	}
	sep, err := m.Separations(howard(t))
	if err != nil {
		t.Fatal(err)
	}
	x0 := make([]Value, 3)
	for i := range x0 {
		if vec[i].Den() != 1 {
			t.Fatalf("eigenvector entry %v not integral for integer λ", vec[i])
		}
		x0[i] = vec[i].Num()
	}
	traj := m.Simulate(x0, 9)
	for k, x := range traj {
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				if got := numeric.FromInt(x[i] - x[j]); !got.Equal(sep[i][j]) {
					t.Fatalf("step %d: separation (%d,%d) = %v, eigen %v", k, i, j, got, sep[i][j])
				}
			}
		}
	}
	// SimulatedSeparation (zero start) still answers, even if oscillating.
	if _, err := m.SimulatedSeparation(0, 1, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SimulatedSeparation(-1, 0, 3); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestCloneAddAddScalar(t *testing.T) {
	m := NewMatrix(2)
	m.Set(0, 1, 5)
	m.Set(1, 0, 7)
	c := m.Clone()
	c.Set(0, 1, 99)
	if m.At(0, 1) != 5 {
		t.Fatal("Clone shares storage")
	}
	other := NewMatrix(2)
	other.Set(0, 1, 6)
	sum := m.Add(other)
	if sum.At(0, 1) != 6 || sum.At(1, 0) != 7 || sum.At(0, 0) != Epsilon {
		t.Fatalf("Add wrong: %v %v %v", sum.At(0, 1), sum.At(1, 0), sum.At(0, 0))
	}
	sh := m.AddScalar(-2)
	if sh.At(0, 1) != 3 || sh.At(1, 1) != Epsilon {
		t.Fatal("AddScalar wrong (Epsilon must stay absorbed)")
	}
}

func TestIrreducibleEdgeCases(t *testing.T) {
	if NewMatrix(0).Irreducible() {
		t.Fatal("empty matrix irreducible")
	}
	m := NewMatrix(1)
	m.Set(0, 0, 3)
	if !m.Irreducible() {
		t.Fatal("1×1 with self-loop must be irreducible")
	}
}

func TestPeriodicityOfSingleCycle(t *testing.T) {
	// A single cycle of length 3: cyclicity 3 (λ = 15/3 = 5 is integral,
	// but the trajectory rotates around the cycle with period 3).
	m := NewMatrix(3)
	m.Set(1, 0, 4)
	m.Set(2, 1, 6)
	m.Set(0, 2, 5)
	p, err := m.AnalyzePeriodicity(howard(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Lambda.Equal(numeric.FromInt(5)) {
		t.Fatalf("λ = %v", p.Lambda)
	}
	if p.Cyclicity != 3 {
		t.Fatalf("cyclicity = %d, want 3", p.Cyclicity)
	}
}

func TestPeriodicityOfSelfLoopDominated(t *testing.T) {
	// A dominant self-loop gives cyclicity 1 (the system becomes linear
	// after a short transient).
	m := NewMatrix(2)
	m.Set(0, 0, 10)
	m.Set(1, 0, 2)
	m.Set(0, 1, 1)
	p, err := m.AnalyzePeriodicity(howard(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Lambda.Equal(numeric.FromInt(10)) || p.Cyclicity != 1 {
		t.Fatalf("λ=%v cyclicity=%d, want 10 and 1", p.Lambda, p.Cyclicity)
	}
	// From the periodic regime, the relation must also predict the future:
	// simulate past the transient and check one more window by hand.
	traj := m.Simulate(make([]Value, 2), p.Transient+4)
	for i := range traj[p.Transient] {
		if traj[p.Transient+1][i] != traj[p.Transient][i]+10 {
			t.Fatalf("regime not linear at component %d", i)
		}
	}
}

func TestPeriodicityRandomGraphs(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		g, err := gen.Sprand(gen.SprandConfig{N: 6, M: 15, MinWeight: 1, MaxWeight: 9, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		m := FromGraph(g)
		p, err := m.AnalyzePeriodicity(howard(t), 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if p.Cyclicity < 1 || p.Transient < 0 {
			t.Fatalf("seed %d: degenerate periodicity %+v", seed, p)
		}
		// The asymptotic growth rate over one period equals λ·C exactly.
		traj := m.Simulate(make([]Value, m.Dim()), p.Transient+2*p.Cyclicity)
		shift := p.Lambda.Num() * (int64(p.Cyclicity) / p.Lambda.Den())
		for i := 0; i < m.Dim(); i++ {
			if traj[p.Transient+p.Cyclicity][i] != traj[p.Transient][i]+shift {
				t.Fatalf("seed %d: periodic relation fails at component %d", seed, i)
			}
		}
	}
}
