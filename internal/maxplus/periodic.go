package maxplus

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/numeric"
)

// Periodicity describes the eventually-periodic regime of an irreducible
// max-plus system: by the cyclicity theorem (Cohen et al.; see Baccelli et
// al., "Synchronization and Linearity"), every trajectory satisfies
// x(k + C) = λ·C ⊗ x(k) for all k ≥ Transient, where C is the cyclicity
// (a divisor structure of the critical graph's cycle lengths) and λ the
// eigenvalue.
type Periodicity struct {
	// Lambda is the eigenvalue (exact).
	Lambda numeric.Rat
	// Cyclicity is the smallest C with x(k+C) = λC ⊗ x(k) eventually.
	Cyclicity int
	// Transient is the smallest k at which the relation starts to hold
	// for the all-zero start vector.
	Transient int
}

// AnalyzePeriodicity simulates the system from the all-zero vector and
// detects the entry into the periodic regime. The search is bounded by
// maxSteps (0 selects 16·n² + 64, generous for small systems); an error is
// returned if periodicity is not reached, which for an irreducible matrix
// means the bound was too small.
//
// The check x(k+C) = λ·C + x(k) is exact: λ·C must be an integer for the
// relation to hold over int64 states, so candidate cyclicities are
// multiples of λ's denominator.
func (m *Matrix) AnalyzePeriodicity(algo core.Algorithm, maxSteps int) (*Periodicity, error) {
	lambda, err := m.Eigenvalue(algo)
	if err != nil {
		return nil, err
	}
	n := m.Dim()
	if maxSteps <= 0 {
		maxSteps = 16*n*n + 64
	}
	q := lambda.Den()

	// Simulate, keeping the trajectory (states are small for the sizes
	// this analysis targets).
	x := make([]Value, n)
	traj := [][]Value{append([]Value(nil), x...)}
	for k := 0; k < maxSteps; k++ {
		x = m.VecMul(x)
		traj = append(traj, append([]Value(nil), x...))
	}

	// For each candidate cyclicity C (multiples of q), find the earliest k
	// with x(k+C) = x(k) + λ·C held onward for one more window; take the
	// smallest such C.
	equalShift := func(a, b []Value, shift int64) bool {
		for i := range a {
			if a[i] == Epsilon || b[i] == Epsilon {
				if a[i] != b[i] {
					return false
				}
				continue
			}
			if b[i] != a[i]+shift {
				return false
			}
		}
		return true
	}
	for c := int(q); c <= maxSteps/2; c += int(q) {
		shift := lambda.Num() * (int64(c) / q)
		// Earliest k where the relation holds and keeps holding across the
		// verification window [k, k+c).
		for k := 0; k+2*c < len(traj); k++ {
			ok := true
			for j := k; j < k+c && ok; j++ {
				ok = equalShift(traj[j], traj[j+c], shift)
			}
			if ok {
				return &Periodicity{Lambda: lambda, Cyclicity: c, Transient: k}, nil
			}
		}
	}
	return nil, fmt.Errorf("maxplus: no periodic regime within %d steps (increase maxSteps)", maxSteps)
}
