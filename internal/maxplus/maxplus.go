// Package maxplus implements the max-plus algebra view of cycle-mean
// analysis — the setting in which Howard's algorithm reached the paper
// (Cochet-Terrasson, Cohen, Gaubert, McGettrick & Quadrat, "Numerical
// computation of spectral elements in max-plus algebra", and Baccelli et
// al., "Synchronization and Linearity"). A timed discrete event system
// x(k+1) = A ⊗ x(k) (⊗ = matrix product with + as multiplication and max
// as addition) has an asymptotic cycle time equal to the max-plus
// eigenvalue of A, which equals the maximum cycle mean of A's precedence
// graph; the eigenvectors come from the critical subgraph. This package
// provides the semiring, the matrix operators, and the spectral
// computations on top of internal/core's solvers.
package maxplus

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/numeric"
)

// Epsilon is the max-plus zero element ⊥ = −∞ (the additive identity).
const Epsilon = math.MinInt64

// Value is a max-plus scalar: an int64, with Epsilon playing −∞.
type Value = int64

// ErrNotIrreducible is returned by spectral computations when the
// precedence graph is not strongly connected, so the spectrum may not be
// unique.
var ErrNotIrreducible = errors.New("maxplus: matrix is not irreducible")

// oplus is max-plus addition (max); otimes is max-plus multiplication (+),
// absorbing on Epsilon.
func oplus(a, b Value) Value {
	if a > b {
		return a
	}
	return b
}

func otimes(a, b Value) Value {
	if a == Epsilon || b == Epsilon {
		return Epsilon
	}
	return a + b
}

// Matrix is a dense square max-plus matrix.
type Matrix struct {
	n int
	a []Value // row major
}

// NewMatrix returns the n×n matrix filled with Epsilon (the max-plus zero
// matrix).
func NewMatrix(n int) *Matrix {
	m := &Matrix{n: n, a: make([]Value, n*n)}
	for i := range m.a {
		m.a[i] = Epsilon
	}
	return m
}

// Identity returns the max-plus identity: 0 on the diagonal, Epsilon off
// it.
func Identity(n int) *Matrix {
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 0)
	}
	return m
}

// Dim returns the dimension n.
func (m *Matrix) Dim() int { return m.n }

// At returns entry (i, j).
func (m *Matrix) At(i, j int) Value { return m.a[i*m.n+j] }

// Set assigns entry (i, j).
func (m *Matrix) Set(i, j int, v Value) { m.a[i*m.n+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{n: m.n, a: make([]Value, len(m.a))}
	copy(c.a, m.a)
	return c
}

// Mul returns the max-plus product m ⊗ other.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.n != other.n {
		panic(fmt.Sprintf("maxplus: dimension mismatch %d vs %d", m.n, other.n))
	}
	out := NewMatrix(m.n)
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			acc := Value(Epsilon)
			for k := 0; k < m.n; k++ {
				acc = oplus(acc, otimes(m.At(i, k), other.At(k, j)))
			}
			out.Set(i, j, acc)
		}
	}
	return out
}

// Add returns the max-plus sum (entrywise max) m ⊕ other.
func (m *Matrix) Add(other *Matrix) *Matrix {
	if m.n != other.n {
		panic("maxplus: dimension mismatch")
	}
	out := NewMatrix(m.n)
	for i := range m.a {
		out.a[i] = oplus(m.a[i], other.a[i])
	}
	return out
}

// AddScalar returns m with v ⊗-multiplied into every non-Epsilon entry
// (i.e. v added conventionally); used to form A_λ = A ⊗ (−λ).
func (m *Matrix) AddScalar(v Value) *Matrix {
	out := m.Clone()
	for i := range out.a {
		if out.a[i] != Epsilon {
			out.a[i] += v
		}
	}
	return out
}

// VecMul returns m ⊗ x for a vector x of length n.
func (m *Matrix) VecMul(x []Value) []Value {
	if len(x) != m.n {
		panic("maxplus: vector dimension mismatch")
	}
	out := make([]Value, m.n)
	for i := 0; i < m.n; i++ {
		acc := Value(Epsilon)
		for k := 0; k < m.n; k++ {
			acc = oplus(acc, otimes(m.At(i, k), x[k]))
		}
		out[i] = acc
	}
	return out
}

// Graph returns the precedence graph of m: one node per index and an arc
// j → i of weight m[i][j] for every non-Epsilon entry (x_i(k+1) depends on
// x_j(k)).
func (m *Matrix) Graph() *graph.Graph {
	b := graph.NewBuilder(m.n, m.n)
	b.AddNodes(m.n)
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if v := m.At(i, j); v != Epsilon {
				b.AddArc(graph.NodeID(j), graph.NodeID(i), v)
			}
		}
	}
	return b.Build()
}

// FromGraph builds the matrix of a graph (parallel arcs keep the maximum
// weight, matching ⊕).
func FromGraph(g *graph.Graph) *Matrix {
	m := NewMatrix(g.NumNodes())
	for _, a := range g.Arcs() {
		i, j := int(a.To), int(a.From)
		m.Set(i, j, oplus(m.At(i, j), a.Weight))
	}
	return m
}

// Irreducible reports whether the precedence graph is strongly connected.
func (m *Matrix) Irreducible() bool {
	if m.n == 0 {
		return false
	}
	return graph.IsStronglyConnected(m.Graph())
}

// Eigenvalue computes the unique max-plus eigenvalue of an irreducible
// matrix: the maximum cycle mean of its precedence graph, obtained with
// the given algorithm (Howard's, by construction of the paper's history,
// is the natural choice — pass core.ByName("howard")).
func (m *Matrix) Eigenvalue(algo core.Algorithm) (numeric.Rat, error) {
	if !m.Irreducible() {
		return numeric.Rat{}, ErrNotIrreducible
	}
	res, err := core.MaximumCycleMean(m.Graph(), algo, core.Options{})
	if err != nil {
		return numeric.Rat{}, err
	}
	return res.Mean, nil
}

// Eigenvector returns an eigenvector for the eigenvalue λ = p/q of an
// irreducible matrix, scaled by q so it stays integral: the returned
// vector v satisfies A ⊗ v = λ ⊗ v with entries interpreted as v_i/q.
// Classically v is a critical column of A_λ⁺ = ⊕_{k=1..n} A_λ^k with
// A_λ = −λ ⊗ A; the computation below is the equivalent longest-path form
// (Bellman iterations on the q-scaled weights), which avoids building
// matrix powers.
func (m *Matrix) Eigenvector(algo core.Algorithm) (numeric.Rat, []numeric.Rat, error) {
	if !m.Irreducible() {
		return numeric.Rat{}, nil, ErrNotIrreducible
	}
	g := m.Graph()
	res, err := core.MaximumCycleMean(g, algo, core.Options{})
	if err != nil {
		return numeric.Rat{}, nil, err
	}
	lambda := res.Mean
	p, q := lambda.Num(), lambda.Den()
	if len(res.Cycle) == 0 {
		return numeric.Rat{}, nil, fmt.Errorf("maxplus: no critical cycle at λ = %v", lambda)
	}
	// The eigenvector's source must lie ON a maximum-mean cycle (a node
	// merely touching a tight arc is not enough for the eigen-equation to
	// close at the source).
	source := g.Arc(res.Cycle[0]).From

	// v_i = longest path weight from the critical source to i in the
	// q-scaled reduced graph (weights q·w − p ≤ 0 around every cycle).
	n := m.n
	const unreach = math.MinInt64 / 4
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = unreach
	}
	dist[source] = 0
	for pass := 0; pass < n; pass++ {
		changed := false
		for _, a := range g.Arcs() {
			if dist[a.From] <= unreach {
				continue
			}
			w := q*a.Weight - p
			if nd := dist[a.From] + w; nd > dist[a.To] {
				dist[a.To] = nd
				changed = true
			}
		}
		if !changed {
			break
		}
		if pass == n-1 {
			return numeric.Rat{}, nil, fmt.Errorf("maxplus: positive reduced cycle at λ = %v", lambda)
		}
	}
	vec := make([]numeric.Rat, n)
	for i := range vec {
		if dist[i] <= unreach {
			return numeric.Rat{}, nil, ErrNotIrreducible
		}
		vec[i] = numeric.NewRat(dist[i], q)
	}
	return lambda, vec, nil
}

// CycleTime simulates x(k+1) = A ⊗ x(k) from x0 for k steps and returns
// the per-step growth max_i (x_i(k) − x_i(0)) / k — which converges to the
// eigenvalue for irreducible A. Used by tests and the example to connect
// the algebraic and operational views.
func (m *Matrix) CycleTime(x0 []Value, steps int) float64 {
	x := make([]Value, len(x0))
	copy(x, x0)
	for k := 0; k < steps; k++ {
		x = m.VecMul(x)
	}
	best := math.Inf(-1)
	for i := range x {
		if x[i] == Epsilon || x0[i] == Epsilon {
			continue
		}
		if g := float64(x[i]-x0[i]) / float64(steps); g > best {
			best = g
		}
	}
	return best
}

// Simulate returns the trajectory x(0..steps) of the system.
func (m *Matrix) Simulate(x0 []Value, steps int) [][]Value {
	out := make([][]Value, 0, steps+1)
	x := make([]Value, len(x0))
	copy(x, x0)
	out = append(out, append([]Value(nil), x...))
	for k := 0; k < steps; k++ {
		x = m.VecMul(x)
		out = append(out, append([]Value(nil), x...))
	}
	return out
}
