package maxplus_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/maxplus"
)

func ExampleMatrix_Eigenvalue() {
	// A two-machine production loop: machine 0 feeds 1 after 3 time units,
	// machine 1 feeds 0 after 5; the cycle time is (3+5)/2 = 4.
	a := maxplus.NewMatrix(2)
	a.Set(1, 0, 3)
	a.Set(0, 1, 5)

	howard, _ := core.ByName("howard")
	lambda, err := a.Eigenvalue(howard)
	if err != nil {
		panic(err)
	}
	fmt.Println(lambda)
	// Output: 4
}

func ExampleMatrix_CycleTime() {
	a := maxplus.NewMatrix(2)
	a.Set(1, 0, 3)
	a.Set(0, 1, 5)
	fmt.Printf("%.1f\n", a.CycleTime([]maxplus.Value{0, 0}, 100))
	// Output: 4.0
}
