package ratio

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/counter"
	"repro/internal/graph"
	"repro/internal/numeric"
)

func init() {
	register("bhk", func() Algorithm { return bhkAlg{} })
}

// bhkAlg is the binary-search scheme of Bringmann–Hansen–Krinninger
// [arXiv:1704.08122] for the minimum cost-to-time ratio, the post-1999
// engine from ROADMAP item 2. Like Lawler's bisection it halves a bracket
// around ρ* with parametric feasibility probes, but it terminates by their
// tighter probe bound: ρ* is the ratio w(C)/t(C) of a simple cycle, so its
// denominator is at most D = n·maxT, and once the bracket is narrower than
// 1/D² it contains exactly one such rational — recovered directly with a
// Stern–Brocot walk (numeric.SnapToDenominator) and certified by one oracle
// probe whose tight arcs must close a cycle of exactly that ratio. The probe
// count is therefore O(log(n·max|w|·maxT)) with no iterative endgame on the
// happy path.
//
// The bracket lives on an integer grid num/S with S a power of two sized to
// pass 1/D² while keeping every probe inside the oracle's exact-int64
// overflow pre-check; when the two goals conflict (astronomical n·W·T), the
// bisection still narrows the bracket as far as the grid allows and a
// Dinkelbach-style descent through actual cycle ratios — seeded with the
// best negative-probe cycle the search saw — finishes exactly. Every answer
// path ends in an exact integer witness; no float ever reaches the result.
type bhkAlg struct{}

func (bhkAlg) Name() string { return "bhk" }

func (bhkAlg) Solve(g *graph.Graph, opt core.Options) (Result, error) {
	if err := checkInput(g); err != nil {
		return Result{}, err
	}
	var counts counter.Counts
	n := int64(g.NumNodes())

	minW, maxW := g.WeightRange()
	absW := maxW
	if -minW > absW {
		absW = -minW
	}
	if absW < 1 {
		absW = 1
	}
	maxT := maxTransit(g)
	bound, ok := numeric.CheckedMul(n, absW) // |ρ*| ≤ n·max|w| / 1
	if !ok {
		return Result{}, fmt.Errorf("%w: cycle-ratio bound n·max|w| overflows", ErrNumericRange)
	}

	// Grid scale S: a power of two with (a) every probe num/S in the bracket
	// |num| ≤ (bound+1)·S exact under the oracle's int64 pre-check, and
	// (b) ideally 1/S < 1/D², D = n·maxT, the BHK uniqueness width.
	unit, ok := numeric.CheckedMul(bound+1, maxT)
	if !ok {
		return Result{}, fmt.Errorf("%w: probe magnitude bound overflows", ErrNumericRange)
	}
	unit += absW
	if unit < absW {
		return Result{}, fmt.Errorf("%w: probe magnitude bound overflows", ErrNumericRange)
	}
	maxS := (int64(1) << 62) / (n + 1) / unit
	if maxS < 1 {
		return Result{}, fmt.Errorf("%w: even unit-denominator probes overflow", ErrNumericRange)
	}
	denBound, ok := numeric.CheckedMul(n, maxT)
	if !ok {
		denBound = int64(1) << 31 // saturate; snap skipped if S can't reach it anyway
	}
	target := int64(1) << 62
	if sq, ok := numeric.CheckedMul(denBound, denBound); ok {
		target = sq + 1
	}
	scale := int64(1)
	for scale < target && scale <= maxS/2 {
		scale *= 2
	}
	snapOK := scale >= target

	oracle := newOracle(g, opt, &counts)
	defer oracle.Close()

	maxIter := opt.MaxIterations
	if maxIter <= 0 {
		// ≤ log2(2·(bound+1)·scale) < 126 bisection probes, plus the endgame's
		// strictly decreasing cycle ratios; 2^12 is a generous safety valve.
		maxIter = 1 << 12
	}

	// Fallback seed: the best cycle of the first-out-arc policy, improved by
	// every negative probe below. The endgame needs an actual cycle to
	// descend from even if every bisection probe converges.
	var (
		best      numeric.Rat
		bestCycle []graph.ArcID
		haveBest  bool
	)
	note := func(cycle []graph.ArcID) {
		counts.CyclesExamined++
		if r, ok := cycleRatio(g, cycle); ok && (!haveBest || r.Less(best)) {
			best = r
			bestCycle = append(bestCycle[:0], cycle...)
			haveBest = true
		}
	}
	policy := make([]graph.ArcID, g.NumNodes())
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		policy[v] = g.OutArcs(v)[0]
	}
	ratioPolicyCycles(g, policy, note)
	if !haveBest {
		return Result{}, ErrAcyclic
	}

	probe := func(num, den int64) (bool, []graph.ArcID, error) {
		if opt.Canceled() {
			return false, nil, core.ErrCanceled
		}
		if maxIter <= 0 {
			return false, nil, ErrIterationLimit
		}
		maxIter--
		counts.Iterations++
		return oracle.Probe(num, den)
	}

	// Invariant: lo/scale ≤ ρ* < hi/scale (lo side by |ρ*| ≤ bound or a
	// converged probe, hi side by bound or a negative probe).
	lo, hi := -bound*scale, (bound+1)*scale
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		neg, cyc, err := probe(mid, scale)
		if err != nil {
			return Result{}, err
		}
		if neg {
			note(cyc)
			hi = mid
		} else {
			if tc, ok := oracle.TightCycle(mid, scale); ok {
				// ρ* sits exactly on the grid; the tight cycle certifies it.
				counts.CyclesExamined++
				return Result{Ratio: numeric.NewRat(mid, scale), Cycle: tc, Exact: true, Counts: counts}, nil
			}
			lo = mid
		}
	}

	// ρ* ∈ [lo/scale, hi/scale). Test the left endpoint exactly, then snap to
	// the unique denominator-≤ D rational of the open interval.
	neg, cyc, err := probe(lo, scale)
	if err != nil {
		return Result{}, err
	}
	if neg {
		note(cyc) // bracket invariant violated only by float-free logic bugs; descend
	} else if tc, ok := oracle.TightCycle(lo, scale); ok {
		counts.CyclesExamined++
		return Result{Ratio: numeric.NewRat(lo, scale), Cycle: tc, Exact: true, Counts: counts}, nil
	}
	if snapOK && !neg {
		if snap, ok := numeric.SnapToDenominator(float64(lo)/float64(scale), float64(hi)/float64(scale), denBound); ok {
			// The snap crossed a float boundary, so it is advisory until an
			// exact probe confirms: converged and tight ⇔ ρ* = snap.
			neg, cyc, err := probe(snap.Num(), snap.Den())
			if err != nil {
				return Result{}, err
			}
			if neg {
				note(cyc)
			} else if tc, ok := oracle.TightCycle(snap.Num(), snap.Den()); ok {
				counts.CyclesExamined++
				return Result{Ratio: snap, Cycle: tc, Exact: true, Counts: counts}, nil
			}
		}
	}

	// Exact endgame for the overflow-capped (or float-degenerate) cases:
	// Dinkelbach descent through strictly decreasing actual cycle ratios.
	for {
		neg, cyc, err := probe(best.Num(), best.Den())
		if err != nil {
			return Result{}, err
		}
		if !neg {
			cycle := make([]graph.ArcID, len(bestCycle))
			copy(cycle, bestCycle)
			return Result{Ratio: best, Cycle: cycle, Exact: true, Counts: counts}, nil
		}
		counts.CyclesExamined++
		r, ok := cycleRatio(g, cyc)
		if !ok || !r.Less(best) {
			return Result{}, ErrIterationLimit
		}
		best, bestCycle = r, append(bestCycle[:0], cyc...)
	}
}
