package ratio

import (
	"math"

	"repro/internal/core"
	"repro/internal/counter"
	"repro/internal/graph"
	"repro/internal/numeric"
)

func init() {
	register("howard", func() Algorithm { return howardRatio{} })
}

// howardRatio is Howard's policy-iteration algorithm in its original
// cost-to-time ratio form [Cochet-Terrasson et al. 1997]. The paper's
// Figure 1 simplifies value determination to the single smallest policy
// cycle; as in the original multichain formulation, this implementation
// determines a value per *basin*: every node of the out-degree-one policy
// graph reaches exactly one cycle, whose exact rational ratio becomes the
// node's gain, and the node's bias d comes from a reverse BFS toward that
// cycle. Policy improvement is lexicographic — first strictly better gain
// (compared exactly, so the gain vector never increases and cannot
// oscillate), then strictly better bias at equal gain (float64 with an ε
// threshold, exactly like Figure 1's line 17). On convergence the smallest
// gain is certified with an exact Bellman–Ford feasibility check; a failed
// certificate (float round-off in the bias) halves ε and resumes.
type howardRatio struct{}

func (howardRatio) Name() string { return "howard" }

// ratioBiasEpsilon derives the default bias-comparison threshold from the
// magnitudes the bias values actually reach. Each bias term is
// w(e) − ρ·t(e); with transits ≥ 1 on cycles |ρ| is bounded by the weight
// scale, so the term magnitude is bounded by scaleW·(1 + maxT) — NOT by the
// weight range alone. An eps derived only from weights is drowned by float
// round-off once transits dwarf weights (noise ≈ n·2⁻⁵²·scaleW·maxT exceeds
// 1e-10·scaleW for large maxT), and policy iteration then churns on noise
// until the iteration limit. Scaling eps by the transit range keeps it
// proportional to the values being compared.
func ratioBiasEpsilon(g *graph.Graph) float64 {
	minW, maxW := g.WeightRange()
	scaleW := math.Max(1, math.Max(math.Abs(float64(minW)), math.Abs(float64(maxW))))
	_, maxT := g.TransitRange()
	scaleT := math.Max(1, float64(maxT))
	return 1e-10 * scaleW * scaleT
}

func (howardRatio) Solve(g *graph.Graph, opt core.Options) (Result, error) {
	if err := checkInput(g); err != nil {
		return Result{}, err
	}
	n := g.NumNodes()
	var counts counter.Counts

	eps := opt.Epsilon
	if eps <= 0 {
		eps = ratioBiasEpsilon(g)
	}

	// Initial policy: cheapest out-arc by weight.
	policy := make([]graph.ArcID, n)
	for v := graph.NodeID(0); int(v) < n; v++ {
		policy[v] = -1
		best := int64(0)
		for _, id := range g.OutArcs(v) {
			if w := g.Arc(id).Weight; policy[v] < 0 || w < best {
				best = w
				policy[v] = id
			}
		}
		if policy[v] < 0 {
			return Result{}, ErrNotStronglyConnected
		}
	}

	oracle := newOracle(g, opt, &counts)
	defer oracle.Close()

	gain := make([]numeric.Rat, n)
	gainRank := make([]int32, n) // rank of gain[v] among this iteration's distinct gains
	gainSet := make([]bool, n)
	cycleGains := make([]numeric.Rat, 0, 8)
	cycleSeq := make([]int32, n) // v -> index into cycleGains
	d := make([]float64, n)
	childHead := make([]int32, n)
	childNext := make([]int32, n)
	queue := make([]graph.NodeID, 0, n)

	maxIter := opt.MaxIterations
	if maxIter <= 0 {
		maxIter = 100*n + 1000
	}
	for iter := 0; iter < maxIter; iter++ {
		if opt.Canceled() {
			return Result{}, core.ErrCanceled
		}
		counts.Iterations++

		// Value determination: per-basin gain and bias.
		cycleGains = cycleGains[:0]
		for i := range childHead {
			childHead[i] = -1
			gainSet[i] = false
		}
		for v := 0; v < n; v++ {
			u := g.Arc(policy[v]).To
			childNext[v] = childHead[u]
			childHead[u] = int32(v)
		}
		var (
			bestGain numeric.Rat
			bestCyc  []graph.ArcID
			haveBest bool
		)
		ratioPolicyCycles(g, policy, func(cycle []graph.ArcID) {
			counts.CyclesExamined++
			r, ok := cycleRatio(g, cycle)
			if !ok {
				return // impossible after checkInput (no zero-transit cycles)
			}
			if !haveBest || r.Less(bestGain) {
				bestGain = r
				bestCyc = append(bestCyc[:0], cycle...)
				haveBest = true
			}
			rf := r.Float64()
			// Normalization node: the smallest node on the cycle (stable
			// across policy changes), keeping its previous bias — the
			// continuity condition that makes the value sequence monotone
			// and prevents bias oscillation between equal-gain basins.
			s := g.Arc(cycle[0]).From
			for _, id := range cycle {
				if from := g.Arc(id).From; from < s {
					s = from
				}
			}
			seq := int32(len(cycleGains))
			cycleGains = append(cycleGains, r)
			gain[s] = r
			cycleSeq[s] = seq
			gainSet[s] = true
			queue = append(queue[:0], s)
			for qi := 0; qi < len(queue); qi++ {
				u := queue[qi]
				for c := childHead[u]; c >= 0; c = childNext[c] {
					v := graph.NodeID(c)
					if gainSet[v] {
						continue
					}
					gainSet[v] = true
					gain[v] = r
					cycleSeq[v] = seq
					a := g.Arc(policy[v])
					d[v] = d[a.To] + float64(a.Weight) - rf*float64(a.Transit)
					queue = append(queue, v)
				}
			}
		})
		if !haveBest {
			return Result{}, ErrIterationLimit
		}
		ranks := numeric.Ranks(cycleGains)
		for v := 0; v < n; v++ {
			gainRank[v] = ranks[cycleSeq[v]]
		}

		// Policy improvement: lexicographic (gain exactly, then bias).
		improved := false
		for u := graph.NodeID(0); int(u) < n; u++ {
			curArc := g.Arc(policy[u])
			curRank := gainRank[curArc.To]
			curGain := gain[curArc.To]
			curVal := d[curArc.To] + float64(curArc.Weight) - curGain.Float64()*float64(curArc.Transit)
			bestArc := policy[u]
			bestRank := curRank
			bestVal := curVal
			for _, id := range g.OutArcs(u) {
				counts.Relaxations++
				a := g.Arc(id)
				switch rv := gainRank[a.To]; {
				case rv < bestRank:
					bestRank = rv
					bestVal = d[a.To] + float64(a.Weight) - gain[a.To].Float64()*float64(a.Transit)
					bestArc = id
				case rv == bestRank:
					if val := d[a.To] + float64(a.Weight) - gain[a.To].Float64()*float64(a.Transit); val < bestVal {
						bestVal = val
						bestArc = id
					}
				}
			}
			if bestArc == policy[u] {
				continue
			}
			if bestRank < curRank {
				policy[u] = bestArc
				improved = true
			} else if bestVal < curVal {
				policy[u] = bestArc
				if curVal-bestVal > eps {
					improved = true
				}
			}
		}

		if !improved {
			neg, _, err := oracle.Probe(bestGain.Num(), bestGain.Den())
			if err != nil {
				return Result{}, err
			}
			if !neg {
				cycle := make([]graph.ArcID, len(bestCyc))
				copy(cycle, bestCyc)
				return Result{Ratio: bestGain, Cycle: cycle, Exact: true, Counts: counts}, nil
			}
			eps /= 2
		}
	}
	return Result{}, ErrIterationLimit
}
