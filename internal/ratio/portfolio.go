package ratio

// The ratio-side portfolio racer, mirroring core's meta-algorithm: run
// several exact ratio solvers concurrently and return the first exact
// answer, canceling the losers through the public cancellation bridge
// (core's private flag chaining is not reachable from here, and the
// context-based bridge composes identically). Spelled "portfolio" or
// "portfolio:a+b" through ByName, like core's — and like core's it stays out
// of Names(), so corpus sweeps and bench tables that iterate the registry
// race real solvers, not the racer itself.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
)

// ratioPortfolioName is the ByName spelling of the meta-algorithm.
const ratioPortfolioName = "portfolio"

// defaultRatioRoster is the race run by ByName("portfolio"): Howard (the
// practical winner), Stern–Brocot (integer-only mediant search, immune to
// float bias churn), Dinkelbach (superlinear on inputs with few distinct
// cycle ratios), and BHK (probe count logarithmic in n·|w|·maxT via the
// denominator-bound bisection). The four have disjoint worst cases.
var defaultRatioRoster = []string{"howard", "sternbrocot", "dinkelbach", "bhk"}

// ratioPortfolioLive mirrors core's goroutine-leak test hook.
var ratioPortfolioLive atomic.Int64

// RatioPortfolio races several ratio solvers on the same strongly connected
// graph; every exact solver returns the same ρ*, so racing changes only the
// wall clock paid, never the answer.
type RatioPortfolio struct {
	algos []Algorithm
}

// NewPortfolio builds a ratio portfolio over the given solvers; with no
// arguments it uses the default howard+sternbrocot+dinkelbach+bhk roster.
func NewPortfolio(algos ...Algorithm) *RatioPortfolio {
	if len(algos) == 0 {
		for _, name := range defaultRatioRoster {
			algo, err := ByName(name)
			if err != nil {
				panic("ratio: default portfolio roster member missing: " + name)
			}
			algos = append(algos, algo)
		}
	}
	return &RatioPortfolio{algos: algos}
}

// portfolioByName parses "portfolio" or "portfolio:a+b+c" (members separated
// by '+' or ',') into a RatioPortfolio over registered solvers.
func portfolioByName(name string) (Algorithm, error) {
	if name == ratioPortfolioName {
		return NewPortfolio(), nil
	}
	spec := strings.TrimPrefix(name, ratioPortfolioName+":")
	members := strings.FieldsFunc(spec, func(r rune) bool { return r == '+' || r == ',' })
	if len(members) == 0 {
		return nil, fmt.Errorf("ratio: empty portfolio roster in %q", name)
	}
	var algos []Algorithm
	for _, m := range members {
		algo, err := ByName(m)
		if err != nil {
			return nil, fmt.Errorf("ratio: unknown portfolio member %q (known: %v)", m, Names())
		}
		algos = append(algos, algo)
	}
	return NewPortfolio(algos...), nil
}

// Name implements Algorithm.
func (p *RatioPortfolio) Name() string { return ratioPortfolioName }

// Algorithms returns the roster, in race order.
func (p *RatioPortfolio) Algorithms() []Algorithm { return p.algos }

// Solve implements Algorithm by racing the roster; see SolveContext.
func (p *RatioPortfolio) Solve(g *graph.Graph, opt core.Options) (Result, error) {
	return p.SolveContext(context.Background(), g, opt)
}

// SolveContext races every roster member on g and returns the first exact
// result, canceling the rest; all racer goroutines are joined before it
// returns. The returned Counts are the winner's alone.
func (p *RatioPortfolio) SolveContext(ctx context.Context, g *graph.Graph, opt core.Options) (Result, error) {
	if err := checkInput(g); err != nil {
		return Result{}, err
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type outcome struct {
		idx int
		res Result
		err error
	}
	results := make(chan outcome, len(p.algos))
	var wg sync.WaitGroup
	for i, a := range p.algos {
		// Each racer observes both a lost race and the caller's own
		// cancellation through the context bridge.
		sub, stop := opt.WithCancelContext(ctx)
		wg.Add(1)
		ratioPortfolioLive.Add(1)
		go func(i int, a Algorithm, sub core.Options, stop func()) {
			defer wg.Done()
			defer ratioPortfolioLive.Add(-1)
			defer stop()
			var (
				res Result
				err error
			)
			// Registry members are individually guarded, but a
			// caller-supplied Algorithm is not; keep the race panic-free.
			func() {
				defer core.RecoverNumericRange(&err, ErrNumericRange)
				res, err = a.Solve(g, sub)
			}()
			results <- outcome{idx: i, res: res, err: err}
		}(i, a, sub, stop)
	}

	tracing := opt.Tracer.Enabled()
	var (
		raceStart time.Time
		decidedAt time.Time
		finish    []time.Duration
		latency   []time.Duration
	)
	if tracing {
		raceStart = time.Now()
		finish = make([]time.Duration, len(p.algos))
		latency = make([]time.Duration, len(p.algos))
	}

	var (
		winner  *outcome
		inexact *outcome
		errs    = make([]error, len(p.algos))
	)
	for remaining := len(p.algos); remaining > 0; remaining-- {
		o := <-results
		if tracing {
			now := time.Now()
			finish[o.idx] = now.Sub(raceStart)
			if !decidedAt.IsZero() {
				latency[o.idx] = now.Sub(decidedAt)
			}
		}
		switch {
		case o.err != nil:
			errs[o.idx] = o.err
		case o.res.Exact && winner == nil:
			o := o
			winner = &o
			if tracing {
				decidedAt = time.Now()
			}
			cancel() // first exact answer wins; stop the losers
		case !o.res.Exact && inexact == nil:
			o := o
			inexact = &o
		}
	}
	cancel()
	wg.Wait()

	if tracing {
		returned := winner
		if returned == nil {
			returned = inexact
		}
		ev := obs.RaceEvent{Duration: time.Since(raceStart), Racers: make([]obs.RacerOutcome, len(p.algos))}
		for i, a := range p.algos {
			ev.Racers[i] = obs.RacerOutcome{
				Algorithm:     a.Name(),
				Elapsed:       finish[i],
				CancelLatency: latency[i],
				Won:           returned != nil && returned.idx == i,
				Err:           errs[i],
			}
		}
		if returned != nil {
			ev.Winner = p.algos[returned.idx].Name()
		}
		opt.Tracer.Race(ev)
	}

	if winner != nil {
		return winner.res, nil
	}
	if inexact != nil {
		return inexact.res, nil
	}
	if err := ctx.Err(); err != nil && opt.Canceled() {
		return Result{}, core.ErrCanceled
	}
	var fails []error
	for i, err := range errs {
		if err != nil && !errors.Is(err, core.ErrCanceled) {
			fails = append(fails, fmt.Errorf("ratio: portfolio member %s: %w", p.algos[i].Name(), err))
		}
	}
	if len(fails) > 0 {
		return Result{}, errors.Join(fails...)
	}
	return Result{}, core.ErrCanceled
}
