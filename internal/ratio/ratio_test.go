package ratio

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/verify"
)

// randomTransitGraph builds a SPRAND graph and assigns pseudo-random transit
// times in [1, maxT] derived deterministically from the arc index and seed.
func randomTransitGraph(t *testing.T, n, m int, maxT int64, seed uint64) *graph.Graph {
	t.Helper()
	g, err := gen.Sprand(gen.SprandConfig{N: n, M: m, MinWeight: -15, MaxWeight: 25, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	arcs := make([]graph.Arc, g.NumArcs())
	state := seed*0x9e3779b97f4a7c15 + 12345
	for i, a := range g.Arcs() {
		state = state*6364136223846793005 + 1442695040888963407
		a.Transit = 1 + int64((state>>33)%uint64(maxT))
		arcs[i] = a
	}
	return graph.FromArcs(g.NumNodes(), arcs)
}

// TestRatioAlgorithmsAgreeWithOracle checks every ratio algorithm against
// the brute-force enumeration oracle on small graphs with varied transit
// times.
func TestRatioAlgorithmsAgreeWithOracle(t *testing.T) {
	algos := All()
	for _, size := range []struct{ n, m int }{
		{2, 3}, {3, 6}, {4, 8}, {6, 12}, {8, 14}, {10, 20},
	} {
		for seed := uint64(0); seed < 10; seed++ {
			g := randomTransitGraph(t, size.n, size.m, 4, seed)
			want, _, err := verify.BruteForceMinRatio(g)
			if err != nil {
				t.Fatalf("oracle n=%d m=%d seed=%d: %v", size.n, size.m, seed, err)
			}
			for _, algo := range algos {
				got, err := algo.Solve(g, core.Options{})
				if err != nil {
					t.Fatalf("%s n=%d m=%d seed=%d: %v", algo.Name(), size.n, size.m, seed, err)
				}
				if !got.Ratio.Equal(want) {
					t.Errorf("%s n=%d m=%d seed=%d: ρ*=%v, oracle %v",
						algo.Name(), size.n, size.m, seed, got.Ratio, want)
					continue
				}
				if err := verify.CheckRatioCycleIsOptimal(g, got.Ratio, got.Cycle); err != nil {
					t.Errorf("%s n=%d m=%d seed=%d: bad cycle: %v", algo.Name(), size.n, size.m, seed, err)
				}
			}
		}
	}
}

// TestRatioReducesToMean: with all transit times 1, every ratio algorithm
// must agree with the mean solvers (the paper's framing of MCMP as the
// special case of MCRP).
func TestRatioReducesToMean(t *testing.T) {
	howardMean, err := core.ByName("howard")
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 8; seed++ {
		g, err := gen.Sprand(gen.SprandConfig{N: 20, M: 50, MinWeight: -10, MaxWeight: 30, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		mean, err := howardMean.Solve(g, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, algo := range All() {
			got, err := algo.Solve(g, core.Options{})
			if err != nil {
				t.Fatalf("%s seed=%d: %v", algo.Name(), seed, err)
			}
			if !got.Ratio.Equal(mean.Mean) {
				t.Errorf("%s seed=%d: ratio %v != mean %v", algo.Name(), seed, got.Ratio, mean.Mean)
			}
		}
	}
}

// TestMaximumCycleRatio exercises the negation driver on a known graph.
func TestMaximumCycleRatio(t *testing.T) {
	// Two cycles: 0→1→0 (w=6, t=2 → ratio 3) and 0→2→0 (w=10, t=4 → 2.5).
	b := graph.NewBuilder(3, 4)
	b.AddNodes(3)
	b.AddArcTransit(0, 1, 4, 1)
	b.AddArcTransit(1, 0, 2, 1)
	b.AddArcTransit(0, 2, 7, 2)
	b.AddArcTransit(2, 0, 3, 2)
	g := b.Build()

	algo, err := ByName("howard")
	if err != nil {
		t.Fatal(err)
	}
	min, err := MinimumCycleRatio(g, algo, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := numeric.NewRat(5, 2); !min.Ratio.Equal(want) {
		t.Errorf("min ratio = %v, want %v", min.Ratio, want)
	}
	max, err := MaximumCycleRatio(g, algo, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := numeric.NewRat(3, 1); !max.Ratio.Equal(want) {
		t.Errorf("max ratio = %v, want %v", max.Ratio, want)
	}
}

// TestZeroTransitCycleRejected: a cycle entirely within zero-transit arcs
// must be rejected by every algorithm.
func TestZeroTransitCycleRejected(t *testing.T) {
	b := graph.NewBuilder(2, 3)
	b.AddNodes(2)
	b.AddArcTransit(0, 1, 1, 0)
	b.AddArcTransit(1, 0, 1, 0)
	b.AddArcTransit(0, 0, 5, 3)
	g := b.Build()
	for _, algo := range All() {
		if _, err := algo.Solve(g, core.Options{}); err == nil {
			t.Errorf("%s: expected error on zero-transit cycle", algo.Name())
		}
	}
}

// TestExpandMatchesDirect cross-checks the expansion reduction against the
// direct Howard ratio solver on medium graphs with larger transit times.
func TestExpandMatchesDirect(t *testing.T) {
	direct, _ := ByName("howard")
	expandAlgo, _ := ByName("expand")
	for seed := uint64(0); seed < 5; seed++ {
		g := randomTransitGraph(t, 24, 60, 5, seed)
		a, err := direct.Solve(g, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := expandAlgo.Solve(g, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !a.Ratio.Equal(b.Ratio) {
			t.Errorf("seed %d: direct %v != expand %v", seed, a.Ratio, b.Ratio)
		}
	}
}
