package ratio

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/counter"
	"repro/internal/graph"
	"repro/internal/numeric"
)

func init() {
	register("sternbrocot", func() Algorithm { return sternBrocotAlg{} })
}

// sternBrocotAlg locates ρ* by exact mediant search on the Stern–Brocot
// tree, the ROADMAP 5(a) scenario: every positive rational appears exactly
// once in the tree, and descending it with the parametric oracle as the
// comparator finds ρ* with integer arithmetic only — no float solve ever
// happens, so there is nothing to snap during certification.
//
// The search runs in the shifted coordinate ρ' = ρ* + s with s = n·max|w|+1,
// so ρ' ∈ [1, 2s−1] is strictly positive. It maintains two tree nodes
// L = a/b and R = c/d with the invariant a/b < ρ' < c/d (R starts at the
// formal 1/0 = ∞) and repeatedly probes the mediant (a+c)/(b+d):
//
//   - a negative cycle at the mediant means ρ' is below it — descend left;
//   - a converged probe whose tight arcs close a cycle of exactly the
//     mediant's ratio means ρ' equals it — done, and that tight cycle is
//     the witness;
//   - otherwise ρ' is above — descend right.
//
// Runs of equal-direction steps are resolved with exponential doubling plus
// binary search (the continued-fraction terms of ρ'), so the number of
// oracle probes is O(log² (n·max|w|·maxT)) rather than linear in the term
// sizes. Node arithmetic is overflow-checked; out-of-range graphs report
// ErrNumericRange.
type sternBrocotAlg struct{}

func (sternBrocotAlg) Name() string { return "sternbrocot" }

// sbNode is a Stern–Brocot tree node with value a/b (b = 0 encodes ∞).
type sbNode struct{ a, b int64 }

// sbCombine returns the node k·X ⊕ Y = (k·X.a + Y.a)/(k·X.b + Y.b), the
// result of taking k consecutive steps toward X from interval (X, Y); ok is
// false when the coefficients leave int64.
func sbCombine(x sbNode, k int64, y sbNode) (sbNode, bool) {
	ka, ok := numeric.CheckedMul(k, x.a)
	if !ok {
		return sbNode{}, false
	}
	kb, ok := numeric.CheckedMul(k, x.b)
	if !ok {
		return sbNode{}, false
	}
	a, b := ka+y.a, kb+y.b
	if a < 0 || b < 0 { // all coefficients are non-negative: a sign flip is overflow
		return sbNode{}, false
	}
	return sbNode{a, b}, true
}

func (sternBrocotAlg) Solve(g *graph.Graph, opt core.Options) (Result, error) {
	if err := checkInput(g); err != nil {
		return Result{}, err
	}
	var counts counter.Counts
	n := g.NumNodes()

	minW, maxW := g.WeightRange()
	absW := maxW
	if -minW > absW {
		absW = -minW
	}
	if absW < 1 {
		absW = 1
	}
	bound, ok := numeric.CheckedMul(int64(n), absW)
	if !ok || bound >= 1<<62 {
		return Result{}, fmt.Errorf("%w: cycle-ratio bound n·max|w| overflows", ErrNumericRange)
	}
	shift := bound + 1 // ρ* + shift ∈ [1, 2·bound+1], strictly positive

	oracle := newOracle(g, opt, &counts)
	defer oracle.Close()

	maxIter := opt.MaxIterations
	if maxIter <= 0 {
		// ρ' has at most log_φ(2^63) ≈ 91 continued-fraction terms, each
		// resolved in ≤ 2·log2(term)+2 ≤ 128 probes; 2^15 dominates.
		maxIter = 1 << 15
	}

	var (
		found    bool
		resRatio numeric.Rat
		resCycle []graph.ArcID
	)
	// probe compares ρ' against the node's value: −1 when ρ' lies below it
	// (the oracle found a negative cycle), +1 when above, 0 when equal — in
	// which case the tight cycle certifying equality is recorded as the
	// final witness.
	probe := func(nd sbNode) (int, error) {
		if opt.Canceled() {
			return 0, core.ErrCanceled
		}
		if maxIter <= 0 {
			return 0, ErrIterationLimit
		}
		maxIter--
		counts.Iterations++
		sb, ok := numeric.CheckedMul(shift, nd.b)
		if !ok {
			return 0, fmt.Errorf("%w: Stern–Brocot node %d/%d overflows the probe range", ErrNumericRange, nd.a, nd.b)
		}
		num, den := nd.a-sb, nd.b
		neg, _, err := oracle.Probe(num, den)
		if err != nil {
			return 0, err
		}
		if neg {
			return -1, nil
		}
		if cyc, ok := oracle.TightCycle(num, den); ok {
			counts.CyclesExamined++
			found, resRatio, resCycle = true, numeric.NewRat(num, den), cyc
			return 0, nil
		}
		return 1, nil
	}

	// run resolves one maximal same-direction descent: nodes step(k) for
	// k = 1, 2, … move monotonically toward ρ', with step(1) already known
	// to compare as want. It returns the largest k still comparing as want
	// and k+1 (the first overshoot), or found=true when some probe landed
	// exactly on ρ'.
	run := func(step func(k int64) (sbNode, bool), want int) (int64, error) {
		lo, hi := int64(1), int64(2)
		for {
			nd, ok := step(hi)
			if !ok {
				return 0, fmt.Errorf("%w: Stern–Brocot descent overflows int64", ErrNumericRange)
			}
			c, err := probe(nd)
			if err != nil || c == 0 {
				return 0, err
			}
			if c != want {
				break
			}
			lo = hi
			hi *= 2
		}
		for hi-lo > 1 {
			mid := lo + (hi-lo)/2
			nd, ok := step(mid)
			if !ok {
				return 0, fmt.Errorf("%w: Stern–Brocot descent overflows int64", ErrNumericRange)
			}
			c, err := probe(nd)
			if err != nil || c == 0 {
				return 0, err
			}
			if c == want {
				lo = mid
			} else {
				hi = mid
			}
		}
		return lo, nil
	}

	left := sbNode{0, 1}  // value 0 < ρ'
	right := sbNode{1, 0} // formal ∞ > ρ'
	for !found {
		mediant, ok := sbCombine(left, 1, right)
		if !ok {
			return Result{}, fmt.Errorf("%w: Stern–Brocot descent overflows int64", ErrNumericRange)
		}
		c, err := probe(mediant)
		if err != nil {
			return Result{}, err
		}
		switch {
		case c == 0:
			// found
		case c > 0:
			// ρ' above the mediant: descend right along k·right ⊕ left.
			k, err := run(func(k int64) (sbNode, bool) { return sbCombine(right, k, left) }, 1)
			if err != nil {
				return Result{}, err
			}
			if found {
				break
			}
			lo, _ := sbCombine(right, k, left)
			hi, _ := sbCombine(right, k+1, left)
			left, right = lo, hi
		default:
			// ρ' below the mediant: descend left along k·left ⊕ right.
			k, err := run(func(k int64) (sbNode, bool) { return sbCombine(left, k, right) }, -1)
			if err != nil {
				return Result{}, err
			}
			if found {
				break
			}
			hi, _ := sbCombine(left, k, right)
			lo, _ := sbCombine(left, k+1, right)
			left, right = lo, hi
		}
	}
	return Result{Ratio: resRatio, Cycle: resCycle, Exact: true, Counts: counts}, nil
}
