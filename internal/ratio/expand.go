package ratio

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
)

// maxExpandArcs bounds the size of the transit-expanded graph expandAlg is
// willing to build (it allocates one arc per unit of total transit time).
const maxExpandArcs = 1 << 26

func init() {
	// The inner solver is resolved lazily at Solve time: an init-time
	// core.ByName failure would panic during package initialization, where no
	// caller can recover it.
	register("expand", func() Algorithm { return expandAlg{} })
}

// NewExpand returns the transit-expansion ratio algorithm running the given
// minimum-mean solver on the expanded graph. Registering "expand" uses
// Howard's algorithm inside; this constructor lets benches ablate the inner
// solver.
func NewExpand(inner core.Algorithm) Algorithm { return expandAlg{inner: inner} }

// expandAlg is the classical reduction from the ratio problem to the mean
// problem used by the Hartmann–Orlin O(Tm) algorithm ("finding minimum cost
// to time ratio cycles with small integral transit times"): replace every
// arc of transit time t ≥ 1 by a path of t unit-transit arcs carrying the
// weight on the first arc. A cycle's expanded length equals its total
// transit time, so the minimum cycle mean of the expanded graph is exactly
// the minimum cycle ratio of the original. The expansion is pseudo-
// polynomial (T = total transit time arcs), which is why the paper lists
// these algorithms separately.
//
// Requires every transit time >= 1 (zero-transit arcs have no expanded
// length; graphs with them need one of the direct ratio algorithms).
type expandAlg struct {
	// inner is the minimum-mean solver run on the expanded graph; nil means
	// resolve Howard's algorithm lazily on first Solve.
	inner core.Algorithm
}

func (e expandAlg) Name() string {
	if e.inner == nil {
		return "expand-howard"
	}
	return "expand-" + e.inner.Name()
}

func (e expandAlg) Solve(g *graph.Graph, opt core.Options) (Result, error) {
	if e.inner == nil {
		inner, err := core.ByName("howard")
		if err != nil {
			return Result{}, fmt.Errorf("ratio: expand inner solver: %w", err)
		}
		e.inner = inner
	}
	if err := checkInput(g); err != nil {
		return Result{}, err
	}
	for _, a := range g.Arcs() {
		if a.Transit < 1 {
			return Result{}, fmt.Errorf("ratio: expand requires transit times >= 1, arc %d->%d has %d",
				a.From, a.To, a.Transit)
		}
	}
	// The expanded graph has T = Σt arcs; refuse to materialize an instance
	// no solver could process rather than exhausting memory. This keeps the
	// pseudo-polynomial reduction panic- and OOM-free on hostile transits.
	if t := g.TotalTransit(); t > maxExpandArcs {
		return Result{}, fmt.Errorf("%w: transit expansion needs %d arcs (limit %d)", ErrNumericRange, t, int64(maxExpandArcs))
	}

	exp, origin := Expand(g)
	res, err := e.inner.Solve(exp, opt)
	if err != nil {
		return Result{}, fmt.Errorf("ratio: inner %s on expanded graph: %w", e.inner.Name(), err)
	}

	// Map the expanded cycle back: keep the arcs that begin original arcs,
	// in order.
	var cycle []graph.ArcID
	for _, id := range res.Cycle {
		if orig := origin[id]; orig >= 0 {
			cycle = append(cycle, orig)
		}
	}
	r, ok := cycleRatio(g, cycle)
	if !ok {
		return Result{}, fmt.Errorf("ratio: expanded cycle maps to zero-transit cycle")
	}
	if !r.Equal(res.Mean) {
		return Result{}, fmt.Errorf("ratio: expansion mismatch: mean %v vs mapped ratio %v", res.Mean, r)
	}
	return Result{Ratio: r, Cycle: cycle, Exact: res.Exact, Counts: res.Counts}, nil
}

// Expand builds the transit-expanded graph: each arc (u, v) with transit t
// becomes a chain u → x₁ → … → x_{t−1} → v of t arcs, the first carrying
// the arc's weight and all carrying transit 1. origin[i] gives, for each
// expanded arc, the original ArcID it begins, or −1 for chain fillers.
func Expand(g *graph.Graph) (exp *graph.Graph, origin []graph.ArcID) {
	b := graph.NewBuilder(g.NumNodes(), int(g.TotalTransit()))
	b.AddNodes(g.NumNodes())
	for id := graph.ArcID(0); int(id) < g.NumArcs(); id++ {
		a := g.Arc(id)
		if a.Transit == 1 {
			b.AddArc(a.From, a.To, a.Weight)
			origin = append(origin, id)
			continue
		}
		prev := a.From
		for step := int64(0); step < a.Transit; step++ {
			var next graph.NodeID
			if step == a.Transit-1 {
				next = a.To
			} else {
				next = b.AddNode()
			}
			w := int64(0)
			orig := graph.ArcID(-1)
			if step == 0 {
				w = a.Weight
				orig = id
			}
			b.AddArc(prev, next, w)
			origin = append(origin, orig)
			prev = next
		}
	}
	return b.Build(), origin
}
