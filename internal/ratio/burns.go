package ratio

import (
	"math"

	"repro/internal/core"
	"repro/internal/counter"
	"repro/internal/graph"
)

func init() {
	register("burns", func() Algorithm { return burnsRatio{} })
}

// burnsRatio is Burns' algorithm in its original cost-to-time ratio form
// [Burns 1991], developed for the performance analysis of asynchronous
// circuits. It solves max λ s.t. d(v) − d(u) ≤ w(u,v) − λ·t(u,v) by the
// primal-dual method: each iteration rebuilds the critical subgraph from
// scratch, computes transit-weighted longest-path levels h inside it (so
// critical arcs, for which h(v) ≥ h(u) + t(u,v), stay critical) and takes
// the largest step θ preserving feasibility under d(v) ← d(v) − θ·h(v),
// λ ← λ + θ. It terminates when the critical subgraph becomes cyclic, and
// the terminating cycle is certified exactly.
type burnsRatio struct{}

func (burnsRatio) Name() string { return "burns" }

func (burnsRatio) Solve(g *graph.Graph, opt core.Options) (Result, error) {
	if err := checkInput(g); err != nil {
		return Result{}, err
	}
	n := g.NumNodes()
	m := g.NumArcs()
	var counts counter.Counts

	minW, maxW := g.WeightRange()
	scale := math.Max(1, math.Max(math.Abs(float64(minW)), math.Abs(float64(maxW))))
	tol := 1e-7 * scale
	minTol := 1e-13 * scale

	d := make([]float64, n)
	// Initial feasible point: λ small enough that w − λt ≥ 0 for all arcs
	// with t > 0 and w − λ·0 = w ≥ ... arcs with t = 0 need w ≥ d(v) − d(u)
	// = 0, which may fail for negative zero-transit arcs; start from the
	// trivially feasible λ = −(n·|w|max + 1) and potentials from one
	// Bellman–Ford pass at that λ.
	absW := maxW
	if -minW > absW {
		absW = -minW
	}
	lambda := -float64(int64(n)*absW + 1)
	oracle := newOracle(g, opt, &counts)
	defer oracle.Close()
	// Potentials: shortest distances under w − λt (feasible since ρ* > λ).
	{
		neg, _, err := oracle.Probe(-(int64(n)*absW + 1), 1)
		if err != nil {
			return Result{}, err
		}
		if neg {
			// A cycle negative even at λ below every ratio can only mean a
			// non-positive total transit time slipped past validation.
			return Result{}, ErrNonPositiveTransit
		}
		for v, dv := range oracle.Dist() {
			d[v] = float64(dv)
		}
	}

	slack := make([]float64, m)
	critical := make([]bool, m)
	indeg := make([]int32, n)
	h := make([]float64, n)
	order := make([]graph.NodeID, 0, n)

	maxIter := opt.MaxIterations
	if maxIter <= 0 {
		maxIter = 4*n*n + 100
	}
	for iter := 0; iter < maxIter; iter++ {
		if opt.Canceled() {
			return Result{}, core.ErrCanceled
		}
		counts.Iterations++

		for id := 0; id < m; id++ {
			counts.Relaxations++
			a := g.Arc(graph.ArcID(id))
			slack[id] = float64(a.Weight) - lambda*float64(a.Transit) - (d[a.To] - d[a.From])
			critical[id] = slack[id] <= tol
		}

		for v := range indeg {
			indeg[v] = 0
			h[v] = 0
		}
		for id := 0; id < m; id++ {
			if critical[id] {
				indeg[g.Arc(graph.ArcID(id)).To]++
			}
		}
		order = order[:0]
		for v := graph.NodeID(0); int(v) < n; v++ {
			if indeg[v] == 0 {
				order = append(order, v)
			}
		}
		for qi := 0; qi < len(order); qi++ {
			u := order[qi]
			for _, id := range g.OutArcs(u) {
				if !critical[id] {
					continue
				}
				a := g.Arc(id)
				if nh := h[u] + float64(a.Transit); nh > h[a.To] {
					h[a.To] = nh
				}
				indeg[a.To]--
				if indeg[a.To] == 0 {
					order = append(order, a.To)
				}
			}
		}

		if len(order) < n {
			cycle, okc := criticalRatioCycleFrom(g, critical, order, n)
			if okc {
				counts.CyclesExamined++
				if r, ok := cycleRatio(g, cycle); ok {
					neg, _, err := oracle.Probe(r.Num(), r.Den())
					if err != nil {
						return Result{}, err
					}
					if !neg {
						return Result{Ratio: r, Cycle: cycle, Exact: true, Counts: counts}, nil
					}
				}
			}
			// Either the float tolerance admitted a spurious critical subgraph
			// (extraction failed) or the candidate cycle is not yet optimal;
			// tighten and retry rather than crash.
			tol /= 10
			if tol < minTol {
				return Result{}, ErrIterationLimit
			}
			continue
		}

		theta := math.Inf(1)
		for id := 0; id < m; id++ {
			a := g.Arc(graph.ArcID(id))
			c := float64(a.Transit) + h[a.From] - h[a.To]
			if c <= 1e-9 {
				continue
			}
			if step := slack[id] / c; step < theta {
				theta = step
			}
		}
		if math.IsInf(theta, 1) {
			return Result{}, ErrIterationLimit
		}
		if theta < 0 {
			theta = 0
		}
		lambda += theta
		for v := 0; v < n; v++ {
			d[v] -= theta * h[v]
		}
	}
	return Result{}, ErrIterationLimit
}

// criticalRatioCycleFrom mirrors core's critical-cycle extraction: every
// node Kahn could not remove has a critical predecessor among such nodes,
// so walking predecessors revisits a node and closes a cycle. Kahn's
// invariant guarantees the predecessor exists whenever the critical flags
// are consistent with the order; ok=false reports the inconsistent case
// (possible only through float-tolerance drift) so the caller can tighten
// and retry instead of crashing.
func criticalRatioCycleFrom(g *graph.Graph, critical []bool, order []graph.NodeID, n int) ([]graph.ArcID, bool) {
	inOrder := make([]bool, n)
	for _, v := range order {
		inOrder[v] = true
	}
	pred := func(v graph.NodeID) graph.ArcID {
		for _, id := range g.InArcs(v) {
			if critical[id] && !inOrder[g.Arc(id).From] {
				return id
			}
		}
		return -1
	}
	var start graph.NodeID
	for v := graph.NodeID(0); int(v) < n; v++ {
		if !inOrder[v] {
			start = v
			break
		}
	}
	pos := make(map[graph.NodeID]int, 16)
	var rev []graph.ArcID
	v := start
	for {
		if at, seen := pos[v]; seen {
			seg := rev[at:]
			cycle := make([]graph.ArcID, len(seg))
			for i, id := range seg {
				cycle[len(seg)-1-i] = id
			}
			return cycle, true
		}
		pos[v] = len(rev)
		id := pred(v)
		if id < 0 {
			return nil, false
		}
		rev = append(rev, id)
		v = g.Arc(id).From
	}
}
