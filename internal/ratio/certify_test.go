package ratio

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/verify"
)

func mustRatioAlgo(t *testing.T, name string) Algorithm {
	t.Helper()
	a, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestCertifyRatioMatchesBruteForce proves the ratio certificate
// independently on enumerable graphs.
func TestCertifyRatioMatchesBruteForce(t *testing.T) {
	howard := mustRatioAlgo(t, "howard")
	for seed := uint64(0); seed < 10; seed++ {
		g, err := gen.Sprand(gen.SprandConfig{N: 8, M: 20, MinWeight: -50, MaxWeight: 50, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		g = withTransits(g, 4)
		res, err := MinimumCycleRatio(g, howard, core.Options{Certify: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Certificate == nil {
			t.Fatalf("seed %d: no certificate", seed)
		}
		want, _, err := verify.BruteForceMinRatio(g)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Ratio.Equal(want) {
			t.Errorf("seed %d: certified ρ* = %v, brute force = %v", seed, res.Ratio, want)
		}
		if err := verify.CheckRatioCycleIsOptimal(g, res.Certificate.Value, res.Certificate.Witness); err != nil {
			t.Errorf("seed %d: certificate fails independent check: %v", seed, err)
		}
	}
}

// TestCertifyRatioEpsilonModeSnaps certifies an approximate (epsilon-mode)
// Lawler run: the reported value is inexact, certification snaps it to the
// exact ρ* and proves it.
func TestCertifyRatioEpsilonModeSnaps(t *testing.T) {
	lawler := mustRatioAlgo(t, "lawler")
	howard := mustRatioAlgo(t, "howard")
	for seed := uint64(0); seed < 8; seed++ {
		g, err := gen.Sprand(gen.SprandConfig{N: 8, M: 20, MinWeight: -30, MaxWeight: 30, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		g = withTransits(g, 3)
		exact, err := MinimumCycleRatio(g, howard, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := MinimumCycleRatio(g, lawler, core.Options{Epsilon: 1e-9, Certify: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Exact || res.Certificate == nil || !res.Certificate.Snapped {
			t.Errorf("seed %d: want exact snapped certificate, got exact=%v cert=%+v", seed, res.Exact, res.Certificate)
		}
		if !res.Ratio.Equal(exact.Ratio) {
			t.Errorf("seed %d: certified ρ* = %v, exact = %v", seed, res.Ratio, exact.Ratio)
		}
	}
}

// TestCertifyRatioMaximum pins the negation path for ratios.
func TestCertifyRatioMaximum(t *testing.T) {
	howard := mustRatioAlgo(t, "howard")
	for seed := uint64(0); seed < 5; seed++ {
		g, err := gen.Sprand(gen.SprandConfig{N: 8, M: 20, MinWeight: -50, MaxWeight: 50, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		g = withTransits(g, 4)
		res, err := MaximumCycleRatio(g, howard, core.Options{Certify: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Certificate == nil || !res.Certificate.Maximize {
			t.Fatalf("seed %d: want a maximization certificate, got %+v", seed, res.Certificate)
		}
		if !res.Certificate.Value.Equal(res.Ratio) {
			t.Errorf("seed %d: certificate value %v != ratio %v", seed, res.Certificate.Value, res.Ratio)
		}
	}
}

// TestRatioHowardLargeTransits is the epsilon-derivation regression: with
// transit times dwarfing weights the bias values reach magnitude
// |w|max·tmax, and an eps derived from the weight range alone is smaller
// than the float round-off of those biases — policy iteration then churns on
// noise until the iteration limit. The transit-aware eps must converge and
// agree with brute force.
func TestRatioHowardLargeTransits(t *testing.T) {
	howard := mustRatioAlgo(t, "howard")
	for seed := uint64(0); seed < 8; seed++ {
		g, err := gen.Sprand(gen.SprandConfig{N: 10, M: 30, MinWeight: -9, MaxWeight: 9, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		arcs := append([]graph.Arc(nil), g.Arcs()...)
		for i := range arcs {
			// Transits up to ~10^8, six orders of magnitude above the weights.
			arcs[i].Transit = 1 + (int64(i)*37417+int64(seed)*104729)%100_000_000
		}
		tg := graph.FromArcs(g.NumNodes(), arcs)
		res, err := MinimumCycleRatio(tg, howard, core.Options{Certify: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want, _, err := verify.BruteForceMinRatio(tg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Ratio.Equal(want) {
			t.Errorf("seed %d: ρ* = %v, brute force = %v", seed, res.Ratio, want)
		}
	}
}

// TestRatioBiasEpsilonScales pins the derivation itself.
func TestRatioBiasEpsilonScales(t *testing.T) {
	mk := func(w, tr int64) *graph.Graph {
		return graph.FromArcs(2, []graph.Arc{
			{From: 0, To: 1, Weight: w, Transit: tr},
			{From: 1, To: 0, Weight: -w, Transit: 1},
		})
	}
	small := ratioBiasEpsilon(mk(10, 1))
	bigT := ratioBiasEpsilon(mk(10, 1_000_000))
	if bigT <= small {
		t.Errorf("eps must grow with the transit range: eps(t=1)=%g, eps(t=1e6)=%g", small, bigT)
	}
	if got, want := bigT/small, 1_000_000.0; got < want*0.9 || got > want*1.1 {
		t.Errorf("eps should scale linearly with maxT: ratio %g, want ~%g", got, want)
	}
}

// TestExpandResolvesInnerLazily pins the init-panic fix: the registered
// "expand" algorithm carries no inner solver until Solve, and solving still
// works end to end.
func TestExpandResolvesInnerLazily(t *testing.T) {
	expand := mustRatioAlgo(t, "expand")
	if got := expand.Name(); got != "expand-howard" {
		t.Errorf("Name() = %q, want expand-howard", got)
	}
	g := graph.FromArcs(3, []graph.Arc{
		{From: 0, To: 1, Weight: 2, Transit: 2},
		{From: 1, To: 2, Weight: 4, Transit: 1},
		{From: 2, To: 0, Weight: 3, Transit: 3},
	})
	res, err := MinimumCycleRatio(g, expand, core.Options{Certify: true})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := verify.BruteForceMinRatio(g)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ratio.Equal(want) {
		t.Errorf("expand ρ* = %v, want %v", res.Ratio, want)
	}
}

// TestRatioNumericRangeTyped drives ratio solves into overflow territory and
// demands the typed error, never a panic.
func TestRatioNumericRangeTyped(t *testing.T) {
	big := int64(core.MaxWeightMagnitude)
	g := graph.FromArcs(2, []graph.Arc{
		{From: 0, To: 1, Weight: big, Transit: big},
		{From: 1, To: 0, Weight: -big, Transit: big},
	})
	for _, name := range Names() {
		algo := mustRatioAlgo(t, name)
		res, err := MinimumCycleRatio(g, algo, core.Options{})
		if err != nil {
			if !errors.Is(err, ErrNumericRange) && !errors.Is(err, core.ErrNumericRange) &&
				!errors.Is(err, core.ErrWeightRange) && !errors.Is(err, ErrIterationLimit) {
				t.Errorf("%s: err = %v, want a typed error", name, err)
			}
			continue
		}
		if res.Ratio.Den() == 0 {
			t.Errorf("%s: zero-denominator ratio", name)
		}
	}
}
