package ratio

import (
	"repro/internal/core"
	"repro/internal/counter"
	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/pq"
)

func init() {
	register("ko", func() Algorithm { return koRatio{} })
	register("yto", func() Algorithm { return ytoRatio{} })
}

// The parametric shortest path machinery generalizes from the mean problem
// to the ratio problem by replacing "path length in arcs" with "path
// transit time": distances in G_λ are d(v) = a(v) − λ·b(v) with a the path
// weight and b the path transit, and a non-tree arc (u, v) becomes tight at
// λ = (a(u)+w−a(v)) / (b(u)+t−b(v)). The Karp–Orlin and Young–Tarjan–Orlin
// pivot processes carry over verbatim; a pivot that closes a cycle
// terminates with ρ* equal to the breakpoint (exact rational). This is the
// direction the paper notes is always available ("it is also possible to
// solve MCRP using an algorithm for MCMP" and vice versa [Gondran &
// Minoux]); here the parametric algorithms solve MCRP natively.

type ratioTree struct {
	g       *graph.Graph
	a       []int64
	b       []int64
	treeArc []graph.ArcID

	childHead, childNext, childPrev []int32
	inSub                           []bool
	subtree                         []graph.NodeID
}

func newRatioTree(g *graph.Graph) *ratioTree {
	n := g.NumNodes()
	t := &ratioTree{
		g:         g,
		a:         make([]int64, n),
		b:         make([]int64, n),
		treeArc:   make([]graph.ArcID, n),
		childHead: make([]int32, n),
		childNext: make([]int32, n),
		childPrev: make([]int32, n),
		inSub:     make([]bool, n),
	}
	for i := 0; i < n; i++ {
		t.treeArc[i] = -1
		t.childHead[i] = -1
		t.childNext[i] = -1
		t.childPrev[i] = -1
	}
	return t
}

// initShortestTree builds the lexicographic shortest path tree at the
// integer λ0, below every cycle ratio. Zero-transit arcs can carry
// negative reduced weights at any λ, so the tree is computed with a
// lexicographic Bellman–Ford (cost = a − λ0·b exactly, ties broken toward
// larger transit, which is the shorter path for λ slightly above λ0).
func (t *ratioTree) initShortestTree(lambda0 int64) {
	g := t.g
	n := g.NumNodes()
	const unreach = int64(1) << 62
	cost := make([]int64, n)
	for i := range cost {
		cost[i] = unreach
		t.a[i] = 0
		t.b[i] = 0
	}
	cost[0] = 0
	for pass := 0; pass < n; pass++ {
		changed := false
		for id := graph.ArcID(0); int(id) < g.NumArcs(); id++ {
			arc := g.Arc(id)
			if cost[arc.From] >= unreach {
				continue
			}
			nc := cost[arc.From] + arc.Weight - lambda0*arc.Transit
			nb := t.b[arc.From] + arc.Transit
			if nc < cost[arc.To] || (nc == cost[arc.To] && nb > t.b[arc.To]) {
				cost[arc.To] = nc
				t.a[arc.To] = t.a[arc.From] + arc.Weight
				t.b[arc.To] = nb
				t.treeArc[arc.To] = id
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for v := graph.NodeID(0); int(v) < n; v++ {
		if t.treeArc[v] >= 0 {
			t.linkChild(v)
		}
	}
}

func (t *ratioTree) linkChild(v graph.NodeID) {
	u := t.g.Arc(t.treeArc[v]).From
	t.childNext[v] = t.childHead[u]
	t.childPrev[v] = -1
	if t.childHead[u] >= 0 {
		t.childPrev[t.childHead[u]] = int32(v)
	}
	t.childHead[u] = int32(v)
}

func (t *ratioTree) unlinkChild(v graph.NodeID) {
	u := t.g.Arc(t.treeArc[v]).From
	if t.childPrev[v] >= 0 {
		t.childNext[t.childPrev[v]] = t.childNext[v]
	} else {
		t.childHead[u] = t.childNext[v]
	}
	if t.childNext[v] >= 0 {
		t.childPrev[t.childNext[v]] = t.childPrev[v]
	}
	t.childNext[v], t.childPrev[v] = -1, -1
}

func (t *ratioTree) collectSubtree(v graph.NodeID) {
	t.subtree = t.subtree[:0]
	t.subtree = append(t.subtree, v)
	t.inSub[v] = true
	for qi := 0; qi < len(t.subtree); qi++ {
		u := t.subtree[qi]
		for c := t.childHead[u]; c >= 0; c = t.childNext[c] {
			t.inSub[c] = true
			t.subtree = append(t.subtree, graph.NodeID(c))
		}
	}
}

func (t *ratioTree) releaseSubtree() {
	for _, v := range t.subtree {
		t.inSub[v] = false
	}
}

func (t *ratioTree) breakpoint(id graph.ArcID) (core.Frac, bool) {
	arc := t.g.Arc(id)
	den := t.b[arc.From] + arc.Transit - t.b[arc.To]
	if den <= 0 {
		return core.Frac{}, false
	}
	return core.Frac{Num: t.a[arc.From] + arc.Weight - t.a[arc.To], Den: den}, true
}

func (t *ratioTree) pivot(e graph.ArcID) []graph.NodeID {
	arc := t.g.Arc(e)
	u, v := arc.From, arc.To
	deltaA := t.a[u] + arc.Weight - t.a[v]
	deltaB := t.b[u] + arc.Transit - t.b[v]
	t.unlinkChild(v)
	t.treeArc[v] = e
	t.linkChild(v)
	t.collectSubtree(v)
	for _, x := range t.subtree {
		t.a[x] += deltaA
		t.b[x] += deltaB
	}
	return t.subtree
}

func (t *ratioTree) cycleThrough(e graph.ArcID) []graph.ArcID {
	arc := t.g.Arc(e)
	u, v := arc.From, arc.To
	var rev []graph.ArcID
	for x := u; x != v; {
		id := t.treeArc[x]
		rev = append(rev, id)
		x = t.g.Arc(id).From
	}
	cycle := make([]graph.ArcID, 0, len(rev)+1)
	for i := len(rev) - 1; i >= 0; i-- {
		cycle = append(cycle, rev[i])
	}
	return append(cycle, e)
}

func fracLess(a, b core.Frac) bool {
	return numeric.CmpFrac(a.Num, a.Den, b.Num, b.Den) < 0
}

// ratioParametricOverflows reports whether the parametric machinery's exact
// int64 arithmetic can overflow on g: the initial tree is built at
// λ0 = −(n·|w|max + 1), so reduced path costs accumulate up to
// n·(|w|max + |λ0|·tmax). The estimate runs in float64 — it only needs to be
// conservative, not exact.
func ratioParametricOverflows(g *graph.Graph) bool {
	minW, maxW := g.WeightRange()
	absW := maxW
	if -minW > absW {
		absW = -minW
	}
	if absW < 1 {
		absW = 1
	}
	_, maxT := g.TransitRange()
	if maxT < 1 {
		maxT = 1
	}
	n := float64(g.NumNodes())
	lam := n*float64(absW) + 1
	per := float64(absW) + lam*float64(maxT)
	return n*per >= float64(int64(1)<<61)
}

// ratioLambda0 returns an integer strictly below every cycle ratio.
func ratioLambda0(g *graph.Graph) int64 {
	minW, maxW := g.WeightRange()
	absW := maxW
	if -minW > absW {
		absW = -minW
	}
	// |ρ(C)| = |w(C)|/t(C) <= n·absW.
	return -(int64(g.NumNodes())*absW + 1)
}

// koRatio is the Karp–Orlin parametric algorithm in ratio form (arc-keyed
// heap).
type koRatio struct{}

func (koRatio) Name() string { return "ko" }

func (koRatio) Solve(g *graph.Graph, opt core.Options) (Result, error) {
	if err := checkInput(g); err != nil {
		return Result{}, err
	}
	if ratioParametricOverflows(g) {
		return Result{}, ErrNumericRange
	}
	var counts counter.Counts
	t := newRatioTree(g)
	t.initShortestTree(ratioLambda0(g))

	h := pq.New[core.Frac](opt.HeapKind, fracLess, &counts)
	arcNode := make([]pq.Node[core.Frac], g.NumArcs())

	isTreeArc := func(id graph.ArcID) bool {
		return t.treeArc[g.Arc(id).To] == id
	}
	refresh := func(id graph.ArcID) {
		if isTreeArc(id) {
			if arcNode[id] != nil {
				h.Delete(arcNode[id])
				arcNode[id] = nil
			}
			return
		}
		key, ok := t.breakpoint(id)
		switch {
		case !ok:
			if arcNode[id] != nil {
				h.Delete(arcNode[id])
				arcNode[id] = nil
			}
		case arcNode[id] == nil:
			arcNode[id] = h.Insert(key, int32(id))
		default:
			old := arcNode[id].GetKey()
			if fracLess(key, old) {
				h.DecreaseKey(arcNode[id], key)
			} else if fracLess(old, key) {
				h.Delete(arcNode[id])
				arcNode[id] = h.Insert(key, int32(id))
			}
		}
	}
	for id := graph.ArcID(0); int(id) < g.NumArcs(); id++ {
		refresh(id)
	}

	maxIter := opt.MaxIterations
	if maxIter <= 0 {
		maxIter = g.NumNodes()*g.NumNodes() + int(g.TotalTransit()) + 16
	}
	for iter := 0; iter < maxIter; iter++ {
		if opt.Canceled() {
			return Result{}, core.ErrCanceled
		}
		top := h.ExtractMin()
		if top == nil {
			return Result{}, ErrAcyclic
		}
		counts.Iterations++
		e := graph.ArcID(top.GetValue())
		arcNode[e] = nil
		key := top.GetKey()
		arc := g.Arc(e)

		t.collectSubtree(arc.To)
		closes := t.inSub[arc.From]
		t.releaseSubtree()
		if closes {
			cycle := t.cycleThrough(e)
			return Result{
				Ratio:  numeric.NewRat(key.Num, key.Den),
				Cycle:  cycle,
				Exact:  true,
				Counts: counts,
			}, nil
		}

		sub := t.pivot(e)
		for _, x := range sub {
			for _, id := range g.OutArcs(x) {
				if !t.inSub[g.Arc(id).To] {
					refresh(id)
				}
			}
			for _, id := range g.InArcs(x) {
				if !t.inSub[g.Arc(id).From] {
					refresh(id)
				}
			}
		}
		t.releaseSubtree()
	}
	return Result{}, ErrIterationLimit
}

// ytoRatio is the Young–Tarjan–Orlin refinement in ratio form (node-keyed
// heap).
type ytoRatio struct{}

func (ytoRatio) Name() string { return "yto" }

func (ytoRatio) Solve(g *graph.Graph, opt core.Options) (Result, error) {
	if err := checkInput(g); err != nil {
		return Result{}, err
	}
	if ratioParametricOverflows(g) {
		return Result{}, ErrNumericRange
	}
	var counts counter.Counts
	t := newRatioTree(g)
	t.initShortestTree(ratioLambda0(g))

	n := g.NumNodes()
	h := pq.New[core.Frac](opt.HeapKind, fracLess, &counts)
	nodeEntry := make([]pq.Node[core.Frac], n)
	bestArc := make([]graph.ArcID, n)

	nodeKey := func(v graph.NodeID) (core.Frac, graph.ArcID, bool) {
		var (
			best    core.Frac
			bestID  graph.ArcID = -1
			haveKey bool
		)
		for _, id := range g.InArcs(v) {
			if t.treeArc[v] == id {
				continue
			}
			key, ok := t.breakpoint(id)
			if !ok {
				continue
			}
			if !haveKey || fracLess(key, best) {
				best, bestID, haveKey = key, id, true
			}
		}
		return best, bestID, haveKey
	}
	refreshNode := func(v graph.NodeID) {
		key, id, ok := nodeKey(v)
		bestArc[v] = id
		switch {
		case !ok:
			if nodeEntry[v] != nil {
				h.Delete(nodeEntry[v])
				nodeEntry[v] = nil
			}
		case nodeEntry[v] == nil:
			nodeEntry[v] = h.Insert(key, int32(v))
		default:
			old := nodeEntry[v].GetKey()
			if fracLess(key, old) {
				h.DecreaseKey(nodeEntry[v], key)
			} else if fracLess(old, key) {
				h.Delete(nodeEntry[v])
				nodeEntry[v] = h.Insert(key, int32(v))
			}
		}
	}
	for v := graph.NodeID(0); int(v) < n; v++ {
		refreshNode(v)
	}

	dirty := make([]bool, n)
	var dirtyList []graph.NodeID
	markDirty := func(v graph.NodeID) {
		if !dirty[v] {
			dirty[v] = true
			dirtyList = append(dirtyList, v)
		}
	}

	maxIter := opt.MaxIterations
	if maxIter <= 0 {
		maxIter = n*n + int(g.TotalTransit()) + 16
	}
	for iter := 0; iter < maxIter; iter++ {
		if opt.Canceled() {
			return Result{}, core.ErrCanceled
		}
		top := h.ExtractMin()
		if top == nil {
			return Result{}, ErrAcyclic
		}
		counts.Iterations++
		v := graph.NodeID(top.GetValue())
		nodeEntry[v] = nil
		key := top.GetKey()
		e := bestArc[v]
		arc := g.Arc(e)

		t.collectSubtree(arc.To)
		closes := t.inSub[arc.From]
		t.releaseSubtree()
		if closes {
			cycle := t.cycleThrough(e)
			return Result{
				Ratio:  numeric.NewRat(key.Num, key.Den),
				Cycle:  cycle,
				Exact:  true,
				Counts: counts,
			}, nil
		}

		sub := t.pivot(e)
		dirtyList = dirtyList[:0]
		for _, x := range sub {
			markDirty(x)
			for _, id := range g.OutArcs(x) {
				to := g.Arc(id).To
				if !t.inSub[to] {
					markDirty(to)
				}
			}
		}
		t.releaseSubtree()
		for _, x := range dirtyList {
			dirty[x] = false
			refreshNode(x)
		}
	}
	return Result{}, ErrIterationLimit
}
