//go:build !race

package ratio

// raceEnabled reports whether this test binary was built with the race
// detector; see race_enabled_test.go.
const raceEnabled = false
