package ratio_test

// External test package: the differential fuzz target reports failures
// through the shared shrinking reporter (internal/testutil), which imports
// ratio and therefore cannot be used from internal test files. The fuzz
// corpus under testdata/fuzz/FuzzRatioDifferential is keyed by target name,
// not package name, so the accumulated seeds keep working.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ratio"
	"repro/internal/testutil"
	"repro/internal/verify"
)

// FuzzRatioDifferential cross-checks every ratio algorithm against the
// brute-force oracle with certification on. When the oracle rejects the
// instance (acyclic, or a cycle with non-positive total transit) every
// solver must reject it too — typed errors, never panics. ρ* mismatches are
// minimized and persisted to testdata/crashers/ before failing.
func FuzzRatioDifferential(f *testing.F) {
	f.Add([]byte{3, 0, 0, 1, 5, 2, 1, 2, 250, 1, 2, 0, 3, 3})
	f.Add([]byte{0, 1, 0, 0, 200, 0, 1, 1, 10, 2})
	f.Add([]byte{2, 0, 0, 1, 7, 1, 1, 2, 7, 2, 2, 0, 7, 3})
	f.Add([]byte{4, 1, 1, 1, 128, 0, 2, 2, 127, 0, 1, 2, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, allowZero := testutil.DecodeRatioGraph(data)
		if g == nil {
			return
		}
		want, _, oracleErr := verify.BruteForceMinRatio(g)
		const repro = "go test -run FuzzRatioDifferential ./internal/ratio/ (graph below in internal/graph text format)"

		names := []string{"howard", "lawler", "burns", "ko", "yto", "dinkelbach", "megiddo", "sternbrocot", "bhk"}
		if !allowZero {
			names = append(names, "expand")
		}
		for _, name := range names {
			algo, err := ratio.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := ratio.MinimumCycleRatio(g, algo, core.Options{Certify: true})
			if oracleErr != nil {
				if err == nil {
					t.Fatalf("%s: oracle failed (%v) but solver returned %v", name, oracleErr, res.Ratio)
				}
				continue
			}
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !res.Ratio.Equal(want) {
				small, path := testutil.SaveShrunkCrasher(t, "FuzzRatioDifferential-"+name, g,
					func(g *graph.Graph) bool {
						w, _, err1 := verify.BruteForceMinRatio(g)
						r, err2 := ratio.MinimumCycleRatio(g, algo, core.Options{})
						return err1 == nil && err2 == nil && !r.Ratio.Equal(w)
					}, repro)
				t.Fatalf("%s: ρ* = %v, oracle %v (minimized to %d arcs, saved at %q)",
					name, res.Ratio, want, small.NumArcs(), path)
			}
			if res.Certificate == nil || !res.Certificate.Value.Equal(want) {
				t.Fatalf("%s: bad certificate %+v", name, res.Certificate)
			}
			if err := verify.CheckRatioCycleIsOptimal(g, res.Certificate.Value, res.Certificate.Witness); err != nil {
				t.Fatalf("%s: certificate fails independent check: %v", name, err)
			}
		}
	})
}
