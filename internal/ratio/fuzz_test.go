package ratio

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/verify"
)

// decodeFuzzRatioGraph derives a small ratio instance from fuzz bytes: byte
// 0 picks the node count, byte 1's low bit decides whether zero-transit arcs
// are allowed, then each 4-byte chunk becomes an arc (from, to, int8 weight,
// transit). With zeros allowed transits land in [0, 3] — exercising the
// non-positive-transit-cycle rejection — otherwise in [1, 4], which every
// solver (including the transit expansion) accepts.
func decodeFuzzRatioGraph(data []byte) (*graph.Graph, bool) {
	if len(data) < 6 {
		return nil, false
	}
	n := 2 + int(data[0])%5
	allowZero := data[1]&1 == 1
	data = data[2:]
	var arcs []graph.Arc
	for len(data) >= 4 && len(arcs) < 14 {
		tr := int64(data[3]) % 4
		if !allowZero {
			tr++
		}
		arcs = append(arcs, graph.Arc{
			From:    graph.NodeID(int(data[0]) % n),
			To:      graph.NodeID(int(data[1]) % n),
			Weight:  int64(int8(data[2])),
			Transit: tr,
		})
		data = data[4:]
	}
	if len(arcs) == 0 {
		return nil, false
	}
	return graph.FromArcs(n, arcs), allowZero
}

// FuzzRatioDifferential cross-checks every ratio algorithm against the
// brute-force oracle with certification on. When the oracle rejects the
// instance (acyclic, or a cycle with non-positive total transit) every
// solver must reject it too — typed errors, never panics.
func FuzzRatioDifferential(f *testing.F) {
	f.Add([]byte{3, 0, 0, 1, 5, 2, 1, 2, 250, 1, 2, 0, 3, 3})
	f.Add([]byte{0, 1, 0, 0, 200, 0, 1, 1, 10, 2})
	f.Add([]byte{2, 0, 0, 1, 7, 1, 1, 2, 7, 2, 2, 0, 7, 3})
	f.Add([]byte{4, 1, 1, 1, 128, 0, 2, 2, 127, 0, 1, 2, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, allowZero := decodeFuzzRatioGraph(data)
		if g == nil {
			return
		}
		want, _, oracleErr := verify.BruteForceMinRatio(g)

		names := []string{"howard", "lawler", "burns", "ko", "yto", "dinkelbach", "megiddo", "sternbrocot"}
		if !allowZero {
			names = append(names, "expand")
		}
		for _, name := range names {
			algo, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := MinimumCycleRatio(g, algo, core.Options{Certify: true})
			if oracleErr != nil {
				if err == nil {
					t.Fatalf("%s: oracle failed (%v) but solver returned %v", name, oracleErr, res.Ratio)
				}
				continue
			}
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !res.Ratio.Equal(want) {
				t.Fatalf("%s: ρ* = %v, oracle %v", name, res.Ratio, want)
			}
			if res.Certificate == nil || !res.Certificate.Value.Equal(want) {
				t.Fatalf("%s: bad certificate %+v", name, res.Certificate)
			}
			if err := verify.CheckRatioCycleIsOptimal(g, res.Certificate.Value, res.Certificate.Witness); err != nil {
				t.Fatalf("%s: certificate fails independent check: %v", name, err)
			}
		}
	})
}
