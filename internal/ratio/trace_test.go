package ratio

// The ratio driver and its guarded registry wrapper must emit the same obs
// event stream as core's: SCC decomposition, per-component solver runs with
// the ratio value, and the certification outcome.

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

func TestTraceRatioDriver(t *testing.T) {
	g := randomTransitGraph(t, 24, 72, 5, 7)

	var mu sync.Mutex
	var sccs []obs.SCCEvent
	var dones []obs.SolverDoneEvent
	var certs []obs.CertifyEvent
	tr := &obs.Trace{
		OnSCC:        func(ev obs.SCCEvent) { mu.Lock(); sccs = append(sccs, ev); mu.Unlock() },
		OnSolverDone: func(ev obs.SolverDoneEvent) { mu.Lock(); dones = append(dones, ev); mu.Unlock() },
		OnCertify:    func(ev obs.CertifyEvent) { mu.Lock(); certs = append(certs, ev); mu.Unlock() },
	}

	algo, err := ByName("howard")
	if err != nil {
		t.Fatal(err)
	}
	res, err := MinimumCycleRatio(g, algo, core.Options{Certify: true, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}

	if len(sccs) != 1 {
		t.Fatalf("SCC events = %d, want 1", len(sccs))
	}
	if len(dones) != sccs[0].Components {
		t.Fatalf("SolverDone events = %d, want one per component (%d)", len(dones), sccs[0].Components)
	}
	for _, ev := range dones {
		if ev.Algorithm != "howard" {
			t.Errorf("SolverDone.Algorithm = %q, want howard", ev.Algorithm)
		}
		if ev.Component < 0 || ev.Component >= sccs[0].Components {
			t.Errorf("component tag %d out of range [0, %d)", ev.Component, sccs[0].Components)
		}
		if ev.Err != nil {
			t.Errorf("component %d reported error %v", ev.Component, ev.Err)
		}
	}
	if len(certs) != 1 {
		t.Fatalf("certify events = %d, want 1", len(certs))
	}
	if !certs[0].OK || certs[0].Value != res.Ratio.Float64() {
		t.Errorf("certify event = %+v, want pass at rho* = %g", certs[0], res.Ratio.Float64())
	}
}

func TestTraceRatioDirectSolveUntaggedComponent(t *testing.T) {
	// A direct ratio Algorithm.Solve call (no driver) has no component tag:
	// the guarded wrapper must report Component == -1.
	g := randomTransitGraph(t, 12, 36, 4, 3)
	var mu sync.Mutex
	var dones []obs.SolverDoneEvent
	tr := &obs.Trace{
		OnSolverDone: func(ev obs.SolverDoneEvent) { mu.Lock(); dones = append(dones, ev); mu.Unlock() },
	}
	algo, err := ByName("lawler")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := algo.Solve(g, core.Options{Tracer: tr}); err != nil {
		t.Fatal(err)
	}
	if len(dones) != 1 || dones[0].Component != -1 || dones[0].Algorithm != "lawler" {
		t.Errorf("direct solve events = %+v, want one with Component -1, Algorithm lawler", dones)
	}
}
