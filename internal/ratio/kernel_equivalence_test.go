package ratio

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// withTransits reassigns deterministic transit times in [1, k] so mean-family
// generators produce genuine ratio instances. (The exported twin is
// testutil.WithTransits; this copy exists because internal test files cannot
// import testutil — it imports ratio.)
func withTransits(g *graph.Graph, k int64) *graph.Graph {
	arcs := append([]graph.Arc(nil), g.Arcs()...)
	for i := range arcs {
		arcs[i].Transit = int64(i)%k + 1
	}
	return graph.FromArcs(g.NumNodes(), arcs)
}

// The corpus-wide kernel equivalence gate (TestKernelEquivalenceRatio) lives
// in corpus_equivalence_test.go (package ratio_test) on the shared
// testutil.RatioCorpus; the zero-transit edge cases below need nothing from
// the shared corpus.

// TestKernelEquivalenceRatioZeroTransit pins the conservative paths: graphs
// with zero-transit arcs must solve identically (bounds are disabled but the
// reductions stay exact), and unsupported inputs must fall back cleanly.
func TestKernelEquivalenceRatioZeroTransit(t *testing.T) {
	howard, err := ByName("howard")
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 5; seed++ {
		g, err := gen.Sprand(gen.SprandConfig{N: 15, M: 45, MinWeight: -100, MaxWeight: 100, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		arcs := append([]graph.Arc(nil), g.Arcs()...)
		for i := range arcs {
			arcs[i].Transit = int64(i % 3) // every third arc gets transit 0
		}
		zg := graph.FromArcs(g.NumNodes(), arcs)
		raw, rawErr := MinimumCycleRatio(zg, howard, core.Options{})
		kr, krErr := MinimumCycleRatio(zg, howard, core.Options{Kernelize: true})
		if (rawErr == nil) != (krErr == nil) {
			t.Fatalf("seed %d: error disagreement: raw=%v kernelized=%v", seed, rawErr, krErr)
		}
		if rawErr != nil {
			continue // both reject (e.g. a zero-transit cycle exists)
		}
		if !kr.Ratio.Equal(raw.Ratio) {
			t.Errorf("seed %d: kernelized ρ* = %v, raw = %v", seed, kr.Ratio, raw.Ratio)
		}
	}
}
