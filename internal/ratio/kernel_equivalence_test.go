package ratio

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/numeric"
)

// withTransits reassigns deterministic transit times in [1, k] so mean-family
// generators produce genuine ratio instances.
func withTransits(g *graph.Graph, k int64) *graph.Graph {
	arcs := append([]graph.Arc(nil), g.Arcs()...)
	for i := range arcs {
		arcs[i].Transit = int64(i)%k + 1
	}
	return graph.FromArcs(g.NumNodes(), arcs)
}

// TestKernelEquivalenceRatio mirrors the core package's corpus guarantee for
// the ratio driver: kernelized and raw solves agree on ρ* exactly, and the
// kernelized critical cycle is valid on the original graph with its exact
// recomputed ratio equal to ρ*.
func TestKernelEquivalenceRatio(t *testing.T) {
	type entry struct {
		name string
		g    *graph.Graph
	}
	var corpus []entry
	for _, size := range []struct{ n, m int }{{5, 12}, {20, 60}, {50, 150}} {
		for seed := uint64(0); seed < 6; seed++ {
			g, err := gen.Sprand(gen.SprandConfig{N: size.n, M: size.m, MinWeight: -200, MaxWeight: 200, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			corpus = append(corpus, entry{fmt.Sprintf("sprand-%d-%d", size.n, seed), withTransits(g, 4)})
		}
	}
	for seed := uint64(0); seed < 6; seed++ {
		g, err := gen.Chain(gen.ChainConfig{CoreN: 6, Chains: 5, ChainLen: 25, MinWeight: -40, MaxWeight: 40, SelfLoops: 2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		corpus = append(corpus, entry{fmt.Sprintf("chain-%d", seed), withTransits(g, 3)})
		mg, err := gen.MultiSCC(4, 10, 25, seed)
		if err != nil {
			t.Fatal(err)
		}
		corpus = append(corpus, entry{fmt.Sprintf("multiscc-%d", seed), withTransits(mg, 5)})
	}

	algos := []Algorithm{}
	for _, name := range []string{"howard", "lawler", "burns", "sternbrocot"} {
		a, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		algos = append(algos, a)
	}
	for _, e := range corpus {
		raw, err := MinimumCycleRatio(e.g, algos[0], core.Options{Certify: true})
		if err != nil {
			t.Fatalf("%s: raw solve: %v", e.name, err)
		}
		if raw.Certificate == nil {
			t.Fatalf("%s: certified solve returned no certificate", e.name)
		}
		for _, algo := range algos {
			kr, err := MinimumCycleRatio(e.g, algo, core.Options{Kernelize: true, Certify: true})
			if err != nil {
				t.Fatalf("%s/%s: kernelized solve: %v", e.name, algo.Name(), err)
			}
			if !kr.Ratio.Equal(raw.Ratio) {
				t.Errorf("%s/%s: kernelized ρ* = %v, raw = %v", e.name, algo.Name(), kr.Ratio, raw.Ratio)
				continue
			}
			if kr.Certificate == nil || !kr.Certificate.Value.Equal(kr.Ratio) {
				t.Errorf("%s/%s: missing or mismatched certificate: %+v", e.name, algo.Name(), kr.Certificate)
			}
			if err := e.g.ValidateCycle(kr.Cycle); err != nil {
				t.Errorf("%s/%s: expanded cycle invalid: %v", e.name, algo.Name(), err)
				continue
			}
			w, tr := e.g.CycleWeight(kr.Cycle), e.g.CycleTransit(kr.Cycle)
			if tr <= 0 {
				t.Errorf("%s/%s: expanded cycle has non-positive transit %d", e.name, algo.Name(), tr)
				continue
			}
			if r := numeric.NewRat(w, tr); !r.Equal(kr.Ratio) {
				t.Errorf("%s/%s: expanded cycle ratio %v != reported ρ* %v", e.name, algo.Name(), r, kr.Ratio)
			}
		}
	}
}

// TestKernelEquivalenceRatioZeroTransit pins the conservative paths: graphs
// with zero-transit arcs must solve identically (bounds are disabled but the
// reductions stay exact), and unsupported inputs must fall back cleanly.
func TestKernelEquivalenceRatioZeroTransit(t *testing.T) {
	howard, err := ByName("howard")
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 5; seed++ {
		g, err := gen.Sprand(gen.SprandConfig{N: 15, M: 45, MinWeight: -100, MaxWeight: 100, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		arcs := append([]graph.Arc(nil), g.Arcs()...)
		for i := range arcs {
			arcs[i].Transit = int64(i % 3) // every third arc gets transit 0
		}
		zg := graph.FromArcs(g.NumNodes(), arcs)
		raw, rawErr := MinimumCycleRatio(zg, howard, core.Options{})
		kr, krErr := MinimumCycleRatio(zg, howard, core.Options{Kernelize: true})
		if (rawErr == nil) != (krErr == nil) {
			t.Fatalf("seed %d: error disagreement: raw=%v kernelized=%v", seed, rawErr, krErr)
		}
		if rawErr != nil {
			continue // both reject (e.g. a zero-transit cycle exists)
		}
		if !kr.Ratio.Equal(raw.Ratio) {
			t.Errorf("seed %d: kernelized ρ* = %v, raw = %v", seed, kr.Ratio, raw.Ratio)
		}
	}
}
