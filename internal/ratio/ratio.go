// Package ratio implements the minimum cost-to-time ratio problem (MCRP)
// algorithms of the DAC'99 study: Howard's algorithm, Lawler's algorithm and
// Burns' algorithm in their full ratio form, plus the classical
// transit-time-expansion reduction to the minimum mean problem (the
// Hartmann–Orlin O(Tm) approach).
//
// The cycle ratio of a cycle C is ρ(C) = w(C)/t(C) with t(C) > 0; the
// minimum mean problem is the special case where every transit time is 1,
// which is how the paper reduces its study to MCMP. This package keeps the
// general form so the CAD applications in internal/perf (iteration bounds
// of dataflow graphs, rate analysis) can use true transit times.
package ratio

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/counter"
	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/obs"
	"repro/internal/prep"
)

// Errors mirrored from the mean solvers, plus ratio-specific failures.
var (
	// ErrAcyclic means no cycle exists, so no cycle ratio is defined.
	ErrAcyclic = errors.New("ratio: graph has no cycles")
	// ErrNonPositiveTransit means some cycle has non-positive total transit
	// time, making its ratio undefined (the problem requires t(C) > 0).
	ErrNonPositiveTransit = errors.New("ratio: a cycle with non-positive total transit time exists")
	// ErrNotStronglyConnected mirrors core.ErrNotStronglyConnected.
	ErrNotStronglyConnected = errors.New("ratio: graph is not strongly connected")
	// ErrIterationLimit mirrors core.ErrIterationLimit.
	ErrIterationLimit = errors.New("ratio: iteration limit exceeded")
)

// Result is the outcome of a ratio solver run; Mean holds ρ* (named for
// symmetry with core.Result).
type Result struct {
	// Ratio is ρ*, exact.
	Ratio numeric.Rat
	// Cycle attains the optimum ratio.
	Cycle []graph.ArcID
	// Exact reports whether Ratio is exact (always true under default
	// options).
	Exact bool
	// Counts holds operation counts.
	Counts counter.Counts
	// Certificate is the exact optimality proof, present if and only if the
	// run was driven with core.Options.Certify and the proof succeeded.
	Certificate *core.Certificate
}

// Algorithm is the uniform solver interface, mirroring core.Algorithm.
type Algorithm interface {
	Name() string
	// Solve computes the minimum cycle ratio of a strongly connected cyclic
	// graph in which every cycle has positive total transit time.
	Solve(g *graph.Graph, opt core.Options) (Result, error)
}

var registry = map[string]func() Algorithm{}

func register(name string, ctor func() Algorithm) {
	if _, dup := registry[name]; dup {
		panic("ratio: duplicate algorithm name " + name)
	}
	// Mirror core's panic-free boundary: every handed-out instance converts
	// numeric overflow panics into ErrNumericRange.
	registry[name] = func() Algorithm { return guardedAlg{ctor()} }
}

// ByName returns a fresh instance of the named ratio algorithm. Valid names
// are the ones in Names, plus the meta-algorithm "portfolio" (optionally
// with an explicit roster, e.g. "portfolio:howard+sternbrocot"), which races
// several exact solvers and returns the first answer.
func ByName(name string) (Algorithm, error) {
	if name == ratioPortfolioName || strings.HasPrefix(name, ratioPortfolioName+":") {
		return portfolioByName(name)
	}
	ctor, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("ratio: unknown algorithm %q (known: %v, plus %q)", name, Names(), ratioPortfolioName)
	}
	return ctor(), nil
}

// Names lists the registered ratio algorithms, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// All returns one instance of every registered ratio algorithm.
func All() []Algorithm {
	names := Names()
	out := make([]Algorithm, len(names))
	for i, name := range names {
		out[i], _ = ByName(name)
	}
	return out
}

// checkInput validates the shared Solve preconditions: strong connectivity,
// at least one cycle, non-negative transit times, and no zero-transit cycle
// (a cycle within the zero-transit arc subgraph would have an undefined
// ratio).
func checkInput(g *graph.Graph) error {
	if g.NumNodes() == 0 || g.NumArcs() == 0 {
		return ErrAcyclic
	}
	for _, a := range g.Arcs() {
		if a.Transit < 0 {
			return fmt.Errorf("ratio: negative transit time on arc %d->%d", a.From, a.To)
		}
	}
	if !graph.IsStronglyConnected(g) {
		return ErrNotStronglyConnected
	}
	if g.NumNodes() == 1 {
		hasLoop := false
		for _, a := range g.Arcs() {
			if a.From == a.To {
				hasLoop = true
			}
		}
		if !hasLoop {
			return ErrAcyclic
		}
	}
	// Zero-transit cycles: any cycle among the t = 0 arcs.
	var zeroArcs []graph.Arc
	for _, a := range g.Arcs() {
		if a.Transit == 0 {
			zeroArcs = append(zeroArcs, a)
		}
	}
	if len(zeroArcs) > 0 {
		zg := graph.FromArcs(g.NumNodes(), zeroArcs)
		if graph.HasCycle(zg) {
			return ErrNonPositiveTransit
		}
	}
	return nil
}

// MinimumCycleRatio computes ρ* of an arbitrary graph with the given
// algorithm, decomposing into strongly connected components exactly like
// core.MinimumCycleMean.
func MinimumCycleRatio(g *graph.Graph, algo Algorithm, opt core.Options) (res Result, err error) {
	defer core.RecoverNumericRange(&err, ErrNumericRange)
	res, err = minimumCycleRatioAny(g, algo, opt)
	if err == nil && opt.Certify {
		if cerr := certifyRatio(g, &res, opt.Tracer); cerr != nil {
			return Result{}, cerr
		}
	}
	return res, err
}

// emitSCC mirrors core's decomposition event for the ratio driver.
func emitSCC(tr *obs.Trace, comps []graph.Component) {
	if !tr.Enabled() {
		return
	}
	ev := obs.SCCEvent{Components: len(comps), Sizes: make([]int, len(comps))}
	for i, c := range comps {
		ev.Sizes[i] = c.Graph.NumNodes()
		ev.Nodes += c.Graph.NumNodes()
		ev.Arcs += c.Graph.NumArcs()
	}
	tr.SCC(ev)
}

// minimumCycleRatioAny is MinimumCycleRatio without the certification and
// recovery wrapper.
func minimumCycleRatioAny(g *graph.Graph, algo Algorithm, opt core.Options) (Result, error) {
	comps := graph.CyclicComponents(g)
	if len(comps) == 0 {
		return Result{}, ErrAcyclic
	}
	emitSCC(opt.Tracer, comps)
	var (
		best  Result
		found bool
	)
	for ci, comp := range comps {
		var (
			r   Result
			err error
		)
		sub := opt.WithTraceComponent(ci)
		if opt.Kernelize {
			kern := prep.Kernelize(comp.Graph, prep.Ratio)
			opt.Tracer.Kernel(kern.TraceEvent(ci))
			if found && kern.Err == nil && kern.HasBounds && !kern.Lower.Less(best.Ratio) {
				// Cross-SCC pruning: every cycle of this component has ratio
				// at least kern.Lower ≥ the incumbent, so it cannot win.
				continue
			}
			r, err = solveComponentKernelized(algo, sub, comp.Graph, kern)
		} else {
			r, err = algo.Solve(comp.Graph, sub)
		}
		if err != nil {
			return Result{}, fmt.Errorf("ratio: %s on component of %d nodes: %w", algo.Name(), comp.Graph.NumNodes(), err)
		}
		cycle := make([]graph.ArcID, len(r.Cycle))
		for i, id := range r.Cycle {
			cycle[i] = comp.ArcMap[id]
		}
		r.Cycle = cycle
		if !found || r.Ratio.Less(best.Ratio) {
			counts := best.Counts
			counts.Add(r.Counts)
			best = r
			best.Counts = counts
			found = true
		} else {
			best.Counts.Add(r.Counts)
		}
	}
	return best, nil
}

// solveComponentKernelized solves one strongly connected cyclic component g
// through its Ratio-mode kernel. Unlike the mean problem, a contracted ratio
// kernel is still a plain ratio instance (transit times accumulate), so the
// caller's algorithm solves it directly, with sharpened ρ* bounds when
// available. Any kernel-solve failure falls back to an unkernelized solve of
// the original component: accumulated kernel weights can exceed a solver's
// range even when the original weights do not, and the raw solve also
// reproduces the exact diagnostics an unkernelized run would report.
func solveComponentKernelized(algo Algorithm, opt core.Options, g *graph.Graph, kern *prep.Kernel) (Result, error) {
	if kern.Err != nil || (kern.Solved && !kern.HasCandidate) {
		return algo.Solve(g, opt)
	}
	var best Result
	have := false
	if kern.HasCandidate {
		best = Result{Ratio: kern.CandidateValue, Cycle: kern.CandidateCycle(), Exact: true}
		have = true
	}
	if !kern.Solved {
		sub := opt
		if kern.HasBounds {
			lo, hi := kern.Lower, kern.Upper
			sub.LambdaLower, sub.LambdaUpper = &lo, &hi
		}
		r, err := algo.Solve(kern.G, sub)
		if err != nil {
			return algo.Solve(g, opt)
		}
		r.Cycle = kern.ExpandCycle(r.Cycle)
		cts := r.Counts
		if !have || r.Ratio.Less(best.Ratio) {
			best = r
		}
		best.Counts = cts
	}
	return best, nil
}

// MaximumCycleRatio computes the maximum cycle ratio by weight negation.
// This is the quantity CAD applications usually need: the iteration bound
// of a dataflow graph and the cycle period of an event graph are maximum
// ratios.
func MaximumCycleRatio(g *graph.Graph, algo Algorithm, opt core.Options) (Result, error) {
	r, err := MinimumCycleRatio(g.NegateWeights(), algo, opt)
	if err != nil {
		return Result{}, err
	}
	r.Ratio = r.Ratio.Neg()
	if r.Certificate != nil {
		// The proof ran on the negated instance; report it in the caller's
		// orientation (arc IDs are shared between g and its negation).
		r.Certificate.Value = r.Certificate.Value.Neg()
		r.Certificate.Maximize = true
	}
	return r, nil
}

// cycleRatio returns w(C)/t(C) for a cycle, or ok=false if t(C) <= 0.
func cycleRatio(g *graph.Graph, cycle []graph.ArcID) (numeric.Rat, bool) {
	t := g.CycleTransit(cycle)
	if t <= 0 {
		return numeric.Rat{}, false
	}
	return numeric.NewRat(g.CycleWeight(cycle), t), true
}

// hasNegativeCycleRatio reports whether some cycle C has
// q·w(C) − p·t(C) < 0, i.e. ρ(C) < p/q, returning one such cycle. It is a
// convenience wrapper over the shared oracle for call sites that hold no
// oracle of their own (certification, tests); out-of-range inputs surface
// as a "numeric:" panic caught by the package's panic-free boundary.
func hasNegativeCycleRatio(g *graph.Graph, p, q int64, counts *counter.Counts) (bool, []graph.ArcID) {
	o := newOracle(g, core.Options{}, counts)
	defer o.Close()
	neg, cycle, err := o.Probe(p, q)
	if err != nil {
		panic("numeric: " + err.Error())
	}
	return neg, cycle
}

// extractCriticalRatioCycle returns a cycle whose ratio is exactly rho,
// assuming rho = ρ*: shortest distances under the scaled weights
// q·w − p·t leave the critical (tight) arcs, any cycle of which has ratio
// exactly ρ*.
func extractCriticalRatioCycle(g *graph.Graph, rho numeric.Rat) ([]graph.ArcID, error) {
	p, q := rho.Num(), rho.Den()
	o := newOracle(g, core.Options{}, nil)
	defer o.Close()
	neg, _, err := o.Probe(p, q)
	if err != nil {
		return nil, err
	}
	if neg {
		return nil, fmt.Errorf("ratio: a cycle with ratio below %v exists", rho)
	}
	cycle, ok := o.TightCycle(p, q)
	if !ok {
		return nil, fmt.Errorf("ratio: no cycle of ratio %v found", rho)
	}
	return cycle, nil
}

// ratioPolicyCycles finds the cycles of an out-degree-one policy graph
// (each node contributes the arc policy[v]); fn receives each cycle's arcs
// in forward order.
func ratioPolicyCycles(g *graph.Graph, policy []graph.ArcID, fn func(cycle []graph.ArcID)) {
	n := len(policy)
	state := make([]int32, n)
	walkPos := make([]int32, n)
	var walk []graph.NodeID
	for root := 0; root < n; root++ {
		if state[root] != 0 {
			continue
		}
		walk = walk[:0]
		v := graph.NodeID(root)
		for state[v] == 0 {
			state[v] = 1
			walkPos[v] = int32(len(walk))
			walk = append(walk, v)
			v = g.Arc(policy[v]).To
		}
		if state[v] == 1 {
			start := walkPos[v]
			cycle := make([]graph.ArcID, 0, int32(len(walk))-start)
			for i := start; i < int32(len(walk)); i++ {
				cycle = append(cycle, policy[walk[i]])
			}
			fn(cycle)
		}
		for _, u := range walk {
			state[u] = 2
		}
	}
}
