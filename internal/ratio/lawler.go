package ratio

import (
	"repro/internal/core"
	"repro/internal/counter"
	"repro/internal/graph"
	"repro/internal/numeric"
)

func init() {
	register("lawler", func() Algorithm { return lawlerRatio{} })
}

// lawlerRatio is Lawler's binary search in its original ratio form: ρ* lies
// between the smallest and largest single-arc ratios; each probe λ asks
// whether some cycle satisfies w(C) − λ·t(C) < 0 via Bellman–Ford on the
// reduced weights. The search bisects a fixed-denominator grid, recording
// the best negative cycle; an exact endgame then re-probes at that cycle's
// exact ratio until the probe certifies feasibility (each failed probe
// yields a strictly better cycle, so the endgame terminates). Under
// Options.Epsilon > 0 the endgame is skipped, reproducing the paper's
// approximate variant.
type lawlerRatio struct{}

func (lawlerRatio) Name() string { return "lawler" }

func (lawlerRatio) Solve(g *graph.Graph, opt core.Options) (Result, error) {
	if err := checkInput(g); err != nil {
		return Result{}, err
	}
	var counts counter.Counts

	// ρ* ∈ [−B, B] with B = n·max|w| (cycle weight bound over transit ≥ 1).
	minW, maxW := g.WeightRange()
	absW := maxW
	if -minW > absW {
		absW = -minW
	}
	if absW < 1 {
		absW = 1
	}
	bound := int64(g.NumNodes()) * absW

	// Grid denominator: fine enough to separate most ratios; the endgame
	// restores exactness regardless.
	S := int64(1 << 16)
	if opt.Epsilon > 0 {
		for S > 2 && 1/float64(S) < opt.Epsilon {
			S >>= 1
		}
	}
	for S > 2 && (bound+1) > (int64(1)<<61)/(4*S*int64(g.NumNodes())*maxTransit(g)+1) {
		S >>= 1
	}

	var (
		bestRatio numeric.Rat
		bestCycle []graph.ArcID
		haveBest  bool
	)
	record := func(cycle []graph.ArcID) {
		r, ok := cycleRatio(g, cycle)
		if !ok {
			return
		}
		if !haveBest || r.Less(bestRatio) {
			bestRatio, bestCycle, haveBest = r, cycle, true
		}
	}

	lo, hi := -S*bound, S*bound+1
	for hi-lo > 1 {
		counts.Iterations++
		mid := lo + (hi-lo)/2
		neg, cyc := hasNegativeCycleRatio(g, mid, S, &counts)
		if !neg {
			lo = mid
			continue
		}
		hi = mid
		record(cyc)
	}

	if opt.Epsilon > 0 {
		if !haveBest {
			return Result{Ratio: numeric.NewRat(lo, S), Exact: false, Counts: counts}, nil
		}
		return Result{Ratio: bestRatio, Cycle: bestCycle, Exact: false, Counts: counts}, nil
	}

	if !haveBest {
		// Every probe was feasible: ρ* ∈ [lo/S, hi/S). Fall back to a
		// policy cycle to seed the endgame.
		policy := make([]graph.ArcID, g.NumNodes())
		for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
			policy[v] = g.OutArcs(v)[0]
		}
		ratioPolicyCycles(g, policy, func(cycle []graph.ArcID) {
			c := make([]graph.ArcID, len(cycle))
			copy(c, cycle)
			record(c)
		})
		if !haveBest {
			return Result{}, ErrAcyclic
		}
	}

	maxIter := opt.MaxIterations
	if maxIter <= 0 {
		maxIter = g.NumNodes()*g.NumArcs() + 64
	}
	for iter := 0; iter < maxIter; iter++ {
		if opt.Canceled() {
			return Result{}, core.ErrCanceled
		}
		counts.Iterations++
		neg, cyc := hasNegativeCycleRatio(g, bestRatio.Num(), bestRatio.Den(), &counts)
		if !neg {
			return Result{Ratio: bestRatio, Cycle: bestCycle, Exact: true, Counts: counts}, nil
		}
		r, ok := cycleRatio(g, cyc)
		if !ok || !r.Less(bestRatio) {
			return Result{}, ErrIterationLimit
		}
		bestRatio, bestCycle = r, cyc
	}
	return Result{}, ErrIterationLimit
}

func maxTransit(g *graph.Graph) int64 {
	var t int64 = 1
	for _, a := range g.Arcs() {
		if a.Transit > t {
			t = a.Transit
		}
	}
	return t
}
