package ratio

import (
	"repro/internal/core"
	"repro/internal/counter"
	"repro/internal/graph"
	"repro/internal/numeric"
)

func init() {
	register("lawler", func() Algorithm { return lawlerRatio{} })
}

// lawlerRatio is Lawler's binary search in its original ratio form: ρ* lies
// between the smallest and largest single-arc ratios; each probe λ asks
// whether some cycle satisfies w(C) − λ·t(C) < 0 via Bellman–Ford on the
// reduced weights. The search bisects a fixed-denominator grid, recording
// the best negative cycle; an exact endgame then re-probes at that cycle's
// exact ratio until the probe certifies feasibility (each failed probe
// yields a strictly better cycle, so the endgame terminates). Under
// Options.Epsilon > 0 the endgame is skipped, reproducing the paper's
// approximate variant.
type lawlerRatio struct{}

func (lawlerRatio) Name() string { return "lawler" }

// lawlerGrid returns the bisection grid denominator S (a power of two ≥ 2)
// for a graph with cycle-ratio bound `bound` = n·max|w|, `nodes` nodes and
// maximum transit `maxT`, under tolerance eps (0 means exact mode).
//
// Two invariants, both regression-pinned:
//
//   - eps > 0: the grid spacing 1/S is at most eps, so the bisection's final
//     cell [lo/S, hi/S) — and therefore the returned approximation — is
//     within eps of ρ*. (The former loop shrank S while 1/S < eps,
//     terminating with spacing ≥ eps and overshooting the tolerance by up
//     to one cell.)
//   - every probe stays exact: a probe at grid point mid ∈ [−S·bound,
//     S·bound+1] relaxes weights S·w − mid·t over n passes, so S is
//     coarsened until (bound+1)·(4·S·nodes·maxT+1) ≤ 2^61. The divisor is
//     built with checked multiplication: at the documented limits
//     (S=2^16 × n=2^24 × t≈2^31) the former expression
//     4*S*nodes*maxT+1 itself overflowed int64, the guard compared against
//     garbage, and S never shrank — letting the probe arithmetic overflow
//     silently.
//
// When even S = 2 cannot satisfy the probe bound, the oracle's own
// per-probe range check reports ErrNumericRange instead of wrapping.
func lawlerGrid(bound, nodes, maxT int64, eps float64) int64 {
	S := int64(1 << 16)
	if eps > 0 {
		// Smallest power of two with spacing 1/S ≤ eps, capped so S·bound
		// stays far from the int64 edge even for large bounds.
		S = 2
		for 1/float64(S) > eps && S < int64(1)<<30 {
			S <<= 1
		}
	}
	for S > 2 {
		d, ok := numeric.CheckedMul(4*S, nodes)
		if ok {
			d, ok = numeric.CheckedMul(d, maxT)
		}
		if ok && d < int64(1)<<61 && (bound+1) <= (int64(1)<<61)/(d+1) {
			break
		}
		S >>= 1
	}
	return S
}

func (lawlerRatio) Solve(g *graph.Graph, opt core.Options) (Result, error) {
	if err := checkInput(g); err != nil {
		return Result{}, err
	}
	var counts counter.Counts

	// ρ* ∈ [−B, B] with B = n·max|w| (cycle weight bound over transit ≥ 1).
	minW, maxW := g.WeightRange()
	absW := maxW
	if -minW > absW {
		absW = -minW
	}
	if absW < 1 {
		absW = 1
	}
	bound := int64(g.NumNodes()) * absW

	// Grid denominator: fine enough to separate most ratios (and to honor
	// Options.Epsilon); the endgame restores exactness regardless.
	S := lawlerGrid(bound, int64(g.NumNodes()), maxTransit(g), opt.Epsilon)

	oracle := newOracle(g, opt, &counts)
	defer oracle.Close()

	var (
		bestRatio numeric.Rat
		bestCycle []graph.ArcID
		haveBest  bool
	)
	record := func(cycle []graph.ArcID) {
		r, ok := cycleRatio(g, cycle)
		if !ok {
			return
		}
		if !haveBest || r.Less(bestRatio) {
			bestRatio, bestCycle, haveBest = r, cycle, true
		}
	}

	lo, hi := -S*bound, S*bound+1
	for hi-lo > 1 {
		counts.Iterations++
		mid := lo + (hi-lo)/2
		neg, cyc, err := oracle.Probe(mid, S)
		if err != nil {
			return Result{}, err
		}
		if !neg {
			lo = mid
			continue
		}
		hi = mid
		record(cyc)
	}

	if opt.Epsilon > 0 {
		if !haveBest {
			return Result{Ratio: numeric.NewRat(lo, S), Exact: false, Counts: counts}, nil
		}
		return Result{Ratio: bestRatio, Cycle: bestCycle, Exact: false, Counts: counts}, nil
	}

	if !haveBest {
		// Every probe was feasible: ρ* ∈ [lo/S, hi/S). Fall back to a
		// policy cycle to seed the endgame.
		policy := make([]graph.ArcID, g.NumNodes())
		for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
			policy[v] = g.OutArcs(v)[0]
		}
		ratioPolicyCycles(g, policy, func(cycle []graph.ArcID) {
			c := make([]graph.ArcID, len(cycle))
			copy(c, cycle)
			record(c)
		})
		if !haveBest {
			return Result{}, ErrAcyclic
		}
	}

	maxIter := opt.MaxIterations
	if maxIter <= 0 {
		maxIter = g.NumNodes()*g.NumArcs() + 64
	}
	for iter := 0; iter < maxIter; iter++ {
		if opt.Canceled() {
			return Result{}, core.ErrCanceled
		}
		counts.Iterations++
		neg, cyc, err := oracle.Probe(bestRatio.Num(), bestRatio.Den())
		if err != nil {
			return Result{}, err
		}
		if !neg {
			return Result{Ratio: bestRatio, Cycle: bestCycle, Exact: true, Counts: counts}, nil
		}
		r, ok := cycleRatio(g, cyc)
		if !ok || !r.Less(bestRatio) {
			return Result{}, ErrIterationLimit
		}
		bestRatio, bestCycle = r, cyc
	}
	return Result{}, ErrIterationLimit
}

func maxTransit(g *graph.Graph) int64 {
	var t int64 = 1
	for _, a := range g.Arcs() {
		if a.Transit > t {
			t = a.Transit
		}
	}
	return t
}
