package ratio

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/numeric"
)

func TestNamesAndByName(t *testing.T) {
	names := Names()
	want := map[string]bool{
		"bhk": true, "burns": true, "dinkelbach": true, "expand": true, "howard": true,
		"megiddo": true, "ko": true, "lawler": true, "sternbrocot": true, "yto": true,
	}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for _, n := range names {
		if !want[n] {
			t.Fatalf("unexpected algorithm %q", n)
		}
		algo, err := ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		if algo.Name() != n && n != "expand" { // expand reports its inner solver
			t.Fatalf("ByName(%q).Name() = %q", n, algo.Name())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
	// The racer resolves through ByName without appearing in Names().
	p, err := ByName("portfolio")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "portfolio" {
		t.Fatalf("portfolio Name() = %q", p.Name())
	}
	if pf, ok := p.(*RatioPortfolio); !ok || len(pf.Algorithms()) != 4 {
		t.Fatalf("ByName(portfolio) = %T", p)
	}
	if p, err = ByName("portfolio:howard+sternbrocot"); err != nil {
		t.Fatal(err)
	} else if pf := p.(*RatioPortfolio); len(pf.Algorithms()) != 2 {
		t.Fatalf("portfolio:howard+sternbrocot has %d members", len(pf.Algorithms()))
	}
	if _, err := ByName("portfolio:nope"); err == nil {
		t.Fatal("unknown portfolio member accepted")
	}
}

func TestExtractCriticalRatioCycle(t *testing.T) {
	// Two cycles: ratio 2 (optimal) and ratio 4.
	b := graph.NewBuilder(3, 4)
	b.AddNodes(3)
	b.AddArcTransit(0, 1, 3, 2)
	b.AddArcTransit(1, 0, 5, 2) // cycle ratio (3+5)/(2+2) = 2
	b.AddArcTransit(1, 2, 6, 1)
	b.AddArcTransit(2, 1, 2, 1) // cycle ratio (6+2)/2 = 4
	g := b.Build()

	cycle, err := extractCriticalRatioCycle(g, numeric.NewRat(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	r, ok := cycleRatio(g, cycle)
	if !ok || !r.Equal(numeric.NewRat(2, 1)) {
		t.Fatalf("extracted cycle ratio %v, want 2", r)
	}
	// ρ below the optimum: no tight cycle exists.
	if _, err := extractCriticalRatioCycle(g, numeric.NewRat(1, 1)); err == nil {
		t.Fatal("sub-optimal ρ accepted")
	}
	// ρ above the optimum: reduced graph has a negative cycle.
	if _, err := extractCriticalRatioCycle(g, numeric.NewRat(3, 1)); err == nil {
		t.Fatal("super-optimal ρ accepted")
	}
}

func TestCheckInputRejections(t *testing.T) {
	// Negative transit.
	b := graph.NewBuilder(2, 2)
	b.AddNodes(2)
	b.AddArcTransit(0, 1, 1, -1)
	b.AddArcTransit(1, 0, 1, 1)
	if err := checkInput(b.Build()); err == nil {
		t.Fatal("negative transit accepted")
	}
	// Not strongly connected.
	b2 := graph.NewBuilder(2, 1)
	b2.AddNodes(2)
	b2.AddArcTransit(0, 1, 1, 1)
	if err := checkInput(b2.Build()); err != ErrNotStronglyConnected {
		t.Fatalf("got %v", err)
	}
	// Empty.
	if err := checkInput(graph.NewBuilder(0, 0).Build()); err != ErrAcyclic {
		t.Fatalf("got %v", err)
	}
	// Single node with self-loop: fine.
	b3 := graph.NewBuilder(1, 1)
	b3.AddNodes(1)
	b3.AddArcTransit(0, 0, 4, 2)
	if err := checkInput(b3.Build()); err != nil {
		t.Fatalf("self-loop rejected: %v", err)
	}
	// Single node without self-loop.
	b4 := graph.NewBuilder(1, 0)
	b4.AddNodes(1)
	if err := checkInput(b4.Build()); err != ErrAcyclic {
		t.Fatalf("got %v", err)
	}
}

func TestNewExpandCustomInner(t *testing.T) {
	inner, err := core.ByName("yto")
	if err != nil {
		t.Fatal(err)
	}
	algo := NewExpand(inner)
	if algo.Name() != "expand-yto" {
		t.Fatalf("name = %q", algo.Name())
	}
	b := graph.NewBuilder(2, 2)
	b.AddNodes(2)
	b.AddArcTransit(0, 1, 3, 2)
	b.AddArcTransit(1, 0, 5, 2)
	res, err := algo.Solve(b.Build(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ratio.Equal(numeric.NewRat(2, 1)) {
		t.Fatalf("ratio = %v, want 2", res.Ratio)
	}
}

func TestEpsilonModeRatioLawler(t *testing.T) {
	b := graph.NewBuilder(2, 2)
	b.AddNodes(2)
	b.AddArcTransit(0, 1, 30, 2)
	b.AddArcTransit(1, 0, 50, 2)
	g := b.Build()
	algo, _ := ByName("lawler")
	res, err := algo.Solve(g, core.Options{Epsilon: 0.125})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Fatal("epsilon mode must be inexact")
	}
	if diff := res.Ratio.Float64() - 20; diff > 0.5 || diff < -0.5 {
		t.Fatalf("approximate ρ = %v, want ≈ 20", res.Ratio)
	}
}
