package ratio

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/numeric"
)

// sternBrocotCorpus builds the ≥125-graph enrollment corpus: every generator
// family in internal/gen, re-timed with several transit ranges so the
// instances are genuine ratio problems (not means in disguise).
func sternBrocotCorpus(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	corpus := map[string]*graph.Graph{}
	add := func(name string, g *graph.Graph, err error) {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		corpus[name] = g
	}
	for _, size := range []struct{ n, m int }{{5, 12}, {20, 60}, {50, 150}} {
		for seed := uint64(0); seed < 12; seed++ {
			g, err := gen.Sprand(gen.SprandConfig{N: size.n, M: size.m, MinWeight: -200, MaxWeight: 200, Seed: seed})
			if err == nil {
				g = withTransits(g, int64(seed%6)+1)
			}
			add(fmt.Sprintf("sprand-%d-%d", size.n, seed), g, err)
		}
	}
	for seed := uint64(0); seed < 12; seed++ {
		g, err := gen.Chain(gen.ChainConfig{CoreN: 6, Chains: 5, ChainLen: 25, MinWeight: -40, MaxWeight: 40, SelfLoops: 2, Seed: seed})
		if err == nil {
			g = withTransits(g, 3)
		}
		add(fmt.Sprintf("chain-%d", seed), g, err)

		mg, err := gen.MultiSCC(4, 10, 25, seed)
		if err == nil {
			mg = withTransits(mg, 5)
		}
		add(fmt.Sprintf("multiscc-%d", seed), mg, err)

		add(fmt.Sprintf("torus-%d", seed), withTransits(gen.Torus(4, 5, -90, 90, seed), int64(seed%4)+1), nil)
		add(fmt.Sprintf("torus-wide-%d", seed), withTransits(gen.Torus(3, 8, -500, 500, seed), int64(seed%7)+1), nil)
		add(fmt.Sprintf("complete-%d", seed), withTransits(gen.Complete(8, -60, 60, seed), int64(seed%3)+1), nil)
	}
	for n := 1; n <= 8; n++ {
		add(fmt.Sprintf("cycle-%d", n), withTransits(gen.Cycle(n, int64(3*n-7)), int64(n)), nil)
	}
	// Large-magnitude weights push the shifted mediant walk through long
	// integer runs before it descends into the fractional part.
	for seed := uint64(0); seed < 8; seed++ {
		g, err := gen.Sprand(gen.SprandConfig{N: 12, M: 48, MinWeight: -1_000_000, MaxWeight: 1_000_000, Seed: seed})
		if err == nil {
			g = withTransits(g, int64(seed%5)+1)
		}
		add(fmt.Sprintf("sprand-bigw-%d", seed), g, err)
	}
	// Negative-optimum and unit-transit edges of the space.
	add("cycle-neg", gen.Cycle(5, -17), nil)
	for seed := uint64(0); seed < 12; seed++ {
		g, _, err := gen.PlantedMinMean(30, 90, 6, -25, 40, seed)
		add(fmt.Sprintf("planted-%d", seed), g, err)
	}
	if len(corpus) < 125 {
		t.Fatalf("corpus has only %d graphs, want >= 125", len(corpus))
	}
	return corpus
}

// TestSternBrocotEquivalenceCorpus is the acceptance gate for the mediant
// search: on every corpus graph, sternbrocot's certified ρ* is bit-identical
// to howard's and lawler's, and its certificate was never snapped from a
// float (the solver's path is integer-only, so Snapped must stay false).
func TestSternBrocotEquivalenceCorpus(t *testing.T) {
	sb, err := ByName("sternbrocot")
	if err != nil {
		t.Fatal(err)
	}
	refs := map[string]Algorithm{}
	for _, name := range []string{"howard", "lawler"} {
		if refs[name], err = ByName(name); err != nil {
			t.Fatal(err)
		}
	}
	for name, g := range sternBrocotCorpus(t) {
		res, err := MinimumCycleRatio(g, sb, core.Options{Certify: true})
		if err != nil {
			t.Errorf("%s: sternbrocot: %v", name, err)
			continue
		}
		if !res.Exact || res.Certificate == nil {
			t.Errorf("%s: sternbrocot result not exact/certified: %+v", name, res)
			continue
		}
		if res.Certificate.Snapped {
			t.Errorf("%s: sternbrocot certificate was float-snapped", name)
		}
		if r, ok := cycleRatio(g, res.Cycle); !ok || !r.Equal(res.Ratio) {
			t.Errorf("%s: witness cycle ratio %v != ρ* %v", name, r, res.Ratio)
		}
		for refName, ref := range refs {
			want, err := MinimumCycleRatio(g, ref, core.Options{Certify: true})
			if err != nil {
				t.Errorf("%s: %s: %v", name, refName, err)
				continue
			}
			if res.Ratio.Num() != want.Ratio.Num() || res.Ratio.Den() != want.Ratio.Den() {
				t.Errorf("%s: sternbrocot ρ* = %d/%d, %s ρ* = %d/%d",
					name, res.Ratio.Num(), res.Ratio.Den(), refName, want.Ratio.Num(), want.Ratio.Den())
			}
		}
	}
}

// TestSternBrocotSmall pins hand-checked instances, including negative and
// integer optima where the shifted mediant walk starts with a long
// integer-valued run.
func TestSternBrocotSmall(t *testing.T) {
	sb, err := ByName("sternbrocot")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		build func() *graph.Graph
		p, q  int64
	}{
		{"two-cycles", func() *graph.Graph {
			b := graph.NewBuilder(3, 4)
			b.AddNodes(3)
			b.AddArcTransit(0, 1, 3, 2)
			b.AddArcTransit(1, 0, 5, 2) // ratio 2
			b.AddArcTransit(1, 2, 6, 1)
			b.AddArcTransit(2, 1, 2, 1) // ratio 4
			return b.Build()
		}, 2, 1},
		{"fractional", func() *graph.Graph {
			b := graph.NewBuilder(2, 2)
			b.AddNodes(2)
			b.AddArcTransit(0, 1, 3, 2)
			b.AddArcTransit(1, 0, 5, 1) // ratio 8/3
			return b.Build()
		}, 8, 3},
		{"negative", func() *graph.Graph {
			b := graph.NewBuilder(2, 2)
			b.AddNodes(2)
			b.AddArcTransit(0, 1, -7, 3)
			b.AddArcTransit(1, 0, -4, 2) // ratio -11/5
			return b.Build()
		}, -11, 5},
		{"self-loop", func() *graph.Graph {
			b := graph.NewBuilder(1, 1)
			b.AddNodes(1)
			b.AddArcTransit(0, 0, 9, 4) // ratio 9/4
			return b.Build()
		}, 9, 4},
	}
	for _, tc := range cases {
		res, err := sb.Solve(tc.build(), core.Options{})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if want := numeric.NewRat(tc.p, tc.q); !res.Ratio.Equal(want) || !res.Exact {
			t.Fatalf("%s: ρ* = %v (exact=%v), want %v", tc.name, res.Ratio, res.Exact, want)
		}
		if res.Counts.NegativeCycleChecks == 0 || res.Counts.Iterations == 0 {
			t.Fatalf("%s: counts not reported: %+v", tc.name, res.Counts)
		}
	}
}
