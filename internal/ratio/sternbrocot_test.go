package ratio

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/numeric"
)

// The corpus-wide equivalence gate for the mediant search lives in
// enroll_test.go (TestEnrollSternBrocot, package ratio_test) on the shared
// testutil.RatioCorpus; corpus_equivalence_test.go additionally pins that
// its certificates are never float-snapped.

// TestSternBrocotSmall pins hand-checked instances, including negative and
// integer optima where the shifted mediant walk starts with a long
// integer-valued run.
func TestSternBrocotSmall(t *testing.T) {
	sb, err := ByName("sternbrocot")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		build func() *graph.Graph
		p, q  int64
	}{
		{"two-cycles", func() *graph.Graph {
			b := graph.NewBuilder(3, 4)
			b.AddNodes(3)
			b.AddArcTransit(0, 1, 3, 2)
			b.AddArcTransit(1, 0, 5, 2) // ratio 2
			b.AddArcTransit(1, 2, 6, 1)
			b.AddArcTransit(2, 1, 2, 1) // ratio 4
			return b.Build()
		}, 2, 1},
		{"fractional", func() *graph.Graph {
			b := graph.NewBuilder(2, 2)
			b.AddNodes(2)
			b.AddArcTransit(0, 1, 3, 2)
			b.AddArcTransit(1, 0, 5, 1) // ratio 8/3
			return b.Build()
		}, 8, 3},
		{"negative", func() *graph.Graph {
			b := graph.NewBuilder(2, 2)
			b.AddNodes(2)
			b.AddArcTransit(0, 1, -7, 3)
			b.AddArcTransit(1, 0, -4, 2) // ratio -11/5
			return b.Build()
		}, -11, 5},
		{"self-loop", func() *graph.Graph {
			b := graph.NewBuilder(1, 1)
			b.AddNodes(1)
			b.AddArcTransit(0, 0, 9, 4) // ratio 9/4
			return b.Build()
		}, 9, 4},
	}
	for _, tc := range cases {
		res, err := sb.Solve(tc.build(), core.Options{})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if want := numeric.NewRat(tc.p, tc.q); !res.Ratio.Equal(want) || !res.Exact {
			t.Fatalf("%s: ρ* = %v (exact=%v), want %v", tc.name, res.Ratio, res.Exact, want)
		}
		if res.Counts.NegativeCycleChecks == 0 || res.Counts.Iterations == 0 {
			t.Fatalf("%s: counts not reported: %+v", tc.name, res.Counts)
		}
	}
}
