package ratio

// Cancellation-race stress for the portfolio: the losing racers must
// observe the shared cancellation promptly (their only legitimate non-nil
// error is core.ErrCanceled, surfaced at a probe checkpoint), every racer
// goroutine must be joined before SolveContext returns (the
// ratioPortfolioLive counter is the goleak-style ledger), and none of it
// may ever change the answer.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/obs"
)

// stressGraph is big enough that the slower roster members are still
// mid-solve when the winner finishes, so cancellation actually races probe
// checkpoints instead of arriving after the fact.
func stressGraph(t *testing.T, seed uint64) *graph.Graph {
	t.Helper()
	g, err := gen.Sprand(gen.SprandConfig{N: 120, M: 600, MinWeight: -900, MaxWeight: 900, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return withTransits(g, 6)
}

func TestPortfolioCancellationStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	howard, err := ByName("howard")
	if err != nil {
		t.Fatal(err)
	}
	pf := NewPortfolio()

	const rounds = 40
	for round := 0; round < rounds; round++ {
		g := stressGraph(t, uint64(round%5))
		want, err := MinimumCycleRatio(g, howard, core.Options{})
		if err != nil {
			t.Fatal(err)
		}

		var (
			mu     sync.Mutex
			events []obs.RaceEvent
		)
		opt := core.Options{Tracer: &obs.Trace{OnRace: func(ev obs.RaceEvent) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		}}}
		res, err := pf.Solve(g, opt)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !res.Ratio.Equal(want.Ratio) {
			t.Fatalf("round %d: portfolio ρ* = %v, howard = %v", round, res.Ratio, want.Ratio)
		}
		if live := ratioPortfolioLive.Load(); live != 0 {
			t.Fatalf("round %d: %d racer goroutines still live after Solve returned", round, live)
		}
		mu.Lock()
		if len(events) != 1 {
			t.Fatalf("round %d: %d race events, want 1", round, len(events))
		}
		ev := events[0]
		mu.Unlock()
		if ev.Winner == "" {
			t.Fatalf("round %d: race event has no winner: %+v", round, ev)
		}
		for _, r := range ev.Racers {
			// A loser either finished with the same exact answer (err nil)
			// or was stopped at a cancellation checkpoint — anything else
			// means a racer turned a lost race into a real failure.
			if r.Err != nil && !errors.Is(r.Err, core.ErrCanceled) {
				t.Fatalf("round %d: racer %s failed with %v, want nil or ErrCanceled", round, r.Algorithm, r.Err)
			}
		}
	}
}

// TestPortfolioExternalCancelStress fires the caller's own cancellation at
// random points of the race: the portfolio must return either a completed
// exact answer or core.ErrCanceled — never a partial result — and must
// always join its goroutines.
func TestPortfolioExternalCancelStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	howard, err := ByName("howard")
	if err != nil {
		t.Fatal(err)
	}
	pf := NewPortfolio()
	g := stressGraph(t, 1)
	want, err := MinimumCycleRatio(g, howard, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	for _, delay := range []time.Duration{0, 20 * time.Microsecond, 100 * time.Microsecond, 500 * time.Microsecond, 2 * time.Millisecond} {
		for round := 0; round < 8; round++ {
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(delay)
				cancel()
			}()
			res, err := pf.SolveContext(ctx, g, core.Options{})
			cancel()
			if err != nil {
				if !errors.Is(err, core.ErrCanceled) {
					t.Fatalf("delay %v round %d: err = %v, want ErrCanceled", delay, round, err)
				}
			} else if !res.Ratio.Equal(want.Ratio) {
				t.Fatalf("delay %v round %d: canceled race returned wrong ρ* %v, want %v", delay, round, res.Ratio, want.Ratio)
			}
			if live := ratioPortfolioLive.Load(); live != 0 {
				t.Fatalf("delay %v round %d: %d racer goroutines still live", delay, round, live)
			}
		}
	}
}

// TestPortfolioConcurrentSolves runs many races in parallel on the same
// portfolio value: the roster and its workspaces must be share-nothing
// across races (run under -race in CI).
func TestPortfolioConcurrentSolves(t *testing.T) {
	howard, err := ByName("howard")
	if err != nil {
		t.Fatal(err)
	}
	pf := NewPortfolio()
	g := stressGraph(t, 3)
	want, err := MinimumCycleRatio(g, howard, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				res, err := pf.Solve(g, core.Options{})
				if err != nil {
					errCh <- err
					return
				}
				if !res.Ratio.Equal(want.Ratio) {
					errCh <- errors.New("concurrent race answer drifted: " + res.Ratio.String())
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if live := ratioPortfolioLive.Load(); live != 0 {
		t.Fatalf("%d racer goroutines still live after all solves returned", live)
	}
}
