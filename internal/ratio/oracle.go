package ratio

// The shared parametric negative-cycle oracle. Every ratio algorithm in this
// package reduces to one question — "does some cycle C satisfy
// den·w(C) − num·t(C) < 0, i.e. ρ(C) < num/den?" — and before this file each
// solver carried its own private Bellman–Ford core with slightly different
// allocation, cancellation, and counter behavior. The oracle centralizes the
// probe: pooled workspaces (zero steady-state allocations across probes),
// a cancellation checkpoint per pass, a ProbeEvent per probe when tracing is
// enabled, and an exact overflow pre-check that routes out-of-range inputs
// to ErrNumericRange instead of silently wrapping int64.
//
// This is the `ParametricAPI` shape ROADMAP item 2 asks for: Lawler's
// bisection, Dinkelbach/Fox iteration, Howard's final certificate, Burns'
// initial potentials, Megiddo's parametric search, and the Stern–Brocot
// mediant search all sit on the one tuned core below.

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/counter"
	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/obs"
)

// probeWS is the reusable scratch space of one oracle: Bellman–Ford state
// plus the tight-arc DFS state, pooled so repeated probes (a Lawler solve
// runs dozens) allocate nothing after the first.
type probeWS struct {
	dist   []int64
	parent []graph.ArcID
	color  []byte
	onPath []graph.ArcID
	stack  []dfsFrame
}

type dfsFrame struct {
	v   graph.NodeID
	arc int32
}

var probePool = sync.Pool{New: func() any { return new(probeWS) }}

func (ws *probeWS) grow(n int) {
	if cap(ws.dist) < n {
		ws.dist = make([]int64, n)
		ws.parent = make([]graph.ArcID, n)
		ws.color = make([]byte, n)
	}
	ws.dist = ws.dist[:n]
	ws.parent = ws.parent[:n]
	ws.color = ws.color[:n]
}

// oracle answers parametric feasibility probes on one fixed graph. It is not
// safe for concurrent use; create one per solve and Close it to return the
// workspace to the pool.
type oracle struct {
	g      *graph.Graph
	opt    core.Options
	counts *counter.Counts
	ws     *probeWS

	// absW and maxT are cached once so the per-probe overflow check is O(1).
	absW int64
	maxT int64

	// State of the most recent probe: when converged is true, ws.dist holds
	// the shortest distances under den·w − num·t for (lastNum, lastDen), the
	// input TightCycle needs.
	lastNum, lastDen int64
	converged        bool
}

// newOracle builds an oracle for g. opt supplies the cancellation token and
// tracer; counts, when non-nil, receives the same NegativeCycleChecks and
// Relaxations increments the private cores used to apply.
func newOracle(g *graph.Graph, opt core.Options, counts *counter.Counts) *oracle {
	minW, maxW := g.WeightRange()
	absW := maxW
	if -minW > absW {
		absW = -minW
	}
	var maxT int64
	for _, a := range g.Arcs() {
		t := a.Transit
		if t < 0 {
			t = -t
		}
		if t > maxT {
			maxT = t
		}
	}
	ws := probePool.Get().(*probeWS)
	ws.grow(g.NumNodes())
	return &oracle{g: g, opt: opt, counts: counts, ws: ws, absW: absW, maxT: maxT}
}

// Close returns the workspace to the pool. The oracle must not be used after
// Close, and slices returned by Dist become invalid.
func (o *oracle) Close() {
	if o.ws != nil {
		probePool.Put(o.ws)
		o.ws = nil
	}
}

// overflows is scaledRatioOverflows with the graph-dependent parts cached:
// per-arc magnitude den·absW + |num|·maxT times n+1 passes must stay inside
// 2^62 for the probe arithmetic to be exact.
func (o *oracle) overflows(num, den int64) bool {
	absP := num
	if absP < 0 {
		absP = -absP
	}
	if o.absW != 0 && den > (1<<62)/o.absW {
		return true
	}
	if o.maxT != 0 && absP > (1<<62)/o.maxT {
		return true
	}
	perArc := den*o.absW + absP*o.maxT
	if perArc < 0 {
		return true
	}
	n := int64(o.g.NumNodes()) + 1
	const safe = int64(1) << 62
	return perArc > safe/n
}

// Probe reports whether some cycle C has den·w(C) − num·t(C) < 0, i.e.
// ρ(C) < num/den (den > 0), returning one such cycle. The error is
// core.ErrCanceled when the run's cancellation token fired, or wraps
// ErrNumericRange when the scaled arithmetic cannot be carried out exactly
// in int64 for this graph.
func (o *oracle) Probe(num, den int64) (bool, []graph.ArcID, error) {
	counts := o.counts
	if counts != nil {
		counts.NegativeCycleChecks++
	}
	if o.overflows(num, den) {
		o.converged = false
		return false, nil, fmt.Errorf("%w: feasibility probe at λ = %d/%d would overflow", ErrNumericRange, num, den)
	}
	o.converged = false

	tr := o.opt.Tracer
	traced := tr.Enabled()
	var start time.Time
	if traced {
		start = time.Now()
	}

	g := o.g
	n := g.NumNodes()
	dist, parent := o.ws.dist, o.ws.parent
	for i := range dist {
		dist[i] = 0
	}
	for i := range parent {
		parent[i] = -1
	}
	arcs := g.Arcs()
	lastChanged := graph.NodeID(-1)
	passes := 0
	for pass := 0; pass < n; pass++ {
		if o.opt.Canceled() {
			return false, nil, core.ErrCanceled
		}
		passes++
		lastChanged = -1
		for id, a := range arcs {
			if counts != nil {
				counts.Relaxations++
			}
			w := den*a.Weight - num*a.Transit
			if nd := dist[a.From] + w; nd < dist[a.To] {
				dist[a.To] = nd
				parent[a.To] = graph.ArcID(id)
				lastChanged = a.To
			}
		}
		if lastChanged == -1 {
			o.lastNum, o.lastDen, o.converged = num, den, true
			if traced {
				tr.Probe(obs.ProbeEvent{Num: num, Den: den, Passes: passes, Duration: time.Since(start)})
			}
			return false, nil, nil
		}
	}
	// A node changed on the n-th pass: walk parents n steps to land on a
	// negative cycle, then close it.
	v := lastChanged
	for i := 0; i < n; i++ {
		v = g.Arc(parent[v]).From
	}
	startNode := v
	var rev []graph.ArcID
	for {
		id := parent[v]
		rev = append(rev, id)
		v = g.Arc(id).From
		if v == startNode {
			break
		}
	}
	cycle := make([]graph.ArcID, len(rev))
	for i, id := range rev {
		cycle[len(rev)-1-i] = id
	}
	if traced {
		tr.Probe(obs.ProbeEvent{Num: num, Den: den, Negative: true, Passes: passes, Duration: time.Since(start)})
	}
	return true, cycle, nil
}

// Dist returns the converged shortest distances of the most recent Probe
// (valid only when that probe reported no negative cycle, until the next
// Probe or Close). Burns' algorithm seeds its potentials from it.
func (o *oracle) Dist() []int64 {
	return o.ws.dist
}

// TightCycle searches the tight arcs of the most recent converged probe —
// those with dist[from] + den·w − num·t == dist[to] — for a cycle whose
// exact ratio equals num/den. Such a cycle exists if and only if
// ρ* = num/den, making TightCycle the oracle's equality test: Probe answers
// "ρ* < num/den?", TightCycle answers "ρ* = num/den?" for free, reusing the
// probe's distances instead of running a second Bellman–Ford.
//
// ok is false when no tight cycle of that ratio exists, or when the most
// recent probe did not converge at exactly (num, den).
func (o *oracle) TightCycle(num, den int64) ([]graph.ArcID, bool) {
	if !o.converged || o.lastNum != num || o.lastDen != den {
		return nil, false
	}
	g := o.g
	n := g.NumNodes()
	rho := numeric.NewRat(num, den)
	dist := o.ws.dist
	color := o.ws.color
	for i := range color {
		color[i] = 0
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	onPath := o.ws.onPath[:0]
	stack := o.ws.stack[:0]
	defer func() {
		o.ws.onPath = onPath[:0]
		o.ws.stack = stack[:0]
	}()
	for root := graph.NodeID(0); int(root) < n; root++ {
		if color[root] != white {
			continue
		}
		color[root] = gray
		stack = append(stack[:0], dfsFrame{v: root})
		onPath = onPath[:0]
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			out := g.OutArcs(f.v)
			advanced := false
			for int(f.arc) < len(out) {
				id := out[f.arc]
				f.arc++
				a := g.Arc(id)
				if dist[a.From]+den*a.Weight-num*a.Transit != dist[a.To] {
					continue
				}
				w := a.To
				switch color[w] {
				case gray:
					idx := -1
					for i := range stack {
						if stack[i].v == w {
							idx = i
							break
						}
					}
					var cycle []graph.ArcID
					for i := idx; i < len(stack)-1; i++ {
						cycle = append(cycle, onPath[i])
					}
					cycle = append(cycle, id)
					if r, ok := cycleRatio(g, cycle); ok && r.Equal(rho) {
						return cycle, true
					}
					// A zero-transit tight cycle is impossible after
					// checkInput, so this cannot happen; keep searching.
					continue
				case white:
					color[w] = gray
					onPath = append(onPath, id)
					stack = append(stack, dfsFrame{v: w})
					advanced = true
				}
				if advanced {
					break
				}
			}
			if advanced {
				continue
			}
			color[f.v] = black
			stack = stack[:len(stack)-1]
			if len(onPath) > 0 {
				onPath = onPath[:len(onPath)-1]
			}
		}
	}
	return nil, false
}
