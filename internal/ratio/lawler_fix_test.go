package ratio

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/numeric"
)

// TestLawlerGridOverflowGuard pins the checked-multiplication rewrite of the
// grid coarsening guard. At the documented limits (S=2^16, n=2^24, transit
// 2^31) the former divisor 4·S·n·maxT+1 is 2^73 ≡ 0 (mod 2^64), so the old
// guard divided by garbage, never fired, and left S at 2^16 — letting every
// probe overflow silently. The fixed guard must coarsen all the way down.
func TestLawlerGridOverflowGuard(t *testing.T) {
	const (
		nodes = int64(1) << 24
		maxT  = int64(1) << 31
		absW  = int64(1) << 16
	)
	bound := nodes * absW // 2^40
	if S := lawlerGrid(bound, nodes, maxT, 0); S != 2 {
		t.Fatalf("lawlerGrid at documented limits returned S = %d, want full coarsening to 2", S)
	}

	// Whenever the guard keeps S > 2 it has certified the probe bound; verify
	// that certificate with independent checked arithmetic across the edge of
	// the overflowing regime.
	for _, tc := range []struct{ bound, nodes, maxT int64 }{
		{bound, nodes, maxT},
		{1 << 50, 1 << 20, 1 << 40},
		{1 << 35, 16, 1 << 42},
		{100 * 64, 64, 7},
		{1 << 30, 1 << 10, 1 << 20},
	} {
		S := lawlerGrid(tc.bound, tc.nodes, tc.maxT, 0)
		if S&(S-1) != 0 || S < 2 {
			t.Fatalf("lawlerGrid(%d,%d,%d) = %d is not a power of two >= 2", tc.bound, tc.nodes, tc.maxT, S)
		}
		if S > 2 {
			d, ok := numeric.CheckedMul(4*S, tc.nodes)
			if ok {
				d, ok = numeric.CheckedMul(d, tc.maxT)
			}
			if !ok || d >= int64(1)<<61 || (tc.bound+1) > (int64(1)<<61)/(d+1) {
				t.Fatalf("lawlerGrid(%d,%d,%d) = %d violates the probe magnitude bound",
					tc.bound, tc.nodes, tc.maxT, S)
			}
		}
	}

	// Moderate inputs must keep the historical default grid untouched.
	if S := lawlerGrid(100*64, 64, 7, 0); S != 1<<16 {
		t.Fatalf("moderate input coarsened to S = %d, want %d", S, 1<<16)
	}
}

// TestLawlerGridEpsilonSpacing pins the flipped ε loop: the grid spacing 1/S
// must be at most eps. The former loop shrank S while 1/S < eps and so
// terminated with spacing ≥ eps (eps=0.1 yielded S=8, spacing 0.125).
func TestLawlerGridEpsilonSpacing(t *testing.T) {
	for _, eps := range []float64{0.5, 0.25, 0.1, 0.125, 0.03, 0.01, 1e-3, 2e-5, 1e-7, 1.0 / 70000} {
		S := lawlerGrid(100, 10, 3, eps)
		if spacing := 1 / float64(S); spacing > eps {
			t.Errorf("eps=%g: grid spacing 1/%d = %g exceeds the tolerance", eps, S, spacing)
		}
	}
	// Exact powers of two stay minimal: eps = 1/8 needs no finer grid than 8.
	if S := lawlerGrid(100, 10, 3, 0.125); S != 8 {
		t.Errorf("eps=1/8: S = %d, want 8", S)
	}
}

// TestLawlerEpsilonWithinTolerance is the end-to-end ε guarantee: the value
// returned by the approximate variant is within eps of the certified optimum.
// With the pre-fix spacing bug the final bisection cell could be up to twice
// the tolerance wide.
func TestLawlerEpsilonWithinTolerance(t *testing.T) {
	howard, err := ByName("howard")
	if err != nil {
		t.Fatal(err)
	}
	lawler, err := ByName("lawler")
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 10; seed++ {
		g, err := gen.Sprand(gen.SprandConfig{N: 12, M: 40, MinWeight: -150, MaxWeight: 150, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		g = withTransits(g, 4)
		exact, err := MinimumCycleRatio(g, howard, core.Options{Certify: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, eps := range []float64{0.1, 0.01, 1e-4} {
			res, err := MinimumCycleRatio(g, lawler, core.Options{Epsilon: eps})
			if err != nil {
				t.Fatalf("seed %d eps %g: %v", seed, eps, err)
			}
			if res.Exact {
				t.Fatalf("seed %d eps %g: epsilon mode reported an exact result", seed, eps)
			}
			if diff := math.Abs(res.Ratio.Float64() - exact.Ratio.Float64()); diff > eps+1e-9 {
				t.Errorf("seed %d: |approx %v - exact %v| = %g exceeds eps %g",
					seed, res.Ratio, exact.Ratio, diff, eps)
			}
		}
	}
}

// TestLawlerNumericRangeTyped drives the solver past what int64 probes can
// represent: a 16-ring with ±(2^31−1) weights and 2^42 transits coarsens the
// grid to S=2, and the bisection's first off-center probe is still out of
// exact range. The solve must surface a typed ErrNumericRange — the pre-fix
// code kept S=2^16 and wrapped silently.
func TestLawlerNumericRangeTyped(t *testing.T) {
	const w = int64(1)<<31 - 1
	b := graph.NewBuilder(16, 16)
	b.AddNodes(16)
	for i := 0; i < 16; i++ {
		wi := w
		if i%2 == 1 {
			wi = -w
		}
		b.AddArcTransit(graph.NodeID(i), graph.NodeID((i+1)%16), wi, int64(1)<<42)
	}
	g := b.Build()
	lawler, err := ByName("lawler")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MinimumCycleRatio(g, lawler, core.Options{}); !errors.Is(err, ErrNumericRange) {
		t.Fatalf("err = %v, want ErrNumericRange", err)
	}
}
