package ratio_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ratio"
)

func ExampleMinimumCycleRatio() {
	// Two cycles: ratio (3+5)/(2+2) = 2 and ratio (6+2)/(1+1) = 4.
	b := graph.NewBuilder(3, 4)
	b.AddNodes(3)
	b.AddArcTransit(0, 1, 3, 2)
	b.AddArcTransit(1, 0, 5, 2)
	b.AddArcTransit(1, 2, 6, 1)
	b.AddArcTransit(2, 1, 2, 1)
	g := b.Build()

	algo, _ := ratio.ByName("howard")
	res, err := ratio.MinimumCycleRatio(g, algo, core.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("ρ* = %v over a cycle of %d arcs\n", res.Ratio, len(res.Cycle))
	// Output: ρ* = 2 over a cycle of 2 arcs
}

func ExampleMinimumCycleRatio_engines() {
	// The same instance through three generations of exact engines: the
	// DAC'99 policy iteration, the Stern–Brocot mediant search, and the
	// BHK-style bound-tightened bisection answer bit-for-bit identically,
	// each with a certified exact ρ*.
	b := graph.NewBuilder(3, 4)
	b.AddNodes(3)
	b.AddArcTransit(0, 1, 3, 2)
	b.AddArcTransit(1, 0, 5, 2)
	b.AddArcTransit(1, 2, 6, 1)
	b.AddArcTransit(2, 1, 2, 1)
	g := b.Build()

	for _, name := range []string{"howard", "sternbrocot", "bhk"} {
		algo, _ := ratio.ByName(name)
		res, err := ratio.MinimumCycleRatio(g, algo, core.Options{Certify: true})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: ρ* = %v (exact=%v, certified=%v)\n",
			name, res.Ratio, res.Exact, res.Certificate != nil)
	}
	// Output:
	// howard: ρ* = 2 (exact=true, certified=true)
	// sternbrocot: ρ* = 2 (exact=true, certified=true)
	// bhk: ρ* = 2 (exact=true, certified=true)
}

func ExampleMaximumCycleRatio() {
	// The iteration-bound convention: weights are execution times, transit
	// times are delays; the bound is the maximum ratio.
	b := graph.NewBuilder(2, 2)
	b.AddNodes(2)
	b.AddArcTransit(0, 1, 3, 1)
	b.AddArcTransit(1, 0, 3, 1)
	g := b.Build()

	algo, _ := ratio.ByName("megiddo")
	res, err := ratio.MaximumCycleRatio(g, algo, core.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Ratio)
	// Output: 3
}
