package ratio

// Ratio-side result certification and panic-free boundary, mirroring
// internal/core's certify.go. The optimum cycle ratio of an integer
// weighted/timed graph is a rational w(C)/t(C) with denominator bounded by
// the graph's total transit time; a float-converged ρ is snapped to that
// bounded-denominator rational, the witness cycle's ratio is recomputed
// exactly, and optimality is proven by checking that the graph reweighted
// by q·w(e) − p·t(e) admits no negative cycle.

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/obs"
)

var (
	// ErrNumericRange mirrors core.ErrNumericRange for the ratio drivers.
	ErrNumericRange = errors.New("ratio: input magnitudes exceed the exact int64 arithmetic range")
	// ErrCertification mirrors core.ErrCertification.
	ErrCertification = errors.New("ratio: result certification failed")
)

// transitDenominatorBound returns the denominator bound for ρ* recovery:
// every simple cycle's total transit time is at most Σ t(e), saturating at
// MaxInt64 if the sum overflows.
func transitDenominatorBound(g *graph.Graph) int64 {
	var sum int64 = 0
	for _, a := range g.Arcs() {
		t := a.Transit
		if t < 0 {
			t = -t
		}
		if sum > (1<<63-1)-t {
			return 1<<63 - 1
		}
		sum += t
	}
	if sum < 1 {
		return 1
	}
	return sum
}

// scaledRatioOverflows reports whether Bellman–Ford on weights q·w − p·t can
// overflow int64 for this graph (per-arc magnitude times n+1 passes must
// stay inside 2^62, matching core.scaledOverflows).
func scaledRatioOverflows(g *graph.Graph, p, q int64) bool {
	minW, maxW := g.WeightRange()
	absW := maxW
	if -minW > absW {
		absW = -minW
	}
	var maxT int64
	for _, a := range g.Arcs() {
		t := a.Transit
		if t < 0 {
			t = -t
		}
		if t > maxT {
			maxT = t
		}
	}
	absP := p
	if absP < 0 {
		absP = -absP
	}
	if absW != 0 && q > (1<<62)/absW {
		return true
	}
	if maxT != 0 && absP > (1<<62)/maxT {
		return true
	}
	perArc := q*absW + absP*maxT
	if perArc < 0 {
		return true
	}
	n := int64(g.NumNodes()) + 1
	const safe = int64(1) << 62
	return perArc > safe/n
}

// certifyRatio verifies and, if needed, exactifies a minimization result in
// place; see core's certifyMean. On success res carries a Certificate with
// Value = ρ* and a witness cycle whose exact ratio equals it. The outcome is
// reported to tr.
func certifyRatio(g *graph.Graph, res *Result, tr *obs.Trace) error {
	if !tr.Enabled() {
		return certifyRatioProof(g, res)
	}
	start := time.Now()
	err := certifyRatioProof(g, res)
	ev := obs.CertifyEvent{OK: err == nil, Duration: time.Since(start), Err: err}
	if err == nil && res.Certificate != nil {
		ev.Value = res.Certificate.Value.Float64()
		ev.MaxDen = res.Certificate.MaxDen
		ev.Snapped = res.Certificate.Snapped
	}
	tr.Certify(ev)
	return err
}

// certifyRatioProof is the proof itself, tracer-free.
func certifyRatioProof(g *graph.Graph, res *Result) error {
	maxDen := transitDenominatorBound(g)
	value := res.Ratio
	snapped := false
	if !res.Exact {
		snapped = true
		if len(res.Cycle) > 0 {
			if r, ok := cycleRatio(g, res.Cycle); ok {
				value = r
			} else {
				return fmt.Errorf("%w: reported cycle has non-positive transit", ErrCertification)
			}
		} else if v, ok := numeric.SnapNearest(res.Ratio.Float64(), maxDen); ok {
			value = v
		} else {
			return fmt.Errorf("%w: no rational with denominator <= %d near %v", ErrCertification, maxDen, res.Ratio)
		}
	}
	cycle := res.Cycle
	if len(cycle) == 0 {
		c, err := extractCriticalRatioCycle(g, value)
		if err != nil {
			return fmt.Errorf("%w: no witness cycle of ratio %v: %v", ErrCertification, value, err)
		}
		cycle = c
	}
	cycVal, ok := cycleRatio(g, cycle)
	if !ok || !cycVal.Equal(value) {
		return fmt.Errorf("%w: witness cycle ratio %v does not equal claimed ρ* = %v", ErrCertification, cycVal, value)
	}
	p, q := value.Num(), value.Den()
	if scaledRatioOverflows(g, p, q) {
		return fmt.Errorf("%w: feasibility check at ρ = %v would overflow", ErrNumericRange, value)
	}
	if neg, _ := hasNegativeCycleRatio(g, p, q, &res.Counts); neg {
		return fmt.Errorf("%w: a cycle with ratio below %v exists", ErrCertification, value)
	}
	res.Ratio = value
	res.Cycle = cycle
	res.Exact = true
	res.Certificate = &core.Certificate{Value: value, Witness: cycle, MaxDen: maxDen, Snapped: snapped}
	return nil
}

// guardedAlg wraps every registered ratio Algorithm in the panic-free
// boundary, exactly like core's registry wrapper — and, like core's, it is
// the solver-event emission point for every ratio solve path.
type guardedAlg struct {
	Algorithm
}

func (a guardedAlg) Solve(g *graph.Graph, opt core.Options) (Result, error) {
	tr := opt.Tracer
	if !tr.Enabled() {
		return a.solveGuarded(g, opt)
	}
	name := a.Algorithm.Name()
	comp := opt.TraceComponent()
	n, m := g.NumNodes(), g.NumArcs()
	tr.SolverStart(obs.SolverStartEvent{Algorithm: name, Component: comp, Nodes: n, Arcs: m})
	start := time.Now()
	res, err := a.solveGuarded(g, opt)
	tr.SolverDone(obs.SolverDoneEvent{Algorithm: name, Component: comp, Nodes: n, Arcs: m,
		Duration: time.Since(start), Counts: res.Counts, Value: res.Ratio.Float64(), Err: err})
	return res, err
}

// solveGuarded runs the wrapped solver inside the panic-free boundary; split
// out so the tracing wrapper observes the recovered error, not the panic.
func (a guardedAlg) solveGuarded(g *graph.Graph, opt core.Options) (res Result, err error) {
	defer core.RecoverNumericRange(&err, ErrNumericRange)
	return a.Algorithm.Solve(g, opt)
}
