package ratio

import (
	"testing"

	"repro/internal/core"
)

// TestBHKAllocsPerOpPinned pins the per-solve allocation budget of the
// bound-tightened bisection engine. A bhk solve pays a fixed setup cost —
// the parametric oracle, its pooled workspace lease, and the big-rational
// arithmetic of the grid walk — but none of it may scale past this ceiling:
// the measured steady state on this instance is ~151 objects/op, pinned
// with headroom at 200 so a leaked per-probe allocation (one object per
// Probe call would add hundreds here) fails immediately.
func TestBHKAllocsPerOpPinned(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is unreliable under -race")
	}
	bhk, err := ByName("bhk")
	if err != nil {
		t.Fatal(err)
	}
	g := stressGraph(t, 5)
	// Warm the oracle workspace pool so the measurement sees the steady state.
	if _, err := MinimumCycleRatio(g, bhk, core.Options{}); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(20, func() {
		if _, err := MinimumCycleRatio(g, bhk, core.Options{}); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 200 {
		t.Errorf("bhk allocates %.1f objects/op in steady state, pinned at <= 200", avg)
	}
}
