//go:build race

package ratio

// raceEnabled reports whether this test binary was built with the race
// detector, whose instrumentation adds allocations that would break the
// AllocsPerRun regression pins.
const raceEnabled = true
