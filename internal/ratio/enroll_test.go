package ratio_test

// External test package: the enrollment harness (internal/testutil) imports
// ratio, so internal test files cannot use it. Every new ratio engine adds
// its one-line Enroll here — the checklist item ALGORITHMS.md requires.

import (
	"testing"

	"repro/internal/testutil"
)

func TestEnrollBHK(t *testing.T) { testutil.Enroll(t, "bhk") }

// TestEnrollSternBrocot keeps the PR 9 engine under the shared harness — the
// corpus here supersedes the hand-copied sternBrocotCorpus it enrolled with.
func TestEnrollSternBrocot(t *testing.T) { testutil.Enroll(t, "sternbrocot") }
