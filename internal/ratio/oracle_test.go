package ratio

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/obs"
)

// oracleBacked lists the solvers whose feasibility probes run through the
// shared parametric oracle (and therefore share its counter, cancellation,
// and ErrNumericRange semantics). ko/yto drive Karp-style parametric
// recurrences and expand delegates to a mean solver, so they only guarantee
// the generic counter contract.
var oracleBacked = []string{"bhk", "burns", "dinkelbach", "howard", "lawler", "megiddo", "sternbrocot"}

// twoCycleGraph has cycles of ratio 2 (optimal) and 4.
func twoCycleGraph() *graph.Graph {
	b := graph.NewBuilder(3, 4)
	b.AddNodes(3)
	b.AddArcTransit(0, 1, 3, 2)
	b.AddArcTransit(1, 0, 5, 2)
	b.AddArcTransit(1, 2, 6, 1)
	b.AddArcTransit(2, 1, 2, 1)
	return b.Build()
}

// TestRatioAdversarialRange pushes ±(2^31−1) weights and transits through
// every registered algorithm. The contract mirrors the core package's range
// tests: each solver either returns the exact certified optimum or a typed
// ErrNumericRange — never a silently wrapped wrong answer. Solvers
// legitimately differ on which side they land (sternbrocot's shifted probes
// exceed int64 where howard's certificate probes do not).
func TestRatioAdversarialRange(t *testing.T) {
	const maxW = int64(1)<<31 - 1
	ring := func(weights []int64, transits []int64) *graph.Graph {
		n := len(weights)
		b := graph.NewBuilder(n, n)
		b.AddNodes(n)
		for i := 0; i < n; i++ {
			b.AddArcTransit(graph.NodeID(i), graph.NodeID((i+1)%n), weights[i], transits[i])
		}
		return b.Build()
	}
	cases := []struct {
		name string
		g    *graph.Graph
		want numeric.Rat
	}{
		{"maxw-pos", ring([]int64{maxW, maxW - 1}, []int64{1, 1}), numeric.NewRat(2*maxW-1, 2)},
		{"maxw-mixed", ring([]int64{maxW, -maxW}, []int64{1, 1}), numeric.NewRat(0, 1)},
		{"maxw-neg", ring([]int64{-maxW, -maxW + 3}, []int64{1, 2}), numeric.NewRat(-2*maxW+3, 3)},
		{"maxt", ring([]int64{3, 4}, []int64{maxW, maxW - 2}), numeric.NewRat(7, 2*maxW-2)},
		{"maxw-maxt", ring([]int64{maxW, -maxW}, []int64{maxW, maxW}), numeric.NewRat(0, 1)},
		{"maxw-maxt-pos", ring([]int64{maxW, maxW}, []int64{maxW, maxW}), numeric.NewRat(1, 1)},
	}
	for _, name := range Names() {
		algo, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, tc := range cases {
			res, err := MinimumCycleRatio(tc.g, algo, core.Options{Certify: true})
			if err != nil {
				if !errors.Is(err, ErrNumericRange) {
					t.Errorf("%s/%s: err = %v, want nil or ErrNumericRange", name, tc.name, err)
				}
				continue
			}
			if !res.Ratio.Equal(tc.want) {
				t.Errorf("%s/%s: ρ* = %v, want %v", name, tc.name, res.Ratio, tc.want)
			}
			if res.Certificate == nil {
				t.Errorf("%s/%s: missing certificate", name, tc.name)
			}
		}
	}
}

// TestOracleCancellation checks that a fired cancellation token surfaces as
// core.ErrCanceled from the oracle itself and — identically — from every
// solver layered on it (satellite: the three formerly-private probe cores had
// diverging cancellation behavior; the shared oracle makes it uniform).
func TestOracleCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt, stop := core.Options{}.WithCancelContext(ctx)
	defer stop()

	g := twoCycleGraph()
	o := newOracle(g, opt, nil)
	defer o.Close()
	if _, _, err := o.Probe(2, 1); !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("oracle.Probe on canceled token: err = %v, want core.ErrCanceled", err)
	}

	for _, name := range oracleBacked {
		algo, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := algo.Solve(g, opt); !errors.Is(err, core.ErrCanceled) {
			t.Errorf("%s: err = %v, want core.ErrCanceled", name, err)
		}
	}
}

// TestOracleTightCycle pins the equality test's state discipline: TightCycle
// answers only for the parameters of the most recent converged probe.
func TestOracleTightCycle(t *testing.T) {
	g := twoCycleGraph()
	o := newOracle(g, core.Options{}, nil)
	defer o.Close()

	neg, _, err := o.Probe(2, 1)
	if err != nil || neg {
		t.Fatalf("Probe(2,1) = (%v, %v), want feasible", neg, err)
	}
	cycle, ok := o.TightCycle(2, 1)
	if !ok {
		t.Fatal("TightCycle(2,1) found nothing at ρ* = 2")
	}
	if r, ok := cycleRatio(g, cycle); !ok || !r.Equal(numeric.NewRat(2, 1)) {
		t.Fatalf("tight cycle ratio = %v, want 2", r)
	}
	// Parameter mismatch with the converged state: must refuse.
	if _, ok := o.TightCycle(3, 1); ok {
		t.Fatal("TightCycle(3,1) answered from stale (2,1) distances")
	}
	// Converged below the optimum: no tight cycle of that ratio exists.
	if neg, _, err = o.Probe(1, 1); err != nil || neg {
		t.Fatalf("Probe(1,1) = (%v, %v), want feasible", neg, err)
	}
	if _, ok := o.TightCycle(1, 1); ok {
		t.Fatal("TightCycle(1,1) found a cycle below ρ*")
	}
	// A negative probe leaves no converged distances behind.
	if neg, _, err = o.Probe(3, 1); err != nil || !neg {
		t.Fatalf("Probe(3,1) = (%v, %v), want negative cycle", neg, err)
	}
	if _, ok := o.TightCycle(3, 1); ok {
		t.Fatal("TightCycle answered after a non-converged probe")
	}
}

// TestOracleProbeAllocs verifies the pooled workspace: after the first probe,
// repeated feasibility probes allocate nothing.
func TestOracleProbeAllocs(t *testing.T) {
	g := twoCycleGraph()
	o := newOracle(g, core.Options{}, nil)
	defer o.Close()
	if _, _, err := o.Probe(1, 1); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		neg, _, err := o.Probe(1, 1)
		if err != nil || neg {
			t.Fatalf("Probe(1,1) = (%v, %v)", neg, err)
		}
	})
	if allocs != 0 {
		t.Errorf("feasible probe allocates %.1f objects per run, want 0", allocs)
	}
}

// TestOracleProbeTrace checks the ProbeEvent emission path: one event per
// probe, carrying the parameter, the verdict, and a positive pass count.
func TestOracleProbeTrace(t *testing.T) {
	var events []obs.ProbeEvent
	tr := &obs.Trace{OnProbe: func(ev obs.ProbeEvent) { events = append(events, ev) }}
	g := twoCycleGraph()
	o := newOracle(g, core.Options{Tracer: tr}, nil)
	defer o.Close()

	if _, _, err := o.Probe(2, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := o.Probe(3, 1); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d probe events, want 2", len(events))
	}
	feas, neg := events[0], events[1]
	if feas.Num != 2 || feas.Den != 1 || feas.Negative || feas.Passes < 1 {
		t.Errorf("feasible event = %+v", feas)
	}
	if neg.Num != 3 || neg.Den != 1 || !neg.Negative || neg.Passes < 1 {
		t.Errorf("negative event = %+v", neg)
	}
}

// TestRatioCountsConsistency is the reflection-style counter contract: every
// registered algorithm reports non-zero work on the same graph, and the
// oracle-backed solvers report consistently scaled probe counters — each
// probe runs between 1 and n full passes of exactly m relaxations, so
//
//	m·checks ≤ Relaxations ≤ m·n·(checks + iterations + 1)
//
// (the upper slack covers howard/megiddo/burns' own per-iteration
// relaxation sweeps on top of the oracle's).
func TestRatioCountsConsistency(t *testing.T) {
	g := withTransits(gen.Complete(8, -20, 30, 1), 4)
	n, m := int64(g.NumNodes()), int64(g.NumArcs())
	backed := map[string]bool{}
	for _, name := range oracleBacked {
		backed[name] = true
	}
	for _, name := range Names() {
		algo, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := algo.Solve(g, core.Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		v := reflect.ValueOf(res.Counts)
		var total int64
		for i := 0; i < v.NumField(); i++ {
			total += v.Field(i).Int()
		}
		if total == 0 {
			t.Errorf("%s: all counters zero: %+v", name, res.Counts)
		}
		if res.Counts.Iterations == 0 {
			t.Errorf("%s: Iterations = 0: %+v", name, res.Counts)
		}
		if !backed[name] {
			continue
		}
		checks := int64(res.Counts.NegativeCycleChecks)
		rel := int64(res.Counts.Relaxations)
		iters := int64(res.Counts.Iterations)
		if checks == 0 {
			t.Errorf("%s: oracle-backed solver reported no probes: %+v", name, res.Counts)
			continue
		}
		if rel < m*checks {
			t.Errorf("%s: Relaxations %d < m·checks = %d·%d: %+v", name, rel, m, checks, res.Counts)
		}
		if max := m * n * (checks + iters + 1); rel > max {
			t.Errorf("%s: Relaxations %d > m·n·(checks+iters+1) = %d: %+v", name, rel, max, res.Counts)
		}
	}
}
