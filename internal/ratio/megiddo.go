package ratio

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/counter"
	"repro/internal/graph"
	"repro/internal/numeric"
)

func init() {
	register("megiddo", func() Algorithm { return megiddoAlg{} })
}

// megiddoAlg is Megiddo's parametric-search algorithm for the minimum
// cost-to-time ratio problem [Megiddo 1979] — row 12 of the paper's Table 1.
// Bellman–Ford runs *symbolically*: every tentative distance is the linear
// function d(λ) = a − λ·b (a the path weight, b its transit time), valid for
// every λ in a shrinking interval (lo, hi) with lo always feasible
// (lo ≤ ρ*) and hi always infeasible (hi > ρ*). When a relaxation's
// comparison changes order inside the interval, the crossing point
// λ_c = Δa/Δb is resolved with one exact feasibility probe (Bellman–Ford on
// scaled integers), shrinking the interval to make the order constant
// again. A feasible probe that admits a tight cycle is exactly ρ*; if the
// symbolic run converges first, lo has been pinned to ρ* (any negative
// cycle at hi would otherwise have forced another crossing inside the
// interval). Either way the result is exact.
type megiddoAlg struct{}

func (megiddoAlg) Name() string { return "megiddo" }

// linFn is the linear function a − λ·b.
type linFn struct {
	a int64 // weight part
	b int64 // transit part (slope magnitude)
}

func (megiddoAlg) Solve(g *graph.Graph, opt core.Options) (Result, error) {
	if err := checkInput(g); err != nil {
		return Result{}, err
	}
	var counts counter.Counts
	n := g.NumNodes()

	minW, maxW := g.WeightRange()
	absW := maxW
	if -minW > absW {
		absW = -minW
	}
	if absW < 1 {
		absW = 1
	}
	lo := numeric.FromInt(-(int64(n)*absW + 1)) // feasible: below every ratio
	hi := numeric.FromInt(int64(n)*absW + 1)    // infeasible: above every ratio

	// probe resolves a crossing point: shrink the interval, and if the
	// crossing is feasible and tight, we are done.
	type probeResult int
	const (
		probeContinue probeResult = iota
		probeDone
	)
	var (
		finalRatio numeric.Rat
		finalCycle []graph.ArcID
	)
	oracle := newOracle(g, opt, &counts)
	defer oracle.Close()
	probe := func(lambda numeric.Rat) (probeResult, error) {
		if opt.Canceled() {
			return probeContinue, core.ErrCanceled
		}
		counts.Iterations++
		neg, _, err := oracle.Probe(lambda.Num(), lambda.Den())
		if err != nil {
			return probeContinue, err
		}
		if neg {
			hi = lambda
			return probeContinue, nil
		}
		lo = lambda
		// The probe just converged at lambda, so its tight arcs answer the
		// equality question with no second Bellman–Ford run.
		if cycle, ok := oracle.TightCycle(lambda.Num(), lambda.Den()); ok {
			finalRatio, finalCycle = lambda, cycle
			return probeDone, nil
		}
		return probeContinue, nil
	}

	// cmpAtLoPlus compares f and g at λ = lo + ε: first exact values at lo,
	// ties broken by slope (larger b wins for λ just above lo).
	cmpAtLoPlus := func(f, h linFn) int {
		p, q := lo.Num(), lo.Den()
		fv := q*f.a - p*f.b
		hv := q*h.a - p*h.b
		switch {
		case fv < hv:
			return -1
		case fv > hv:
			return 1
		case f.b > h.b: // steeper decline: smaller just above lo
			return -1
		case f.b < h.b:
			return 1
		default:
			return 0
		}
	}

	d := make([]linFn, n)
	parent := make([]graph.ArcID, n)
	for i := range parent {
		parent[i] = -1
	}

	maxProbes := opt.MaxIterations
	if maxProbes <= 0 {
		maxProbes = 4*n*g.NumArcs() + 64
	}
	probes := 0

	for pass := 0; pass <= n; pass++ {
		changed := false
		for id := graph.ArcID(0); int(id) < g.NumArcs(); id++ {
			counts.Relaxations++
			arc := g.Arc(id)
			cand := linFn{a: d[arc.From].a + arc.Weight, b: d[arc.From].b + arc.Transit}
			cur := d[arc.To]
			if cand == cur {
				continue
			}
			// Is the order of cand vs cur constant on (lo, hi)? They cross
			// at λ_c = Δa/Δb when the slopes differ.
			if cand.b != cur.b {
				num, den := cand.a-cur.a, cand.b-cur.b
				lambdaC := numeric.NewRat(num, den)
				if lo.Less(lambdaC) && lambdaC.Less(hi) {
					probes++
					if probes > maxProbes {
						return Result{}, ErrIterationLimit
					}
					res, err := probe(lambdaC)
					if err != nil {
						return Result{}, err
					}
					if res == probeDone {
						return Result{Ratio: finalRatio, Cycle: finalCycle, Exact: true, Counts: counts}, nil
					}
					// The interval shrank so λ_c is now a boundary; the
					// order below is constant again.
				}
			}
			if cmpAtLoPlus(cand, cur) < 0 {
				d[arc.To] = cand
				parent[arc.To] = id
				changed = true
			}
		}
		if !changed {
			// Converged for every λ in (lo, hi): lo must be ρ*.
			cycle, err := extractCriticalRatioCycle(g, lo)
			if err != nil {
				return Result{}, fmt.Errorf("ratio: megiddo converged but lo=%v is not tight: %w", lo, err)
			}
			return Result{Ratio: lo, Cycle: cycle, Exact: true, Counts: counts}, nil
		}
	}
	return Result{}, ErrIterationLimit
}
