package ratio_test

// External test package: these corpus-wide gates run on the shared harness
// corpus (internal/testutil), which imports ratio and therefore cannot be
// used from internal test files. They replace the hand-copied corpora the
// kernel and Stern–Brocot gates used to duplicate.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/numeric"
	"repro/internal/ratio"
	"repro/internal/testutil"
)

func mustByName(t *testing.T, name string) ratio.Algorithm {
	t.Helper()
	a, err := ratio.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestKernelEquivalenceRatio mirrors the core package's corpus guarantee for
// the ratio driver: kernelized and raw solves agree on ρ* exactly, and the
// kernelized critical cycle is valid on the original graph with its exact
// recomputed ratio equal to ρ*.
func TestKernelEquivalenceRatio(t *testing.T) {
	var algos []ratio.Algorithm
	for _, name := range []string{"howard", "lawler", "burns", "sternbrocot", "bhk"} {
		algos = append(algos, mustByName(t, name))
	}
	for name, g := range testutil.RatioCorpus(t) {
		raw, err := ratio.MinimumCycleRatio(g, algos[0], core.Options{Certify: true})
		if err != nil {
			t.Fatalf("%s: raw solve: %v", name, err)
		}
		if raw.Certificate == nil {
			t.Fatalf("%s: certified solve returned no certificate", name)
		}
		for _, algo := range algos {
			kr, err := ratio.MinimumCycleRatio(g, algo, core.Options{Kernelize: true, Certify: true})
			if err != nil {
				t.Fatalf("%s/%s: kernelized solve: %v", name, algo.Name(), err)
			}
			if !kr.Ratio.Equal(raw.Ratio) {
				t.Errorf("%s/%s: kernelized ρ* = %v, raw = %v", name, algo.Name(), kr.Ratio, raw.Ratio)
				continue
			}
			if kr.Certificate == nil || !kr.Certificate.Value.Equal(kr.Ratio) {
				t.Errorf("%s/%s: missing or mismatched certificate: %+v", name, algo.Name(), kr.Certificate)
			}
			if err := g.ValidateCycle(kr.Cycle); err != nil {
				t.Errorf("%s/%s: expanded cycle invalid: %v", name, algo.Name(), err)
				continue
			}
			w, tr := g.CycleWeight(kr.Cycle), g.CycleTransit(kr.Cycle)
			if tr <= 0 {
				t.Errorf("%s/%s: expanded cycle has non-positive transit %d", name, algo.Name(), tr)
				continue
			}
			if r := numeric.NewRat(w, tr); !r.Equal(kr.Ratio) {
				t.Errorf("%s/%s: expanded cycle ratio %v != reported ρ* %v", name, algo.Name(), r, kr.Ratio)
			}
		}
	}
}

// TestIntegerOnlyCertificates pins that the integer-path solvers never
// float-snap a certificate: sternbrocot's mediant walk and bhk's verified
// bisection both derive ρ* in exact arithmetic, so Snapped must stay false
// across the whole corpus.
func TestIntegerOnlyCertificates(t *testing.T) {
	for _, algoName := range []string{"sternbrocot", "bhk"} {
		algo := mustByName(t, algoName)
		t.Run(algoName, func(t *testing.T) {
			for name, g := range testutil.RatioCorpus(t) {
				res, err := ratio.MinimumCycleRatio(g, algo, core.Options{Certify: true})
				if err != nil {
					t.Errorf("%s: %v", name, err)
					continue
				}
				if !res.Exact || res.Certificate == nil {
					t.Errorf("%s: result not exact/certified: %+v", name, res)
					continue
				}
				if res.Certificate.Snapped {
					t.Errorf("%s: certificate was float-snapped", name)
				}
			}
		})
	}
}
