package ratio

import (
	"repro/internal/core"
	"repro/internal/counter"
	"repro/internal/graph"
	"repro/internal/numeric"
)

func init() {
	register("dinkelbach", func() Algorithm { return dinkelbachAlg{} })
}

// dinkelbachAlg is Dinkelbach's parametric method specialized to the
// minimum cycle ratio (sometimes attributed to Fox in the cycle context):
// probe λ equal to the ratio of the best cycle found so far; if G_λ has a
// negative cycle, that cycle has a strictly smaller ratio and becomes the
// next probe, otherwise the current cycle is optimal. The λ sequence
// strictly decreases through actual cycle ratios, so termination is
// guaranteed, and convergence is superlinear in practice — typically a
// handful of Bellman–Ford probes. This is the classical alternative to
// Lawler's bisection that the paper's framework accommodates but does not
// measure; it is included for completeness and as the engine behind the
// exact endgames of the OA solvers.
type dinkelbachAlg struct{}

func (dinkelbachAlg) Name() string { return "dinkelbach" }

func (dinkelbachAlg) Solve(g *graph.Graph, opt core.Options) (Result, error) {
	if err := checkInput(g); err != nil {
		return Result{}, err
	}
	var counts counter.Counts

	// Start from any cycle: follow the first out-arc from every node.
	policy := make([]graph.ArcID, g.NumNodes())
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		policy[v] = g.OutArcs(v)[0]
	}
	var (
		best      numeric.Rat
		bestCycle []graph.ArcID
		haveBest  bool
	)
	ratioPolicyCycles(g, policy, func(cycle []graph.ArcID) {
		r, ok := cycleRatio(g, cycle)
		if !ok {
			return
		}
		if !haveBest || r.Less(best) {
			best = r
			bestCycle = append([]graph.ArcID(nil), cycle...)
			haveBest = true
		}
	})
	if !haveBest {
		return Result{}, ErrAcyclic
	}

	oracle := newOracle(g, opt, &counts)
	defer oracle.Close()

	maxIter := opt.MaxIterations
	if maxIter <= 0 {
		maxIter = g.NumNodes()*g.NumArcs() + 64
	}
	for iter := 0; iter < maxIter; iter++ {
		if opt.Canceled() {
			return Result{}, core.ErrCanceled
		}
		counts.Iterations++
		neg, cyc, err := oracle.Probe(best.Num(), best.Den())
		if err != nil {
			return Result{}, err
		}
		if !neg {
			return Result{Ratio: best, Cycle: bestCycle, Exact: true, Counts: counts}, nil
		}
		counts.CyclesExamined++
		r, ok := cycleRatio(g, cyc)
		if !ok || !r.Less(best) {
			return Result{}, ErrIterationLimit
		}
		best, bestCycle = r, cyc
	}
	return Result{}, ErrIterationLimit
}
