// Package ncd provides negative cycle detection — the oracle at the heart
// of Lawler's algorithm (every binary-search probe asks "does G_λ contain
// a negative cycle?") and of the Equation 1 feasibility certificates. Three
// classic detectors are implemented behind one interface so their cost
// inside Lawler's algorithm can be ablated, in the spirit of the
// Cherkassky–Goldberg negative-cycle-detection study the paper's
// experimental methodology draws on:
//
//   - Basic: textbook Bellman–Ford, n full passes plus a check pass — the
//     cost model the paper's O(nm log(nW/ε)) Lawler bound assumes;
//   - EarlyExit: Bellman–Ford that stops at the first quiescent pass
//     (cheap on feasible probes, identical worst case);
//   - Tarjan: Bellman–Ford–Moore with a FIFO queue and subtree
//     disassembly — a relaxation that improves d(v) immediately detects a
//     cycle if v is an ancestor of the relaxing arc's tail in the parent
//     tree, and prunes v's entire stale subtree otherwise.
//
// All detectors take pre-scaled exact integer weights (callers evaluate
// q·w(e) − p·t(e) per probe), start from a virtual source connected to
// every node with weight 0, and return a negative cycle as arc IDs when
// one exists.
package ncd

import (
	"fmt"

	"repro/internal/counter"
	"repro/internal/graph"
)

// Method selects a detector.
type Method int

const (
	// EarlyExit is the default used by the solvers.
	EarlyExit Method = iota
	// Basic never exits early (the paper-faithful worst-case cost).
	Basic
	// Tarjan uses a FIFO queue with subtree disassembly.
	Tarjan
)

// String returns the lower-case method name.
func (m Method) String() string {
	switch m {
	case EarlyExit:
		return "earlyexit"
	case Basic:
		return "basic"
	case Tarjan:
		return "tarjan"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Detect reports whether the graph, under the given per-arc weights, has a
// negative cycle, returning one if so. len(weights) must equal
// g.NumArcs(). counts, when non-nil, accumulates relaxation counts.
func Detect(g *graph.Graph, weights []int64, method Method, counts *counter.Counts) ([]graph.ArcID, bool) {
	if len(weights) != g.NumArcs() {
		panic(fmt.Sprintf("ncd: %d weights for %d arcs", len(weights), g.NumArcs()))
	}
	if counts != nil {
		counts.NegativeCycleChecks++
	}
	switch method {
	case Basic:
		return bellmanFord(g, weights, false, counts)
	case EarlyExit:
		return bellmanFord(g, weights, true, counts)
	case Tarjan:
		return tarjanDetect(g, weights, counts)
	default:
		panic("ncd: unknown method")
	}
}

func bellmanFord(g *graph.Graph, weights []int64, earlyExit bool, counts *counter.Counts) ([]graph.ArcID, bool) {
	n := g.NumNodes()
	dist := make([]int64, n)
	parent := make([]graph.ArcID, n)
	for i := range parent {
		parent[i] = -1
	}
	arcs := g.Arcs()
	lastChanged := graph.NodeID(-1)
	for pass := 0; pass < n; pass++ {
		lastChanged = -1
		for id, a := range arcs {
			if counts != nil {
				counts.Relaxations++
			}
			if nd := dist[a.From] + weights[id]; nd < dist[a.To] {
				dist[a.To] = nd
				parent[a.To] = graph.ArcID(id)
				lastChanged = a.To
			}
		}
		if lastChanged == -1 {
			if earlyExit {
				return nil, false
			}
			// Basic mode: keep sweeping (no further changes can occur, but
			// the pass structure — and so the measured cost — matches the
			// textbook algorithm).
			continue
		}
	}
	if lastChanged == -1 {
		return nil, false
	}
	return collectCycle(g, parent, lastChanged), true
}

// collectCycle walks parents from a node known to be on or downstream of a
// negative cycle and returns the cycle in forward order.
func collectCycle(g *graph.Graph, parent []graph.ArcID, from graph.NodeID) []graph.ArcID {
	v := from
	for i := 0; i < len(parent); i++ {
		v = g.Arc(parent[v]).From
	}
	start := v
	var rev []graph.ArcID
	for {
		id := parent[v]
		rev = append(rev, id)
		v = g.Arc(id).From
		if v == start {
			break
		}
	}
	cycle := make([]graph.ArcID, len(rev))
	for i, id := range rev {
		cycle[len(rev)-1-i] = id
	}
	return cycle
}

// tarjanDetect is Bellman–Ford–Moore with subtree disassembly: the parent
// pointers form a tree; when an arc (u, v) improves d(v), every node in
// v's current subtree holds a stale distance, so the subtree is detached
// (and its nodes dequeued logically); if u itself lies in that subtree the
// relaxation has closed a negative cycle, which is reported immediately —
// long before n passes complete.
func tarjanDetect(g *graph.Graph, weights []int64, counts *counter.Counts) ([]graph.ArcID, bool) {
	n := g.NumNodes()
	dist := make([]int64, n)
	parent := make([]graph.ArcID, n)
	// Intrusive child lists for subtree disassembly.
	childHead := make([]int32, n)
	childNext := make([]int32, n)
	childPrev := make([]int32, n)
	inTree := make([]bool, n) // has a parent (is not a root)
	for i := 0; i < n; i++ {
		parent[i] = -1
		childHead[i] = -1
		childNext[i] = -1
		childPrev[i] = -1
	}

	unlink := func(v graph.NodeID) {
		u := g.Arc(parent[v]).From
		if childPrev[v] >= 0 {
			childNext[childPrev[v]] = childNext[v]
		} else {
			childHead[u] = childNext[v]
		}
		if childNext[v] >= 0 {
			childPrev[childNext[v]] = childPrev[v]
		}
		childNext[v], childPrev[v] = -1, -1
	}
	link := func(v graph.NodeID) {
		u := g.Arc(parent[v]).From
		childNext[v] = childHead[u]
		childPrev[v] = -1
		if childHead[u] >= 0 {
			childPrev[childHead[u]] = int32(v)
		}
		childHead[u] = int32(v)
	}

	inQueue := make([]bool, n)
	queue := make([]graph.NodeID, 0, 4*n)
	for v := graph.NodeID(0); int(v) < n; v++ {
		queue = append(queue, v)
		inQueue[v] = true
	}
	var scratch []graph.NodeID

	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		if !inQueue[u] {
			continue
		}
		inQueue[u] = false
		for _, id := range g.OutArcs(u) {
			if counts != nil {
				counts.Relaxations++
			}
			a := g.Arc(id)
			nd := dist[u] + weights[id]
			if nd >= dist[a.To] {
				continue
			}
			if a.To == u {
				// A self-loop that improves its own node is a negative
				// cycle of length one.
				return []graph.ArcID{id}, true
			}
			v := a.To
			// Disassemble v's subtree; if u is inside it, we have a cycle:
			// the tree path v → … → u plus the arc (u, v).
			if inTree[v] || childHead[v] >= 0 {
				scratch = scratch[:0]
				scratch = append(scratch, v)
				cycleFound := false
				for si := 0; si < len(scratch); si++ {
					x := scratch[si]
					if x == u && si > 0 {
						cycleFound = true
						break
					}
					for c := childHead[x]; c >= 0; c = childNext[c] {
						scratch = append(scratch, graph.NodeID(c))
					}
				}
				if cycleFound {
					// Walk parents from u back to v.
					var rev []graph.ArcID
					for x := u; x != v; {
						pid := parent[x]
						rev = append(rev, pid)
						x = g.Arc(pid).From
					}
					cycle := make([]graph.ArcID, 0, len(rev)+1)
					for i := len(rev) - 1; i >= 0; i-- {
						cycle = append(cycle, rev[i])
					}
					return append(cycle, id), true
				}
				// Detach the stale subtree (children become roots; they
				// will be fixed up when re-relaxed).
				for _, x := range scratch[1:] {
					unlink(x)
					parent[x] = -1
					inTree[x] = false
					inQueue[x] = false // stale entries are skipped
				}
			}
			if inTree[v] {
				unlink(v)
			}
			dist[v] = nd
			parent[v] = id
			inTree[v] = true
			link(v)
			if !inQueue[v] {
				inQueue[v] = true
				queue = append(queue, v)
			}
		}
		// Compact the queue occasionally to bound memory.
		if qi > 4*n && qi*2 > len(queue) {
			live := queue[qi+1:]
			queue = append(queue[:0], live...)
			qi = -1
		}
	}
	return nil, false
}
