package ncd

import (
	"testing"
	"testing/quick"

	"repro/internal/counter"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/verify"
)

var methods = []Method{Basic, EarlyExit, Tarjan}

func scaledWeights(g *graph.Graph, p, q int64) []int64 {
	w := make([]int64, g.NumArcs())
	for i, a := range g.Arcs() {
		w[i] = q*a.Weight - p
	}
	return w
}

func TestMethodString(t *testing.T) {
	if Basic.String() != "basic" || EarlyExit.String() != "earlyexit" || Tarjan.String() != "tarjan" {
		t.Fatal("method names wrong")
	}
}

func TestKnownNegativeCycle(t *testing.T) {
	// Triangle of mean 2; probing λ = 3 must find a negative cycle, λ = 1
	// must not, λ = 2 must not (zero is not negative).
	b := graph.NewBuilder(3, 3)
	b.AddNodes(3)
	b.AddArc(0, 1, 1)
	b.AddArc(1, 2, 2)
	b.AddArc(2, 0, 3)
	g := b.Build()
	for _, m := range methods {
		if _, found := Detect(g, scaledWeights(g, 3, 1), m, nil); !found {
			t.Errorf("%v: λ=3 should reveal a negative cycle", m)
		}
		if cyc, found := Detect(g, scaledWeights(g, 1, 1), m, nil); found {
			t.Errorf("%v: λ=1 is feasible, got cycle %v", m, cyc)
		}
		if cyc, found := Detect(g, scaledWeights(g, 2, 1), m, nil); found {
			t.Errorf("%v: λ=λ* has only zero cycles, got %v", m, cyc)
		}
	}
}

func TestSelfLoop(t *testing.T) {
	b := graph.NewBuilder(1, 1)
	b.AddNodes(1)
	b.AddArc(0, 0, 5)
	g := b.Build()
	for _, m := range methods {
		cyc, found := Detect(g, scaledWeights(g, 6, 1), m, nil)
		if !found || len(cyc) != 1 {
			t.Errorf("%v: self-loop cycle not found: %v %v", m, cyc, found)
		}
	}
}

// TestAgreesWithOracle: all three detectors agree with the brute-force
// characterization (a negative cycle exists iff λ > λ*) on random graphs,
// and returned cycles are genuinely negative closed walks.
func TestAgreesWithOracle(t *testing.T) {
	f := func(seed uint64, nudge uint8) bool {
		g, err := gen.Sprand(gen.SprandConfig{N: 8, M: 20, MinWeight: -12, MaxWeight: 12, Seed: seed})
		if err != nil {
			return false
		}
		lambda, _, err := verify.BruteForceMinMean(g)
		if err != nil {
			return false
		}
		// Probe slightly above and below λ* on an exact grid.
		delta := numeric.NewRat(int64(nudge)%5+1, 7)
		for _, probe := range []struct {
			lam  numeric.Rat
			want bool
		}{
			{lambda.Add(delta), true},
			{lambda, false},
			{lambda.Sub(delta), false},
		} {
			w := scaledWeights(g, probe.lam.Num(), probe.lam.Den())
			for _, m := range methods {
				cyc, found := Detect(g, w, m, nil)
				if found != probe.want {
					t.Logf("%v seed=%d λ=%v: found=%v want=%v", m, seed, probe.lam, found, probe.want)
					return false
				}
				if found {
					if err := g.ValidateCycle(cyc); err != nil {
						t.Logf("%v: bad cycle: %v", m, err)
						return false
					}
					var sum int64
					for _, id := range cyc {
						sum += w[id]
					}
					if sum >= 0 {
						t.Logf("%v: returned cycle not negative: %d", m, sum)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestRelaxationCountOrdering(t *testing.T) {
	// On a feasible probe the early-exit version must do no more
	// relaxations than the basic version; Tarjan typically far fewer.
	g, err := gen.Sprand(gen.SprandConfig{N: 200, M: 600, MinWeight: 1, MaxWeight: 10000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	w := scaledWeights(g, 0, 1) // λ = 0 < λ* (positive weights): feasible
	relax := map[Method]int{}
	for _, m := range methods {
		var c counter.Counts
		if _, found := Detect(g, w, m, &c); found {
			t.Fatalf("%v: spurious negative cycle", m)
		}
		relax[m] = c.Relaxations
	}
	if relax[EarlyExit] > relax[Basic] {
		t.Errorf("early exit (%d) did more work than basic (%d)", relax[EarlyExit], relax[Basic])
	}
	if relax[Basic] != 200*600 {
		t.Errorf("basic = %d relaxations, want n·m = 120000", relax[Basic])
	}
}
