package retime

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/ratio"
)

// correlator builds the classic Leiserson–Saxe correlator example: host
// (δ=0) → three adders (δ=7) and four comparators (δ=3), original period
// 24, optimal period 13.
func correlator(t *testing.T) *Graph {
	t.Helper()
	// Vertices: 0 host, 1..3 adders (+), 4..7 comparators (δ).
	delays := []int64{0, 7, 7, 7, 3, 3, 3, 3}
	b := graph.NewBuilder(8, 11)
	b.AddNodes(8)
	// The canonical correlator wiring (LS Fig. 1): host → δ1 chain with
	// one register per hop on the top row, zero-register adder chain back
	// to the host.
	b.AddArc(0, 4, 1) // host → δ1, 1 register
	b.AddArc(4, 5, 1)
	b.AddArc(5, 6, 1)
	b.AddArc(6, 7, 1)
	b.AddArc(7, 3, 0)
	b.AddArc(3, 2, 0)
	b.AddArc(2, 1, 0)
	b.AddArc(1, 0, 0)
	b.AddArc(6, 3, 0)
	b.AddArc(5, 2, 0)
	b.AddArc(4, 1, 0)
	rg := &Graph{G: b.Build(), Delay: delays}
	if err := rg.Validate(); err != nil {
		t.Fatal(err)
	}
	return rg
}

func TestCorrelatorPeriods(t *testing.T) {
	rg := correlator(t)
	period, err := rg.Period()
	if err != nil {
		t.Fatal(err)
	}
	// Longest zero-register path: δ(7)→+(3)→+(2)→+(1)→host: 3+7+7+7 = 24.
	if period != 24 {
		t.Fatalf("original period = %d, want 24", period)
	}
	res, err := Minimize(rg)
	if err != nil {
		t.Fatal(err)
	}
	// The Leiserson–Saxe optimum for the correlator is 13.
	if res.Period != 13 {
		t.Fatalf("optimal period = %d, want 13", res.Period)
	}
	// Applying the retiming must realize exactly that period.
	retimed := rg.Apply(res)
	got, err := retimed.Period()
	if err != nil {
		t.Fatal(err)
	}
	if got != res.Period {
		t.Fatalf("applied period = %d, claimed %d", got, res.Period)
	}
}

func TestRetimingPreservesCycleRegisters(t *testing.T) {
	rg := correlator(t)
	res, err := Minimize(rg)
	if err != nil {
		t.Fatal(err)
	}
	retimed := rg.Apply(res)
	// Register count around any cycle is invariant: compare total over the
	// (only) big cycle via summing all arcs on each simple cycle — here,
	// spot-check total registers (conserved on this graph because every
	// arc lies on some cycle through the host... total is NOT generally
	// invariant, so check per-cycle via the lag telescoping instead).
	for id := graph.ArcID(0); int(id) < rg.G.NumArcs(); id++ {
		a := rg.G.Arc(id)
		want := a.Weight + res.R[a.To] - res.R[a.From]
		if retimed.G.Arc(id).Weight != want {
			t.Fatalf("arc %d: retimed %d, want %d", id, retimed.G.Arc(id).Weight, want)
		}
		if retimed.G.Arc(id).Weight < 0 {
			t.Fatalf("arc %d: negative registers", id)
		}
	}
}

func TestLowerBoundHolds(t *testing.T) {
	rg := correlator(t)
	algo, err := ratio.ByName("howard")
	if err != nil {
		t.Fatal(err)
	}
	bound, err := rg.LowerBound(algo)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Minimize(rg)
	if err != nil {
		t.Fatal(err)
	}
	if numeric.FromInt(res.Period).Less(bound) {
		t.Fatalf("optimal period %d beats the cycle-ratio bound %v", res.Period, bound)
	}
}

func TestFromNetlistAndMinimize(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		nl, err := circuit.Generate(circuit.GenConfig{
			FFs: 12, CloudGates: 10, MaxFanin: 3, Feedback: 3, PIs: 3, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		rg, err := FromNetlist(nl)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		before, err := rg.Period()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := Minimize(rg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Period > before {
			t.Fatalf("seed %d: retiming worsened the period: %d > %d", seed, res.Period, before)
		}
		retimed := rg.Apply(res)
		after, err := retimed.Period()
		if err != nil {
			t.Fatalf("seed %d: retimed graph invalid: %v", seed, err)
		}
		if after != res.Period {
			t.Fatalf("seed %d: applied period %d != claimed %d", seed, after, res.Period)
		}
		// Cycle-ratio lower bound from the paper's machinery.
		algo, _ := ratio.ByName("howard")
		bound, err := rg.LowerBound(algo)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if numeric.FromInt(res.Period).Less(bound) {
			t.Fatalf("seed %d: period %d below bound %v", seed, res.Period, bound)
		}
	}
}

func TestValidateRejectsCombinationalLoop(t *testing.T) {
	b := graph.NewBuilder(2, 2)
	b.AddNodes(2)
	b.AddArc(0, 1, 0)
	b.AddArc(1, 0, 0)
	rg := &Graph{G: b.Build(), Delay: []int64{1, 1}}
	if err := rg.Validate(); err == nil {
		t.Fatal("register-free cycle accepted")
	}
}

func TestValidateRejectsNegativeValues(t *testing.T) {
	b := graph.NewBuilder(2, 2)
	b.AddNodes(2)
	b.AddArc(0, 1, 1)
	b.AddArc(1, 0, 1)
	rg := &Graph{G: b.Build(), Delay: []int64{1, -1}}
	if err := rg.Validate(); err == nil {
		t.Fatal("negative delay accepted")
	}
	rg2 := &Graph{G: b.Build(), Delay: []int64{1, 1}}
	arcs := []graph.Arc{{From: 0, To: 1, Weight: -1, Transit: 1}, {From: 1, To: 0, Weight: 1, Transit: 1}}
	rg2.G = graph.FromArcs(2, arcs)
	if err := rg2.Validate(); err == nil {
		t.Fatal("negative registers accepted")
	}
}
