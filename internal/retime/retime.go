// Package retime implements Leiserson–Saxe retiming on top of the circuit
// substrate: moving registers across combinational logic to minimize the
// clock period. It closes the loop on the paper's CAD motivation — the
// cycle-mean/cycle-ratio machinery provides the fundamental lower bound
// (no retiming can beat the maximum delay-to-register ratio over cycles),
// and this package computes a retiming that gets as close as the classical
// OPT algorithm allows, verifying the bound relation in tests.
//
// The model is the standard one: a retiming graph with one vertex per
// functional element (propagation delay d(v) ≥ 0) plus a host vertex, and
// edges carrying register counts w(e) ≥ 0. A retiming r: V → Z relocates
// registers (w_r(e) = w(e) + r(head) − r(tail)), preserving behavior; the
// clock period of a configuration is the longest register-free
// combinational path.
package retime

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/ratio"
)

// Graph is a retiming graph: Delay per vertex, register counts on arcs
// (stored in the underlying graph's Weight field... kept separately for
// clarity). Vertex 0 is the host (delay 0) when built from a netlist.
type Graph struct {
	// G holds the topology; arc Weight is the register count w(e).
	G *graph.Graph
	// Delay[v] is the propagation delay of vertex v.
	Delay []int64
}

// Validate checks the invariants: register counts and delays non-negative,
// and every cycle carries at least one register (otherwise the circuit has
// a combinational loop and no period is defined).
func (rg *Graph) Validate() error {
	if rg.G.NumNodes() != len(rg.Delay) {
		return fmt.Errorf("retime: %d delays for %d vertices", len(rg.Delay), rg.G.NumNodes())
	}
	for _, d := range rg.Delay {
		if d < 0 {
			return errors.New("retime: negative delay")
		}
	}
	var zero []graph.Arc
	for _, a := range rg.G.Arcs() {
		if a.Weight < 0 {
			return errors.New("retime: negative register count")
		}
		if a.Weight == 0 {
			zero = append(zero, a)
		}
	}
	if len(zero) > 0 && graph.HasCycle(graph.FromArcs(rg.G.NumNodes(), zero)) {
		return errors.New("retime: register-free cycle (combinational loop)")
	}
	return nil
}

// Period returns the clock period of the current register placement: the
// maximum total vertex delay along a register-free path (including both
// endpoints).
func (rg *Graph) Period() (int64, error) {
	if err := rg.Validate(); err != nil {
		return 0, err
	}
	n := rg.G.NumNodes()
	// Longest path over the zero-register subgraph (a DAG after Validate).
	var zeroArcs []graph.Arc
	for _, a := range rg.G.Arcs() {
		if a.Weight == 0 {
			zeroArcs = append(zeroArcs, a)
		}
	}
	zg := graph.FromArcs(n, zeroArcs)
	order, ok := graph.TopoOrder(zg)
	if !ok {
		return 0, errors.New("retime: register-free cycle")
	}
	// dist[v] = max delay sum of a zero-register path ending at v.
	dist := make([]int64, n)
	period := int64(0)
	for v := 0; v < n; v++ {
		dist[v] = rg.Delay[v]
		if dist[v] > period {
			period = dist[v]
		}
	}
	for _, u := range order {
		for _, id := range zg.OutArcs(u) {
			v := zg.Arc(id).To
			if nd := dist[u] + rg.Delay[v]; nd > dist[v] {
				dist[v] = nd
				if nd > period {
					period = nd
				}
			}
		}
	}
	return period, nil
}

// LowerBound returns the fundamental retiming bound from the paper's
// machinery: the maximum over cycles of (total delay)/(total registers) —
// a maximum cycle ratio with vertex delays pushed onto outgoing arcs. No
// retiming can achieve a period below ⌈bound⌉ − ... precisely, the period
// of every retiming is ≥ the bound (registers on a cycle are invariant
// under retiming while its delay is fixed).
func (rg *Graph) LowerBound(algo ratio.Algorithm) (numeric.Rat, error) {
	b := graph.NewBuilder(rg.G.NumNodes(), rg.G.NumArcs())
	b.AddNodes(rg.G.NumNodes())
	for _, a := range rg.G.Arcs() {
		b.AddArcTransit(a.From, a.To, rg.Delay[a.From], a.Weight)
	}
	res, err := ratio.MaximumCycleRatio(b.Build(), algo, core.Options{})
	if err != nil {
		return numeric.Rat{}, err
	}
	return res.Ratio, nil
}

// Result is an optimal retiming.
type Result struct {
	// Period is the minimum achievable clock period.
	Period int64
	// R is the retiming lag per vertex (host fixed at 0).
	R []int64
	// Registers[arcID] is the retimed register count of each arc.
	Registers []int64
}

// Minimize computes a minimum-period retiming with the classical OPT
// algorithm: build the W (minimum registers between vertices) and D
// (maximum delay over minimum-register paths) matrices, binary-search the
// sorted D values, and test each candidate period by Bellman–Ford on the
// constraint graph. O(n³ + n² log n · n...) — intended for circuit-sized
// graphs (thousands of vertices at most).
func Minimize(rg *Graph) (*Result, error) {
	if err := rg.Validate(); err != nil {
		return nil, err
	}
	n := rg.G.NumNodes()
	if n == 0 {
		return nil, errors.New("retime: empty graph")
	}

	// W/D via Floyd–Warshall on lexicographic weights (w(e), −d(tail)).
	const inf = int64(math.MaxInt64 / 4)
	W := make([]int64, n*n)
	Dm := make([]int64, n*n)
	for i := range W {
		W[i] = inf
	}
	for v := 0; v < n; v++ {
		W[v*n+v] = 0
		Dm[v*n+v] = rg.Delay[v]
	}
	for _, a := range rg.G.Arcs() {
		i, j := int(a.From), int(a.To)
		if i == j {
			continue
		}
		// Lexicographic min: fewer registers, then more delay.
		cand := a.Weight
		candD := rg.Delay[a.From] + rg.Delay[a.To]
		if cand < W[i*n+j] || (cand == W[i*n+j] && candD > Dm[i*n+j]) {
			W[i*n+j] = cand
			Dm[i*n+j] = candD
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			wik := W[i*n+k]
			if wik >= inf {
				continue
			}
			dik := Dm[i*n+k]
			for j := 0; j < n; j++ {
				if W[k*n+j] >= inf {
					continue
				}
				w := wik + W[k*n+j]
				d := dik + Dm[k*n+j] - rg.Delay[k] // k counted twice
				if w < W[i*n+j] || (w == W[i*n+j] && d > Dm[i*n+j]) {
					W[i*n+j] = w
					Dm[i*n+j] = d
				}
			}
		}
	}

	// Candidate periods: the distinct D values (only finite ones).
	seen := map[int64]bool{}
	var candidates []int64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if W[i*n+j] < inf && !seen[Dm[i*n+j]] {
				seen[Dm[i*n+j]] = true
				candidates = append(candidates, Dm[i*n+j])
			}
		}
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })

	// Binary search the smallest feasible candidate.
	lo, hi := 0, len(candidates)-1
	var (
		bestR []int64
		found bool
	)
	for lo <= hi {
		mid := (lo + hi) / 2
		if r, ok := rg.feasible(W, Dm, candidates[mid]); ok {
			bestR, found = r, true
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	if !found {
		return nil, errors.New("retime: no feasible period among candidates (corrupt W/D)")
	}
	period := candidates[lo]

	regs := make([]int64, rg.G.NumArcs())
	for id := graph.ArcID(0); int(id) < rg.G.NumArcs(); id++ {
		a := rg.G.Arc(id)
		regs[id] = a.Weight + bestR[a.To] - bestR[a.From]
		if regs[id] < 0 {
			return nil, fmt.Errorf("retime: internal error: negative retimed register count on arc %d", id)
		}
	}
	return &Result{Period: period, R: bestR, Registers: regs}, nil
}

// feasible tests period c via the Leiserson–Saxe constraint graph:
//
//	r(u) − r(v) ≤ w(e)              for every edge u → v
//	r(u) − r(v) ≤ W(u,v) − 1        whenever D(u,v) > c
//
// and returns retiming lags (Bellman–Ford potentials) when satisfiable.
func (rg *Graph) feasible(W, Dm []int64, c int64) ([]int64, bool) {
	n := rg.G.NumNodes()
	const inf = int64(math.MaxInt64 / 4)
	type cArc struct {
		from, to int32
		w        int64
	}
	var arcs []cArc
	for _, a := range rg.G.Arcs() {
		// Constraint r(u) − r(v) ≤ w(e) is a difference-constraint arc
		// v → u of weight w(e) in shortest-path form r(u) ≤ r(v) + w.
		arcs = append(arcs, cArc{from: int32(a.To), to: int32(a.From), w: a.Weight})
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v || W[u*n+v] >= inf {
				continue
			}
			if Dm[u*n+v] > c {
				arcs = append(arcs, cArc{from: int32(v), to: int32(u), w: W[u*n+v] - 1})
			}
		}
	}
	dist := make([]int64, n)
	for pass := 0; pass < n; pass++ {
		changed := false
		for _, a := range arcs {
			if nd := dist[a.from] + a.w; nd < dist[a.to] {
				dist[a.to] = nd
				changed = true
			}
		}
		if !changed {
			return dist, true
		}
	}
	for _, a := range arcs {
		if dist[a.from]+a.w < dist[a.to] {
			return nil, false
		}
	}
	return dist, true
}

// Apply returns a copy of the graph with the retimed register counts.
func (rg *Graph) Apply(res *Result) *Graph {
	arcs := make([]graph.Arc, rg.G.NumArcs())
	for id, a := range rg.G.Arcs() {
		a.Weight = res.Registers[id]
		arcs[id] = a
	}
	return &Graph{G: graph.FromArcs(rg.G.NumNodes(), arcs), Delay: rg.Delay}
}

// FromNetlist builds the retiming graph of a sequential circuit: vertex 0
// is the host (delay 0), other vertices are the combinational gates
// (Gate.Delay each); an edge carries the number of DFFs on the connection
// (chains of DFFs collapse into the count). Primary inputs and outputs
// attach to the host.
func FromNetlist(nl *circuit.Netlist) (*Graph, error) {
	// Map combinational gates to vertices 1..; host is 0.
	vert := make([]int32, nl.NumGates())
	for i := range vert {
		vert[i] = -1
	}
	delays := []int64{0} // host
	for gi, g := range nl.Gates {
		if g.Type.IsCombinational() {
			vert[gi] = int32(len(delays))
			delays = append(delays, g.Delay)
		}
	}
	b := graph.NewBuilder(len(delays), nl.NumGates()*2)
	b.AddNodes(len(delays))

	// traceSource walks fan-in through DFF chains, returning the driving
	// vertex (host for PIs) and the register count along the way.
	var traceSource func(gi int32) (int32, int64, error)
	traceSource = func(gi int32) (int32, int64, error) {
		regs := int64(0)
		cur := gi
		for hops := 0; hops <= nl.NumGates(); hops++ {
			g := nl.Gates[cur]
			switch {
			case g.Type == circuit.DFF:
				regs++
				if len(g.Fanin) != 1 {
					return 0, 0, fmt.Errorf("retime: DFF %s has %d inputs", g.Name, len(g.Fanin))
				}
				cur = g.Fanin[0]
			case g.Type == circuit.Input:
				return 0, regs, nil // host
			case g.Type.IsCombinational():
				return vert[cur], regs, nil
			default:
				return 0, 0, fmt.Errorf("retime: unexpected fan-in gate type %v", g.Type)
			}
		}
		return 0, 0, errors.New("retime: DFF chain cycle without combinational gate")
	}

	for gi, g := range nl.Gates {
		var sinkVert int32
		switch {
		case g.Type.IsCombinational():
			sinkVert = vert[gi]
		case g.Type == circuit.Output:
			sinkVert = 0 // host
		default:
			continue
		}
		for _, f := range g.Fanin {
			src, regs, err := traceSource(f)
			if err != nil {
				return nil, err
			}
			b.AddArc(graph.NodeID(src), graph.NodeID(sinkVert), regs)
		}
	}
	rg := &Graph{G: b.Build(), Delay: delays}
	if err := rg.Validate(); err != nil {
		return nil, err
	}
	return rg, nil
}
