package servecache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/obs"
)

func testGraph(weight int64) *graph.Graph {
	return graph.FromArcs(2, []graph.Arc{
		{From: 0, To: 1, Weight: weight, Transit: 1},
		{From: 1, To: 0, Weight: weight + 1, Transit: 1},
	})
}

func meanKey(g *graph.Graph, opt Options) Key {
	if opt.Problem == "" {
		opt.Problem = "mean"
	}
	if opt.Algorithm == "" {
		opt.Algorithm = "howard"
	}
	return Key{Graph: g.Fingerprint(), Opt: opt}
}

func fixedResult(v int64, certified bool) *Result {
	return &Result{Value: numeric.NewRat(v, 1), Exact: true, Certified: certified}
}

// solveConst returns a solve func that counts invocations.
func solveConst(res *Result, calls *atomic.Int64) func(context.Context) (*Result, error) {
	return func(context.Context) (*Result, error) {
		calls.Add(1)
		return res, nil
	}
}

func TestHitMissAndLRUEviction(t *testing.T) {
	c := New(2, nil)
	ctx := context.Background()
	var calls atomic.Int64

	k1 := meanKey(testGraph(1), Options{})
	k2 := meanKey(testGraph(2), Options{})
	k3 := meanKey(testGraph(3), Options{})

	for i, k := range []Key{k1, k2} {
		res, src, err := c.Do(ctx, k, solveConst(fixedResult(int64(i), false), &calls))
		if err != nil || src != SourceSolve || res == nil {
			t.Fatalf("first solve %d: res=%v src=%v err=%v", i, res, src, err)
		}
	}
	// k1 hit refreshes its recency.
	if _, src, _ := c.Do(ctx, k1, solveConst(nil, &calls)); src != SourceHit {
		t.Fatalf("k1 not a hit: %v", src)
	}
	// k3 evicts k2 (least recently used), not k1.
	if _, src, _ := c.Do(ctx, k3, solveConst(fixedResult(3, false), &calls)); src != SourceSolve {
		t.Fatalf("k3 not a solve: %v", src)
	}
	if _, src, _ := c.Do(ctx, k1, solveConst(nil, &calls)); src != SourceHit {
		t.Fatalf("k1 evicted despite recency: %v", src)
	}
	if _, src, _ := c.Do(ctx, k2, solveConst(fixedResult(2, false), &calls)); src != SourceSolve {
		t.Fatalf("k2 not evicted: %v", src)
	}

	st := c.Stats()
	if st.Entries != 2 || st.Capacity != 2 {
		t.Errorf("entries=%d capacity=%d, want 2/2", st.Entries, st.Capacity)
	}
	if st.Evictions != 2 {
		t.Errorf("evictions=%d, want 2", st.Evictions)
	}
	if st.Hits != 2 || st.Misses != 4 {
		t.Errorf("hits=%d misses=%d, want 2/4", st.Hits, st.Misses)
	}
	if calls.Load() != 4 {
		t.Errorf("solve calls=%d, want 4", calls.Load())
	}
}

// TestOptionKeyingNearMisses is the regression for the full-option-set key:
// every solve-relevant option flip — most critically certify — must miss
// rather than reuse a near-miss entry. A cached uncertified result answering
// a certified request would be a correctness bug, not a perf bug.
func TestOptionKeyingNearMisses(t *testing.T) {
	g := testGraph(5)
	base := Options{Problem: "mean", Algorithm: "howard"}
	variants := []Options{
		{Problem: "mean", Algorithm: "howard", Certify: true},
		{Problem: "mean", Algorithm: "howard", Kernelize: true},
		{Problem: "mean", Algorithm: "howard", Maximize: true},
		{Problem: "mean", Algorithm: "karp"},
		{Problem: "ratio", Algorithm: "howard"},
		{Problem: "ratio", Algorithm: "sternbrocot"},
		{Problem: "ratio", Algorithm: "bhk"},
		{Problem: "mean", Algorithm: "madani"},
		{Problem: "mean", Algorithm: "howard", Certify: true, Kernelize: true},
		{Problem: "mean", Algorithm: "approx", ApproxEpsilon: 0.05, ApproxMode: "chkl"},
		{Problem: "mean", Algorithm: "approx", ApproxEpsilon: 0.01, ApproxMode: "chkl"},
		{Problem: "mean", Algorithm: "approx", ApproxEpsilon: 0.05, ApproxMode: "ap"},
		{Problem: "mean", Algorithm: "approx", ApproxEpsilon: 0.05, ApproxMode: "chkl", ApproxSharpen: true},
	}

	c := New(64, nil)
	ctx := context.Background()
	var calls atomic.Int64
	if _, src, err := c.Do(ctx, meanKey(g, base), solveConst(fixedResult(1, false), &calls)); src != SourceSolve || err != nil {
		t.Fatalf("base: src=%v err=%v", src, err)
	}
	for i, opt := range variants {
		res, src, err := c.Do(ctx, meanKey(g, opt), solveConst(fixedResult(1, opt.Certify), &calls))
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if src != SourceSolve {
			t.Errorf("variant %+v reused a near-miss entry (src=%v)", opt, src)
		}
		if res.Certified != opt.Certify {
			t.Errorf("variant %+v: certified=%v, want %v", opt, res.Certified, opt.Certify)
		}
	}
	// And each exact repeat is a hit.
	for _, opt := range variants {
		if _, src, _ := c.Do(ctx, meanKey(g, opt), solveConst(nil, &calls)); src != SourceHit {
			t.Errorf("repeat of %+v not a hit: %v", opt, src)
		}
	}
	if got, want := calls.Load(), int64(1+len(variants)); got != want {
		t.Errorf("solve calls=%d, want %d", got, want)
	}

	// Same options, different graph content: distinct entries.
	if _, src, _ := c.Do(ctx, meanKey(testGraph(6), base), solveConst(fixedResult(2, false), &calls)); src != SourceSolve {
		t.Errorf("different graph hit the wrong entry: %v", src)
	}
}

// TestCanceledSolveNeverStored pins the poisoning regression: a canceled or
// failed solve must leave no entry, waiters must observe the error, and the
// next request for the same key must re-solve successfully.
func TestCanceledSolveNeverStored(t *testing.T) {
	c := New(8, nil)
	key := meanKey(testGraph(9), Options{})

	// Leader whose ctx expires mid-solve, with waiters merged onto it.
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := c.Do(ctx, key, func(ctx context.Context) (*Result, error) {
			close(started)
			<-ctx.Done()
			return nil, fmt.Errorf("solver unwound: %w", ctx.Err())
		})
		leaderDone <- err
	}()
	<-started

	waiters := 4
	waiterErrs := make(chan error, waiters)
	waiterSrcs := make(chan Source, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, src, err := c.Do(context.Background(), key, func(context.Context) (*Result, error) {
				t.Error("waiter ran its own solve while the leader was in flight")
				return fixedResult(0, false), nil
			})
			if res != nil {
				t.Error("waiter got a result from a canceled solve")
			}
			waiterSrcs <- src
			waiterErrs <- err
		}()
	}
	// Let the waiters reach the merge path, then kill the leader.
	for c.Stats().Singleflight < int64(waiters) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	wg.Wait()

	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader error %v, want context.Canceled", err)
	}
	for i := 0; i < waiters; i++ {
		if err := <-waiterErrs; !errors.Is(err, context.Canceled) {
			t.Errorf("waiter error %v, want context.Canceled", err)
		}
		if src := <-waiterSrcs; src != SourceMerged {
			t.Errorf("waiter source %v, want merged", src)
		}
	}

	// Nothing stored; the key re-solves cleanly.
	if c.Len() != 0 {
		t.Fatalf("canceled solve left %d entries in the cache", c.Len())
	}
	var calls atomic.Int64
	res, src, err := c.Do(context.Background(), key, solveConst(fixedResult(7, false), &calls))
	if err != nil || src != SourceSolve || res.Value.Num() != 7 {
		t.Fatalf("re-solve after cancellation: res=%+v src=%v err=%v", res, src, err)
	}
	if _, src, _ = c.Do(context.Background(), key, solveConst(nil, &calls)); src != SourceHit {
		t.Fatalf("entry missing after clean re-solve: %v", src)
	}
}

// TestWaiterOwnDeadline: a merged waiter whose own ctx expires before the
// leader finishes gets its own ctx error and does not wedge.
func TestWaiterOwnDeadline(t *testing.T) {
	c := New(8, nil)
	key := meanKey(testGraph(11), Options{})
	release := make(chan struct{})
	started := make(chan struct{})
	go c.Do(context.Background(), key, func(context.Context) (*Result, error) {
		close(started)
		<-release
		return fixedResult(1, false), nil
	})
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, src, err := c.Do(ctx, key, nil)
	if src != SourceMerged || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("src=%v err=%v, want merged + deadline", src, err)
	}
	close(release)
}

// TestSingleflightExactlyOnce hammers one key from many goroutines and
// requires exactly one solve, with everyone sharing the identical *Result.
func TestSingleflightExactlyOnce(t *testing.T) {
	c := New(8, nil)
	key := meanKey(testGraph(20), Options{})
	var calls atomic.Int64
	gate := make(chan struct{})
	res := fixedResult(42, false)

	const goroutines = 32
	results := make(chan *Result, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-gate
			r, _, err := c.Do(context.Background(), key, func(context.Context) (*Result, error) {
				calls.Add(1)
				time.Sleep(5 * time.Millisecond) // widen the merge window
				return res, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			results <- r
		}()
	}
	close(gate)
	wg.Wait()
	close(results)
	if calls.Load() != 1 {
		t.Fatalf("solve ran %d times, want exactly once", calls.Load())
	}
	for r := range results {
		if r != res {
			t.Fatal("a caller got a different result pointer than the single solve produced")
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Singleflight+st.Hits != goroutines-1 {
		t.Fatalf("stats %+v: want 1 miss and %d merges+hits", st, goroutines-1)
	}
}

// TestTracerEvents wires a Metrics-backed tracer and checks every op lands
// on the obs counters the serve layer exports.
func TestTracerEvents(t *testing.T) {
	m := obs.NewMetrics()
	c := New(1, m.Tracer())
	ctx := context.Background()
	var calls atomic.Int64

	k1 := meanKey(testGraph(1), Options{})
	k2 := meanKey(testGraph(2), Options{})
	c.Do(ctx, k1, solveConst(fixedResult(1, false), &calls)) // miss
	c.Do(ctx, k1, solveConst(nil, &calls))                   // hit
	c.Do(ctx, k2, solveConst(fixedResult(2, false), &calls)) // miss + evict

	release := make(chan struct{})
	started := make(chan struct{})
	go c.Do(ctx, k1, func(context.Context) (*Result, error) {
		close(started)
		<-release
		return fixedResult(1, false), nil
	})
	<-started
	waited := make(chan struct{})
	go func() {
		c.Do(ctx, k1, nil) // merge
		close(waited)
	}()
	for c.Stats().Singleflight == 0 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	<-waited

	snap := m.Snapshot()
	want := map[string]int64{
		"serve_cache_hits":   1,
		"serve_cache_misses": 3,
		// k2 evicts k1, then the re-solved k1 evicts k2 (capacity 1).
		"serve_cache_evictions":    2,
		"serve_cache_singleflight": 1,
	}
	for k, v := range want {
		if got := snap[k].(int64); got != v {
			t.Errorf("%s = %d, want %d", k, got, v)
		}
	}
}

// TestConcurrentMixedKeys is the race-detector workout: many goroutines,
// many keys, a tiny capacity forcing constant eviction.
func TestConcurrentMixedKeys(t *testing.T) {
	c := New(4, nil)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				v := int64(i % 8)
				key := meanKey(testGraph(v), Options{Certify: i%2 == 0})
				key.Opt.Certify = i%2 == 0
				res, _, err := c.Do(context.Background(), key, func(context.Context) (*Result, error) {
					return fixedResult(v, key.Opt.Certify), nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				if res.Value.Num() != v || res.Certified != key.Opt.Certify {
					t.Errorf("wrong result for key %v: %+v", key.Opt, res)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if n := c.Len(); n > 4 {
		t.Fatalf("capacity 4 exceeded: %d entries", n)
	}
}

// TestDeltaContentNearMisses pins the fingerprint behavior the session API
// depends on. A delta stream walks one graph through a sequence of nearby
// contents; every distinct content must key a distinct entry (a one-weight
// edit must never be served the prior state's answer), while an edit that is
// later reverted returns to the seed's exact key. That last property is why
// session solves bypass the cache in both directions: a lookup would be a
// staleness bug for every non-reverted state, and a store would publish
// mid-stream answers under keys /v1/solve requests can reach.
func TestDeltaContentNearMisses(t *testing.T) {
	seed := graph.FromArcs(3, []graph.Arc{
		{From: 0, To: 1, Weight: 4, Transit: 1},
		{From: 1, To: 2, Weight: 7, Transit: 1},
		{From: 2, To: 0, Weight: -2, Transit: 1},
	})
	dg := graph.NewDynamic(seed)
	fp := func() Key {
		snap, _ := dg.Materialize()
		return meanKey(snap, Options{})
	}

	c := New(64, nil)
	ctx := context.Background()
	var calls atomic.Int64

	k0 := fp()
	if _, src, err := c.Do(ctx, k0, solveConst(fixedResult(3, false), &calls)); src != SourceSolve || err != nil {
		t.Fatalf("seed: src=%v err=%v", src, err)
	}

	// Each delta lands on a fresh key: a hit here would be the staleness bug.
	steps := []func() error{
		func() error { return dg.SetWeight(1, 8) },                      // one weight, ±1
		func() error { return dg.SetTransit(0, 2) },                     // transit only
		func() error { _, err := dg.InsertArc(2, 1, 7, 1); return err }, // new arc
		func() error { return dg.DeleteArc(3) },                         // ...and gone again
		func() error { dg.AddNode(); return nil },                       // isolated node
	}
	seen := map[Key]bool{k0: true}
	for i, step := range steps {
		if err := step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		k := fp()
		if seen[k] {
			// Step 3 (delete of the just-inserted arc) deliberately returns
			// to step 1+2's content; every other step must be novel.
			if i != 3 {
				t.Fatalf("step %d: content collided with an earlier state", i)
			}
			continue
		}
		seen[k] = true
		if _, src, err := c.Do(ctx, k, solveConst(fixedResult(int64(10+i), false), &calls)); src != SourceSolve || err != nil {
			t.Fatalf("step %d: near-miss content served a cached entry (src=%v err=%v)", i, src, err)
		}
	}

	// Revert everything: the overlay's history independence must land the
	// key exactly back on the seed entry.
	if err := dg.SetWeight(1, 7); err != nil {
		t.Fatal(err)
	}
	if err := dg.SetTransit(0, 1); err != nil {
		t.Fatal(err)
	}
	// (The inserted arc is already deleted; the added node keeps the key
	// distinct, which is correct: an isolated node is still content.)
	snap, _ := dg.Materialize()
	reverted := graph.FromArcs(3, snap.Arcs()[:3])
	if meanKey(reverted, Options{}) != k0 {
		t.Fatal("reverted content does not key back to the seed entry")
	}
	if _, src, _ := c.Do(ctx, meanKey(reverted, Options{}), solveConst(nil, &calls)); src != SourceHit {
		t.Fatal("reverted content missed the seed entry")
	}
}
