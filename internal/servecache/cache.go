// Package servecache is the serve-layer content-addressed result cache:
// canonical graph fingerprint + solve options → stored solve outcome, with
// singleflight deduplication so N concurrent identical requests cost one
// solve, and a bounded LRU so memory stays capped under millions of
// distinct graphs.
//
// The cache sits in front of the solver stack in internal/serve: repeated
// solves of the same graph under the same options — the dominant production
// workload, where the same CAD graphs and perturbations arrive over and
// over — become O(1) lookups instead of O(nm) solver runs. Keys are exact:
// the graph fingerprint (graph.Fingerprint, identical across text and JSON
// encodings of the same arc list) combined with every solve-relevant option
// (problem, direction, algorithm, kernelize, certify, approximation knobs),
// so a cached uncertified answer can never satisfy a certified request and a
// loose-ε approximation can never answer a tight-ε one.
//
// Failed solves are never stored. In particular a canceled or
// deadline-expired solve leaves no entry behind: its singleflight waiters
// receive the cancellation error and the key is cleared, so the next
// request re-solves from scratch rather than observing a poisoned entry.
package servecache

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/counter"
	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/obs"
)

// errNilResult guards against a solve callback returning (nil, nil).
var errNilResult = errors.New("servecache: solve returned neither result nor error")

// Options is the solve-relevant option set that participates in the cache
// key. Every field that can change the answer (or its certification status)
// must appear here; see the regression tests for the near-miss pairs.
type Options struct {
	// Problem is "mean" or "ratio" (resolved, never empty).
	Problem string
	// Maximize flips to the maximum cycle mean/ratio.
	Maximize bool
	// Algorithm is the resolved solver name ("howard" when the request left
	// it empty). Different algorithms may return different (equally optimal)
	// critical cycles, so they never share an entry.
	Algorithm string
	// Kernelize records whether the prep reductions ran.
	Kernelize bool
	// Certify records whether the stored result carries a verified proof. A
	// cached uncertified result must never answer a certified request.
	Certify bool
	// ApproxEpsilon, ApproxMode, and ApproxSharpen are the approximation-tier
	// knobs (algorithm "approx" only; zero values otherwise). They change the
	// answer or its error bound, so near-miss requests never share an entry.
	// ApproxMode is stored canonicalized ("chkl" or "ap", never empty) so the
	// default spelling and the explicit one hit the same key.
	ApproxEpsilon float64
	ApproxMode    string
	ApproxSharpen bool
}

// Key is the full cache key: what graph, solved how.
type Key struct {
	Graph graph.Fingerprint
	Opt   Options
}

// Result is the request-independent solve outcome the cache stores: exactly
// the fields of a successful serve response that depend only on the graph
// and the options, never on the requesting client. Cached Results are
// shared across goroutines — treat them (including the Cycle slice) as
// immutable.
type Result struct {
	Value     numeric.Rat
	Cycle     []graph.ArcID
	Exact     bool
	Certified bool
	// Approx marks a non-exact value; ErrorBound is the certified interval
	// width when the approximation tier produced it (zero for exact answers).
	Approx     bool
	ErrorBound float64
	Counts     counter.Counts
}

// Source reports how Do obtained its result.
type Source int

const (
	// SourceSolve: this call ran the solve (cache miss, singleflight leader).
	SourceSolve Source = iota
	// SourceHit: a stored result was returned without any solve work.
	SourceHit
	// SourceMerged: the call waited on another in-flight solve of the same
	// key and shares its outcome (including its error).
	SourceMerged
)

// String returns "solve", "hit", or "merged".
func (s Source) String() string {
	switch s {
	case SourceSolve:
		return "solve"
	case SourceHit:
		return "hit"
	case SourceMerged:
		return "merged"
	}
	return "unknown"
}

// flight is one in-flight solve; waiters block on done, then read res/err.
type flight struct {
	done chan struct{}
	res  *Result
	err  error
}

// Cache is the bounded LRU + singleflight store. Create with New; all
// methods are safe for concurrent use.
type Cache struct {
	tracer *obs.Trace

	mu       sync.Mutex
	capacity int
	entries  map[Key]*list.Element // -> *entry, via lru
	lru      *list.List            // front = most recent
	inflight map[Key]*flight

	hits   atomic.Int64
	misses atomic.Int64
	evicts atomic.Int64
	merges atomic.Int64
}

type entry struct {
	key Key
	res *Result
}

// New returns a Cache bounded to capacity stored results (clamped to at
// least 1). tracer, when non-nil, receives one obs.ServeCacheEvent per
// hit/miss/evict/merge — internal/serve wires it to the same obs.Metrics
// that /debug/vars serves.
func New(capacity int, tracer *obs.Trace) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		tracer:   tracer,
		capacity: capacity,
		entries:  make(map[Key]*list.Element),
		lru:      list.New(),
		inflight: make(map[Key]*flight),
	}
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Entries      int   `json:"entries"`
	Capacity     int   `json:"capacity"`
	Hits         int64 `json:"hits"`
	Misses       int64 `json:"misses"`
	Evictions    int64 `json:"evictions"`
	Singleflight int64 `json:"singleflight_merges"`
}

// Stats returns the current counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	n := c.lru.Len()
	c.mu.Unlock()
	return Stats{
		Entries:      n,
		Capacity:     c.capacity,
		Hits:         c.hits.Load(),
		Misses:       c.misses.Load(),
		Evictions:    c.evicts.Load(),
		Singleflight: c.merges.Load(),
	}
}

// Len returns the number of stored results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Do returns the result for key, running solve at most once across all
// concurrent callers of the same key:
//
//   - stored result: returned immediately (SourceHit), no solve.
//   - another call already solving the key: this call waits for it and
//     shares its outcome, success or error (SourceMerged). A waiter whose
//     own ctx expires first unblocks with its own ctx error.
//   - otherwise: this call is the leader (SourceSolve); it runs solve(ctx)
//     and, on success only, stores the result (evicting the least recently
//     used entries beyond capacity). A failed or canceled solve stores
//     nothing — the key is cleared so the next request re-solves.
//
// solve receives the leader's ctx unchanged; deadline handling stays with
// the caller.
func (c *Cache) Do(ctx context.Context, key Key, solve func(ctx context.Context) (*Result, error)) (*Result, Source, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		res := el.Value.(*entry).res
		entries := c.lru.Len()
		c.mu.Unlock()
		c.hits.Add(1)
		c.tracer.ServeCache(obs.ServeCacheEvent{Op: obs.CacheHit, Entries: entries})
		return res, SourceHit, nil
	}
	if fl, ok := c.inflight[key]; ok {
		entries := c.lru.Len()
		c.mu.Unlock()
		c.merges.Add(1)
		c.tracer.ServeCache(obs.ServeCacheEvent{Op: obs.CacheMerge, Entries: entries})
		select {
		case <-fl.done:
			return fl.res, SourceMerged, fl.err
		case <-ctx.Done():
			return nil, SourceMerged, ctx.Err()
		}
	}
	fl := &flight{done: make(chan struct{})}
	c.inflight[key] = fl
	entries := c.lru.Len()
	c.mu.Unlock()
	c.misses.Add(1)
	c.tracer.ServeCache(obs.ServeCacheEvent{Op: obs.CacheMiss, Entries: entries})

	res, err := solve(ctx)
	if err == nil && res == nil {
		// Defensive: a nil success must not be stored or handed to waiters.
		err = errNilResult
	}
	fl.res, fl.err = res, err

	c.mu.Lock()
	delete(c.inflight, key)
	if err == nil {
		c.store(key, res)
	}
	c.mu.Unlock()
	close(fl.done)
	return res, SourceSolve, err
}

// Get returns the stored result for key without solving, or nil. It counts
// as a hit/miss like Do; used by read-only probes and tests.
func (c *Cache) Get(key Key) *Result {
	c.mu.Lock()
	el, ok := c.entries[key]
	if !ok {
		entries := c.lru.Len()
		c.mu.Unlock()
		c.misses.Add(1)
		c.tracer.ServeCache(obs.ServeCacheEvent{Op: obs.CacheMiss, Entries: entries})
		return nil
	}
	c.lru.MoveToFront(el)
	res := el.Value.(*entry).res
	entries := c.lru.Len()
	c.mu.Unlock()
	c.hits.Add(1)
	c.tracer.ServeCache(obs.ServeCacheEvent{Op: obs.CacheHit, Entries: entries})
	return res
}

// store inserts under c.mu, evicting beyond capacity.
func (c *Cache) store(key Key, res *Result) {
	if el, ok := c.entries[key]; ok {
		// A racing leader for the same key already stored (possible when a
		// failed leader's key was re-solved); keep the newest.
		el.Value.(*entry).res = res
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&entry{key: key, res: res})
	for c.lru.Len() > c.capacity {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*entry).key)
		c.evicts.Add(1)
		c.tracer.ServeCache(obs.ServeCacheEvent{Op: obs.CacheEvict, Entries: c.lru.Len()})
	}
}
