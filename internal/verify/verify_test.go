package verify

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/numeric"
)

func trianglePlusChord() *graph.Graph {
	// Cycles: 0→1→2→0 (mean 2) and 1→2→1 (mean 3), self-loop at 2 (mean 7).
	b := graph.NewBuilder(3, 5)
	b.AddNodes(3)
	b.AddArc(0, 1, 1)
	b.AddArc(1, 2, 2)
	b.AddArc(2, 0, 3)
	b.AddArc(2, 1, 4)
	b.AddArc(2, 2, 7)
	return b.Build()
}

func TestEnumerateCyclesCounts(t *testing.T) {
	n, err := CountCycles(trianglePlusChord(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("count = %d, want 3", n)
	}
}

func TestEnumerateCompleteGraphCount(t *testing.T) {
	// Complete digraph on k nodes has sum over j=2..k of C(k,j)·(j-1)!
	// simple cycles (length >= 2). For k=4: C(4,2)·1 + C(4,3)·2 + C(4,4)·6
	// = 6 + 8 + 6 = 20.
	g := gen.Complete(4, 1, 1, 1)
	n, err := CountCycles(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 20 {
		t.Fatalf("K4 cycle count = %d, want 20", n)
	}
}

func TestEnumerateEmitsValidCycles(t *testing.T) {
	g, err := gen.Sprand(gen.SprandConfig{N: 8, M: 20, MinWeight: 1, MaxWeight: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	err = EnumerateCycles(g, 0, func(cycle []graph.ArcID) error {
		if err := g.ValidateCycle(cycle); err != nil {
			return err
		}
		// Simple: no repeated nodes.
		nodes := make(map[graph.NodeID]bool)
		key := ""
		// Canonical key: rotate so the smallest arc id is first.
		minAt := 0
		for i, id := range cycle {
			if id < cycle[minAt] {
				minAt = i
			}
		}
		for i := range cycle {
			id := cycle[(minAt+i)%len(cycle)]
			key += string(rune(id)) + ","
			from := g.Arc(id).From
			if nodes[from] {
				t.Fatalf("cycle %v repeats node %d", cycle, from)
			}
			nodes[from] = true
		}
		if seen[key] {
			t.Fatalf("cycle emitted twice: %v", cycle)
		}
		seen[key] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) == 0 {
		t.Fatal("no cycles found in a strongly connected graph")
	}
}

func TestCycleLimit(t *testing.T) {
	g := gen.Complete(6, 1, 1, 1)
	_, err := CountCycles(g, 5)
	if !errors.Is(err, ErrTooManyCycles) {
		t.Fatalf("got %v, want ErrTooManyCycles", err)
	}
}

func TestBruteForceMinMean(t *testing.T) {
	mean, cycle, err := BruteForceMinMean(trianglePlusChord())
	if err != nil {
		t.Fatal(err)
	}
	if want := numeric.NewRat(2, 1); !mean.Equal(want) {
		t.Fatalf("min mean = %v, want 2", mean)
	}
	if len(cycle) != 3 {
		t.Fatalf("critical cycle %v, want the triangle", cycle)
	}
	max, _, err := BruteForceMaxMean(trianglePlusChord())
	if err != nil {
		t.Fatal(err)
	}
	if want := numeric.NewRat(7, 1); !max.Equal(want) {
		t.Fatalf("max mean = %v, want 7 (self-loop)", max)
	}
}

func TestBruteForceAcyclic(t *testing.T) {
	b := graph.NewBuilder(3, 2)
	b.AddNodes(3)
	b.AddArc(0, 1, 1)
	b.AddArc(1, 2, 1)
	g := b.Build()
	if _, _, err := BruteForceMinMean(g); !errors.Is(err, ErrAcyclic) {
		t.Fatalf("got %v, want ErrAcyclic", err)
	}
	if _, err := FloatMinMean(g); !errors.Is(err, ErrAcyclic) {
		t.Fatalf("got %v, want ErrAcyclic", err)
	}
}

func TestBruteForceMinRatio(t *testing.T) {
	b := graph.NewBuilder(2, 2)
	b.AddNodes(2)
	b.AddArcTransit(0, 1, 3, 2)
	b.AddArcTransit(1, 0, 5, 2)
	g := b.Build()
	r, cycle, err := BruteForceMinRatio(g)
	if err != nil {
		t.Fatal(err)
	}
	if want := numeric.NewRat(2, 1); !r.Equal(want) {
		t.Fatalf("min ratio = %v, want 2", r)
	}
	if len(cycle) != 2 {
		t.Fatalf("cycle %v", cycle)
	}
}

func TestBruteForceMinRatioRejectsZeroTransit(t *testing.T) {
	b := graph.NewBuilder(2, 2)
	b.AddNodes(2)
	b.AddArcTransit(0, 1, 3, 0)
	b.AddArcTransit(1, 0, 5, 0)
	g := b.Build()
	if _, _, err := BruteForceMinRatio(g); err == nil {
		t.Fatal("zero-transit cycle accepted")
	}
}

func TestCheckFeasible(t *testing.T) {
	g := trianglePlusChord() // λ* = 2
	if !CheckFeasible(g, numeric.NewRat(2, 1)) {
		t.Fatal("λ* must be feasible")
	}
	if !CheckFeasible(g, numeric.NewRat(1, 1)) {
		t.Fatal("values below λ* must be feasible")
	}
	if CheckFeasible(g, numeric.NewRat(21, 10)) {
		t.Fatal("values above λ* must be infeasible")
	}
}

func TestCheckCycleIsOptimal(t *testing.T) {
	g := trianglePlusChord()
	lambda := numeric.NewRat(2, 1)
	good := []graph.ArcID{0, 1, 2}
	if err := CheckCycleIsOptimal(g, lambda, good); err != nil {
		t.Fatalf("optimal cycle rejected: %v", err)
	}
	// Wrong lambda claims.
	if err := CheckCycleIsOptimal(g, numeric.NewRat(3, 1), good); err == nil {
		t.Fatal("mismatched λ accepted")
	}
	// Suboptimal cycle (1→2→1, mean 3).
	if err := CheckCycleIsOptimal(g, numeric.NewRat(3, 1), []graph.ArcID{1, 3}); err == nil {
		t.Fatal("suboptimal cycle accepted")
	}
	if err := CheckCycleIsOptimal(g, lambda, nil); err == nil {
		t.Fatal("empty cycle accepted")
	}
}

func TestFloatAgreesWithExact(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := gen.Sprand(gen.SprandConfig{N: 7, M: 15, MinWeight: -9, MaxWeight: 9, Seed: seed})
		if err != nil {
			return false
		}
		exact, _, err := BruteForceMinMean(g)
		if err != nil {
			return false
		}
		fl, err := FloatMinMean(g)
		if err != nil {
			return false
		}
		return math.Abs(exact.Float64()-fl) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestFeasibilityCharacterizesOptimum is the LP view of Karp's theorem as a
// property test: for random small graphs, λ* from brute force is feasible
// while λ* + 1/(n²+1) is not.
func TestFeasibilityCharacterizesOptimum(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := gen.Sprand(gen.SprandConfig{N: 6, M: 14, MinWeight: -5, MaxWeight: 15, Seed: seed})
		if err != nil {
			return false
		}
		lambda, _, err := BruteForceMinMean(g)
		if err != nil {
			return false
		}
		nudge := numeric.NewRat(1, int64(g.NumNodes()*g.NumNodes()+1))
		return CheckFeasible(g, lambda) && !CheckFeasible(g, lambda.Add(nudge))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckRatioCycleIsOptimal(t *testing.T) {
	// Cycles of ratio 2 (arcs 0,1) and 4 (arcs 2,3).
	b := graph.NewBuilder(3, 4)
	b.AddNodes(3)
	b.AddArcTransit(0, 1, 3, 2)
	b.AddArcTransit(1, 0, 5, 2)
	b.AddArcTransit(1, 2, 6, 1)
	b.AddArcTransit(2, 1, 2, 1)
	g := b.Build()

	good := []graph.ArcID{0, 1}
	if err := CheckRatioCycleIsOptimal(g, numeric.NewRat(2, 1), good); err != nil {
		t.Fatalf("optimal ratio cycle rejected: %v", err)
	}
	if err := CheckRatioCycleIsOptimal(g, numeric.NewRat(4, 1), []graph.ArcID{2, 3}); err == nil {
		t.Fatal("suboptimal ratio accepted")
	}
	if err := CheckRatioCycleIsOptimal(g, numeric.NewRat(3, 1), good); err == nil {
		t.Fatal("mismatched ρ accepted")
	}
	if err := CheckRatioCycleIsOptimal(g, numeric.NewRat(2, 1), nil); err == nil {
		t.Fatal("empty cycle accepted")
	}
	if err := CheckRatioCycleIsOptimal(g, numeric.NewRat(2, 1), []graph.ArcID{0, 2}); err == nil {
		t.Fatal("broken walk accepted")
	}
	// Zero-transit cycle.
	b2 := graph.NewBuilder(1, 1)
	b2.AddNodes(1)
	b2.AddArcTransit(0, 0, 5, 0)
	if err := CheckRatioCycleIsOptimal(b2.Build(), numeric.FromInt(5), []graph.ArcID{0}); err == nil {
		t.Fatal("zero-transit cycle accepted")
	}
}

func TestBruteForceMaxMeanError(t *testing.T) {
	b := graph.NewBuilder(2, 1)
	b.AddNodes(2)
	b.AddArc(0, 1, 3)
	if _, _, err := BruteForceMaxMean(b.Build()); !errors.Is(err, ErrAcyclic) {
		t.Fatalf("got %v, want ErrAcyclic", err)
	}
}
