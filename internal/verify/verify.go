// Package verify provides independent ground truth for the cycle-mean and
// cycle-ratio solvers: exhaustive simple-cycle enumeration (Johnson's
// algorithm), a brute-force optimum computed from the enumeration, and the
// linear-programming feasibility certificate from the paper's Equation 1.
// Tests use it as the oracle every algorithm must agree with.
package verify

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/numeric"
)

// ErrAcyclic is returned when an optimum over cycles is requested for a
// graph that has no cycles.
var ErrAcyclic = errors.New("verify: graph has no cycles")

// ErrTooManyCycles is returned when enumeration exceeds the caller's limit.
var ErrTooManyCycles = errors.New("verify: cycle limit exceeded")

// EnumerateCycles calls fn for each simple cycle of g, passing the cycle as
// a sequence of arc IDs. Enumeration stops early (with ErrTooManyCycles) if
// more than limit cycles are produced; limit <= 0 means no limit. fn must
// not retain the slice. Self-loops count as cycles of length one. The
// implementation is Johnson's algorithm (1975) over the SCCs of g.
func EnumerateCycles(g *graph.Graph, limit int, fn func(cycle []graph.ArcID) error) error {
	count := 0
	emit := func(cycle []graph.ArcID) error {
		count++
		if limit > 0 && count > limit {
			return ErrTooManyCycles
		}
		return fn(cycle)
	}
	for _, comp := range graph.CyclicComponents(g) {
		if err := johnson(comp, emit); err != nil {
			return err
		}
	}
	return nil
}

// johnson enumerates the simple cycles of one strongly connected component,
// translating arc IDs back into the parent graph via comp.ArcMap.
func johnson(comp graph.Component, emit func([]graph.ArcID) error) error {
	g := comp.Graph
	n := g.NumNodes()

	blocked := make([]bool, n)
	blockList := make([][]graph.NodeID, n)
	var pathArcs []graph.ArcID

	var unblock func(v graph.NodeID)
	unblock = func(v graph.NodeID) {
		blocked[v] = false
		for _, w := range blockList[v] {
			if blocked[w] {
				unblock(w)
			}
		}
		blockList[v] = blockList[v][:0]
	}

	var start graph.NodeID
	var circuit func(v graph.NodeID) (bool, error)
	circuit = func(v graph.NodeID) (bool, error) {
		found := false
		blocked[v] = true
		for _, id := range g.OutArcs(v) {
			w := g.Arc(id).To
			if w < start {
				continue // nodes below start are handled by earlier roots
			}
			if w == start {
				pathArcs = append(pathArcs, id)
				orig := make([]graph.ArcID, len(pathArcs))
				for i, aid := range pathArcs {
					orig[i] = comp.ArcMap[aid]
				}
				if err := emit(orig); err != nil {
					return false, err
				}
				pathArcs = pathArcs[:len(pathArcs)-1]
				found = true
			} else if !blocked[w] {
				pathArcs = append(pathArcs, id)
				f, err := circuit(w)
				if err != nil {
					return false, err
				}
				pathArcs = pathArcs[:len(pathArcs)-1]
				if f {
					found = true
				}
			}
		}
		if found {
			unblock(v)
		} else {
			for _, id := range g.OutArcs(v) {
				w := g.Arc(id).To
				if w < start {
					continue
				}
				// v waits on w: when w unblocks, unblock v too.
				already := false
				for _, x := range blockList[w] {
					if x == v {
						already = true
						break
					}
				}
				if !already {
					blockList[w] = append(blockList[w], v)
				}
			}
		}
		return found, nil
	}

	for start = 0; int(start) < n; start++ {
		for i := range blocked {
			blocked[i] = false
			blockList[i] = blockList[i][:0]
		}
		pathArcs = pathArcs[:0]
		if _, err := circuit(start); err != nil {
			return err
		}
	}
	return nil
}

// CountCycles returns the number of simple cycles of g, up to limit
// (limit <= 0 counts all; beware exponential blowup).
func CountCycles(g *graph.Graph, limit int) (int, error) {
	count := 0
	err := EnumerateCycles(g, limit, func([]graph.ArcID) error {
		count++
		return nil
	})
	if errors.Is(err, ErrTooManyCycles) {
		return count, err
	}
	return count, err
}

// BruteForceMinMean enumerates every simple cycle and returns the exact
// minimum cycle mean plus a cycle attaining it. Only usable on small graphs.
func BruteForceMinMean(g *graph.Graph) (numeric.Rat, []graph.ArcID, error) {
	return bruteForce(g, func(w, _ int64, l int) (numeric.Rat, error) {
		return numeric.NewRat(w, int64(l)), nil
	})
}

// BruteForceMaxMean is the maximization counterpart of BruteForceMinMean.
func BruteForceMaxMean(g *graph.Graph) (numeric.Rat, []graph.ArcID, error) {
	r, c, err := BruteForceMinMean(g.NegateWeights())
	if err != nil {
		return numeric.Rat{}, nil, err
	}
	return r.Neg(), c, nil
}

// BruteForceMinRatio returns the exact minimum cost-to-time ratio and an
// attaining cycle. A cycle with non-positive total transit time violates
// the problem definition (ρ(C) requires t(C) > 0) and yields an error.
func BruteForceMinRatio(g *graph.Graph) (numeric.Rat, []graph.ArcID, error) {
	return bruteForce(g, func(w, t int64, _ int) (numeric.Rat, error) {
		if t <= 0 {
			return numeric.Rat{}, fmt.Errorf("verify: cycle with non-positive transit time %d", t)
		}
		return numeric.NewRat(w, t), nil
	})
}

// bruteForce minimizes value(w(C), t(C), |C|) over all simple cycles C.
func bruteForce(g *graph.Graph, value func(w, t int64, l int) (numeric.Rat, error)) (numeric.Rat, []graph.ArcID, error) {
	var (
		best      numeric.Rat
		bestCycle []graph.ArcID
		found     bool
	)
	err := EnumerateCycles(g, 0, func(cycle []graph.ArcID) error {
		val, err := value(g.CycleWeight(cycle), g.CycleTransit(cycle), len(cycle))
		if err != nil {
			return err
		}
		if !found || val.Less(best) {
			best = val
			bestCycle = append(bestCycle[:0], cycle...)
			found = true
		}
		return nil
	})
	if err != nil {
		return numeric.Rat{}, nil, err
	}
	if !found {
		return numeric.Rat{}, nil, ErrAcyclic
	}
	return best, bestCycle, nil
}

// CheckFeasible verifies the paper's Equation 1 certificate: lambda is a
// lower bound on the minimum cycle mean iff there exist node potentials d
// with d(v) − d(u) ≤ w(u,v) − λ for every arc, i.e. iff G_λ has no negative
// cycle. The check runs Bellman–Ford on G_λ (weights scaled by lambda's
// denominator to stay in exact integer arithmetic) and returns true when no
// negative cycle exists.
func CheckFeasible(g *graph.Graph, lambda numeric.Rat) bool {
	n := g.NumNodes()
	if n == 0 {
		return true
	}
	p, q := lambda.Num(), lambda.Den()
	// Scaled arc weight: q*w - p (sign matches w - λ since q > 0).
	dist := make([]int64, n)
	// Start all-zero (virtual source to every node): detects any negative
	// cycle reachable anywhere.
	for pass := 0; pass < n; pass++ {
		changed := false
		for _, a := range g.Arcs() {
			w := q*a.Weight - p
			if nd := dist[a.From] + w; nd < dist[a.To] {
				dist[a.To] = nd
				changed = true
			}
		}
		if !changed {
			return true
		}
	}
	// One more pass: any further improvement proves a negative cycle.
	for _, a := range g.Arcs() {
		w := q*a.Weight - p
		if dist[a.From]+w < dist[a.To] {
			return false
		}
	}
	return true
}

// CheckCycleIsOptimal validates a solver's answer end to end: the cycle is a
// closed walk in g, its mean equals lambda exactly, and lambda is feasible
// (no cycle of smaller mean exists). This certifies optimality without
// enumeration, so it scales to the Table 2 sizes.
func CheckCycleIsOptimal(g *graph.Graph, lambda numeric.Rat, cycle []graph.ArcID) error {
	if len(cycle) == 0 {
		return errors.New("verify: empty cycle")
	}
	if err := g.ValidateCycle(cycle); err != nil {
		return err
	}
	mean := numeric.NewRat(g.CycleWeight(cycle), int64(len(cycle)))
	if !mean.Equal(lambda) {
		return fmt.Errorf("verify: cycle mean %v does not equal claimed λ* = %v", mean, lambda)
	}
	if !CheckFeasible(g, lambda) {
		return fmt.Errorf("verify: λ* = %v is not feasible: a smaller-mean cycle exists", lambda)
	}
	return nil
}

// CheckRatioCycleIsOptimal is the ratio counterpart of CheckCycleIsOptimal:
// the cycle's ratio w(C)/t(C) must equal rho and no cycle with smaller
// ratio may exist (checked via Bellman–Ford on weights q·w − p·t).
func CheckRatioCycleIsOptimal(g *graph.Graph, rho numeric.Rat, cycle []graph.ArcID) error {
	if len(cycle) == 0 {
		return errors.New("verify: empty cycle")
	}
	if err := g.ValidateCycle(cycle); err != nil {
		return err
	}
	t := g.CycleTransit(cycle)
	if t <= 0 {
		return fmt.Errorf("verify: cycle transit time %d is not positive", t)
	}
	ratio := numeric.NewRat(g.CycleWeight(cycle), t)
	if !ratio.Equal(rho) {
		return fmt.Errorf("verify: cycle ratio %v does not equal claimed ρ* = %v", ratio, rho)
	}
	if !checkRatioFeasible(g, rho) {
		return fmt.Errorf("verify: ρ* = %v is not feasible: a smaller-ratio cycle exists", rho)
	}
	return nil
}

func checkRatioFeasible(g *graph.Graph, rho numeric.Rat) bool {
	n := g.NumNodes()
	if n == 0 {
		return true
	}
	p, q := rho.Num(), rho.Den()
	dist := make([]int64, n)
	for pass := 0; pass < n; pass++ {
		changed := false
		for _, a := range g.Arcs() {
			w := q*a.Weight - p*a.Transit
			if nd := dist[a.From] + w; nd < dist[a.To] {
				dist[a.To] = nd
				changed = true
			}
		}
		if !changed {
			return true
		}
	}
	for _, a := range g.Arcs() {
		w := q*a.Weight - p*a.Transit
		if dist[a.From]+w < dist[a.To] {
			return false
		}
	}
	return true
}

// FloatMinMean is a float64 brute force used in property tests to sanity
// check the exact rational plumbing (it should agree with BruteForceMinMean
// to within 1e-9 on small weights).
func FloatMinMean(g *graph.Graph) (float64, error) {
	best := math.Inf(1)
	found := false
	err := EnumerateCycles(g, 0, func(cycle []graph.ArcID) error {
		mean := float64(g.CycleWeight(cycle)) / float64(len(cycle))
		if mean < best {
			best = mean
		}
		found = true
		return nil
	})
	if err != nil {
		return 0, err
	}
	if !found {
		return 0, ErrAcyclic
	}
	return best, nil
}
