// Package counter provides the operation-count instrumentation used to
// compare algorithms beyond wall-clock time, following the methodology of
// Ahuja, Magnanti & Orlin ("representative operation counts"). The DAC'99
// study reports, besides running times, the number of main-loop iterations,
// heap operations, arc relaxations, and arcs visited per algorithm; every
// solver in internal/core fills in the subset of these counters that is
// meaningful for it.
package counter

import (
	"fmt"
	"strings"
)

// Counts aggregates the representative operation counts of one solver run.
// Only the fields relevant to the algorithm are populated; the rest stay
// zero. All fields are plain integers so a Counts can be copied and diffed
// freely.
type Counts struct {
	// Iterations counts main-loop iterations: policy improvements for
	// Howard, pivots for KO/YTO, critical-subgraph rebuilds for Burns,
	// binary-search probes for Lawler and OA1, and the terminating level k
	// for HO (the paper's §4.3 usage).
	Iterations int

	// Relaxations counts arc relaxation attempts (shortest-path style
	// d(v) > d(u) + w tests), used by Karp-family, Lawler, Howard, Burns.
	Relaxations int

	// ArcsVisited counts arcs actually touched during the dynamic program;
	// §4.4 compares Karp vs DG on this metric.
	ArcsVisited int

	// HeapInserts, HeapExtractMins, HeapDecreaseKeys, HeapDeletes count
	// priority-queue traffic; §4.2 compares KO vs YTO on these.
	HeapInserts      int
	HeapExtractMins  int
	HeapDecreaseKeys int
	HeapDeletes      int

	// CyclesExamined counts candidate cycles whose mean was evaluated
	// (Howard policy-graph cycles, HO parent-chain cycles, Burns critical
	// cycles).
	CyclesExamined int

	// NegativeCycleChecks counts Bellman–Ford style feasibility probes
	// (Lawler, HO certification, OA1 assignment probes).
	NegativeCycleChecks int
}

// Add accumulates other into c (used when a driver solves one SCC at a time
// and wants whole-graph totals).
func (c *Counts) Add(other Counts) {
	c.Iterations += other.Iterations
	c.Relaxations += other.Relaxations
	c.ArcsVisited += other.ArcsVisited
	c.HeapInserts += other.HeapInserts
	c.HeapExtractMins += other.HeapExtractMins
	c.HeapDecreaseKeys += other.HeapDecreaseKeys
	c.HeapDeletes += other.HeapDeletes
	c.CyclesExamined += other.CyclesExamined
	c.NegativeCycleChecks += other.NegativeCycleChecks
}

// HeapOps returns the total number of heap operations of all kinds.
func (c Counts) HeapOps() int {
	return c.HeapInserts + c.HeapExtractMins + c.HeapDecreaseKeys + c.HeapDeletes
}

// String renders the non-zero counters in a compact single line, e.g.
// "iters=12 relax=4096 heap(ins=30,min=28,dec=17)".
func (c Counts) String() string {
	var parts []string
	add := func(name string, v int) {
		if v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", name, v))
		}
	}
	add("iters", c.Iterations)
	add("relax", c.Relaxations)
	add("arcs", c.ArcsVisited)
	if h := c.HeapOps(); h != 0 {
		parts = append(parts, fmt.Sprintf("heap(ins=%d,min=%d,dec=%d,del=%d)",
			c.HeapInserts, c.HeapExtractMins, c.HeapDecreaseKeys, c.HeapDeletes))
	}
	add("cycles", c.CyclesExamined)
	add("negchecks", c.NegativeCycleChecks)
	if len(parts) == 0 {
		return "(no ops)"
	}
	return strings.Join(parts, " ")
}
