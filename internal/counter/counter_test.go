package counter

import (
	"strings"
	"testing"
)

func TestAdd(t *testing.T) {
	a := Counts{Iterations: 1, Relaxations: 2, ArcsVisited: 3, HeapInserts: 4,
		HeapExtractMins: 5, HeapDecreaseKeys: 6, HeapDeletes: 7, CyclesExamined: 8,
		NegativeCycleChecks: 9}
	b := a
	b.Add(a)
	if b.Iterations != 2 || b.Relaxations != 4 || b.ArcsVisited != 6 ||
		b.HeapInserts != 8 || b.HeapExtractMins != 10 || b.HeapDecreaseKeys != 12 ||
		b.HeapDeletes != 14 || b.CyclesExamined != 16 || b.NegativeCycleChecks != 18 {
		t.Fatalf("Add wrong: %+v", b)
	}
}

func TestHeapOps(t *testing.T) {
	c := Counts{HeapInserts: 1, HeapExtractMins: 2, HeapDecreaseKeys: 3, HeapDeletes: 4}
	if c.HeapOps() != 10 {
		t.Fatalf("HeapOps = %d", c.HeapOps())
	}
}

func TestString(t *testing.T) {
	if got := (Counts{}).String(); got != "(no ops)" {
		t.Fatalf("empty = %q", got)
	}
	c := Counts{Iterations: 3, HeapInserts: 2}
	s := c.String()
	if !strings.Contains(s, "iters=3") || !strings.Contains(s, "ins=2") {
		t.Fatalf("String = %q", s)
	}
	// Zero fields are omitted.
	if strings.Contains(s, "relax") {
		t.Fatalf("String includes zero field: %q", s)
	}
}
