package counter

import (
	"reflect"
	"strconv"
	"strings"
	"testing"
)

func TestAdd(t *testing.T) {
	a := Counts{Iterations: 1, Relaxations: 2, ArcsVisited: 3, HeapInserts: 4,
		HeapExtractMins: 5, HeapDecreaseKeys: 6, HeapDeletes: 7, CyclesExamined: 8,
		NegativeCycleChecks: 9}
	b := a
	b.Add(a)
	if b.Iterations != 2 || b.Relaxations != 4 || b.ArcsVisited != 6 ||
		b.HeapInserts != 8 || b.HeapExtractMins != 10 || b.HeapDecreaseKeys != 12 ||
		b.HeapDeletes != 14 || b.CyclesExamined != 16 || b.NegativeCycleChecks != 18 {
		t.Fatalf("Add wrong: %+v", b)
	}
}

func TestHeapOps(t *testing.T) {
	c := Counts{HeapInserts: 1, HeapExtractMins: 2, HeapDecreaseKeys: 3, HeapDeletes: 4}
	if c.HeapOps() != 10 {
		t.Fatalf("HeapOps = %d", c.HeapOps())
	}
}

// setField returns a Counts with only field i set to v, via reflection.
func setField(t *testing.T, i int, v int) Counts {
	t.Helper()
	var c Counts
	f := reflect.ValueOf(&c).Elem().Field(i)
	if f.Kind() != reflect.Int {
		t.Fatalf("Counts field %d is %s; the exhaustiveness tests assume plain ints", i, f.Kind())
	}
	f.SetInt(int64(v))
	return c
}

// TestAddExhaustive fails when Counts gains a field that Add does not
// accumulate: for every field, adding a one-field Counts must change exactly
// that field and nothing else.
func TestAddExhaustive(t *testing.T) {
	typ := reflect.TypeOf(Counts{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		probe := setField(t, i, 7)
		var sum Counts
		sum.Add(probe)
		if !reflect.DeepEqual(sum, probe) {
			t.Errorf("Add does not handle field %s: got %+v after adding %+v to zero", name, sum, probe)
		}
		sum.Add(probe)
		if got := reflect.ValueOf(sum).Field(i).Int(); got != 14 {
			t.Errorf("Add does not accumulate field %s: %d after two adds of 7", name, got)
		}
	}
}

// TestStringExhaustive fails when Counts gains a field that String does not
// render: setting any single field to a distinctive value must surface that
// value in the output.
func TestStringExhaustive(t *testing.T) {
	typ := reflect.TypeOf(Counts{})
	const sentinel = 987123
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		probe := setField(t, i, sentinel)
		if s := probe.String(); !strings.Contains(s, strconv.Itoa(sentinel)) {
			t.Errorf("String does not render field %s: %q", name, s)
		}
	}
}

func TestString(t *testing.T) {
	if got := (Counts{}).String(); got != "(no ops)" {
		t.Fatalf("empty = %q", got)
	}
	c := Counts{Iterations: 3, HeapInserts: 2}
	s := c.String()
	if !strings.Contains(s, "iters=3") || !strings.Contains(s, "ins=2") {
		t.Fatalf("String = %q", s)
	}
	// Zero fields are omitted.
	if strings.Contains(s, "relax") {
		t.Fatalf("String includes zero field: %q", s)
	}
}
