package bench

import (
	"encoding/json"
	"testing"
)

// TestJSONZeroLambdaRoundTrips is a regression for the omitempty bug: a cell
// whose measured optimum is exactly λ* = 0 used to serialize with no "lambda"
// field at all (Go's omitempty drops zero-valued float64s), making a zero
// optimum indistinguishable from a skipped cell. The field is now a pointer:
// present — including an explicit 0 — whenever the cell was measured, absent
// only when it was skipped.
func TestJSONZeroLambdaRoundTrips(t *testing.T) {
	rep := &Report{
		Config: Config{Seeds: 3, Algorithms: []string{"howard", "karp"}},
		Sizes:  [][2]int{{10, 30}},
		Cells: []map[string]*Cell{{
			"howard": {N: 10, M: 30, Algorithm: "howard", Seconds: 0.01, Lambda: 0, Seeds: 3},
			"karp":   {N: 10, M: 30, Algorithm: "karp", Skipped: true, Reason: "memory"},
		}},
	}
	raw, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}

	var got struct {
		Cells []map[string]json.RawMessage `json:"cells"`
	}
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(got.Cells))
	}
	byAlgo := make(map[string]map[string]json.RawMessage)
	for _, c := range got.Cells {
		var name string
		if err := json.Unmarshal(c["algorithm"], &name); err != nil {
			t.Fatal(err)
		}
		byAlgo[name] = c
	}

	// Measured cell with λ* = 0: the field must be present and zero.
	lam, ok := byAlgo["howard"]["lambda"]
	if !ok {
		t.Fatal("measured cell with λ* = 0 lost its lambda field")
	}
	var v float64
	if err := json.Unmarshal(lam, &v); err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Errorf("lambda = %g, want 0", v)
	}

	// Skipped cell: no lambda at all, and the skip marker survives.
	if _, ok := byAlgo["karp"]["lambda"]; ok {
		t.Error("skipped cell serialized a lambda field")
	}
	var skipped bool
	if err := json.Unmarshal(byAlgo["karp"]["skipped"], &skipped); err != nil || !skipped {
		t.Errorf("skipped marker lost: %v %v", skipped, err)
	}
}

// TestJSONNonZeroLambda pins the common case alongside the regression.
func TestJSONNonZeroLambda(t *testing.T) {
	rep := &Report{
		Config: Config{Seeds: 1, Algorithms: []string{"howard"}},
		Sizes:  [][2]int{{5, 10}},
		Cells: []map[string]*Cell{{
			"howard": {N: 5, M: 10, Algorithm: "howard", Lambda: 2.5, Seeds: 1},
		}},
	}
	raw, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Cells []struct {
			Lambda *float64 `json:"lambda"`
		} `json:"cells"`
	}
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Cells) != 1 || got.Cells[0].Lambda == nil || *got.Cells[0].Lambda != 2.5 {
		t.Errorf("round-trip lost lambda: %+v", got.Cells)
	}
}
