package bench

import (
	"encoding/json"
	"strings"
	"testing"
)

func kernelReportJSON(t *testing.T, chainSpeedup, sessionSpeedup float64) []byte {
	t.Helper()
	rep := KernelReport{
		Algorithm: "howard",
		Rows: []KernelRow{
			{Family: "chain", Name: "chain-small", Speedup: chainSpeedup},
			{Family: "sprand", Name: "sprand-1024-2048", Speedup: 0.5}, // never gated
		},
		Session: &SessionRow{Speedup: sessionSpeedup},
	}
	data, err := json.Marshal(&rep)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestCheckKernel(t *testing.T) {
	if err := CheckKernel(kernelReportJSON(t, 1.9, 2.4), 1.2); err != nil {
		t.Errorf("healthy report failed: %v", err)
	}
	err := CheckKernel(kernelReportJSON(t, 1.1, 2.4), 1.2)
	if err == nil || !strings.Contains(err.Error(), "chain-small") {
		t.Errorf("regressed chain row not flagged: %v", err)
	}
	err = CheckKernel(kernelReportJSON(t, 1.9, 1.0), 1.2)
	if err == nil || !strings.Contains(err.Error(), "warm-start") {
		t.Errorf("regressed session row not flagged: %v", err)
	}
	if err := CheckKernel([]byte(`{"rows":[]}`), 1.2); err == nil {
		t.Error("empty report accepted")
	}
	if err := CheckKernel([]byte("not json"), 1.2); err == nil {
		t.Error("malformed report accepted")
	}
}
