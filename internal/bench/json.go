package bench

import (
	"encoding/json"

	"repro/internal/counter"
)

// jsonReport is the machine-readable shape of a sweep, for downstream
// plotting (cmd/mcmbench -json).
type jsonReport struct {
	Seeds      int        `json:"seeds"`
	Algorithms []string   `json:"algorithms"`
	Cells      []jsonCell `json:"cells"`
	Mismatches []string   `json:"mismatches,omitempty"`
}

type jsonCell struct {
	N         int     `json:"n"`
	M         int     `json:"m"`
	Algorithm string  `json:"algorithm"`
	Seconds   float64 `json:"seconds"`
	Skipped   bool    `json:"skipped,omitempty"`
	Reason    string  `json:"reason,omitempty"`
	// Lambda is a pointer so that a measured λ* of exactly 0 still serializes
	// (omitempty on a plain float64 dropped the field, making a zero optimum
	// indistinguishable from a skipped cell); nil — and hence an absent field
	// — means the cell was not measured.
	Lambda *float64       `json:"lambda,omitempty"`
	Counts counter.Counts `json:"counts"`
}

// JSON renders the report as indented JSON.
func (r *Report) JSON() ([]byte, error) {
	out := jsonReport{
		Seeds:      r.Config.Seeds,
		Algorithms: r.Config.Algorithms,
		Mismatches: r.Mismatches,
	}
	for i, size := range r.Sizes {
		for _, name := range r.Config.Algorithms {
			cell := r.Cells[i][name]
			jc := jsonCell{
				N: size[0], M: size[1], Algorithm: name,
				Seconds: cell.Seconds, Skipped: cell.Skipped, Reason: cell.Reason,
				Counts: cell.Counts,
			}
			if !cell.Skipped {
				lambda := cell.Lambda
				jc.Lambda = &lambda
			}
			out.Cells = append(out.Cells, jc)
		}
	}
	return json.MarshalIndent(out, "", "  ")
}
