package bench

import (
	"encoding/json"

	"repro/internal/counter"
)

// jsonReport is the machine-readable shape of a sweep, for downstream
// plotting (cmd/mcmbench -json).
type jsonReport struct {
	Seeds      int        `json:"seeds"`
	Algorithms []string   `json:"algorithms"`
	Cells      []jsonCell `json:"cells"`
	Mismatches []string   `json:"mismatches,omitempty"`
}

type jsonCell struct {
	N         int            `json:"n"`
	M         int            `json:"m"`
	Algorithm string         `json:"algorithm"`
	Seconds   float64        `json:"seconds"`
	Skipped   bool           `json:"skipped,omitempty"`
	Reason    string         `json:"reason,omitempty"`
	Lambda    float64        `json:"lambda,omitempty"`
	Counts    counter.Counts `json:"counts"`
}

// JSON renders the report as indented JSON.
func (r *Report) JSON() ([]byte, error) {
	out := jsonReport{
		Seeds:      r.Config.Seeds,
		Algorithms: r.Config.Algorithms,
		Mismatches: r.Mismatches,
	}
	for i, size := range r.Sizes {
		for _, name := range r.Config.Algorithms {
			cell := r.Cells[i][name]
			out.Cells = append(out.Cells, jsonCell{
				N: size[0], M: size[1], Algorithm: name,
				Seconds: cell.Seconds, Skipped: cell.Skipped, Reason: cell.Reason,
				Lambda: cell.Lambda, Counts: cell.Counts,
			})
		}
	}
	return json.MarshalIndent(out, "", "  ")
}
