package bench

// Conservative-bound assertions over recorded benchmark reports: CI re-runs
// a quick sweep and feeds it through these checks, so a regression that
// erases a claimed win (kernelization speedup, warm-start speedup) fails the
// build instead of silently rotting the checked-in numbers. The floors are
// deliberately far below the recorded values — they gate "the win still
// exists", not "the machine is as fast as last time".

import (
	"encoding/json"
	"errors"
	"fmt"
)

// CheckKernel parses a BENCH_kernel.json blob and asserts the conservative
// floors: every chain-family row (the family kernelization exists for) keeps
// a speedup of at least minSpeedup, and the Session warm-start does too.
// SPRAND rows are not gated — kernelization never claimed a win there.
func CheckKernel(data []byte, minSpeedup float64) error {
	var rep KernelReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("bench: parsing kernel report: %w", err)
	}
	var errs []error
	chains := 0
	for _, row := range rep.Rows {
		if row.Family != "chain" {
			continue
		}
		chains++
		if row.Speedup < minSpeedup {
			errs = append(errs, fmt.Errorf("bench: %s kernelization speedup %.2fx below the %.2fx floor", row.Name, row.Speedup, minSpeedup))
		}
	}
	if chains == 0 {
		errs = append(errs, errors.New("bench: kernel report has no chain-family rows"))
	}
	if rep.Session == nil {
		errs = append(errs, errors.New("bench: kernel report has no session row"))
	} else if rep.Session.Speedup < minSpeedup {
		errs = append(errs, fmt.Errorf("bench: session warm-start speedup %.2fx below the %.2fx floor", rep.Session.Speedup, minSpeedup))
	}
	return errors.Join(errs...)
}
