package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/pq"
)

// HeapKindRow is one (size, algorithm) row of the heap ablation: mean
// seconds per heap implementation.
type HeapKindRow struct {
	N, M      int
	Algorithm string
	Seconds   map[string]float64
}

// RunHeapKinds ablates the paper's Fibonacci-heap choice: KO and YTO run
// with Fibonacci (LEDA's default, used by the paper), binary, and pairing
// heaps on the same instances. The pivot sequence is heap-independent, so
// differences isolate pure data-structure cost.
func RunHeapKinds(sizes [][2]int, seeds int) ([]HeapKindRow, error) {
	if sizes == nil {
		sizes = [][2]int{{512, 1536}, {1024, 3072}, {2048, 6144}, {4096, 12288}}
	}
	if seeds <= 0 {
		seeds = 3
	}
	kinds := []pq.Kind{pq.Fibonacci, pq.Binary, pq.Pairing, pq.Linear}
	var rows []HeapKindRow
	for _, size := range sizes {
		for _, name := range []string{"ko", "yto"} {
			row := HeapKindRow{N: size[0], M: size[1], Algorithm: name, Seconds: map[string]float64{}}
			for seed := 0; seed < seeds; seed++ {
				g, err := gen.Sprand(gen.SprandConfig{
					N: size[0], M: size[1], MinWeight: 1, MaxWeight: 10000, Seed: uint64(seed) + 1,
				})
				if err != nil {
					return nil, err
				}
				for _, kind := range kinds {
					algo, err := core.ByName(name)
					if err != nil {
						return nil, err
					}
					start := time.Now()
					if _, err := algo.Solve(g, core.Options{HeapKind: kind}); err != nil {
						return nil, err
					}
					row.Seconds[kind.String()] += time.Since(start).Seconds()
				}
			}
			for k := range row.Seconds {
				row.Seconds[k] /= float64(seeds)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// WriteHeapKinds renders the heap ablation table.
func WriteHeapKinds(w io.Writer, rows []HeapKindRow) {
	fmt.Fprintln(w, "Ablation: heap implementation inside KO/YTO (seconds; paper used Fibonacci via LEDA)")
	fmt.Fprintf(w, "%6s %7s %5s | %10s %10s %10s %10s\n", "n", "m", "algo", "fibonacci", "binary", "pairing", "linear")
	for _, r := range rows {
		fmt.Fprintf(w, "%6d %7d %5s | %10.4f %10.4f %10.4f %10.4f\n",
			r.N, r.M, r.Algorithm, r.Seconds["fibonacci"], r.Seconds["binary"], r.Seconds["pairing"], r.Seconds["linear"])
	}
}

// VariantRow is one size row of the space-variant ablation.
type VariantRow struct {
	N, M    int
	Seconds map[string]float64
}

// RunVariants ablates the Θ(n²)-space algorithms against their Θ(n)-space
// two-pass versions — Karp vs Karp2 (measured in the paper) and DG vs DG2,
// HO vs HO2 (the §4.4 extrapolation: "the space efficient version ...
// will double its running time").
func RunVariants(sizes [][2]int, seeds int) ([]VariantRow, error) {
	if sizes == nil {
		sizes = [][2]int{{512, 1536}, {1024, 3072}, {2048, 6144}}
	}
	if seeds <= 0 {
		seeds = 3
	}
	names := []string{"karp", "karp2", "dg", "dg2", "ho", "ho2"}
	var rows []VariantRow
	for _, size := range sizes {
		row := VariantRow{N: size[0], M: size[1], Seconds: map[string]float64{}}
		for seed := 0; seed < seeds; seed++ {
			g, err := gen.Sprand(gen.SprandConfig{
				N: size[0], M: size[1], MinWeight: 1, MaxWeight: 10000, Seed: uint64(seed) + 1,
			})
			if err != nil {
				return nil, err
			}
			for _, name := range names {
				algo, err := core.ByName(name)
				if err != nil {
					return nil, err
				}
				start := time.Now()
				if _, err := algo.Solve(g, core.Options{}); err != nil {
					return nil, err
				}
				row.Seconds[name] += time.Since(start).Seconds()
			}
		}
		for k := range row.Seconds {
			row.Seconds[k] /= float64(seeds)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteVariants renders the space-variant ablation with the time ratios
// the paper discusses.
func WriteVariants(w io.Writer, rows []VariantRow) {
	fmt.Fprintln(w, "Ablation: Θ(n²)-space algorithms vs their Θ(n)-space two-pass variants (seconds)")
	fmt.Fprintf(w, "%6s %7s | %9s %9s %6s | %9s %9s %6s | %9s %9s %6s\n",
		"n", "m", "karp", "karp2", "ratio", "dg", "dg2", "ratio", "ho", "ho2", "ratio")
	for _, r := range rows {
		ratio := func(a, b string) float64 {
			if r.Seconds[a] == 0 {
				return 0
			}
			return r.Seconds[b] / r.Seconds[a]
		}
		fmt.Fprintf(w, "%6d %7d | %9.4f %9.4f %6.2f | %9.4f %9.4f %6.2f | %9.4f %9.4f %6.2f\n",
			r.N, r.M,
			r.Seconds["karp"], r.Seconds["karp2"], ratio("karp", "karp2"),
			r.Seconds["dg"], r.Seconds["dg2"], ratio("dg", "dg2"),
			r.Seconds["ho"], r.Seconds["ho2"], ratio("ho", "ho2"))
	}
}
