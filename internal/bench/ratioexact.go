package bench

// This file is the exact-ratio-mode comparison harness: every certified
// exact MCR solver — the Stern–Brocot mediant search against the float-free
// competition it joins (howard, lawler, dinkelbach) — timed on the same
// transit-weighted SPRAND instances, with every ρ* cross-checked
// bit-identical. Any disagreement is a Violation and mcmbench exits 2, so
// the recorded BENCH_ratio.json doubles as an equivalence gate.
// `mcmbench -table ratio-exact -json > BENCH_ratio.json` records the sweep;
// `-quick` is the CI smoke variant.

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/ratio"
)

// RatioExactAlgos is the roster under comparison: the exact solvers that
// certify ρ* with no floating-point solve anywhere on the answer path.
var RatioExactAlgos = []string{"howard", "lawler", "dinkelbach", "sternbrocot"}

// RatioExactConfig parameterizes RunRatioExactSweep.
type RatioExactConfig struct {
	// Sizes lists (n, m) pairs; defaults to three SPRAND sizes.
	Sizes [][2]int
	// Seeds is the instance count per size; default 3.
	Seeds int
	// MaxTransit bounds the uniform transit times; default 8.
	MaxTransit int64
	// Smoke runs the reduced CI variant.
	Smoke bool
	// Progress, when non-nil, receives one line per completed size.
	Progress io.Writer
}

func (c RatioExactConfig) withDefaults() RatioExactConfig {
	if c.Sizes == nil {
		c.Sizes = [][2]int{{256, 1024}, {512, 2048}, {1024, 4096}}
	}
	if c.Seeds <= 0 {
		c.Seeds = 3
	}
	if c.Smoke {
		c.Sizes = [][2]int{{64, 256}, {128, 512}}
		c.Seeds = 2
	}
	if c.MaxTransit < 1 {
		c.MaxTransit = 8
	}
	return c
}

// RatioExactCell is one solver's aggregate over the seeds of one size.
type RatioExactCell struct {
	Seconds float64 `json:"seconds"`
	// Probes is the summed NegativeCycleChecks — the shared oracle's unit of
	// work, comparable across all four solvers.
	Probes     int `json:"probes"`
	Iterations int `json:"iterations"`
}

// RatioExactRow is one (n, m) row of the comparison.
type RatioExactRow struct {
	N     int                       `json:"n"`
	M     int                       `json:"m"`
	Cells map[string]RatioExactCell `json:"cells"`
	// Value is the (seed-0) certified ρ* as "num/den", a fingerprint for the
	// recorded JSON.
	Value string `json:"value"`
}

// RatioExactReport is a completed sweep.
type RatioExactReport struct {
	Algos      []string `json:"algos"`
	Seeds      int      `json:"seeds"`
	MaxTransit int64    `json:"max_transit"`
	NumCPU     int      `json:"num_cpu"`
	GOMAXPROCS int      `json:"gomaxprocs"`

	Rows []RatioExactRow `json:"rows"`
	// Violations lists every ρ* disagreement or failed certification; the
	// exact tier has no tolerance, so mcmbench exits 2 when non-empty.
	Violations []string `json:"violations,omitempty"`
}

// JSON renders the report for BENCH_ratio.json.
func (r *RatioExactReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// RunRatioExactSweep times each exact solver with certification on and
// cross-checks the certified ρ* bit-identical across the roster.
func RunRatioExactSweep(cfg RatioExactConfig) (*RatioExactReport, error) {
	cfg = cfg.withDefaults()
	rep := &RatioExactReport{
		Algos: RatioExactAlgos, Seeds: cfg.Seeds, MaxTransit: cfg.MaxTransit,
		NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, size := range cfg.Sizes {
		row := RatioExactRow{N: size[0], M: size[1], Cells: map[string]RatioExactCell{}}
		for seed := 0; seed < cfg.Seeds; seed++ {
			base, err := gen.Sprand(gen.SprandConfig{
				N: size[0], M: size[1], MinWeight: -5000, MaxWeight: 10000, Seed: uint64(seed) + 1,
			})
			if err != nil {
				return nil, err
			}
			arcs := make([]graph.Arc, base.NumArcs())
			state := uint64(seed)*0x9e3779b97f4a7c15 + 7
			for i, a := range base.Arcs() {
				state = state*6364136223846793005 + 1442695040888963407
				a.Transit = 1 + int64((state>>33)%uint64(cfg.MaxTransit))
				arcs[i] = a
			}
			g := graph.FromArcs(base.NumNodes(), arcs)

			var refName, refValue string
			for _, name := range RatioExactAlgos {
				algo, err := ratio.ByName(name)
				if err != nil {
					return nil, err
				}
				start := time.Now()
				res, err := ratio.MinimumCycleRatio(g, algo, core.Options{Certify: true})
				secs := time.Since(start).Seconds()
				if err != nil {
					return nil, fmt.Errorf("bench: ratio-exact %s on n=%d m=%d seed=%d: %w",
						name, size[0], size[1], seed, err)
				}
				cell := row.Cells[name]
				cell.Seconds += secs
				cell.Probes += res.Counts.NegativeCycleChecks
				cell.Iterations += res.Counts.Iterations
				row.Cells[name] = cell

				value := res.Ratio.String()
				switch {
				case !res.Exact || res.Certificate == nil:
					rep.Violations = append(rep.Violations, fmt.Sprintf(
						"n=%d m=%d seed=%d: %s returned an uncertified or inexact result",
						size[0], size[1], seed, name))
				case refName == "":
					refName, refValue = name, value
					if seed == 0 {
						row.Value = value
					}
				case value != refValue:
					rep.Violations = append(rep.Violations, fmt.Sprintf(
						"n=%d m=%d seed=%d: %s says ρ* = %s, %s says %s",
						size[0], size[1], seed, name, value, refName, refValue))
				}
			}
		}
		rep.Rows = append(rep.Rows, row)
		if cfg.Progress != nil {
			fmt.Fprintf(cfg.Progress, "ratio-exact: n=%d m=%d done (%d seeds × %d solvers)\n",
				size[0], size[1], cfg.Seeds, len(RatioExactAlgos))
		}
	}
	return rep, nil
}

// WriteRatioExact renders the comparison.
func WriteRatioExact(w io.Writer, rep *RatioExactReport) {
	fmt.Fprintf(w, "ratio-exact: certified exact MCR solvers on transit-weighted SPRAND (transit ≤ %d, %d seeds)\n",
		rep.MaxTransit, rep.Seeds)
	fmt.Fprintf(w, "%6s %7s", "n", "m")
	for _, name := range rep.Algos {
		fmt.Fprintf(w, " %12s %8s", name+" (s)", "probes")
	}
	fmt.Fprintln(w)
	for _, r := range rep.Rows {
		fmt.Fprintf(w, "%6d %7d", r.N, r.M)
		for _, name := range rep.Algos {
			c := r.Cells[name]
			fmt.Fprintf(w, " %12.4f %8d", c.Seconds, c.Probes)
		}
		fmt.Fprintln(w)
	}
	for _, v := range rep.Violations {
		fmt.Fprintf(w, "  VIOLATION: %s\n", v)
	}
}
