package bench

import "testing"

// TestSessionDeltaSweepCorrectness runs a tiny sweep and asserts the
// correctness half of the harness: zero λ* mismatches between incremental
// and fresh certified solves, the configured mix accounted for, and the
// engine actually exercising the warm path. The speedup gate is set far
// below any plausible timing so a loaded CI machine cannot flake this test;
// the real 2× gate runs in the benchmark job against BENCH_session.json.
func TestSessionDeltaSweepCorrectness(t *testing.T) {
	rep, err := RunSessionDeltaSweep(SessionConfig{
		Nodes: 120, Arcs: 480, Deltas: 30, MinSpeedup: 0.0001,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if got := rep.WeightEdits + rep.StructuralEdits + rep.FreeEdits; got != 30 {
		t.Fatalf("mix accounts for %d deltas, want 30", got)
	}
	if len(rep.Rows) != 30 {
		t.Fatalf("rows = %d, want 30", len(rep.Rows))
	}
	if rep.Engine.Deltas != 30 || rep.Engine.WarmHits == 0 {
		t.Fatalf("engine stats: %+v", rep.Engine)
	}
}
