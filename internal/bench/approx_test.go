package bench

import (
	"strings"
	"testing"
)

// TestApproxSweepSmoke runs the CI smoke variant end-to-end: one 10⁶-arc
// SPRAND stream under the 32 MiB cap with the exact cross-check. It is the
// same configuration `mcmbench -table approx -quick` runs, so a failure here
// is a failure of the bench-approx-smoke gate.
func TestApproxSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("streaming sweep takes a few seconds")
	}
	rep, err := RunApproxSweep(ApproxConfig{Smoke: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) > 0 {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if len(rep.Rows) != 1 {
		t.Fatalf("smoke rows %d, want 1", len(rep.Rows))
	}
	row := rep.Rows[0]
	if row.Arcs < 1_000_000 {
		t.Errorf("smoke graph has %d arcs, want >= 10^6", row.Arcs)
	}
	if !row.BoundHolds || row.ExactValue == 0 {
		t.Errorf("smoke row missing the exact cross-check: %+v", row)
	}
	if row.PeakHeapBytes > rep.RSSCapBytes {
		t.Errorf("peak heap %d over the %d cap", row.PeakHeapBytes, rep.RSSCapBytes)
	}
	// The streaming leg must be far below the exact leg's footprint — the
	// whole point of the tier. 10× is an extremely loose floor (measured
	// ~150×).
	if row.ExactPeakHeapBytes < 10*row.PeakHeapBytes {
		t.Errorf("streaming peak %d not clearly below exact peak %d", row.PeakHeapBytes, row.ExactPeakHeapBytes)
	}

	var sb strings.Builder
	WriteApprox(&sb, rep)
	if !strings.Contains(sb.String(), "sprand-stream-1m") {
		t.Errorf("table rendering missing the row:\n%s", sb.String())
	}
}
