package bench

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRunRatioExactSweepSmoke(t *testing.T) {
	rep, err := RunRatioExactSweep(RatioExactConfig{Sizes: [][2]int{{24, 96}}, Seeds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if len(rep.Rows) != 1 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	row := rep.Rows[0]
	if row.Value == "" {
		t.Fatal("missing ρ* fingerprint")
	}
	for _, name := range RatioExactAlgos {
		cell, ok := row.Cells[name]
		if !ok {
			t.Fatalf("no cell for %s", name)
		}
		if cell.Probes == 0 || cell.Iterations == 0 {
			t.Errorf("%s: empty counters: %+v", name, cell)
		}
	}

	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back RatioExactReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Rows[0].Value != row.Value {
		t.Fatalf("JSON round-trip lost the fingerprint: %q vs %q", back.Rows[0].Value, row.Value)
	}

	var sb strings.Builder
	WriteRatioExact(&sb, rep)
	for _, name := range RatioExactAlgos {
		if !strings.Contains(sb.String(), name) {
			t.Errorf("rendered table misses %s:\n%s", name, sb.String())
		}
	}
}
