package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/ratio"
)

// RatioRow is one (size) row of the cost-to-time-ratio comparison.
type RatioRow struct {
	N, M    int
	Seconds map[string]float64
	// Mismatch records any disagreement between solvers (must stay empty).
	Mismatch string
}

// RunRatioTable times every MCR solver on transit-weighted SPRAND graphs
// (transit times uniform in [1, maxTransit]) and cross-checks exact
// agreement — the MCR-side comparison the paper left to its tech report.
func RunRatioTable(sizes [][2]int, seeds int, maxTransit int64) ([]RatioRow, error) {
	if sizes == nil {
		sizes = [][2]int{
			{512, 1536}, {1024, 3072}, {2048, 6144},
		}
	}
	if seeds <= 0 {
		seeds = 3
	}
	if maxTransit < 1 {
		maxTransit = 4
	}
	names := ratio.Names()
	var rows []RatioRow
	for _, size := range sizes {
		row := RatioRow{N: size[0], M: size[1], Seconds: map[string]float64{}}
		for seed := 0; seed < seeds; seed++ {
			base, err := gen.Sprand(gen.SprandConfig{
				N: size[0], M: size[1], MinWeight: 1, MaxWeight: 10000, Seed: uint64(seed) + 1,
			})
			if err != nil {
				return nil, err
			}
			arcs := make([]graph.Arc, base.NumArcs())
			state := uint64(seed)*0x9e3779b97f4a7c15 + 7
			for i, a := range base.Arcs() {
				state = state*6364136223846793005 + 1442695040888963407
				a.Transit = 1 + int64((state>>33)%uint64(maxTransit))
				arcs[i] = a
			}
			g := graph.FromArcs(base.NumNodes(), arcs)

			var ref numeric.Rat
			haveRef := false
			for _, name := range names {
				algo, err := ratio.ByName(name)
				if err != nil {
					return nil, err
				}
				start := time.Now()
				res, err := algo.Solve(g, core.Options{})
				if err != nil {
					return nil, fmt.Errorf("bench: ratio %s on n=%d m=%d seed=%d: %w",
						name, size[0], size[1], seed, err)
				}
				row.Seconds[name] += time.Since(start).Seconds()
				if !haveRef {
					ref, haveRef = res.Ratio, true
				} else if !res.Ratio.Equal(ref) && row.Mismatch == "" {
					row.Mismatch = fmt.Sprintf("%s returned %v, reference %v", name, res.Ratio, ref)
				}
			}
		}
		for k := range row.Seconds {
			row.Seconds[k] /= float64(seeds)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteRatioTable renders the MCR comparison.
func WriteRatioTable(w io.Writer, rows []RatioRow) {
	names := ratio.Names()
	fmt.Fprintln(w, "E-R: cost-to-time-ratio solvers on transit-weighted SPRAND graphs (seconds)")
	fmt.Fprintf(w, "%6s %7s", "n", "m")
	for _, n := range names {
		fmt.Fprintf(w, " %11s", n)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%6d %7d", r.N, r.M)
		for _, n := range names {
			fmt.Fprintf(w, " %11.4f", r.Seconds[n])
		}
		fmt.Fprintln(w)
		if r.Mismatch != "" {
			fmt.Fprintf(w, "  !! %s\n", r.Mismatch)
		}
	}
}
