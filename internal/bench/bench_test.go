package bench

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/counter"
)

// TestScaleCountsExhaustive fails when counter.Counts gains a field that
// scaleCounts does not divide — a silent aggregation bug where one counter
// would report seed totals while the rest report per-seed means.
func TestScaleCountsExhaustive(t *testing.T) {
	typ := reflect.TypeOf(counter.Counts{})
	var full counter.Counts
	v := reflect.ValueOf(&full).Elem()
	for i := 0; i < typ.NumField(); i++ {
		f := v.Field(i)
		if f.Kind() != reflect.Int {
			t.Fatalf("Counts field %s is %s; scaleCounts assumes plain ints", typ.Field(i).Name, f.Kind())
		}
		f.SetInt(10)
	}
	scaled := scaleCounts(full, 2)
	sv := reflect.ValueOf(scaled)
	for i := 0; i < typ.NumField(); i++ {
		if got := sv.Field(i).Int(); got != 5 {
			t.Errorf("scaleCounts does not handle field %s: %d, want 5", typ.Field(i).Name, got)
		}
	}
}

func tinyConfig() Config {
	return Config{
		Sizes:     [][2]int{{32, 64}, {32, 96}},
		Seeds:     2,
		MinWeight: 1,
		MaxWeight: 100,
		Timeout:   time.Minute,
		Verify:    true,
	}
}

func TestRunSweepAndRenderAll(t *testing.T) {
	rep, err := Run(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Mismatches) != 0 {
		t.Fatalf("mismatches: %v", rep.Mismatches)
	}
	if len(rep.Cells) != 2 {
		t.Fatalf("cells for %d sizes", len(rep.Cells))
	}
	for _, name := range Table2Algorithms {
		cell := rep.Cells[0][name]
		if cell.Skipped || cell.Seeds != 2 {
			t.Fatalf("%s: skipped=%v seeds=%d", name, cell.Skipped, cell.Seeds)
		}
		if cell.Seconds <= 0 {
			t.Fatalf("%s: no time measured", name)
		}
	}
	var buf bytes.Buffer
	if err := rep.WriteAll(&buf, "all"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 2", "E-41", "E-42", "E-43", "E-44", "E-45", "howard"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if err := rep.WriteAll(&buf, "bogus"); err == nil {
		t.Error("unknown table accepted")
	}
}

func TestRunParallelSeedsDeterministic(t *testing.T) {
	seq, err := Run(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig()
	cfg.Parallelism = 4
	par, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Mismatches) != 0 {
		t.Fatalf("mismatches under parallel seeds: %v", par.Mismatches)
	}
	// Everything except wall-clock timing must be identical: parallel seed
	// evaluation is aggregated in seed order, so counts, λ values, and seed
	// tallies match the sequential sweep exactly.
	for i := range seq.Cells {
		for name, want := range seq.Cells[i] {
			got := par.Cells[i][name]
			if got == nil {
				t.Fatalf("size %d: %s missing from parallel report", i, name)
			}
			if got.Counts != want.Counts || got.Lambda != want.Lambda ||
				got.Seeds != want.Seeds || got.Skipped != want.Skipped {
				t.Fatalf("size %d %s: parallel cell %+v != sequential %+v", i, name, got, want)
			}
		}
	}
}

func TestBenchWorkers(t *testing.T) {
	for _, tc := range []struct{ p, seeds, want int }{
		{0, 10, 1}, {1, 10, 1}, {4, 10, 4}, {16, 10, 10},
	} {
		if got := benchWorkers(tc.p, tc.seeds); got != tc.want {
			t.Errorf("benchWorkers(%d, %d) = %d, want %d", tc.p, tc.seeds, got, tc.want)
		}
	}
	if got := benchWorkers(-1, 10); got < 1 || got > 10 {
		t.Errorf("benchWorkers(-1, 10) = %d, want in [1, 10]", got)
	}
}

func TestMemLimitProducesNA(t *testing.T) {
	cfg := tinyConfig()
	cfg.MemLimit = 1024 // absurdly small: all quadratic-space algorithms skip
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"karp", "dg", "ho"} {
		cell := rep.Cells[0][name]
		if !cell.Skipped || cell.Reason != "memory" {
			t.Errorf("%s: skipped=%v reason=%q, want memory N/A", name, cell.Skipped, cell.Reason)
		}
	}
	// Linear-space algorithms still ran.
	if rep.Cells[0]["howard"].Skipped || rep.Cells[0]["karp2"].Skipped {
		t.Error("linear-space algorithms must not be memory-limited")
	}
	var buf bytes.Buffer
	rep.WriteTable2(&buf)
	if !strings.Contains(buf.String(), "N/A") {
		t.Error("table must render N/A entries")
	}
}

func TestTimeoutCascadesToLargerN(t *testing.T) {
	cfg := Config{
		Sizes:     [][2]int{{32, 96}, {64, 192}},
		Seeds:     1,
		MinWeight: 1,
		MaxWeight: 100,
		Timeout:   time.Nanosecond, // everything "times out"
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// First size ran (timeouts only cascade to larger n).
	if rep.Cells[0]["howard"].Skipped {
		t.Error("first size must still run")
	}
	if cell := rep.Cells[1]["howard"]; !cell.Skipped || cell.Reason != "time" {
		t.Errorf("larger size should be N/A(time): %+v", cell)
	}
}

func TestRunCircuitsSmall(t *testing.T) {
	cases, err := RunCircuits([]string{"howard", "karp"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) == 0 {
		t.Fatal("no cases")
	}
	for _, c := range cases[:1] {
		if c.Period <= 0 {
			t.Errorf("%s: period %v", c.Name, c.Period)
		}
		if c.Seconds["howard"] <= 0 {
			t.Errorf("%s: no howard timing", c.Name)
		}
	}
	var buf bytes.Buffer
	WriteCircuits(&buf, cases, []string{"howard", "karp"})
	if !strings.Contains(buf.String(), "synth-ff32") {
		t.Error("circuit table missing rows")
	}
}

func TestReportJSON(t *testing.T) {
	rep, err := Run(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("emitted JSON invalid: %v", err)
	}
	cells, ok := decoded["cells"].([]any)
	if !ok || len(cells) != 2*len(Table2Algorithms) {
		t.Fatalf("cells = %v", decoded["cells"])
	}
}
